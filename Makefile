# Convenience targets; CI runs the same commands (see .github/workflows/ci.yml).

.PHONY: build test lint vet race bench

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# The pre-push gate: gofmt, go vet, staticcheck (when cached), datawa-lint.
# Identical to CI's lint-build job — see docs/LINTING.md.
lint:
	./scripts/lint.sh

# Just the repo's own analyzers, for a fast determinism/locking/hot-path check.
vet:
	go build -o bin/datawa-lint ./cmd/datawa-lint
	go vet -vettool=$(CURDIR)/bin/datawa-lint ./...

bench:
	go test -run=NONE -bench=. -benchtime=1x ./...
