// Package datawa benchmarks: one benchmark per table and figure of the
// paper's evaluation (Section V) plus the design-decision ablations from
// DESIGN.md. Each benchmark executes the corresponding experiment end to end
// at the Quick scale, so `go test -bench=. -benchmem` regenerates every
// reported artifact; run `cmd/datawa-bench -scale standard|full` for
// higher-fidelity sweeps.
package datawa_test

import (
	"testing"

	"repro/internal/experiments"
)

// benchScale keeps benchmark iterations short while still running every
// sweep end to end (two points per swept parameter, both datasets).
func benchScale() experiments.Scale {
	s := experiments.Quick
	s.SweepPoints = 1
	return s
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	s := benchScale()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables := e.Run(s)
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// BenchmarkTable2Datasets regenerates Table II: the dataset cardinalities of
// the two synthetic stand-in traces.
func BenchmarkTable2Datasets(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkFig5Prediction regenerates Fig. 5 (Yueche): AP, assigned tasks,
// training and testing time of LSTM, Graph-WaveNet and DDGNN across ΔT.
func BenchmarkFig5Prediction(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6Prediction regenerates Fig. 6 (DiDi), the same four panels on
// the second dataset.
func BenchmarkFig6Prediction(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7TaskCount regenerates Fig. 7: assigned tasks and CPU time for
// the five assignment methods as |S| grows.
func BenchmarkFig7TaskCount(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8WorkerCount regenerates Fig. 8: effect of |W|.
func BenchmarkFig8WorkerCount(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9ReachableDistance regenerates Fig. 9: effect of the worker
// reachable distance d.
func BenchmarkFig9ReachableDistance(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10AvailableTime regenerates Fig. 10: effect of the worker
// availability window off − on.
func BenchmarkFig10AvailableTime(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11ValidTime regenerates Fig. 11: effect of the task valid time
// e − p.
func BenchmarkFig11ValidTime(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkAblationStaticAdjacency quantifies DESIGN.md decision 4: the
// learned dynamic dependency matrix versus identity propagation in DDGNN.
func BenchmarkAblationStaticAdjacency(b *testing.B) { runExperiment(b, "ablation-adjacency") }

// BenchmarkAblationTVFOff quantifies DESIGN.md decision 3: exact DFSearch
// versus the TVF-guided search (quality, CPU, expanded nodes).
func BenchmarkAblationTVFOff(b *testing.B) { runExperiment(b, "ablation-tvf") }

// BenchmarkAblationFlatSearch quantifies DESIGN.md decision 2: the RTC tree
// versus a flat per-component search.
func BenchmarkAblationFlatSearch(b *testing.B) { runExperiment(b, "ablation-flat") }

// BenchmarkAblationNoDedup quantifies DESIGN.md decision 1 via the sequence
// length cap sweep (|Q_w| growth is the cost being bounded).
func BenchmarkAblationNoDedup(b *testing.B) { runExperiment(b, "ablation-seqlen") }

// BenchmarkAblationDynamicWindows exercises the title feature: availability
// windows fragmented by unplanned breaks versus contiguous windows.
func BenchmarkAblationDynamicWindows(b *testing.B) { runExperiment(b, "ablation-breaks") }
