// Command datawa-bench measures the DATA-WA pipeline two ways.
//
// Suite mode (-suite) runs the scenario-atlas benchmark suite: every
// registered archetype × assignment method × density scale, replayed through
// both the offline stream engine and the live sharded dispatch service. It
// writes the schema-versioned BENCH_*.json trajectory document that
// perf-sensitive PRs regenerate and CI gates on (see docs/BENCHMARKS.md):
//
//	datawa-bench -suite -json
//	datawa-bench -suite -scales 1,5,20 -methods Greedy,DTA -json=BENCH_3.json
//	datawa-bench -suite -scales 1 -json=BENCH_ci.json -compare BENCH_3.json
//	datawa-bench -validate BENCH_3.json
//
// Experiment mode (-run) regenerates the tables and figures of the paper's
// evaluation (Section V) on the synthetic Yueche/DiDi workloads and prints
// paper-style rows:
//
//	datawa-bench -list
//	datawa-bench -run fig7 -scale standard
//	datawa-bench -run all -scale quick -csv out/
//	datawa-bench -run fig7 -scale quick -json=BENCH_fig7.json
//
// Scales: quick (seconds per experiment), standard (minutes; the default),
// full (paper cardinalities; hours for the whole suite).
//
// -json writes one machine-readable document covering the whole run. It
// takes an optional value: a bare -json picks the default path (BENCH_3.json
// in suite mode, stdout in experiment mode); -json=FILE writes FILE; "-"
// writes to stdout and suppresses the text output.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/benchsuite"
	"repro/internal/experiments"
	"repro/internal/scenario"
)

// suiteJSONDefault is where -suite writes its report when -json gives no
// explicit path. The number tracks the PR that last regenerated the
// trajectory snapshot at the repo root.
const suiteJSONDefault = "BENCH_3.json"

// compareTolerance is the relative assignment-rate drop -compare accepts
// before failing (docs/BENCHMARKS.md: perf-sensitive PRs regenerate the
// snapshot; CI fails on >10% drops).
const compareTolerance = 0.10

func main() {
	var jsonPath optionalPath
	var (
		list     = flag.Bool("list", false, "list experiment ids and exit")
		run      = flag.String("run", "", "experiment id to run, or 'all'")
		scale    = flag.String("scale", "standard", "experiment mode: quick | standard | full")
		csvDir   = flag.String("csv", "", "experiment mode: also write <id>.csv files into this directory")
		points   = flag.Int("points", 0, "experiment mode: override sweep points per parameter (0 = all)")
		parallel = flag.Int("parallelism", 0, "planner fan-out per instant (0 = one goroutine per CPU, 1 = serial)")

		suite     = flag.Bool("suite", false, "run the scenario-atlas benchmark suite")
		scenarios = flag.String("scenarios", "", "suite mode: comma-separated archetype names (default: all registered)")
		scales    = flag.String("scales", "1,5", "suite mode: comma-separated density multipliers")
		methods   = flag.String("methods", "Greedy,DTA", "suite mode: comma-separated assignment methods")
		shards    = flag.Int("shards", 2, "suite mode: live-path dispatcher shard count")
		step      = flag.Float64("step", 2, "suite mode: planning epoch length in seconds")
		compare   = flag.String("compare", "", "suite mode: baseline BENCH_*.json; fail on >10% assignment-rate drops")
		validate  = flag.String("validate", "", "validate a BENCH_*.json suite report against the schema and exit")
	)
	flag.Var(&jsonPath, "json", "write machine-readable results (optional =FILE; bare flag picks the default path, \"-\" = stdout)")
	flag.Parse()
	// -json takes its value attached (-json=FILE). With the space form the
	// file name would become a stray positional argument and silently stop
	// flag parsing, so reject leftovers outright.
	if flag.NArg() > 0 {
		fatalf("unexpected argument %q (use -json=FILE, not -json FILE)", flag.Arg(0))
	}

	switch {
	case *validate != "":
		runValidate(*validate)
	case *suite:
		runSuite(*scenarios, *scales, *methods, *shards, *step, *parallel, jsonPath.resolve(suiteJSONDefault), *compare)
	default:
		runExperiments(*list, *run, *scale, *csvDir, *points, *parallel, jsonPath.resolve("-"))
	}
}

// runValidate loads a suite report and checks it against the schema.
func runValidate(path string) {
	r, err := loadReport(path)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("%s: schema %s, %d cells — valid\n", path, r.Schema, len(r.Results))
}

// runSuite executes the atlas suite, writes the report, and optionally gates
// against a baseline snapshot.
func runSuite(scenarios, scales, methods string, shards int, step float64, parallel int, jsonPath, comparePath string) {
	opts := benchsuite.Options{
		Scenarios:   splitList(scenarios),
		Methods:     splitList(methods),
		Shards:      shards,
		Step:        step,
		Parallelism: parallel,
	}
	for _, s := range splitList(scales) {
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			fatalf("bad -scales entry %q: %v", s, err)
		}
		opts.Scales = append(opts.Scales, f)
	}
	quiet := jsonPath == "-"
	if !quiet {
		opts.Log = func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
	}

	start := time.Now()
	report, err := benchsuite.Run(opts)
	if err != nil {
		fatalf("%v", err)
	}
	if !quiet {
		fmt.Printf("(suite: %d cells in %v)\n", len(report.Results), time.Since(start).Round(time.Millisecond))
	}
	if err := writeJSON(jsonPath, report); err != nil {
		fatalf("json: %v", err)
	}
	if !quiet && jsonPath != "" {
		fmt.Printf("wrote %s\n", jsonPath)
	}
	if comparePath != "" {
		base, err := loadReport(comparePath)
		if err != nil {
			fatalf("%v", err)
		}
		n, err := benchsuite.Compare(base, report, compareTolerance)
		if err != nil {
			fatalf("compare against %s: %v", comparePath, err)
		}
		// In quiet mode stdout carries the JSON document; keep it clean.
		out := os.Stdout
		if quiet {
			out = os.Stderr
		}
		fmt.Fprintf(out, "compare against %s: %d cells within %.0f%% assignment-rate tolerance\n",
			comparePath, n, 100*compareTolerance)
	}
}

// runExperiments is the paper-reproduction mode (tables and figures of
// Section V).
func runExperiments(list bool, run, scale, csvDir string, points, parallel int, jsonPath string) {
	if list || run == "" {
		fmt.Println("experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-20s %s\n", e.ID, e.Title)
		}
		fmt.Println("\nscenario atlas (use -suite):")
		for _, a := range scenario.Registry() {
			fmt.Printf("  %-20s %s\n", a.Name, a.Summary)
		}
		if run == "" && !list {
			fmt.Println("\nuse -run <id>, -run all, or -suite")
		}
		return
	}

	var s experiments.Scale
	switch strings.ToLower(scale) {
	case "quick":
		s = experiments.Quick
	case "standard":
		s = experiments.Standard
	case "full":
		s = experiments.Full
	default:
		fatalf("unknown scale %q", scale)
	}
	if points > 0 {
		s.SweepPoints = points
	}
	s.Parallelism = parallel

	var todo []experiments.Experiment
	if run == "all" {
		todo = experiments.All()
	} else {
		e, ok := experiments.ByID(run)
		if !ok {
			fatalf("unknown experiment %q (use -list)", run)
		}
		todo = []experiments.Experiment{e}
	}

	quiet := jsonPath == "-"
	report := jsonReport{Scale: scale, SweepPoints: s.SweepPoints, Parallelism: s.Parallelism}
	for _, e := range todo {
		start := time.Now()
		tables := e.Run(s)
		for _, t := range tables {
			if !quiet {
				fmt.Println(t.String())
			}
			if csvDir != "" {
				if err := writeCSV(csvDir, t); err != nil {
					fatalf("csv: %v", err)
				}
			}
		}
		elapsed := time.Since(start)
		report.Experiments = append(report.Experiments, jsonExperiment{
			ID: e.ID, Title: e.Title, ElapsedMS: elapsed.Milliseconds(), Tables: tables,
		})
		if !quiet {
			fmt.Printf("(%s completed in %v)\n\n", e.ID, elapsed.Round(time.Millisecond))
		}
	}
	if jsonPath != "" {
		if err := writeJSON(jsonPath, report); err != nil {
			fatalf("json: %v", err)
		}
	}
}

// optionalPath is a flag that may appear bare (-json), with a value
// (-json=FILE), or not at all; resolve substitutes the mode's default path
// for the bare form.
type optionalPath struct {
	set   bool
	value string
}

func (p *optionalPath) String() string { return p.value }

func (p *optionalPath) Set(s string) error {
	p.set = true
	if s != "true" { // "true" is the bare-flag sentinel the flag package passes
		p.value = s
	}
	return nil
}

// IsBoolFlag lets the flag package accept the bare form. The value, when
// given, must be attached with '=': -json=FILE.
func (p *optionalPath) IsBoolFlag() bool { return true }

func (p *optionalPath) resolve(def string) string {
	if !p.set {
		return ""
	}
	if p.value == "" {
		return def
	}
	return p.value
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func loadReport(path string) (*benchsuite.Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r benchsuite.Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func writeJSON(path string, doc any) error {
	if path == "" {
		return nil
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

// jsonReport is the experiment-mode -json document: one run of the paper
// suite, every table included verbatim (header + rows carry method, assigned
// count, CPU per instant, and the swept entity values), plus the scale
// settings that produced it.
type jsonReport struct {
	Scale       string           `json:"scale"`
	SweepPoints int              `json:"sweep_points,omitempty"`
	Parallelism int              `json:"parallelism,omitempty"`
	Experiments []jsonExperiment `json:"experiments"`
}

type jsonExperiment struct {
	ID        string               `json:"id"`
	Title     string               `json:"title"`
	ElapsedMS int64                `json:"elapsed_ms"`
	Tables    []*experiments.Table `json:"tables"`
}

func writeCSV(dir string, t *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := t.ID
	if strings.Contains(t.Title, "(DiDi)") {
		name += "-didi"
	} else if strings.Contains(t.Title, "(Yueche)") {
		name += "-yueche"
	}
	return os.WriteFile(filepath.Join(dir, name+".csv"), []byte(t.CSV()), 0o644)
}
