// Command datawa-bench measures the DATA-WA pipeline two ways.
//
// Suite mode (-suite) runs the scenario-atlas benchmark suite: every
// registered archetype × assignment method × density scale, replayed through
// both the offline stream engine and the live sharded dispatch service. It
// writes the schema-versioned BENCH_*.json trajectory document that
// perf-sensitive PRs regenerate and CI gates on (see docs/BENCHMARKS.md):
//
//	datawa-bench -suite -json
//	datawa-bench -suite -scales 1,5,20 -methods Greedy,DTA,SSP -json=BENCH_10.json
//	datawa-bench -suite -scales 1 -transports json,stream -json=BENCH_ci.json -compare BENCH_10.json
//	datawa-bench -suite -scales 1 -methods SSP -samples 8 -cvar-alpha 0.5 -json=-
//	datawa-bench -suite -scales 1 -shards 4 -max-gap 0.01 -json=-
//	datawa-bench -suite -incremental=false -json=BENCH_full_replan.json
//	datawa-bench -validate BENCH_10.json
//
// Experiment mode (-run) regenerates the tables and figures of the paper's
// evaluation (Section V) on the synthetic Yueche/DiDi workloads and prints
// paper-style rows:
//
//	datawa-bench -list
//	datawa-bench -run fig7 -scale standard
//	datawa-bench -run all -scale quick -csv out/
//	datawa-bench -run fig7 -scale quick -json=BENCH_fig7.json
//
// Scales: quick (seconds per experiment), standard (minutes; the default),
// full (paper cardinalities; hours for the whole suite).
//
// -json writes one machine-readable document covering the whole run. It
// takes an optional value: a bare -json picks the default path (BENCH_10.json
// in suite mode, stdout in experiment mode); -json=FILE and -json FILE both
// write FILE; "-" writes to stdout and suppresses the text output.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/benchsuite"
	"repro/internal/experiments"
	"repro/internal/scenario"
)

// suiteJSONDefault is where -suite writes its report when -json gives no
// explicit path. The number tracks the PR that last regenerated the
// trajectory snapshot at the repo root.
const suiteJSONDefault = "BENCH_10.json"

// compareTolerance is the relative assignment-rate drop -compare accepts
// before failing (docs/BENCHMARKS.md: perf-sensitive PRs regenerate the
// snapshot; CI fails on >10% drops).
const compareTolerance = 0.10

// compareP95Tolerance is the relative live epoch-p95 growth -compare
// accepts before failing. Wider than the rate tolerance because p95 carries
// host jitter; it exists to catch epoch-latency blowups, not noise.
const compareP95Tolerance = 0.50

func main() {
	var jsonPath optionalPath
	var (
		list     = flag.Bool("list", false, "list experiment ids and exit")
		run      = flag.String("run", "", "experiment id to run, or 'all'")
		scale    = flag.String("scale", "standard", "experiment mode: quick | standard | full")
		csvDir   = flag.String("csv", "", "experiment mode: also write <id>.csv files into this directory")
		points   = flag.Int("points", 0, "experiment mode: override sweep points per parameter (0 = all)")
		parallel = flag.Int("parallelism", 0, "planner fan-out per instant (0 = one goroutine per CPU, 1 = serial)")

		suite      = flag.Bool("suite", false, "run the scenario-atlas benchmark suite")
		scenarios  = flag.String("scenarios", "", "suite mode: comma-separated archetype names (default: all registered)")
		scales     = flag.String("scales", "1,5", "suite mode: comma-separated density multipliers")
		methods    = flag.String("methods", "Greedy,DTA", "suite mode: comma-separated assignment methods")
		samples    = flag.Int("samples", 0, "suite mode: demand futures SSP cells sample per forecast instant (0 = default 5; 1 = point forecast)")
		cvarAlpha  = flag.Float64("cvar-alpha", 0, "suite mode: SSP CVaR risk knob in (0,1] — commit the plan maximizing the mean value over the worst ceil(alpha*K) futures (0 or 1 = expected value)")
		transports = flag.String("transports", "json,stream", "suite mode: comma-separated live-path ingest transports (json = per-event, stream = batched binary wire frames)")
		shards     = flag.Int("shards", 2, "suite mode: live-path dispatcher shard count")
		halo       = flag.Float64("halo", 0, "suite mode: cross-shard handoff radius in km (0 = auto from worker reach, negative = disable)")
		increment  = flag.Bool("incremental", true, "suite mode: live-path incremental epoch replanning (plans are identical either way)")
		step       = flag.Float64("step", 2, "suite mode: planning epoch length in seconds")
		compare    = flag.String("compare", "", "suite mode: baseline BENCH_*.json; fail on >10% assignment-rate drops or epoch-p95 growth beyond -p95-tolerance")
		p95Tol     = flag.Float64("p95-tolerance", compareP95Tolerance, "suite mode: relative live epoch-p95 growth -compare accepts (0 disables the latency gate; cross-host nightlies run wider than the default)")
		maxGap     = flag.Float64("max-gap", -1, "suite mode: fail if any cell's fidelity gap (offline − live assignment rate) exceeds this (e.g. 0.01 = 1pp; negative = off)")
		validate   = flag.String("validate", "", "validate a BENCH_*.json suite report against the schema and exit")
	)
	flag.Var(&jsonPath, "json", "write machine-readable results (optional FILE or =FILE; bare flag picks the default path, \"-\" = stdout)")
	// -json takes its value attached (-json=FILE) or as the immediately
	// following argument (-json FILE). The flag package would parse the
	// bare-bool form and stop at the file name, silently ignoring it and
	// everything after — so splice the adjacent pair out before parsing and
	// apply the adopted path afterwards (not via rewriting to -json=FILE,
	// which would collide with the bare-flag "true" sentinel for a file
	// literally named "true"). Only the token directly after -json is
	// adopted; a stray positional anywhere else still fails loudly below.
	args := os.Args[1:]
	adoptedJSON := ""
	for i := 0; i < len(args)-1; i++ {
		if args[i] == "-json" || args[i] == "--json" {
			if next := args[i+1]; next == "-" || !strings.HasPrefix(next, "-") {
				adoptedJSON = next
				args = append(args[:i], args[i+2:]...)
			}
			break
		}
	}
	// flag.CommandLine uses ExitOnError: a parse failure exits(2) itself.
	_ = flag.CommandLine.Parse(args)
	if adoptedJSON != "" {
		jsonPath.set = true
		jsonPath.value = adoptedJSON
	}
	// A leftover positional would be a silently ignored flag: reject loudly.
	if flag.NArg() > 0 {
		fatalf("unexpected argument %q (flags take values as -flag=VALUE, or -json FILE)", flag.Arg(0))
	}

	switch {
	case *validate != "":
		runValidate(*validate)
	case *suite:
		runSuite(suiteOptions{
			scenarios: *scenarios, scales: *scales, methods: *methods,
			transports: *transports,
			shards:     *shards, halo: *halo, step: *step, parallel: *parallel,
			incremental: *increment, p95Tol: *p95Tol,
			samples: *samples, cvarAlpha: *cvarAlpha,
			jsonPath: jsonPath.resolve(suiteJSONDefault), compare: *compare, maxGap: *maxGap,
		})
	default:
		runExperiments(*list, *run, *scale, *csvDir, *points, *parallel, jsonPath.resolve("-"))
	}
}

// runValidate loads a suite report and checks it against the schema.
func runValidate(path string) {
	r, err := loadReport(path)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("%s: schema %s, %d cells — valid\n", path, r.Schema, len(r.Results))
}

// suiteOptions carries the suite-mode flag values.
type suiteOptions struct {
	scenarios, scales, methods string
	transports                 string
	shards                     int
	halo                       float64
	step                       float64
	parallel                   int
	incremental                bool
	p95Tol                     float64
	samples                    int
	cvarAlpha                  float64
	jsonPath, compare          string
	maxGap                     float64
}

// runSuite executes the atlas suite, writes the report, and optionally gates
// against a baseline snapshot and against the per-cell fidelity-gap bound.
func runSuite(so suiteOptions) {
	opts := benchsuite.Options{
		Scenarios:          splitList(so.scenarios),
		Methods:            splitList(so.methods),
		Transports:         splitList(so.transports),
		Shards:             so.shards,
		HaloRadius:         so.halo,
		Step:               so.step,
		Parallelism:        so.parallel,
		DisableIncremental: !so.incremental,
		Samples:            so.samples,
		CVaRAlpha:          so.cvarAlpha,
	}
	// Validate -methods up front against the live registry, so a typo fails
	// in milliseconds with the current method names instead of mid-suite.
	registered := datawa.Methods()
	for _, m := range opts.Methods {
		known := false
		for _, r := range registered {
			if datawa.Method(m) == r {
				known = true
				break
			}
		}
		if !known {
			names := make([]string, len(registered))
			for i, r := range registered {
				names[i] = string(r)
			}
			fatalf("unknown -methods entry %q (methods: %s)", m, strings.Join(names, ", "))
		}
	}
	for _, s := range splitList(so.scales) {
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			fatalf("bad -scales entry %q: %v", s, err)
		}
		opts.Scales = append(opts.Scales, f)
	}
	quiet := so.jsonPath == "-"
	if !quiet {
		opts.Log = func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
	}

	start := time.Now()
	report, err := benchsuite.Run(opts)
	if err != nil {
		fatalf("%v", err)
	}
	if !quiet {
		fmt.Printf("(suite: %d cells in %v)\n", len(report.Results), time.Since(start).Round(time.Millisecond))
	}
	if err := writeJSON(so.jsonPath, report); err != nil {
		fatalf("json: %v", err)
	}
	if !quiet && so.jsonPath != "" {
		fmt.Printf("wrote %s\n", so.jsonPath)
	}
	// In quiet mode stdout carries the JSON document; keep it clean.
	out := os.Stdout
	if quiet {
		out = os.Stderr
	}
	if so.maxGap >= 0 {
		var over []string
		checked := 0
		for _, c := range report.Results {
			// Chaos cells run the live path under admission control and
			// planner degradation; a gap against the ungoverned offline
			// reference is by design there, not a fidelity bug.
			if c.Overload {
				continue
			}
			checked++
			if c.FidelityGap > so.maxGap {
				over = append(over, fmt.Sprintf("%s %gx %s: gap %.1fpp", c.Scenario, c.Scale, c.Method, 100*c.FidelityGap))
			}
		}
		if len(over) > 0 {
			fatalf("fidelity gap above %.1fpp on %d cell(s): %s", 100*so.maxGap, len(over), strings.Join(over, "; "))
		}
		fmt.Fprintf(out, "fidelity: all %d non-chaos cells within %.1fpp of the offline reference\n", checked, 100*so.maxGap)
	}
	if so.compare != "" {
		base, err := loadReport(so.compare)
		if err != nil {
			fatalf("%v", err)
		}
		n, err := benchsuite.Compare(base, report, compareTolerance, so.p95Tol)
		if err != nil {
			fatalf("compare against %s: %v", so.compare, err)
		}
		fmt.Fprintf(out, "compare against %s: %d cells within %.0f%% assignment-rate and %.0f%% epoch-p95 tolerance\n",
			so.compare, n, 100*compareTolerance, 100*so.p95Tol)
	}
}

// runExperiments is the paper-reproduction mode (tables and figures of
// Section V).
func runExperiments(list bool, run, scale, csvDir string, points, parallel int, jsonPath string) {
	if list || run == "" {
		fmt.Println("experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-20s %s\n", e.ID, e.Title)
		}
		fmt.Println("\nscenario atlas (use -suite):")
		for _, a := range scenario.Registry() {
			fmt.Printf("  %-20s %s\n", a.Name, a.Summary)
		}
		if run == "" && !list {
			fmt.Println("\nuse -run <id>, -run all, or -suite")
		}
		return
	}

	var s experiments.Scale
	switch strings.ToLower(scale) {
	case "quick":
		s = experiments.Quick
	case "standard":
		s = experiments.Standard
	case "full":
		s = experiments.Full
	default:
		fatalf("unknown scale %q", scale)
	}
	if points > 0 {
		s.SweepPoints = points
	}
	s.Parallelism = parallel

	var todo []experiments.Experiment
	if run == "all" {
		todo = experiments.All()
	} else {
		e, ok := experiments.ByID(run)
		if !ok {
			fatalf("unknown experiment %q (use -list)", run)
		}
		todo = []experiments.Experiment{e}
	}

	quiet := jsonPath == "-"
	report := jsonReport{Scale: scale, SweepPoints: s.SweepPoints, Parallelism: s.Parallelism}
	for _, e := range todo {
		start := time.Now()
		tables := e.Run(s)
		for _, t := range tables {
			if !quiet {
				fmt.Println(t.String())
			}
			if csvDir != "" {
				if err := writeCSV(csvDir, t); err != nil {
					fatalf("csv: %v", err)
				}
			}
		}
		elapsed := time.Since(start)
		report.Experiments = append(report.Experiments, jsonExperiment{
			ID: e.ID, Title: e.Title, ElapsedMS: elapsed.Milliseconds(), Tables: tables,
		})
		if !quiet {
			fmt.Printf("(%s completed in %v)\n\n", e.ID, elapsed.Round(time.Millisecond))
		}
	}
	if jsonPath != "" {
		if err := writeJSON(jsonPath, report); err != nil {
			fatalf("json: %v", err)
		}
	}
}

// optionalPath is a flag that may appear bare (-json), with an attached
// value (-json=FILE), with a following value (-json FILE — adopted from the
// positionals after parsing), or not at all; resolve substitutes the mode's
// default path for the bare form.
type optionalPath struct {
	set   bool
	value string
}

func (p *optionalPath) String() string { return p.value }

func (p *optionalPath) Set(s string) error {
	p.set = true
	if s != "true" { // "true" is the bare-flag sentinel the flag package passes
		p.value = s
	}
	return nil
}

// IsBoolFlag lets the flag package accept the bare form; main adopts a
// following positional as the value, so -json FILE also works.
func (p *optionalPath) IsBoolFlag() bool { return true }

func (p *optionalPath) resolve(def string) string {
	if !p.set {
		return ""
	}
	if p.value == "" {
		return def
	}
	return p.value
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func loadReport(path string) (*benchsuite.Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r benchsuite.Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func writeJSON(path string, doc any) error {
	if path == "" {
		return nil
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

// jsonReport is the experiment-mode -json document: one run of the paper
// suite, every table included verbatim (header + rows carry method, assigned
// count, CPU per instant, and the swept entity values), plus the scale
// settings that produced it.
type jsonReport struct {
	Scale       string           `json:"scale"`
	SweepPoints int              `json:"sweep_points,omitempty"`
	Parallelism int              `json:"parallelism,omitempty"`
	Experiments []jsonExperiment `json:"experiments"`
}

type jsonExperiment struct {
	ID        string               `json:"id"`
	Title     string               `json:"title"`
	ElapsedMS int64                `json:"elapsed_ms"`
	Tables    []*experiments.Table `json:"tables"`
}

func writeCSV(dir string, t *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := t.ID
	if strings.Contains(t.Title, "(DiDi)") {
		name += "-didi"
	} else if strings.Contains(t.Title, "(Yueche)") {
		name += "-yueche"
	}
	return os.WriteFile(filepath.Join(dir, name+".csv"), []byte(t.CSV()), 0o644)
}
