// Command datawa-bench regenerates the tables and figures of the DATA-WA
// paper's evaluation (Section V) on the synthetic Yueche/DiDi workloads and
// prints paper-style rows.
//
// Usage:
//
//	datawa-bench -list
//	datawa-bench -run fig7 -scale standard
//	datawa-bench -run all -scale quick -csv out/
//	datawa-bench -run fig7 -scale quick -json BENCH_fig7.json
//
// Scales: quick (seconds per experiment), standard (minutes; the default),
// full (paper cardinalities; hours for the whole suite).
//
// -json writes one machine-readable document covering the whole run — scale
// settings plus every table's header and rows (method, assigned, CPU per
// instant, swept entity counts) — so successive BENCH_*.json files can track
// the result trajectory across commits. "-" writes the document to stdout
// and suppresses the text tables.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list experiment ids and exit")
		run      = flag.String("run", "", "experiment id to run, or 'all'")
		scale    = flag.String("scale", "standard", "quick | standard | full")
		csvDir   = flag.String("csv", "", "also write <id>.csv files into this directory")
		jsonPath = flag.String("json", "", "write machine-readable results to this file (\"-\" = stdout)")
		points   = flag.Int("points", 0, "override sweep points per parameter (0 = all)")
		parallel = flag.Int("parallelism", 0, "planner fan-out per instant (0 = one goroutine per CPU, 1 = serial)")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-20s %s\n", e.ID, e.Title)
		}
		if *run == "" && !*list {
			fmt.Println("\nuse -run <id> or -run all")
		}
		return
	}

	var s experiments.Scale
	switch strings.ToLower(*scale) {
	case "quick":
		s = experiments.Quick
	case "standard":
		s = experiments.Standard
	case "full":
		s = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *points > 0 {
		s.SweepPoints = *points
	}
	s.Parallelism = *parallel

	var todo []experiments.Experiment
	if *run == "all" {
		todo = experiments.All()
	} else {
		e, ok := experiments.ByID(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *run)
			os.Exit(2)
		}
		todo = []experiments.Experiment{e}
	}

	quiet := *jsonPath == "-"
	report := jsonReport{Scale: *scale, SweepPoints: s.SweepPoints, Parallelism: s.Parallelism}
	for _, e := range todo {
		start := time.Now()
		tables := e.Run(s)
		for _, t := range tables {
			if !quiet {
				fmt.Println(t.String())
			}
			if *csvDir != "" {
				if err := writeCSV(*csvDir, t); err != nil {
					fmt.Fprintf(os.Stderr, "csv: %v\n", err)
					os.Exit(1)
				}
			}
		}
		elapsed := time.Since(start)
		report.Experiments = append(report.Experiments, jsonExperiment{
			ID: e.ID, Title: e.Title, ElapsedMS: elapsed.Milliseconds(), Tables: tables,
		})
		if !quiet {
			fmt.Printf("(%s completed in %v)\n\n", e.ID, elapsed.Round(time.Millisecond))
		}
	}
	if *jsonPath != "" {
		if err := writeReport(*jsonPath, report); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
	}
}

// jsonReport is the -json document: one run of the suite, every table
// included verbatim (header + rows carry method, assigned count, CPU per
// instant, and the swept entity values), plus the scale settings that
// produced it, so BENCH_*.json files are comparable across commits.
type jsonReport struct {
	Scale       string           `json:"scale"`
	SweepPoints int              `json:"sweep_points,omitempty"`
	Parallelism int              `json:"parallelism,omitempty"`
	Experiments []jsonExperiment `json:"experiments"`
}

type jsonExperiment struct {
	ID        string               `json:"id"`
	Title     string               `json:"title"`
	ElapsedMS int64                `json:"elapsed_ms"`
	Tables    []*experiments.Table `json:"tables"`
}

func writeReport(path string, r jsonReport) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

func writeCSV(dir string, t *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := t.ID
	if strings.Contains(t.Title, "(DiDi)") {
		name += "-didi"
	} else if strings.Contains(t.Title, "(Yueche)") {
		name += "-yueche"
	}
	return os.WriteFile(filepath.Join(dir, name+".csv"), []byte(t.CSV()), 0o644)
}
