// Command datawa-bench regenerates the tables and figures of the DATA-WA
// paper's evaluation (Section V) on the synthetic Yueche/DiDi workloads and
// prints paper-style rows.
//
// Usage:
//
//	datawa-bench -list
//	datawa-bench -run fig7 -scale standard
//	datawa-bench -run all -scale quick -csv out/
//
// Scales: quick (seconds per experiment), standard (minutes; the default),
// full (paper cardinalities; hours for the whole suite).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list experiment ids and exit")
		run      = flag.String("run", "", "experiment id to run, or 'all'")
		scale    = flag.String("scale", "standard", "quick | standard | full")
		csvDir   = flag.String("csv", "", "also write <id>.csv files into this directory")
		points   = flag.Int("points", 0, "override sweep points per parameter (0 = all)")
		parallel = flag.Int("parallelism", 0, "planner fan-out per instant (0 = one goroutine per CPU, 1 = serial)")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-20s %s\n", e.ID, e.Title)
		}
		if *run == "" && !*list {
			fmt.Println("\nuse -run <id> or -run all")
		}
		return
	}

	var s experiments.Scale
	switch strings.ToLower(*scale) {
	case "quick":
		s = experiments.Quick
	case "standard":
		s = experiments.Standard
	case "full":
		s = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *points > 0 {
		s.SweepPoints = *points
	}
	s.Parallelism = *parallel

	var todo []experiments.Experiment
	if *run == "all" {
		todo = experiments.All()
	} else {
		e, ok := experiments.ByID(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *run)
			os.Exit(2)
		}
		todo = []experiments.Experiment{e}
	}

	for _, e := range todo {
		start := time.Now()
		tables := e.Run(s)
		for _, t := range tables {
			fmt.Println(t.String())
			if *csvDir != "" {
				if err := writeCSV(*csvDir, t); err != nil {
					fmt.Fprintf(os.Stderr, "csv: %v\n", err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}

func writeCSV(dir string, t *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := t.ID
	if strings.Contains(t.Title, "(DiDi)") {
		name += "-didi"
	} else if strings.Contains(t.Title, "(Yueche)") {
		name += "-yueche"
	}
	return os.WriteFile(filepath.Join(dir, name+".csv"), []byte(t.CSV()), 0o644)
}
