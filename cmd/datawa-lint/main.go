// Command datawa-lint is the repo's static-analysis suite, run as a vet
// tool:
//
//	go build -o bin/datawa-lint ./cmd/datawa-lint
//	go vet -vettool=bin/datawa-lint ./...
//
// It bundles four analyzers (see docs/LINTING.md for the catalog and the
// //datawa: annotation vocabulary):
//
//	determinism  map-order, ambient clock/rand/env, bare goroutines
//	guarded      `guarded by mu` fields and //datawa:serialized types
//	hotpath      allocation discipline in //datawa:hotpath functions
//	expofmt      Prometheus exposition format of metric registrations
//
// Individual analyzers can be selected the usual vet way:
// go vet -vettool=bin/datawa-lint -determinism ./...
package main

import (
	"repro/internal/analysis/determinism"
	"repro/internal/analysis/expofmt"
	"repro/internal/analysis/guarded"
	"repro/internal/analysis/hotpath"
	"repro/internal/analysis/unit"
)

func main() {
	unit.Main(
		determinism.Analyzer,
		guarded.Analyzer,
		hotpath.Analyzer,
		expofmt.Analyzer,
	)
}
