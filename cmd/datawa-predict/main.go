// Command datawa-predict trains and evaluates the three task demand
// predictors of the paper (LSTM, Graph-WaveNet, DDGNN) on a synthetic
// scenario's history and reports Average Precision plus training and
// inference time — one row of Fig. 5/6 per model.
//
// Usage:
//
//	datawa-predict -dataset yueche -deltat 5 -epochs 15
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/par"
	"repro/internal/predict"
	"repro/internal/workload"
)

func main() {
	var (
		dataset  = flag.String("dataset", "yueche", "yueche | didi")
		deltaT   = flag.Float64("deltat", 5, "time interval deltaT in seconds (paper sweeps 5..9)")
		k        = flag.Int("k", 3, "intervals per series vector (k > 1)")
		window   = flag.Int("window", 8, "history vectors per training window")
		epochs   = flag.Int("epochs", 15, "training epochs")
		scale    = flag.Float64("scale", 0.15, "workload scale factor in (0,1]")
		seed     = flag.Int64("seed", 1, "deterministic seed")
		parallel = flag.Int("parallelism", 1, "train/evaluate this many models concurrently (0 = one goroutine per CPU; >1 skews the wall-time columns)")
	)
	flag.Parse()

	var cfg workload.Config
	switch strings.ToLower(*dataset) {
	case "yueche":
		cfg = workload.Yueche()
	case "didi":
		cfg = workload.DiDi()
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
	cfg = cfg.Scaled(*scale)
	cfg.HistoryDuration = 3600 // full training hour regardless of scale
	cfg.Seed = *seed
	sc := workload.Generate(cfg)

	series := predict.BuildSeries(sc.SeriesConfig(*k, *deltaT), sc.History, 0)
	windows := series.Windows(*window, 1)
	train, test := predict.SplitWindows(windows, 0.8)
	fmt.Printf("%s: %d history tasks, %d vectors, %d train / %d test windows\n\n",
		cfg.Name, len(sc.History), series.P(), len(train), len(test))

	tc := predict.TrainConfig{Epochs: *epochs, LR: 0.02, WeightDecay: 1e-3, Seed: *seed}
	models := []predict.Predictor{
		predict.NewLSTMPredictor(*k, 16, tc),
		predict.NewGraphWaveNet(sc.Grid.Cells(), *k, 16, 8, tc),
		predict.NewDDGNN(predict.DDGNNConfig{K: *k, Hidden: 16, Embed: 8, Train: tc}),
	}
	// Each model trains on its own state, so evaluation fans out across the
	// bounded pool; results land in per-index slots and print in model order.
	results := make([]predict.EvalResult, len(models))
	errs := make([]error, len(models))
	par.Do(len(models), *parallel, func(i int) {
		results[i], errs[i] = predict.Evaluate(models[i], train, test)
	})
	fmt.Printf("%-15s %8s %12s %12s\n", "model", "AP", "train_time", "test_time")
	for i, res := range results {
		if errs[i] != nil {
			fmt.Fprintln(os.Stderr, errs[i])
			os.Exit(1)
		}
		fmt.Printf("%-15s %8.3f %12v %12v\n", res.Model, res.AP, res.TrainTime.Round(1e6), res.TestTime)
	}
}
