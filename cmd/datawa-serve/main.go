// Command datawa-serve runs the live dispatch service: a long-running
// assignment engine that ingests workers and tasks over an HTTP/JSON API,
// plans in fixed epochs sharded across the demand grid, and reports
// assigned/expired counts and epoch latency percentiles at /v1/metrics.
//
// Usage:
//
//	datawa-serve -addr :8080 -method DTA -shards 4
//	datawa-serve -method DATA-WA -pretrain yueche -pretrain-scale 0.1
//	datawa-serve -max-open-tasks 5000 -epoch-budget 0.05 -trace-depth 256 -pprof
//
// API (see internal/dispatch.Handler for the wire formats):
//
//	POST /v1/workers            worker online     {id, x, y, reach, avail}
//	POST /v1/workers/offline    worker offline    {id}
//	POST /v1/workers/heartbeat  position update   {id, x, y}
//	POST /v1/tasks              submit task       {id?, x, y, valid}
//	POST /v1/tasks/cancel       cancel task       {id}
//	GET  /v1/plan?worker=ID     current schedule
//	GET  /v1/metrics            snapshot (JSON)
//	GET  /v1/trace?n=K          epoch trace ring (needs -trace-depth)
//	GET  /v1/trace.json?n=K     Chrome trace-event JSON of stage spans (needs -span-depth)
//	GET  /v1/tasks/{id}/history task lifecycle ledger chain (needs -ledger-tasks)
//	GET  /v1/flight             flight-recorder dumps (needs -flight-depth)
//	GET  /metrics               Prometheus text exposition (histogram-native)
//	GET  /healthz               liveness
//	GET  /debug/pprof/          profiling (needs -pprof)
//
// Overload resilience: -max-open-tasks / -max-submits / -defer-slack bound
// the ingest (admission control sheds or defers by task deadline when the
// pool saturates), and -epoch-budget arms the SLA governor that steps each
// shard's planner down the degradation ladder (full method → Greedy →
// reachability-only Match) whenever its windowed epoch-p95 wall time exceeds
// the budget, promoting back hysteretically once load subsides.
//
// The logical clock advances one Step every Step/timescale wall seconds:
// -timescale 60 replays a minute of scenario time per wall second.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/dispatch"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		streamAddr = flag.String("stream-addr", "", "raw-TCP streaming ingest listen address (e.g. :9090); each connection carries binary wire frames or NDJSON until close (empty = off)")
		method     = flag.String("method", "DTA", strings.Join(methodNames(), " | "))
		shards     = flag.Int("shards", 4, "region shards planned in parallel")
		halo       = flag.Float64("halo", 0, "cross-shard handoff radius in km (0 = auto from worker reach, negative = disable ghost replication)")
		increment  = flag.Bool("incremental", true, "incremental epoch replanning (dirty-region invalidation; plans are identical either way)")
		step       = flag.Float64("step", 1, "epoch length in logical seconds")
		timescale  = flag.Float64("timescale", 1, "logical seconds per wall second")
		speed      = flag.Float64("speed", 0.01, "worker travel speed in km/s")
		minX       = flag.Float64("minx", 0, "region min x (km)")
		minY       = flag.Float64("miny", 0, "region min y (km)")
		maxX       = flag.Float64("maxx", 4, "region max x (km)")
		maxY       = flag.Float64("maxy", 4, "region max y (km)")
		rows       = flag.Int("rows", 6, "demand grid rows")
		cols       = flag.Int("cols", 6, "demand grid cols")
		parallel   = flag.Int("parallelism", 0, "planner fan-out (0 = one goroutine per CPU)")
		queue      = flag.Int("queue", 4096, "ingest queue capacity")
		pretrain   = flag.String("pretrain", "", "train demand/value models on a synthetic scenario first: yueche | didi")
		preScale   = flag.Float64("pretrain-scale", 0.1, "pretraining workload scale factor in (0,1]")
		seed       = flag.Int64("seed", 1, "deterministic seed")
		samples    = flag.Int("samples", 0, "SSP: demand futures sampled per forecast instant (0 = default 5; 1 = point forecast)")
		cvarAlpha  = flag.Float64("cvar-alpha", 0, "SSP: CVaR risk knob in (0,1] — commit the plan maximizing the mean value over the worst ceil(alpha*K) futures (0 or 1 = expected value)")

		maxOpen    = flag.Int("max-open-tasks", 0, "admission control: open-task pool cap; newcomers displace later-deadline tasks or are shed/deferred (0 = unbounded)")
		maxSubmits = flag.Int("max-submits", 0, "admission control: task submits admitted per epoch; overflow is deferred one epoch (0 = unbounded)")
		deferSlack = flag.Float64("defer-slack", 0, "admission control: minimum remaining validity in logical seconds for a displaced task to be requeued instead of shed (0 = 2x step)")
		budget     = flag.Float64("epoch-budget", 0, "SLA governor: per-shard epoch wall-time budget in seconds; over-budget p95 demotes the shard's planner down the ladder (0 = governor off)")
		govWindow  = flag.Int("governor-window", 0, "SLA governor: epochs in the p95 cost window (0 = default 16)")
		govDwell   = flag.Int("governor-dwell", 0, "SLA governor: minimum epochs between two tier transitions of one shard (0 = default 8)")
		traceDepth = flag.Int("trace-depth", 0, "epoch trace ring depth served at /v1/trace (0 = off)")
		pprofOn    = flag.Bool("pprof", false, "serve net/http/pprof profiles under /debug/pprof/")

		spanDepth   = flag.Int("span-depth", 0, "stage-span ring depth in epochs served at /v1/trace.json (0 = off)")
		ledgerTasks = flag.Int("ledger-tasks", 0, "task lifecycle ledger capacity in chains served at /v1/tasks/{id}/history (0 = off)")
		flightDepth = flag.Int("flight-depth", 0, "flight recorder: epochs of spans+ledger frozen per anomaly dump, served at /v1/flight; defaults span/ledger recording on (0 = off)")
		flightDir   = flag.String("flight-dir", "", "directory to write flight-recorder dumps into as they are captured (empty = in-memory ring only)")
	)
	flag.Parse()

	fw := datawa.New(datawa.Config{
		SpeedKmPerSec: *speed,
		Region:        datawa.Rect{MinX: *minX, MinY: *minY, MaxX: *maxX, MaxY: *maxY},
		GridRows:      *rows, GridCols: *cols,
		Step: *step, Parallelism: *parallel, Seed: *seed,
		Samples: *samples, CVaRAlpha: *cvarAlpha,
	})

	m := datawa.Method(*method)
	needsDemand := m == datawa.MethodDTATP || m == datawa.MethodDATAWA || m == datawa.MethodSSP
	if needsDemand {
		if *pretrain == "" {
			fmt.Fprintf(os.Stderr, "method %s needs trained models: pass -pretrain yueche|didi\n", m)
			os.Exit(2)
		}
		var cfg datawa.ScenarioConfig
		switch strings.ToLower(*pretrain) {
		case "yueche":
			cfg = datawa.YuecheScenario()
		case "didi":
			cfg = datawa.DiDiScenario()
		default:
			fmt.Fprintf(os.Stderr, "unknown pretrain dataset %q\n", *pretrain)
			os.Exit(2)
		}
		cfg = cfg.Scaled(*preScale)
		cfg.Seed = *seed
		sc := datawa.GenerateScenario(cfg)
		fmt.Printf("pretraining demand model on %s history (%d tasks) ...\n", cfg.Name, len(sc.History))
		if err := fw.TrainDemand(sc.History); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if m == datawa.MethodDATAWA {
			fmt.Println("pretraining task value function ...")
			if err := fw.TrainValue(sc.Workers, sc.Tasks, 8); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}

	if *flightDir != "" {
		if err := os.MkdirAll(*flightDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	d, err := fw.NewDispatcher(m, datawa.DispatchConfig{
		Shards: *shards, HaloRadius: *halo, Step: *step, QueueSize: *queue,
		DisableIncremental: !*increment,
		Admission: datawa.AdmissionConfig{
			MaxOpenTasks: *maxOpen, MaxSubmitsPerEpoch: *maxSubmits, DeferSlack: *deferSlack,
		},
		Governor: datawa.GovernorConfig{
			Budget: *budget, Window: *govWindow, Dwell: *govDwell,
		},
		TraceDepth: *traceDepth,
		Obs: datawa.ObsConfig{
			Spans: *spanDepth, LedgerTasks: *ledgerTasks,
			FlightDepth: *flightDepth, FlightDir: *flightDir,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		if err := d.Serve(ctx, *timescale); err != nil && ctx.Err() == nil {
			fmt.Fprintln(os.Stderr, "epoch loop:", err)
			stop()
		}
	}()

	if *streamAddr != "" {
		ln, err := net.Listen("tcp", *streamAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		go func() {
			<-ctx.Done()
			_ = ln.Close()
		}()
		go serveStreamTCP(ctx, ln, d)
		fmt.Printf("datawa-serve: streaming ingest (binary wire frames / NDJSON) on %s\n", *streamAddr)
	}

	var handler http.Handler = dispatch.NewHandler(d)
	if *pprofOn {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
	}
	srv := &http.Server{Addr: *addr, Handler: handler}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()

	fmt.Printf("datawa-serve: method=%s shards=%d step=%.2gs timescale=%.2gx listening on %s\n",
		m, *shards, *step, *timescale, *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	final := d.Snapshot()
	fmt.Printf("final: epochs=%d assigned=%d expired=%d cancelled=%d shed=%d deferred=%d tiers=%d/%d p50=%v p99=%v\n",
		final.Epochs, final.Assigned, final.Expired, final.Cancelled, final.Shed, final.Deferred,
		final.TierDemotions, final.TierPromotions, final.EpochP50, final.EpochP99)
}

// serveStreamTCP accepts persistent streaming-ingest connections: each one
// carries binary wire frames or NDJSON lines (sniffed per connection) until
// the peer closes its write side, then receives a one-line JSON session
// summary. Decoding happens on the connection's goroutine, so slow peers
// never stall the epoch loop or each other.
func serveStreamTCP(ctx context.Context, ln net.Listener, d *dispatch.Dispatcher) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			fmt.Fprintln(os.Stderr, "stream accept:", err)
			continue
		}
		go func() {
			defer conn.Close()
			sum, err := d.ConsumeStream(conn)
			resp := map[string]any{"summary": sum}
			if err != nil {
				resp["error"] = err.Error()
			}
			_ = json.NewEncoder(conn).Encode(resp)
		}()
	}
}

func methodNames() []string {
	var out []string
	for _, m := range datawa.Methods() {
		out = append(out, string(m))
	}
	return out
}
