// Command datawa-serve runs the live dispatch service: a long-running
// assignment engine that ingests workers and tasks over an HTTP/JSON API,
// plans in fixed epochs sharded across the demand grid, and reports
// assigned/expired counts and epoch latency percentiles at /v1/metrics.
//
// Usage:
//
//	datawa-serve -addr :8080 -method DTA -shards 4
//	datawa-serve -method DATA-WA -pretrain yueche -pretrain-scale 0.1
//
// API (see internal/dispatch.Handler for the wire formats):
//
//	POST /v1/workers            worker online     {id, x, y, reach, avail}
//	POST /v1/workers/offline    worker offline    {id}
//	POST /v1/workers/heartbeat  position update   {id, x, y}
//	POST /v1/tasks              submit task       {id?, x, y, valid}
//	POST /v1/tasks/cancel       cancel task       {id}
//	GET  /v1/plan?worker=ID     current schedule
//	GET  /v1/metrics            snapshot
//	GET  /healthz               liveness
//
// The logical clock advances one Step every Step/timescale wall seconds:
// -timescale 60 replays a minute of scenario time per wall second.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/dispatch"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		method    = flag.String("method", "DTA", strings.Join(methodNames(), " | "))
		shards    = flag.Int("shards", 4, "region shards planned in parallel")
		halo      = flag.Float64("halo", 0, "cross-shard handoff radius in km (0 = auto from worker reach, negative = disable ghost replication)")
		increment = flag.Bool("incremental", true, "incremental epoch replanning (dirty-region invalidation; plans are identical either way)")
		step      = flag.Float64("step", 1, "epoch length in logical seconds")
		timescale = flag.Float64("timescale", 1, "logical seconds per wall second")
		speed     = flag.Float64("speed", 0.01, "worker travel speed in km/s")
		minX      = flag.Float64("minx", 0, "region min x (km)")
		minY      = flag.Float64("miny", 0, "region min y (km)")
		maxX      = flag.Float64("maxx", 4, "region max x (km)")
		maxY      = flag.Float64("maxy", 4, "region max y (km)")
		rows      = flag.Int("rows", 6, "demand grid rows")
		cols      = flag.Int("cols", 6, "demand grid cols")
		parallel  = flag.Int("parallelism", 0, "planner fan-out (0 = one goroutine per CPU)")
		queue     = flag.Int("queue", 4096, "ingest queue capacity")
		pretrain  = flag.String("pretrain", "", "train demand/value models on a synthetic scenario first: yueche | didi")
		preScale  = flag.Float64("pretrain-scale", 0.1, "pretraining workload scale factor in (0,1]")
		seed      = flag.Int64("seed", 1, "deterministic seed")
	)
	flag.Parse()

	fw := datawa.New(datawa.Config{
		SpeedKmPerSec: *speed,
		Region:        datawa.Rect{MinX: *minX, MinY: *minY, MaxX: *maxX, MaxY: *maxY},
		GridRows:      *rows, GridCols: *cols,
		Step: *step, Parallelism: *parallel, Seed: *seed,
	})

	m := datawa.Method(*method)
	needsDemand := m == datawa.MethodDTATP || m == datawa.MethodDATAWA
	if needsDemand {
		if *pretrain == "" {
			fmt.Fprintf(os.Stderr, "method %s needs trained models: pass -pretrain yueche|didi\n", m)
			os.Exit(2)
		}
		var cfg datawa.ScenarioConfig
		switch strings.ToLower(*pretrain) {
		case "yueche":
			cfg = datawa.YuecheScenario()
		case "didi":
			cfg = datawa.DiDiScenario()
		default:
			fmt.Fprintf(os.Stderr, "unknown pretrain dataset %q\n", *pretrain)
			os.Exit(2)
		}
		cfg = cfg.Scaled(*preScale)
		cfg.Seed = *seed
		sc := datawa.GenerateScenario(cfg)
		fmt.Printf("pretraining demand model on %s history (%d tasks) ...\n", cfg.Name, len(sc.History))
		if err := fw.TrainDemand(sc.History); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if m == datawa.MethodDATAWA {
			fmt.Println("pretraining task value function ...")
			if err := fw.TrainValue(sc.Workers, sc.Tasks, 8); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}

	d, err := fw.NewDispatcher(m, datawa.DispatchConfig{
		Shards: *shards, HaloRadius: *halo, Step: *step, QueueSize: *queue,
		DisableIncremental: !*increment,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		if err := d.Serve(ctx, *timescale); err != nil && ctx.Err() == nil {
			fmt.Fprintln(os.Stderr, "epoch loop:", err)
			stop()
		}
	}()

	srv := &http.Server{Addr: *addr, Handler: dispatch.NewHandler(d)}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()

	fmt.Printf("datawa-serve: method=%s shards=%d step=%.2gs timescale=%.2gx listening on %s\n",
		m, *shards, *step, *timescale, *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	final := d.Snapshot()
	fmt.Printf("final: epochs=%d assigned=%d expired=%d cancelled=%d p50=%v p99=%v\n",
		final.Epochs, final.Assigned, final.Expired, final.Cancelled, final.EpochP50, final.EpochP99)
}

func methodNames() []string {
	var out []string
	for _, m := range datawa.Methods() {
		out = append(out, string(m))
	}
	return out
}
