// Command datawa-sim runs one spatial-crowdsourcing stream simulation with a
// chosen assignment method and prints the outcome: assigned tasks, expired
// tasks, and the average planning cost per time instant.
//
// Usage:
//
//	datawa-sim -dataset yueche -method DATA-WA -scale 0.15
//	datawa-sim -dataset didi -method Greedy
//	datawa-sim -scenario rush-hour -method DTA -scale 1
//	datawa-sim -scenarios
//
// -dataset picks one of the paper's two trace analogues, where -scale is the
// shrink factor in (0,1] (cardinalities and clock scale together). -scenario
// picks a scenario-atlas archetype instead (docs/SCENARIOS.md), where -scale
// is the atlas density multiplier: any positive value, 1 is the archetype's
// base size and values above 1 raise the arrival rate on a fixed clock.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
)

func main() {
	var (
		dataset  = flag.String("dataset", "yueche", "yueche | didi")
		scen     = flag.String("scenario", "", "scenario-atlas archetype (overrides -dataset; see -scenarios)")
		listScen = flag.Bool("scenarios", false, "list scenario-atlas archetypes and exit")
		method   = flag.String("method", "DATA-WA", strings.Join(methodNames(), " | "))
		scale    = flag.Float64("scale", 0.15, "dataset shrink factor in (0,1], or atlas density multiplier with -scenario")
		step     = flag.Float64("step", 2, "replan interval in seconds")
		seed     = flag.Int64("seed", 1, "deterministic seed")
		parallel = flag.Int("parallelism", 0, "planner fan-out per instant (0 = one goroutine per CPU, 1 = serial)")
	)
	flag.Parse()

	if *listScen {
		fmt.Println("scenario atlas:")
		for _, a := range datawa.Archetypes() {
			fmt.Printf("  %-14s %s\n", a.Name, a.Summary)
		}
		return
	}

	var cfg datawa.ScenarioConfig
	if *scen != "" {
		a, ok := datawa.ArchetypeByName(*scen)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown scenario %q (use -scenarios)\n", *scen)
			os.Exit(2)
		}
		// Atlas mode reinterprets two defaults: -scale falls back to the
		// archetype's base density 1 (0.15 is the dataset shrink default),
		// and the archetype's own seed (the suite's reproducibility anchor)
		// stands unless -seed was given explicitly.
		given := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { given[f.Name] = true })
		if !given["scale"] {
			*scale = 1
		}
		cfg = a.Scale(*scale)
		if !given["seed"] {
			*seed = cfg.Seed
		}
	} else {
		switch strings.ToLower(*dataset) {
		case "yueche":
			cfg = datawa.YuecheScenario()
		case "didi":
			cfg = datawa.DiDiScenario()
		default:
			fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *dataset)
			os.Exit(2)
		}
		cfg = cfg.Scaled(*scale)
	}
	cfg.Seed = *seed
	sc := datawa.GenerateScenario(cfg)
	fmt.Printf("scenario %s: %d workers, %d tasks over %.0f s (+%.0f s history)\n",
		cfg.Name, len(sc.Workers), len(sc.Tasks), cfg.Duration, cfg.HistoryDuration)

	fw := datawa.New(datawa.Config{
		Region:   cfg.Region,
		GridRows: cfg.GridRows, GridCols: cfg.GridCols,
		Step: *step, Seed: *seed, Parallelism: *parallel,
	})

	m := datawa.Method(*method)
	if m == datawa.MethodDTATP || m == datawa.MethodDATAWA {
		fmt.Println("training demand model on history ...")
		if err := fw.TrainDemand(sc.History); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if m == datawa.MethodDATAWA {
		fmt.Println("training task value function ...")
		if err := fw.TrainValue(sc.Workers, sc.Tasks, 8); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	res, err := fw.Run(m, sc.Workers, sc.Tasks, sc.T0, sc.T1)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("method          %s\n", m)
	fmt.Printf("assigned tasks  %d / %d (%.1f%%)\n", res.Assigned, len(sc.Tasks),
		100*float64(res.Assigned)/float64(len(sc.Tasks)))
	fmt.Printf("expired tasks   %d\n", res.Expired)
	fmt.Printf("plan instants   %d\n", res.PlanCalls)
	fmt.Printf("cpu / instant   %v\n", res.AvgPlanTime)
	fmt.Printf("repositions     %d\n", res.Repositions)
}

func methodNames() []string {
	var out []string
	for _, m := range datawa.Methods() {
		out = append(out, string(m))
	}
	return out
}
