// Package datawa is a pure-Go implementation of DATA-WA — "Demand-based
// Adaptive Task Assignment with Dynamic Worker Availability Windows"
// (ICDE 2025) — a spatial crowdsourcing framework that maximizes the number
// of assigned tasks by predicting future task demand with a Dynamic
// Dependency-based Graph Neural Network (DDGNN) and adaptively re-planning
// worker task sequences with a worker-dependency-separated search guided by
// a reinforcement-learned Task Value Function (TVF).
//
// The package is a façade over the building blocks in internal/: callers
// construct a Framework, optionally train its demand and value models, and
// then either plan a single assignment instant (Plan) or drive a full
// worker/task stream (Run) with any of the five methods evaluated in the
// paper: Greedy, FTA, DTA, DTA+TP and DATA-WA.
//
//	fw := datawa.New(datawa.Config{Region: region, GridRows: 6, GridCols: 6})
//	fw.TrainDemand(history)
//	fw.TrainValue(workers, tasks)
//	result, err := fw.Run(datawa.MethodDATAWA, workers, tasks, 0, 7200)
package datawa

import (
	"fmt"

	"repro/internal/assign"
	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/geo"
	"repro/internal/predict"
	"repro/internal/scenario"
	"repro/internal/stream"
	"repro/internal/tvf"
	"repro/internal/wds"
	"repro/internal/workload"
)

// Re-exported domain types (Definitions 1–5 of the paper).
type (
	// Task is a spatial task s = (l, p, e).
	Task = core.Task
	// Worker is an online worker w = (l, d, on, off).
	Worker = core.Worker
	// Sequence is an ordered task sequence R(S_w).
	Sequence = core.Sequence
	// Assignment pairs a worker with a valid scheduled sequence.
	Assignment = core.Assignment
	// Plan is a spatial task assignment A.
	Plan = core.Plan
	// Point is a planar location in kilometers.
	Point = geo.Point
	// Rect is an axis-aligned region in kilometers.
	Rect = geo.Rect
	// Result aggregates one streaming run.
	Result = stream.Result
	// Scenario is a generated worker/task trace.
	Scenario = workload.Scenario
	// ScenarioConfig parameterizes the synthetic trace generators.
	ScenarioConfig = workload.Config
	// Dispatcher is the live dispatch service (see NewDispatcher).
	Dispatcher = dispatch.Dispatcher
	// DispatchMetrics is a dispatcher metrics snapshot.
	DispatchMetrics = dispatch.Metrics
	// DispatchEvent is one dispatcher ingest-queue entry.
	DispatchEvent = dispatch.Event
)

// WorkerOnlineEvent builds the ingest event admitting w at its On instant,
// for deterministic trace replay through Dispatcher.Ingest. For live
// operation use Dispatcher.WorkerOnline, which stamps the current clock.
func WorkerOnlineEvent(w *Worker) DispatchEvent {
	return DispatchEvent{Time: w.On, Kind: dispatch.KindWorkerOnline, Worker: w}
}

// TaskSubmitEvent builds the ingest event publishing s at its Pub instant.
func TaskSubmitEvent(s *Task) DispatchEvent {
	return DispatchEvent{Time: s.Pub, Kind: dispatch.KindTaskSubmit, Task: s}
}

// Method selects an assignment policy: one of the five methods of Section
// V-B.2, or the scenario-sampling extension (MethodSSP).
type Method string

// The five methods evaluated in the paper, plus SSP.
const (
	MethodGreedy Method = "Greedy"
	MethodFTA    Method = "FTA"
	MethodDTA    Method = "DTA"
	MethodDTATP  Method = "DTA+TP"
	MethodDATAWA Method = "DATA-WA"
	// MethodSSP is the scenario-sampling robust planner: DTA's adaptive
	// replanning against K demand futures sampled from the forecaster's
	// predictive distribution, committing the assignment with the best
	// CVaR-α value across the sample set (see docs/PLANNERS.md). Requires a
	// trained demand model, like MethodDTATP.
	MethodSSP Method = "SSP"
)

// DefaultSamples is the demand-future sample count MethodSSP uses when
// Config.Samples is unset.
const DefaultSamples = predict.DefaultSamples

// Methods lists all supported methods: the paper's five in its order, then
// SSP.
func Methods() []Method {
	return []Method{MethodGreedy, MethodFTA, MethodDTA, MethodDTATP, MethodDATAWA, MethodSSP}
}

// methodList renders the registered method names for error messages, so an
// unknown-method error always enumerates the current registry.
func methodList() string {
	names := ""
	for i, m := range Methods() {
		if i > 0 {
			names += ", "
		}
		names += string(m)
	}
	return names
}

// Config parameterizes a Framework. The zero value plus a Region is usable;
// every other field has a sensible default.
type Config struct {
	// SpeedKmPerSec is the worker travel speed (default 0.01 = 10 m/s).
	SpeedKmPerSec float64

	// Region and GridRows/GridCols define the demand grid. Required for
	// demand prediction (MethodDTATP, MethodDATAWA).
	Region             Rect
	GridRows, GridCols int

	// DeltaT is the elementary prediction interval ΔT in seconds
	// (default 5); K the intervals per series vector (default 3); Window
	// the history vectors fed to the model (default 8).
	DeltaT float64
	K      int
	Window int
	// Threshold materializes predicted demand above this probability
	// (default 0.85, the paper's setting).
	Threshold float64
	// VirtualValidTime is the validity e−p given to predicted tasks
	// (default 40 s, Table III's default task validity).
	VirtualValidTime float64

	// Samples is the number of demand futures MethodSSP draws per forecast
	// instant (default DefaultSamples; 1 degenerates to point-forecast
	// planning). Ignored by the other methods.
	Samples int
	// CVaRAlpha is MethodSSP's risk knob α in (0, 1]: the committed
	// assignment maximizes the mean value over the worst ⌈α·K⌉ sampled
	// futures. 0 or 1 maximizes plain expected value. Ignored by the other
	// methods.
	CVaRAlpha float64

	// MaxSeqLen and MaxReachable bound sequence generation (defaults 3, 8).
	MaxSeqLen, MaxReachable int
	// MaxSearchNodes bounds the exact DFSearch per planning call.
	MaxSearchNodes int

	// Epochs and TVFEpochs bound model training (defaults 15, 30).
	Epochs, TVFEpochs int

	// Step is the streaming replan interval in seconds (default 1).
	Step float64

	// Parallelism bounds the goroutines a planning instant may fan out
	// across (per-worker reachability and per-RTC-tree search): 0 uses one
	// goroutine per CPU, 1 runs serially. Plans are byte-identical at
	// every setting; only planning CPU time changes.
	Parallelism int

	// Seed makes training and planning deterministic (default 1).
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.SpeedKmPerSec <= 0 {
		c.SpeedKmPerSec = geo.DefaultSpeed
	}
	if c.GridRows <= 0 {
		c.GridRows = 6
	}
	if c.GridCols <= 0 {
		c.GridCols = 6
	}
	if c.DeltaT <= 0 {
		c.DeltaT = 5
	}
	if c.K <= 1 {
		c.K = 3
	}
	if c.Window <= 0 {
		c.Window = 8
	}
	if c.Threshold <= 0 {
		c.Threshold = predict.DefaultThreshold
	}
	if c.VirtualValidTime <= 0 {
		c.VirtualValidTime = 40
	}
	if c.Samples <= 0 {
		c.Samples = predict.DefaultSamples
	}
	if c.Epochs <= 0 {
		c.Epochs = 15
	}
	if c.TVFEpochs <= 0 {
		c.TVFEpochs = 30
	}
	if c.Step <= 0 {
		c.Step = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Framework is the DATA-WA system: travel model, demand predictor, task
// value function, and the planners built on them. Not safe for concurrent
// use.
type Framework struct {
	cfg    Config
	travel geo.TravelModel
	demand predict.Predictor
	// demandT0 anchors the prediction series at the earliest history task.
	demandT0 float64
	history  []*Task
	value    *tvf.Model
}

// New returns a Framework with the given configuration.
func New(cfg Config) *Framework {
	cfg = cfg.withDefaults()
	return &Framework{cfg: cfg, travel: geo.NewTravelModel(cfg.SpeedKmPerSec)}
}

func (f *Framework) grid() geo.Grid {
	return geo.NewGrid(f.cfg.Region, f.cfg.GridRows, f.cfg.GridCols)
}

func (f *Framework) assignOptions() assign.Options {
	return assign.Options{
		WDS: wds.Options{
			Travel:       f.travel,
			MaxSeqLen:    f.cfg.MaxSeqLen,
			MaxReachable: f.cfg.MaxReachable,
		},
		MaxNodes:    f.cfg.MaxSearchNodes,
		Parallelism: f.cfg.Parallelism,
	}
}

func (f *Framework) seriesConfig() predict.SeriesConfig {
	return predict.SeriesConfig{Grid: f.grid(), K: f.cfg.K, DeltaT: f.cfg.DeltaT, T0: f.demandT0}
}

// TrainDemand fits the DDGNN demand model on historical tasks (Section III).
// The history should cover at least Window·K·ΔT seconds before the stream
// the model will forecast. It returns an error when the region is unset or
// the history is too short.
func (f *Framework) TrainDemand(history []*Task) error {
	if f.cfg.Region.Width() <= 0 || f.cfg.Region.Height() <= 0 {
		return fmt.Errorf("datawa: TrainDemand requires a non-empty Config.Region")
	}
	if len(history) == 0 {
		return fmt.Errorf("datawa: TrainDemand requires historical tasks")
	}
	t0, tEnd := history[0].Pub, history[0].Pub
	for _, s := range history {
		if s.Pub < t0 {
			t0 = s.Pub
		}
		if s.Pub > tEnd {
			tEnd = s.Pub
		}
	}
	f.demandT0 = t0
	f.history = append([]*Task(nil), history...)
	series := predict.BuildSeries(f.seriesConfig(), history, tEnd)
	windows := series.Windows(f.cfg.Window, 1)
	if len(windows) == 0 {
		return fmt.Errorf("datawa: history spans %d vectors, need more than the %d-vector window",
			series.P(), f.cfg.Window)
	}
	model := predict.NewDDGNN(predict.DDGNNConfig{
		K: f.cfg.K, Hidden: 16, Embed: 8,
		Train: predict.TrainConfig{Epochs: f.cfg.Epochs, LR: 0.02, WeightDecay: 1e-3, Seed: f.cfg.Seed},
	})
	if err := model.Fit(windows); err != nil {
		return fmt.Errorf("datawa: demand training: %w", err)
	}
	f.demand = model
	return nil
}

// TrainValue learns the Task Value Function (Section IV-B) from exact
// DFSearch runs over sampled planning instants of the given worker/task
// population. instants controls how many snapshots are searched (≤ 0 uses
// 8).
func (f *Framework) TrainValue(workers []*Worker, tasks []*Task, instants int) error {
	if len(workers) == 0 || len(tasks) == 0 {
		return fmt.Errorf("datawa: TrainValue requires workers and tasks")
	}
	if instants <= 0 {
		instants = 8
	}
	t0, t1 := tasks[0].Pub, tasks[0].Pub
	for _, s := range tasks {
		if s.Pub < t0 {
			t0 = s.Pub
		}
		if s.Exp > t1 {
			t1 = s.Exp
		}
	}
	opts := f.assignOptions()
	var samples []tvf.Sample
	for i := 0; i < instants; i++ {
		t := t0 + (t1-t0)*float64(i)/float64(instants)
		var ws []*Worker
		for _, w := range workers {
			if w.Available(t) {
				ws = append(ws, w)
			}
		}
		var ts []*Task
		for _, s := range tasks {
			if s.Pub <= t && s.Exp > t {
				ts = append(ts, s)
			}
		}
		if len(ws) == 0 || len(ts) == 0 {
			continue
		}
		samples = append(samples, assign.CollectSamples(ws, ts, t, opts)...)
	}
	if len(samples) == 0 {
		return fmt.Errorf("datawa: no planning instants produced training data")
	}
	model := tvf.NewModel(16, f.cfg.Seed)
	model.Train(samples, tvf.TrainConfig{Epochs: f.cfg.TVFEpochs, Seed: f.cfg.Seed})
	f.value = model
	return nil
}

// HasDemandModel reports whether TrainDemand has succeeded.
func (f *Framework) HasDemandModel() bool { return f.demand != nil }

// HasValueModel reports whether TrainValue has succeeded.
func (f *Framework) HasValueModel() bool { return f.value != nil }

// Assign computes one spatial task assignment for the current workers and
// open tasks at time now — the Task Planning Assignment of Algorithm 4. It
// uses the TVF-guided search when a value model is trained and the exact
// DFSearch otherwise.
func (f *Framework) Assign(workers []*Worker, tasks []*Task, now float64) Plan {
	s := &assign.Search{Opts: f.assignOptions(), Model: f.value}
	return s.Plan(workers, tasks, now)
}

// forecaster builds the stream-time demand source, or nil without a model.
func (f *Framework) forecaster() stream.Forecaster {
	if f.demand == nil {
		return nil
	}
	inner := predict.NewForecaster(f.demand, f.seriesConfig(), f.cfg.Window, f.cfg.Threshold, f.cfg.VirtualValidTime)
	return &prefixedForecaster{inner: inner, prefix: f.history}
}

// sampledForecaster is forecaster with scenario sampling on top: the demand
// source for MethodSSP. Nil without a trained model.
func (f *Framework) sampledForecaster() stream.Forecaster {
	if f.demand == nil {
		return nil
	}
	point := predict.NewForecaster(f.demand, f.seriesConfig(), f.cfg.Window, f.cfg.Threshold, f.cfg.VirtualValidTime)
	sampler := predict.NewScenarioSampler(point, f.cfg.Samples, f.cfg.Seed)
	return &prefixedForecaster{inner: sampler, prefix: f.history}
}

// historyBoundedForecaster is the contract both predict.Forecaster and
// predict.ScenarioSampler satisfy: a stream forecaster with a bounded
// history horizon.
type historyBoundedForecaster interface {
	stream.Forecaster
	stream.HistoryBounded
}

// prefixedForecaster prepends training history so early stream windows are
// complete.
type prefixedForecaster struct {
	inner  historyBoundedForecaster
	prefix []*Task
}

func (p *prefixedForecaster) Virtuals(published []*Task, now float64) []*Task {
	all := make([]*Task, 0, len(p.prefix)+len(published))
	all = append(all, p.prefix...)
	all = append(all, published...)
	return p.inner.Virtuals(all, now)
}

func (p *prefixedForecaster) Span() float64 { return p.inner.Span() }

// HistorySpan implements stream.HistoryBounded: long-running drivers may
// prune their published feed to the inner forecaster's window. The training
// prefix is prepended on every call, so pruning only sheds runtime tasks the
// model no longer reads.
func (p *prefixedForecaster) HistorySpan() float64 { return p.inner.HistorySpan() }

// Run drives the adaptive streaming algorithm (Algorithm 3) over the full
// worker/task streams on the clock range [t0, t1) using the chosen method.
// MethodDTATP and MethodDATAWA require a trained demand model;
// MethodDATAWA additionally requires a trained value function.
func (f *Framework) Run(m Method, workers []*Worker, tasks []*Task, t0, t1 float64) (Result, error) {
	in := stream.Input{Workers: workers, Tasks: tasks, T0: t0, T1: t1}
	cfg := stream.Config{Step: f.cfg.Step, Travel: f.travel}
	opts := f.assignOptions()
	switch m {
	case MethodGreedy:
		cfg.Planner = &assign.Greedy{Opts: opts}
	case MethodFTA:
		cfg.Planner = &assign.Search{Opts: opts}
		cfg.Fixed = true
	case MethodDTA:
		cfg.Planner = &assign.Search{Opts: opts}
	case MethodDTATP:
		if f.demand == nil {
			return Result{}, fmt.Errorf("datawa: %s requires TrainDemand first", m)
		}
		cfg.Planner = &assign.Search{Opts: opts}
		cfg.Forecast = f.forecaster()
	case MethodDATAWA:
		if f.demand == nil {
			return Result{}, fmt.Errorf("datawa: %s requires TrainDemand first", m)
		}
		if f.value == nil {
			return Result{}, fmt.Errorf("datawa: %s requires TrainValue first", m)
		}
		cfg.Planner = &assign.Search{Opts: opts, Model: f.value}
		cfg.Forecast = f.forecaster()
	case MethodSSP:
		if f.demand == nil {
			return Result{}, fmt.Errorf("datawa: %s requires TrainDemand first", m)
		}
		cfg.Planner = &assign.SSP{Opts: opts, Samples: f.cfg.Samples, CVaRAlpha: f.cfg.CVaRAlpha}
		cfg.Forecast = f.sampledForecaster()
	default:
		return Result{}, fmt.Errorf("datawa: unknown method %q (methods: %s)", m, methodList())
	}
	return stream.Run(in, cfg), nil
}

// DispatchConfig parameterizes the live dispatch service built by
// NewDispatcher. The zero value is usable: one shard, the framework's step
// as the epoch length.
type DispatchConfig struct {
	// Shards is the number of region shards planned in parallel (default 1).
	// Multiple shards require Config.Region to be set, since shard routing
	// partitions the demand grid.
	Shards int
	// Step is the epoch length in logical seconds (default Config.Step).
	Step float64
	// Now is the initial logical clock — the first epoch instant. To replay
	// a scenario trace equivalently to Run, set it to the trace's T0: the
	// dispatcher plans at Now, Now+Step, …, so a T0 offset from Now shifts
	// every planning instant and the outcomes diverge.
	Now float64
	// HaloRadius configures cross-shard task handoff in kilometers: tasks
	// whose disk of this radius crosses a shard boundary are replicated into
	// the neighboring shards as ghost candidates, with deterministic commit
	// arbitration. 0 (default) auto-derives the radius from the largest
	// admitted worker reach; negative disables replication. See
	// dispatch.Config.HaloRadius.
	HaloRadius float64
	// QueueSize bounds the ingest queue (default 4096).
	QueueSize int
	// LatencyWindow sizes the epoch-latency percentile window (default 1024).
	LatencyWindow int
	// DisableIncremental turns off incremental epoch replanning. By default
	// each shard's planner reuses the plans of quiet pool regions across
	// epochs (byte-identical to full replanning; see
	// dispatch.Config.DisableIncremental); incremental requires a non-empty
	// Config.Region and is unavailable under MethodFTA either way.
	DisableIncremental bool
	// Admission bounds the ingest path (shed/defer by deadline when
	// saturated); the zero value admits everything. See
	// dispatch.AdmissionConfig.
	Admission AdmissionConfig
	// Governor enables SLA-aware planner degradation when Budget > 0: each
	// shard steps down a method-specific ladder (full planner → Greedy →
	// reachability-only Match) when its windowed p95 epoch cost exceeds
	// the budget, recovering hysteretically. See dispatch.GovernorConfig.
	Governor GovernorConfig
	// TraceDepth retains the last N per-epoch trace records for the
	// operability endpoints (0 = off).
	TraceDepth int
	// Obs enables the observability core: stage spans (GET /v1/trace.json),
	// the per-task lifecycle ledger (GET /v1/tasks/{id}/history), and the
	// flight recorder (GET /v1/flight). The epoch/stage wall-time histograms
	// on /metrics are always on. See dispatch.ObsConfig.
	Obs ObsConfig
}

// AdmissionConfig bounds the dispatcher's ingest path.
type AdmissionConfig = dispatch.AdmissionConfig

// GovernorConfig parameterizes the SLA epoch governor.
type GovernorConfig = dispatch.GovernorConfig

// ObsConfig parameterizes the dispatcher's observability core.
type ObsConfig = dispatch.ObsConfig

// NewDispatcher builds a live dispatch service running the chosen method:
// the online counterpart of Run, fed by concurrent events instead of a
// closed trace. Each shard receives its own planner (and forecaster, for the
// prediction methods); MethodDTATP and MethodDATAWA require the same trained
// models Run does. Drive the returned dispatcher with its Serve loop for
// wall-clock operation, or Advance/Tick for deterministic replay.
func (f *Framework) NewDispatcher(m Method, dc DispatchConfig) (*Dispatcher, error) {
	if dc.Shards > 1 && (f.cfg.Region.Width() <= 0 || f.cfg.Region.Height() <= 0) {
		return nil, fmt.Errorf("datawa: %d shards require a non-empty Config.Region", dc.Shards)
	}
	cfg := dispatch.Config{
		Shards:             dc.Shards,
		HaloRadius:         dc.HaloRadius,
		Step:               dc.Step,
		Now:                dc.Now,
		QueueSize:          dc.QueueSize,
		LatencyWindow:      dc.LatencyWindow,
		DisableIncremental: dc.DisableIncremental,
		Admission:          dc.Admission,
		Governor:           dc.Governor,
		TraceDepth:         dc.TraceDepth,
		Obs:                dc.Obs,
		Travel:             f.travel,
		Parallelism:        f.cfg.Parallelism,
	}
	if cfg.Step <= 0 {
		cfg.Step = f.cfg.Step
	}
	// The grid feeds shard ownership (Shards > 1) and the incremental
	// replanner's dirty-cell partition (any shard count); a framework without
	// a region can only run single-shard, full-replan dispatch.
	if f.cfg.Region.Width() > 0 && f.cfg.Region.Height() > 0 {
		cfg.Grid = f.grid()
	}
	opts := f.assignOptions()
	switch m {
	case MethodGreedy:
		cfg.NewPlanner = func(int) assign.Planner { return &assign.Greedy{Opts: opts} }
	case MethodFTA:
		cfg.NewPlanner = func(int) assign.Planner { return &assign.Search{Opts: opts} }
		cfg.Fixed = true
	case MethodDTA:
		cfg.NewPlanner = func(int) assign.Planner { return &assign.Search{Opts: opts} }
	case MethodDTATP:
		if f.demand == nil {
			return nil, fmt.Errorf("datawa: %s requires TrainDemand first", m)
		}
		cfg.NewPlanner = func(int) assign.Planner { return &assign.Search{Opts: opts} }
		cfg.Forecast = f.forecaster()
	case MethodDATAWA:
		if f.demand == nil {
			return nil, fmt.Errorf("datawa: %s requires TrainDemand first", m)
		}
		if f.value == nil {
			return nil, fmt.Errorf("datawa: %s requires TrainValue first", m)
		}
		cfg.NewPlanner = func(int) assign.Planner { return &assign.Search{Opts: opts, Model: f.value} }
		cfg.Forecast = f.forecaster()
	case MethodSSP:
		if f.demand == nil {
			return nil, fmt.Errorf("datawa: %s requires TrainDemand first", m)
		}
		cfg.NewPlanner = func(int) assign.Planner {
			return &assign.SSP{Opts: opts, Samples: f.cfg.Samples, CVaRAlpha: f.cfg.CVaRAlpha}
		}
		cfg.Forecast = f.sampledForecaster()
		// Incremental replanning caches the plans of quiet empty components,
		// which is sound only when a component's plan emptiness depends on
		// the pool alone. SSP's CVaR fold can flip a component between empty
		// and non-empty across instants with an unchanged pool (a worst-case
		// scenario tie breaking the other way), so the cache could splice a
		// stale empty plan. Force full replanning for this method.
		cfg.DisableIncremental = true
	default:
		return nil, fmt.Errorf("datawa: unknown method %q (methods: %s)", m, methodList())
	}
	// Under a governor the method's planner becomes the top tier of a
	// degradation ladder: full planner → Greedy → reachability-only Match.
	// Greedy's ladder skips itself (Greedy → Match), and SSP degrades
	// through the point-forecast search (SSP → DTA → Greedy → Match) so the
	// first step under pressure sheds the K-fold sampling cost, not the
	// look-ahead itself.
	if dc.Governor.Budget > 0 {
		top := cfg.NewPlanner
		switch m {
		case MethodGreedy:
			cfg.NewLadder = func(shard int) []assign.Planner {
				return []assign.Planner{top(shard), &assign.Match{Opts: opts}}
			}
		case MethodSSP:
			cfg.NewLadder = func(shard int) []assign.Planner {
				return []assign.Planner{top(shard), &assign.Search{Opts: opts}, &assign.Greedy{Opts: opts}, &assign.Match{Opts: opts}}
			}
		default:
			cfg.NewLadder = func(shard int) []assign.Planner {
				return []assign.Planner{top(shard), &assign.Greedy{Opts: opts}, &assign.Match{Opts: opts}}
			}
		}
	}
	return dispatch.New(cfg), nil
}

// Archetype is one named entry of the scenario atlas: a documented demand
// regime with a Scale knob that multiplies worker/task density while keeping
// the regime's structure fixed. See docs/SCENARIOS.md for the atlas.
type Archetype = scenario.Archetype

// Archetypes returns every registered scenario-atlas archetype, sorted by
// name.
func Archetypes() []Archetype { return scenario.Registry() }

// ArchetypeByName returns the atlas archetype registered under name
// (e.g. "rush-hour", "multi-city").
func ArchetypeByName(name string) (Archetype, bool) { return scenario.Get(name) }

// YuecheScenario returns the synthetic stand-in for the paper's Yueche
// trace (Table II).
func YuecheScenario() ScenarioConfig { return workload.Yueche() }

// DiDiScenario returns the synthetic stand-in for the paper's DiDi trace.
func DiDiScenario() ScenarioConfig { return workload.DiDi() }

// GenerateScenario materializes a scenario deterministically.
func GenerateScenario(c ScenarioConfig) *Scenario { return workload.Generate(c) }
