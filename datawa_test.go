package datawa

import (
	"strings"
	"testing"
)

// smallScenario returns a fast deterministic scenario for façade tests.
func smallScenario() *Scenario {
	cfg := YuecheScenario().Scaled(0.04)
	return GenerateScenario(cfg)
}

func frameworkFor(s *Scenario) *Framework {
	return New(Config{
		Region:   Rect{MinX: 0, MinY: 0, MaxX: 6, MaxY: 6},
		GridRows: 6, GridCols: 6,
		Epochs: 3, TVFEpochs: 8, Step: 2, Seed: 7,
	})
}

func TestMethodsList(t *testing.T) {
	ms := Methods()
	if len(ms) != 6 || ms[0] != MethodGreedy || ms[4] != MethodDATAWA || ms[5] != MethodSSP {
		t.Errorf("Methods() = %v", ms)
	}
}

func TestRunBaselinesWithoutTraining(t *testing.T) {
	s := smallScenario()
	fw := frameworkFor(s)
	for _, m := range []Method{MethodGreedy, MethodFTA, MethodDTA} {
		res, err := fw.Run(m, s.Workers, s.Tasks, s.T0, s.T1)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if res.Assigned <= 0 {
			t.Errorf("%s assigned %d tasks, want > 0", m, res.Assigned)
		}
		if res.Assigned+res.Expired > len(s.Tasks) {
			t.Errorf("%s: assigned+expired exceeds |S|", m)
		}
	}
}

func TestPredictionMethodsRequireTraining(t *testing.T) {
	s := smallScenario()
	fw := frameworkFor(s)
	if _, err := fw.Run(MethodDTATP, s.Workers, s.Tasks, s.T0, s.T1); err == nil {
		t.Error("DTA+TP without TrainDemand should fail")
	}
	if _, err := fw.Run(MethodDATAWA, s.Workers, s.Tasks, s.T0, s.T1); err == nil {
		t.Error("DATA-WA without training should fail")
	}
	if err := fw.TrainDemand(s.History); err != nil {
		t.Fatalf("TrainDemand: %v", err)
	}
	if !fw.HasDemandModel() {
		t.Error("HasDemandModel should be true after TrainDemand")
	}
	if _, err := fw.Run(MethodDATAWA, s.Workers, s.Tasks, s.T0, s.T1); err == nil {
		t.Error("DATA-WA without TrainValue should still fail")
	}
}

func TestFullDATAWAPipeline(t *testing.T) {
	s := smallScenario()
	fw := frameworkFor(s)
	if err := fw.TrainDemand(s.History); err != nil {
		t.Fatalf("TrainDemand: %v", err)
	}
	if err := fw.TrainValue(s.Workers, s.Tasks, 3); err != nil {
		t.Fatalf("TrainValue: %v", err)
	}
	if !fw.HasValueModel() {
		t.Error("HasValueModel should be true")
	}
	for _, m := range []Method{MethodDTATP, MethodDATAWA} {
		res, err := fw.Run(m, s.Workers, s.Tasks, s.T0, s.T1)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if res.Assigned < 0 || res.Assigned > len(s.Tasks) {
			t.Errorf("%s assigned %d", m, res.Assigned)
		}
		if res.PlanCalls == 0 {
			t.Errorf("%s never planned", m)
		}
	}
}

func TestSSPRequiresTraining(t *testing.T) {
	s := smallScenario()
	fw := frameworkFor(s)
	if _, err := fw.Run(MethodSSP, s.Workers, s.Tasks, s.T0, s.T1); err == nil {
		t.Error("SSP without TrainDemand should fail")
	}
	if _, err := fw.NewDispatcher(MethodSSP, DispatchConfig{}); err == nil {
		t.Error("SSP dispatcher without TrainDemand should fail")
	}
}

// TestSSPOneSampleMatchesPointForecast pins the K=1 contract at the façade
// level: SSP with a single sample is the point-forecast pipeline (DTA+TP)
// byte for byte, so every aggregate matches exactly.
func TestSSPOneSampleMatchesPointForecast(t *testing.T) {
	s := smallScenario()
	run := func(m Method, samples int) Result {
		fw := New(Config{
			Region:   Rect{MinX: 0, MinY: 0, MaxX: 6, MaxY: 6},
			GridRows: 6, GridCols: 6,
			Epochs: 3, TVFEpochs: 8, Step: 2, Seed: 7,
			Samples: samples,
		})
		if err := fw.TrainDemand(s.History); err != nil {
			t.Fatalf("TrainDemand: %v", err)
		}
		res, err := fw.Run(m, s.Workers, s.Tasks, s.T0, s.T1)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		return res
	}
	ref := run(MethodDTATP, 0)
	ssp1 := run(MethodSSP, 1)
	if ssp1.Assigned != ref.Assigned || ssp1.Expired != ref.Expired ||
		ssp1.PlanCalls != ref.PlanCalls || ssp1.Repositions != ref.Repositions {
		t.Errorf("SSP K=1 diverged from DTA+TP: assigned %d/%d expired %d/%d plans %d/%d repositions %d/%d",
			ssp1.Assigned, ref.Assigned, ssp1.Expired, ref.Expired,
			ssp1.PlanCalls, ref.PlanCalls, ssp1.Repositions, ref.Repositions)
	}
	// The default sample count must run end to end too (outcomes may differ —
	// that is the point of sampling).
	sspK := run(MethodSSP, 0)
	if sspK.Assigned < 0 || sspK.Assigned+sspK.Expired > len(s.Tasks) {
		t.Errorf("SSP sampled run inconsistent: %+v", sspK)
	}
}

func TestRunUnknownMethod(t *testing.T) {
	s := smallScenario()
	fw := frameworkFor(s)
	if _, err := fw.Run(Method("bogus"), s.Workers, s.Tasks, s.T0, s.T1); err == nil {
		t.Error("unknown method should fail")
	} else if !strings.Contains(err.Error(), "bogus") {
		t.Errorf("error should name the method: %v", err)
	}
}

func TestAssignOneInstant(t *testing.T) {
	s := smallScenario()
	fw := frameworkFor(s)
	// Take a mid-run snapshot.
	now := (s.T0 + s.T1) / 2
	var workers []*Worker
	for _, w := range s.Workers {
		if w.Available(now) {
			workers = append(workers, w)
		}
	}
	var tasks []*Task
	for _, task := range s.Tasks {
		if task.Pub <= now && task.Exp > now {
			tasks = append(tasks, task)
		}
	}
	if len(workers) == 0 || len(tasks) == 0 {
		t.Skip("snapshot empty at this scale")
	}
	plan := fw.Assign(workers, tasks, now)
	if _, ok := plan.Consistent(); !ok {
		t.Error("plan assigns a task twice")
	}
}

func TestTrainDemandValidation(t *testing.T) {
	fw := New(Config{}) // no region
	if err := fw.TrainDemand([]*Task{{ID: 1}}); err == nil {
		t.Error("TrainDemand without region should fail")
	}
	fw = New(Config{Region: Rect{MinX: 0, MinY: 0, MaxX: 6, MaxY: 6}})
	if err := fw.TrainDemand(nil); err == nil {
		t.Error("TrainDemand without history should fail")
	}
	// Too little history for even one window.
	short := []*Task{{ID: 1, Loc: Point{X: 1, Y: 1}, Pub: 0, Exp: 40}}
	if err := fw.TrainDemand(short); err == nil {
		t.Error("TrainDemand with one task should fail")
	}
}

func TestTrainValueValidation(t *testing.T) {
	fw := New(Config{Region: Rect{MinX: 0, MinY: 0, MaxX: 6, MaxY: 6}})
	if err := fw.TrainValue(nil, nil, 4); err == nil {
		t.Error("TrainValue without data should fail")
	}
}

func TestScenarioGenerators(t *testing.T) {
	y := YuecheScenario()
	d := DiDiScenario()
	if y.NumWorkers != 624 || d.NumWorkers != 760 {
		t.Errorf("scenario cardinalities wrong: %d, %d", y.NumWorkers, d.NumWorkers)
	}
	s := GenerateScenario(y.Scaled(0.02))
	if len(s.Tasks) == 0 || len(s.Workers) == 0 {
		t.Error("generated scenario empty")
	}
}

func TestNewDispatcherMatchesRun(t *testing.T) {
	s := smallScenario()
	fw := frameworkFor(s)
	ref, err := fw.Run(MethodDTA, s.Workers, s.Tasks, s.T0, s.T1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := fw.NewDispatcher(MethodDTA, DispatchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range s.Workers {
		d.Ingest(WorkerOnlineEvent(w))
	}
	for _, task := range s.Tasks {
		d.Ingest(TaskSubmitEvent(task))
	}
	d.Advance(s.T1)
	m := d.Snapshot()
	if m.Assigned != ref.Assigned || m.Expired != ref.Expired {
		t.Fatalf("dispatcher assigned/expired = %d/%d, Run = %d/%d",
			m.Assigned, m.Expired, ref.Assigned, ref.Expired)
	}
}

func TestNewDispatcherValidation(t *testing.T) {
	fw := New(Config{}) // no region
	if _, err := fw.NewDispatcher(MethodDTA, DispatchConfig{Shards: 4}); err == nil {
		t.Error("multi-shard dispatcher without region should fail")
	}
	if _, err := fw.NewDispatcher(MethodDATAWA, DispatchConfig{}); err == nil {
		t.Error("DATA-WA dispatcher without training should fail")
	}
	if _, err := fw.NewDispatcher(Method("bogus"), DispatchConfig{}); err == nil {
		t.Error("unknown method should fail")
	}
}

func TestNewDispatcherSharded(t *testing.T) {
	s := smallScenario()
	fw := New(Config{
		Region:   s.Config.Region,
		GridRows: s.Config.GridRows, GridCols: s.Config.GridCols,
		Step: 2, Seed: 7,
	})
	d, err := fw.NewDispatcher(MethodGreedy, DispatchConfig{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range s.Workers {
		d.Ingest(WorkerOnlineEvent(w))
	}
	for _, task := range s.Tasks {
		d.Ingest(TaskSubmitEvent(task))
	}
	d.Advance(s.T1)
	m := d.Snapshot()
	if len(m.Shards) != 4 {
		t.Fatalf("snapshot reports %d shards, want 4", len(m.Shards))
	}
	if m.Assigned == 0 {
		t.Error("sharded dispatcher assigned nothing")
	}
	if m.Unroutable != 0 {
		t.Errorf("%d unroutable events", m.Unroutable)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.SpeedKmPerSec <= 0 || c.DeltaT != 5 || c.K != 3 || c.Threshold != 0.85 {
		t.Errorf("defaults wrong: %+v", c)
	}
	// Explicit values survive.
	c = Config{DeltaT: 9, K: 4}.withDefaults()
	if c.DeltaT != 9 || c.K != 4 {
		t.Errorf("explicit values clobbered: %+v", c)
	}
}
