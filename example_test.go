package datawa_test

import (
	"fmt"

	"repro"
)

// exampleWorkers returns two couriers in a 2×2 km downtown.
func exampleWorkers() []*datawa.Worker {
	return []*datawa.Worker{
		{ID: 1, Loc: datawa.Point{X: 0.2, Y: 0.2}, Reach: 1.5, On: 0, Off: 1800},
		{ID: 2, Loc: datawa.Point{X: 1.8, Y: 1.8}, Reach: 1.5, On: 0, Off: 1800},
	}
}

// exampleTasks returns a small task stream over the first minutes.
func exampleTasks() []*datawa.Task {
	return []*datawa.Task{
		{ID: 1, Loc: datawa.Point{X: 0.5, Y: 0.3}, Pub: 0, Exp: 300},
		{ID: 2, Loc: datawa.Point{X: 0.9, Y: 0.6}, Pub: 0, Exp: 400},
		{ID: 3, Loc: datawa.Point{X: 1.6, Y: 1.5}, Pub: 0, Exp: 300},
		{ID: 4, Loc: datawa.Point{X: 1.2, Y: 1.9}, Pub: 60, Exp: 500},
	}
}

// ExampleFramework_Assign plans one assignment instant — the Task Planning
// Assignment of Algorithm 4 — without any trained models (exact DFSearch).
func ExampleFramework_Assign() {
	fw := datawa.New(datawa.Config{
		Region:   datawa.Rect{MinX: 0, MinY: 0, MaxX: 2, MaxY: 2},
		GridRows: 2, GridCols: 2,
	})
	plan := fw.Assign(exampleWorkers(), exampleTasks(), 0)
	for _, a := range plan {
		fmt.Printf("worker %d -> tasks %v\n", a.Worker.ID, a.Seq.IDs())
	}
	fmt.Printf("assigned %d tasks\n", plan.RealSize())
	// Output:
	// worker 1 -> tasks [1 2]
	// worker 2 -> tasks [3 4]
	// assigned 4 tasks
}

// ExampleFramework_Run streams a scenario end to end with dynamic task
// adjustment (Algorithm 3), the DTA method of Section V-B.2.
func ExampleFramework_Run() {
	fw := datawa.New(datawa.Config{
		Region:   datawa.Rect{MinX: 0, MinY: 0, MaxX: 2, MaxY: 2},
		GridRows: 2, GridCols: 2,
	})
	res, err := fw.Run(datawa.MethodDTA, exampleWorkers(), exampleTasks(), 0, 600)
	if err != nil {
		fmt.Println("run:", err)
		return
	}
	fmt.Printf("assigned %d of %d tasks, %d expired\n",
		res.Assigned, len(exampleTasks()), res.Expired)
	// Output:
	// assigned 4 of 4 tasks, 0 expired
}

// ExampleFramework_TrainDemand fits the DDGNN demand model on a generated
// history trace and reports readiness; with a trained demand model the
// prediction-driven methods (DTA+TP, DATA-WA) become available.
func ExampleFramework_TrainDemand() {
	cfg := datawa.YuecheScenario().Scaled(0.05)
	sc := datawa.GenerateScenario(cfg)

	fw := datawa.New(datawa.Config{
		Region:   cfg.Region,
		GridRows: 3, GridCols: 3,
		Epochs: 2, Window: 3, // demo-sized training run
	})
	if err := fw.TrainDemand(sc.History); err != nil {
		fmt.Println("train:", err)
		return
	}
	fmt.Println("demand model trained:", fw.HasDemandModel())
	// Output:
	// demand model trained: true
}

// ExampleConfig_parallelism plans the same instant serially and with a
// 4-goroutine fan-out: plans are byte-identical at every parallelism level,
// only planning CPU time changes.
func ExampleConfig_parallelism() {
	serial := datawa.New(datawa.Config{Parallelism: 1})
	parallel := datawa.New(datawa.Config{Parallelism: 4})

	a := serial.Assign(exampleWorkers(), exampleTasks(), 0)
	b := parallel.Assign(exampleWorkers(), exampleTasks(), 0)

	same := len(a) == len(b)
	for i := 0; same && i < len(a); i++ {
		same = a[i].Worker.ID == b[i].Worker.ID &&
			fmt.Sprint(a[i].Seq.IDs()) == fmt.Sprint(b[i].Seq.IDs())
	}
	fmt.Println("identical plans:", same)
	// Output:
	// identical plans: true
}
