// Demandforecast exercises the task demand prediction component alone:
// it discretizes a DiDi-like history into the task multivariate time series
// of Section III, trains the three predictors the paper compares, and
// prints their precision-recall quality — one column of Fig. 6(a).
//
// This example uses the internal prediction packages directly (it lives in
// the library's module); downstream users get the same functionality via
// datawa.Framework.TrainDemand.
//
// Run with: go run ./examples/demandforecast
package main

import (
	"fmt"
	"log"

	"repro/internal/predict"
	"repro/internal/workload"
)

func main() {
	cfg := workload.DiDi().Scaled(0.15)
	cfg.HistoryDuration = 3600 // a full training hour
	sc := workload.Generate(cfg)

	const deltaT = 5
	series := predict.BuildSeries(sc.SeriesConfig(3, deltaT), sc.History, 0)
	windows := series.Windows(8, 1)
	train, test := predict.SplitWindows(windows, 0.8)
	fmt.Printf("DiDi-like history: %d tasks -> %d series vectors (deltaT=%ds, k=3)\n",
		len(sc.History), series.P(), deltaT)
	fmt.Printf("training on %d windows, testing on %d\n\n", len(train), len(test))

	tc := predict.TrainConfig{Epochs: 12, LR: 0.02, WeightDecay: 1e-3, Seed: 3}
	models := []predict.Predictor{
		predict.NewLSTMPredictor(3, 16, tc),
		predict.NewGraphWaveNet(sc.Grid.Cells(), 3, 16, 8, tc),
		predict.NewDDGNN(predict.DDGNNConfig{K: 3, Hidden: 16, Embed: 8, Train: tc}),
	}
	fmt.Printf("%-15s %8s %12s %12s\n", "model", "AP", "train", "test/window")
	for _, m := range models {
		res, err := predict.Evaluate(m, train, test)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s %8.3f %12v %12v\n", res.Model, res.AP,
			res.TrainTime.Round(1e6), res.TestTime)
	}

	// Show the learned dynamic dependency matrix for the latest window —
	// the paper's Eq. 6 in action.
	ddgnn := models[2].(*predict.DDGNN)
	adj := ddgnn.Adjacency(test[len(test)-1].Inputs)
	maxI, maxJ, maxV := 0, 0, 0.0
	for i := 0; i < adj.Rows; i++ {
		for j := 0; j < adj.Cols; j++ {
			if i != j && adj.At(i, j) > maxV {
				maxI, maxJ, maxV = i, j, adj.At(i, j)
			}
		}
	}
	fmt.Printf("\nstrongest learned cross-cell dependency: cell %d -> cell %d (weight %.3f)\n",
		maxI, maxJ, maxV)
}
