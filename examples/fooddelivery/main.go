// Fooddelivery models the paper's second motivating workload: a lunch rush
// where orders (tasks) spike around restaurant clusters and couriers
// (workers) must be positioned before orders expire. The scenario is built
// by hand against the public API — no generator — to show how a downstream
// platform would feed its own data into DATA-WA.
//
// Run with: go run ./examples/fooddelivery
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// Three restaurant districts in a 4×4 km city.
	districts := []datawa.Point{{X: 0.8, Y: 0.8}, {X: 3.2, Y: 1.0}, {X: 2.0, Y: 3.2}}

	// Lunch rush: the first district peaks early, the others follow —
	// 25 minutes of orders, each valid for 90 seconds.
	var tasks []*datawa.Task
	var history []*datawa.Task
	id := 1
	makeOrders := func(out *[]*datawa.Task, from, to float64) {
		for t := from; t < to; t += 4 {
			phase := (t - from) / (to - from)
			d := 0
			if phase > 0.4 {
				d = 1
			}
			if phase > 0.7 {
				d = 2
			}
			c := districts[d]
			loc := datawa.Point{X: c.X + rng.NormFloat64()*0.3, Y: c.Y + rng.NormFloat64()*0.3}
			*out = append(*out, &datawa.Task{ID: id, Loc: loc, Pub: t, Exp: t + 90})
			id++
		}
	}
	makeOrders(&history, -1500, 0) // the previous lunch half-hour trains the predictor
	makeOrders(&tasks, 0, 1500)

	// Twelve couriers with staggered shifts.
	var couriers []*datawa.Worker
	for i := 0; i < 12; i++ {
		on := float64(i%4) * 120
		couriers = append(couriers, &datawa.Worker{
			ID:    i + 1,
			Loc:   datawa.Point{X: rng.Float64() * 4, Y: rng.Float64() * 4},
			Reach: 2,
			On:    on,
			Off:   on + 1200,
		})
	}

	fw := datawa.New(datawa.Config{
		Region:   datawa.Rect{MinX: 0, MinY: 0, MaxX: 4, MaxY: 4},
		GridRows: 4, GridCols: 4,
		DeltaT: 8, Window: 6,
		VirtualValidTime: 90,
		Epochs:           10, TVFEpochs: 20,
		Step: 2,
	})
	if err := fw.TrainDemand(history); err != nil {
		log.Fatal(err)
	}
	if err := fw.TrainValue(couriers, tasks, 5); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("lunch rush: %d orders, %d couriers\n\n", len(tasks), len(couriers))
	for _, m := range []datawa.Method{datawa.MethodGreedy, datawa.MethodDTA, datawa.MethodDATAWA} {
		res, err := fw.Run(m, couriers, tasks, 0, 1800)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s delivered %3d/%d orders (%d expired, %d repositions)\n",
			m, res.Assigned, len(tasks), res.Expired, res.Repositions)
	}
}
