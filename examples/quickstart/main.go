// Quickstart: assign a handful of spatial tasks to two couriers with the
// DATA-WA framework, then stream the same scenario end to end.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Two workers in a 2×2 km downtown. Worker 1 is online for the first
	// 30 minutes; worker 2 joins after 5 minutes.
	workers := []*datawa.Worker{
		{ID: 1, Loc: datawa.Point{X: 0.2, Y: 0.2}, Reach: 1.5, On: 0, Off: 1800},
		{ID: 2, Loc: datawa.Point{X: 1.8, Y: 1.8}, Reach: 1.5, On: 300, Off: 1800},
	}
	// Five tasks published over the first few minutes, each valid for two
	// minutes.
	tasks := []*datawa.Task{
		{ID: 1, Loc: datawa.Point{X: 0.5, Y: 0.3}, Pub: 0, Exp: 120},
		{ID: 2, Loc: datawa.Point{X: 0.9, Y: 0.6}, Pub: 30, Exp: 150},
		{ID: 3, Loc: datawa.Point{X: 1.6, Y: 1.5}, Pub: 320, Exp: 440},
		{ID: 4, Loc: datawa.Point{X: 1.2, Y: 1.9}, Pub: 350, Exp: 470},
		{ID: 5, Loc: datawa.Point{X: 0.1, Y: 1.9}, Pub: 400, Exp: 430},
	}

	fw := datawa.New(datawa.Config{
		Region:   datawa.Rect{MinX: 0, MinY: 0, MaxX: 2, MaxY: 2},
		GridRows: 2, GridCols: 2,
	})

	// One planning instant: the Task Planning Assignment of Algorithm 4.
	plan := fw.Assign(workers[:1], tasks[:2], 0)
	for _, a := range plan {
		fmt.Printf("t=0: worker %d gets sequence %v\n", a.Worker.ID, a.Seq.IDs())
	}

	// A full streaming run with dynamic task adjustment (DTA).
	res, err := fw.Run(datawa.MethodDTA, workers, tasks, 0, 600)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stream: %d of %d tasks assigned, %d expired, avg plan cost %v\n",
		res.Assigned, len(tasks), res.Expired, res.AvgPlanTime)
}
