// Ridehailing compares all five assignment methods of the paper (Greedy,
// FTA, DTA, DTA+TP, DATA-WA) on a Yueche-like evening-peak scenario — the
// motivating workload of the paper's introduction: passenger requests are
// tasks, drivers are workers, and demand surges move across the city.
//
// Run with: go run ./examples/ridehailing
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	cfg := datawa.YuecheScenario().Scaled(0.1)
	sc := datawa.GenerateScenario(cfg)
	fmt.Printf("Yueche-like scenario: %d drivers, %d requests over %.0f minutes\n\n",
		len(sc.Workers), len(sc.Tasks), cfg.Duration/60)

	fw := datawa.New(datawa.Config{
		Region:   cfg.Region,
		GridRows: cfg.GridRows, GridCols: cfg.GridCols,
		Epochs: 10, TVFEpochs: 20, Step: 2,
	})
	fmt.Println("training demand model on the preceding hour of requests ...")
	if err := fw.TrainDemand(sc.History); err != nil {
		log.Fatal(err)
	}
	fmt.Println("training task value function from exact-search traces ...")
	if err := fw.TrainValue(sc.Workers, sc.Tasks, 6); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	fmt.Printf("%-10s %10s %10s %14s\n", "method", "assigned", "expired", "cpu/instant")
	for _, m := range datawa.Methods() {
		res, err := fw.Run(m, sc.Workers, sc.Tasks, sc.T0, sc.T1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %10d %10d %14v\n", m, res.Assigned, res.Expired, res.AvgPlanTime)
	}
	fmt.Println("\nexpected shape (paper Figs. 7-11): DTA+TP and DATA-WA assign the most;")
	fmt.Println("DATA-WA plans markedly faster than DTA+TP; Greedy is cheapest but worst.")
}
