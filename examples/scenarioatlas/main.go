// Example scenarioatlas walks the scenario atlas (docs/SCENARIOS.md): it
// lists every registered archetype, then runs one bursty regime —
// event-spike — at a small density through both execution paths, the offline
// stream engine and the live dispatch service, and prints the outcomes side
// by side. The same pattern at full density is what cmd/datawa-bench -suite
// records into BENCH_*.json.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	fmt.Println("scenario atlas:")
	for _, a := range datawa.Archetypes() {
		c := a.Scale(1)
		fmt.Printf("  %-14s %4d workers %5d tasks — %s\n", a.Name, c.NumWorkers, c.NumTasks, a.Summary)
	}

	arch, ok := datawa.ArchetypeByName("event-spike")
	if !ok {
		log.Fatal("event-spike missing from the atlas")
	}
	cfg := arch.Scale(0.4)
	sc := datawa.GenerateScenario(cfg)
	fmt.Printf("\n%s at 0.4x: %d workers, %d tasks over %.0f s\n",
		arch.Name, len(sc.Workers), len(sc.Tasks), cfg.Duration)

	fw := datawa.New(datawa.Config{
		Region:   cfg.Region,
		GridRows: cfg.GridRows, GridCols: cfg.GridCols,
		Step: 2, Seed: cfg.Seed,
	})

	// Offline: closed-trace replay through the stream engine.
	res, err := fw.Run(datawa.MethodGreedy, sc.Workers, sc.Tasks, sc.T0, sc.T1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline engine: %d/%d assigned (%.1f%%), %v cpu/instant\n",
		res.Assigned, len(sc.Tasks), 100*float64(res.Assigned)/float64(len(sc.Tasks)), res.AvgPlanTime)

	// Live: the same trace through the sharded dispatch service.
	d, err := fw.NewDispatcher(datawa.MethodGreedy, datawa.DispatchConfig{Shards: 2, Step: 2, Now: sc.T0})
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range sc.Workers {
		d.Ingest(datawa.WorkerOnlineEvent(w))
	}
	for _, task := range sc.Tasks {
		d.Ingest(datawa.TaskSubmitEvent(task))
	}
	d.Advance(sc.T1)
	m := d.Snapshot()
	fmt.Printf("live dispatch:  %d/%d assigned (%.1f%%), epoch p95 %v over %d epochs\n",
		m.Assigned, len(sc.Tasks), 100*float64(m.Assigned)/float64(len(sc.Tasks)), m.EpochP95, m.Epochs)
}
