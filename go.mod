module repro

go 1.24

require honnef.co/go/tools v0.6.1
