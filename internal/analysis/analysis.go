// Package analysis is the repo's static-analysis framework: a minimal,
// dependency-free core compatible in shape with golang.org/x/tools/go/analysis.
// The real x/tools module is deliberately not vendored — the repo has no
// module dependencies (go.mod is bare), so the framework reimplements the
// small slice the datawa-lint suite needs on top of go/ast and go/types:
//
//   - Analyzer / Pass / Diagnostic, the unit every checker is written against
//     (analysis.go, this file);
//   - the //datawa: annotation vocabulary shared by the analyzers
//     (directives.go);
//   - the `go vet -vettool=` driver protocol (unit/), so the suite runs as a
//     first-class vet tool with the build cache doing incremental work;
//   - an analysistest-style fixture harness (analysistest/).
//
// The four analyzers live in subpackages: determinism, guarded, hotpath and
// expofmt. docs/LINTING.md is the user-facing catalog.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer is one static check. Run inspects a single type-checked
// package via the Pass and reports findings through Pass.Report; the
// analyzers in this suite are all package-local (no cross-package facts), so
// Run is the whole contract.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, enable/disable flags
	// (-determinism=false) and documentation. It must be a valid Go
	// identifier.
	Name string
	// Doc is the help text: first sentence is the summary line.
	Doc string
	// Run performs the check. The returned value is unused (kept for shape
	// compatibility with x/tools); errors abort the whole vet run.
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// A Pass presents one package to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)

	// directives is the lazily-built per-file //datawa: directive index,
	// shared by all analyzers in the run via the driver.
	directives map[*ast.File]*Directives
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, positioned in the analyzed package.
type Diagnostic struct {
	Pos      token.Pos
	Category string
	Message  string
}

// InTestFile reports whether pos falls in a _test.go file. The suite's
// invariants (determinism, lock discipline, allocation budgets) are
// production contracts; tests routinely range maps for assertions or poke
// fields single-threaded, so every analyzer skips test files.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// A Result pairs an analyzer with its findings for one package.
type Result struct {
	Analyzer    *Analyzer
	Diagnostics []Diagnostic
}

// RunAnalyzers runs each analyzer over one type-checked package and returns
// the per-analyzer diagnostics in input order. It is the shared execution
// core of the vet driver (unit) and the fixture harness (analysistest).
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Result, error) {
	dirIndex := make(map[*ast.File]*Directives)
	results := make([]Result, 0, len(analyzers))
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			directives: dirIndex,
		}
		var diags []Diagnostic
		pass.Report = func(d Diagnostic) { diags = append(diags, d) }
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
		results = append(results, Result{Analyzer: a, Diagnostics: diags})
	}
	return results, nil
}
