// Package analysistest runs an analyzer over fixture packages and checks
// its findings against // want comments, in the style of
// golang.org/x/tools/go/analysis/analysistest (reimplemented on the standard
// library; see internal/analysis for why x/tools is not vendored).
//
// Fixtures live under <analyzer>/testdata/src/<pkg>/*.go. A line that should
// produce a finding carries a trailing comment of the form
//
//	code() // want `regexp`
//
// with one backquoted regexp per expected finding on that line. The harness
// fails the test on any finding without a matching want, and any want
// without a matching finding. Fixture packages are type-checked against the
// standard library via the source importer, so they may import std packages
// freely but not each other.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run analyzes each named fixture package under dir/src and reports
// mismatches between findings and // want expectations via t.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		runPackage(t, filepath.Join(dir, "src", pkg), pkg, a)
	}
}

// TestData returns the canonical testdata directory of the caller's package.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

func runPackage(t *testing.T, dir, pkgPath string, a *analysis.Analyzer) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("fixture package %s: %v", pkgPath, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatalf("fixture package %s: no .go files in %s", pkgPath, dir)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	var wants []*expectation
	for _, name := range names {
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		files = append(files, f)
		ws, err := parseWants(fset, f)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		wants = append(wants, ws...)
	}

	tc := &types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := tc.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", pkgPath, err)
	}

	results, err := analysis.RunAnalyzers(fset, files, pkg, info, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, pkgPath, err)
	}

	for _, res := range results {
		for _, d := range res.Diagnostics {
			posn := fset.Position(d.Pos)
			if !consume(wants, posn, d.Message) {
				t.Errorf("%s: unexpected finding: %s", posn, d.Message)
			}
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected finding matching %s, got none", w.file, w.line, w.raw)
		}
	}
}

func consume(wants []*expectation, posn token.Position, message string) bool {
	for _, w := range wants {
		if !w.matched && w.file == posn.Filename && w.line == posn.Line && w.re.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}

// parseWants extracts `// want ...` expectations from one file's comments.
func parseWants(fset *token.FileSet, f *ast.File) ([]*expectation, error) {
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, "want ") && text != "want" {
				continue
			}
			posn := fset.Position(c.Pos())
			rest := strings.TrimSpace(strings.TrimPrefix(text, "want"))
			if rest == "" {
				return nil, fmt.Errorf("line %d: empty want comment", posn.Line)
			}
			for rest != "" {
				if rest[0] != '`' {
					return nil, fmt.Errorf("line %d: want pattern must be backquoted: %q", posn.Line, rest)
				}
				end := strings.IndexByte(rest[1:], '`')
				if end < 0 {
					return nil, fmt.Errorf("line %d: unterminated want pattern: %q", posn.Line, rest)
				}
				pat := rest[1 : 1+end]
				re, err := regexp.Compile(pat)
				if err != nil {
					return nil, fmt.Errorf("line %d: bad want pattern %q: %v", posn.Line, pat, err)
				}
				out = append(out, &expectation{file: posn.Filename, line: posn.Line, re: re, raw: "`" + pat + "`"})
				rest = strings.TrimSpace(rest[2+end:])
			}
		}
	}
	return out, nil
}
