// Package determinism enforces the repo's reproducibility contract at
// compile time: plans are byte-identical across runs, machines, and
// parallelism levels (docs/ARCHITECTURE.md), so the determinism-critical
// packages must not let ambient nondeterminism in. Three rules, applied to
// assign, stream, dispatch, wds, spatial, workload, scenario and wire:
//
//  1. A `for … range` over a map must have an order-insensitive body —
//     commutative accumulation only (integer counters, keyed writes,
//     deletes). Anything order-exposed needs `//datawa:unordered <why>`.
//  2. No ambient-environment reads: time.Now/Since/Until, the global
//     math/rand functions, and os.Getenv/LookupEnv/Environ are banned.
//     Wall-clock belongs to datawa-serve, obs, and LoadGen pacing; a
//     deliberate site carries `//datawa:wallclock <why>`. Seeded
//     rand.New(rand.NewSource(…)) is fine — that is how workloads are meant
//     to generate randomness.
//  3. No bare `go` statements: all fan-out goes through internal/par, whose
//     serial mode is the reference semantics of every parallel run. There is
//     no escape hatch — code that needs a goroutine belongs outside the
//     critical packages.
//
// Test files are exempt (they replay seeded randomness and assert over
// maps freely).
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the determinism checker.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "flag map-order dependence, ambient clock/rand/env reads, and bare goroutines " +
		"in the determinism-critical packages",
	Run: run,
}

// criticalPkgs are the import-path leaf names of the packages under the
// byte-identical-plans contract. Matching is by final path segment, so the
// rule follows the packages if the tree is ever re-rooted (and lets fixture
// packages opt in by name).
var criticalPkgs = map[string]bool{
	"assign":   true,
	"stream":   true,
	"dispatch": true,
	"wds":      true,
	"spatial":  true,
	"workload": true,
	"scenario": true,
	"wire":     true,
}

// Critical reports whether a package path is under the determinism contract.
func Critical(path string) bool {
	leaf := path
	if i := strings.LastIndexByte(leaf, '/'); i >= 0 {
		leaf = leaf[i+1:]
	}
	return criticalPkgs[leaf]
}

func run(pass *analysis.Pass) (any, error) {
	if !Critical(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				checkRange(pass, n)
			case *ast.CallExpr:
				checkAmbientCall(pass, n)
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "bare go statement in determinism-critical package %s: "+
					"fan out through internal/par so a serial run stays the reference semantics",
					pass.Pkg.Path())
			}
			return true
		})
	}
	return nil, nil
}

// checkRange flags map iteration with an order-sensitive body.
func checkRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if d, ok := pass.DirectiveAt(rng.Pos(), "unordered"); ok {
		if d.Justification == "" {
			pass.Reportf(rng.Pos(), "//datawa:unordered needs a justification (why is iteration order harmless here?)")
		}
		return
	}
	if reason := orderSensitive(pass, rng.Body.List); reason != "" {
		pass.Reportf(rng.Pos(), "map iteration with an order-sensitive body (%s): "+
			"make the body commutative or annotate //datawa:unordered with a justification", reason)
	}
}

// orderSensitive reports why a statement list is not provably
// order-insensitive, or "" if every statement is commutative accumulation.
// The accepted forms are deliberately narrow: keyed writes (m[k] = v),
// deletes, integer counter updates, and pure control flow over those. Any
// call, append, channel op, early exit, or floating-point accumulation is
// order-sensitive (float addition does not commute bitwise).
func orderSensitive(pass *analysis.Pass, stmts []ast.Stmt) string {
	for _, s := range stmts {
		if reason := orderSensitiveStmt(pass, s); reason != "" {
			return reason
		}
	}
	return ""
}

func orderSensitiveStmt(pass *analysis.Pass, s ast.Stmt) string {
	switch s := s.(type) {
	case *ast.AssignStmt:
		// Compound integer updates commute; keyed writes land on unique keys.
		switch s.Tok {
		case token.ASSIGN, token.DEFINE:
			for _, lhs := range s.Lhs {
				if !isKeyedOrBlank(lhs) {
					return "assigns to a shared location, last iteration wins"
				}
			}
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN,
			token.XOR_ASSIGN:
			for _, lhs := range s.Lhs {
				if !isIntegerExpr(pass, lhs) {
					return "non-integer compound assignment does not commute bitwise"
				}
			}
		default:
			return "compound assignment of a non-commutative operator"
		}
		for _, rhs := range s.Rhs {
			if reason := impureExpr(pass, rhs); reason != "" {
				return reason
			}
		}
		return ""
	case *ast.IncDecStmt:
		if !isIntegerExpr(pass, s.X) {
			return "non-integer increment does not commute bitwise"
		}
		return ""
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok && isBuiltin(pass, call, "delete") {
			return ""
		}
		return "calls a function with effects"
	case *ast.IfStmt:
		if s.Init != nil {
			if reason := orderSensitiveStmt(pass, s.Init); reason != "" {
				return reason
			}
		}
		if reason := impureExpr(pass, s.Cond); reason != "" {
			return reason
		}
		if reason := orderSensitive(pass, s.Body.List); reason != "" {
			return reason
		}
		if s.Else != nil {
			return orderSensitiveStmt(pass, s.Else)
		}
		return ""
	case *ast.BlockStmt:
		return orderSensitive(pass, s.List)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return "declaration with effects"
		}
		for _, spec := range gd.Specs {
			if vs, ok := spec.(*ast.ValueSpec); ok {
				for _, v := range vs.Values {
					if reason := impureExpr(pass, v); reason != "" {
						return reason
					}
				}
			}
		}
		return ""
	case *ast.BranchStmt:
		if s.Tok == token.CONTINUE {
			return ""
		}
		return "breaks out early, so which key arrives first matters"
	case *ast.ReturnStmt:
		return "returns from inside the iteration, so which key arrives first matters"
	default:
		return "statement form the analyzer cannot prove commutative"
	}
}

// isKeyedOrBlank reports whether an assignment target is an index expression
// (unique per key) or the blank identifier.
func isKeyedOrBlank(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.IndexExpr:
		return true
	case *ast.Ident:
		return e.Name == "_"
	}
	return false
}

func isIntegerExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// impureExpr reports why an expression may have effects or observe
// nondeterministic state, or "" if it is a pure computation. Calls other
// than len/cap/delete and conversions are treated as impure.
func impureExpr(pass *analysis.Pass, e ast.Expr) string {
	reason := ""
	ast.Inspect(e, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltin(pass, n, "len") || isBuiltin(pass, n, "cap") || isConversion(pass, n) {
				return true
			}
			reason = "calls a function with effects"
			return false
		case *ast.FuncLit:
			reason = "defines a closure the analyzer cannot prove commutative"
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				reason = "receives from a channel"
				return false
			}
		}
		return true
	})
	return reason
}

func isBuiltin(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}

func isConversion(pass *analysis.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	return ok && tv.IsType()
}

// ambientFuncs lists the banned package-level functions: ambient reads that
// differ run to run. Seeded constructors are deliberately absent.
var ambientFuncs = map[string]map[string]string{
	"time": {
		"Now":   "wall-clock read",
		"Since": "wall-clock read",
		"Until": "wall-clock read",
	},
	"os": {
		"Getenv":    "environment read",
		"LookupEnv": "environment read",
		"Environ":   "environment read",
	},
}

// randConstructors are the math/rand package-level functions that are pure
// constructors; every other package-level rand function draws from the
// process-global, scheduling-dependent source and is banned.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func checkAmbientCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	// Methods (e.g. (*rand.Rand).Intn, time.Time.Sub) are fine: their
	// receiver was constructed deterministically or the value came from an
	// allowlisted boundary.
	if fn.Type().(*types.Signature).Recv() != nil {
		return
	}
	pkgPath, name := fn.Pkg().Path(), fn.Name()
	what := ""
	switch pkgPath {
	case "time", "os":
		what = ambientFuncs[pkgPath][name]
	case "math/rand", "math/rand/v2":
		if !randConstructors[name] {
			what = "process-global rand"
		}
	}
	if what == "" {
		return
	}
	if d, ok := pass.DirectiveAt(call.Pos(), "wallclock"); ok {
		if d.Justification == "" {
			pass.Reportf(call.Pos(), "//datawa:wallclock needs a justification (why may this package read ambient state here?)")
		}
		return
	}
	pass.Reportf(call.Pos(), "%s.%s (%s) in determinism-critical package %s: "+
		"inject the value from the boundary or annotate //datawa:wallclock with a justification",
		pkgPath, name, what, pass.Pkg.Path())
}
