package determinism_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), determinism.Analyzer, "stream", "freepkg")
}

func TestCritical(t *testing.T) {
	for path, want := range map[string]bool{
		"repro/internal/assign":   true,
		"repro/internal/dispatch": true,
		"wire":                    true,
		"repro/internal/obs":      false,
		"repro/cmd/datawa-serve":  false,
		"repro/internal/analysis": false,
	} {
		if got := determinism.Critical(path); got != want {
			t.Errorf("Critical(%q) = %v, want %v", path, got, want)
		}
	}
}
