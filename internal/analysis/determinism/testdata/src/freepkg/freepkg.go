// Package freepkg is not on the determinism-critical list: every construct
// the analyzer bans elsewhere is unremarkable here.
package freepkg

import "time"

func clockAndGoroutines(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	go func() { _ = time.Now() }()
	return keys
}
