// Package stream is a determinism fixture: its leaf name is on the
// critical list, so every rule applies.
package stream

import (
	"math/rand"
	"os"
	"sort"
	"time"
)

// Commutative map-range bodies: no findings.
func commutative(m map[int]float64) int {
	count := 0
	sum := 0
	seen := make(map[int]bool)
	for k := range m {
		count++
		if !seen[k] {
			seen[k] = true
			sum += k
		}
	}
	for k := range m {
		delete(m, k)
	}
	return count + sum
}

// Order-exposed bodies: findings.
func orderExposed(m map[int]float64) []int {
	var keys []int
	for k := range m { // want `map iteration with an order-sensitive body`
		keys = append(keys, k)
	}
	sort.Ints(keys)
	total := 0.0
	for _, v := range m { // want `map iteration with an order-sensitive body`
		total += v // float accumulation is order-dependent bitwise
	}
	last := 0
	for k := range m { // want `map iteration with an order-sensitive body`
		last = k
	}
	_ = total
	_ = last
	return keys
}

// The escape hatch silences the finding when justified...
func escapeHatch(m map[int]float64) []int {
	var keys []int
	//datawa:unordered keys are sorted before use below
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// ...but a bare escape hatch is itself a finding.
func bareEscape(m map[int]float64) int {
	n := 0
	//datawa:unordered
	for range m { // want `//datawa:unordered needs a justification`
		n++
	}
	return n
}

// Ambient reads: findings, unless injected or allowlisted.
func ambient() float64 {
	t := time.Now()       // want `time.Now \(wall-clock read\) in determinism-critical package`
	r := rand.Float64()   // want `math/rand.Float64 \(process-global rand\) in determinism-critical package`
	_ = os.Getenv("HOME") // want `os.Getenv \(environment read\) in determinism-critical package`
	return float64(t.Unix()) + r
}

// Seeded randomness and method calls are the sanctioned pattern.
func seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// The wallclock escape hatch with a justification.
func pacing() time.Time {
	//datawa:wallclock load-generator pacing, never feeds the plan
	return time.Now()
}

// Bare goroutines: findings, no escape hatch.
func fanOut(jobs []func()) {
	for _, j := range jobs {
		go j() // want `bare go statement in determinism-critical package`
	}
}

// Scenario-sampling loop shapes. Drawing each scenario from its own seeded
// stream in a fixed iteration order is the sanctioned pattern; reaching for
// the process-global source inside the draw loop is a finding even though the
// loop itself is deterministic.
func sampleScenarios(seed int64, k int, probs []float64) []uint64 {
	masks := make([]uint64, len(probs))
	for s := 1; s < k; s++ {
		rng := rand.New(rand.NewSource(seed + int64(s)))
		for i, p := range probs {
			if rng.Float64() < p {
				masks[i] |= 1 << s
			}
		}
	}
	return masks
}

func sampleScenariosGlobal(k int, probs []float64) []uint64 {
	masks := make([]uint64, len(probs))
	for s := 1; s < k; s++ {
		for i, p := range probs {
			if rand.Float64() < p { // want `math/rand.Float64 \(process-global rand\) in determinism-critical package`
				masks[i] |= 1 << s
			}
		}
	}
	return masks
}
