package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The //datawa: directive vocabulary. A directive is a machine-readable
// comment the analyzers consume:
//
//	//datawa:unordered <justification>     map range is deliberately order-exposed (determinism)
//	//datawa:wallclock <justification>     ambient read (clock/rand/env) is deliberate (determinism)
//	//datawa:locked(mu)                    function/closure runs with mu held by its caller (guarded)
//	//datawa:serialized                    type is single-owner: fields touched only by its methods (guarded)
//	//datawa:hotpath                       function must not allocate on its hot statements (hotpath)
//	//datawa:alloc <justification>         statement in a hotpath allocates deliberately (hotpath)
//	//datawa:metric-exempt <justification> metric registration exempt from exposition rules (expofmt)
//
// plus the field annotation the guarded analyzer reads from ordinary prose
// comments: `// guarded by mu`.
//
// Statement-level directives (unordered, wallclock, alloc, metric-exempt,
// and locked on closures) attach by position: trailing on the same line as
// the construct, or alone on the line directly above. Declaration-level
// directives (hotpath, locked, serialized) live anywhere in the decl's doc
// comment. Directives that carry a justification require one — a bare escape
// hatch is itself a diagnostic in the analyzer that consumes it.
const directivePrefix = "//datawa:"

// A Directive is one parsed //datawa: comment.
type Directive struct {
	Name string // e.g. "unordered", "locked"
	Args string // text inside parens, e.g. "mu" for locked(mu); "" if none
	// Justification is the free text after the directive, the human-readable
	// why. Required for unordered/wallclock/alloc/metric-exempt.
	Justification string
	Pos           token.Pos
}

// Directives indexes one file's //datawa: comments by the lines they govern.
type Directives struct {
	// byLine maps a source line to the directives that apply to constructs
	// on that line: comments on the line itself plus own-line comments on
	// the line above.
	byLine map[int][]Directive
}

// parseDirective parses a single comment, or reports !ok.
func parseDirective(c *ast.Comment) (d Directive, ok bool) {
	text := c.Text
	if !strings.HasPrefix(text, directivePrefix) {
		return Directive{}, false
	}
	rest := text[len(directivePrefix):]
	name := rest
	for i, r := range rest {
		if r == ' ' || r == '\t' || r == '(' {
			name = rest[:i]
			rest = rest[i:]
			break
		}
		if i == len(rest)-1 {
			rest = ""
		}
	}
	if name == "" {
		return Directive{}, false
	}
	d = Directive{Name: name, Pos: c.Pos()}
	if strings.HasPrefix(rest, "(") {
		end := strings.Index(rest, ")")
		if end < 0 {
			// Unterminated argument list: treat everything after "(" as args
			// so the consuming analyzer can complain about it.
			d.Args = strings.TrimSpace(rest[1:])
			return d, true
		}
		d.Args = strings.TrimSpace(rest[1:end])
		rest = rest[end+1:]
	}
	just := strings.TrimSpace(rest)
	// Allow a leading separator between directive and prose: "— why",
	// "- why", ": why".
	just = strings.TrimSpace(strings.TrimPrefix(just, "—"))
	just = strings.TrimSpace(strings.TrimPrefix(just, "-"))
	just = strings.TrimSpace(strings.TrimPrefix(just, ":"))
	d.Justification = just
	return d, true
}

// fileDirectives builds the line index for one file.
func fileDirectives(fset *token.FileSet, f *ast.File) *Directives {
	ds := &Directives{byLine: make(map[int][]Directive)}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			d, ok := parseDirective(c)
			if !ok {
				continue
			}
			line := fset.Position(c.Pos()).Line
			// A directive governs its own line (trailing-comment form) and
			// the line below (own-line form). Indexing both is harmless: a
			// construct looks up only its own line.
			ds.byLine[line] = append(ds.byLine[line], d)
			ds.byLine[line+1] = append(ds.byLine[line+1], d)
		}
	}
	return ds
}

// FileFor returns the *ast.File containing pos, or nil.
func (p *Pass) FileFor(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// DirectiveAt looks up a directive named name governing the line of pos:
// trailing on that line, or alone on the line above.
func (p *Pass) DirectiveAt(pos token.Pos, name string) (Directive, bool) {
	f := p.FileFor(pos)
	if f == nil {
		return Directive{}, false
	}
	ds, ok := p.directives[f]
	if !ok {
		ds = fileDirectives(p.Fset, f)
		p.directives[f] = ds
	}
	line := p.Fset.Position(pos).Line
	for _, d := range ds.byLine[line] {
		if d.Name == name {
			return d, true
		}
	}
	return Directive{}, false
}

// DocDirectives parses every //datawa: directive in a doc comment group.
func DocDirectives(doc *ast.CommentGroup) []Directive {
	if doc == nil {
		return nil
	}
	var out []Directive
	for _, c := range doc.List {
		if d, ok := parseDirective(c); ok {
			out = append(out, d)
		}
	}
	return out
}

// FuncDirective finds a directive on a function declaration: in its doc
// comment, or (for closures and doc-less functions) positioned at/above the
// declaration line.
func (p *Pass) FuncDirective(doc *ast.CommentGroup, pos token.Pos, name string) (Directive, bool) {
	for _, d := range DocDirectives(doc) {
		if d.Name == name {
			return d, true
		}
	}
	return p.DirectiveAt(pos, name)
}

// GuardedBy extracts the `guarded by <mutex>` annotation from a struct
// field's doc or trailing comment. The mutex is named by the last
// dot-separated identifier, so `guarded by Machine.mu` and `guarded by mu`
// both guard on "mu".
func GuardedBy(field *ast.Field) (mutex string, ok bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*")
			idx := strings.Index(text, "guarded by ")
			if idx < 0 {
				continue
			}
			rest := strings.TrimSpace(text[idx+len("guarded by "):])
			// The mutex name runs to the first non-identifier/non-dot rune.
			end := len(rest)
			for i, r := range rest {
				if r == '.' || r == '_' || r == '*' ||
					('a' <= r && r <= 'z') || ('A' <= r && r <= 'Z') || ('0' <= r && r <= '9') {
					continue
				}
				end = i
				break
			}
			name := strings.Trim(rest[:end], "*")
			if dot := strings.LastIndex(name, "."); dot >= 0 {
				name = name[dot+1:]
			}
			if name != "" {
				return name, true
			}
		}
	}
	return "", false
}
