// Package expofmt is the static twin of the runtime Prometheus exposition
// lint (TestPrometheusExpositionLint): it checks metric registrations at the
// source level, so a malformed family name fails the build instead of the
// first scrape. The repo hand-rolls its exposition (no client library), so a
// "registration" is either
//
//   - a call to a registration helper — a function or closure named counter,
//     gauge or histogram (or NewCounter/NewGauge/NewHistogram) whose first
//     argument is the family name as a string literal — or
//   - a string literal containing a literal `# TYPE <name> <kind>` exposition
//     line (templated names with % verbs are invisible to the static check;
//     the runtime lint still covers them).
//
// Rules per package: counter family names must end in _total; gauge and
// histogram names must not; every family name must be a valid lowercase
// Prometheus name; a name may be registered exactly once; and a literal
// `# HELP` line must pair with a `# TYPE` line for the same family.
// A deliberate exception carries //datawa:metric-exempt <why>.
package expofmt

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the exposition-format checker.
var Analyzer = &analysis.Analyzer{
	Name: "expofmt",
	Doc: "check Prometheus metric registrations: counters end in _total, names are valid, " +
		"each family registered once, HELP/TYPE literals paired",
	Run: run,
}

// helperKinds maps registration-helper names to the metric kind they
// register.
var helperKinds = map[string]string{
	"counter":      "counter",
	"gauge":        "gauge",
	"histogram":    "histogram",
	"NewCounter":   "counter",
	"NewGauge":     "gauge",
	"NewHistogram": "histogram",
}

// typeLine matches a literal exposition TYPE line inside a string constant.
// Names with % verbs never match (the name charset excludes %), which is
// what keeps templated registrations out of static scope.
var typeLine = regexp.MustCompile(`# TYPE ([A-Za-z_:][A-Za-z0-9_:]*) ([a-z]+)`)

// helpLine matches a literal exposition HELP line.
var helpLine = regexp.MustCompile(`# HELP ([A-Za-z_:][A-Za-z0-9_:]*) `)

// validName is the accepted family-name shape: lowercase snake_case. The
// exposition grammar also allows uppercase and colons, but this repo's
// convention is stricter and uniform.
var validName = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

type registration struct {
	name string
	kind string
	pos  token.Pos
}

func run(pass *analysis.Pass) (any, error) {
	var regs []registration
	helps := make(map[string]token.Pos)
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if r, ok := helperCall(pass, n); ok {
					regs = append(regs, r)
				}
			case *ast.BasicLit:
				if n.Kind != token.STRING {
					return true
				}
				val, err := strconv.Unquote(n.Value)
				if err != nil {
					return true
				}
				for _, m := range typeLine.FindAllStringSubmatch(val, -1) {
					regs = append(regs, registration{name: m[1], kind: m[2], pos: n.Pos()})
				}
				for _, m := range helpLine.FindAllStringSubmatch(val, -1) {
					if _, seen := helps[m[1]]; !seen {
						helps[m[1]] = n.Pos()
					}
				}
			}
			return true
		})
	}

	seen := make(map[string]token.Pos)
	typed := make(map[string]bool)
	for _, r := range regs {
		typed[r.name] = true
		if exempt(pass, r.pos) {
			continue
		}
		if !validName.MatchString(r.name) {
			pass.Reportf(r.pos, "metric family %q is not lowercase snake_case", r.name)
		}
		switch {
		case r.kind == "counter" && !strings.HasSuffix(r.name, "_total"):
			pass.Reportf(r.pos, "counter family %q must end in _total", r.name)
		case (r.kind == "gauge" || r.kind == "histogram") && strings.HasSuffix(r.name, "_total"):
			pass.Reportf(r.pos, "%s family %q must not end in _total (that suffix promises counter semantics)", r.kind, r.name)
		}
		if prev, dup := seen[r.name]; dup {
			pass.Reportf(r.pos, "metric family %q registered more than once in this package (first at %s)",
				r.name, pass.Fset.Position(prev))
		} else {
			seen[r.name] = r.pos
		}
	}
	for name, pos := range helps {
		if !typed[name] && !exempt(pass, pos) {
			// The wording dodges a literal "# HELP <name> " substring, which
			// would make this very format string register as an exposition
			// line when the analyzer sweeps its own package.
			pass.Reportf(pos, "HELP exposition line for %q has no matching TYPE line in this package", name)
		}
	}
	return nil, nil
}

// helperCall recognizes counter("name", …)-style registrations.
func helperCall(pass *analysis.Pass, call *ast.CallExpr) (registration, bool) {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return registration{}, false
	}
	kind, ok := helperKinds[name]
	if !ok || len(call.Args) == 0 {
		return registration{}, false
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return registration{}, false
	}
	family, err := strconv.Unquote(lit.Value)
	if err != nil {
		return registration{}, false
	}
	return registration{name: family, kind: kind, pos: call.Pos()}, true
}

func exempt(pass *analysis.Pass, pos token.Pos) bool {
	d, ok := pass.DirectiveAt(pos, "metric-exempt")
	if !ok {
		return false
	}
	if d.Justification == "" {
		pass.Reportf(pos, "//datawa:metric-exempt needs a justification")
		return true
	}
	return true
}
