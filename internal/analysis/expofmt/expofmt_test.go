package expofmt_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/expofmt"
)

func TestExpofmt(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), expofmt.Analyzer, "expofix")
}
