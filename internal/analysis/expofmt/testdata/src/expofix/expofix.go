// Package expofix is the expofmt-analyzer fixture: the hand-rolled
// exposition idiom from the real /metrics handler, with each rule broken
// once and the //datawa:metric-exempt escape exercised.
package expofix

import (
	"fmt"
	"io"
)

// counter and gauge mirror the real handler's local registration helpers.
func counter(name string, v uint64) string { return fmt.Sprintf("%s %d\n", name, v) }
func gauge(name string, v float64) string  { return fmt.Sprintf("%s %g\n", name, v) }

// Clean registrations: counters end in _total, gauges do not.
func writeClean(w io.Writer) {
	io.WriteString(w, counter("datawa_epochs_total", 1))
	io.WriteString(w, gauge("datawa_backlog_depth", 0))
}

// Each rule broken once.
func writeBroken(w io.Writer) {
	io.WriteString(w, counter("datawa_dropped", 2))        // want `counter family "datawa_dropped" must end in _total`
	io.WriteString(w, gauge("datawa_heap_bytes_total", 3)) // want `gauge family "datawa_heap_bytes_total" must not end in _total`
	io.WriteString(w, counter("DataWA-Frames_total", 4))   // want `metric family "DataWA-Frames_total" is not lowercase snake_case`
	io.WriteString(w, counter("datawa_epochs_total", 5))   // want `metric family "datawa_epochs_total" registered more than once`
}

// Literal exposition blocks are registrations too.
func writeLiteral(w io.Writer) {
	io.WriteString(w, "# HELP datawa_shard_shed_total shed decisions\n# TYPE datawa_shard_shed_total counter\n")
	io.WriteString(w, "# TYPE datawa_retries gauge\n")
	io.WriteString(w, "# HELP datawa_orphan seconds spent waiting\n") // want `HELP exposition line for "datawa_orphan" has no matching TYPE line`
}

// The escape hatch admits a justified exception...
func writeExempt(w io.Writer) {
	//datawa:metric-exempt legacy dashboard name, frozen until the v2 board migrates
	io.WriteString(w, counter("datawa_legacy_drops", 6))
}

// ...but a bare exemption is itself a finding.
func writeBareExempt(w io.Writer) {
	//datawa:metric-exempt
	io.WriteString(w, counter("datawa_mystery", 7)) // want `//datawa:metric-exempt needs a justification`
}
