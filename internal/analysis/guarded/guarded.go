// Package guarded enforces lock discipline on annotated state, checked
// intra-procedurally. Two annotation forms drive it:
//
//   - A struct field whose comment says `guarded by mu` may only be accessed
//     inside a function that visibly acquires that mutex (a `….mu.Lock()` or
//     `….mu.RLock()` call anywhere in its body) or that declares the caller
//     holds it: `//datawa:locked(mu)` in its doc comment (for closures, on
//     the line above the func literal). Dispatcher's epoch state is the
//     motivating case: everything behind the epoch lock is annotated, and
//     every helper that runs under the lock says so.
//
//   - A type whose doc carries `//datawa:serialized` is single-owner: its
//     fields may be touched only by its own methods (or by a function
//     annotated `//datawa:locked(TypeName)`, e.g. a constructor). This is
//     stream.Machine's discipline — the machine has no mutex because the
//     dispatcher's epoch lock (or a single-threaded caller) serializes every
//     call, so any out-of-method field poke is a discipline violation.
//
// The check is name-based and intra-procedural by design: it cannot prove
// the lock is held at the access point (Lock/Unlock/access ordering) or that
// the locked instance is the accessed instance. What it does enforce — every
// function touching guarded state either locks or declares its locking
// contract — is the documentation invariant that makes the code reviewable,
// and it catches the real failure mode of a new helper reaching into epoch
// state with no locking story at all. Test files are exempt.
package guarded

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the lock-discipline checker.
var Analyzer = &analysis.Analyzer{
	Name: "guarded",
	Doc: "check that `guarded by mu` fields are accessed only under a visible Lock " +
		"or a //datawa:locked contract, and //datawa:serialized types only via their methods",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	guardedFields := make(map[types.Object]string) // field object -> mutex name
	serialized := make(map[*types.TypeName]bool)   // single-owner types
	collectAnnotations(pass, guardedFields, serialized)
	if len(guardedFields) == 0 && len(serialized) == 0 {
		return nil, nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body, lockedSet(pass, fd.Doc, fd.Pos(), fd.Body), receiverType(pass, fd), guardedFields, serialized)
		}
	}
	return nil, nil
}

// collectAnnotations walks type declarations for `guarded by` field comments
// and //datawa:serialized type docs.
func collectAnnotations(pass *analysis.Pass, fields map[types.Object]string, serialized map[*types.TypeName]bool) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				for _, doc := range []*ast.CommentGroup{gd.Doc, ts.Doc, ts.Comment} {
					for _, d := range analysis.DocDirectives(doc) {
						if d.Name == "serialized" {
							if tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
								serialized[tn] = true
							}
						}
					}
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					mutex, ok := analysis.GuardedBy(field)
					if !ok {
						continue
					}
					for _, name := range field.Names {
						if obj := pass.TypesInfo.Defs[name]; obj != nil {
							fields[obj] = mutex
						}
					}
				}
			}
		}
	}
}

// lockedSet computes the mutex names a function visibly holds: every
// `x.<name>.Lock()` / `.RLock()` receiver name in the body, plus the names
// declared by //datawa:locked(a, b) on the declaration. Closures do not
// inherit the enclosing function's set — a closure outlives the statement
// that created it, so it must carry its own contract.
func lockedSet(pass *analysis.Pass, doc *ast.CommentGroup, pos token.Pos, body *ast.BlockStmt) map[string]bool {
	held := make(map[string]bool)
	if d, ok := pass.FuncDirective(doc, pos, "locked"); ok {
		for _, name := range strings.Split(d.Args, ",") {
			if name = strings.TrimSpace(name); name != "" {
				held[name] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a closure's locks are its own
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		// The mutex is the last name on the receiver path: d.mu.Lock -> mu.
		switch recv := sel.X.(type) {
		case *ast.SelectorExpr:
			held[recv.Sel.Name] = true
		case *ast.Ident:
			held[recv.Name] = true
		}
		return true
	})
	return held
}

// receiverType resolves a method's receiver to its named type, or nil.
func receiverType(pass *analysis.Pass, fd *ast.FuncDecl) *types.TypeName {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	t := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
	return namedTypeName(t)
}

func namedTypeName(t types.Type) *types.TypeName {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}

// checkFunc walks one function body (not descending into closures, which are
// checked with their own locked set).
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt, held map[string]bool, recv *types.TypeName, guardedFields map[types.Object]string, serialized map[*types.TypeName]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkFunc(pass, n.Body, lockedSet(pass, nil, n.Pos(), n.Body), recvForClosure(pass, n, serialized), guardedFields, serialized)
			return false
		case *ast.SelectorExpr:
			checkAccess(pass, n, held, recv, guardedFields, serialized)
		}
		return true
	})
}

// recvForClosure lets a closure annotated //datawa:locked(TypeName) count as
// serialized-type-owned; otherwise closures have no receiver.
func recvForClosure(pass *analysis.Pass, lit *ast.FuncLit, serialized map[*types.TypeName]bool) *types.TypeName {
	d, ok := pass.DirectiveAt(lit.Pos(), "locked")
	if !ok {
		return nil
	}
	for _, name := range strings.Split(d.Args, ",") {
		name = strings.TrimSpace(name)
		for tn := range serialized {
			if tn.Name() == name {
				return tn
			}
		}
	}
	return nil
}

func checkAccess(pass *analysis.Pass, sel *ast.SelectorExpr, held map[string]bool, recv *types.TypeName, guardedFields map[types.Object]string, serialized map[*types.TypeName]bool) {
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	obj := selection.Obj()

	if mutex, isGuarded := guardedFields[obj]; isGuarded && !held[mutex] {
		pass.Reportf(sel.Sel.Pos(), "access to %q (guarded by %s) in a function that neither locks %s "+
			"nor declares //datawa:locked(%s)", sel.Sel.Name, mutex, mutex, mutex)
	}

	if owner := namedTypeName(selection.Recv()); owner != nil && serialized[owner] {
		if recv != owner && !held[owner.Name()] {
			pass.Reportf(sel.Sel.Pos(), "field %q of single-owner type %s touched outside its methods: "+
				"go through a method, or annotate the function //datawa:locked(%s) if it provably owns the value",
				sel.Sel.Name, owner.Name(), owner.Name())
		}
	}
}
