package guarded_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/guarded"
)

func TestGuarded(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), guarded.Analyzer, "guardfix")
}
