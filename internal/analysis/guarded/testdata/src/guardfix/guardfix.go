// Package guardfix is the guarded-analyzer fixture.
package guardfix

import "sync"

// Dispatcher mirrors the real epoch-lock shape.
type Dispatcher struct {
	mu      sync.Mutex
	pending []int // guarded by mu
	epochs  int   // guarded by mu
	free    int   // unguarded: no annotation, no discipline
}

// Locks visibly: clean.
func (d *Dispatcher) Tick() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.pending = append(d.pending, 1)
	d.epochs++
	d.applyLocked()
}

// Declares the caller's lock: clean.
//
//datawa:locked(mu)
func (d *Dispatcher) applyLocked() {
	d.pending = d.pending[:0]
}

// Neither locks nor declares: findings.
func (d *Dispatcher) Broken() int {
	d.epochs++            // want `access to "epochs" \(guarded by mu\) in a function that neither locks mu`
	return len(d.pending) // want `access to "pending" \(guarded by mu\) in a function that neither locks mu`
}

// Unannotated fields stay free.
func (d *Dispatcher) Free() int {
	return d.free
}

// A closure does not inherit the enclosing lock: it must declare its own
// contract.
func (d *Dispatcher) ForEach(fn func(int)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	inherit := func() int {
		return d.epochs // want `access to "epochs" \(guarded by mu\)`
	}
	//datawa:locked(mu) runs inline under the Lock above
	declared := func() int {
		return d.epochs
	}
	_ = inherit() + declared()
}

// Machine is single-owner: the dispatcher's epoch lock serializes every
// call, so fields may move only through methods.
//
//datawa:serialized
type Machine struct {
	clock float64
	tasks map[int]bool
}

// Methods are the ownership boundary: clean.
func (m *Machine) Advance(dt float64) {
	m.clock += dt
}

// Out-of-method field pokes are findings.
func Poke(m *Machine) {
	m.clock = 0 // want `field "clock" of single-owner type Machine touched outside its methods`
}

// A constructor provably owns the fresh value.
//
//datawa:locked(Machine)
func NewMachine() *Machine {
	m := &Machine{}
	m.tasks = make(map[int]bool)
	return m
}
