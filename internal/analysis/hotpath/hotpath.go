// Package hotpath makes the zero-alloc steady state a compile-time
// contract. A function annotated //datawa:hotpath in its doc comment (wire
// frame decode, the MPMC ring ops, the searchRun availability filter, slab
// ingest) must not introduce allocations on its hot statements:
//
//   - calls into fmt, errors or log (string building, argument boxing);
//   - make, new;
//   - composite literals that escape: &T{…}, slice and map literals
//     (plain struct/array value literals stay on the stack and are fine);
//   - closures (the func value and its captures allocate);
//   - string ↔ []byte/[]rune conversions;
//   - implicit boxing: passing a concrete value to an interface-typed
//     parameter, or explicitly converting to an interface type.
//
// Two shapes are deliberately exempt. Terminal error branches are cold: an
// if-block whose last statement returns a non-nil error (or panics) may
// allocate freely — that is exactly the wire decoder's reject path, which
// only runs on malformed input. And a statement annotated
// //datawa:alloc <why> allocates on purpose — e.g. the ingest slabs, two
// amortized make calls per batch.
//
// The check is an approximation of escape analysis, tuned so the real hot
// paths pass clean and a regression (a stray fmt.Errorf in the decode loop,
// a closure in the ring op) fails the build. Test files are exempt.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the allocation-discipline checker.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "reject allocation-introducing constructs in functions annotated //datawa:hotpath",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, ok := pass.FuncDirective(fd.Doc, fd.Pos(), "hotpath"); !ok {
				continue
			}
			c := &checker{pass: pass, fnType: fd.Type}
			c.stmts(fd.Body.List)
		}
	}
	return nil, nil
}

type checker struct {
	pass   *analysis.Pass
	fnType *ast.FuncType
}

// stmts checks a hot statement list, skipping cold branches and
// //datawa:alloc-annotated statements.
func (c *checker) stmts(list []ast.Stmt) {
	for _, s := range list {
		c.stmt(s)
	}
}

func (c *checker) stmt(s ast.Stmt) {
	if d, ok := c.pass.DirectiveAt(s.Pos(), "alloc"); ok {
		if d.Justification == "" {
			c.pass.Reportf(s.Pos(), "//datawa:alloc needs a justification (why is this allocation acceptable on the hot path?)")
		}
		return
	}
	switch s := s.(type) {
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		c.expr(s.Cond)
		if c.coldBlock(s.Body) {
			// Terminal error/panic branch: allocation here is the reject
			// path, not the steady state.
		} else {
			c.stmts(s.Body.List)
		}
		if s.Else != nil {
			c.stmt(s.Else)
		}
	case *ast.BlockStmt:
		c.stmts(s.List)
	case *ast.ForStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		if s.Cond != nil {
			c.expr(s.Cond)
		}
		if s.Post != nil {
			c.stmt(s.Post)
		}
		c.stmts(s.Body.List)
	case *ast.RangeStmt:
		c.expr(s.X)
		c.stmts(s.Body.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		if s.Tag != nil {
			c.expr(s.Tag)
		}
		for _, cc := range s.Body.List {
			clause := cc.(*ast.CaseClause)
			for _, e := range clause.List {
				c.expr(e)
			}
			if c.coldStmts(clause.Body) {
				continue
			}
			c.stmts(clause.Body)
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		for _, cc := range s.Body.List {
			clause := cc.(*ast.CaseClause)
			if c.coldStmts(clause.Body) {
				continue
			}
			c.stmts(clause.Body)
		}
	case *ast.AssignStmt:
		for _, e := range s.Lhs {
			c.expr(e)
		}
		for _, e := range s.Rhs {
			c.expr(e)
		}
	case *ast.ExprStmt:
		c.expr(s.X)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.expr(e)
		}
	case *ast.IncDecStmt:
		c.expr(s.X)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.expr(v)
					}
				}
			}
		}
	case *ast.DeferStmt:
		c.pass.Reportf(s.Pos(), "defer in a hotpath function: the deferred frame allocates and delays the hot return")
	case *ast.GoStmt:
		// The determinism analyzer owns goroutine discipline; here we only
		// note the closure allocation via the call expression below.
		c.expr(s.Call)
	case *ast.SendStmt:
		c.expr(s.Chan)
		c.expr(s.Value)
	case *ast.LabeledStmt:
		c.stmt(s.Stmt)
	}
}

// coldBlock reports whether a block is a terminal reject path: its last
// statement returns with a non-nil error or panics.
func (c *checker) coldBlock(b *ast.BlockStmt) bool {
	return c.coldStmts(b.List)
}

func (c *checker) coldStmts(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt:
		if len(last.Results) == 0 {
			return false
		}
		final := last.Results[len(last.Results)-1]
		if id, ok := final.(*ast.Ident); ok && id.Name == "nil" {
			return false
		}
		t := c.pass.TypesInfo.TypeOf(final)
		return t != nil && isErrorType(t)
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(t, errorType) || types.Implements(t, errorType.Underlying().(*types.Interface))
}

// expr checks one hot expression tree.
func (c *checker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.report(n.Pos(), "closure in a hotpath function: the func value and its captures allocate")
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					c.report(n.Pos(), "&composite literal in a hotpath function escapes to the heap")
					// Still descend to check the literal's elements.
				}
			}
		case *ast.CompositeLit:
			t := c.pass.TypesInfo.TypeOf(n)
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					c.report(n.Pos(), "%s literal in a hotpath function allocates its backing store", kindOf(t))
				}
			}
		case *ast.CallExpr:
			c.call(n)
		}
		return true
	})
}

func kindOf(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Map:
		return "map"
	default:
		return "slice"
	}
}

// call checks one call expression: banned packages, allocating builtins,
// allocating conversions, and interface boxing of arguments.
func (c *checker) call(call *ast.CallExpr) {
	// Conversions.
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		c.conversion(call, tv.Type)
		return
	}
	// Builtins.
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				c.report(call.Pos(), "make in a hotpath function allocates; preallocate in the owner and reuse")
			case "new":
				c.report(call.Pos(), "new in a hotpath function allocates; use a caller-owned value")
			}
			return
		}
	}
	// Banned packages.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "fmt", "errors", "log":
				c.report(call.Pos(), "%s.%s in a hotpath function allocates (string building, argument boxing); "+
					"use a preallocated sentinel or move it to a cold branch", fn.Pkg().Path(), fn.Name())
				return
			}
		}
	}
	// Interface boxing of arguments.
	sig, ok := c.pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pt := paramType(sig, i, call.Ellipsis != token.NoPos)
		if pt == nil {
			continue
		}
		if _, paramIface := pt.Underlying().(*types.Interface); !paramIface {
			continue
		}
		at := c.pass.TypesInfo.TypeOf(arg)
		if at == nil {
			continue
		}
		if _, argIface := at.Underlying().(*types.Interface); argIface {
			continue
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		if _, isPtr := at.Underlying().(*types.Pointer); isPtr {
			// Boxing a pointer stores the pointer word directly: no allocation.
			continue
		}
		c.report(arg.Pos(), "passing %s to interface parameter boxes it on the heap in a hotpath function", at)
	}
}

// paramType resolves the parameter type seen by argument i of a call to sig.
func paramType(sig *types.Signature, i int, ellipsis bool) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		if ellipsis {
			return sig.Params().At(n - 1).Type()
		}
		s, ok := sig.Params().At(n - 1).Type().(*types.Slice)
		if !ok {
			return nil
		}
		return s.Elem()
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}

// conversion flags string<->bytes conversions, which copy, and conversions
// to interface types, which box.
func (c *checker) conversion(call *ast.CallExpr, to types.Type) {
	if len(call.Args) != 1 {
		return
	}
	from := c.pass.TypesInfo.TypeOf(call.Args[0])
	if from == nil {
		return
	}
	if _, toIface := to.Underlying().(*types.Interface); toIface {
		if _, fromIface := from.Underlying().(*types.Interface); !fromIface {
			c.report(call.Pos(), "conversion to interface type %s boxes the value on the heap in a hotpath function", to)
		}
		return
	}
	toB, toIsBasic := to.Underlying().(*types.Basic)
	fromB, fromIsBasic := from.Underlying().(*types.Basic)
	toSlice, toIsSlice := to.Underlying().(*types.Slice)
	fromSlice, fromIsSlice := from.Underlying().(*types.Slice)
	switch {
	case toIsBasic && toB.Info()&types.IsString != 0 && fromIsSlice && isByteOrRune(fromSlice.Elem()):
		c.report(call.Pos(), "[]%s -> string conversion copies in a hotpath function", fromSlice.Elem())
	case fromIsBasic && fromB.Info()&types.IsString != 0 && toIsSlice && isByteOrRune(toSlice.Elem()):
		c.report(call.Pos(), "string -> []%s conversion copies in a hotpath function", toSlice.Elem())
	}
}

func isByteOrRune(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// report emits unless the construct's line carries //datawa:alloc.
func (c *checker) report(pos token.Pos, format string, args ...any) {
	if d, ok := c.pass.DirectiveAt(pos, "alloc"); ok {
		if d.Justification == "" {
			c.pass.Reportf(pos, "//datawa:alloc needs a justification (why is this allocation acceptable on the hot path?)")
		}
		return
	}
	c.pass.Reportf(pos, format, args...)
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
