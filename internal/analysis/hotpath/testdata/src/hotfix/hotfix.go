// Package hotfix is the hotpath-analyzer fixture: every banned construct,
// the //datawa:alloc escape hatch, and the proof that un-annotated
// functions are left alone.
package hotfix

import "fmt"

type pair struct{ a, b int }

func sink(v any)     { _ = v }
func release()       {}
func fill(dst []int) {}

// Every construct below allocates on the hot path.
//
//datawa:hotpath
func hotViolations(s string, n int) int {
	buf := make([]byte, n)       // want `make in a hotpath function allocates; preallocate in the owner and reuse`
	f := func() int { return n } // want `closure in a hotpath function: the func value and its captures allocate`
	p := &pair{a: n}             // want `&composite literal in a hotpath function escapes to the heap`
	xs := []int{1, 2, 3}         // want `slice literal in a hotpath function allocates its backing store`
	bs := []byte(s)              // want `string -> \[\]byte conversion copies in a hotpath function`
	sink(n)                      // want `passing int to interface parameter boxes it on the heap in a hotpath function`
	defer release()              // want `defer in a hotpath function: the deferred frame allocates and delays the hot return`
	if n < 0 {
		fmt.Println(n) // want `fmt.Println in a hotpath function allocates`
	}
	return len(buf) + f() + p.a + xs[0] + len(bs)
}

// Value literals, pointer boxing, and cold error branches are fine.
//
//datawa:hotpath
func hotClean(buf []byte, n int) (pair, error) {
	v := pair{a: n, b: n}
	sink(&v) // boxing a pointer stores the word directly: no allocation
	if len(buf) < n {
		return pair{}, fmt.Errorf("short buffer: %d < %d", len(buf), n)
	}
	return v, nil
}

// The escape hatch admits a deliberate allocation with a why...
//
//datawa:hotpath
func hotSlab(n int) []int {
	//datawa:alloc one amortized slab per batch, reused across the epoch
	slab := make([]int, 0, n)
	fill(slab)
	return slab
}

// ...but a bare escape hatch is itself a finding.
//
//datawa:hotpath
func hotBareAlloc(n int) []int {
	//datawa:alloc
	return make([]int, n) // want `//datawa:alloc needs a justification \(why is this allocation acceptable on the hot path\?\)`
}

// No annotation, no rules.
func coldPath(s string, n int) []byte {
	defer release()
	out := make([]byte, 0, n)
	return append(out, s...)
}
