// wireshape.go mirrors the real wire frame decoder: fixed-width field
// loops, uvarint-style shifts, and fmt.Errorf confined to terminal
// error-return branches. The hotpath analyzer must stay silent on this
// entire file — it is the shape the cold-branch rule was calibrated on.
package hotfix

import (
	"errors"
	"fmt"
	"math"
)

// Event is the decoded record.
type Event struct {
	Kind byte
	Seq  uint64
	X, Y float64
}

var errShort = errors.New("wireshape: short buffer")

// DecodeFrame parses one frame from buf, returning the event and the
// number of bytes consumed. All allocations live on reject paths.
//
//datawa:hotpath
func DecodeFrame(buf []byte) (Event, int, error) {
	var ev Event
	if len(buf) < 2 {
		return ev, 0, fmt.Errorf("wireshape: short frame: %d bytes", len(buf))
	}
	n := 0
	ev.Kind = buf[n]
	n++
	seq, adv, err := takeUvarint(buf[n:])
	if err != nil {
		return ev, 0, fmt.Errorf("wireshape: seq: %w", err)
	}
	ev.Seq = seq
	n += adv
	switch ev.Kind {
	case 1, 2:
		for _, dst := range [...]*float64{&ev.X, &ev.Y} {
			v, adv, err := takeF64(buf[n:])
			if err != nil {
				return ev, 0, fmt.Errorf("wireshape: field: %w", err)
			}
			*dst = v
			n += adv
		}
	default:
		return ev, 0, fmt.Errorf("wireshape: unknown kind 0x%02x", ev.Kind)
	}
	return ev, n, nil
}

// takeF64 reads a little-endian float64.
//
//datawa:hotpath
func takeF64(buf []byte) (float64, int, error) {
	if len(buf) < 8 {
		return 0, 0, errShort
	}
	bits := uint64(0)
	for i := 0; i < 8; i++ {
		bits |= uint64(buf[i]) << (8 * uint(i))
	}
	return math.Float64frombits(bits), 8, nil
}

// takeUvarint reads an unsigned varint.
//
//datawa:hotpath
func takeUvarint(buf []byte) (uint64, int, error) {
	var x uint64
	var shift uint
	for i, b := range buf {
		if b < 0x80 {
			return x | uint64(b)<<shift, i + 1, nil
		}
		x |= uint64(b&0x7f) << shift
		shift += 7
		if shift > 63 {
			return 0, 0, errShort
		}
	}
	return 0, 0, errShort
}

// AppendFrame is the encode twin: append into a caller-owned buffer.
//
//datawa:hotpath
func AppendFrame(dst []byte, ev Event) []byte {
	dst = append(dst, ev.Kind)
	dst = appendUvarint(dst, ev.Seq)
	for _, v := range [...]float64{ev.X, ev.Y} {
		bits := math.Float64bits(v)
		for s := uint(0); s < 64; s += 8 {
			dst = append(dst, byte(bits>>s))
		}
	}
	return dst
}

//datawa:hotpath
func appendUvarint(dst []byte, x uint64) []byte {
	for x >= 0x80 {
		dst = append(dst, byte(x)|0x80)
		x >>= 7
	}
	return append(dst, byte(x))
}
