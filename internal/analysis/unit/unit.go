// Package unit implements the `go vet -vettool=` driver protocol for the
// datawa-lint analyzer suite, compatible with the contract cmd/go expects
// from a vet tool (the same one x/tools' unitchecker implements):
//
//	datawa-lint -V=full     print a version fingerprint (build caching)
//	datawa-lint -flags      print supported flags as JSON
//	datawa-lint foo.cfg     analyze the compilation unit described by foo.cfg
//
// The .cfg file is JSON written by cmd/go describing one package: its source
// files, the resolved import map, and the export-data files of every
// dependency. The driver parses and type-checks the unit with the standard
// library alone — go/parser, go/types, and go/importer reading the compiler's
// export data — then runs the analyzers and prints findings to stderr in the
// usual file:line:col form. Exit status 1 means findings, 0 clean.
//
// The suite is package-local (no analyzer exports cross-package facts), so
// dependency units (VetxOnly) are a no-op beyond writing the empty facts
// file cmd/go uses as a cache key.
package unit

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

// config mirrors the JSON compilation-unit description cmd/go writes for a
// vet tool. Field names are the wire contract; unused fields are omitted.
type config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetxPayload is what we write as a "facts" file: the suite has no
// cross-package facts, but cmd/go caches and feeds this file back, so it
// must exist and be stable.
var vetxPayload = []byte("datawa-lint: no facts\n")

// Main is the entry point for cmd/datawa-lint.
func Main(analyzers ...*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	args, enabled := parseArgs(progname, analyzers, os.Args[1:])

	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fmt.Fprintf(os.Stderr, `%[1]s: static analysis suite for the datawa tree (see docs/LINTING.md).

Usage: go vet -vettool=$(command -v %[1]s) [-<analyzer>] ./...

Direct invocation with a unit.cfg is the build-tool protocol, not for
interactive use.
`, progname)
		os.Exit(64)
	}
	run(args[0], enabled)
}

// parseArgs handles the protocol flags by hand (the stdlib flag package is
// avoided so unknown future flags from cmd/go degrade to a clear error, not
// a usage panic). It returns positional args and the enabled analyzer set.
func parseArgs(progname string, analyzers []*analysis.Analyzer, argv []string) ([]string, []*analysis.Analyzer) {
	byName := make(map[string]*analysis.Analyzer)
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	setTrue := make(map[string]bool)
	setFalse := make(map[string]bool)
	var positional []string

	for _, arg := range argv {
		if !strings.HasPrefix(arg, "-") {
			positional = append(positional, arg)
			continue
		}
		name, value := strings.TrimLeft(arg, "-"), ""
		if eq := strings.Index(name, "="); eq >= 0 {
			name, value = name[:eq], name[eq+1:]
		}
		switch {
		case name == "V":
			printVersion(value)
			os.Exit(0)
		case name == "flags":
			printFlags(analyzers)
			os.Exit(0)
		case byName[name] != nil:
			if value == "false" {
				setFalse[name] = true
			} else {
				setTrue[name] = true
			}
		case name == "json" || name == "c" || name == "source" || name == "v" ||
			name == "all" || name == "tags" || name == "fix":
			// Accepted for vet-driver compatibility; no effect.
		default:
			log.Fatalf("unknown flag -%s", name)
		}
	}

	// Vet flag semantics: any -NAME selects only those analyzers; otherwise
	// any -NAME=false deselects from the full set.
	selected := analyzers
	if len(setTrue) > 0 {
		selected = nil
		for _, a := range analyzers {
			if setTrue[a.Name] {
				selected = append(selected, a)
			}
		}
	} else if len(setFalse) > 0 {
		selected = nil
		for _, a := range analyzers {
			if !setFalse[a.Name] {
				selected = append(selected, a)
			}
		}
	}
	return positional, selected
}

// printVersion implements -V=full: a content fingerprint of the executable,
// which cmd/go folds into its action cache key so a rebuilt tool invalidates
// cached vet results.
func printVersion(value string) {
	if value != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", value)
	}
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("%s version devel datawa-lint buildID=%02x\n", exe, h.Sum(nil))
}

// printFlags implements -flags: the JSON flag inventory cmd/go queries to
// validate user-supplied vet flags.
func printFlags(analyzers []*analysis.Analyzer) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := []jsonFlag{
		{"V", true, "print version and exit"},
		{"json", true, "accepted for compatibility; no effect"},
		{"c", false, "accepted for compatibility; no effect"},
	}
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		flags = append(flags, jsonFlag{a.Name, true, "enable " + a.Name + " analysis: " + doc})
	}
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

func run(configFile string, analyzers []*analysis.Analyzer) {
	data, err := os.ReadFile(configFile)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(config)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("cannot decode JSON config file %s: %v", configFile, err)
	}

	// Dependency units exist only to produce facts; this suite has none.
	if cfg.VetxOnly {
		writeVetx(cfg)
		os.Exit(0)
	}
	if len(cfg.GoFiles) == 0 {
		log.Fatalf("package has no files: %s", cfg.ImportPath)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				// The compiler will report the parse error; stay quiet.
				writeVetx(cfg)
				os.Exit(0)
			}
			log.Fatal(err)
		}
		files = append(files, f)
	}

	tc := &types.Config{
		Importer:  makeImporter(cfg, fset),
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx(cfg)
			os.Exit(0)
		}
		log.Fatal(err)
	}

	results, err := analysis.RunAnalyzers(fset, files, pkg, info, analyzers)
	if err != nil {
		log.Fatal(err)
	}
	writeVetx(cfg)

	exit := 0
	for _, res := range results {
		for _, d := range res.Diagnostics {
			fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
			exit = 1
		}
	}
	os.Exit(exit)
}

// makeImporter resolves imports through the unit's ImportMap to the
// compiler-written export data files in PackageFile — the same pipeline the
// compiler itself uses, so the analyzers see exactly the built types.
func makeImporter(cfg *config, fset *token.FileSet) types.Importer {
	compiled := importer.ForCompiler(fset, compilerOrDefault(cfg.Compiler), func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data file for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("cannot resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compiled.Import(path)
	})
}

func compilerOrDefault(c string) string {
	if c == "" {
		return "gc"
	}
	return c
}

func writeVetx(cfg *config) {
	if cfg.VetxOutput == "" {
		return
	}
	if err := os.WriteFile(cfg.VetxOutput, vetxPayload, 0o666); err != nil {
		log.Fatalf("failed to write facts file: %v", err)
	}
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
