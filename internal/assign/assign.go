// Package assign implements the task assignment component of DATA-WA
// (Section IV-B/IV-C): the exact depth-first search over the RTC tree
// (Algorithm 1, DFSearch) with reinforcement-learning sample collection, the
// value-function-guided search without backtracking (Algorithm 2,
// DFSearch_TVF), the Task Planning Assignment driver (Algorithm 4, TPA), and
// the Greedy baseline of Section V-B.2.
package assign

import (
	"slices"
	"sort"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/tvf"
	"repro/internal/wds"
)

// Options bounds the planning effort per instant.
type Options struct {
	// WDS configures reachable-set and sequence generation.
	WDS wds.Options
	// MaxNodes caps the number of exact-search nodes per RTC tree; past the
	// budget a tree's search completes greedily (default 20000). The budget
	// is per tree (not shared across the forest) so that every tree's
	// search is independent of its siblings — the property the parallel
	// planner relies on for byte-identical serial/parallel results. Note
	// this deliberately differs from earlier revisions, where one budget
	// was drained across the whole forest: when the budget binds,
	// NodesLastPlan can exceed MaxNodes by up to a factor of the forest
	// size.
	MaxNodes int
	// VirtualWeight is the objective value of assigning a virtual
	// (predicted) task relative to a real task's 1.0 (default 0.35,
	// roughly the empirical precision of materialized predictions): the
	// planner is paid for positioning workers at future demand, but never
	// at the price of a real task.
	VirtualWeight float64
	// MaxSamples caps RL sample collection per planning call (default
	// 20000).
	MaxSamples int
	// Flat disables the RTC tree (ablation): each connected component is
	// searched as one flat worker list, losing the sibling-independence
	// pruning of Section IV-A.4.
	Flat bool
	// Parallelism bounds the goroutines used to search the trees of the
	// RTC forest concurrently (and, unless WDS.Parallelism is set
	// separately, the per-worker loop inside wds.Separate): 0 uses one
	// goroutine per CPU, 1 (or any negative value) runs serially. Trees
	// are independent by construction — workers in different trees share
	// no reachable task — so every setting produces the identical plan,
	// node count, and sample stream.
	Parallelism int
}

// WithDefaults returns o with zero fields defaulted.
func (o Options) WithDefaults() Options {
	o.WDS = o.WDS.WithDefaults()
	if o.MaxNodes <= 0 {
		o.MaxNodes = 20000
	}
	if o.VirtualWeight <= 0 {
		o.VirtualWeight = 0.35
	}
	if o.MaxSamples <= 0 {
		o.MaxSamples = 20000
	}
	return o
}

// seqValue is the search objective contribution of a sequence: 1 per real
// task, VirtualWeight per virtual task.
func seqValue(q core.Sequence, virtualWeight float64) float64 {
	v := 0.0
	for _, s := range q {
		if s.Virtual {
			v += virtualWeight
		} else {
			v++
		}
	}
	return v
}

// Planner computes a spatial task assignment for the current workers and
// unassigned tasks at time now. Implementations must be deterministic.
type Planner interface {
	Name() string
	Plan(workers []*core.Worker, tasks []*core.Task, now float64) core.Plan
}

// ---------------------------------------------------------------------------
// Greedy baseline
// ---------------------------------------------------------------------------

// Greedy is the baseline of Section V-B.2(i): it scans workers in id order
// and hands each the maximal valid task sequence from the still-unassigned
// tasks, until tasks or workers run out. No dependency reasoning, no
// look-ahead.
//
// A Greedy carries reusable per-instant scratch (planners are per-shard and
// single-goroutine), so steady-state Plan calls allocate only the plan.
type Greedy struct {
	Opts Options

	ws    []*core.Worker
	avail taskSet
	sc    wds.Scratch
}

// Name implements Planner.
func (g *Greedy) Name() string { return "Greedy" }

// Plan implements Planner.
func (g *Greedy) Plan(workers []*core.Worker, tasks []*core.Task, now float64) core.Plan {
	o := g.Opts.WithDefaults()
	ws := append(g.ws[:0], workers...)
	g.ws = ws
	slices.SortFunc(ws, func(a, b *core.Worker) int { return a.ID - b.ID })
	g.avail.reset(tasks)
	var plan core.Plan
	for _, w := range ws {
		rs := g.sc.ReachableTasks(w, g.avail.slice(), now, o.WDS)
		qs := g.sc.MaximalValidSequences(w, rs, now, o.WDS)
		if len(qs) == 0 {
			continue
		}
		q := qs[0] // longest, then earliest completion: the maximal set
		g.avail.removeSeq(q)
		plan = append(plan, core.Assignment{Worker: w, Seq: q})
	}
	return plan
}

// ---------------------------------------------------------------------------
// Search planner: TPA + DFSearch / DFSearch_TVF
// ---------------------------------------------------------------------------

// Search is the planner used by FTA, DTA, DTA+TP and DATA-WA. With a nil
// Model it runs the exact DFSearch (Algorithm 1); with a trained TVF model
// it runs DFSearch_TVF (Algorithm 2), which never backtracks. When Collect
// is true, exact search emits (state, action, opt) samples into Samples for
// TVF training.
type Search struct {
	Opts    Options
	Model   *tvf.Model
	Collect bool
	// Samples accumulates RL training data across Plan calls when Collect
	// is set.
	Samples []tvf.Sample
	// NodesLastPlan reports the exact-search nodes expended by the most
	// recent Plan call, for diagnostics and efficiency experiments.
	NodesLastPlan int

	// Per-instant scratch (a Search serves one shard from one goroutine, but
	// fans tree searches out internally — runs is indexed by the worker
	// goroutine, everything else stays on the driving goroutine).
	sepScratch wds.Separator
	runs       []searchRun
	treeOf     map[int]int32
	taskFlat   []*core.Task
	taskOff    []int32
	taskFill   []int32
	treeTasks  [][]*core.Task
}

// Name implements Planner.
func (s *Search) Name() string {
	if s.Model != nil {
		return "DFSearch_TVF"
	}
	return "DFSearch"
}

// SetParallelism overrides Opts.Parallelism; see that field for semantics.
// It exists so layers that receive a Planner interface (the stream engine,
// the experiment harness) can thread one parallelism knob through without
// knowing the concrete options type.
func (s *Search) SetParallelism(p int) { s.Opts.Parallelism = p }

// Plan implements Planner. It is the Task Planning Assignment driver of
// Algorithm 4: per-worker reachable sets and maximal valid sequences, the
// worker dependency graph, clique partition and RTC tree (all via
// wds.Separate), then one search per tree of the forest.
//
// The trees are searched concurrently on a bounded pool (Options.
// Parallelism). Each tree owns a disjoint slice of the task pool — two
// workers sharing a reachable task are by definition in the same dependency
// component — so per-tree searches never contend, and the merge in forest
// order (components sorted by their smallest worker index) makes the plan,
// NodesLastPlan, and collected samples byte-identical to a serial run.
func (s *Search) Plan(workers []*core.Worker, tasks []*core.Task, now float64) core.Plan {
	o := s.Opts.WithDefaults()
	wdsOpts := o.WDS
	if wdsOpts.Parallelism == 0 {
		wdsOpts.Parallelism = o.Parallelism
	}
	sep := s.sepScratch.Separate(workers, tasks, now, wdsOpts)
	forest := sep.Forest
	if o.Flat {
		// Ablation: collapse each tree into a single node holding every
		// worker of the component.
		flat := make([]*wds.TreeNode, len(forest))
		for i, root := range forest {
			ws := root.AllWorkers()
			sort.Slice(ws, func(a, b int) bool { return ws[a].ID < ws[b].ID })
			flat[i] = &wds.TreeNode{Workers: ws}
		}
		forest = flat
	}

	// Partition the pool into per-tree task universes in one pass: every
	// task reachable by one of a tree's workers, in pool order. The
	// reachable sets of different trees are disjoint (sharing a task merges
	// two workers into one dependency component), so this is a partition,
	// and tasks reachable by no worker can never appear in any candidate
	// sequence. Scoping each tree's taskSet this way also scopes the RL
	// state (stateFor → taskSet.slice) to the tree's own tasks, so TVF
	// features and samples cannot depend on sibling completion order — a
	// deliberate change from draining one global pool across the forest.
	if s.treeOf == nil {
		s.treeOf = make(map[int]int32)
	} else {
		clear(s.treeOf)
	}
	for i, root := range forest {
		root.EachWorker(func(w *core.Worker) {
			for _, t := range sep.Reachable[w.ID] {
				s.treeOf[t.ID] = int32(i)
			}
		})
	}
	// Bucket the pool per tree into one flat buffer: count, prefix-sum, fill.
	// The per-tree views stay in pool order, exactly as per-tree appends
	// would produce, without a slice allocation per tree.
	off := s.taskOff[:0]
	for i := 0; i <= len(forest); i++ {
		off = append(off, 0)
	}
	for _, t := range tasks {
		if i, ok := s.treeOf[t.ID]; ok {
			off[i+1]++
		}
	}
	for i := 0; i < len(forest); i++ {
		off[i+1] += off[i]
	}
	s.taskOff = off
	fill := append(s.taskFill[:0], off[:len(forest)]...)
	s.taskFill = fill
	n := int(off[len(forest)])
	flat := slices.Grow(s.taskFlat[:0], n)[:n]
	for _, t := range tasks {
		if i, ok := s.treeOf[t.ID]; ok {
			flat[fill[i]] = t
			fill[i]++
		}
	}
	s.taskFlat = flat
	treeTasks := s.treeTasks[:0]
	for i := 0; i < len(forest); i++ {
		treeTasks = append(treeTasks, flat[off[i]:off[i+1]])
	}
	s.treeTasks = treeTasks

	type treeResult struct {
		plan    core.Plan
		nodes   int
		samples []tvf.Sample
	}
	results := make([]treeResult, len(forest))
	for len(s.runs) < par.Workers(o.Parallelism, len(forest)) {
		s.runs = append(s.runs, searchRun{})
	}
	par.DoWorker(len(forest), o.Parallelism, func(g, i int) {
		root := forest[i]
		run := &s.runs[g]
		run.opts, run.sep, run.now = o, sep, now
		run.model, run.collect = s.Model, s.Collect
		run.nodes = 0
		run.samples = nil // escapes into results; never reuse the backing
		run.ts.reset(treeTasks[i])
		if run.seqIdx == nil {
			run.seqIdx = make(map[int][][]int32)
		} else {
			clear(run.seqIdx)
		}
		if s.Model != nil {
			results[i].plan = run.searchTVF(root, root.Workers)
		} else {
			_, results[i].plan = run.search(root, root.Workers)
		}
		results[i].nodes = run.nodes
		results[i].samples = run.samples
	})

	var plan core.Plan
	nodes := 0
	for _, r := range results {
		plan = append(plan, r.plan...)
		nodes += r.nodes
	}
	s.NodesLastPlan = nodes
	if s.Collect {
		// Each tree collects under its own MaxSamples cap; the merged
		// stream is re-capped so one Plan call still emits at most
		// MaxSamples, exactly as a serial traversal of the forest would.
		added := 0
		for _, r := range results {
			room := o.MaxSamples - added
			if room <= 0 {
				break
			}
			if len(r.samples) > room {
				r.samples = r.samples[:room]
			}
			added += len(r.samples)
			s.Samples = append(s.Samples, r.samples...)
		}
	}
	return plan
}

// searchRun carries the state of one tree's search within one Plan
// invocation: the tree-local task availability set and, per worker, the
// candidate sequences translated to task-index lists so the per-node
// usability filter is a dense array scan instead of a hash lookup per task —
// the filter runs once per worker per search node and dominated epoch CPU in
// hotspot regimes before the translation.
type searchRun struct {
	opts    Options
	sep     *wds.Separation
	now     float64
	model   *tvf.Model
	nodes   int
	collect bool
	samples []tvf.Sample
	// ts is the tree's availability set; seqIdx caches, per worker id, each
	// sequence of Q_w as indices into ts (built on first use). Both are
	// reset-reused across the trees a worker goroutine serves.
	ts     taskSet
	seqIdx map[int][][]int32
}

// seqIndices returns w's candidate sequences as task-index lists into r.ts,
// building and caching them on first use. A nil entry marks a sequence
// containing a task outside the tree's universe (impossible by construction,
// but kept unusable rather than misindexed).
//
//datawa:hotpath
func (r *searchRun) seqIndices(w *core.Worker) [][]int32 {
	idxs, ok := r.seqIdx[w.ID]
	if !ok {
		seqs := r.sep.Sequences[w.ID]
		//datawa:alloc cache build, once per worker per tree; every later node reuses it
		idxs = make([][]int32, len(seqs))
		for k, q := range seqs {
			//datawa:alloc cache build, once per sequence per tree
			l := make([]int32, len(q))
			for j, s := range q {
				i, in := r.ts.byID[s.ID]
				if !in {
					l = nil
					break
				}
				l[j] = i
			}
			idxs[k] = l
		}
		r.seqIdx[w.ID] = idxs
	}
	return idxs
}

// candidates returns the usable subset of Q_w — the positions (into
// r.sep.Sequences[w.ID]) of the precomputed sequences whose tasks are all
// still available.
//
//datawa:hotpath
func (r *searchRun) candidates(w *core.Worker) []int32 {
	idxs := r.seqIndices(w)
	var out []int32
	for k, l := range idxs {
		if l == nil {
			continue
		}
		ok := true
		for _, i := range l {
			if !r.ts.avail[i] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, int32(k))
		}
	}
	return out
}

// search is Algorithm 1. It returns the best achievable objective value from
// this node and the plan realizing it. Workers of the node are considered in
// id order; each worker branches over every usable q ∈ Q_w plus the skip
// option, which preserves the optimum the paper's worker loop explores while
// avoiding redundant permutations. When the node budget is exhausted the
// subtree completes greedily.
func (r *searchRun) search(n *wds.TreeNode, workers []*core.Worker) (float64, core.Plan) {
	r.nodes++
	if r.nodes > r.opts.MaxNodes {
		return r.greedyComplete(n, workers)
	}
	if len(workers) == 0 {
		// Line 15–16: recurse into each child; sibling subtrees are
		// independent, so their optima add.
		total := 0.0
		var plan core.Plan
		for _, child := range n.Children {
			v, sub := r.search(child, child.Workers)
			for _, a := range sub {
				r.ts.removeSeq(a.Seq)
			}
			total += v
			plan = append(plan, sub...)
		}
		for _, a := range plan {
			r.ts.restoreSeq(a.Seq)
		}
		return total, plan
	}

	w := workers[0]
	rest := workers[1:]

	// Skip branch: w gets nothing.
	bestVal, bestPlan := r.search(n, rest)

	var st tvf.State
	if r.collect {
		st = r.stateFor(n, workers)
	}
	seqs := r.sep.Sequences[w.ID]
	idxs := r.seqIndices(w)
	for _, k := range r.candidates(w) {
		q := seqs[k]
		r.ts.removeIdx(idxs[k])
		v, sub := r.search(n, rest)
		r.ts.restoreIdx(idxs[k])
		total := v + seqValue(q, r.opts.VirtualWeight)
		if total > bestVal {
			bestVal = total
			bestPlan = append(core.Plan{{Worker: w, Seq: q}}, sub...)
		}
		if r.collect && len(r.samples) < r.opts.MaxSamples {
			// Lines 9–11: record (s_t, a_t, opt).
			feat := tvf.Featurize(st, tvf.Action{Worker: w, Seq: q}, r.opts.WDS.Travel)
			r.samples = append(r.samples, tvf.Sample{Features: feat, Opt: total})
		}
	}
	return bestVal, bestPlan
}

// greedyComplete finishes a subtree without branching once the exact budget
// is spent: each worker takes its best immediate sequence.
func (r *searchRun) greedyComplete(n *wds.TreeNode, workers []*core.Worker) (float64, core.Plan) {
	total := 0.0
	var plan core.Plan
	var removed []core.Sequence
	for _, w := range workers {
		cands := r.candidates(w)
		if len(cands) == 0 {
			continue
		}
		q := r.sep.Sequences[w.ID][cands[0]]
		r.ts.removeSeq(q)
		removed = append(removed, q)
		total += seqValue(q, r.opts.VirtualWeight)
		plan = append(plan, core.Assignment{Worker: w, Seq: q})
	}
	for _, child := range n.Children {
		v, sub := r.greedyComplete(child, child.Workers)
		total += v
		plan = append(plan, sub...)
		for _, a := range sub {
			r.ts.removeSeq(a.Seq)
			removed = append(removed, a.Seq)
		}
	}
	for _, q := range removed {
		r.ts.restoreSeq(q)
	}
	return total, plan
}

// searchTVF is Algorithm 2: at each worker it commits to the sequence in
// Q_w whose predicted long-term value is highest (line 8:
// q_best ← argmax_{q∈Q_W} TVF(s_t, (w,q))) and never backtracks. A worker
// with no usable sequence is skipped.
func (r *searchRun) searchTVF(n *wds.TreeNode, workers []*core.Worker) core.Plan {
	r.nodes++
	var plan core.Plan
	if len(workers) > 0 {
		w := workers[0]
		ks := r.candidates(w)
		if len(ks) > 0 {
			seqs := r.sep.Sequences[w.ID]
			cands := make([]core.Sequence, len(ks))
			for i, k := range ks {
				cands[i] = seqs[k]
			}
			st := r.stateFor(n, workers)
			feats := make([][tvf.FeatureDim]float64, 0, len(cands))
			for _, q := range cands {
				feats = append(feats, tvf.Featurize(st, tvf.Action{Worker: w, Seq: q}, r.opts.WDS.Travel))
			}
			values := r.model.PredictBatch(feats)
			bestIdx := 0
			for i, v := range values {
				if v > values[bestIdx] {
					bestIdx = i
				}
			}
			// The learned value is an approximation; among candidates the
			// model considers near-equal (within a quarter task of the
			// best), take the one with the higher immediate value so
			// approximation noise cannot discard an obviously longer
			// sequence.
			const nearTie = 0.25
			for i, v := range values {
				if v >= values[bestIdx]-nearTie &&
					seqValue(cands[i], r.opts.VirtualWeight) > seqValue(cands[bestIdx], r.opts.VirtualWeight) {
					bestIdx = i
				}
			}
			q := cands[bestIdx]
			r.ts.removeSeq(q)
			plan = append(plan, core.Assignment{Worker: w, Seq: q})
		}
		plan = append(plan, r.searchTVF(n, workers[1:])...)
		return plan
	}
	for _, child := range n.Children {
		plan = append(plan, r.searchTVF(child, child.Workers)...)
	}
	return plan
}

// stateFor materializes the RL state (W_N + W_C, S) at a search position.
func (r *searchRun) stateFor(n *wds.TreeNode, workers []*core.Worker) tvf.State {
	all := append([]*core.Worker(nil), workers...)
	for _, child := range n.Children {
		all = append(all, child.AllWorkers()...)
	}
	return tvf.State{Workers: all, Tasks: r.ts.slice(), Now: r.now}
}

// ---------------------------------------------------------------------------
// Task set bookkeeping
// ---------------------------------------------------------------------------

// taskSet tracks available tasks with O(1) removal and restoration and a
// deterministic slice view. Membership is a dense bool array over the
// deduped insertion order — the per-node candidate filter of the search
// reads it millions of times per planning instant on hotspot workloads, so
// availability checks must not hash. The id→index map is built once and
// never mutated, letting sequences be pre-translated to index lists
// (searchRun.seqIndices) that skip the map entirely.
type taskSet struct {
	byID  map[int]int32 // id → index into order; never mutated after build
	order []*core.Task  // deduped insertion order
	avail []bool        // availability by index
	dirty bool
	cache []*core.Task
}

func newTaskSet(tasks []*core.Task) *taskSet {
	ts := &taskSet{}
	ts.reset(tasks)
	return ts
}

// reset reinitializes the set over tasks, reusing the map and slice capacity
// of previous instants. An empty pool (the common case on quiet archetypes)
// touches no map at all: reads on the nil byID of a zero taskSet are fine.
func (ts *taskSet) reset(tasks []*core.Task) {
	if ts.byID != nil {
		clear(ts.byID)
	} else if len(tasks) > 0 {
		ts.byID = make(map[int]int32, len(tasks))
	}
	ts.order = ts.order[:0]
	for _, t := range tasks {
		if _, dup := ts.byID[t.ID]; dup {
			continue
		}
		ts.byID[t.ID] = int32(len(ts.order))
		ts.order = append(ts.order, t)
	}
	ts.avail = ts.avail[:0]
	for range ts.order {
		ts.avail = append(ts.avail, true)
	}
	ts.dirty = true
	ts.cache = ts.cache[:0]
}

//datawa:hotpath
func (ts *taskSet) has(id int) bool {
	i, ok := ts.byID[id]
	return ok && ts.avail[i]
}

//datawa:hotpath
func (ts *taskSet) removeSeq(q core.Sequence) {
	for _, s := range q {
		if i, ok := ts.byID[s.ID]; ok {
			ts.avail[i] = false
		}
	}
	ts.dirty = true
}

//datawa:hotpath
func (ts *taskSet) restoreSeq(q core.Sequence) {
	for _, s := range q {
		if i, ok := ts.byID[s.ID]; ok {
			ts.avail[i] = true
		}
	}
	ts.dirty = true
}

// removeIdx and restoreIdx are the pre-translated (index list) forms of
// removeSeq/restoreSeq used by the search's candidate loop.
//
//datawa:hotpath
func (ts *taskSet) removeIdx(idxs []int32) {
	for _, i := range idxs {
		ts.avail[i] = false
	}
	ts.dirty = true
}

//datawa:hotpath
func (ts *taskSet) restoreIdx(idxs []int32) {
	for _, i := range idxs {
		ts.avail[i] = true
	}
	ts.dirty = true
}

// slice returns the available tasks in insertion order.
//
//datawa:hotpath
func (ts *taskSet) slice() []*core.Task {
	if !ts.dirty {
		return ts.cache
	}
	out := ts.cache[:0]
	for i, t := range ts.order {
		if ts.avail[i] {
			out = append(out, t)
		}
	}
	ts.cache = out
	ts.dirty = false
	return out
}

// CollectSamples runs the exact DFSearch over one planning instant purely to
// gather TVF training data, the data-generation phase of Section IV-B.
func CollectSamples(workers []*core.Worker, tasks []*core.Task, now float64, o Options) []tvf.Sample {
	s := &Search{Opts: o, Collect: true}
	s.Plan(workers, tasks, now)
	return s.Samples
}
