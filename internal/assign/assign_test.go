package assign

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/tvf"
	"repro/internal/wds"
)

var travel = geo.NewTravelModel(0.01)

func opts() Options {
	return Options{WDS: wds.Options{Travel: travel}}
}

func task(id int, x, y, pub, exp float64) *core.Task {
	return &core.Task{ID: id, Loc: geo.Point{X: x, Y: y}, Pub: pub, Exp: exp, Cell: -1}
}

func vtask(id int, x, y, pub, exp float64) *core.Task {
	t := task(id, x, y, pub, exp)
	t.Virtual = true
	return t
}

func worker(id int, x, y, reach, on, off float64) *core.Worker {
	return &core.Worker{ID: id, Loc: geo.Point{X: x, Y: y}, Reach: reach, On: on, Off: off}
}

// planIsValid checks the single-assignment invariant and per-worker
// sequence validity.
func planIsValid(t *testing.T, plan core.Plan, now float64) {
	t.Helper()
	if id, ok := plan.Consistent(); !ok {
		t.Fatalf("task %d assigned twice", id)
	}
	for _, a := range plan {
		if !core.ValidSequence(a.Worker, now, a.Seq, travel) {
			t.Fatalf("invalid sequence %v for worker %d", a.Seq.IDs(), a.Worker.ID)
		}
	}
}

func TestGreedyAssignsMaximalSet(t *testing.T) {
	w := worker(1, 0, 0, 2, 0, 1e5)
	tasks := []*core.Task{
		task(1, 0.2, 0, 0, 1e5),
		task(2, 0.4, 0, 0, 1e5),
		task(3, 0.6, 0, 0, 1e5),
	}
	g := &Greedy{Opts: opts()}
	plan := g.Plan([]*core.Worker{w}, tasks, 0)
	planIsValid(t, plan, 0)
	if plan.Size() != 3 {
		t.Errorf("greedy assigned %d tasks, want all 3 (MaxSeqLen default)", plan.Size())
	}
}

func TestGreedyNoDoubleAssignment(t *testing.T) {
	// One task reachable by two workers: only one may get it.
	w1 := worker(1, 0, 0, 1, 0, 1e5)
	w2 := worker(2, 0.1, 0, 1, 0, 1e5)
	tasks := []*core.Task{task(1, 0.05, 0, 0, 1e5)}
	plan := (&Greedy{Opts: opts()}).Plan([]*core.Worker{w1, w2}, tasks, 0)
	planIsValid(t, plan, 0)
	if plan.Size() != 1 {
		t.Errorf("assigned %d, want 1", plan.Size())
	}
	// Deterministic: lower id wins.
	if plan[0].Worker.ID != 1 {
		t.Errorf("worker %d got the task, want worker 1", plan[0].Worker.ID)
	}
}

func TestGreedyEmptyInputs(t *testing.T) {
	g := &Greedy{Opts: opts()}
	if plan := g.Plan(nil, nil, 0); len(plan) != 0 {
		t.Error("empty inputs should give an empty plan")
	}
	if g.Name() != "Greedy" {
		t.Error("name")
	}
}

func TestExactSearchBeatsGreedyOnConflict(t *testing.T) {
	// Classic conflict: w1 can serve t1 or t2; w2 can only serve t1.
	// Greedy (by id) hands t1 (nearest) to w1, starving w2 → 1 task.
	// DFSearch assigns t2→w1, t1→w2 → 2 tasks.
	w1 := worker(1, 0, 0, 1, 0, 1e5)
	w2 := worker(2, 0.4, 0, 0.3, 0, 1e5)
	t1 := task(1, 0.2, 0, 0, 1e5) // near w1, the only task w2 reaches
	t2 := task(2, 0, 0.9, 0, 1e5) // only w1 reaches
	o := opts()
	o.WDS.MaxSeqLen = 1 // force the conflict (one task per worker)

	greedy := (&Greedy{Opts: o}).Plan([]*core.Worker{w1, w2}, []*core.Task{t1, t2}, 0)
	planIsValid(t, greedy, 0)
	exact := (&Search{Opts: o}).Plan([]*core.Worker{w1, w2}, []*core.Task{t1, t2}, 0)
	planIsValid(t, exact, 0)

	if greedy.Size() != 1 {
		t.Errorf("greedy assigned %d, expected the myopic 1", greedy.Size())
	}
	if exact.Size() != 2 {
		t.Errorf("DFSearch assigned %d, want the optimal 2", exact.Size())
	}
}

func TestExactSearchMatchesBruteForceSmall(t *testing.T) {
	// Cross-check the tree search against brute force on random small
	// instances with MaxSeqLen 1 (assignment-problem flavor).
	r := rand.New(rand.NewSource(33))
	o := opts()
	o.WDS.MaxSeqLen = 1
	for trial := 0; trial < 40; trial++ {
		var workers []*core.Worker
		for i := 0; i < 4; i++ {
			workers = append(workers, worker(i+1, r.Float64(), r.Float64(), 0.3+r.Float64()*0.4, 0, 1e5))
		}
		var tasks []*core.Task
		for i := 0; i < 5; i++ {
			tasks = append(tasks, task(i+1, r.Float64(), r.Float64(), 0, 1e5))
		}
		plan := (&Search{Opts: o}).Plan(workers, tasks, 0)
		planIsValid(t, plan, 0)
		want := bruteForceMax(workers, tasks, o)
		if plan.Size() != want {
			t.Fatalf("trial %d: DFSearch=%d brute=%d", trial, plan.Size(), want)
		}
	}
}

// bruteForceMax enumerates every worker→(≤1 task) matching.
func bruteForceMax(workers []*core.Worker, tasks []*core.Task, o Options) int {
	o = o.WithDefaults()
	best := 0
	var rec func(wi int, used map[int]bool, count int)
	rec = func(wi int, used map[int]bool, count int) {
		if count > best {
			best = count
		}
		if wi == len(workers) {
			return
		}
		rec(wi+1, used, count) // skip
		w := workers[wi]
		for _, s := range tasks {
			if used[s.ID] {
				continue
			}
			if core.ValidSequence(w, 0, core.Sequence{s}, o.WDS.Travel) &&
				o.WDS.Travel.Time(w.Loc, s.Loc) <= s.Exp &&
				geo.Dist(w.Loc, s.Loc) <= w.Reach {
				used[s.ID] = true
				rec(wi+1, used, count+1)
				used[s.ID] = false
			}
		}
	}
	rec(0, make(map[int]bool), 0)
	return best
}

func TestSearchVirtualWeightPrefersReal(t *testing.T) {
	// A worker able to serve either one real task or one virtual task
	// (not both) must pick the real one under VirtualWeight < 1.
	w := worker(1, 0, 0, 1, 0, 130)
	real := task(1, 0.5, 0, 0, 1e5)
	virt := vtask(-1, 0, 0.5, 0, 1e5)
	o := opts()
	o.WDS.MaxSeqLen = 1
	plan := (&Search{Opts: o}).Plan([]*core.Worker{w}, []*core.Task{real, virt}, 0)
	if plan.Size() != 1 || plan[0].Seq[0].ID != 1 {
		t.Fatalf("plan = %v, want the real task", plan)
	}
}

func TestSearchCollectsSamples(t *testing.T) {
	w1 := worker(1, 0, 0, 1, 0, 1e5)
	w2 := worker(2, 0.1, 0, 1, 0, 1e5)
	tasks := []*core.Task{task(1, 0.05, 0, 0, 1e5), task(2, 0.2, 0, 0, 1e5)}
	s := &Search{Opts: opts(), Collect: true}
	s.Plan([]*core.Worker{w1, w2}, tasks, 0)
	if len(s.Samples) == 0 {
		t.Fatal("exact search with Collect must emit samples")
	}
	for _, sm := range s.Samples {
		if sm.Opt < 0 {
			t.Errorf("opt target %v negative", sm.Opt)
		}
		if sm.Features[0] != 1 {
			t.Error("bias feature missing")
		}
	}
	// CollectSamples convenience wrapper agrees.
	if got := CollectSamples([]*core.Worker{w1, w2}, tasks, 0, opts()); len(got) != len(s.Samples) {
		t.Errorf("CollectSamples returned %d, want %d", len(got), len(s.Samples))
	}
}

func TestSearchTVFProducesValidPlans(t *testing.T) {
	r := rand.New(rand.NewSource(35))
	// Train a quick TVF on collected samples, then verify Algorithm 2
	// yields consistent valid plans.
	var samples []tvf.Sample
	var workers []*core.Worker
	var tasks []*core.Task
	for i := 0; i < 6; i++ {
		workers = append(workers, worker(i+1, r.Float64(), r.Float64(), 0.8, 0, 1e5))
	}
	for i := 0; i < 10; i++ {
		tasks = append(tasks, task(i+1, r.Float64(), r.Float64(), 0, 1e5))
	}
	samples = CollectSamples(workers, tasks, 0, opts())
	model := tvf.NewModel(16, 36)
	model.Train(samples, tvf.TrainConfig{Epochs: 15, Seed: 36})

	s := &Search{Opts: opts(), Model: model}
	if s.Name() != "DFSearch_TVF" {
		t.Errorf("name = %q", s.Name())
	}
	plan := s.Plan(workers, tasks, 0)
	planIsValid(t, plan, 0)
}

func TestSearchTVFNeverBacktracks(t *testing.T) {
	// Node count for TVF search is linear in tree size, far below the
	// exact search on the same instance.
	r := rand.New(rand.NewSource(37))
	var workers []*core.Worker
	var tasks []*core.Task
	for i := 0; i < 8; i++ {
		workers = append(workers, worker(i+1, r.Float64(), r.Float64(), 1.2, 0, 1e5))
	}
	for i := 0; i < 12; i++ {
		tasks = append(tasks, task(i+1, r.Float64(), r.Float64(), 0, 1e5))
	}
	exact := &Search{Opts: opts()}
	exact.Plan(workers, tasks, 0)
	model := tvf.NewModel(8, 38)
	fast := &Search{Opts: opts(), Model: model}
	fast.Plan(workers, tasks, 0)
	if fast.NodesLastPlan >= exact.NodesLastPlan {
		t.Errorf("TVF nodes %d should be below exact nodes %d", fast.NodesLastPlan, exact.NodesLastPlan)
	}
}

func TestSearchNodeBudgetFallback(t *testing.T) {
	// With a tiny node budget the search must still return a valid,
	// non-trivial plan via greedy completion.
	r := rand.New(rand.NewSource(39))
	var workers []*core.Worker
	var tasks []*core.Task
	for i := 0; i < 10; i++ {
		workers = append(workers, worker(i+1, r.Float64(), r.Float64(), 1.5, 0, 1e5))
	}
	for i := 0; i < 15; i++ {
		tasks = append(tasks, task(i+1, r.Float64(), r.Float64(), 0, 1e5))
	}
	o := opts()
	o.MaxNodes = 5
	plan := (&Search{Opts: o}).Plan(workers, tasks, 0)
	planIsValid(t, plan, 0)
	if plan.Size() == 0 {
		t.Error("budgeted search should still assign tasks")
	}
}

func TestSearchDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	var workers []*core.Worker
	var tasks []*core.Task
	for i := 0; i < 6; i++ {
		workers = append(workers, worker(i+1, r.Float64()*2, r.Float64()*2, 1, 0, 1e5))
	}
	for i := 0; i < 9; i++ {
		tasks = append(tasks, task(i+1, r.Float64()*2, r.Float64()*2, 0, 1e5))
	}
	a := (&Search{Opts: opts()}).Plan(workers, tasks, 0)
	b := (&Search{Opts: opts()}).Plan(workers, tasks, 0)
	if a.Size() != b.Size() || len(a) != len(b) {
		t.Fatal("nondeterministic plan")
	}
	for i := range a {
		if a[i].Worker.ID != b[i].Worker.ID || a[i].Seq.SetKey() != b[i].Seq.SetKey() {
			t.Fatal("nondeterministic plan contents")
		}
	}
}

func TestTaskSet(t *testing.T) {
	t1, t2 := task(1, 0, 0, 0, 1), task(2, 0, 0, 0, 1)
	ts := newTaskSet([]*core.Task{t1, t2, t1}) // duplicate ignored
	if !ts.has(1) || !ts.has(2) || len(ts.slice()) != 2 {
		t.Fatal("init wrong")
	}
	ts.removeSeq(core.Sequence{t1})
	if ts.has(1) || len(ts.slice()) != 1 {
		t.Fatal("remove wrong")
	}
	ts.restoreSeq(core.Sequence{t1})
	if !ts.has(1) || len(ts.slice()) != 2 {
		t.Fatal("restore wrong")
	}
	// Slice order is stable insertion order.
	s := ts.slice()
	if s[0].ID != 1 || s[1].ID != 2 {
		t.Fatalf("order = %d,%d", s[0].ID, s[1].ID)
	}
}

func TestSeqValue(t *testing.T) {
	q := core.Sequence{task(1, 0, 0, 0, 1), vtask(-1, 0, 0, 0, 1)}
	if got := seqValue(q, 0.5); got != 1.5 {
		t.Errorf("seqValue = %v", got)
	}
	if got := seqValue(nil, 0.5); got != 0 {
		t.Errorf("empty seqValue = %v", got)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.WithDefaults()
	if o.MaxNodes <= 0 || o.VirtualWeight <= 0 || o.MaxSamples <= 0 {
		t.Errorf("defaults missing: %+v", o)
	}
}

// randomScenario builds a reproducible scattered instance large enough to
// have several dependency components.
func randomScenario(seed int64, nWorkers, nTasks int, span float64) ([]*core.Worker, []*core.Task) {
	r := rand.New(rand.NewSource(seed))
	var ws []*core.Worker
	for i := 0; i < nWorkers; i++ {
		ws = append(ws, worker(i+1, r.Float64()*span, r.Float64()*span,
			0.3+r.Float64()*0.5, 0, 1e5))
	}
	var ts []*core.Task
	for i := 0; i < nTasks; i++ {
		ts = append(ts, task(i+1, r.Float64()*span, r.Float64()*span, 0, 1e5))
	}
	return ws, ts
}

func samePlans(t *testing.T, a, b core.Plan) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("plan lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Worker.ID != b[i].Worker.ID {
			t.Fatalf("assignment %d: worker %d vs %d", i, a[i].Worker.ID, b[i].Worker.ID)
		}
		ia, ib := a[i].Seq.IDs(), b[i].Seq.IDs()
		if len(ia) != len(ib) {
			t.Fatalf("assignment %d: sequence lengths differ", i)
		}
		for j := range ia {
			if ia[j] != ib[j] {
				t.Fatalf("assignment %d task %d: %d vs %d", i, j, ia[j], ib[j])
			}
		}
	}
}

// TestParallelPlanMatchesSerial is the determinism contract of the
// concurrent planner: on fixed-seed scenarios the parallel search returns
// the byte-identical plan, node count, and RL sample stream of the serial
// path, at every parallelism level and under every planner mode.
func TestParallelPlanMatchesSerial(t *testing.T) {
	for _, seed := range []int64{5, 23, 87} {
		ws, ts := randomScenario(seed, 40, 120, 8)

		serialOpts := opts()
		serialOpts.Parallelism = 1
		serial := &Search{Opts: serialOpts, Collect: true}
		want := serial.Plan(ws, ts, 0)
		planIsValid(t, want, 0)

		for _, p := range []int{2, 4, 8, 0} {
			o := opts()
			o.Parallelism = p
			s := &Search{Opts: o, Collect: true}
			got := s.Plan(ws, ts, 0)
			planIsValid(t, got, 0)
			samePlans(t, want, got)
			if s.NodesLastPlan != serial.NodesLastPlan {
				t.Fatalf("seed %d parallelism %d: nodes %d vs serial %d",
					seed, p, s.NodesLastPlan, serial.NodesLastPlan)
			}
			if len(s.Samples) != len(serial.Samples) {
				t.Fatalf("seed %d parallelism %d: %d samples vs serial %d",
					seed, p, len(s.Samples), len(serial.Samples))
			}
			for i := range s.Samples {
				if s.Samples[i] != serial.Samples[i] {
					t.Fatalf("seed %d parallelism %d: sample %d differs", seed, p, i)
				}
			}
		}
	}
}

func TestParallelPlanMatchesSerialTVF(t *testing.T) {
	ws, ts := randomScenario(29, 30, 90, 7)
	samples := CollectSamples(ws, ts, 0, opts())
	model := tvf.NewModel(16, 44)
	model.Train(samples, tvf.TrainConfig{Epochs: 10, Seed: 44})

	serialOpts := opts()
	serialOpts.Parallelism = 1
	want := (&Search{Opts: serialOpts, Model: model}).Plan(ws, ts, 0)
	for _, p := range []int{4, 0} {
		o := opts()
		o.Parallelism = p
		got := (&Search{Opts: o, Model: model}).Plan(ws, ts, 0)
		samePlans(t, want, got)
	}
}

func TestParallelPlanMatchesSerialUnderBudget(t *testing.T) {
	// The node budget is per tree, so greedy completion kicks in at the
	// same search positions regardless of scheduling.
	ws, ts := randomScenario(61, 50, 150, 6)
	serialOpts := opts()
	serialOpts.Parallelism = 1
	serialOpts.MaxNodes = 40
	want := (&Search{Opts: serialOpts}).Plan(ws, ts, 0)
	planIsValid(t, want, 0)
	o := opts()
	o.Parallelism = 4
	o.MaxNodes = 40
	got := (&Search{Opts: o}).Plan(ws, ts, 0)
	samePlans(t, want, got)
}

// TestParallelPlanRace exercises the concurrent planner with maximum
// fan-out so `go test -race` patrols the tree isolation invariant.
func TestParallelPlanRace(t *testing.T) {
	ws, ts := randomScenario(97, 60, 200, 10)
	o := opts()
	o.Parallelism = 8
	s := &Search{Opts: o, Collect: true}
	for call := 0; call < 3; call++ {
		plan := s.Plan(ws, ts, float64(call))
		planIsValid(t, plan, float64(call))
	}
}
