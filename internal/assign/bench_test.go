package assign

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/tvf"
	"repro/internal/wds"
)

func benchInstance(nWorkers, nTasks int) ([]*core.Worker, []*core.Task) {
	r := rand.New(rand.NewSource(13))
	var ws []*core.Worker
	for i := 0; i < nWorkers; i++ {
		ws = append(ws, &core.Worker{
			ID: i + 1, Loc: geo.Point{X: r.Float64() * 3, Y: r.Float64() * 3},
			Reach: 1, On: 0, Off: 1e5,
		})
	}
	var ts []*core.Task
	for i := 0; i < nTasks; i++ {
		ts = append(ts, &core.Task{
			ID: i + 1, Loc: geo.Point{X: r.Float64() * 3, Y: r.Float64() * 3},
			Pub: 0, Exp: 600, Cell: -1,
		})
	}
	return ws, ts
}

func benchOpts() Options {
	return Options{WDS: wds.Options{Travel: geo.NewTravelModel(0.005)}, MaxNodes: 5000}
}

// BenchmarkGreedyPlan measures the baseline planner at planning-instant size.
func BenchmarkGreedyPlan(b *testing.B) {
	ws, ts := benchInstance(30, 60)
	g := &Greedy{Opts: benchOpts()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Plan(ws, ts, 0)
	}
}

// BenchmarkExactSearchPlan measures one TPA call with the exact DFSearch.
func BenchmarkExactSearchPlan(b *testing.B) {
	ws, ts := benchInstance(30, 60)
	s := &Search{Opts: benchOpts()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Plan(ws, ts, 0)
	}
}

// BenchmarkTVFSearchPlan measures one TPA call with DFSearch_TVF, the
// efficiency claim of Section IV-B.
func BenchmarkTVFSearchPlan(b *testing.B) {
	ws, ts := benchInstance(30, 60)
	model := tvf.NewModel(16, 17)
	s := &Search{Opts: benchOpts(), Model: model}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Plan(ws, ts, 0)
	}
}

// scaledInstance builds a scattered population at constant spatial density
// so the RTC forest holds many independent trees — the unit of parallelism.
func scaledInstance(nWorkers, nTasks int) ([]*core.Worker, []*core.Task) {
	r := rand.New(rand.NewSource(21))
	span := math.Sqrt(float64(nTasks) / 13.0)
	var ws []*core.Worker
	for i := 0; i < nWorkers; i++ {
		ws = append(ws, &core.Worker{
			ID: i + 1, Loc: geo.Point{X: r.Float64() * span, Y: r.Float64() * span},
			Reach: 0.3, On: 0, Off: 1e5,
		})
	}
	var ts []*core.Task
	for i := 0; i < nTasks; i++ {
		ts = append(ts, &core.Task{
			ID: i + 1, Loc: geo.Point{X: r.Float64() * span, Y: r.Float64() * span},
			Pub: 0, Exp: 1e5, Cell: -1,
		})
	}
	return ws, ts
}

// BenchmarkPlanScale compares the serial planner against the concurrent one
// across planning-instant sizes (total entities = workers + tasks at a 1:4
// ratio). Plans are byte-identical at every parallelism level; the speedup
// of parallel4 over serial on a multi-core host is the win being measured
// (on a single-core host the two are expected to tie, minus pool overhead).
func BenchmarkPlanScale(b *testing.B) {
	scales := []struct {
		name             string
		nWorkers, nTasks int
	}{
		{"1k", 200, 800},
		{"5k", 1000, 4000},
		{"20k", 4000, 16000},
	}
	for _, sc := range scales {
		ws, ts := scaledInstance(sc.nWorkers, sc.nTasks)
		for _, mode := range []struct {
			name        string
			parallelism int
		}{
			{"serial", 1},
			{"parallel4", 4},
		} {
			b.Run(sc.name+"/"+mode.name, func(b *testing.B) {
				o := benchOpts()
				// Bounded per-tree effort keeps one plan call in benchmark
				// range while leaving each tree enough search to parallelize.
				o.MaxNodes = 400
				o.WDS.MaxSeqLen = 2
				o.WDS.MaxSequences = 16
				o.Parallelism = mode.parallelism
				s := &Search{Opts: o}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.Plan(ws, ts, 0)
				}
			})
		}
	}
}
