package assign

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/tvf"
	"repro/internal/wds"
)

func benchInstance(nWorkers, nTasks int) ([]*core.Worker, []*core.Task) {
	r := rand.New(rand.NewSource(13))
	var ws []*core.Worker
	for i := 0; i < nWorkers; i++ {
		ws = append(ws, &core.Worker{
			ID: i + 1, Loc: geo.Point{X: r.Float64() * 3, Y: r.Float64() * 3},
			Reach: 1, On: 0, Off: 1e5,
		})
	}
	var ts []*core.Task
	for i := 0; i < nTasks; i++ {
		ts = append(ts, &core.Task{
			ID: i + 1, Loc: geo.Point{X: r.Float64() * 3, Y: r.Float64() * 3},
			Pub: 0, Exp: 600, Cell: -1,
		})
	}
	return ws, ts
}

func benchOpts() Options {
	return Options{WDS: wds.Options{Travel: geo.NewTravelModel(0.005)}, MaxNodes: 5000}
}

// BenchmarkGreedyPlan measures the baseline planner at planning-instant size.
func BenchmarkGreedyPlan(b *testing.B) {
	ws, ts := benchInstance(30, 60)
	g := &Greedy{Opts: benchOpts()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Plan(ws, ts, 0)
	}
}

// BenchmarkExactSearchPlan measures one TPA call with the exact DFSearch.
func BenchmarkExactSearchPlan(b *testing.B) {
	ws, ts := benchInstance(30, 60)
	s := &Search{Opts: benchOpts()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Plan(ws, ts, 0)
	}
}

// BenchmarkTVFSearchPlan measures one TPA call with DFSearch_TVF, the
// efficiency claim of Section IV-B.
func BenchmarkTVFSearchPlan(b *testing.B) {
	ws, ts := benchInstance(30, 60)
	model := tvf.NewModel(16, 17)
	s := &Search{Opts: benchOpts(), Model: model}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Plan(ws, ts, 0)
	}
}
