package assign

import (
	"slices"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/spatial"
)

// DirtyPlanner is the incremental-replanning contract between a driver that
// tracks pool changes (stream.Machine with MachineConfig.DirtyGrid) and a
// planner that can reuse work across planning instants (Incremental).
// PlanDirty receives the set of grid cells touched since the previous
// invocation and must return exactly the plan a from-scratch Plan call would
// — incrementality changes the cost of the call, never its answer.
type DirtyPlanner interface {
	Planner
	PlanDirty(workers []*core.Worker, tasks []*core.Task, now float64, dirty map[int]struct{}) core.Plan
}

// WorkerCells returns the grid cells a worker positioned at p with the given
// reach radius can influence: every cell overlapped by the reachability disk
// around p clamped to the grid's region. Clamping mirrors task-cell routing
// (Grid.CellOf snaps off-map points to boundary cells) and is sound because
// coordinate clamping is a contraction — any task within reach of p has its
// clamped cell inside the clamped disk. The dirty-marking side
// (stream.Machine) and the partition side (Incremental) both use this
// function, so an invalidation always covers the membership it must refresh.
func WorkerCells(g geo.Grid, p geo.Point, reach float64) []int {
	return AppendWorkerCells(nil, g, p, reach)
}

// AppendWorkerCells is WorkerCells appending into dst, so the per-worker
// loops that run every planning instant (partition below, dirty-disk marking
// in stream.Machine) can reuse one buffer instead of allocating a slice per
// worker per instant.
func AppendWorkerCells(dst []int, g geo.Grid, p geo.Point, reach float64) []int {
	n := len(dst)
	dst = spatial.AppendCellsInDisk(dst, g, g.Region.Clamp(p), reach)
	if len(dst) == n {
		// Negative or NaN reach: fall back to the worker's own cell.
		dst = append(dst, g.CellOf(p))
	}
	return dst
}

// IncrementalStats counts an Incremental planner's reuse behavior. Counters
// are cumulative over the planner's lifetime.
type IncrementalStats struct {
	// Plans is the number of planning instants served; FullPlans the subset
	// planned from scratch (cold cache, no reusable component, or dirty
	// fraction past the threshold).
	Plans     int64
	FullPlans int64
	// ComponentsReplanned counts components handed to the wrapped planner;
	// ComponentsReused counts cached quiet components spliced instead of
	// replanned — the "incremental hits" of the dispatch metrics.
	ComponentsReplanned int64
	ComponentsReused    int64
	// WorkersSkipped and TasksSkipped count pool entries the wrapped planner
	// never saw thanks to reuse.
	WorkersSkipped int64
	TasksSkipped   int64
}

// Incremental wraps a Planner with dirty-region replanning. It partitions
// each planning instant's pool into connected components over the
// cell-granular reachability graph — workers own the cells of their reach
// disk (WorkerCells), tasks their own cell, and overlapping cell sets merge
// — re-plans only the components invalidated since the previous instant, and
// splices the cached outcome of the rest.
//
// Why this is byte-identical to full replanning, not an approximation: under
// adaptive (non-FTA) semantics a component whose plan assigns anything
// mutates machine state immediately — commits remove tasks and set workers
// in motion — so its cells are dirtied and it is replanned anyway. The only
// cacheable outcome is the empty plan, and an empty component plan proves no
// member worker had any valid candidate sequence (any usable sequence has
// positive objective value, so both the exact search and the greedy paths
// would have taken one). Validity of a sequence over a fixed pool only
// shrinks as the clock advances, and cell-disjoint components cannot
// exchange tasks, so a quiet empty component stays empty until an
// invalidation touches its cells — and removing whole components from the
// wrapped planner's input removes whole RTC trees without perturbing the
// per-tree search budgets of the rest. The scenario-atlas equivalence tests
// (internal/dispatch) pin the identity across archetypes, methods, and shard
// counts.
//
// An Incremental is single-goroutine, like the Machine that drives it.
type Incremental struct {
	full Planner
	grid geo.Grid

	// MaxDirtyFraction is the fraction of the worker pool above which an
	// instant is replanned from scratch instead of incrementally (cache
	// bookkeeping is pure overhead when almost everything is dirty).
	// Non-positive selects the default 0.9.
	MaxDirtyFraction float64

	comps []*planComponent // cached partition; nil = cold
	stats IncrementalStats

	// Union-find scratch over grid cells, reused across instants.
	parent []int32
	gen    []int32
	curGen int32

	// Per-instant scratch, reused so a steady-state PlanDirty allocates only
	// the component list it caches. free recycles planComponents dropped from
	// the previous cache (their member/cell slices keep their capacity).
	free     []*planComponent
	wflat    []int   // worker reach cells, all workers back to back
	woff     []int32 // wflat offsets; worker i owns wflat[woff[i]:woff[i+1]]
	tcells   []int32
	assigned map[int]bool
	byRoot   map[int32]int32
	retained []*planComponent
	skipW    map[int]bool
	skipT    map[int]bool
	rw       []*core.Worker
	rt       []*core.Task
}

// NewIncremental wraps full with dirty-region replanning over the given
// grid. A degenerate grid (zero cells) yields a wrapper that plans from
// scratch on every instant — callers need not special-case it.
func NewIncremental(full Planner, grid geo.Grid) *Incremental {
	return &Incremental{full: full, grid: grid}
}

// Name implements Planner.
func (inc *Incremental) Name() string { return "Incremental(" + inc.full.Name() + ")" }

// SetParallelism forwards the planner fan-out knob to the wrapped planner
// when it supports one (assign.Search).
func (inc *Incremental) SetParallelism(p int) {
	if sp, ok := inc.full.(interface{ SetParallelism(int) }); ok {
		sp.SetParallelism(p)
	}
}

// Stats returns the cumulative reuse counters.
func (inc *Incremental) Stats() IncrementalStats { return inc.stats }

// Plan implements Planner: a from-scratch plan that also rebuilds the
// component cache, used when the driver has no dirty information.
func (inc *Incremental) Plan(workers []*core.Worker, tasks []*core.Task, now float64) core.Plan {
	inc.stats.Plans++
	return inc.fullPlan(workers, tasks, now)
}

// PlanDirty implements DirtyPlanner. dirty is the set of grid cells touched
// since the previous invocation; the caller retains ownership and may clear
// it after the call.
func (inc *Incremental) PlanDirty(workers []*core.Worker, tasks []*core.Task, now float64, dirty map[int]struct{}) core.Plan {
	inc.stats.Plans++
	if inc.comps == nil || inc.grid.Cells() <= 0 || len(workers) == 0 {
		return inc.fullPlan(workers, tasks, now)
	}

	// A cached component is reusable when it assigned nothing last instant
	// and no invalidation touched its cells since.
	retained := inc.retained[:0]
	if inc.skipW == nil {
		inc.skipW = make(map[int]bool)
		inc.skipT = make(map[int]bool)
	} else {
		clear(inc.skipW)
		clear(inc.skipT)
	}
	for _, c := range inc.comps {
		if c.empty && !c.touched(dirty) {
			retained = append(retained, c)
			for _, id := range c.workers {
				inc.skipW[id] = true
			}
			for _, id := range c.tasks {
				inc.skipT[id] = true
			}
		}
	}
	inc.retained = retained
	if len(retained) == 0 {
		return inc.fullPlan(workers, tasks, now)
	}

	// rw/rt are scratch: every planner consumes its worker and task slices
	// within the Plan call (copying what it keeps), so reusing the backing
	// arrays across instants is safe.
	rw := inc.rw[:0]
	for _, w := range workers {
		if !inc.skipW[w.ID] {
			rw = append(rw, w)
		}
	}
	inc.rw = rw
	frac := inc.MaxDirtyFraction
	if frac <= 0 {
		frac = 0.9
	}
	// Past the threshold everything is replanned from scratch — the
	// retained components are NOT spliced, so they don't count as hits.
	if float64(len(rw)) > frac*float64(len(workers)) {
		return inc.fullPlan(workers, tasks, now)
	}
	rt := inc.rt[:0]
	for _, s := range tasks {
		if !inc.skipT[s.ID] {
			rt = append(rt, s)
		}
	}
	inc.rt = rt

	// Only now are the retained components marked: every fallback above goes
	// through fullPlan, whose partition recycles the whole previous cache.
	for _, c := range retained {
		c.keep = true
	}
	plan := inc.full.Plan(rw, rt, now)
	fresh := inc.partition(rw, rt, plan)
	inc.stats.ComponentsReplanned += int64(len(fresh))
	inc.stats.ComponentsReused += int64(len(retained))
	inc.stats.WorkersSkipped += int64(len(workers) - len(rw))
	inc.stats.TasksSkipped += int64(len(tasks) - len(rt))
	inc.comps = append(fresh, retained...)
	return plan
}

// fullPlan plans the whole pool from scratch and rebuilds the cache.
func (inc *Incremental) fullPlan(workers []*core.Worker, tasks []*core.Task, now float64) core.Plan {
	inc.stats.FullPlans++
	plan := inc.full.Plan(workers, tasks, now)
	if inc.grid.Cells() > 0 {
		inc.comps = inc.partition(workers, tasks, plan)
		inc.stats.ComponentsReplanned += int64(len(inc.comps))
	}
	return plan
}

// planComponent is one cached connected component of the cell-granular
// reachability graph: its covered cells, its member ids, and whether its
// last plan assigned anything.
type planComponent struct {
	cells   []int // sorted, deduped
	workers []int // member worker ids
	tasks   []int // member task ids (virtuals carry their negative ids)
	empty   bool  // last plan assigned nothing to these workers
	keep    bool  // spliced into the next cache; not for the freelist
}

// touched reports whether any of the component's cells is in the dirty set.
func (c *planComponent) touched(dirty map[int]struct{}) bool {
	for _, cell := range c.cells {
		if _, ok := dirty[cell]; ok {
			return true
		}
	}
	return false
}

// partition groups the pool into connected components: each worker's reach
// disk claims its cells, each task its own cell, and cell overlap merges.
// The component list is ordered by first appearance in the (deterministic)
// pool order.
func (inc *Incremental) partition(workers []*core.Worker, tasks []*core.Task, plan core.Plan) []*planComponent {
	cells := inc.grid.Cells()
	if cap(inc.parent) < cells {
		inc.parent = make([]int32, cells)
		inc.gen = make([]int32, cells)
		inc.curGen = 0
	}
	inc.curGen++
	inc.recycle()

	wflat := inc.wflat[:0]
	woff := append(inc.woff[:0], 0)
	for _, w := range workers {
		wflat = AppendWorkerCells(wflat, inc.grid, w.Loc, w.Reach)
		woff = append(woff, int32(len(wflat)))
		cs := wflat[woff[len(woff)-2]:]
		for _, c := range cs[1:] {
			inc.union(int32(cs[0]), int32(c))
		}
	}
	inc.wflat, inc.woff = wflat, woff
	tcells := inc.tcells[:0]
	for _, s := range tasks {
		c := int32(inc.grid.CellOf(s.Loc))
		tcells = append(tcells, c)
		inc.find(c) // touch, so lone task cells root themselves
	}
	inc.tcells = tcells

	if inc.assigned == nil {
		inc.assigned = make(map[int]bool, len(plan))
	} else {
		clear(inc.assigned)
	}
	for _, a := range plan {
		inc.assigned[a.Worker.ID] = true
	}

	if inc.byRoot == nil {
		inc.byRoot = make(map[int32]int32)
	} else {
		clear(inc.byRoot)
	}
	var comps []*planComponent
	for i, w := range workers {
		cs := wflat[woff[i]:woff[i+1]]
		var c *planComponent
		comps, c = inc.compOf(comps, inc.find(int32(cs[0])))
		c.workers = append(c.workers, w.ID)
		c.cells = append(c.cells, cs...)
		if inc.assigned[w.ID] {
			c.empty = false
		}
	}
	for j, s := range tasks {
		var c *planComponent
		comps, c = inc.compOf(comps, inc.find(tcells[j]))
		c.tasks = append(c.tasks, s.ID)
		c.cells = append(c.cells, int(tcells[j]))
	}
	for _, c := range comps {
		slices.Sort(c.cells)
		dedup := c.cells[:0]
		for i, cell := range c.cells {
			if i == 0 || cell != dedup[len(dedup)-1] {
				dedup = append(dedup, cell)
			}
		}
		c.cells = dedup
	}
	return comps
}

// find locates the union-find root of cell c, lazily (re)initializing cells
// on first touch in the current generation.
func (inc *Incremental) find(c int32) int32 {
	if inc.gen[c] != inc.curGen {
		inc.gen[c] = inc.curGen
		inc.parent[c] = c
		return c
	}
	for inc.parent[c] != c {
		inc.parent[c] = inc.parent[inc.parent[c]] // path halving
		c = inc.parent[c]
	}
	return c
}

func (inc *Incremental) union(a, b int32) {
	ra, rb := inc.find(a), inc.find(b)
	if ra != rb {
		inc.parent[rb] = ra
	}
}

// compOf returns comps extended (if needed) with the component for root,
// plus that component. New components come from the freelist when possible.
func (inc *Incremental) compOf(comps []*planComponent, root int32) ([]*planComponent, *planComponent) {
	if i, ok := inc.byRoot[root]; ok {
		return comps, comps[i]
	}
	var c *planComponent
	if n := len(inc.free); n > 0 {
		c = inc.free[n-1]
		inc.free[n-1] = nil
		inc.free = inc.free[:n-1]
		c.empty = true
	} else {
		c = &planComponent{empty: true}
	}
	inc.byRoot[root] = int32(len(comps))
	return append(comps, c), c
}

// recycle moves the previous cache's dropped components to the freelist,
// keeping their member/cell capacity; components marked keep are spliced
// into the next cache by the caller and only have their mark cleared.
func (inc *Incremental) recycle() {
	for i, c := range inc.comps {
		inc.comps[i] = nil
		if c.keep {
			c.keep = false
			continue
		}
		c.cells = c.cells[:0]
		c.workers = c.workers[:0]
		c.tasks = c.tasks[:0]
		inc.free = append(inc.free, c)
	}
	inc.comps = inc.comps[:0]
}
