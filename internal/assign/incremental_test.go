package assign

import (
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
)

// poolRecorder scripts plans by worker id and records the pool of every
// invocation, so tests can see exactly what the wrapper replans.
type poolRecorder struct {
	assign map[int]int // worker id → task id to assign (one-task sequences)
	pools  [][2][]int  // per call: sorted worker ids, sorted task ids
	byID   map[int]*core.Task
}

func (p *poolRecorder) Name() string { return "poolRecorder" }

func (p *poolRecorder) Plan(workers []*core.Worker, tasks []*core.Task, _ float64) core.Plan {
	var ws, ts []int
	p.byID = make(map[int]*core.Task)
	for _, w := range workers {
		ws = append(ws, w.ID)
	}
	for _, s := range tasks {
		ts = append(ts, s.ID)
		p.byID[s.ID] = s
	}
	sort.Ints(ws)
	sort.Ints(ts)
	p.pools = append(p.pools, [2][]int{ws, ts})
	var plan core.Plan
	for _, w := range workers {
		if tid, ok := p.assign[w.ID]; ok {
			if s, open := p.byID[tid]; open {
				plan = append(plan, core.Assignment{Worker: w, Seq: core.Sequence{s}})
			}
		}
	}
	return plan
}

var incGrid = geo.NewGrid(geo.Rect{MinX: 0, MinY: 0, MaxX: 4, MaxY: 4}, 4, 4)

func incWorker(id int, x, y, reach float64) *core.Worker {
	return &core.Worker{ID: id, Loc: geo.Point{X: x, Y: y}, Reach: reach, On: 0, Off: 1000}
}

func incTask(id int, x, y float64) *core.Task {
	return &core.Task{ID: id, Loc: geo.Point{X: x, Y: y}, Pub: 0, Exp: 1000, Cell: -1}
}

func dirtySet(cells ...int) map[int]struct{} {
	d := make(map[int]struct{}, len(cells))
	for _, c := range cells {
		d[c] = struct{}{}
	}
	return d
}

// TestIncrementalSkipsQuietComponents drives the wrapper through a cold
// plan, a quiet instant, and an invalidation, checking the wrapped planner's
// pools: the quiet empty component (a far worker and an unreachable task)
// is withheld until a dirty cell touches it.
func TestIncrementalSkipsQuietComponents(t *testing.T) {
	// Worker 1 (cell 0) serves task 10; worker 2 and task 20 idle in cell 15.
	rec := &poolRecorder{assign: map[int]int{1: 10}}
	inc := NewIncremental(rec, incGrid)
	workers := []*core.Worker{incWorker(1, 0.5, 0.5, 0.4), incWorker(2, 3.5, 3.5, 0.4)}
	tasks := []*core.Task{incTask(10, 0.6, 0.5), incTask(20, 3.2, 3.5)}

	// Cold: everything planned.
	inc.PlanDirty(workers, tasks, 0, dirtySet())
	if got := rec.pools[0]; len(got[0]) != 2 || len(got[1]) != 2 {
		t.Fatalf("cold pool = %v, want full pool", got)
	}

	// Worker 1's region dirty (its commit), cell 15 quiet: only the active
	// component replans. Worker 2's empty component is spliced.
	inc.PlanDirty(workers, tasks, 1, dirtySet(0))
	if got := rec.pools[1]; len(got[0]) != 1 || got[0][0] != 1 || len(got[1]) != 1 || got[1][0] != 10 {
		t.Fatalf("quiet pool = %v, want worker 1 / task 10 only", got)
	}
	st := inc.Stats()
	if st.ComponentsReused == 0 || st.WorkersSkipped != 1 || st.TasksSkipped != 1 {
		t.Fatalf("stats = %+v, want one reused component with one worker and task skipped", st)
	}

	// Touch cell 15: the cached component is invalid, everything replans.
	inc.PlanDirty(workers, tasks, 2, dirtySet(15))
	if got := rec.pools[2]; len(got[0]) != 2 || len(got[1]) != 2 {
		t.Fatalf("invalidated pool = %v, want full pool", got)
	}
}

// TestIncrementalNonEmptyComponentsReplan pins the core safety rule: a
// component that assigned anything is never reused, even with no dirty cell
// — its plan mutated machine state and must be recomputed.
func TestIncrementalNonEmptyComponentsReplan(t *testing.T) {
	rec := &poolRecorder{assign: map[int]int{1: 10}}
	inc := NewIncremental(rec, incGrid)
	workers := []*core.Worker{incWorker(1, 0.5, 0.5, 0.4)}
	tasks := []*core.Task{incTask(10, 0.6, 0.5), incTask(11, 0.7, 0.5)}
	inc.PlanDirty(workers, tasks, 0, dirtySet())
	// No dirty cells at all — yet the assigned component must replan.
	inc.PlanDirty(workers, tasks, 1, dirtySet())
	if len(rec.pools) != 2 || len(rec.pools[1][0]) != 1 {
		t.Fatalf("pools = %v, want the nonempty component replanned both times", rec.pools)
	}
	if st := inc.Stats(); st.ComponentsReused != 0 {
		t.Fatalf("stats = %+v, want zero reuse of a nonempty component", st)
	}
}

// TestIncrementalDirtyFractionFallback: when reuse would spare too little,
// the wrapper plans from scratch (one planner call with the full pool).
func TestIncrementalDirtyFractionFallback(t *testing.T) {
	rec := &poolRecorder{assign: map[int]int{}}
	inc := NewIncremental(rec, incGrid)
	inc.MaxDirtyFraction = 0.10 // replan >10% of workers → full
	// Ten active workers around cell 0, one quiet worker in cell 15.
	var workers []*core.Worker
	for i := 1; i <= 10; i++ {
		workers = append(workers, incWorker(i, 0.5, 0.5, 0.4))
	}
	workers = append(workers, incWorker(99, 3.5, 3.5, 0.4))
	inc.PlanDirty(workers, nil, 0, dirtySet())
	inc.PlanDirty(workers, nil, 1, dirtySet(0))
	if st := inc.Stats(); st.FullPlans != 2 {
		t.Fatalf("stats = %+v, want both instants planned fully (dirty fraction 10/11 > 0.10)", st)
	}
	if got := rec.pools[1]; len(got[0]) != 11 {
		t.Fatalf("fallback pool = %v, want all 11 workers", got)
	}
}

// TestWorkerCellsClampsOffRegion: the disk is taken around the clamped
// position, so off-map workers influence the boundary cells their clamped
// reachability can cover — matching task-cell routing, which clamps too.
func TestWorkerCellsClampsOffRegion(t *testing.T) {
	cells := WorkerCells(incGrid, geo.Point{X: 10, Y: 10}, 0.5)
	if len(cells) == 0 {
		t.Fatal("off-region worker has no cells")
	}
	if !contains(cells, 15) {
		t.Fatalf("cells = %v, want the clamped corner cell 15", cells)
	}
	// Degenerate reach still yields the worker's own cell.
	if got := WorkerCells(incGrid, geo.Point{X: 0.5, Y: 0.5}, -1); len(got) != 1 || got[0] != 0 {
		t.Fatalf("negative reach cells = %v, want [0]", got)
	}
}

func contains(cells []int, c int) bool {
	for _, x := range cells {
		if x == c {
			return true
		}
	}
	return false
}
