package assign

import (
	"sort"

	"repro/internal/core"
	"repro/internal/wds"
)

// Match is the reachability-only matcher: the cheapest planner on the
// overload degradation ladder (dispatch.Governor). It scans workers in id
// order and hands each worker a singleton sequence — the nearest still
// unassigned real task satisfying the reachability conditions of Section
// IV-A.1 — with no sequence generation, no dependency graph, and no search.
// Virtual (predicted) tasks are ignored: under overload the planner's only
// job is real-task throughput, not positioning for forecast demand.
//
// Like every planner, Match is deterministic: worker order is id order, the
// per-worker choice is nearest-first with id tiebreak (inherited from
// wds.ReachableTasks), so the same pool always produces the same plan.
type Match struct {
	Opts Options
}

// Name implements Planner.
func (m *Match) Name() string { return "Match" }

// Plan implements Planner.
func (m *Match) Plan(workers []*core.Worker, tasks []*core.Task, now float64) core.Plan {
	o := m.Opts.WithDefaults()
	// Nearest-one query: the distance-sorted reachable set capped at 1 is
	// exactly the closest valid task.
	o.WDS.MaxReachable = 1
	ws := append([]*core.Worker(nil), workers...)
	sort.Slice(ws, func(i, j int) bool { return ws[i].ID < ws[j].ID })
	avail := newTaskSet(realTasks(tasks))
	var plan core.Plan
	for _, w := range ws {
		rs := wds.ReachableTasks(w, avail.slice(), now, o.WDS)
		if len(rs) == 0 {
			continue
		}
		q := core.Sequence{rs[0]}
		avail.removeSeq(q)
		plan = append(plan, core.Assignment{Worker: w, Seq: q})
	}
	return plan
}

// realTasks filters out virtual (predicted) tasks, preserving order.
func realTasks(tasks []*core.Task) []*core.Task {
	out := make([]*core.Task, 0, len(tasks))
	for _, s := range tasks {
		if !s.Virtual {
			out = append(out, s)
		}
	}
	return out
}
