package assign

import (
	"math"
	"math/bits"
	"runtime"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/tvf"
)

// SSP is the scenario-sampling robust planner: instead of planning against
// one point forecast, it plans one candidate assignment per sampled demand
// future (the scenario-tagged virtual pool produced by
// predict.ScenarioSampler) and commits the candidate whose realized value is
// best across the whole sample set.
//
// Scenario k's planning pool is the real tasks plus the virtual tasks whose
// SampleBits contain bit k (bits == 0 means every scenario). Each pool is
// planned with the same dense-array search core DTA uses, fanned out over
// internal/par within the planner's parallelism budget; candidate j is then
// scored under every scenario k — real tasks at full value, virtual tasks at
// VirtualWeight when scenario k contains them and zero otherwise — and the
// per-scenario values are folded through CVaR_α. α = 1 averages all
// scenarios (maximize expected value); smaller α averages only the worst
// ⌈α·K⌉ scenarios, buying robustness against the futures where the forecast
// misleads. Ties commit the lowest-indexed candidate.
//
// When the pool carries no scenario-tagged virtuals (K = 1, or a sampler-free
// forecast) every scenario is identical, so SSP runs exactly one inner search
// and is byte-identical to point-forecast planning.
//
// An SSP must not be wrapped by Incremental: the empty-component cache
// assumes a component's plan emptiness is planner-state-independent, but an
// SSP plan for a component can flip between empty and non-empty as the
// CVaR fold breaks ties differently across instants. The datawa façade
// forces full replanning for the SSP method.
type SSP struct {
	Opts Options
	// Samples is the scenario count K the sampler was configured with
	// (bounds the per-task bitmasks; default 1+the highest bit seen).
	Samples int
	// CVaRAlpha is the risk knob α in (0, 1]: the fraction of worst-case
	// scenarios the committed value is averaged over. 0 or unset means 1
	// (plain expected value).
	CVaRAlpha float64
	// Model, when trained, guides the inner searches (DFSearch_TVF).
	Model *tvf.Model
	// NodesLastPlan reports the exact-search nodes expended by the most
	// recent Plan call, summed across scenarios.
	NodesLastPlan int

	// Per-instant scratch: one inner Search per fan-out goroutine, the
	// per-scenario pools, and per-candidate value matrices.
	inner []*Search
	pools [][]*core.Task
	vals  []float64
}

// Name implements Planner.
func (p *SSP) Name() string { return "SSP" }

// SetParallelism overrides Opts.Parallelism; see Options.Parallelism.
func (p *SSP) SetParallelism(n int) { p.Opts.Parallelism = n }

// Plan implements Planner.
func (p *SSP) Plan(workers []*core.Worker, tasks []*core.Task, now float64) core.Plan {
	o := p.Opts.WithDefaults()
	k := p.scenarios(tasks)
	if k <= 1 {
		// Point-forecast fast path: one scenario, one search, byte-identical
		// to the DTA/DTA+TP planner on the same pool.
		s := p.innerAt(0, o, o.Parallelism)
		plan := s.Plan(workers, tasks, now)
		p.NodesLastPlan = s.NodesLastPlan
		return plan
	}

	// Per-scenario pools, in pool order. Real tasks and all-scenario
	// virtuals (bits == 0) appear in every pool.
	pools := p.pools
	if cap(pools) < k {
		pools = make([][]*core.Task, k)
	}
	pools = pools[:k]
	for s := 0; s < k; s++ {
		pool := pools[s][:0]
		for _, t := range tasks {
			if t.SampleBits == 0 || t.SampleBits&(1<<s) != 0 {
				pool = append(pool, t)
			}
		}
		pools[s] = pool
	}
	p.pools = pools

	// Fan the K scenario searches out within the existing budget: the
	// scenario loop takes its share of goroutines and each inner search gets
	// the remainder, so SSP never oversubscribes beyond what one DTA plan
	// could use. Results land in per-index slots; everything after the
	// barrier is serial, so the commit is byte-identical at every setting.
	outer := par.Workers(o.Parallelism, k)
	innerPar := o.Parallelism
	if outer > 1 {
		total := o.Parallelism
		if total == 0 {
			total = runtime.GOMAXPROCS(0)
		}
		innerPar = total / outer
		if innerPar < 1 {
			innerPar = 1
		}
	}
	plans := make([]core.Plan, k)
	nodes := make([]int, k)
	for len(p.inner) < outer {
		p.inner = append(p.inner, &Search{})
	}
	par.DoWorker(k, o.Parallelism, func(g, s int) {
		in := p.innerAt(g, o, innerPar)
		plans[s] = in.Plan(workers, pools[s], now)
		nodes[s] = in.NodesLastPlan
	})
	p.NodesLastPlan = 0
	for _, n := range nodes {
		p.NodesLastPlan += n
	}

	// Score candidate j under scenario s and fold through CVaR_α. The value
	// matrix is tiny (K²) next to the searches above; clarity wins.
	vals := p.vals[:0]
	for j := 0; j < k; j++ {
		for s := 0; s < k; s++ {
			vals = append(vals, planValue(plans[j], s, o.VirtualWeight))
		}
	}
	p.vals = vals
	best, bestScore := 0, math.Inf(-1)
	for j := 0; j < k; j++ {
		if score := cvar(vals[j*k:(j+1)*k], p.CVaRAlpha); score > bestScore {
			best, bestScore = j, score
		}
	}
	return plans[best]
}

// innerAt returns the g-th inner search configured for this instant.
func (p *SSP) innerAt(g int, o Options, parallelism int) *Search {
	for len(p.inner) <= g {
		p.inner = append(p.inner, &Search{})
	}
	s := p.inner[g]
	s.Opts = o
	s.Opts.Parallelism = parallelism
	s.Model = p.Model
	return s
}

// scenarios returns the scenario count implied by the pool: the configured
// Samples when any virtual task carries scenario bits, 1 otherwise.
func (p *SSP) scenarios(tasks []*core.Task) int {
	maxBit := -1
	for _, t := range tasks {
		if t.SampleBits == 0 {
			continue
		}
		if b := bits.Len64(t.SampleBits) - 1; b > maxBit {
			maxBit = b
		}
	}
	if maxBit < 0 {
		return 1
	}
	k := p.Samples
	if k < maxBit+1 {
		k = maxBit + 1 // never drop a scenario the sampler emitted
	}
	if k > 64 {
		k = 64
	}
	return k
}

// planValue is the realized value of a candidate plan under scenario s: one
// per real task, VirtualWeight per virtual task the scenario contains, zero
// for virtuals of other scenarios (the worker repositions toward demand that
// never appears there).
func planValue(plan core.Plan, s int, virtualWeight float64) float64 {
	v := 0.0
	for _, a := range plan {
		for _, t := range a.Seq {
			switch {
			case !t.Virtual:
				v++
			case t.SampleBits == 0 || t.SampleBits&(1<<s) != 0:
				v += virtualWeight
			}
		}
	}
	return v
}

// cvar folds per-scenario values through the conditional value at risk: the
// mean of the worst ⌈α·K⌉ values. α ≥ 1 (or unset ≤ 0) recovers the plain
// expectation; α → 0 degenerates to the single worst scenario.
func cvar(vals []float64, alpha float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	if alpha <= 0 || alpha >= 1 {
		sum := 0.0
		for _, v := range vals {
			sum += v
		}
		return sum / float64(len(vals))
	}
	m := int(math.Ceil(alpha * float64(len(vals))))
	if m < 1 {
		m = 1
	}
	if m > len(vals) {
		m = len(vals)
	}
	// Insertion sort into a small scratch: K ≤ 64, and the planner must not
	// disturb the input slice.
	sorted := append(make([]float64, 0, len(vals)), vals...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	sum := 0.0
	for _, v := range sorted[:m] {
		sum += v
	}
	return sum / float64(m)
}
