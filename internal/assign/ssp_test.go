package assign

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// sspScenario tags a fraction of a random scenario's tasks as scenario-split
// virtuals: each tagged task belongs to a deterministic subset of k sampled
// futures, the rest stay untagged (all scenarios).
func sspScenario(seed int64, k int) ([]*core.Worker, []*core.Task) {
	ws, ts := randomScenario(seed, 30, 90, 7)
	r := rand.New(rand.NewSource(seed * 31))
	for i, task := range ts {
		if i%3 != 0 {
			continue
		}
		task.Virtual = true
		mask := uint64(0)
		for s := 0; s < k; s++ {
			if r.Float64() < 0.5 {
				mask |= 1 << s
			}
		}
		all := uint64(1)<<k - 1
		if mask != 0 && mask != all {
			task.SampleBits = mask
		}
	}
	return ws, ts
}

// TestSSPFastPathMatchesSearch pins the K=1 contract: on a pool without
// scenario bits SSP is byte-identical to the plain search planner, node count
// included.
func TestSSPFastPathMatchesSearch(t *testing.T) {
	ws, ts := randomScenario(11, 40, 120, 8)
	ref := &Search{Opts: opts()}
	want := ref.Plan(ws, ts, 0)

	p := &SSP{Opts: opts(), Samples: 8, CVaRAlpha: 0.5}
	got := p.Plan(ws, ts, 0)
	planIsValid(t, got, 0)
	samePlans(t, want, got)
	if p.NodesLastPlan != ref.NodesLastPlan {
		t.Fatalf("fast-path nodes %d, search %d", p.NodesLastPlan, ref.NodesLastPlan)
	}
}

// TestSSPParallelMatchesSerial is SSP's determinism contract: on a
// scenario-tagged pool the committed plan is byte-identical at every
// parallelism level.
func TestSSPParallelMatchesSerial(t *testing.T) {
	for _, seed := range []int64{5, 23, 87} {
		ws, ts := sspScenario(seed, 4)

		serialOpts := opts()
		serialOpts.Parallelism = 1
		serial := &SSP{Opts: serialOpts, Samples: 4}
		want := serial.Plan(ws, ts, 0)
		planIsValid(t, want, 0)

		for _, par := range []int{2, 4, 8, 0} {
			o := opts()
			o.Parallelism = par
			p := &SSP{Opts: o, Samples: 4}
			got := p.Plan(ws, ts, 0)
			planIsValid(t, got, 0)
			samePlans(t, want, got)
			if p.NodesLastPlan != serial.NodesLastPlan {
				t.Fatalf("seed %d parallelism %d: nodes %d vs serial %d",
					seed, par, p.NodesLastPlan, serial.NodesLastPlan)
			}
		}
	}
}

// TestSSPRepeatedPlansIdentical guards the scratch reuse: back-to-back plans
// on the same pool must not be perturbed by state left from the previous
// instant.
func TestSSPRepeatedPlansIdentical(t *testing.T) {
	ws, ts := sspScenario(42, 6)
	p := &SSP{Opts: opts(), Samples: 6}
	want := p.Plan(ws, ts, 0)
	for i := 0; i < 3; i++ {
		samePlans(t, want, p.Plan(ws, ts, 0))
	}
}

// TestSSPScenarioCount pins the pool→K inference: untagged pools are one
// scenario, tagged pools take max(Samples, highest bit + 1) clamped to 64.
func TestSSPScenarioCount(t *testing.T) {
	p := &SSP{Samples: 4}
	if k := p.scenarios([]*core.Task{{ID: 1}}); k != 1 {
		t.Errorf("untagged pool: k = %d, want 1", k)
	}
	if k := p.scenarios([]*core.Task{{ID: 1, SampleBits: 1<<6 | 1}}); k != 7 {
		t.Errorf("bit 6 seen: k = %d, want 7", k)
	}
	p.Samples = 100
	if k := p.scenarios([]*core.Task{{ID: 1, SampleBits: 3}}); k != 64 {
		t.Errorf("oversized Samples: k = %d, want 64", k)
	}
}

func TestPlanValuePerScenario(t *testing.T) {
	w := worker(1, 0, 0, 2, 0, 1e5)
	real := task(1, 0.1, 0, 0, 1e5)
	everywhere := vtask(-1, 0.2, 0, 0, 1e5) // SampleBits 0 = all scenarios
	only1 := vtask(-2, 0.3, 0, 0, 1e5)
	only1.SampleBits = 1 << 1
	plan := core.Plan{{Worker: w, Seq: core.Sequence{real, everywhere, only1}}}

	if v := planValue(plan, 0, 0.5); v != 1.5 {
		t.Errorf("scenario 0 value = %v, want 1.5 (real + all-scenario virtual)", v)
	}
	if v := planValue(plan, 1, 0.5); v != 2.0 {
		t.Errorf("scenario 1 value = %v, want 2.0 (all three)", v)
	}
}

// TestCVaRMonotone checks the risk fold: α = 1 (and the unset 0) recover the
// plain mean, and the CVaR is non-decreasing in α — averaging in better
// scenarios can only raise the value.
func TestCVaRMonotone(t *testing.T) {
	vals := []float64{5, 1, 4, 2, 8, 3}
	mean := 23.0 / 6
	if got := cvar(vals, 1); math.Abs(got-mean) > 1e-12 {
		t.Errorf("cvar(α=1) = %v, want mean %v", got, mean)
	}
	if got := cvar(vals, 0); math.Abs(got-mean) > 1e-12 {
		t.Errorf("cvar(α=0, unset) = %v, want mean %v", got, mean)
	}
	prev := math.Inf(-1)
	for _, alpha := range []float64{0.1, 0.2, 0.4, 0.6, 0.8, 0.99} {
		got := cvar(vals, alpha)
		if got < prev-1e-12 {
			t.Fatalf("cvar not monotone: α=%v gave %v after %v", alpha, got, prev)
		}
		prev = got
	}
	// α small enough for a single scenario: the worst value.
	if got := cvar(vals, 0.01); got != 1 {
		t.Errorf("cvar(α→0) = %v, want worst value 1", got)
	}
	// The fold must not disturb the caller's slice.
	if vals[0] != 5 || vals[1] != 1 {
		t.Error("cvar sorted the input slice in place")
	}
}

// TestSSPPrefersRobustPlan builds a pool where the point forecast's virtual
// task appears in only one of four futures while a competing virtual appears
// in three: with sampling on, the committed plan should chase the demand most
// futures agree on.
func TestSSPPrefersRobustPlan(t *testing.T) {
	// One worker, two virtual tasks on opposite sides, each reachable alone
	// (50 s travel, 60 s validity) but not back to back — the plan must pick
	// one.
	w := worker(1, 0, 0, 6, 0, 1e5)
	rare := vtask(-1, 0.5, 0, 0, 60) // scenario 0 only
	rare.SampleBits = 1 << 0
	common := vtask(-2, -0.5, 0, 0, 60) // scenarios 1..3
	common.SampleBits = 0b1110
	tasks := []*core.Task{rare, common}

	p := &SSP{Opts: opts(), Samples: 4}
	plan := p.Plan([]*core.Worker{w}, tasks, 0)
	ids := map[int]bool{}
	for _, a := range plan {
		for _, task := range a.Seq {
			ids[task.ID] = true
		}
	}
	if !ids[-2] || ids[-1] {
		t.Fatalf("SSP committed %v, want the three-future virtual only", ids)
	}
}
