package benchsuite

import (
	"testing"

	"repro"
	"repro/internal/dispatch"
	"repro/internal/scenario"
)

// liveReplay builds a fresh dispatcher for one quiet archetype and replays
// its full trace through the live path — the exact cell the benchmark suite
// measures live allocations on. Used by both the alloc-profile benchmark and
// the steady-state allocation gate.
func liveReplay(tb testing.TB, arch string, m datawa.Method, scale float64) dispatch.LoadResult {
	a, ok := scenario.Get(arch)
	if !ok {
		tb.Fatalf("unknown archetype %q", arch)
	}
	sc := a.Generate(scale)
	fw, err := framework(sc, m, Options{}.withDefaults())
	if err != nil {
		tb.Fatal(err)
	}
	d, err := fw.NewDispatcher(m, datawa.DispatchConfig{
		Shards: 2, Step: 2, Now: sc.T0,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return dispatch.LoadGen{Events: sc.Events(), T1: sc.T1}.Run(d)
}

// BenchmarkLiveReplay replays a quiet archetype through the live dispatch
// path with allocation reporting — the profiling anchor for the steady-state
// allocation work (run with -memprofile to rank allocators).
func BenchmarkLiveReplay(b *testing.B) {
	for _, m := range []datawa.Method{datawa.MethodGreedy, datawa.MethodDTA} {
		b.Run(string(m), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				liveReplay(b, "sparse-suburb", m, 1)
			}
		})
	}
}

// TestSteadyStateAllocGate is the allocation regression gate: a full live
// replay of each quiet archetype — dispatcher construction included — must
// stay under a fixed allocation budget, failing CI on regression instead of
// merely recording a delta in the BENCH report. The sparse-suburb bounds are
// the acceptance bar of the streaming-ingest work (80% below the BENCH_6
// baselines of 130,593 Greedy / 331,274 DTA); the courier-grid bounds hold
// ~1.5x headroom over the measured steady state, far below the order of
// magnitude a scratch-reuse regression would cost.
func TestSteadyStateAllocGate(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	for _, tc := range []struct {
		arch   string
		method datawa.Method
		limit  float64
	}{
		{"sparse-suburb", datawa.MethodGreedy, 26148},
		{"sparse-suburb", datawa.MethodDTA, 66281},
		{"courier-grid", datawa.MethodGreedy, 25000},
		{"courier-grid", datawa.MethodDTA, 55000},
	} {
		t.Run(tc.arch+"/"+string(tc.method), func(t *testing.T) {
			allocs := testing.AllocsPerRun(2, func() { liveReplay(t, tc.arch, tc.method, 1) })
			if allocs > tc.limit {
				t.Fatalf("live replay allocates %.0f per run, gate is %.0f", allocs, tc.limit)
			}
		})
	}
}
