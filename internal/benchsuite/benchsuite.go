// Package benchsuite runs the scenario-atlas benchmark suite: every
// registered archetype (internal/scenario) × assignment method × density
// scale, each replayed through both the offline stream engine
// (datawa.Framework.Run) and the live dispatch path (dispatch.LoadGen over a
// sharded Dispatcher). The result is a schema-versioned Report — the
// BENCH_*.json files at the repo root — recording throughput, epoch latency
// percentiles, assignment rate, and allocations, so successive PRs can
// compare performance against the committed snapshot.
//
// Chaos archetypes (scenario.Archetype.Overload != nil) run their live path
// under the archetype's admission-control and governor profile with the
// deterministic work-unit cost function, then quiesce to a full drain; their
// cells are marked overload and must satisfy exact task conservation
// (assigned + expired + cancelled + shed == tasks), which Validate enforces
// on every load and Run enforces at generation time. The offline/live
// fidelity gate skips them — shedding makes the two paths diverge by design.
//
// Assignment outcomes (assigned/expired counts, and therefore
// assignment_rate) are deterministic given the archetype seed, at every
// parallelism level and on every machine; wall-clock and allocation figures
// are informational and host-dependent. Compare gates on assignment rate
// (hard, deterministic) and — with a separate, looser threshold — on the
// live path's epoch p95 latency, so a perf PR cannot silently trade epoch
// latency for throughput. docs/BENCHMARKS.md documents the schema and the
// regeneration policy.
package benchsuite

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"time"

	"repro"
	"repro/internal/dispatch"
	"repro/internal/scenario"
)

// Schema identifies the Report wire format. Bump the suffix on any
// incompatible change and teach Validate the older versions so committed
// snapshots keep working as -compare baselines. Version 2 added the per-cell
// fidelity_gap field and the top-level halo_radius_km echo; version 3 added
// the live path's incremental-replanning reuse counters (incremental_hits,
// components_replanned) and the top-level incremental echo; version 4 added
// the chaos archetypes (cells marked overload, run under admission control
// and the SLA governor) and their live-path shed/deferred/cancelled and
// planner-tier counters, plus the exact task-conservation check Validate
// applies to overload cells; version 5 added the ingest transport axis —
// cells carry a transport tag ("json" per-event, "stream" batched binary
// wire frames) and reports echo the Transports option. A missing or empty
// transport means "json": pre-v5 snapshots predate the stream transport, so
// Compare matches their cells against v5 json cells. Version 6 added the
// scenario-sampling method (SSP): its cells echo the sampling configuration
// (samples, cvar_alpha) alongside the method tag, and reports echo the
// Samples and CVaRAlpha options; cells of the other methods are unchanged,
// so pre-v6 baselines keep gating them.
const Schema = "datawa-bench-suite/6"

// legacySchemas are older wire formats Validate still accepts.
var legacySchemas = []string{"datawa-bench-suite/5", "datawa-bench-suite/4", "datawa-bench-suite/3", "datawa-bench-suite/2", "datawa-bench-suite/1"}

// schemaV1 is the oldest format, which predates the fidelity_gap field.
const schemaV1 = "datawa-bench-suite/1"

// p95GateFloorNS clamps the baseline of Compare's latency gate from below:
// growth is measured relative to max(baseline, 10 ms). Epoch latencies are
// wall-clock — run-to-run variance reaches 2x on µs-scale cells and the
// committed snapshot may come from a faster host than the CI runner — so a
// purely relative threshold on small baselines would gate on scheduler and
// hardware noise. The floor widens the allowance instead of exempting the
// cell: a lightweight cell blowing up past ~15 ms still fails, while the
// gate's real target — order-of-magnitude regressions on the heavyweight
// cells (hundreds of ms to seconds) — is gated at the full 50% tolerance.
const p95GateFloorNS = int64(10 * time.Millisecond)

// Options parameterizes one suite run. The zero value runs every registered
// archetype with the training-free methods at 1x and 5x density.
type Options struct {
	// Scenarios selects atlas archetypes by name (empty = all registered).
	Scenarios []string
	// Scales lists the density multipliers per archetype (empty = 1, 5).
	Scales []float64
	// Methods lists assignment methods (empty = Greedy, DTA — the
	// training-free pair; DTA+TP and DATA-WA train their models per cell
	// and cost accordingly).
	Methods []string
	// Transports lists the live-path ingest transports to measure: "json"
	// replays per event (the pre-v5 behavior and the only valid entry for
	// older baselines), "stream" replays through the batched binary wire
	// path (encode → frame → decode → IngestBatch). Empty = json only.
	// Assignment outcomes are transport-independent — the dispatch property
	// tests pin byte-identical snapshots — so extra transports add
	// throughput cells, never new behavior.
	Transports []string
	// Step is the planning epoch length in seconds (default 2).
	Step float64
	// Shards is the live path's dispatcher shard count (default 2).
	Shards int
	// HaloRadius is the live path's cross-shard handoff radius in km
	// (0 = auto from worker reach, negative = disable ghost replication);
	// see dispatch.Config.HaloRadius.
	HaloRadius float64
	// DisableIncremental turns off the live path's incremental epoch
	// replanning (dispatch.Config.DisableIncremental). Assignment outcomes
	// are identical either way; only epoch cost and the reuse counters
	// change.
	DisableIncremental bool
	// Parallelism bounds planner fan-out (0 = one goroutine per CPU).
	Parallelism int
	// MaxNodes caps exact-search effort per planning call (default 4000).
	MaxNodes int
	// Samples is the demand futures SSP cells draw per forecast instant
	// (0 = the framework default); CVaRAlpha their risk knob (0 = expected
	// value). Both are ignored by — and not echoed on — non-SSP cells.
	Samples   int
	CVaRAlpha float64
	// Log, when non-nil, receives one progress line per cell.
	Log func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if len(o.Scenarios) == 0 {
		o.Scenarios = scenario.Names()
	}
	if len(o.Scales) == 0 {
		o.Scales = []float64{1, 5}
	}
	if len(o.Methods) == 0 {
		o.Methods = []string{string(datawa.MethodGreedy), string(datawa.MethodDTA)}
	}
	if len(o.Transports) == 0 {
		o.Transports = []string{TransportJSON}
	}
	if o.Step <= 0 {
		o.Step = 2
	}
	if o.Shards <= 0 {
		o.Shards = 2
	}
	if o.MaxNodes <= 0 {
		o.MaxNodes = 4000
	}
	if o.Samples <= 0 {
		o.Samples = datawa.DefaultSamples
	}
	if o.Log == nil {
		o.Log = func(string, ...any) {}
	}
	return o
}

// Report is the suite's machine-readable result document.
type Report struct {
	// Schema is the wire-format version tag (the Schema constant).
	Schema string `json:"schema"`
	// GoVersion, OS and Arch identify the host toolchain; wall-clock and
	// allocation figures are only comparable within a matching triple.
	GoVersion string `json:"go_version"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	// Scenarios, Scales, Methods, Step, Shards, HaloRadius, Incremental and
	// Parallelism echo the options that produced the report. Scenarios
	// arrived with schema v3; Compare falls back to the result set's
	// scenario names for older reports.
	Scenarios   []string  `json:"scenarios,omitempty"`
	Scales      []float64 `json:"scales"`
	Methods     []string  `json:"methods"`
	Transports  []string  `json:"transports,omitempty"`
	Step        float64   `json:"step_seconds"`
	Shards      int       `json:"shards"`
	HaloRadius  float64   `json:"halo_radius_km"`
	Incremental bool      `json:"incremental"`
	Parallelism int       `json:"parallelism"`
	// Samples and CVaRAlpha echo the SSP sampling options (schema v6);
	// absent when no SSP cells were requested.
	Samples   int     `json:"samples,omitempty"`
	CVaRAlpha float64 `json:"cvar_alpha,omitempty"`
	// Results holds one cell per scenario × scale × method, in scenario
	// name order.
	Results []Cell `json:"results"`
}

// Cell is one suite cell: a scenario at one density, run with one method
// through both execution paths.
type Cell struct {
	// Scenario is the atlas archetype name.
	Scenario string `json:"scenario"`
	// Scale is the density multiplier the archetype ran at.
	Scale float64 `json:"scale"`
	// Method is the assignment method (datawa.Method wire name).
	Method string `json:"method"`
	// Workers is the number of availability segments in the trace (break
	// splits count twice); Tasks the number of real tasks.
	Workers int `json:"workers"`
	Tasks   int `json:"tasks"`
	// Offline replays the trace through the stream engine; Live replays
	// the same trace through the sharded dispatch service.
	Offline Path `json:"offline"`
	Live    Path `json:"live"`
	// FidelityGap is offline minus live assignment rate: how far the sharded
	// live path trails the engine-equivalent reference on this cell.
	// Negative means the live path assigned more. With cross-shard halo
	// handoff the gap stays within one percentage point; a larger value
	// means boundary visibility or arbitration regressed. Overload cells are
	// exempt from the fidelity gate: shedding makes the paths diverge by
	// design.
	FidelityGap float64 `json:"fidelity_gap"`
	// Overload marks a chaos cell: the live path ran under the archetype's
	// admission-control and governor profile (scenario.OverloadProfile) with
	// the deterministic work-unit cost function, then quiesced to a full
	// drain. Validate asserts exact task conservation on these cells.
	Overload bool `json:"overload,omitempty"`
	// Transport is the live path's ingest transport: TransportJSON
	// (per-event, the pre-v5 default — empty means the same) or
	// TransportStream (batched binary wire frames). The offline path never
	// involves a transport, so stream cells reuse the json cell's offline
	// figures verbatim.
	Transport string `json:"transport,omitempty"`
	// Samples and CVaRAlpha echo the sampling configuration of an SSP cell
	// (schema v6): the demand futures drawn per forecast instant and the
	// CVaR risk knob (0 = expected value). Zero on non-SSP cells.
	Samples   int     `json:"samples,omitempty"`
	CVaRAlpha float64 `json:"cvar_alpha,omitempty"`
}

// Live-path ingest transports a Cell can be measured over.
const (
	TransportJSON   = "json"
	TransportStream = "stream"
)

// normTransport maps the empty (pre-v5) transport tag to TransportJSON so
// old and new snapshots compare like for like.
func normTransport(t string) string {
	if t == "" {
		return TransportJSON
	}
	return t
}

// Path is one execution path's measurement.
type Path struct {
	// Assigned and Expired are the run's terminal task counts;
	// AssignmentRate is Assigned / Tasks.
	Assigned       int     `json:"assigned"`
	Expired        int     `json:"expired"`
	AssignmentRate float64 `json:"assignment_rate"`
	// PlanCalls counts planner invocations; AvgPlanNS is the paper's
	// CPU-per-instant metric in nanoseconds.
	PlanCalls int   `json:"plan_calls"`
	AvgPlanNS int64 `json:"avg_plan_ns"`
	// WallMS is the path's wall-clock time; EventsPerSec the replay
	// throughput (worker + task arrivals per wall second).
	WallMS       float64 `json:"wall_ms"`
	EventsPerSec float64 `json:"events_per_sec"`
	// AllocBytes and Allocs are the Go heap deltas over the run.
	AllocBytes uint64 `json:"alloc_bytes"`
	Allocs     uint64 `json:"allocs"`
	// Epochs, Shards and the epoch latency percentiles are live-path only
	// (zero offline).
	Epochs     int   `json:"epochs,omitempty"`
	Shards     int   `json:"shards,omitempty"`
	EpochP50NS int64 `json:"epoch_p50_ns,omitempty"`
	EpochP95NS int64 `json:"epoch_p95_ns,omitempty"`
	EpochP99NS int64 `json:"epoch_p99_ns,omitempty"`
	// IncrementalHits and ComponentsReplanned are the live path's
	// incremental-replanning reuse counters (dispatch.Metrics); live-path
	// only, zero when incremental replanning is disabled.
	IncrementalHits     int64 `json:"incremental_hits,omitempty"`
	ComponentsReplanned int64 `json:"components_replanned,omitempty"`
	// Cancelled, Shed and Deferred are the live path's remaining terminal
	// and backpressure outcomes (dispatch.Metrics): on an overload cell
	// assigned + expired + cancelled + shed == tasks exactly after the
	// post-replay quiesce. Deferred counts per-epoch requeue events, so it
	// can exceed the task count. Live-path only; zero without admission
	// control.
	Cancelled int   `json:"cancelled,omitempty"`
	Shed      int64 `json:"shed,omitempty"`
	Deferred  int64 `json:"deferred,omitempty"`
	// TierDemotions/TierPromotions count governor ladder transitions over
	// the run and WorstTier is the deepest ladder tier any shard reached
	// (0 = the method's full planner). Live-path only; zero without a
	// governor.
	TierDemotions  int64 `json:"tier_demotions,omitempty"`
	TierPromotions int64 `json:"tier_promotions,omitempty"`
	WorstTier      int   `json:"worst_tier,omitempty"`
}

// Run executes the suite and returns a validated report.
func Run(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	r := &Report{
		Schema:      Schema,
		GoVersion:   runtime.Version(),
		OS:          runtime.GOOS,
		Arch:        runtime.GOARCH,
		Scenarios:   opts.Scenarios,
		Scales:      opts.Scales,
		Methods:     opts.Methods,
		Transports:  opts.Transports,
		Step:        opts.Step,
		Shards:      opts.Shards,
		HaloRadius:  opts.HaloRadius,
		Incremental: !opts.DisableIncremental,
		Parallelism: opts.Parallelism,
	}
	for _, m := range opts.Methods {
		if datawa.Method(m) == datawa.MethodSSP {
			r.Samples = opts.Samples
			r.CVaRAlpha = opts.CVaRAlpha
			break
		}
	}
	for _, name := range opts.Scenarios {
		arch, ok := scenario.Get(name)
		if !ok {
			return nil, fmt.Errorf("benchsuite: unknown scenario %q (atlas: %v)", name, scenario.Names())
		}
		for _, f := range opts.Scales {
			sc := arch.Generate(f)
			for _, method := range opts.Methods {
				// The offline engine has no ingest transport, so its
				// measurement from the first transport's cell is reused
				// verbatim by the rest.
				var offline *Path
				for _, transport := range opts.Transports {
					cell, err := runCell(arch, sc, f, datawa.Method(method), transport, offline, opts)
					if err != nil {
						return nil, fmt.Errorf("benchsuite: %s %gx %s (%s): %w", name, f, method, transport, err)
					}
					if offline == nil {
						off := cell.Offline
						offline = &off
					}
					r.Results = append(r.Results, cell)
					chaos := ""
					if cell.Overload {
						chaos = fmt.Sprintf(" | shed %d deferred %d tier↓%d↑%d worst %d",
							cell.Live.Shed, cell.Live.Deferred,
							cell.Live.TierDemotions, cell.Live.TierPromotions, cell.Live.WorstTier)
					}
					opts.Log("%-13s %4gx %-8s %-6s offline %5.1f%% %8.0f ev/s | live %5.1f%% %8.0f ev/s gap %+5.1fpp p95 %s%s",
						name, f, method, transport,
						100*cell.Offline.AssignmentRate, cell.Offline.EventsPerSec,
						100*cell.Live.AssignmentRate, cell.Live.EventsPerSec,
						100*cell.FidelityGap,
						time.Duration(cell.Live.EpochP95NS).Round(time.Microsecond), chaos)
				}
			}
		}
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("benchsuite: generated report is invalid: %w", err)
	}
	return r, nil
}

// framework builds and, for the prediction methods, trains one Framework for
// a cell.
func framework(sc *datawa.Scenario, m datawa.Method, opts Options) (*datawa.Framework, error) {
	c := sc.Config
	fw := datawa.New(datawa.Config{
		Region:   c.Region,
		GridRows: c.GridRows, GridCols: c.GridCols,
		Step: opts.Step, Seed: c.Seed,
		Parallelism:    opts.Parallelism,
		MaxSearchNodes: opts.MaxNodes,
		Samples:        opts.Samples,
		CVaRAlpha:      opts.CVaRAlpha,
	})
	if m == datawa.MethodDTATP || m == datawa.MethodDATAWA || m == datawa.MethodSSP {
		if err := fw.TrainDemand(sc.History); err != nil {
			return nil, err
		}
	}
	if m == datawa.MethodDATAWA {
		if err := fw.TrainValue(sc.Workers, sc.Tasks, 6); err != nil {
			return nil, err
		}
	}
	return fw, nil
}

// runCell measures one scenario × scale × method × transport through both
// paths. A non-nil offline is reused instead of re-running the offline
// engine — stream cells differ from their json siblings only on the live
// path's ingest transport.
func runCell(arch scenario.Archetype, sc *datawa.Scenario, f float64, m datawa.Method, transport string, offline *Path, opts Options) (Cell, error) {
	cell := Cell{
		Scenario: arch.Name, Scale: f, Method: string(m),
		Workers: len(sc.Workers), Tasks: len(sc.Tasks),
		Transport: transport,
	}
	if m == datawa.MethodSSP {
		cell.Samples = opts.Samples
		cell.CVaRAlpha = opts.CVaRAlpha
	}
	events := len(sc.Workers) + len(sc.Tasks)
	var m0, m1 runtime.MemStats

	if offline != nil {
		cell.Offline = *offline
	} else {
		// Offline: the closed-trace stream engine.
		fw, err := framework(sc, m, opts)
		if err != nil {
			return Cell{}, err
		}
		runtime.GC()
		runtime.ReadMemStats(&m0)
		start := time.Now()
		res, err := fw.Run(m, sc.Workers, sc.Tasks, sc.T0, sc.T1)
		wall := time.Since(start)
		runtime.ReadMemStats(&m1)
		if err != nil {
			return Cell{}, err
		}
		cell.Offline = Path{
			Assigned: res.Assigned, Expired: res.Expired,
			AssignmentRate: rate(res.Assigned, len(sc.Tasks)),
			PlanCalls:      res.PlanCalls,
			AvgPlanNS:      res.AvgPlanTime.Nanoseconds(),
			WallMS:         float64(wall.Microseconds()) / 1000,
			EventsPerSec:   perSec(events, wall),
			AllocBytes:     m1.TotalAlloc - m0.TotalAlloc,
			Allocs:         m1.Mallocs - m0.Mallocs,
		}
	}

	// Live: the same trace through the sharded dispatch service. A fresh
	// framework keeps any forecaster state of the offline run out of the
	// measurement.
	fw, err := framework(sc, m, opts)
	if err != nil {
		return Cell{}, err
	}
	dc := datawa.DispatchConfig{
		Shards: opts.Shards, HaloRadius: opts.HaloRadius, Step: opts.Step, Now: sc.T0,
		DisableIncremental: opts.DisableIncremental,
	}
	if arch.Overload != nil {
		cell.Overload = true
		applyOverload(&dc, arch.Overload)
		// The lifecycle ledger lets a conservation failure name the exact
		// leaked or double-counted tasks instead of just the delta. Sized to
		// retain every chain so the audit covers the full population.
		dc.Obs.LedgerTasks = len(sc.Tasks) + 1024
	}
	d, err := fw.NewDispatcher(m, dc)
	if err != nil {
		return Cell{}, err
	}
	g := dispatch.LoadGen{Events: sc.Events(), T1: sc.T1, Stream: normTransport(transport) == TransportStream}
	runtime.GC()
	runtime.ReadMemStats(&m0)
	lr := g.Run(d)
	met := lr.Metrics
	if cell.Overload {
		// Chaos gate: the dispatcher must reach a fully drained state with
		// every shard back on the top planner tier, and the terminal counters
		// must account for every submitted task exactly once.
		if !d.Quiesce(quiesceEpochs) {
			return Cell{}, fmt.Errorf("overload cell did not quiesce within %d epochs (snapshot: %+v)", quiesceEpochs, d.Snapshot())
		}
		met = d.Snapshot()
		terminal := met.Assigned + met.Expired + met.Cancelled + int(met.Shed)
		if terminal != len(sc.Tasks) || met.Unroutable != 0 {
			// The ledger audit names the exact tasks behind the delta:
			// after a full drain every chain must be terminal, so an open
			// or malformed chain is the leak itself.
			issues, evictions := d.LedgerAudit()
			return Cell{}, fmt.Errorf(
				"task conservation violated: assigned %d + expired %d + cancelled %d + shed %d = %d, want %d submitted (unroutable %d); ledger audit (evictions %d): %v",
				met.Assigned, met.Expired, met.Cancelled, met.Shed, terminal, len(sc.Tasks), met.Unroutable, evictions, issues)
		}
		if issues, evictions := d.LedgerAudit(); len(issues) != 0 || evictions != 0 {
			return Cell{}, fmt.Errorf("lifecycle ledger audit failed on overload cell (evictions %d): %v", evictions, issues)
		}
	}
	runtime.ReadMemStats(&m1)
	avgPlan := int64(0)
	if met.PlanCalls > 0 {
		avgPlan = met.PlanTime.Nanoseconds() / int64(met.PlanCalls)
	}
	cell.Live = Path{
		Assigned: met.Assigned, Expired: met.Expired,
		AssignmentRate: rate(met.Assigned, len(sc.Tasks)),
		PlanCalls:      met.PlanCalls,
		AvgPlanNS:      avgPlan,
		WallMS:         float64(lr.Wall.Microseconds()) / 1000,
		EventsPerSec:   lr.AchievedRate,
		AllocBytes:     m1.TotalAlloc - m0.TotalAlloc,
		Allocs:         m1.Mallocs - m0.Mallocs,
		Epochs:         met.Epochs,
		Shards:         opts.Shards,
		EpochP50NS:     met.EpochP50.Nanoseconds(),
		EpochP95NS:     met.EpochP95.Nanoseconds(),
		EpochP99NS:     met.EpochP99.Nanoseconds(),

		IncrementalHits:     met.IncrementalHits,
		ComponentsReplanned: met.ComponentsReplanned,

		Cancelled:      met.Cancelled,
		Shed:           met.Shed,
		Deferred:       met.Deferred,
		TierDemotions:  met.TierDemotions,
		TierPromotions: met.TierPromotions,
		WorstTier:      met.WorstTier,
	}
	cell.FidelityGap = cell.Offline.AssignmentRate - cell.Live.AssignmentRate
	return cell, nil
}

// applyOverload maps a chaos archetype's overload profile onto a dispatch
// configuration. The governor costs epochs in work units (workers × open
// tasks at the planning instant) instead of wall time, so tier transitions —
// and therefore the whole cell — replay byte-identically on every host.
func applyOverload(dc *datawa.DispatchConfig, p *scenario.OverloadProfile) {
	dc.Admission = datawa.AdmissionConfig{
		MaxOpenTasks:       p.MaxOpenTasks,
		MaxSubmitsPerEpoch: p.MaxSubmitsPerEpoch,
		DeferSlack:         p.DeferSlack,
	}
	dc.Governor = datawa.GovernorConfig{
		Budget: p.BudgetUnits, Window: p.Window, Dwell: p.Dwell,
		Cost: func(_ int, _ time.Duration, workers, open int) float64 {
			return float64(workers * open)
		},
	}
}

// quiesceEpochs bounds the post-replay drain of an overload cell. Deferred
// tasks shed once their slack runs out (≤ TaskValid/Step epochs) and governor
// recovery needs a few full windows of idle epochs, so real convergence is
// tens of epochs; the bound only stops a broken build from spinning forever.
const quiesceEpochs = 512

func rate(assigned, tasks int) float64 {
	if tasks == 0 {
		return 0
	}
	return float64(assigned) / float64(tasks)
}

func perSec(events int, wall time.Duration) float64 {
	if wall <= 0 {
		return 0
	}
	return float64(events) / wall.Seconds()
}

// Validate checks the report's structure against the schema: version tag,
// non-empty results, and per-cell field sanity. It does not compare against
// another snapshot — that is Compare's job.
func (r *Report) Validate() error {
	if r == nil {
		return fmt.Errorf("nil report")
	}
	legacy := false
	for _, s := range legacySchemas {
		if r.Schema == s {
			legacy = true
			break
		}
	}
	if r.Schema != Schema && !legacy {
		return fmt.Errorf("schema %q, want %q (or legacy %v)", r.Schema, Schema, legacySchemas)
	}
	if len(r.Results) == 0 {
		return fmt.Errorf("report has no results")
	}
	for i, c := range r.Results {
		where := fmt.Sprintf("results[%d] (%s %gx %s)", i, c.Scenario, c.Scale, c.Method)
		if c.Scenario == "" || c.Method == "" {
			return fmt.Errorf("%s: missing scenario or method", where)
		}
		if c.Scale <= 0 || math.IsNaN(c.Scale) {
			return fmt.Errorf("%s: bad scale", where)
		}
		if tp := c.Transport; tp != "" && tp != TransportJSON && tp != TransportStream {
			return fmt.Errorf("%s: unknown transport %q", where, tp)
		}
		if c.Workers <= 0 || c.Tasks <= 0 {
			return fmt.Errorf("%s: empty population", where)
		}
		// fidelity_gap arrived with schema version 2; v1 reports carry the
		// zero value, which would fail the consistency check.
		if r.Schema != schemaV1 {
			if gap := c.Offline.AssignmentRate - c.Live.AssignmentRate; math.Abs(gap-c.FidelityGap) > 1e-9 {
				return fmt.Errorf("%s: fidelity_gap %v inconsistent with offline−live rates (%v)", where, c.FidelityGap, gap)
			}
		}
		for _, p := range []struct {
			name string
			p    Path
			live bool
		}{{"offline", c.Offline, false}, {"live", c.Live, true}} {
			if p.p.AssignmentRate < 0 || p.p.AssignmentRate > 1 || math.IsNaN(p.p.AssignmentRate) {
				return fmt.Errorf("%s: %s assignment_rate %v out of [0,1]", where, p.name, p.p.AssignmentRate)
			}
			if p.p.Assigned+p.p.Expired > c.Tasks {
				return fmt.Errorf("%s: %s assigned+expired %d exceeds %d tasks", where, p.name, p.p.Assigned+p.p.Expired, c.Tasks)
			}
			if p.p.Assigned < 0 || p.p.Expired < 0 || p.p.PlanCalls <= 0 || p.p.WallMS < 0 {
				return fmt.Errorf("%s: %s has negative or zero counters", where, p.name)
			}
			if p.live {
				if p.p.Epochs <= 0 || p.p.Shards <= 0 {
					return fmt.Errorf("%s: live path missing epochs/shards", where)
				}
				if p.p.EpochP50NS > p.p.EpochP95NS || p.p.EpochP95NS > p.p.EpochP99NS || p.p.EpochP50NS < 0 {
					return fmt.Errorf("%s: epoch percentiles not monotone", where)
				}
			}
		}
		// Overload cells quiesce to a full drain before measurement, so the
		// conservation identity must hold exactly in the committed snapshot.
		if c.Overload {
			terminal := c.Live.Assigned + c.Live.Expired + c.Live.Cancelled + int(c.Live.Shed)
			if terminal != c.Tasks {
				return fmt.Errorf("%s: overload cell breaks task conservation: assigned %d + expired %d + cancelled %d + shed %d = %d, want %d",
					where, c.Live.Assigned, c.Live.Expired, c.Live.Cancelled, c.Live.Shed, terminal, c.Tasks)
			}
		}
	}
	return nil
}

// Compare gates a new report against a baseline snapshot: for every cell
// present in both (matched by scenario, scale, method), the offline and live
// assignment rates may not drop by more than maxRelDrop (e.g. 0.10 = 10%)
// relative to the baseline, and the live path's epoch p95 latency may not
// grow by more than maxRelP95 (e.g. 0.50 = 50%; ≤ 0 disables the latency
// gate). Two silent-degradation gates ride along: a cell whose baseline
// never shed a task (Shed == 0) or never demoted its planner
// (TierDemotions == 0) fails if the candidate starts doing either — shedding
// and tier demotion buy rate and latency by giving up completeness or plan
// quality, exactly what the rate and latency gates cannot see. Chaos cells
// carry non-zero baseline counters, so they pass by construction.
// The latency threshold is deliberately separate and looser than the
// rate threshold: assignment rates are deterministic, so any drop is a real
// behavior change, while p95 carries host jitter — the gate exists to catch
// order-of-magnitude epoch blowups that a rate-only gate would wave
// through, not single-digit noise. For cells whose baseline p95 is under
// ten milliseconds, growth is measured against a 10 ms floor instead of the
// raw baseline: run-to-run variance reaches 2x there and the baseline
// snapshot may come from a faster host, so a purely relative bound would
// gate on noise — but a lightweight cell regressing to hundreds of
// milliseconds still fails. Wall-clock throughput and allocation figures
// never gate. It returns the number of cells compared.
//
// Coverage is also gated: a baseline cell whose scenario, scale, and method
// all lie inside the candidate's axes (the scenario set present in its
// results, its echoed Scales and Methods) must appear in the candidate — a
// cell silently vanishing from a rerun of the same configuration is a
// regression, not a skip. Baseline cells outside the candidate's axes (a CI
// run at 1x compared against a 1x+5x snapshot, a methods subset) are
// legitimately absent and don't count.
func Compare(base, cur *Report, maxRelDrop, maxRelP95 float64) (int, error) {
	if err := base.Validate(); err != nil {
		return 0, fmt.Errorf("baseline: %w", err)
	}
	if err := cur.Validate(); err != nil {
		return 0, fmt.Errorf("new report: %w", err)
	}
	// Cells match on scenario, scale, method, and transport — with the empty
	// (pre-v5) transport normalized to "json", so a pre-stream baseline's
	// cells gate the candidate's per-event cells and its stream cells ride
	// along ungated until a stream-bearing snapshot becomes the baseline.
	key := func(c Cell) string {
		return fmt.Sprintf("%s|%g|%s|%s", c.Scenario, c.Scale, c.Method, normTransport(c.Transport))
	}
	baseBy := make(map[string]Cell, len(base.Results))
	for _, c := range base.Results {
		baseBy[key(c)] = c
	}
	curBy := make(map[string]bool, len(cur.Results))
	curScenarios := make(map[string]bool)
	curTransports := make(map[string]bool)
	for _, c := range cur.Results {
		curBy[key(c)] = true
		if len(cur.Scenarios) == 0 {
			// Pre-v3 candidate without the scenario echo: infer the axis.
			curScenarios[c.Scenario] = true
		}
		if len(cur.Transports) == 0 {
			// Pre-v5 candidate without the transport echo: infer the axis.
			curTransports[normTransport(c.Transport)] = true
		}
	}
	for _, name := range cur.Scenarios {
		curScenarios[name] = true
	}
	for _, tp := range cur.Transports {
		curTransports[normTransport(tp)] = true
	}
	curScales := make(map[float64]bool, len(cur.Scales))
	for _, f := range cur.Scales {
		curScales[f] = true
	}
	curMethods := make(map[string]bool, len(cur.Methods))
	for _, m := range cur.Methods {
		curMethods[m] = true
	}
	var missing []string
	for _, b := range base.Results {
		if curScenarios[b.Scenario] && curScales[b.Scale] && curMethods[b.Method] &&
			curTransports[normTransport(b.Transport)] && !curBy[key(b)] {
			missing = append(missing, key(b))
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return 0, fmt.Errorf("%d baseline cell(s) inside the new report's scenario/scale/method axes are missing from it: %v",
			len(missing), missing)
	}
	compared := 0
	var regressions []string
	for _, c := range cur.Results {
		b, ok := baseBy[key(c)]
		if !ok {
			continue
		}
		compared++
		check := func(path string, baseRate, curRate float64) {
			if baseRate > 0 && curRate < baseRate*(1-maxRelDrop) {
				regressions = append(regressions, fmt.Sprintf(
					"%s %gx %s %s: assignment rate %.3f → %.3f (>%.0f%% drop)",
					c.Scenario, c.Scale, c.Method, path, baseRate, curRate, 100*maxRelDrop))
			}
		}
		check("offline", b.Offline.AssignmentRate, c.Offline.AssignmentRate)
		check("live", b.Live.AssignmentRate, c.Live.AssignmentRate)
		baseP95 := b.Live.EpochP95NS
		if baseP95 < p95GateFloorNS {
			baseP95 = p95GateFloorNS
		}
		// No b.EpochP95NS > 0 guard: the floor already turns a degenerate
		// zero baseline into a 1 ms allowance instead of disabling the gate.
		if maxRelP95 > 0 &&
			float64(c.Live.EpochP95NS) > float64(baseP95)*(1+maxRelP95) {
			regressions = append(regressions, fmt.Sprintf(
				"%s %gx %s live: epoch p95 %v → %v (>%.0f%% growth over max(baseline, %v))",
				c.Scenario, c.Scale, c.Method,
				time.Duration(b.Live.EpochP95NS), time.Duration(c.Live.EpochP95NS),
				100*maxRelP95, time.Duration(p95GateFloorNS)))
		}
		// Silent-degradation gates: a cell that never shed tasks or demoted
		// its planner in the baseline must not start doing so — either would
		// quietly trade completeness or plan quality for the rate and latency
		// numbers the gates above watch. Chaos cells shed and demote by
		// design, so their baselines carry non-zero counters and pass.
		if b.Live.Shed == 0 && c.Live.Shed > 0 {
			regressions = append(regressions, fmt.Sprintf(
				"%s %gx %s live: began shedding tasks (0 → %d)",
				c.Scenario, c.Scale, c.Method, c.Live.Shed))
		}
		if b.Live.TierDemotions == 0 && c.Live.TierDemotions > 0 {
			regressions = append(regressions, fmt.Sprintf(
				"%s %gx %s live: governor began demoting the planner (0 → %d demotions)",
				c.Scenario, c.Scale, c.Method, c.Live.TierDemotions))
		}
	}
	if compared == 0 {
		return 0, fmt.Errorf("no overlapping cells between the reports — scenario or method sets diverged")
	}
	if len(regressions) > 0 {
		msg := ""
		for _, line := range regressions {
			msg += "\n  " + line
		}
		return compared, fmt.Errorf("%d regression(s):%s", len(regressions), msg)
	}
	return compared, nil
}
