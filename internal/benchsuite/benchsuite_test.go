package benchsuite

import (
	"strings"
	"testing"
)

// tinyOptions is a seconds-fast suite slice used by every test here.
func tinyOptions() Options {
	return Options{
		Scenarios: []string{"yueche", "multi-city"},
		Scales:    []float64{0.3},
		Methods:   []string{"Greedy"},
		Step:      4,
		Shards:    2,
	}
}

func TestSuiteRunsAndValidates(t *testing.T) {
	r, err := Run(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(r.Results), 2; got != want {
		t.Fatalf("suite produced %d cells, want %d", got, want)
	}
	for _, c := range r.Results {
		if c.Offline.PlanCalls == 0 || c.Live.Epochs == 0 {
			t.Errorf("%s: empty measurement %+v", c.Scenario, c)
		}
		if c.Live.EventsPerSec <= 0 || c.Offline.EventsPerSec <= 0 {
			t.Errorf("%s: missing throughput", c.Scenario)
		}
	}
}

// TestSuiteAssignmentRatesDeterministic pins the property Compare relies on:
// re-running the same suite slice reproduces assignment outcomes exactly,
// so only genuine regressions trip the CI gate.
func TestSuiteAssignmentRatesDeterministic(t *testing.T) {
	first, err := Run(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := range first.Results {
		a, b := first.Results[i], second.Results[i]
		if a.Offline.Assigned != b.Offline.Assigned || a.Live.Assigned != b.Live.Assigned {
			t.Fatalf("%s: assigned %d/%d vs %d/%d across identical runs",
				a.Scenario, a.Offline.Assigned, a.Live.Assigned, b.Offline.Assigned, b.Live.Assigned)
		}
	}
	if n, err := Compare(first, second, 0.10, 0.50); err != nil || n != 2 {
		t.Fatalf("self-compare: %d cells, err %v", n, err)
	}
}

// setOfflineRate rescales one cell's offline assignment rate, keeping the
// derived fidelity_gap consistent so only the rate gate is exercised.
func setOfflineRate(c *Cell, rate float64) {
	c.Offline.AssignmentRate = rate
	c.FidelityGap = c.Offline.AssignmentRate - c.Live.AssignmentRate
}

func TestCompareDetectsRegression(t *testing.T) {
	base, err := Run(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	cur := *base
	cur.Results = append([]Cell(nil), base.Results...)
	setOfflineRate(&cur.Results[0], base.Results[0].Offline.AssignmentRate*0.5)
	if _, err := Compare(base, &cur, 0.10, 0.50); err == nil {
		t.Fatal("halved assignment rate must fail the gate")
	} else if !strings.Contains(err.Error(), "regression") {
		t.Fatalf("unexpected error: %v", err)
	}
	// A drop inside the tolerance passes.
	setOfflineRate(&cur.Results[0], base.Results[0].Offline.AssignmentRate*0.95)
	if _, err := Compare(base, &cur, 0.10, 0.50); err != nil {
		t.Fatalf("5%% drop within 10%% tolerance must pass: %v", err)
	}
}

// TestCompareDetectsEpochP95Blowup pins the latency gate: an epoch-p95
// regression beyond the separate tolerance fails even though every
// assignment rate is unchanged — but only for cells whose baseline p95 is
// above the one-millisecond noise floor.
func TestCompareDetectsEpochP95Blowup(t *testing.T) {
	run, err := Run(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Lift the baseline cell above the noise floor so the gate applies.
	base := *run
	base.Results = append([]Cell(nil), run.Results...)
	base.Results[0].Live.EpochP95NS = 20_000_000
	base.Results[0].Live.EpochP99NS = 20_000_001
	cur := base
	cur.Results = append([]Cell(nil), base.Results...)
	cur.Results[0].Live.EpochP95NS = base.Results[0].Live.EpochP95NS * 3
	cur.Results[0].Live.EpochP99NS = cur.Results[0].Live.EpochP95NS + 1
	if _, err := Compare(&base, &cur, 0.10, 0.50); err == nil {
		t.Fatal("3x epoch p95 must fail the 50% growth gate")
	} else if !strings.Contains(err.Error(), "epoch p95") {
		t.Fatalf("unexpected error: %v", err)
	}
	// The same report passes with the latency gate disabled.
	if _, err := Compare(&base, &cur, 0.10, 0); err != nil {
		t.Fatalf("disabled latency gate must pass: %v", err)
	}
	// Growth within tolerance passes.
	cur.Results[0].Live.EpochP95NS = base.Results[0].Live.EpochP95NS * 14 / 10
	cur.Results[0].Live.EpochP99NS = cur.Results[0].Live.EpochP95NS + 1
	if _, err := Compare(&base, &cur, 0.10, 0.50); err != nil {
		t.Fatalf("40%% p95 growth within 50%% tolerance must pass: %v", err)
	}
	// A lightweight baseline gates against the 10 ms floor, not the raw
	// value: multi-x growth inside the floor's allowance is host noise and
	// passes, but a blowup past the floor still fails.
	tiny := base
	tiny.Results = append([]Cell(nil), base.Results...)
	tiny.Results[0].Live.EpochP95NS = 400_000
	tiny.Results[0].Live.EpochP99NS = 400_001
	cur.Results[0].Live.EpochP95NS = 4_000_000 // 10x, within max(baseline,10ms)*1.5
	cur.Results[0].Live.EpochP99NS = 4_000_001
	if _, err := Compare(&tiny, &cur, 0.10, 0.50); err != nil {
		t.Fatalf("sub-floor noise must not gate on p95: %v", err)
	}
	cur.Results[0].Live.EpochP95NS = 500_000_000 // 0.4ms → 500ms blowup
	cur.Results[0].Live.EpochP99NS = 500_000_001
	if _, err := Compare(&tiny, &cur, 0.10, 0.50); err == nil {
		t.Fatal("sub-floor baseline blowing up past the floor must fail the gate")
	}
}

func TestCompareRejectsDisjointReports(t *testing.T) {
	base, err := Run(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	cur := *base
	cur.Results = append([]Cell(nil), base.Results...)
	for i := range cur.Results {
		cur.Results[i].Scenario = "renamed-" + cur.Results[i].Scenario
	}
	if _, err := Compare(base, &cur, 0.10, 0.50); err == nil {
		t.Fatal("disjoint cell sets must not silently pass")
	}
}

func TestValidateRejectsMalformedReports(t *testing.T) {
	good, err := Run(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Report)
	}{
		{"wrong schema", func(r *Report) { r.Schema = "datawa-bench-suite/0" }},
		{"no results", func(r *Report) { r.Results = nil }},
		{"rate out of range", func(r *Report) { r.Results[0].Offline.AssignmentRate = 1.5 }},
		{"fidelity gap inconsistent", func(r *Report) { r.Results[0].FidelityGap += 0.5 }},
		{"conservation", func(r *Report) { r.Results[0].Live.Assigned = r.Results[0].Tasks + 1 }},
		{"percentile order", func(r *Report) { r.Results[0].Live.EpochP50NS = r.Results[0].Live.EpochP99NS + 1 }},
		{"missing scenario", func(r *Report) { r.Results[0].Scenario = "" }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := *good
			bad.Results = append([]Cell(nil), good.Results...)
			tc.mutate(&bad)
			if err := bad.Validate(); err == nil {
				t.Fatal("malformed report passed validation")
			}
		})
	}
}

// TestValidateAcceptsLegacySchema keeps committed v1 snapshots usable as
// -compare baselines: the legacy tag passes validation, and its zero-valued
// fidelity_gap fields are not held to the v2 consistency check.
func TestValidateAcceptsLegacySchema(t *testing.T) {
	r, err := Run(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	legacy := *r
	legacy.Schema = schemaV1
	legacy.Results = append([]Cell(nil), r.Results...)
	for i := range legacy.Results {
		legacy.Results[i].FidelityGap = 0 // v1 reports never carried the field
	}
	if err := legacy.Validate(); err != nil {
		t.Fatalf("legacy v1 schema must validate: %v", err)
	}
	// v2 carried fidelity_gap and is held to its consistency check.
	v2 := *r
	v2.Schema = legacySchemas[0]
	if err := v2.Validate(); err != nil {
		t.Fatalf("legacy v2 schema must validate: %v", err)
	}
}

// TestCompareFlagsMissingCells pins the coverage gate: a baseline cell
// inside the candidate's scenario/scale/method axes must be present in the
// candidate, while cells outside those axes (a 1x CI run against a 1x+5x
// snapshot) stay legitimately skippable.
func TestCompareFlagsMissingCells(t *testing.T) {
	base, err := Run(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Same axes, one cell silently dropped: error.
	cur := *base
	cur.Results = append([]Cell(nil), base.Results[:1]...)
	if _, err := Compare(base, &cur, 0.10, 0.50); err == nil {
		t.Fatal("dropped in-axes cell must fail the compare")
	} else if !strings.Contains(err.Error(), "missing") {
		t.Fatalf("unexpected error: %v", err)
	}
	// A genuinely narrowed run: the dropped cell's scenario is absent from
	// the candidate's results entirely, so it is outside the candidate's
	// scenario axis and the compare passes on the remaining overlap.
	opts := tinyOptions()
	opts.Scenarios = opts.Scenarios[:1]
	narrow, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := Compare(base, narrow, 0.10, 0.50); err != nil || n != 1 {
		t.Fatalf("narrowed-axes compare: %d cells, err %v", n, err)
	}
}

func TestRunRejectsUnknownScenario(t *testing.T) {
	opts := tinyOptions()
	opts.Scenarios = []string{"atlantis"}
	if _, err := Run(opts); err == nil {
		t.Fatal("unknown scenario must error")
	}
}
