package benchsuite

import (
	"strings"
	"testing"
)

// tinyOptions is a seconds-fast suite slice used by every test here.
func tinyOptions() Options {
	return Options{
		Scenarios: []string{"yueche", "multi-city"},
		Scales:    []float64{0.3},
		Methods:   []string{"Greedy"},
		Step:      4,
		Shards:    2,
	}
}

func TestSuiteRunsAndValidates(t *testing.T) {
	r, err := Run(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(r.Results), 2; got != want {
		t.Fatalf("suite produced %d cells, want %d", got, want)
	}
	for _, c := range r.Results {
		if c.Offline.PlanCalls == 0 || c.Live.Epochs == 0 {
			t.Errorf("%s: empty measurement %+v", c.Scenario, c)
		}
		if c.Live.EventsPerSec <= 0 || c.Offline.EventsPerSec <= 0 {
			t.Errorf("%s: missing throughput", c.Scenario)
		}
	}
}

// TestSuiteAssignmentRatesDeterministic pins the property Compare relies on:
// re-running the same suite slice reproduces assignment outcomes exactly,
// so only genuine regressions trip the CI gate.
func TestSuiteAssignmentRatesDeterministic(t *testing.T) {
	first, err := Run(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := range first.Results {
		a, b := first.Results[i], second.Results[i]
		if a.Offline.Assigned != b.Offline.Assigned || a.Live.Assigned != b.Live.Assigned {
			t.Fatalf("%s: assigned %d/%d vs %d/%d across identical runs",
				a.Scenario, a.Offline.Assigned, a.Live.Assigned, b.Offline.Assigned, b.Live.Assigned)
		}
	}
	if n, err := Compare(first, second, 0.10); err != nil || n != 2 {
		t.Fatalf("self-compare: %d cells, err %v", n, err)
	}
}

func TestCompareDetectsRegression(t *testing.T) {
	base, err := Run(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	cur := *base
	cur.Results = append([]Cell(nil), base.Results...)
	cur.Results[0].Offline.AssignmentRate = base.Results[0].Offline.AssignmentRate * 0.5
	if _, err := Compare(base, &cur, 0.10); err == nil {
		t.Fatal("halved assignment rate must fail the gate")
	} else if !strings.Contains(err.Error(), "regression") {
		t.Fatalf("unexpected error: %v", err)
	}
	// A drop inside the tolerance passes.
	cur.Results[0].Offline.AssignmentRate = base.Results[0].Offline.AssignmentRate * 0.95
	if _, err := Compare(base, &cur, 0.10); err != nil {
		t.Fatalf("5%% drop within 10%% tolerance must pass: %v", err)
	}
}

func TestCompareRejectsDisjointReports(t *testing.T) {
	base, err := Run(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	cur := *base
	cur.Results = append([]Cell(nil), base.Results...)
	for i := range cur.Results {
		cur.Results[i].Scenario = "renamed-" + cur.Results[i].Scenario
	}
	if _, err := Compare(base, &cur, 0.10); err == nil {
		t.Fatal("disjoint cell sets must not silently pass")
	}
}

func TestValidateRejectsMalformedReports(t *testing.T) {
	good, err := Run(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Report)
	}{
		{"wrong schema", func(r *Report) { r.Schema = "datawa-bench-suite/0" }},
		{"no results", func(r *Report) { r.Results = nil }},
		{"rate out of range", func(r *Report) { r.Results[0].Offline.AssignmentRate = 1.5 }},
		{"conservation", func(r *Report) { r.Results[0].Live.Assigned = r.Results[0].Tasks + 1 }},
		{"percentile order", func(r *Report) { r.Results[0].Live.EpochP50NS = r.Results[0].Live.EpochP99NS + 1 }},
		{"missing scenario", func(r *Report) { r.Results[0].Scenario = "" }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := *good
			bad.Results = append([]Cell(nil), good.Results...)
			tc.mutate(&bad)
			if err := bad.Validate(); err == nil {
				t.Fatal("malformed report passed validation")
			}
		})
	}
}

func TestRunRejectsUnknownScenario(t *testing.T) {
	opts := tinyOptions()
	opts.Scenarios = []string{"atlantis"}
	if _, err := Run(opts); err == nil {
		t.Fatal("unknown scenario must error")
	}
}
