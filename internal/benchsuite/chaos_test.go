package benchsuite

import (
	"encoding/json"
	"os"
	"testing"

	"repro"
	"repro/internal/dispatch"
	"repro/internal/obs"
	"repro/internal/scenario"
)

// replayChaos drives one chaos archetype trace through a sharded dispatcher
// under the archetype's overload profile, quiesces to a full drain, and
// returns the final snapshot. Conservation, the lifecycle-ledger chain audit,
// and drain are asserted here, so every caller gets the chaos gate for free.
// Set DATAWA_FLIGHT_DIR to also arm the flight recorder and keep its dumps as
// debugging artifacts (CI uploads them on failure).
func replayChaos(t *testing.T, arch scenario.Archetype, sc *datawa.Scenario, m datawa.Method, shards int) dispatch.Metrics {
	t.Helper()
	fw := datawa.New(datawa.Config{
		Region:   sc.Config.Region,
		GridRows: sc.Config.GridRows, GridCols: sc.Config.GridCols,
		Step: 2, Seed: sc.Config.Seed, MaxSearchNodes: 4000,
	})
	dc := datawa.DispatchConfig{Shards: shards, Step: 2, Now: sc.T0}
	applyOverload(&dc, arch.Overload)
	// The ledger must hold every task's chain, or the post-drain audit would
	// only cover a sample (evictions are asserted zero below).
	dc.Obs.LedgerTasks = len(sc.Tasks) + 1024
	if dir := os.Getenv("DATAWA_FLIGHT_DIR"); dir != "" {
		dc.Obs.FlightDepth = 16
		dc.Obs.FlightDir = dir
	}
	d, err := fw.NewDispatcher(m, dc)
	if err != nil {
		t.Fatal(err)
	}
	dispatch.LoadGen{Events: sc.Events(), T1: sc.T1}.Run(d)
	if !d.Quiesce(quiesceEpochs) {
		t.Fatalf("%s %s shards=%d: did not quiesce within %d epochs: %+v",
			arch.Name, m, shards, quiesceEpochs, d.Snapshot())
	}
	met := d.Snapshot()
	issues, evictions := d.LedgerAudit()
	terminal := met.Assigned + met.Expired + met.Cancelled + int(met.Shed)
	if terminal != len(sc.Tasks) || met.Unroutable != 0 {
		// The ledger names the exact tasks behind the delta: every chain
		// still open (or malformed) after a full drain is a leaked task.
		t.Fatalf("%s %s shards=%d: conservation violated: assigned %d + expired %d + cancelled %d + shed %d = %d, want %d (unroutable %d); ledger audit: %v",
			arch.Name, m, shards, met.Assigned, met.Expired, met.Cancelled, met.Shed,
			terminal, len(sc.Tasks), met.Unroutable, issues)
	}
	if len(issues) != 0 || evictions != 0 {
		t.Fatalf("%s %s shards=%d: lifecycle ledger audit failed (evictions %d): %v",
			arch.Name, m, shards, evictions, issues)
	}
	// The chain terminals must reproduce the snapshot counters exactly —
	// a counter the ledger cannot account for is a double- or un-ledgered
	// disposal.
	terms := d.LedgerTerminals()
	want := map[obs.State]int{}
	if met.Assigned > 0 {
		want[obs.Assigned] = met.Assigned
	}
	if met.Expired > 0 {
		want[obs.Expired] = met.Expired
	}
	if met.Cancelled > 0 {
		want[obs.Cancelled] = met.Cancelled
	}
	if met.Shed > 0 {
		want[obs.Shed] = int(met.Shed)
	}
	for st, n := range want {
		if terms[st] != n {
			t.Fatalf("%s %s shards=%d: ledger has %d %q chains, snapshot counter says %d (full tally %v)",
				arch.Name, m, shards, terms[st], st, n, terms)
		}
	}
	for _, s := range met.Shards {
		if s.Tier != 0 {
			t.Fatalf("%s %s shards=%d: shard %d still on tier %d (%s) after quiesce",
				arch.Name, m, shards, s.Shard, s.Tier, s.TierName)
		}
	}
	return met
}

// TestChaosArchetypes replays every overload-marked atlas archetype through
// the live dispatcher under its admission/governor profile: the replay must
// complete (no panic, no deadlock — Quiesce converges), account for every
// submitted task exactly once, exercise the admission path, and end with
// every shard recovered to the top planner tier.
func TestChaosArchetypes(t *testing.T) {
	chaos := 0
	for _, arch := range scenario.Registry() {
		if arch.Overload == nil {
			continue
		}
		chaos++
		sc := arch.Generate(1)
		met := replayChaos(t, arch, sc, datawa.MethodDTA, 4)
		if met.Shed == 0 && met.Deferred == 0 {
			t.Errorf("%s: admission control never shed or deferred — the archetype does not overload", arch.Name)
		}
		t.Logf("%-13s assigned %4d expired %4d cancelled %3d shed %4d deferred %4d tier↓%d↑%d worst %d",
			arch.Name, met.Assigned, met.Expired, met.Cancelled, met.Shed, met.Deferred,
			met.TierDemotions, met.TierPromotions, met.WorstTier)
	}
	if chaos == 0 {
		t.Fatal("atlas has no chaos archetypes")
	}
}

// TestFlashFloodDegradesAndRecovers pins the governor's end-to-end contract
// on the canonical chaos archetype: during the 50x burst the governor demotes
// the DTA planner at least one tier, and after the burst drains it promotes
// every shard back to the full planner (asserted inside replayChaos).
func TestFlashFloodDegradesAndRecovers(t *testing.T) {
	arch, ok := scenario.Get("flash-flood")
	if !ok {
		t.Fatal("flash-flood archetype missing")
	}
	sc := arch.Generate(1)
	met := replayChaos(t, arch, sc, datawa.MethodDTA, 4)
	if met.WorstTier < 1 {
		t.Errorf("governor never demoted during the burst (worst tier %d)", met.WorstTier)
	}
	if met.TierDemotions == 0 || met.TierPromotions == 0 {
		t.Errorf("tier transitions %d down / %d up; want both non-zero", met.TierDemotions, met.TierPromotions)
	}
	if met.Shed == 0 {
		t.Errorf("a 50x burst against a %d-task pool cap must shed", arch.Overload.MaxOpenTasks)
	}
}

// TestStalledShardDemotesInIsolation pins the governor's per-shard scope on
// the archetype built for it: with every task pinned to one shard band, the
// epoch trace must show the hot shard over budget and demoted while at least
// one idle sibling never leaves the full planner.
func TestStalledShardDemotesInIsolation(t *testing.T) {
	arch, ok := scenario.Get("stalled-shard")
	if !ok {
		t.Fatal("stalled-shard archetype missing")
	}
	sc := arch.Generate(1)
	fw := datawa.New(datawa.Config{
		Region:   sc.Config.Region,
		GridRows: sc.Config.GridRows, GridCols: sc.Config.GridCols,
		Step: 2, Seed: sc.Config.Seed, MaxSearchNodes: 4000,
	})
	dc := datawa.DispatchConfig{Shards: 4, Step: 2, Now: sc.T0, TraceDepth: 4096}
	applyOverload(&dc, arch.Overload)
	d, err := fw.NewDispatcher(datawa.MethodDTA, dc)
	if err != nil {
		t.Fatal(err)
	}
	dispatch.LoadGen{Events: sc.Events(), T1: sc.T1}.Run(d)
	trace := d.Trace(0)
	if len(trace) == 0 {
		t.Fatal("TraceDepth is set but no epoch trace records were retained")
	}
	demoted := make([]bool, 4)
	overBudget := make([]bool, 4)
	for _, e := range trace {
		if len(e.Shards) != 4 {
			t.Fatalf("epoch %d trace has %d shards, want 4", e.Epoch, len(e.Shards))
		}
		for i, s := range e.Shards {
			if s.Tier > 0 {
				demoted[i] = true
			}
			if s.Cost > arch.Overload.BudgetUnits {
				overBudget[i] = true
			}
		}
	}
	hot, idle := 0, 0
	for i := range demoted {
		switch {
		case demoted[i]:
			hot++
			if !overBudget[i] {
				t.Errorf("shard %d demoted without a recorded over-budget epoch", i)
			}
		default:
			idle++
		}
	}
	if hot == 0 {
		t.Error("no shard ever demoted; the hot band never stalled")
	}
	if idle == 0 {
		t.Error("every shard demoted; the idle bands should never leave the full planner")
	}
}

// TestChaosReplayDeterministic pins the suite's comparability contract on
// the chaos path: two full flash-flood replays — admission decisions, tier
// transitions, terminal counters — are byte-identical once wall-clock-only
// fields are blanked, because the governor runs on the deterministic
// work-unit cost function.
func TestChaosReplayDeterministic(t *testing.T) {
	arch, ok := scenario.Get("flash-flood")
	if !ok {
		t.Fatal("flash-flood archetype missing")
	}
	sc := arch.Generate(1)
	normalize := func(m dispatch.Metrics) string {
		m.EpochP50, m.EpochP95, m.EpochP99 = 0, 0, 0
		m.PlanTime = 0
		for i := range m.Shards {
			m.Shards[i].Stats.PlanTime = 0
		}
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	a := normalize(replayChaos(t, arch, sc, datawa.MethodDTA, 4))
	b := normalize(replayChaos(t, arch, sc, datawa.MethodDTA, 4))
	if a != b {
		t.Fatalf("chaos replays diverged\nfirst:  %s\nsecond: %s", a, b)
	}
}
