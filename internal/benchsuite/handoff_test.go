package benchsuite

import (
	"testing"

	"repro"
	"repro/internal/dispatch"
	"repro/internal/scenario"
)

// replayShards runs one archetype trace through a sharded dispatcher and
// returns the final metrics.
func replayShards(t *testing.T, sc *datawa.Scenario, m datawa.Method, shards int) dispatch.Metrics {
	t.Helper()
	fw := datawa.New(datawa.Config{
		Region:   sc.Config.Region,
		GridRows: sc.Config.GridRows, GridCols: sc.Config.GridCols,
		Step: 2, Seed: sc.Config.Seed, MaxSearchNodes: 4000,
	})
	d, err := fw.NewDispatcher(m, datawa.DispatchConfig{Shards: shards, Step: 2, Now: sc.T0})
	if err != nil {
		t.Fatal(err)
	}
	return dispatch.LoadGen{Events: sc.Events(), T1: sc.T1}.Run(d).Metrics
}

// TestShardCountFidelityAcrossAtlas pins the halo handoff's quality bound on
// every scenario archetype at 1x: a sharded run may not trail the 1-shard
// reference by more than 1% of the cell's tasks on either terminal count.
// Exact count equality is not the contract — per-shard planners make
// locally different (frequently slightly better) choices than one global
// planner whenever arbitration breaks a cross-shard tie, and the
// determinism tests pin that those differences are reproducible — but
// before halo handoff the deficit reached double-digit percentages on
// boundary-heavy archetypes, so the 1% band is what "fidelity gap closed"
// means operationally. The test also asserts the protocol is actually
// exercised: every multi-shard run replicates tasks, and somewhere across
// the atlas commits collide and arbitration resolves them.
func TestShardCountFidelityAcrossAtlas(t *testing.T) {
	var totalConflicts, totalHits int64
	for _, name := range scenario.Names() {
		arch, ok := scenario.Get(name)
		if !ok {
			t.Fatalf("archetype %q vanished from the registry", name)
		}
		if arch.Overload != nil {
			// Chaos archetypes saturate the dispatcher by design — e.g.
			// stalled-shard pins all demand to one shard band, so the other
			// shards never replicate a ghost. TestChaosArchetypes covers them
			// under their admission/governor profiles.
			continue
		}
		sc := arch.Generate(1)
		for _, m := range []datawa.Method{datawa.MethodGreedy, datawa.MethodDTA} {
			ref := replayShards(t, sc, m, 1)
			tasks := len(sc.Tasks)
			band := tasks / 100
			if band < 1 {
				band = 1
			}
			for _, shards := range []int{2, 4} {
				got := replayShards(t, sc, m, shards)
				if deficit := ref.Assigned - got.Assigned; deficit > band {
					t.Errorf("%s %s shards=%d: assigned %d trails 1-shard %d by %d (> %d = 1%% of %d tasks)",
						name, m, shards, got.Assigned, ref.Assigned, deficit, band, tasks)
				}
				if excess := got.Expired - ref.Expired; excess > band {
					t.Errorf("%s %s shards=%d: expired %d exceeds 1-shard %d by %d (> %d)",
						name, m, shards, got.Expired, ref.Expired, excess, band)
				}
				if got.GhostCopies == 0 {
					t.Errorf("%s %s shards=%d: no ghost replicas — handoff inactive", name, m, shards)
				}
				totalConflicts += got.CommitConflicts
				totalHits += got.GhostHits
			}
		}
	}
	if totalConflicts == 0 || totalHits == 0 {
		t.Fatalf("atlas produced %d conflicts and %d ghost wins; arbitration is not exercised", totalConflicts, totalHits)
	}
}
