package benchsuite

import (
	"fmt"
	"testing"

	"repro"
	"repro/internal/dispatch"
	"repro/internal/scenario"
)

// replayIncremental runs one archetype trace through a sharded dispatcher
// with incremental replanning on or off and returns the final metrics.
func replayIncremental(t *testing.T, sc *datawa.Scenario, m datawa.Method, shards int, disable bool) dispatch.Metrics {
	t.Helper()
	fw := datawa.New(datawa.Config{
		Region:   sc.Config.Region,
		GridRows: sc.Config.GridRows, GridCols: sc.Config.GridCols,
		Step: 2, Seed: sc.Config.Seed, MaxSearchNodes: 4000,
	})
	d, err := fw.NewDispatcher(m, datawa.DispatchConfig{
		Shards: shards, Step: 2, Now: sc.T0, DisableIncremental: disable,
	})
	if err != nil {
		t.Fatal(err)
	}
	return dispatch.LoadGen{Events: sc.Events(), T1: sc.T1}.Run(d).Metrics
}

// TestIncrementalMatchesFullAcrossAtlas pins the incremental replanner's
// core contract: with dirty-region invalidation and component splicing the
// dispatcher's assignment behavior is byte-identical to full replanning —
// every terminal counter, per-shard stat, and cross-shard handoff counter
// matches exactly on every scenario archetype × method × shard count. The
// test also asserts reuse actually happens somewhere across the atlas (the
// incremental path is exercised, not vacuously equal).
func TestIncrementalMatchesFullAcrossAtlas(t *testing.T) {
	var totalHits int64
	for _, name := range scenario.Names() {
		arch, ok := scenario.Get(name)
		if !ok {
			t.Fatalf("archetype %q vanished from the registry", name)
		}
		if arch.Overload != nil {
			// Chaos archetypes are designed to saturate the dispatcher, not
			// to exercise steady-state reuse: their demand regimes (a 50x
			// burst, a single hot band) can leave some shard × method cells
			// without a quiet component to splice. TestChaosArchetypes covers
			// them under their admission/governor profiles.
			continue
		}
		sc := arch.Generate(1)
		for _, m := range []datawa.Method{datawa.MethodGreedy, datawa.MethodDTA} {
			for _, shards := range []int{1, 2, 4} {
				inc := replayIncremental(t, sc, m, shards, false)
				full := replayIncremental(t, sc, m, shards, true)
				if inc.IncrementalHits == 0 {
					t.Errorf("%s %s shards=%d: incremental path never reused a component", name, m, shards)
				}
				if full.IncrementalHits != 0 || full.ComponentsReplanned != 0 {
					t.Errorf("%s %s shards=%d: disabled run reports incremental counters %d/%d",
						name, m, shards, full.IncrementalHits, full.ComponentsReplanned)
				}
				// Blank the fields that legitimately differ (reuse counters,
				// wall-clock latencies) and require everything else equal.
				normalize := func(mm dispatch.Metrics) dispatch.Metrics {
					mm.IncrementalHits, mm.ComponentsReplanned = 0, 0
					mm.EpochP50, mm.EpochP95, mm.EpochP99 = 0, 0, 0
					mm.PlanTime = 0
					for i := range mm.Shards {
						mm.Shards[i].Stats.PlanTime = 0
					}
					return mm
				}
				a, b := normalize(inc), normalize(full)
				if len(a.Shards) != len(b.Shards) {
					t.Fatalf("%s %s shards=%d: shard count diverged", name, m, shards)
				}
				for i := range a.Shards {
					if a.Shards[i] != b.Shards[i] {
						t.Errorf("%s %s shards=%d: shard %d stats diverged\nincremental: %+v\nfull:        %+v",
							name, m, shards, i, a.Shards[i], b.Shards[i])
					}
				}
				a.Shards, b.Shards = nil, nil
				if av, bv := fmt.Sprintf("%+v", a), fmt.Sprintf("%+v", b); av != bv {
					t.Errorf("%s %s shards=%d: metrics diverged\nincremental: %s\nfull:        %s",
						name, m, shards, av, bv)
				}
				totalHits += inc.IncrementalHits
			}
		}
	}
	if totalHits == 0 {
		t.Fatal("atlas produced no incremental hits; the cache is never reused")
	}
}
