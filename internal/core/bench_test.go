package core

import (
	"testing"

	"repro/internal/geo"
)

// BenchmarkArrivalTimes measures Eq. 1 evaluation, the innermost loop of
// sequence validity checking.
func BenchmarkArrivalTimes(b *testing.B) {
	w := worker(1, 0, 0, 5, 0, 1e9)
	q := Sequence{
		task(1, 0.3, 0.1, 0, 1e9),
		task(2, 0.5, 0.4, 0, 1e9),
		task(3, 0.9, 0.2, 0, 1e9),
	}
	m := geo.NewTravelModel(0.005)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ArrivalTimes(w.Loc, 0, q, m)
	}
}

// BenchmarkValidSequence measures a full Definition 4 check.
func BenchmarkValidSequence(b *testing.B) {
	w := worker(1, 0, 0, 5, 0, 1e9)
	q := Sequence{
		task(1, 0.3, 0.1, 0, 1e9),
		task(2, 0.5, 0.4, 0, 1e9),
		task(3, 0.9, 0.2, 0, 1e9),
	}
	m := geo.NewTravelModel(0.005)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ValidSequence(w, 0, q, m)
	}
}
