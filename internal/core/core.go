// Package core defines the domain model of the DATA-WA paper (Section II):
// spatial tasks, workers with availability windows, task sequences, sequence
// validity, and spatial task assignments.
//
// All times are seconds on a single scenario clock; distances are kilometers
// (see internal/geo).
package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geo"
)

// Task is a spatial task s = (l, p, e) per Definition 1: a location, a
// publication time, and an expiration time. A task is performed exactly once,
// at its location.
type Task struct {
	ID  int
	Loc geo.Point
	// Pub is the publication time s.p; the task does not exist before it.
	Pub float64
	// Exp is the expiration time s.e; the task must be reached strictly
	// before it.
	Exp float64
	// Virtual marks tasks synthesized by the demand predictor. Virtual
	// tasks participate in planning (they steer workers toward future
	// demand) but are never counted as assigned.
	Virtual bool
	// Cell is the grid cell this task was generated in, when known.
	// Negative means unknown.
	Cell int
	// SampleBits marks which sampled demand scenarios contain this virtual
	// task: bit k set means scenario k materialized it. Zero means the task
	// belongs to every scenario — the point-forecast virtuals and all real
	// tasks, so planners unaware of scenario sampling need no special case.
	// Only the scenario-sampling forecaster (predict.ScenarioSampler) sets
	// nonzero bits, and only the SSP planner reads them.
	SampleBits uint64
}

// Valid reports whether the task window is internally consistent.
func (s *Task) Valid() bool { return s != nil && s.Exp > s.Pub }

// String implements fmt.Stringer.
func (s *Task) String() string {
	kind := "task"
	if s.Virtual {
		kind = "vtask"
	}
	return fmt.Sprintf("%s#%d@(%.2f,%.2f)[%.0f,%.0f)", kind, s.ID, s.Loc.X, s.Loc.Y, s.Pub, s.Exp)
}

// Worker is an online worker w = (l, d, on, off) per Definition 2.
type Worker struct {
	ID  int
	Loc geo.Point
	// Reach is the reachable distance w.d in kilometers.
	Reach float64
	// On and Off delimit the availability window [on, off): the period the
	// worker accepts task assignments.
	On  float64
	Off float64
}

// Available reports whether the worker's availability window contains t.
func (w *Worker) Available(t float64) bool {
	return w != nil && t >= w.On && t < w.Off
}

// Window returns the length of the availability window off − on.
func (w *Worker) Window() float64 { return w.Off - w.On }

// String implements fmt.Stringer.
func (w *Worker) String() string {
	return fmt.Sprintf("worker#%d@(%.2f,%.2f)d=%.2f[%.0f,%.0f)", w.ID, w.Loc.X, w.Loc.Y, w.Reach, w.On, w.Off)
}

// Sequence is an ordered task sequence R(S_w) per Definition 3: the order in
// which a worker performs its assigned tasks.
type Sequence []*Task

// IDs returns the task ids in order, for diagnostics and stable hashing.
func (q Sequence) IDs() []int {
	out := make([]int, len(q))
	for i, s := range q {
		out[i] = s.ID
	}
	return out
}

// Clone returns a copy of the sequence sharing the task pointers.
func (q Sequence) Clone() Sequence {
	out := make(Sequence, len(q))
	copy(out, q)
	return out
}

// SetKey returns a canonical key identifying the *set* of tasks in q,
// independent of order. Sequences with equal SetKey contain the same tasks.
func (q Sequence) SetKey() string {
	ids := q.IDs()
	sort.Ints(ids)
	b := make([]byte, 0, len(ids)*4)
	for _, id := range ids {
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return string(b)
}

// CountReal returns the number of non-virtual tasks in q.
func (q Sequence) CountReal() int {
	n := 0
	for _, s := range q {
		if !s.Virtual {
			n++
		}
	}
	return n
}

// ArrivalTimes computes the arrival time of worker w at each task of q,
// starting from location `from` at time `now`, per Eq. 1 of the paper:
//
//	t(s_1) = now + c(w.l, s_1.l)
//	t(s_i) = t(s_{i-1}) + c(s_{i-1}.l, s_i.l)
//
// One extension is required by demand prediction: a worker that arrives at a
// virtual task before its publication waits until the task is published, so
// the effective arrival is max(raw arrival, s.Pub). For current (already
// published) tasks this is the identity, matching the paper exactly.
func ArrivalTimes(from geo.Point, now float64, q Sequence, tm geo.TravelModel) []float64 {
	out := make([]float64, len(q))
	loc, t := from, now
	for i, s := range q {
		t += tm.Time(loc, s.Loc)
		if t < s.Pub {
			t = s.Pub
		}
		out[i] = t
		loc = s.Loc
	}
	return out
}

// CompletionTime returns the arrival time at the last task of q, or now for
// an empty sequence.
func CompletionTime(from geo.Point, now float64, q Sequence, tm geo.TravelModel) float64 {
	if len(q) == 0 {
		return now
	}
	at := ArrivalTimes(from, now, q, tm)
	return at[len(at)-1]
}

// ValidSequence reports whether q is a valid task sequence VR(S_w) for w at
// time now per Definition 4:
//
//	(i)   every task is reached strictly before its expiration time,
//	(ii)  every task is reached strictly before the worker's off time,
//	(iii) every task lies within the worker's reachable distance of the
//	      worker's current location.
func ValidSequence(w *Worker, now float64, q Sequence, tm geo.TravelModel) bool {
	if w == nil {
		return false
	}
	at := ArrivalTimes(w.Loc, now, q, tm)
	for i, s := range q {
		if at[i] >= s.Exp {
			return false
		}
		if at[i] >= w.Off {
			return false
		}
		if geo.Dist(w.Loc, s.Loc) >= w.Reach {
			return false
		}
	}
	return true
}

// Assignment pairs a worker with its (valid) scheduled task sequence,
// one element of a spatial task assignment A per Definition 5.
type Assignment struct {
	Worker *Worker
	Seq    Sequence
}

// Plan is a spatial task assignment A: a set of (worker, sequence) pairs.
// Each task appears in at most one sequence (single task assignment mode).
type Plan []Assignment

// Tasks returns A.S: the set of all tasks assigned across workers,
// in deterministic order.
func (p Plan) Tasks() []*Task {
	var out []*Task
	for _, a := range p {
		out = append(out, a.Seq...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Size returns |A.S|, the number of assigned tasks (virtual included).
func (p Plan) Size() int {
	n := 0
	for _, a := range p {
		n += len(a.Seq)
	}
	return n
}

// RealSize returns the number of assigned non-virtual tasks.
func (p Plan) RealSize() int {
	n := 0
	for _, a := range p {
		n += a.Seq.CountReal()
	}
	return n
}

// Consistent verifies the single-task-assignment invariant: no task id
// appears twice in the plan. It returns the first duplicated id, if any.
func (p Plan) Consistent() (int, bool) {
	seen := make(map[int]bool)
	for _, a := range p {
		for _, s := range a.Seq {
			if seen[s.ID] {
				return s.ID, false
			}
			seen[s.ID] = true
		}
	}
	return 0, true
}

// SortTasksByPub sorts tasks by publication time, breaking ties by id,
// in place. Generators and the stream engine rely on this ordering.
func SortTasksByPub(tasks []*Task) {
	sort.Slice(tasks, func(i, j int) bool {
		if tasks[i].Pub != tasks[j].Pub {
			return tasks[i].Pub < tasks[j].Pub
		}
		return tasks[i].ID < tasks[j].ID
	})
}

// SortWorkersByOn sorts workers by online time, breaking ties by id, in place.
func SortWorkersByOn(ws []*Worker) {
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].On != ws[j].On {
			return ws[i].On < ws[j].On
		}
		return ws[i].ID < ws[j].ID
	})
}

// MinExp returns the smallest expiration among tasks, or +Inf when empty.
func MinExp(tasks []*Task) float64 {
	m := math.Inf(1)
	for _, s := range tasks {
		if s.Exp < m {
			m = s.Exp
		}
	}
	return m
}
