package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geo"
)

var tm = geo.NewTravelModel(0.01) // 10 m/s

func task(id int, x, y, pub, exp float64) *Task {
	return &Task{ID: id, Loc: geo.Point{X: x, Y: y}, Pub: pub, Exp: exp, Cell: -1}
}

func worker(id int, x, y, reach, on, off float64) *Worker {
	return &Worker{ID: id, Loc: geo.Point{X: x, Y: y}, Reach: reach, On: on, Off: off}
}

func TestTaskValid(t *testing.T) {
	if !task(1, 0, 0, 0, 10).Valid() {
		t.Error("well-formed task should be valid")
	}
	if task(1, 0, 0, 10, 10).Valid() {
		t.Error("zero-length window should be invalid")
	}
	var nilTask *Task
	if nilTask.Valid() {
		t.Error("nil task should be invalid")
	}
}

func TestWorkerAvailable(t *testing.T) {
	w := worker(1, 0, 0, 1, 10, 20)
	for _, c := range []struct {
		t    float64
		want bool
	}{{9, false}, {10, true}, {15, true}, {20, false}, {25, false}} {
		if got := w.Available(c.t); got != c.want {
			t.Errorf("Available(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	if w.Window() != 10 {
		t.Errorf("Window = %v", w.Window())
	}
}

func TestArrivalTimesEq1(t *testing.T) {
	// Worker at origin, tasks 1 km apart along x. Speed 10 m/s => 100 s/km.
	q := Sequence{task(1, 1, 0, 0, 1e9), task(2, 2, 0, 0, 1e9)}
	at := ArrivalTimes(geo.Point{}, 50, q, tm)
	if math.Abs(at[0]-150) > 1e-9 {
		t.Errorf("arrival at first = %v, want 150", at[0])
	}
	if math.Abs(at[1]-250) > 1e-9 {
		t.Errorf("arrival at second = %v, want 250", at[1])
	}
}

func TestArrivalTimesWaitsForPublication(t *testing.T) {
	// The virtual task publishes at t=500; the worker arrives at 100 and
	// must wait.
	q := Sequence{task(1, 1, 0, 500, 1e9), task(2, 2, 0, 0, 1e9)}
	at := ArrivalTimes(geo.Point{}, 0, q, tm)
	if at[0] != 500 {
		t.Errorf("arrival should wait for publication: got %v", at[0])
	}
	if math.Abs(at[1]-600) > 1e-9 {
		t.Errorf("second arrival = %v, want 600", at[1])
	}
}

func TestCompletionTime(t *testing.T) {
	if got := CompletionTime(geo.Point{}, 42, nil, tm); got != 42 {
		t.Errorf("empty sequence completion = %v, want now", got)
	}
	q := Sequence{task(1, 1, 0, 0, 1e9)}
	if got := CompletionTime(geo.Point{}, 0, q, tm); math.Abs(got-100) > 1e-9 {
		t.Errorf("completion = %v, want 100", got)
	}
}

func TestValidSequenceConstraints(t *testing.T) {
	w := worker(1, 0, 0, 1.5, 0, 1000)
	ok := Sequence{task(1, 1, 0, 0, 200)}
	if !ValidSequence(w, 0, ok, tm) {
		t.Error("sequence satisfying all constraints should be valid")
	}
	// (i) expiration violated: arrival 100 >= exp 100.
	expired := Sequence{task(1, 1, 0, 0, 100)}
	if ValidSequence(w, 0, expired, tm) {
		t.Error("arrival at expiration must be invalid (strict)")
	}
	// (ii) off time violated.
	wShort := worker(2, 0, 0, 1.5, 0, 100)
	if ValidSequence(wShort, 0, ok, tm) {
		t.Error("arrival at off time must be invalid (strict)")
	}
	// (iii) out of reach from the worker's current location.
	far := Sequence{task(1, 2, 0, 0, 1e9)}
	if ValidSequence(w, 0, far, tm) {
		t.Error("task beyond reach must be invalid")
	}
	if ValidSequence(nil, 0, ok, tm) {
		t.Error("nil worker must be invalid")
	}
	if !ValidSequence(w, 0, nil, tm) {
		t.Error("empty sequence is trivially valid")
	}
}

func TestValidSequenceReachIsFromStart(t *testing.T) {
	// Def 4 (iii) measures reach from the worker's current location, so a
	// chain of 0.9 km hops with reach 1.0 is invalid once a task is >1 km
	// from the start.
	w := worker(1, 0, 0, 1.0, 0, 1e9)
	q := Sequence{task(1, 0.9, 0, 0, 1e9), task(2, 1.8, 0, 0, 1e9)}
	if ValidSequence(w, 0, q, tm) {
		t.Error("second task is out of reach of the start location")
	}
}

func TestSequenceSetKeyOrderIndependent(t *testing.T) {
	a, b, c := task(1, 0, 0, 0, 1), task(2, 0, 0, 0, 1), task(300, 0, 0, 0, 1)
	q1 := Sequence{a, b, c}
	q2 := Sequence{c, a, b}
	if q1.SetKey() != q2.SetKey() {
		t.Error("SetKey must be order independent")
	}
	q3 := Sequence{a, b}
	if q1.SetKey() == q3.SetKey() {
		t.Error("different sets must differ")
	}
}

func TestSequenceSetKeyProperty(t *testing.T) {
	f := func(ids []int, seed int64) bool {
		if len(ids) == 0 {
			return true
		}
		q := make(Sequence, len(ids))
		for i, id := range ids {
			q[i] = task(id&0xffff, 0, 0, 0, 1)
		}
		shuffled := q.Clone()
		r := rand.New(rand.NewSource(seed))
		r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		return q.SetKey() == shuffled.SetKey()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSequenceCountReal(t *testing.T) {
	v := task(9, 0, 0, 0, 1)
	v.Virtual = true
	q := Sequence{task(1, 0, 0, 0, 1), v, task(2, 0, 0, 0, 1)}
	if q.CountReal() != 2 {
		t.Errorf("CountReal = %d, want 2", q.CountReal())
	}
}

func TestPlanSizeAndConsistency(t *testing.T) {
	w1, w2 := worker(1, 0, 0, 1, 0, 10), worker(2, 0, 0, 1, 0, 10)
	t1, t2, t3 := task(1, 0, 0, 0, 1), task(2, 0, 0, 0, 1), task(3, 0, 0, 0, 1)
	p := Plan{{w1, Sequence{t1, t2}}, {w2, Sequence{t3}}}
	if p.Size() != 3 {
		t.Errorf("Size = %d", p.Size())
	}
	if _, ok := p.Consistent(); !ok {
		t.Error("plan without duplicates should be consistent")
	}
	bad := Plan{{w1, Sequence{t1}}, {w2, Sequence{t1}}}
	if id, ok := bad.Consistent(); ok || id != 1 {
		t.Errorf("Consistent = (%d,%v), want (1,false)", id, ok)
	}
	ids := p.Tasks()
	if len(ids) != 3 || ids[0].ID != 1 || ids[2].ID != 3 {
		t.Errorf("Tasks() = %v", ids)
	}
}

func TestPlanRealSize(t *testing.T) {
	v := task(5, 0, 0, 0, 1)
	v.Virtual = true
	p := Plan{{worker(1, 0, 0, 1, 0, 10), Sequence{task(1, 0, 0, 0, 1), v}}}
	if p.RealSize() != 1 {
		t.Errorf("RealSize = %d", p.RealSize())
	}
	if p.Size() != 2 {
		t.Errorf("Size = %d", p.Size())
	}
}

func TestSorters(t *testing.T) {
	tasks := []*Task{task(3, 0, 0, 5, 9), task(1, 0, 0, 1, 9), task(2, 0, 0, 1, 9)}
	SortTasksByPub(tasks)
	if tasks[0].ID != 1 || tasks[1].ID != 2 || tasks[2].ID != 3 {
		t.Errorf("task order = %v,%v,%v", tasks[0].ID, tasks[1].ID, tasks[2].ID)
	}
	ws := []*Worker{worker(2, 0, 0, 1, 7, 9), worker(1, 0, 0, 1, 3, 9), worker(3, 0, 0, 1, 3, 9)}
	SortWorkersByOn(ws)
	if ws[0].ID != 1 || ws[1].ID != 3 || ws[2].ID != 2 {
		t.Errorf("worker order = %v,%v,%v", ws[0].ID, ws[1].ID, ws[2].ID)
	}
}

func TestMinExp(t *testing.T) {
	if !math.IsInf(MinExp(nil), 1) {
		t.Error("MinExp(nil) should be +Inf")
	}
	tasks := []*Task{task(1, 0, 0, 0, 30), task(2, 0, 0, 0, 20)}
	if MinExp(tasks) != 20 {
		t.Errorf("MinExp = %v", MinExp(tasks))
	}
}

func TestValidSequencePrefixProperty(t *testing.T) {
	// Invariant: every prefix of a valid sequence is valid.
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		w := worker(1, r.Float64()*2, r.Float64()*2, 0.5+r.Float64()*2, 0, 100+r.Float64()*2000)
		var q Sequence
		n := 1 + r.Intn(4)
		for i := 0; i < n; i++ {
			q = append(q, task(i, r.Float64()*3, r.Float64()*3, 0, 100+r.Float64()*3000))
		}
		if !ValidSequence(w, 0, q, tm) {
			continue
		}
		for k := 0; k <= len(q); k++ {
			if !ValidSequence(w, 0, q[:k], tm) {
				t.Fatalf("prefix %d of valid sequence is invalid", k)
			}
		}
	}
}

func TestStringers(t *testing.T) {
	s := task(1, 1.5, 1.2, 1, 4)
	if s.String() == "" {
		t.Error("task String empty")
	}
	s.Virtual = true
	if s.String() == "" {
		t.Error("vtask String empty")
	}
	w := worker(1, 0.5, 1, 1.2, 1, 9)
	if w.String() == "" {
		t.Error("worker String empty")
	}
}
