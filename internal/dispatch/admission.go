package dispatch

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
)

// AdmissionConfig bounds the ingest path. The zero value admits everything —
// the pre-admission behavior. With admission on, a saturated dispatcher sheds
// or defers work by task deadline instead of letting the open pool (and with
// it the epoch latency) grow without bound: the most deferrable work — the
// latest deadlines — yields first, and work too close to its deadline to ever
// be served under the backlog is shed outright. Every decision happens under
// the epoch lock in event order, so the shed/defer stream is a pure function
// of the event stream, like everything else in the dispatcher.
type AdmissionConfig struct {
	// MaxOpenTasks caps the open task pool across all shards. A submit
	// arriving at a full pool either displaces the open task with the
	// latest deadline (when the newcomer's deadline is strictly earlier —
	// urgent work is never locked out by stale backlog) or is itself
	// deferred or shed. Displaced tasks defer when they still have at
	// least DeferSlack of validity left, and shed otherwise; ghost replicas
	// are dropped with their owner and FTA reservations release. 0 = no
	// pool cap.
	MaxOpenTasks int
	// MaxSubmitsPerEpoch caps task admissions per planning epoch — the
	// bounded-queue face of backpressure. Excess due submits are deferred
	// one epoch (or shed when their remaining validity is below
	// DeferSlack). Worker, cancel, and position events are never deferred:
	// they are cheap and dropping them would corrupt liveness accounting.
	// 0 = unbounded.
	MaxSubmitsPerEpoch int
	// DeferSlack is the minimum remaining validity (seconds of logical
	// time) a task needs to be deferred rather than shed (default 2·Step):
	// deferring a task that would expire before it could plausibly be
	// replanned only converts a shed into an expiry one epoch later.
	DeferSlack float64
}

// enabled reports whether any admission bound is active.
func (a AdmissionConfig) enabled() bool {
	return a.MaxOpenTasks > 0 || a.MaxSubmitsPerEpoch > 0
}

// deferSlackLocked resolves the configured defer slack.
func (d *Dispatcher) deferSlackLocked() float64 {
	if s := d.cfg.Admission.DeferSlack; s > 0 {
		return s
	}
	return 2 * d.cfg.Step
}

// deferOrShedLocked disposes of a task the dispatcher cannot admit right now:
// requeue it one epoch ahead when it still has DeferSlack of validity, shed
// it otherwise. The task is not in any shard; the caller already removed it
// or never admitted it. cause names the admission pressure for the ledger.
//
//datawa:locked(mu)
func (d *Dispatcher) deferOrShedLocked(s *core.Task, t float64, cause string) {
	if s.Exp-t >= d.deferSlackLocked() {
		d.pending.push(pendingEvent{
			ev:       Event{Time: t + d.cfg.Step, Kind: KindTaskSubmit, Task: s},
			seq:      d.seqCtr.Add(1),
			requeued: true,
		})
		d.deferred++
		d.recordTask(s.ID, obs.Deferred, -1, 0, cause)
		return
	}
	d.shedIngest++
	d.recordTask(s.ID, obs.Shed, -1, 0, cause+"; not enough validity to defer")
}

// admitOverCapLocked decides what gives way when a submit hits a full open
// pool: the newcomer, or the open task with the latest deadline. It returns
// true when the newcomer may be admitted (a victim was displaced), false when
// the newcomer itself was deferred or shed.
func (d *Dispatcher) admitOverCapLocked(s *core.Task, t float64) bool {
	if v, ok := d.peekVictimLocked(); ok && v.exp > s.Exp {
		d.displaceLocked(v, t, fmt.Sprintf("displaced by task %d", s.ID))
		return true
	}
	d.deferOrShedLocked(s, t, "pool full")
	return false
}

// displaceLocked removes an open task from its shard (and every ghost
// replica, and any FTA reservation — ShedTask/DropTask release the pin) and
// either requeues it one epoch ahead or sheds it, by the DeferSlack rule.
// cause names the newcomer that pushed the victim out, for the ledger.
//
//datawa:locked(mu)
func (d *Dispatcher) displaceLocked(v victim, t float64, cause string) {
	d.recordTask(v.id, obs.Displaced, v.shard, 0, cause)
	if v.task.Exp-t >= d.deferSlackLocked() {
		d.shards[v.shard].DropTask(v.id)
		d.dropGhostsLocked(v.id)
		delete(d.taskOf, v.id)
		d.pending.push(pendingEvent{
			ev:       Event{Time: t + d.cfg.Step, Kind: KindTaskSubmit, Task: v.task},
			seq:      d.seqCtr.Add(1),
			requeued: true,
		})
		d.deferred++
		d.recordTask(v.id, obs.Deferred, -1, 0, "requeued after displacement")
		return
	}
	d.shards[v.shard].ShedTask(v.id)
	d.dropGhostsLocked(v.id)
	delete(d.taskOf, v.id)
	d.recordTask(v.id, obs.Shed, v.shard, 0, cause+"; not enough validity to defer")
}

// dropGhostsLocked removes every ghost replica of a task — replicas must
// leave the planning pools with their owner, or a ghost shard could assign a
// task the admission path already dropped.
//
//datawa:locked(mu)
func (d *Dispatcher) dropGhostsLocked(id int) {
	for _, g := range d.ghosts[id] {
		d.shards[g].DropTask(id)
	}
	delete(d.ghosts, id)
}

// victim is one displacement candidate: an owned open task, keyed by
// deadline. Entries are pushed at admission and validated lazily at pop —
// a task that has since closed, deferred, or changed hands is discarded.
type victim struct {
	exp   float64
	id    int
	task  *core.Task
	shard int
}

// peekVictimLocked returns the latest-deadline live open task, discarding
// stale heap entries. Validation is by pointer identity against the owning
// shard's open pool, so a closed-and-resubmitted id cannot alias.
//
//datawa:locked(mu)
func (d *Dispatcher) peekVictimLocked() (victim, bool) {
	for len(d.victims) > 0 {
		v := d.victims[0]
		if shard, ok := d.taskOf[v.id]; ok && shard == v.shard {
			if cur, open := d.shards[v.shard].OpenTask(v.id); open && cur == v.task {
				return v, true
			}
		}
		d.victims.pop()
	}
	return victim{}, false
}

// victimHeap is a max-heap by (deadline, id): the root is the most
// deferrable open task. Concrete-typed for the same reason as eventHeap —
// container/heap boxes every Push on a path admission control hits per
// admitted task.
type victimHeap []victim

func (h victimHeap) less(i, j int) bool {
	if h[i].exp != h[j].exp {
		return h[i].exp > h[j].exp
	}
	return h[i].id > h[j].id
}

func (h *victimHeap) push(v victim) {
	*h = append(*h, v)
	s := *h
	for i := len(s) - 1; i > 0; {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *victimHeap) pop() victim {
	s := *h
	n := len(s) - 1
	top := s[0]
	s[0] = s[n]
	s[n] = victim{} // release the *core.Task
	*h = s[:n]
	s = s[:n]
	for i := 0; ; {
		kid := 2*i + 1
		if kid >= n {
			break
		}
		if r := kid + 1; r < n && s.less(r, kid) {
			kid = r
		}
		if !s.less(kid, i) {
			break
		}
		s[i], s[kid] = s[kid], s[i]
		i = kid
	}
	return top
}
