package dispatch

import (
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/workload"
)

// conserve asserts the admission-era accounting identity on a drained
// dispatcher: every submitted task is terminal exactly once.
func conserve(t *testing.T, m Metrics, submitted int) {
	t.Helper()
	if got := m.Assigned + m.Expired + m.Cancelled + int(m.Shed); got != submitted {
		t.Fatalf("conservation: assigned %d + expired %d + cancelled %d + shed %d = %d, want %d",
			m.Assigned, m.Expired, m.Cancelled, m.Shed, got, submitted)
	}
}

// TestAdmissionShedAtExactCapacity pins the boundary comparison: a pool at
// exactly MaxOpenTasks is full, so a newcomer that is the least urgent task
// in sight (no later-deadline victim to displace) and has less than
// DeferSlack of validity is shed, not admitted and not deferred.
func TestAdmissionShedAtExactCapacity(t *testing.T) {
	d := New(Config{
		Shards: 1, Step: 1, Travel: travel, NewPlanner: greedyFactory(),
		// DeferSlack beyond every deadline in the test forces the shed branch,
		// so each decision is terminal and directly observable.
		Admission: AdmissionConfig{MaxOpenTasks: 2, DeferSlack: 10000},
	})
	d.SubmitTask(&core.Task{ID: 1, Loc: geo.Point{X: 0.1}, Pub: 0, Exp: 500, Cell: -1})
	d.SubmitTask(&core.Task{ID: 2, Loc: geo.Point{X: 0.2}, Pub: 0, Exp: 600, Cell: -1})
	d.Advance(1)
	if m := d.Snapshot(); m.RoutedTasks != 2 || m.Shed != 0 {
		t.Fatalf("after filling to capacity: open %d shed %d, want 2/0", m.RoutedTasks, m.Shed)
	}
	// Latest deadline in sight: no victim qualifies, the newcomer yields.
	d.SubmitTask(&core.Task{ID: 3, Loc: geo.Point{X: 0.3}, Pub: 1, Exp: 700, Cell: -1})
	d.Advance(2)
	m := d.Snapshot()
	if m.RoutedTasks != 2 || m.Shed != 1 || m.Deferred != 0 {
		t.Fatalf("over-cap newcomer: open %d shed %d deferred %d, want 2/1/0", m.RoutedTasks, m.Shed, m.Deferred)
	}
	// Earlier deadline than the latest victim: the victim (task 2, exp 600)
	// is displaced and — under the huge slack threshold — shed.
	d.SubmitTask(&core.Task{ID: 4, Loc: geo.Point{X: 0.4}, Pub: 2, Exp: 100, Cell: -1})
	d.Advance(3)
	m = d.Snapshot()
	if m.RoutedTasks != 2 || m.Shed != 2 {
		t.Fatalf("displacement: open %d shed %d, want 2/2", m.RoutedTasks, m.Shed)
	}
	// No workers ever came online: the survivors expire, and the ledger
	// accounts all four submits.
	d.Advance(600)
	m = d.Snapshot()
	if m.Expired != 2 {
		t.Fatalf("expired = %d, want 2 (tasks 1 and 4)", m.Expired)
	}
	conserve(t, m, 4)
}

// TestAdmissionDeferredTaskIsRecoverable pins that deferral is non-terminal:
// a displaced task requeues, waits out the backlog, and is eventually
// admitted and served — backpressure reorders work, it does not lose it.
func TestAdmissionDeferredTaskIsRecoverable(t *testing.T) {
	d := New(Config{
		Shards: 1, Step: 1, Travel: travel, NewPlanner: greedyFactory(),
		Admission: AdmissionConfig{MaxOpenTasks: 1},
	})
	d.WorkerOnline(&core.Worker{ID: 1, Loc: geo.Point{X: 0}, Reach: 2, On: 0, Off: 4000})
	d.SubmitTask(&core.Task{ID: 10, Loc: geo.Point{X: 0.5}, Pub: 0, Exp: 1000, Cell: -1})
	d.SubmitTask(&core.Task{ID: 11, Loc: geo.Point{X: 0.4}, Pub: 0, Exp: 500, Cell: -1})
	d.Advance(600)
	m := d.Snapshot()
	if m.Deferred == 0 {
		t.Fatal("the more urgent submit never displaced the open task into a deferral")
	}
	if m.Assigned != 2 {
		t.Fatalf("assigned = %d, want 2 (deferred task must be served once the pool clears)", m.Assigned)
	}
	if m.Shed != 0 {
		t.Fatalf("shed = %d, want 0", m.Shed)
	}
	conserve(t, m, 2)
}

// TestAdmissionDisplacedGhostTaskDropsReplicas pins the halo interaction: when
// admission displaces a boundary task, its ghost replicas leave the
// neighboring planning pools with it — and when the deferral is later
// readmitted, the task is re-replicated and stays fully servable.
func TestAdmissionDisplacedGhostTaskDropsReplicas(t *testing.T) {
	cfg := handoffConfig(2, 1.5)
	cfg.Admission = AdmissionConfig{MaxOpenTasks: 1}
	d := New(cfg)
	// Boundary task: owned by shard 1, replicated into shard 0.
	d.SubmitTask(&core.Task{ID: 10, Loc: geo.Point{X: 1, Y: 2.1}, Pub: 0, Exp: 900, Cell: -1})
	d.Advance(1)
	if m := d.Snapshot(); m.RoutedGhosts != 1 {
		t.Fatalf("routed ghosts = %d, want 1 before displacement", m.RoutedGhosts)
	}
	// An interior task with a far earlier deadline displaces it (deep enough
	// in shard 0 that its own halo disk stays clear of the boundary).
	d.SubmitTask(&core.Task{ID: 11, Loc: geo.Point{X: 1, Y: 0.3}, Pub: 1, Exp: 60, Cell: -1})
	d.Advance(2)
	m := d.Snapshot()
	if m.Deferred == 0 {
		t.Fatal("boundary task was not deferred by the urgent newcomer")
	}
	if m.RoutedTasks != 1 || m.RoutedGhosts != 0 {
		t.Fatalf("after displacement: open %d ghosts %d, want 1/0 — replicas must leave with their owner", m.RoutedTasks, m.RoutedGhosts)
	}
	// A worker that can only reach the boundary task from the far side of
	// the boundary comes online after the urgent task expires: the readmitted
	// deferral must re-replicate and be served through the new ghost.
	d.Ingest(Event{Time: d.Now(), Kind: KindWorkerOnline,
		Worker: &core.Worker{ID: 1, Loc: geo.Point{X: 1, Y: 1.9}, Reach: 1, On: d.Now(), Off: 4000}})
	d.Advance(800)
	m = d.Snapshot()
	if m.Assigned != 1 || m.Expired != 1 {
		t.Fatalf("assigned/expired = %d/%d, want 1/1 (deferred boundary task served, urgent one expired)", m.Assigned, m.Expired)
	}
	if m.GhostHits != 1 {
		t.Fatalf("ghost hits = %d, want 1 (the readmitted task must be won through its replica)", m.GhostHits)
	}
	conserve(t, m, 2)
}

// TestAdmissionShedsFTAReservedTask pins the fixed-plan interaction: shedding
// a task an FTA plan has reserved (but not yet committed) releases the
// reservation, the worker skips the stale plan head when it gets there, and —
// with its locked plan exhausted — re-enters planning and serves the
// newcomers instead. The counters stay consistent: the shed task is neither
// assigned nor expired.
func TestAdmissionShedsFTAReservedTask(t *testing.T) {
	d := New(Config{
		Shards: 1, Step: 1, Travel: travel, NewPlanner: searchFactory(), Fixed: true,
		Admission: AdmissionConfig{MaxOpenTasks: 2, DeferSlack: 10000},
	})
	d.WorkerOnline(&core.Worker{ID: 1, Loc: geo.Point{X: 0}, Reach: 2, On: 0, Off: 4000})
	// The FTA plan sequences both tasks: task 10 commits immediately (20 s of
	// travel), task 20 stays reserved behind it for later.
	d.SubmitTask(&core.Task{ID: 10, Loc: geo.Point{X: 0.1}, Pub: 0, Exp: 300, Cell: -1})
	d.SubmitTask(&core.Task{ID: 20, Loc: geo.Point{X: 1}, Pub: 0, Exp: 800, Cell: -1})
	d.Advance(5)
	if m := d.Snapshot(); m.Assigned != 1 || m.RoutedTasks != 1 {
		t.Fatalf("reservation setup: assigned %d open %d, want 1/1 (task 10 committed, task 20 reserved)",
			m.Assigned, m.RoutedTasks)
	}
	// Two more urgent submits: the first fills the pool, the second displaces
	// the reserved task 20 (latest deadline), which sheds under the huge
	// slack threshold.
	d.SubmitTask(&core.Task{ID: 30, Loc: geo.Point{X: 0.5}, Pub: 5, Exp: 250, Cell: -1})
	d.SubmitTask(&core.Task{ID: 40, Loc: geo.Point{X: 0.3}, Pub: 5, Exp: 100, Cell: -1})
	d.Advance(6)
	m := d.Snapshot()
	if m.Shed != 1 || m.RoutedTasks != 2 {
		t.Fatalf("displacement: shed %d open %d, want 1/2 (reserved task 20 shed, newcomers admitted)",
			m.Shed, m.RoutedTasks)
	}
	// The worker finishes task 10, skips the stale head, and its exhausted
	// fixed plan re-enters planning for the two newcomers.
	d.Advance(300)
	m = d.Snapshot()
	if m.Assigned != 3 {
		t.Fatalf("assigned = %d, want 3 (the freed worker must serve both newcomers, not idle on a stale reservation)",
			m.Assigned)
	}
	conserve(t, m, 4)
}

// TestAdmissionSubmitCapDefersOverflow pins the per-epoch batch cap: of a
// burst of simultaneous submits only MaxSubmitsPerEpoch are admitted per
// epoch, the overflow defers one epoch at a time, and — with enough validity
// — everything is eventually admitted without a single shed.
func TestAdmissionSubmitCapDefersOverflow(t *testing.T) {
	d := New(Config{
		Shards: 1, Step: 1, Travel: travel, NewPlanner: greedyFactory(),
		Admission: AdmissionConfig{MaxSubmitsPerEpoch: 2},
	})
	for i := 0; i < 6; i++ {
		d.SubmitTask(&core.Task{ID: 10 + i, Loc: geo.Point{X: float64(i) / 10}, Pub: 0, Exp: 500, Cell: -1})
	}
	d.Advance(1)
	if m := d.Snapshot(); m.RoutedTasks != 2 || m.Deferred != 4 {
		t.Fatalf("first epoch: open %d deferred %d, want 2/4", m.RoutedTasks, m.Deferred)
	}
	d.Advance(3)
	m := d.Snapshot()
	if m.RoutedTasks != 6 {
		t.Fatalf("after the backlog drains: open %d, want all 6 admitted", m.RoutedTasks)
	}
	if m.Deferred != 4+2 || m.Shed != 0 {
		t.Fatalf("deferred %d shed %d, want 6/0 (4 then 2 requeues, nothing lost)", m.Deferred, m.Shed)
	}
	d.Advance(600)
	conserve(t, d.Snapshot(), 6)
}

// TestLoadGenCountsShedInsteadOfBlocking pins the load generator's overload
// contract: replaying a trace against a dispatcher that sheds under a tiny
// pool cap terminates at the logical horizon and surfaces the shed and defer
// counters in its result instead of waiting for assignments that can never
// arrive.
func TestLoadGenCountsShedInsteadOfBlocking(t *testing.T) {
	sc := testScenario(t)
	d := New(Config{
		Shards: 2, Grid: sc.Grid, Step: 2, Now: sc.T0, Travel: travel,
		NewPlanner: greedyFactory(),
		Admission:  AdmissionConfig{MaxOpenTasks: 5, DeferSlack: 10000},
	})
	lr := LoadGen{Events: sc.Events(), T1: sc.T1}.Run(d)
	if lr.Shed == 0 {
		t.Fatal("a 5-task pool cap over a full trace must shed")
	}
	if lr.Shed != lr.Metrics.Shed || lr.Deferred != lr.Metrics.Deferred {
		t.Fatalf("result counters %d/%d diverge from snapshot %d/%d",
			lr.Shed, lr.Deferred, lr.Metrics.Shed, lr.Metrics.Deferred)
	}
	if !d.Quiesce(256) {
		t.Fatal("dispatcher failed to drain after the replay")
	}
	conserve(t, d.Snapshot(), len(sc.Tasks))
}

// TestAdmissionDeterministicAcrossParallelism extends the determinism
// contract to the admission path: shed/defer decisions ride the event stream,
// not the scheduler, so a capped replay is byte-identical at every
// parallelism level.
func TestAdmissionDeterministicAcrossParallelism(t *testing.T) {
	cfg := workload.Yueche().Scaled(0.1)
	cfg.HistoryDuration = 0
	sc := workload.Generate(cfg)
	run := func(parallelism int) string {
		d := New(Config{
			Shards: 4, Grid: sc.Grid, Step: 2, Now: sc.T0, Travel: travel,
			NewPlanner:  searchFactory(),
			Parallelism: parallelism,
			Admission:   AdmissionConfig{MaxOpenTasks: 12},
		})
		m := LoadGen{Events: sc.Events(), T1: sc.T1}.Run(d).Metrics
		if m.Shed == 0 && m.Deferred == 0 {
			t.Fatal("capped replay never exercised admission control")
		}
		return digest(m)
	}
	ref := run(1)
	for _, parallelism := range []int{1, 4, 0} {
		if got := run(parallelism); got != ref {
			t.Fatalf("parallelism %d diverged:\n got %s\nwant %s", parallelism, got, ref)
		}
	}
}
