package dispatch

import (
	"fmt"
	"testing"

	"repro/internal/workload"
)

// BenchmarkReplayShards replays one Yueche-scaled trace end to end at
// increasing shard counts, measured at the service boundary (ingest →
// epochs → final snapshot) rather than inside the planner. At small scales
// the per-epoch fan-out overhead dominates; the benchmark exists to track
// where the crossover sits as workloads grow.
func BenchmarkReplayShards(b *testing.B) {
	cfg := workload.Yueche().Scaled(0.05)
	cfg.HistoryDuration = 0
	sc := workload.Generate(cfg)
	events := sc.Events()
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d := New(Config{
					Shards:     shards,
					Grid:       sc.Grid,
					Step:       2,
					Now:        sc.T0,
					Travel:     travel,
					NewPlanner: searchFactory(),
				})
				LoadGen{Events: events, T1: sc.T1}.Run(d)
			}
		})
	}
}

// BenchmarkIngest measures the producer-side cost of one queue append.
func BenchmarkIngest(b *testing.B) {
	d := New(Config{Step: 1, NewPlanner: greedyFactory(), QueueSize: 1 << 20})
	ev := Event{Time: 0, Kind: KindTaskCancel, ID: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%(1<<19) == 0 {
			d.Tick() // drain so the queue never blocks
		}
		d.Ingest(ev)
	}
}
