package dispatch

import (
	"fmt"
	"testing"

	"repro/internal/wire"
	"repro/internal/workload"
)

// BenchmarkReplayShards replays one Yueche-scaled trace end to end at
// increasing shard counts, measured at the service boundary (ingest →
// epochs → final snapshot) rather than inside the planner. At small scales
// the per-epoch fan-out overhead dominates; the benchmark exists to track
// where the crossover sits as workloads grow.
func BenchmarkReplayShards(b *testing.B) {
	cfg := workload.Yueche().Scaled(0.05)
	cfg.HistoryDuration = 0
	sc := workload.Generate(cfg)
	events := sc.Events()
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d := New(Config{
					Shards:     shards,
					Grid:       sc.Grid,
					Step:       2,
					Now:        sc.T0,
					Travel:     travel,
					NewPlanner: searchFactory(),
				})
				LoadGen{Events: events, T1: sc.T1}.Run(d)
			}
		})
	}
}

// BenchmarkIngest measures the producer-side cost of admitting events, across
// both queue shapes (sharded lock-free rings vs. the legacy single channel)
// and both transports (direct per-event Ingest vs. the batched wire path —
// frame decode into a reused buffer plus IngestBatch). Direct cases are one
// event per op; frame cases are one 256-event frame per op, so divide by 256
// to compare per-event cost. Allocations are reported because the batched
// path's per-event amortization is the point of the trajectory.
func BenchmarkIngest(b *testing.B) {
	const batch = 256
	events := make([]wire.Event, batch)
	for i := range events {
		events[i] = wire.Event{Time: 0, Kind: wire.TaskCancel, ID: int64(i + 1)}
	}
	frame, err := wire.AppendFrame(nil, events)
	if err != nil {
		b.Fatal(err)
	}
	for _, shape := range []struct {
		name   string
		single bool
	}{
		{"sharded", false},
		{"channel", true},
	} {
		newDispatcher := func() *Dispatcher {
			return New(Config{
				Step: 1, NewPlanner: greedyFactory(),
				QueueSize: 1 << 20, SingleQueue: shape.single,
			})
		}
		b.Run("direct/"+shape.name, func(b *testing.B) {
			d := newDispatcher()
			ev := Event{Time: 0, Kind: KindTaskCancel, ID: 1}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%(1<<19) == 0 {
					d.Tick() // drain so the queue never blocks
				}
				d.Ingest(ev)
			}
		})
		b.Run("frame/"+shape.name, func(b *testing.B) {
			d := newDispatcher()
			decoded := make([]wire.Event, 0, batch)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%(1<<11) == 0 {
					d.Tick() // drain so the queue never blocks
				}
				var err error
				decoded, _, err = wire.DecodeFrame(frame, decoded[:0])
				if err != nil {
					b.Fatal(err)
				}
				if _, rej := d.IngestBatch(decoded); rej > 0 {
					b.Fatalf("%d events rejected", rej)
				}
			}
		})
	}
}
