// Package dispatch is the live counterpart of internal/stream: a long-running
// assignment service that accepts concurrent events — worker online/offline,
// task submit/cancel, position updates — through a buffered ingest queue,
// batches them into planning epochs at a fixed cadence, and runs each epoch
// through the existing planner stack. The region is sharded over the demand
// grid, one stream.Machine per shard, and independent shards plan in parallel
// via internal/par.
//
// Determinism contract: event routing is a pure function of the event (the
// shard owning the grid cell of the worker's online location or the task's
// location, per the explicit cell→shard ownership map; a worker keeps its
// shard for its whole session), shard machines are deterministic, per-epoch
// shard results land in per-shard slots merged in shard order, and commit
// arbitration works on that merged, ordered commit set. A dispatcher fed one
// event stream from a single producer therefore produces identical
// assignment state on every run at every parallelism level — and with one
// shard it reproduces stream.Engine's Assigned/Expired counts on the same
// trace, which the package tests pin down.
//
// Ingestion (WorkerOnline, SubmitTask, …) is safe from any number of
// goroutines and never touches planner state: producers only append to the
// queue. All planning happens inside Advance/Tick under the dispatcher's
// epoch lock, which Snapshot and PlanOf also take.
//
// Cross-shard handoff (multi-shard): shard ownership is an explicit
// cell→shard map over the demand grid — contiguous row-major bands, so each
// shard's territory has a small boundary surface. A task whose halo disk
// (Config.HaloRadius; by default the largest admitted worker reach) overlaps
// cells owned by other shards is replicated into those shards as a read-only
// ghost candidate, so a worker positioned in or near its own shard's band —
// the steady state, since workers online there and serve nearby tasks — sees
// every task inside its reachability disk regardless of which shard owns it.
// (A worker that task-chains far beyond its band plus the halo radius can
// still miss tasks near its drifted position; the benchmark suite's
// per-cell fidelity_gap bounds the aggregate effect.) Two shards committing
// the same task in one epoch are resolved by a deterministic arbitration
// step after the parallel Step: the earliest-arrival commit wins (worker id,
// then shard id break ties), losers are retracted — the worker resumes the
// rest of its plan in the same instant and re-plans fully next epoch — and
// every surviving copy of a committed task is dropped before the next
// planning instant. Snapshot reports the replication volume (GhostCopies,
// RoutedGhosts), cross-shard wins (GhostHits), and arbitration activity
// (CommitConflicts, Retractions); docs/BENCHMARKS.md records the residual
// fidelity gap per workload in the BENCH_*.json trajectory.
//
// Measurement: Snapshot exposes counters and epoch-latency percentiles;
// LoadGen replays a workload.Scenario trace against a dispatcher for
// closed-loop throughput runs. The benchmark suite (internal/benchsuite,
// cmd/datawa-bench -suite) drives exactly that pair for the live-path
// figures in BENCH_*.json.
package dispatch

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/assign"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/stream"
)

// EventKind tags one ingest event.
type EventKind int

const (
	// KindWorkerOnline admits a worker (Event.Worker).
	KindWorkerOnline EventKind = iota
	// KindWorkerOffline ends a worker's availability window (Event.ID).
	KindWorkerOffline
	// KindTaskSubmit publishes a task (Event.Task).
	KindTaskSubmit
	// KindTaskCancel withdraws an open task (Event.ID).
	KindTaskCancel
	// KindPosition reports an idle worker's position (Event.ID, Event.Loc).
	KindPosition
)

// Event is one ingest-queue entry. Time is the logical instant the event
// takes effect: it is applied at the first epoch t with Time ≤ t.
type Event struct {
	Time   float64
	Kind   EventKind
	Worker *core.Worker // KindWorkerOnline
	Task   *core.Task   // KindTaskSubmit
	ID     int          // KindWorkerOffline, KindTaskCancel, KindPosition
	Loc    geo.Point    // KindPosition
}

// Config parameterizes a Dispatcher.
type Config struct {
	// Shards is the number of region shards (default 1). Each shard owns a
	// deterministic subset of the grid's cells and runs its own planner.
	Shards int
	// Grid partitions the region into cells; an explicit ownership map
	// assigns each shard one contiguous row-major band of cells. Required
	// when Shards > 1; with one shard it is optional but enables incremental
	// replanning (see DisableIncremental).
	Grid geo.Grid
	// DisableIncremental turns off incremental epoch replanning. By default
	// (false), when Grid is set and the method is adaptive (not Fixed), each
	// shard's planner is wrapped in assign.Incremental and its machine tracks
	// the per-epoch dirty cell set: quiet regions of the pool — connected
	// components of the reachability graph untouched since their last (empty)
	// plan — are spliced from cache instead of replanned. Plans are
	// byte-identical either way; only epoch cost changes. Snapshot reports
	// reuse through IncrementalHits and ComponentsReplanned.
	DisableIncremental bool
	// HaloRadius configures cross-shard task handoff, in kilometers: a task
	// whose disk of this radius overlaps grid cells owned by other shards is
	// replicated into those shards as a read-only ghost candidate, and
	// duplicate commits are arbitrated deterministically each epoch. 0 (the
	// default) derives the radius automatically from the largest Reach of
	// any admitted worker, which makes every task visible to every worker
	// whose reachability disk could cover it; a negative value disables
	// replication entirely (boundary workers stay blind to neighbor-shard
	// tasks, the pre-halo behavior). Ignored with one shard.
	HaloRadius float64
	// Step is the epoch length in logical seconds (default 1).
	Step float64
	// Now is the initial logical clock (the first epoch instant).
	Now float64
	// Travel must match the planners' travel model.
	Travel geo.TravelModel
	// Fixed selects FTA semantics (see stream.Config.Fixed).
	Fixed bool
	// NewPlanner builds the planner for one shard. Required unless NewLadder
	// is set. Planners are stateful, so each shard must get its own instance.
	NewPlanner func(shard int) assign.Planner
	// NewLadder builds one shard's degradation ladder: index 0 is the full
	// planner, later entries progressively cheaper fallbacks (e.g. DTA →
	// Greedy → Match). Consulted only when the governor is enabled
	// (Governor.Budget > 0); without it the ladder is the single planner
	// from NewPlanner and the governor has nowhere to step down to.
	NewLadder func(shard int) []assign.Planner
	// Admission bounds the ingest path; the zero value admits everything.
	Admission AdmissionConfig
	// Governor enables SLA-aware planner degradation when Budget > 0: each
	// shard's windowed p95 epoch cost is held under the budget by stepping
	// that shard down the ladder, recovering hysteretically.
	Governor GovernorConfig
	// TraceDepth retains the last N per-epoch trace records for the
	// operability endpoints (0 = tracing off).
	TraceDepth int
	// Obs configures the observability core — stage spans, the per-task
	// lifecycle ledger, and the flight recorder (see ObsConfig). The epoch
	// and stage wall-time histograms are always on.
	Obs ObsConfig
	// Forecast, when non-nil, injects virtual (predicted) tasks. Forecasting
	// is global, not per shard: the model sees the full published stream —
	// per-shard series would dilute demand counts below the materialization
	// threshold — and each materialized virtual task is routed to the shard
	// owning its cell. When the forecaster implements stream.HistoryBounded,
	// older published tasks are pruned so the history feed stays bounded
	// over the service's lifetime.
	Forecast stream.Forecaster
	// Parallelism bounds the goroutines planning one epoch's shards
	// concurrently (0 = one per CPU, 1 = serial). Results are identical at
	// every setting.
	Parallelism int
	// QueueSize is the ingest buffer capacity (default 4096). A producer
	// hitting a full queue spills the backlog into the (unbounded) pending
	// buffer under the epoch lock, so ingestion never drops events and
	// never deadlocks — even for a single goroutine enqueuing a whole trace
	// before the first epoch runs. Sustained overload therefore shows up as
	// pending-buffer growth (Metrics.QueueDepth) and epoch latency, not as
	// lost events.
	QueueSize int
	// SingleQueue selects the legacy single-channel ingest queue instead of
	// the default sharded-by-cell lock-free rings. Event application order —
	// and therefore all assignment state — is identical either way for any
	// serialized event stream: events are globally sequenced and the pending
	// heap replays them by (time, sequence) regardless of queue shape. The
	// knob exists so the property tests and BenchmarkIngest can compare the
	// two paths like-for-like.
	SingleQueue bool
	// LatencyWindow is how many recent epoch latencies feed the percentile
	// snapshot (default 1024).
	LatencyWindow int
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Step <= 0 {
		c.Step = 1
	}
	if c.Travel.Speed <= 0 {
		c.Travel = geo.NewTravelModel(0)
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 4096
	}
	if c.LatencyWindow <= 0 {
		c.LatencyWindow = 1024
	}
	return c
}

// ShardMetrics is one shard's slice of a metrics snapshot.
type ShardMetrics struct {
	Shard   int          `json:"shard"`
	Workers int          `json:"workers"`
	Open    int          `json:"open_tasks"`
	Stats   stream.Stats `json:"stats"`
	// Tier is the shard's current degradation-ladder position (0 = full
	// planner) and TierName the active planner's name; zero/empty without
	// a governor.
	Tier     int    `json:"tier"`
	TierName string `json:"tier_name,omitempty"`
}

// Metrics is a point-in-time snapshot of the dispatcher.
type Metrics struct {
	// Now is the next epoch instant on the logical clock.
	Now float64 `json:"now"`
	// Epochs is the number of planning epochs executed.
	Epochs int `json:"epochs"`
	// Ingested counts events accepted onto the queue; Applied counts events
	// that changed shard state; Unroutable counts events that had no effect
	// — unknown or already-departed ids, and online/submit events
	// duplicating a still-live id.
	Ingested   int64 `json:"ingested"`
	Applied    int64 `json:"applied"`
	Unroutable int64 `json:"unroutable"`
	// QueueDepth is the current ingest backlog (queued + drained-but-undue).
	QueueDepth int `json:"queue_depth"`
	// RoutedWorkers and RoutedTasks are the live routing-map sizes: workers
	// currently active and tasks currently open, as the router sees them.
	RoutedWorkers int `json:"routed_workers"`
	RoutedTasks   int `json:"routed_tasks"`
	// RoutedGhosts is the number of live tasks currently replicated into at
	// least one non-owner shard; GhostCopies counts every replica created
	// over the service's lifetime.
	RoutedGhosts int   `json:"routed_ghosts"`
	GhostCopies  int64 `json:"ghost_copies"`
	// GhostHits counts tasks won by a non-owner shard through a replica —
	// assignments the boundary-blind router would have missed.
	GhostHits int64 `json:"ghost_hits"`
	// CommitConflicts counts tasks committed by more than one shard in the
	// same epoch; Retractions counts the losing commits arbitration undid.
	CommitConflicts int64 `json:"commit_conflicts"`
	Retractions     int64 `json:"retractions"`
	// IncrementalHits counts cached quiet components spliced instead of
	// replanned across all shards and epochs; ComponentsReplanned counts the
	// components that did go through a planner. Both zero when incremental
	// replanning is disabled (Config.DisableIncremental, no Grid, or FTA).
	IncrementalHits     int64 `json:"incremental_hits"`
	ComponentsReplanned int64 `json:"components_replanned"`
	// Assigned/Expired/Cancelled/Repositions aggregate all shards.
	Assigned    int `json:"assigned"`
	Expired     int `json:"expired"`
	Cancelled   int `json:"cancelled"`
	Repositions int `json:"repositions"`
	// Shed counts tasks terminally dropped by admission control — pool
	// displacements (per-shard Stats.Shed) plus ingest-path sheds that
	// never reached a shard. After a full drain, assigned + expired +
	// cancelled + shed accounts every submitted task exactly once.
	// Deferred counts deferral events: non-terminal requeues, one per
	// epoch a task was pushed back, so it can exceed the task count.
	Shed     int64 `json:"shed"`
	Deferred int64 `json:"deferred"`
	// TierDemotions/TierPromotions count governor ladder transitions;
	// WorstTier is the deepest tier any shard reached. All zero without a
	// governor.
	TierDemotions  int64 `json:"tier_demotions"`
	TierPromotions int64 `json:"tier_promotions"`
	WorstTier      int   `json:"worst_tier"`
	// PlanCalls and PlanTime aggregate planner invocations across shards.
	PlanCalls int           `json:"plan_calls"`
	PlanTime  time.Duration `json:"plan_time_ns"`
	// EpochP50/P95/P99 are epoch wall-latency percentiles over the last
	// LatencyWindow epochs.
	EpochP50 time.Duration `json:"epoch_p50_ns"`
	EpochP95 time.Duration `json:"epoch_p95_ns"`
	EpochP99 time.Duration `json:"epoch_p99_ns"`
	// Shards breaks the counters down per shard, in shard order.
	Shards []ShardMetrics `json:"shards"`
}

// Dispatcher is the live assignment service. Create with New, feed it events
// (from any goroutine), and advance its epoch clock either manually (Advance,
// Tick — deterministic, used by tests and LoadGen) or on wall time (Serve).
type Dispatcher struct {
	cfg Config
	// Exactly one of rings/queue is the live ingest buffer: the sharded
	// lock-free rings by default, the legacy channel under
	// Config.SingleQueue.
	rings *shardedQueue
	queue chan Event

	ingested   atomic.Int64
	applied    atomic.Int64
	unroutable atomic.Int64
	nowBits    atomic.Uint64 // next epoch instant, for lock-free stamping
	// seqCtr stamps every event with its global ingest order at enqueue
	// time (see stampedEvent); requeues (admission deferrals) draw from the
	// same counter under the epoch lock.
	seqCtr atomic.Int64
	// synthID assigns server-side task ids for streamed submits with id 0,
	// starting above any client-chosen range (see syntheticIDBase).
	synthID atomic.Int64

	mu      sync.Mutex
	pending eventHeap         // drained from the queue, not yet due; guarded by mu
	shards  []*stream.Machine // slice and elements set in New, immutable after
	// inc holds each shard's incremental-planner wrapper for reuse metrics;
	// nil when incremental replanning is off.
	inc    []*assign.Incremental // guarded by mu
	smap   *shardMap             // cell ownership; nil with one shard; immutable after New
	owner  map[int]int           // worker id → shard; guarded by mu
	taskOf map[int]int           // task id → owning shard; guarded by mu
	ghosts map[int][]int         // task id → shards holding a live replica; guarded by mu
	// maxReach is the largest Reach among admitted workers — the automatic
	// halo radius when Config.HaloRadius is 0. reGhost marks a pending
	// re-replication pass after maxReach grew; it runs once per tick, since
	// visibility only matters at planning instants and a burst of admissions
	// would otherwise rescan the open pool once per worker.
	maxReach float64 // guarded by mu
	reGhost  bool    // guarded by mu
	// Halo/arbitration counters (see Metrics).
	ghostCopies int64        // guarded by mu
	ghostHits   int64        // guarded by mu
	conflicts   int64        // guarded by mu
	retractions int64        // guarded by mu
	clock       float64      // next epoch instant; guarded by mu
	epochs      int          // guarded by mu
	lat         *latencyRing // guarded by mu
	// Admission state: shedIngest counts tasks terminally dropped on the
	// ingest path (never admitted to a shard); deferred counts deferral
	// events (non-terminal requeues); victims orders the open pool by
	// deadline for displacement.
	shedIngest int64      // guarded by mu
	deferred   int64      // guarded by mu
	victims    victimHeap // guarded by mu
	// Governor state: gov is nil when disabled; tiered holds each shard's
	// ladder dispatcher; costs/preWorkers/preOpen/shardWall are per-tick
	// scratch, allocated once.
	gov        *Governor        // guarded by mu
	tiered     []*tieredPlanner // guarded by mu
	costFn     CostFunc         // guarded by mu
	costs      []float64        // guarded by mu
	preWorkers []int            // guarded by mu
	preOpen    []int            // guarded by mu
	shardWall  []time.Duration  // guarded by mu
	trace      *traceRing       // guarded by mu
	// ob is the observability core: always non-nil — histograms are always
	// on; spans/ledger/flight inside it are gated by Config.Obs.
	ob *obsState // guarded by mu
	// Global forecast state (Config.Forecast only).
	published    []*core.Task // guarded by mu
	lastForecast float64      // guarded by mu
}

// New builds a dispatcher. It panics on an unusable configuration (missing
// planner factory, or multiple shards without a grid) — both are programming
// errors, not runtime conditions.
//
//datawa:locked(mu) the constructor owns the fresh value; no other goroutine can hold a reference yet
func New(cfg Config) *Dispatcher {
	cfg = cfg.withDefaults()
	govOn := cfg.Governor.Budget > 0
	if cfg.NewPlanner == nil && !(govOn && cfg.NewLadder != nil) {
		panic("dispatch: Config.NewPlanner is required")
	}
	if cfg.Shards > 1 && cfg.Grid.Cells() <= 0 {
		panic("dispatch: Config.Grid is required when Shards > 1")
	}
	d := &Dispatcher{
		cfg:    cfg,
		shards: make([]*stream.Machine, cfg.Shards),
		owner:  make(map[int]int),
		taskOf: make(map[int]int),
		ghosts: make(map[int][]int),
		clock:  cfg.Now,
		lat:    newLatencyRing(cfg.LatencyWindow),
	}
	if cfg.SingleQueue {
		d.queue = make(chan Event, cfg.QueueSize)
	} else {
		d.rings = newShardedQueue(cfg.Shards, cfg.QueueSize)
	}
	d.synthID.Store(syntheticIDBase)
	d.ob = newObsState(cfg.Obs, cfg.Shards)
	if cfg.Shards > 1 {
		d.smap = newShardMap(cfg.Grid, cfg.Shards)
	}
	// Split the parallelism budget between the shard fan-out and each
	// planner's internal fan-out: with multiple shards planning
	// concurrently, a planner that also resolved the knob to one goroutine
	// per CPU would oversubscribe the cores Shards-fold and inflate the very
	// epoch latencies the service reports. Plans are parallelism-invariant
	// by the planner contract, so only CPU time is affected.
	perPlanner := 0
	if cfg.Shards > 1 {
		total := cfg.Parallelism
		if total == 0 {
			total = runtime.GOMAXPROCS(0)
		}
		perPlanner = total / par.Workers(cfg.Parallelism, cfg.Shards)
		if perPlanner < 1 {
			perPlanner = 1
		}
	}
	// Incremental replanning needs a grid for the dirty-cell partition and
	// adaptive semantics (FTA's locked plans change the planner pool without
	// pool events, so reuse would be unsound there).
	incremental := !cfg.DisableIncremental && !cfg.Fixed && cfg.Grid.Cells() > 0
	if incremental {
		d.inc = make([]*assign.Incremental, cfg.Shards)
	}
	if govOn {
		d.tiered = make([]*tieredPlanner, cfg.Shards)
	}
	for i := range d.shards {
		var planner assign.Planner
		if govOn {
			var ladder []assign.Planner
			if cfg.NewLadder != nil {
				ladder = cfg.NewLadder(i)
			} else {
				ladder = []assign.Planner{cfg.NewPlanner(i)}
			}
			if len(ladder) == 0 {
				panic("dispatch: Config.NewLadder returned an empty ladder")
			}
			d.tiered[i] = &tieredPlanner{ladder: ladder}
			planner = d.tiered[i]
		} else {
			planner = cfg.NewPlanner(i)
		}
		if p, ok := planner.(interface{ SetParallelism(int) }); ok && perPlanner > 0 {
			p.SetParallelism(perPlanner)
		}
		mc := stream.MachineConfig{
			Planner:       planner,
			Fixed:         cfg.Fixed,
			Travel:        cfg.Travel,
			TrackRemovals: true,
			// Commit logs feed cross-shard arbitration; with one shard or
			// replication disabled nothing drains them, so leave them off.
			TrackCommits: cfg.Shards > 1 && cfg.HaloRadius >= 0,
			// Disposal logs feed the lifecycle ledger; off with it.
			TrackDisposals: d.ob.ledger != nil,
		}
		if incremental {
			d.inc[i] = assign.NewIncremental(planner, cfg.Grid)
			mc.Planner = d.inc[i]
			mc.DirtyGrid = cfg.Grid
		}
		// Machines get no forecaster of their own: virtuals come from the
		// dispatcher-level forecast, routed by cell ownership.
		d.shards[i] = stream.NewMachine(mc)
	}
	if govOn {
		d.gov = NewGovernor(cfg.Governor, cfg.Shards, len(d.tiered[0].ladder))
	}
	d.costFn = cfg.Governor.withDefaults().Cost
	if cfg.TraceDepth > 0 {
		d.trace = newTraceRing(cfg.TraceDepth)
	}
	if d.gov != nil || d.trace != nil || d.ob.spans != nil {
		d.costs = make([]float64, cfg.Shards)
		d.preWorkers = make([]int, cfg.Shards)
		d.preOpen = make([]int, cfg.Shards)
		d.shardWall = make([]time.Duration, cfg.Shards)
	}
	d.lastForecast = math.Inf(-1)
	d.nowBits.Store(math.Float64bits(cfg.Now))
	return d
}

// Now returns the next epoch instant on the logical clock. Events ingested
// through the convenience methods are stamped with it, so they take effect
// at the next epoch.
func (d *Dispatcher) Now() float64 {
	return math.Float64frombits(d.nowBits.Load())
}

// Ingest enqueues one event with an explicit effect time. Safe for
// concurrent use. When the queue is full the caller spills the backlog into
// the pending buffer itself (taking the epoch lock), so a single goroutine
// can enqueue arbitrarily many events without an intervening epoch. The fast
// path on the default sharded queue is one atomic counter increment plus one
// ring CAS — no lock, and no contention between producers in different
// regions.
func (d *Dispatcher) Ingest(ev Event) {
	if d.rings != nil {
		se := stampedEvent{ev: ev, seq: d.seqCtr.Add(1)}
		if !d.laneOf(ev).tryPush(se) {
			// Full lane: spill everything queued into the pending heap and
			// place this event there directly — never dropped, never blocked.
			d.mu.Lock()
			d.drainLocked()
			d.pending.push(pendingEvent{ev: se.ev, seq: se.seq})
			d.mu.Unlock()
		}
		d.ingested.Add(1)
		return
	}
	for {
		select {
		case d.queue <- ev:
			d.ingested.Add(1)
			return
		default:
			d.mu.Lock()
			d.drainLocked()
			d.mu.Unlock()
		}
	}
}

// WorkerOnline admits a worker at the next epoch.
func (d *Dispatcher) WorkerOnline(w *core.Worker) {
	d.Ingest(Event{Time: d.Now(), Kind: KindWorkerOnline, Worker: w})
}

// WorkerOffline ends a worker's availability window at the next epoch.
func (d *Dispatcher) WorkerOffline(id int) {
	d.Ingest(Event{Time: d.Now(), Kind: KindWorkerOffline, ID: id})
}

// SubmitTask publishes a task at the next epoch.
func (d *Dispatcher) SubmitTask(s *core.Task) {
	d.Ingest(Event{Time: d.Now(), Kind: KindTaskSubmit, Task: s})
}

// CancelTask withdraws an open task at the next epoch.
func (d *Dispatcher) CancelTask(id int) {
	d.Ingest(Event{Time: d.Now(), Kind: KindTaskCancel, ID: id})
}

// Heartbeat reports a worker's position, applied at the next epoch when the
// worker is idle.
func (d *Dispatcher) Heartbeat(id int, loc geo.Point) {
	d.Ingest(Event{Time: d.Now(), Kind: KindPosition, ID: id, Loc: loc})
}

// shardOf routes a location to its owning shard.
func (d *Dispatcher) shardOf(p geo.Point) int {
	if d.smap == nil {
		return 0
	}
	return d.smap.ownerOf(p)
}

// haloEnabled reports whether cross-shard ghost replication is active.
func (d *Dispatcher) haloEnabled() bool {
	return d.smap != nil && d.cfg.HaloRadius >= 0
}

// haloRadiusLocked resolves the current halo radius: the configured fixed
// radius, or — in auto mode — the largest admitted worker reach so far.
//
//datawa:locked(mu)
func (d *Dispatcher) haloRadiusLocked() float64 {
	if d.cfg.HaloRadius > 0 {
		return d.cfg.HaloRadius
	}
	return d.maxReach
}

// replicateLocked installs ghost replicas of an owned open task into every
// shard whose territory its halo disk overlaps. Already-replicated shards
// are skipped (AddGhost rejects duplicates), so the call is idempotent —
// re-running it after the auto halo radius grows adds only the missing
// replicas. The disk is centered on the task's location clamped to the
// region: ownership routing clamps off-map points (Grid.CellOf snaps stray
// GPS fixes to boundary cells), so the halo query must reason from the same
// snapped geometry — an exact off-region disk could overlap no cell at all
// and leave a boundary worker blind to a reachable off-map task.
//
//datawa:locked(mu)
func (d *Dispatcher) replicateLocked(s *core.Task, owner int, t float64) {
	r := d.haloRadiusLocked()
	if r <= 0 {
		return
	}
	p := d.cfg.Grid.Region.Clamp(s.Loc)
	for _, g := range d.smap.shardsInDisk(p, r, owner) {
		if d.shards[g].AddGhost(s, t) {
			d.ghosts[s.ID] = append(d.ghosts[s.ID], g)
			d.ghostCopies++
			d.recordTask(s.ID, obs.GhostReplicated, g, 0, "")
		}
	}
}

// reGhostLocked re-evaluates replication for every open owned task — run
// once per tick, after the epoch's events applied, when the automatic halo
// radius grew: tasks submitted before a long-reach worker came online
// become visible to its shard at the same planning instant that admits the
// worker. Task ids are walked in sorted order: replication appends to each
// shard's planning pool, so the order must be a pure function of the event
// stream.
//
//datawa:locked(mu)
func (d *Dispatcher) reGhostLocked(t float64) {
	ids := make([]int, 0, len(d.taskOf))
	//datawa:unordered ids are sorted before any shard is touched
	for id := range d.taskOf {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		owner := d.taskOf[id]
		if s, ok := d.shards[owner].OpenTask(id); ok {
			d.replicateLocked(s, owner, t)
		}
	}
}

// Tick runs exactly one planning epoch at the current clock instant and
// advances the clock one step.
func (d *Dispatcher) Tick() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tickLocked()
}

// Advance runs epochs at the step cadence while the clock is before `to`
// (exclusive, matching the engine's `for t := T0; t < T1` loop). Driving a
// fresh dispatcher with Advance(T1) replays exactly the planning instants
// stream.Engine executes on [Now, T1).
func (d *Dispatcher) Advance(to float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for d.clock < to {
		d.tickLocked()
	}
}

// Serve drives epochs from wall time until the context is cancelled: one
// epoch every Step/timeScale wall seconds (timeScale ≤ 0 means 1 — real
// time; 60 runs a minute of logical time per wall second).
func (d *Dispatcher) Serve(ctx context.Context, timeScale float64) error {
	if timeScale <= 0 {
		timeScale = 1
	}
	interval := time.Duration(d.cfg.Step / timeScale * float64(time.Second))
	if interval <= 0 {
		return fmt.Errorf("dispatch: step %v at scale %v yields no tick interval", d.cfg.Step, timeScale)
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
			d.Tick()
		}
	}
}

// tickLocked is one epoch: drain the queue, apply due events, plan every
// shard concurrently, advance the clock. Caller holds d.mu. Every stage is
// timed into the observability core's histograms; with span recording on
// (ObsConfig.Spans) each stage also leaves a span — track 0 for the
// dispatcher's sequential work, one track per shard for the parallel Steps.
//
//datawa:locked(mu)
func (d *Dispatcher) tickLocked() {
	t := d.clock
	o := d.ob
	o.epoch, o.now = d.epochs, t
	o.cur = o.cur[:0]
	if o.arbitrated != nil {
		clear(o.arbitrated)
	}
	tick0 := time.Now() //datawa:wallclock epoch histogram timing, observability only

	t0 := time.Now() //datawa:wallclock stage-span timing, observability only
	drained := d.drainLocked()
	o.observe(stageDrain, t0, drained, "", true)

	t0 = time.Now() //datawa:wallclock stage-span timing, observability only
	applied := d.applyDueLocked(t)
	o.observe(stageAdmission, t0, applied, "", true)

	t0 = time.Now() //datawa:wallclock stage-span timing, observability only
	ranReGhost := false
	if d.reGhost {
		d.reGhost = false
		d.reGhostLocked(t)
		ranReGhost = true
	}
	o.observe(stageReGhost, t0, 0, "", ranReGhost)

	t0 = time.Now() //datawa:wallclock stage-span timing, observability only
	ranForecast, virtuals := d.forecastLocked(t)
	o.observe(stageForecast, t0, virtuals, "", ranForecast)

	// Pool sizes at the planning instant feed the governor's cost function,
	// the epoch trace, and the per-shard span details; captured before the
	// Step mutates them.
	instrument := d.gov != nil || d.trace != nil || o.spans != nil
	if instrument {
		for i, m := range d.shards {
			d.preWorkers[i] = m.Workers()
			d.preOpen[i] = m.OpenTasks()
		}
	}
	start := time.Now() //datawa:wallclock stage-span timing, observability only
	//datawa:locked(mu) the epoch lock is held across the whole parallel region; each worker touches only its own shard slot
	par.Do(len(d.shards), d.cfg.Parallelism, func(i int) {
		if instrument {
			s0 := time.Now() //datawa:wallclock per-shard span timing, observability only
			d.shards[i].Step(t)
			d.shardWall[i] = time.Since(s0) //datawa:wallclock per-shard wall stats, observability only
			if o.shardSpan != nil {
				o.shardSpan[i] = obs.Span{
					Name: "step", Track: 1 + i,
					StartNS: s0.Sub(o.base).Nanoseconds(),
					DurNS:   d.shardWall[i].Nanoseconds(),
				}
			}
		} else {
			d.shards[i].Step(t)
		}
	})
	o.observe(stageStep, start, len(d.shards), "", true)
	if o.shardSpan != nil {
		// Per-shard spans were written into disjoint slots inside the
		// parallel region; merge them in shard order with deterministic
		// logical detail (the tier the epoch planned at, pool sizes).
		for i := range o.shardSpan {
			sp := o.shardSpan[i]
			sp.N = d.preOpen[i]
			if d.tiered != nil {
				sp.Detail = fmt.Sprintf("workers=%d open=%d tier=%d", d.preWorkers[i], d.preOpen[i], d.tiered[i].tier)
			} else {
				sp.Detail = fmt.Sprintf("workers=%d open=%d", d.preWorkers[i], d.preOpen[i])
			}
			o.cur = append(o.cur, sp)
		}
	}

	t0 = time.Now() //datawa:wallclock stage-span timing, observability only
	rounds := d.arbitrateLocked(t)
	o.observe(stageArbitration, t0, rounds, "", true)
	d.drainDisposalsLocked()

	// The latency ring keeps its historical meaning — Step + arbitration
	// wall, the quantity the BENCH trajectory gates — while the epoch
	// histogram covers the whole tick including ingest and forecast.
	wall := time.Since(start) //datawa:wallclock latency ring sample, observability only
	d.lat.add(wall)
	o.epochHist.Observe(time.Since(tick0).Seconds()) //datawa:wallclock epoch histogram sample, observability only

	// Retire routing entries for departed workers and closed tasks so the
	// maps track the live population, not the service's lifetime history.
	// The HasWorker/HasOpenTask guards keep an id that was re-admitted in
	// this same epoch routable.
	for shard, m := range d.shards {
		for _, id := range m.TakeDepartedWorkers() {
			if d.owner[id] == shard && !m.HasWorker(id) {
				delete(d.owner, id)
			}
		}
		for _, id := range m.TakeClosedTasks() {
			if d.taskOf[id] == shard && !m.HasOpenTask(id) {
				delete(d.taskOf, id)
				// An owner-side expiry closes the replicas too (same Exp,
				// same eviction instant); only the routing entry remains.
				delete(d.ghosts, id)
			}
		}
	}

	if instrument {
		for i := range d.shards {
			d.costs[i] = d.costFn(i, d.shardWall[i], d.preWorkers[i], d.preOpen[i])
		}
	}
	if d.gov != nil {
		// Governor decisions apply from the next epoch: the tier is set
		// after this epoch's Step, under the same lock the next Step plans
		// under, so every shard's planner is fixed for a whole epoch.
		for i := range d.shards {
			d.tiered[i].setTier(d.gov.Observe(i, d.costs[i]))
		}
	}
	if d.trace != nil {
		rec := EpochTrace{Epoch: d.epochs, Now: t, WallNS: wall.Nanoseconds(),
			Shards: make([]ShardTrace, len(d.shards))}
		for i := range d.shards {
			st := ShardTrace{
				Workers: d.preWorkers[i], Open: d.preOpen[i],
				Cost: d.costs[i], WallNS: d.shardWall[i].Nanoseconds(),
			}
			if d.tiered != nil {
				st.Tier = d.tiered[i].tier
				st.TierName = d.tiered[i].Name()
			}
			rec.Shards[i] = st
		}
		d.trace.add(rec)
	}
	if o.spans != nil {
		o.spans.Add(obs.EpochSpans{Epoch: o.epoch, Now: t, Spans: append([]obs.Span(nil), o.cur...)})
	}
	d.maybeFlightLocked(t)
	d.epochs++
	d.clock = t + d.cfg.Step
	d.nowBits.Store(math.Float64bits(d.clock))
}

// arbitrateLocked resolves cross-shard commits after the parallel Step.
// Replicated tasks can be committed by several shards in one epoch; exactly
// one commit may stand. The winner is chosen by earliest arrival (worker id,
// then shard id break ties — a pure function of the merged commit set, so
// the outcome is identical at every parallelism level), losers are
// retracted, and every surviving copy of a committed task is dropped from
// the other shards so no one can commit it in a later epoch. A retracted
// worker immediately resumes the remainder of its plan, which can produce
// fresh commits — hence the rounds; each round consumes plan entries, so the
// loop terminates.
// It returns the number of arbitration rounds that resolved at least one
// task.
//
//datawa:locked(mu)
func (d *Dispatcher) arbitrateLocked(t float64) int {
	if !d.haloEnabled() {
		return 0
	}
	type commit struct {
		shard int
		c     stream.Commit
	}
	rounds := 0
	for {
		round0 := time.Now() //datawa:wallclock arbitration-round span timing, observability only
		byTask := make(map[int][]commit)
		for i, m := range d.shards {
			for _, c := range m.TakeCommits() {
				// Only replicated tasks can conflict or leave stale copies;
				// a single-copy commit needs no arbitration.
				if len(d.ghosts[c.Task]) > 0 {
					byTask[c.Task] = append(byTask[c.Task], commit{shard: i, c: c})
				}
			}
		}
		if len(byTask) == 0 {
			return rounds
		}
		rounds++
		ids := make([]int, 0, len(byTask))
		//datawa:unordered ids are sorted before arbitration begins
		for id := range byTask {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		// Phase 1: pick each task's winner and purge every surviving copy of
		// every arbitrated task. All drops happen before any retraction: a
		// retracted worker resumes its plan immediately, and if a task later
		// in this round still had an open replica the resume could commit it
		// — a commit outside its own arbitration group, i.e. a double
		// assignment.
		var losers []commit
		for _, id := range ids {
			cms := byTask[id]
			best := 0
			for j := 1; j < len(cms); j++ {
				a, b := cms[j], cms[best]
				if a.c.Arrive != b.c.Arrive {
					if a.c.Arrive < b.c.Arrive {
						best = j
					}
					continue
				}
				if a.c.Worker != b.c.Worker {
					if a.c.Worker < b.c.Worker {
						best = j
					}
					continue
				}
				if a.shard < b.shard {
					best = j
				}
			}
			if len(cms) > 1 {
				d.conflicts++
			}
			winner := cms[best].shard
			owner, owned := d.taskOf[id]
			if owned && winner != owner {
				d.ghostHits++
			}
			for j, cm := range cms {
				if j != best {
					losers = append(losers, cm)
					// Ledger the losing commits before the terminal
					// assignment so the chain stays well-formed (nothing
					// after a terminal state). The retraction itself runs
					// in phase 2 below.
					d.recordTask(id, obs.Retracted, cm.shard, cm.c.Worker,
						fmt.Sprintf("lost arbitration to worker %d", cms[best].c.Worker))
				}
			}
			cause := ""
			switch {
			case len(cms) > 1 && owned && winner != owner:
				cause = fmt.Sprintf("ghost hit; won arbitration (%d commits)", len(cms))
			case len(cms) > 1:
				cause = fmt.Sprintf("won arbitration (%d commits)", len(cms))
			case owned && winner != owner:
				cause = "ghost hit"
			}
			d.recordTask(id, obs.Assigned, winner, cms[best].c.Worker, cause)
			if d.ob.arbitrated != nil {
				d.ob.arbitrated[id] = true
			}
			// Drop the copies that did not commit: the owner's (when a ghost
			// won) and every other shard's replica.
			if owned && winner != owner {
				d.shards[owner].DropTask(id)
			}
			for _, g := range d.ghosts[id] {
				if g != winner {
					d.shards[g].DropTask(id)
				}
			}
			delete(d.ghosts, id)
			delete(d.taskOf, id)
		}
		// Phase 2: retract the losers. Resumed workers can only commit tasks
		// not arbitrated yet — fresh replicated commits land in the machines'
		// logs and the next round collects them.
		retract0 := time.Now() //datawa:wallclock retraction span timing, observability only
		for _, cm := range losers {
			if d.shards[cm.shard].RetractCommit(cm.c.Worker, cm.c.Task, t) {
				d.retractions++
			}
		}
		if len(losers) > 0 {
			d.ob.span("retract", 0, retract0, len(losers), fmt.Sprintf("round=%d", rounds))
		}
		d.ob.span("arbitration-round", 0, round0, len(ids),
			fmt.Sprintf("round=%d tasks=%d losers=%d", rounds, len(ids), len(losers)))
	}
}

// forecastLocked refreshes the global virtual-task sets at the forecaster's
// cadence and hands each shard the virtuals for the cells it owns. The
// forecaster sees the complete published stream — mirroring the engine's
// forecast step — so sharding does not dilute the demand counts the model
// was trained on. It reports whether a refresh ran and how many virtual
// tasks it materialized.
//
//datawa:locked(mu)
func (d *Dispatcher) forecastLocked(t float64) (bool, int) {
	if d.cfg.Forecast == nil {
		return false, 0
	}
	if t-d.lastForecast < d.cfg.Forecast.Span() {
		return false, 0
	}
	d.lastForecast = t
	if hb, ok := d.cfg.Forecast.(stream.HistoryBounded); ok {
		d.published = stream.PruneHistory(d.published, t-hb.HistorySpan())
	}
	virtuals := d.cfg.Forecast.Virtuals(d.published, t)
	byShard := make([][]*core.Task, len(d.shards))
	for _, v := range virtuals {
		shard := d.shardOf(v.Loc)
		byShard[shard] = append(byShard[shard], v)
	}
	for i, m := range d.shards {
		m.SetVirtuals(byShard[i])
	}
	return true, len(virtuals)
}

// drainLocked moves queued events into the pending heap without blocking,
// returning how many it moved. Sharded lanes carry their enqueue-time
// sequence numbers; the legacy channel stamps at drain. Either way the heap
// orders events by (time, sequence), so queue shape never changes what an
// epoch sees.
//
//datawa:locked(mu)
func (d *Dispatcher) drainLocked() int {
	n := 0
	if d.rings != nil {
		for _, l := range d.rings.lanes {
			for {
				se, ok := l.pop()
				if !ok {
					break
				}
				d.pending.push(pendingEvent{ev: se.ev, seq: se.seq})
				n++
			}
		}
		return n
	}
	for {
		select {
		case ev := <-d.queue:
			d.pending.push(pendingEvent{ev: ev, seq: d.seqCtr.Add(1)})
			n++
		default:
			return n
		}
	}
}

// applyDueLocked folds every pending event with Time ≤ t into shard state,
// in (Time, ingest order) — extraction is O(due·log pending), never a scan
// of the whole backlog. Cross-kind order within a batch is immaterial
// (admissions touch disjoint state until the Step that follows, which is why
// a trace replay matches the engine's workers-then-tasks batching); what
// matters is that events about the *same* entity — an offline followed by a
// re-online, a submit followed by a cancel — apply in the order produced.
//
//datawa:locked(mu)
func (d *Dispatcher) applyDueLocked(t float64) int {
	submits, due := 0, 0
	for len(d.pending) > 0 && d.pending[0].ev.Time <= t {
		pe := d.pending.pop()
		due++
		if c := d.cfg.Admission.MaxSubmitsPerEpoch; c > 0 && pe.ev.Kind == KindTaskSubmit {
			// Backpressure on the ingest path: past the per-epoch budget,
			// due submits defer one epoch (requeued at t+Step, so the loop
			// will not see them again this tick) or shed when too close to
			// their deadline for a deferral to ever be served.
			if submits >= c {
				// The capped submit bypasses applyLocked, so run the
				// first-application effects (forecast feed, ledger open)
				// here — without this a capped-then-deferred task would
				// never reach the forecaster.
				d.noteSubmitLocked(pe.ev.Task, pe.requeued)
				d.deferOrShedLocked(pe.ev.Task, t, "submit-cap")
				continue
			}
			submits++
		}
		d.applyLocked(pe.ev, t, pe.requeued)
	}
	return due
}

// noteSubmitLocked runs a task submit's first-application side effects: the
// global forecast feed and the ledger's chain-opening Submitted record. A
// requeued (deferred/displaced) submit already ran them on first application.
//
//datawa:locked(mu)
func (d *Dispatcher) noteSubmitLocked(s *core.Task, requeued bool) {
	if s == nil || requeued {
		return
	}
	if d.cfg.Forecast != nil {
		d.published = append(d.published, s)
	}
	d.recordTask(s.ID, obs.Submitted, -1, 0, "")
}

//datawa:locked(mu)
func (d *Dispatcher) applyLocked(ev Event, t float64, requeued bool) {
	ok := false
	switch ev.Kind {
	case KindWorkerOnline:
		if ev.Worker == nil {
			break
		}
		// A second online for a still-active id is rejected rather than
		// rebound: rebinding would orphan the live copy in its shard.
		if prev, dup := d.owner[ev.Worker.ID]; dup && d.shards[prev].HasWorker(ev.Worker.ID) {
			break
		}
		shard := d.shardOf(ev.Worker.Loc)
		if ok = d.shards[shard].AddWorker(ev.Worker, t); ok {
			d.owner[ev.Worker.ID] = shard
			// In auto-halo mode a longer reach widens the halo band: mark a
			// re-replication pass (run once, before this tick's Step) so
			// already-open boundary tasks become visible to the new
			// worker's shard.
			if d.haloEnabled() && d.cfg.HaloRadius == 0 && ev.Worker.Reach > d.maxReach {
				d.maxReach = ev.Worker.Reach
				d.reGhost = true
			}
		}
	case KindTaskSubmit:
		if ev.Task == nil {
			break
		}
		// Two live tasks with one id would let a shard's plan assign the id
		// twice (fatal) or make cancel/ownership ambiguous across shards.
		if prev, dup := d.taskOf[ev.Task.ID]; dup && d.shards[prev].HasOpenTask(ev.Task.ID) {
			break
		}
		// First-application side effects: the global forecast feed mirrors
		// the machine's own — every submit, including expired-on-arrival, is
		// demand the model should see — and the ledger chain opens.
		d.noteSubmitLocked(ev.Task, requeued)
		// Admission control: a submit hitting a full open pool displaces
		// the most deferrable open task, or itself defers or sheds — see
		// AdmissionConfig. The ≥ comparison is deliberate: at exactly
		// MaxOpenTasks the pool is full and the newcomer must displace or
		// yield.
		if c := d.cfg.Admission.MaxOpenTasks; c > 0 && len(d.taskOf) >= c {
			if !d.admitOverCapLocked(ev.Task, t) {
				ok = true // consumed: deferred or shed, both accounted
				break
			}
		}
		shard := d.shardOf(ev.Task.Loc)
		if d.shards[shard].AddTask(ev.Task, t) {
			d.taskOf[ev.Task.ID] = shard
			d.recordTask(ev.Task.ID, obs.Admitted, shard, 0, "")
			if d.cfg.Admission.MaxOpenTasks > 0 {
				d.victims.push(victim{exp: ev.Task.Exp, id: ev.Task.ID, task: ev.Task, shard: shard})
			}
			if d.haloEnabled() {
				d.replicateLocked(ev.Task, shard, t)
			}
		} else if ev.Task.Exp <= t {
			d.recordTask(ev.Task.ID, obs.Expired, shard, 0, "expired on arrival")
		}
		// Expired-on-arrival still changed state (it counted as expired),
		// so a rejected admission here is applied either way.
		ok = true
	case KindWorkerOffline:
		if shard, known := d.owner[ev.ID]; known {
			ok = d.shards[shard].RemoveWorker(ev.ID, t)
		}
	case KindTaskCancel:
		if shard, known := d.taskOf[ev.ID]; known {
			if ok = d.shards[shard].CancelTask(ev.ID); ok {
				d.recordTask(ev.ID, obs.Cancelled, shard, 0, "withdrawn by requester")
				// A withdrawn task must leave every replica pool before the
				// next planning instant, or a ghost shard could assign it.
				for _, g := range d.ghosts[ev.ID] {
					d.shards[g].DropTask(ev.ID)
				}
				delete(d.ghosts, ev.ID)
			}
		}
	case KindPosition:
		if shard, known := d.owner[ev.ID]; known {
			ok = d.shards[shard].UpdateWorkerPos(ev.ID, ev.Loc)
		}
	}
	if ok {
		d.applied.Add(1)
	} else {
		d.unroutable.Add(1)
	}
}

// PlanOf returns the current schedule of a worker, or false when the worker
// is unknown or already departed.
func (d *Dispatcher) PlanOf(workerID int) (stream.WorkerPlan, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	shard, ok := d.owner[workerID]
	if !ok {
		return stream.WorkerPlan{}, false
	}
	return d.shards[shard].PlanOf(workerID)
}

// Snapshot returns a consistent metrics snapshot.
func (d *Dispatcher) Snapshot() Metrics {
	d.mu.Lock()
	defer d.mu.Unlock()
	m := Metrics{
		Now:             d.clock,
		Epochs:          d.epochs,
		Ingested:        d.ingested.Load(),
		Applied:         d.applied.Load(),
		Unroutable:      d.unroutable.Load(),
		QueueDepth:      d.queueDepthLocked() + len(d.pending),
		RoutedWorkers:   len(d.owner),
		RoutedTasks:     len(d.taskOf),
		RoutedGhosts:    len(d.ghosts),
		GhostCopies:     d.ghostCopies,
		GhostHits:       d.ghostHits,
		CommitConflicts: d.conflicts,
		Retractions:     d.retractions,
	}
	m.EpochP50, m.EpochP95, m.EpochP99 = d.lat.percentiles()
	for _, inc := range d.inc {
		st := inc.Stats()
		m.IncrementalHits += st.ComponentsReused
		m.ComponentsReplanned += st.ComponentsReplanned
	}
	m.Shed = d.shedIngest
	m.Deferred = d.deferred
	if d.gov != nil {
		m.TierDemotions, m.TierPromotions = d.gov.Counters()
		m.WorstTier = d.gov.Worst()
	}
	for i, sh := range d.shards {
		st := sh.Stats()
		sm := ShardMetrics{
			Shard: i, Workers: sh.Workers(), Open: sh.OpenTasks(), Stats: st,
		}
		if d.tiered != nil {
			sm.Tier = d.tiered[i].tier
			sm.TierName = d.tiered[i].Name()
		}
		m.Shards = append(m.Shards, sm)
		m.Assigned += st.Assigned
		m.Expired += st.Expired
		m.Cancelled += st.Cancelled
		m.Repositions += st.Repositions
		m.Shed += int64(st.Shed)
		m.PlanCalls += st.PlanCalls
		m.PlanTime += st.PlanTime
	}
	return m
}

// Quiesce runs planning epochs until the dispatcher is fully drained — no
// queued or pending events, no open tasks — and, when the governor is on,
// every shard has recovered to the top planner tier; maxEpochs bounds the
// loop. It reports whether the drained-and-recovered state was reached.
// After a successful Quiesce every submitted task is terminal, so the
// conservation identity assigned + expired + cancelled + shed == submitted
// holds exactly — the benchsuite's chaos gate asserts it.
func (d *Dispatcher) Quiesce(maxEpochs int) bool {
	for i := 0; i <= maxEpochs; i++ {
		d.mu.Lock()
		d.drainLocked()
		done := d.queueDepthLocked() == 0 && len(d.pending) == 0 && len(d.taskOf) == 0
		if done && d.gov != nil {
			for s := range d.shards {
				if d.gov.TierOf(s) != 0 {
					done = false
					break
				}
			}
		}
		if !done && i < maxEpochs {
			d.tickLocked()
		}
		d.mu.Unlock()
		if done {
			return true
		}
	}
	return false
}

// queueDepthLocked is the current ingest-buffer backlog, whichever queue
// shape is live.
func (d *Dispatcher) queueDepthLocked() int {
	if d.rings != nil {
		return d.rings.depth()
	}
	return len(d.queue)
}

// nextSyntheticID allocates a server-assigned task id, above every
// client-chosen one.
func (d *Dispatcher) nextSyntheticID() int { return int(d.synthID.Add(1)) }

// pendingEvent orders drained events by effect time, ingest order breaking
// ties, so due extraction is logarithmic in the backlog size.
type pendingEvent struct {
	ev  Event
	seq int64
	// requeued marks an admission-control deferral: the event already went
	// through first-application side effects (forecast feed) once.
	requeued bool
}

// eventHeap is a concrete min-heap by (Time, seq). Hand-rolled rather than
// container/heap: the interface's Push(any)/Pop() box every element, which
// was one heap allocation per ingested event on the steady-state path the
// alloc gates pin at zero.
type eventHeap []pendingEvent

func (h eventHeap) less(i, j int) bool {
	if h[i].ev.Time != h[j].ev.Time {
		return h[i].ev.Time < h[j].ev.Time
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(pe pendingEvent) {
	*h = append(*h, pe)
	s := *h
	// Sift up.
	for i := len(s) - 1; i > 0; {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() pendingEvent {
	s := *h
	n := len(s) - 1
	top := s[0]
	s[0] = s[n]
	s[n] = pendingEvent{} // release the Task/Worker pointers
	*h = s[:n]
	// Sift down.
	s = s[:n]
	for i := 0; ; {
		kid := 2*i + 1
		if kid >= n {
			break
		}
		if r := kid + 1; r < n && s.less(r, kid) {
			kid = r
		}
		if !s.less(kid, i) {
			break
		}
		s[i], s[kid] = s[kid], s[i]
		i = kid
	}
	return top
}

// latencyRing keeps the last n epoch latencies for percentile snapshots.
type latencyRing struct {
	buf  []time.Duration
	next int
	full bool
}

func newLatencyRing(n int) *latencyRing { return &latencyRing{buf: make([]time.Duration, n)} }

func (r *latencyRing) add(d time.Duration) {
	r.buf[r.next] = d
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// percentiles returns p50/p95/p99 over the retained window (zeros when no
// epoch has run yet).
func (r *latencyRing) percentiles() (p50, p95, p99 time.Duration) {
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	if n == 0 {
		return 0, 0, 0
	}
	s := append([]time.Duration(nil), r.buf[:n]...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	at := func(p float64) time.Duration {
		i := int(p * float64(n-1))
		return s[i]
	}
	return at(0.50), at(0.95), at(0.99)
}
