package dispatch

import (
	"fmt"
	"testing"

	"repro/internal/assign"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/stream"
	"repro/internal/wds"
	"repro/internal/workload"
)

var travel = geo.NewTravelModel(0.005)

func searchFactory() func(int) assign.Planner {
	return func(int) assign.Planner {
		return &assign.Search{Opts: assign.Options{WDS: wds.Options{Travel: travel}}}
	}
}

func greedyFactory() func(int) assign.Planner {
	return func(int) assign.Planner {
		return &assign.Greedy{Opts: assign.Options{WDS: wds.Options{Travel: travel}}}
	}
}

func testScenario(t *testing.T) *workload.Scenario {
	t.Helper()
	cfg := workload.Yueche().Scaled(0.03)
	cfg.HistoryDuration = 0
	return workload.Generate(cfg)
}

// replay drives a fresh dispatcher over the scenario trace at the given
// shard count and returns its final snapshot.
func replay(sc *workload.Scenario, shards int, factory func(int) assign.Planner, fixed bool, step float64, parallelism int) Metrics {
	d := New(Config{
		Shards:      shards,
		Grid:        sc.Grid,
		Step:        step,
		Now:         sc.T0,
		Travel:      travel,
		Fixed:       fixed,
		NewPlanner:  factory,
		Parallelism: parallelism,
	})
	g := LoadGen{Events: sc.Events(), T1: sc.T1}
	return g.Run(d).Metrics
}

// TestSingleShardMatchesStreamEngine is the subsystem's equivalence
// contract: a dispatcher replaying a scenario's event trace with one shard
// must reproduce the replay engine's Assigned/Expired counts exactly, for
// both adaptive (DTA) and fixed (FTA) semantics and the Greedy baseline.
func TestSingleShardMatchesStreamEngine(t *testing.T) {
	sc := testScenario(t)
	cases := []struct {
		name    string
		factory func(int) assign.Planner
		fixed   bool
	}{
		{"DTA", searchFactory(), false},
		{"FTA", searchFactory(), true},
		{"Greedy", greedyFactory(), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const step = 2
			ref := stream.Run(
				stream.Input{Workers: sc.Workers, Tasks: sc.Tasks, T0: sc.T0, T1: sc.T1},
				stream.Config{Planner: tc.factory(0), Fixed: tc.fixed, Step: step, Travel: travel},
			)
			got := replay(sc, 1, tc.factory, tc.fixed, step, 1)
			if got.Assigned != ref.Assigned || got.Expired != ref.Expired {
				t.Fatalf("dispatch assigned/expired = %d/%d, engine = %d/%d",
					got.Assigned, got.Expired, ref.Assigned, ref.Expired)
			}
			if got.Repositions != ref.Repositions || got.PlanCalls != ref.PlanCalls {
				t.Fatalf("dispatch repositions/planCalls = %d/%d, engine = %d/%d",
					got.Repositions, got.PlanCalls, ref.Repositions, ref.PlanCalls)
			}
		})
	}
}

// stubForecaster announces a fixed set of virtual tasks, like the stream
// package's test stub; it is stateless, so engine and dispatcher instances
// are interchangeable.
type stubForecaster struct {
	tasks []*core.Task
	span  float64
}

func (s *stubForecaster) Virtuals(_ []*core.Task, now float64) []*core.Task {
	var out []*core.Task
	for _, v := range s.tasks {
		if v.Exp > now {
			out = append(out, v)
		}
	}
	return out
}

func (s *stubForecaster) Span() float64 { return s.span }

// TestSingleShardForecastMatchesStreamEngine extends the equivalence
// contract to the prediction path: the dispatcher's global forecast must
// reproduce the engine's per-machine forecast exactly at one shard.
func TestSingleShardForecastMatchesStreamEngine(t *testing.T) {
	sc := testScenario(t)
	// Predict demand at a fixed point mid-region for the whole run — enough
	// to trigger repositioning in both drivers.
	v := &core.Task{ID: -1, Loc: geo.Point{X: 2, Y: 2}, Pub: 0, Exp: sc.T1, Virtual: true, Cell: -1}
	const step = 2
	ref := stream.Run(
		stream.Input{Workers: sc.Workers, Tasks: sc.Tasks, T0: sc.T0, T1: sc.T1},
		stream.Config{
			Planner:  searchFactory()(0),
			Step:     step,
			Travel:   travel,
			Forecast: &stubForecaster{tasks: []*core.Task{v}, span: 60},
		},
	)
	d := New(Config{
		Shards:     1,
		Step:       step,
		Now:        sc.T0,
		Travel:     travel,
		NewPlanner: searchFactory(),
		Forecast:   &stubForecaster{tasks: []*core.Task{v}, span: 60},
	})
	got := LoadGen{Events: sc.Events(), T1: sc.T1}.Run(d).Metrics
	if got.Assigned != ref.Assigned || got.Expired != ref.Expired || got.Repositions != ref.Repositions {
		t.Fatalf("dispatch assigned/expired/repositions = %d/%d/%d, engine = %d/%d/%d",
			got.Assigned, got.Expired, got.Repositions, ref.Assigned, ref.Expired, ref.Repositions)
	}
	if got.Repositions == 0 {
		t.Fatal("stub forecast produced no repositions; the prediction path was not exercised")
	}
}

// digest reduces a snapshot to its deterministic assignment outcome,
// excluding wall-clock fields.
func digest(m Metrics) string {
	s := fmt.Sprintf("assigned=%d expired=%d cancelled=%d repositions=%d planCalls=%d epochs=%d ghosts=%d/%d conflicts=%d/%d;",
		m.Assigned, m.Expired, m.Cancelled, m.Repositions, m.PlanCalls, m.Epochs,
		m.GhostCopies, m.GhostHits, m.CommitConflicts, m.Retractions)
	for _, sh := range m.Shards {
		s += fmt.Sprintf(" shard%d{w=%d open=%d a=%d e=%d c=%d r=%d}",
			sh.Shard, sh.Workers, sh.Open, sh.Stats.Assigned, sh.Stats.Expired,
			sh.Stats.Cancelled, sh.Stats.Repositions)
	}
	return s
}

// TestMultiShardDeterministic pins the other half of the contract: a fixed
// seed and shard count yield a byte-identical outcome on every run, at every
// parallelism level.
func TestMultiShardDeterministic(t *testing.T) {
	sc := testScenario(t)
	ref := digest(replay(sc, 4, searchFactory(), false, 2, 1))
	for run := 0; run < 2; run++ {
		for _, parallelism := range []int{1, 4, 0} {
			got := digest(replay(sc, 4, searchFactory(), false, 2, parallelism))
			if got != ref {
				t.Fatalf("run %d parallelism %d diverged:\n got %s\nwant %s", run, parallelism, got, ref)
			}
		}
	}
}

// TestMultiShardConservation checks that sharding loses no tasks: every real
// task is either assigned or expires, across all shards. The replay horizon
// extends past the last task's expiration so nothing is still in flight.
func TestMultiShardConservation(t *testing.T) {
	sc := testScenario(t)
	for _, shards := range []int{2, 4, 9} {
		d := New(Config{
			Shards: shards, Grid: sc.Grid, Step: 2, Now: sc.T0,
			Travel: travel, NewPlanner: searchFactory(),
		})
		horizon := sc.T1 + sc.Config.TaskValid + 2
		m := LoadGen{Events: sc.Events(), T1: horizon}.Run(d).Metrics
		if len(m.Shards) != shards {
			t.Fatalf("snapshot has %d shards, want %d", len(m.Shards), shards)
		}
		if m.Assigned+m.Expired != len(sc.Tasks) {
			t.Fatalf("%d shards: %d assigned + %d expired != %d tasks",
				shards, m.Assigned, m.Expired, len(sc.Tasks))
		}
		if m.Unroutable != 0 {
			t.Fatalf("%d shards: %d unroutable trace events", shards, m.Unroutable)
		}
	}
}

func singleShard(planner func(int) assign.Planner) *Dispatcher {
	return New(Config{Step: 1, Travel: travel, NewPlanner: planner})
}

func TestWorkerOfflineReleasesWorker(t *testing.T) {
	d := singleShard(searchFactory())
	d.WorkerOnline(&core.Worker{ID: 1, Reach: 1, On: 0, Off: 1000})
	d.Advance(1)
	if _, ok := d.PlanOf(1); !ok {
		t.Fatal("worker 1 should be active")
	}
	d.WorkerOffline(1)
	d.Advance(3)
	if _, ok := d.PlanOf(1); ok {
		t.Fatal("worker 1 should have departed after going offline")
	}
	// A task published after the worker left must expire.
	d.SubmitTask(&core.Task{ID: 10, Loc: geo.Point{X: 0.1}, Pub: 3, Exp: 60, Cell: -1})
	d.Advance(100)
	m := d.Snapshot()
	if m.Assigned != 0 || m.Expired != 1 {
		t.Fatalf("assigned/expired = %d/%d, want 0/1", m.Assigned, m.Expired)
	}
}

func TestTaskCancelPreventsAssignment(t *testing.T) {
	d := singleShard(searchFactory())
	// The worker comes online later; the task is cancelled before any
	// planner can see both.
	d.SubmitTask(&core.Task{ID: 10, Loc: geo.Point{X: 0.1}, Pub: 0, Exp: 500, Cell: -1})
	d.Advance(2)
	d.CancelTask(10)
	d.Advance(4)
	d.WorkerOnline(&core.Worker{ID: 1, Reach: 1, On: 4, Off: 1000})
	d.Advance(200)
	m := d.Snapshot()
	if m.Cancelled != 1 {
		t.Fatalf("cancelled = %d, want 1", m.Cancelled)
	}
	if m.Assigned != 0 {
		t.Fatalf("assigned = %d, want 0 (task was withdrawn)", m.Assigned)
	}
	if m.Expired != 0 {
		t.Fatalf("expired = %d, want 0 (cancelled, not expired)", m.Expired)
	}
}

func TestHeartbeatMovesIdleWorker(t *testing.T) {
	d := singleShard(searchFactory())
	// Worker far from the task; a heartbeat teleports it within reach.
	d.WorkerOnline(&core.Worker{ID: 1, Loc: geo.Point{X: 3}, Reach: 0.5, On: 0, Off: 1000})
	d.SubmitTask(&core.Task{ID: 10, Loc: geo.Point{X: 0.1}, Pub: 0, Exp: 100, Cell: -1})
	d.Advance(2)
	if m := d.Snapshot(); m.Assigned != 0 {
		t.Fatalf("assigned = %d before heartbeat, want 0", m.Assigned)
	}
	d.Heartbeat(1, geo.Point{X: 0.2})
	d.Advance(90)
	if m := d.Snapshot(); m.Assigned != 1 {
		t.Fatalf("assigned = %d after heartbeat, want 1", m.Assigned)
	}
}

func TestUnroutableEventsCounted(t *testing.T) {
	d := singleShard(searchFactory())
	d.WorkerOffline(99)
	d.CancelTask(99)
	d.Heartbeat(99, geo.Point{})
	d.Advance(1)
	m := d.Snapshot()
	if m.Unroutable != 3 {
		t.Fatalf("unroutable = %d, want 3", m.Unroutable)
	}
	if m.Applied != 0 {
		t.Fatalf("applied = %d, want 0", m.Applied)
	}
}

// TestFutureEventsWaitForTheirEpoch verifies that an event stamped ahead of
// the clock stays pending until the epoch covering its instant.
func TestFutureEventsWaitForTheirEpoch(t *testing.T) {
	d := singleShard(searchFactory())
	d.Ingest(Event{Time: 5, Kind: KindWorkerOnline,
		Worker: &core.Worker{ID: 1, Reach: 1, On: 5, Off: 1000}})
	d.Advance(5) // epochs 0..4: event not yet due
	if _, ok := d.PlanOf(1); ok {
		t.Fatal("worker admitted before its online instant")
	}
	if m := d.Snapshot(); m.QueueDepth != 1 {
		t.Fatalf("queue depth = %d, want 1 pending event", m.QueueDepth)
	}
	d.Advance(6) // epoch 5 admits it
	if _, ok := d.PlanOf(1); !ok {
		t.Fatal("worker not admitted at its online instant")
	}
}

// TestDuplicateTaskSubmitRejected pins the fix for a remotely triggerable
// crash: two live tasks sharing an id could both enter one shard's planning
// pool and make the plan-consistency check panic.
func TestDuplicateTaskSubmitRejected(t *testing.T) {
	d := singleShard(searchFactory())
	d.WorkerOnline(&core.Worker{ID: 1, Reach: 2, On: 0, Off: 10000})
	d.SubmitTask(&core.Task{ID: 10, Loc: geo.Point{X: 0.1}, Pub: 0, Exp: 9000, Cell: -1})
	d.SubmitTask(&core.Task{ID: 10, Loc: geo.Point{X: 0.9}, Pub: 0, Exp: 9000, Cell: -1})
	d.Advance(200) // must not panic
	m := d.Snapshot()
	if m.Unroutable != 1 {
		t.Fatalf("unroutable = %d, want 1 (duplicate submit)", m.Unroutable)
	}
	if m.Assigned != 1 {
		t.Fatalf("assigned = %d, want 1 (single live copy of task 10)", m.Assigned)
	}
	// Once the id has been served it may be reused.
	d.SubmitTask(&core.Task{ID: 10, Loc: geo.Point{X: 0.2}, Pub: 200, Exp: 9000, Cell: -1})
	d.Advance(400)
	if m := d.Snapshot(); m.Assigned != 2 {
		t.Fatalf("assigned = %d, want 2 (id reuse after completion)", m.Assigned)
	}
}

// TestDuplicateWorkerOnlineRejected: re-onlining a live id must not orphan
// the existing copy (or strand it in another shard); after departure the id
// is reusable.
func TestDuplicateWorkerOnlineRejected(t *testing.T) {
	d := singleShard(searchFactory())
	d.WorkerOnline(&core.Worker{ID: 1, Reach: 1, On: 0, Off: 100})
	d.Advance(1)
	d.WorkerOnline(&core.Worker{ID: 1, Loc: geo.Point{X: 2}, Reach: 1, On: 1, Off: 5000})
	d.Advance(2)
	m := d.Snapshot()
	if m.Unroutable != 1 {
		t.Fatalf("unroutable = %d, want 1 (duplicate online)", m.Unroutable)
	}
	if got := m.Shards[0].Workers; got != 1 {
		t.Fatalf("active workers = %d, want 1", got)
	}
	// The original window stands: the worker departs at its own off.
	d.Advance(101)
	if _, ok := d.PlanOf(1); ok {
		t.Fatal("worker should have departed at the original off time")
	}
	// A departed id can come back online.
	d.WorkerOnline(&core.Worker{ID: 1, Reach: 1, On: 101, Off: 5000})
	d.Advance(103)
	if _, ok := d.PlanOf(1); !ok {
		t.Fatal("departed worker id should be re-admittable")
	}
}

// TestOfflineThenOnlineSameEpoch: a worker that goes offline and comes back
// online within one epoch batch must end up online — the offline releases
// the id immediately, so the later online is not mistaken for a duplicate.
func TestOfflineThenOnlineSameEpoch(t *testing.T) {
	d := singleShard(searchFactory())
	d.WorkerOnline(&core.Worker{ID: 1, Reach: 1, On: 0, Off: 100})
	d.Advance(1)
	// Both land in the epoch at t=1, offline first in ingest order.
	d.WorkerOffline(1)
	d.WorkerOnline(&core.Worker{ID: 1, Loc: geo.Point{X: 0.3}, Reach: 1, On: 1, Off: 500})
	d.Advance(2)
	m := d.Snapshot()
	if m.Unroutable != 0 {
		t.Fatalf("unroutable = %d, want 0 (re-online must be accepted)", m.Unroutable)
	}
	if _, ok := d.PlanOf(1); !ok {
		t.Fatal("worker must be online after the offline/online pair")
	}
	// The new session's window applies: still online after the old off.
	d.Advance(200)
	if _, ok := d.PlanOf(1); !ok {
		t.Fatal("replacement session ended at the old window's off time")
	}
}

// TestRoutingStateRetired: routing entries must track the live population —
// once workers depart and tasks close, the maps drain back to zero and
// references to the retired ids become unroutable.
func TestRoutingStateRetired(t *testing.T) {
	d := singleShard(searchFactory())
	d.WorkerOnline(&core.Worker{ID: 1, Reach: 1, On: 0, Off: 50})
	d.SubmitTask(&core.Task{ID: 10, Loc: geo.Point{X: 0.1}, Pub: 0, Exp: 30, Cell: -1})
	d.Advance(1)
	m := d.Snapshot()
	if m.RoutedWorkers != 1 || m.RoutedTasks != 0 {
		t.Fatalf("routed workers/tasks = %d/%d, want 1/0 (task committed at t=0)",
			m.RoutedWorkers, m.RoutedTasks)
	}
	d.Advance(100) // worker departs at 50
	m = d.Snapshot()
	if m.RoutedWorkers != 0 || m.RoutedTasks != 0 {
		t.Fatalf("routing maps not drained: workers=%d tasks=%d", m.RoutedWorkers, m.RoutedTasks)
	}
	// Events about retired ids have no effect and say so.
	d.Heartbeat(1, geo.Point{})
	d.CancelTask(10)
	d.Advance(102)
	if m = d.Snapshot(); m.Unroutable != 2 {
		t.Fatalf("unroutable = %d, want 2", m.Unroutable)
	}
}

// TestIngestBeyondQueueCapacity: a single goroutine must be able to enqueue
// far more events than the queue holds without an epoch running in between —
// the overflow spills into the pending buffer instead of deadlocking.
func TestIngestBeyondQueueCapacity(t *testing.T) {
	d := New(Config{Step: 1, Travel: travel, NewPlanner: greedyFactory(), QueueSize: 8})
	const n = 1000
	for i := 0; i < n; i++ {
		d.Ingest(Event{Time: 0, Kind: KindTaskSubmit,
			Task: &core.Task{ID: i + 1, Loc: geo.Point{X: 3}, Pub: 0, Exp: 5, Cell: -1}})
	}
	d.Advance(10)
	m := d.Snapshot()
	if m.Ingested != n || m.Applied != n {
		t.Fatalf("ingested/applied = %d/%d, want %d/%d", m.Ingested, m.Applied, n, n)
	}
	if m.Expired != n {
		t.Fatalf("expired = %d, want %d (no workers)", m.Expired, n)
	}
}

// TestSnapshotLatencies sanity-checks the percentile plumbing.
func TestSnapshotLatencies(t *testing.T) {
	sc := testScenario(t)
	m := replay(sc, 2, searchFactory(), false, 2, 0)
	if m.Epochs == 0 {
		t.Fatal("no epochs ran")
	}
	if m.EpochP50 <= 0 || m.EpochP99 < m.EpochP95 || m.EpochP95 < m.EpochP50 {
		t.Fatalf("implausible percentiles p50=%v p95=%v p99=%v", m.EpochP50, m.EpochP95, m.EpochP99)
	}
	if m.PlanCalls == 0 || m.PlanTime <= 0 {
		t.Fatalf("planner accounting missing: calls=%d time=%v", m.PlanCalls, m.PlanTime)
	}
}

// TestLoadGenSustainsDiDiRate is the throughput acceptance bar: replaying a
// DiDi-scaled trace unpaced must sustain at least 1000 events per second,
// planning included.
func TestLoadGenSustainsDiDiRate(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput measurement")
	}
	if raceEnabled {
		t.Skip("wall-clock throughput floor is meaningless under the race detector")
	}
	cfg := workload.DiDi().Scaled(0.1)
	cfg.HistoryDuration = 0
	sc := workload.Generate(cfg)
	d := New(Config{
		Shards:     4,
		Grid:       sc.Grid,
		Step:       2,
		Now:        sc.T0,
		Travel:     travel,
		NewPlanner: greedyFactory(),
	})
	res := LoadGen{Events: sc.Events(), T1: sc.T1}.Run(d)
	if res.Events < 500 {
		t.Fatalf("trace too small to be meaningful: %d events", res.Events)
	}
	if res.AchievedRate < 1000 {
		t.Fatalf("achieved %.0f events/sec over %d events (%v wall), want ≥ 1000",
			res.AchievedRate, res.Events, res.Wall)
	}
	if res.Metrics.Assigned == 0 {
		t.Fatal("load run assigned nothing; harness is not exercising planning")
	}
}

// TestLoadGenPacing verifies the rate limiter actually paces wall time.
func TestLoadGenPacing(t *testing.T) {
	cfg := workload.Yueche().Scaled(0.01)
	cfg.HistoryDuration = 0
	sc := workload.Generate(cfg)
	d := New(Config{Step: 10, Now: sc.T0, Travel: travel, NewPlanner: greedyFactory()})
	events := sc.Events()
	if len(events) > 60 {
		events = events[:60]
	}
	rate := 2000.0
	res := LoadGen{Events: events, Rate: rate, T1: sc.T1}.Run(d)
	if res.AchievedRate > rate*1.25 {
		t.Fatalf("achieved %.0f events/sec, pacing at %.0f had no effect", res.AchievedRate, rate)
	}
}
