package dispatch

import (
	"sort"
	"time"

	"repro/internal/assign"
	"repro/internal/core"
)

// CostFunc scores one shard's epoch for the governor. The default scores by
// wall time (wall.Seconds()), which is the operational SLA signal but varies
// across hosts; deterministic harnesses (benchsuite, tests) substitute a
// logical cost — e.g. float64(workers*openTasks), the planner's input size —
// so tier transitions become a pure function of the event stream. workers and
// openTasks are the shard's pool sizes at the planning instant, before the
// epoch's Step ran.
type CostFunc func(shard int, wall time.Duration, workers, openTasks int) float64

// GovernorConfig parameterizes the SLA epoch governor. The zero value
// disables it (Budget 0).
type GovernorConfig struct {
	// Budget is the per-shard epoch cost the service is allowed to spend
	// (units of Cost; seconds under the default CostFunc). A shard whose
	// windowed p95 cost exceeds the budget is stepped down the degradation
	// ladder. 0 disables the governor.
	Budget float64
	// Window is how many recent epoch costs feed the per-shard p95
	// (default 16).
	Window int
	// Dwell is the minimum number of epochs between two tier transitions of
	// one shard (default 8) — the hysteresis floor that keeps the ladder
	// from oscillating on a noisy boundary load.
	Dwell int
	// Recover is the promotion threshold as a fraction of Budget (default
	// 0.5): a demoted shard steps back up only after a full window of
	// epochs with p95 cost at or below Recover·Budget. The gap between the
	// demotion threshold (Budget) and the promotion threshold is the
	// hysteresis band.
	Recover float64
	// Cost scores an epoch (default: wall-clock seconds).
	Cost CostFunc
}

func (c GovernorConfig) withDefaults() GovernorConfig {
	if c.Window <= 0 {
		c.Window = 16
	}
	if c.Dwell <= 0 {
		c.Dwell = 8
	}
	if c.Recover <= 0 || c.Recover >= 1 {
		c.Recover = 0.5
	}
	if c.Cost == nil {
		c.Cost = func(_ int, wall time.Duration, _, _ int) float64 { return wall.Seconds() }
	}
	return c
}

// Governor is the SLA-aware epoch governor: it watches per-shard epoch cost
// and steps each shard's planner down a degradation ladder (e.g. DTA →
// Greedy → reachability-only Match) when the windowed p95 exceeds the budget,
// recovering hysteretically when load subsides. It is a pure state machine
// over the observed cost sequence — fed the same costs in the same order it
// produces the identical tier trajectory, which the property tests pin down.
//
// Transitions move one tier per observation at most (monotone within an
// epoch) and never closer than Dwell observations apart. Demotion triggers on
// any over-budget p95, even of a partial window, so a flash crowd demotes on
// its first hot epoch; promotion requires a full post-transition window at or
// below Recover·Budget, so recovery waits out the burst's tail.
type Governor struct {
	cfg    GovernorConfig
	tiers  int
	shards []govShard

	demotions  int64
	promotions int64
	worst      int
}

type govShard struct {
	tier int
	// since counts observations since the last transition; it starts at
	// Dwell so a fresh shard may demote on its first hot epoch.
	since int
	ring  []float64
	n     int // valid samples in ring
	next  int
}

// NewGovernor builds a governor for the given shard count and ladder depth
// (tiers ≥ 1; tier 0 is the full planner).
func NewGovernor(cfg GovernorConfig, shards, tiers int) *Governor {
	cfg = cfg.withDefaults()
	if tiers < 1 {
		tiers = 1
	}
	g := &Governor{cfg: cfg, tiers: tiers, shards: make([]govShard, shards)}
	for i := range g.shards {
		g.shards[i] = govShard{since: cfg.Dwell, ring: make([]float64, cfg.Window)}
	}
	return g
}

// Observe feeds one epoch's cost for a shard and returns the shard's tier
// after applying at most one transition.
func (g *Governor) Observe(shard int, cost float64) int {
	s := &g.shards[shard]
	s.ring[s.next] = cost
	s.next = (s.next + 1) % len(s.ring)
	if s.n < len(s.ring) {
		s.n++
	}
	s.since++
	p95 := p95of(s.ring, s.n)
	switch {
	case s.tier < g.tiers-1 && p95 > g.cfg.Budget && s.since >= g.cfg.Dwell:
		s.tier++
		s.resetWindow()
		g.demotions++
		if s.tier > g.worst {
			g.worst = s.tier
		}
	case s.tier > 0 && s.n == len(s.ring) && p95 <= g.cfg.Budget*g.cfg.Recover && s.since >= g.cfg.Dwell:
		s.tier--
		s.resetWindow()
		g.promotions++
	}
	return s.tier
}

// resetWindow clears the cost window after a transition so the next decision
// is made from post-transition epochs only — the demoted planner's costs, not
// the mixture that triggered the move.
func (s *govShard) resetWindow() {
	s.since = 0
	s.n = 0
	s.next = 0
}

// TierOf returns a shard's current tier (0 = full planner).
func (g *Governor) TierOf(shard int) int { return g.shards[shard].tier }

// Counters returns the lifetime demotion and promotion totals.
func (g *Governor) Counters() (demotions, promotions int64) {
	return g.demotions, g.promotions
}

// Worst returns the deepest tier any shard has reached over the governor's
// lifetime.
func (g *Governor) Worst() int { return g.worst }

// p95of returns the 95th percentile of the first n ring samples, matching the
// latencyRing convention (index ⌊0.95·(n−1)⌋ of the sorted sample).
func p95of(ring []float64, n int) float64 {
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), ring[:n]...)
	sort.Float64s(s)
	return s[int(0.95*float64(n-1))]
}

// tieredPlanner exposes a degradation ladder as one assign.Planner: Plan
// dispatches to the ladder entry the governor selected. Tier changes happen
// under the dispatcher's epoch lock between Steps, so the planner the shards
// see within one epoch is fixed.
//
// The ladder composes with incremental replanning: assign.Incremental caches
// only components whose last plan was empty, and emptiness is planner-
// independent — a component with no valid worker→task move is empty under
// DTA, Greedy, and Match alike — so splicing a cached empty component remains
// sound across tier switches.
type tieredPlanner struct {
	ladder []assign.Planner
	tier   int
}

// Name implements assign.Planner: the active tier's name.
func (p *tieredPlanner) Name() string { return p.ladder[p.tier].Name() }

// Plan implements assign.Planner.
func (p *tieredPlanner) Plan(workers []*core.Worker, tasks []*core.Task, now float64) core.Plan {
	return p.ladder[p.tier].Plan(workers, tasks, now)
}

// SetParallelism forwards the per-planner budget to every ladder entry that
// takes one.
func (p *tieredPlanner) SetParallelism(n int) {
	for _, pl := range p.ladder {
		if sp, ok := pl.(interface{ SetParallelism(int) }); ok {
			sp.SetParallelism(n)
		}
	}
}

func (p *tieredPlanner) setTier(t int) {
	if t >= 0 && t < len(p.ladder) {
		p.tier = t
	}
}
