package dispatch

import (
	"math/rand"
	"testing"
)

// trajectory replays a cost sequence through a fresh single-shard governor
// and returns the tier after every observation.
func trajectory(cfg GovernorConfig, tiers int, costs []float64) []int {
	g := NewGovernor(cfg, 1, tiers)
	out := make([]int, len(costs))
	for i, c := range costs {
		out[i] = g.Observe(0, c)
	}
	return out
}

// TestGovernorPropertyFuzz fuzzes random cost sequences against the
// governor's stated contract: tiers stay in range, at most one single-step
// transition per observation, consecutive transitions never closer than
// Dwell observations, promotions only after a full post-transition window,
// transition counters match the trajectory, and an identical rerun produces
// the byte-identical trajectory.
func TestGovernorPropertyFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		cfg := GovernorConfig{
			Budget:  1 + 9*rng.Float64(),
			Window:  1 + rng.Intn(12),
			Dwell:   1 + rng.Intn(10),
			Recover: 0.2 + 0.6*rng.Float64(),
		}
		tiers := 2 + rng.Intn(3)
		costs := make([]float64, 40+rng.Intn(160))
		for i := range costs {
			// Alternate lulls under the recovery threshold with bursts over
			// budget so both transition directions are exercised.
			if rng.Float64() < 0.5 {
				costs[i] = rng.Float64() * cfg.Budget * cfg.Recover
			} else {
				costs[i] = cfg.Budget * (1 + 3*rng.Float64())
			}
		}
		traj := trajectory(cfg, tiers, costs)

		prev, lastTrans := 0, -1
		demotions, promotions := 0, 0
		for k, tier := range traj {
			if tier < 0 || tier >= tiers {
				t.Fatalf("trial %d obs %d: tier %d outside [0, %d)", trial, k, tier, tiers)
			}
			switch delta := tier - prev; {
			case delta == 0:
			case delta == 1, delta == -1:
				if lastTrans >= 0 && k-lastTrans < cfg.Dwell {
					t.Fatalf("trial %d obs %d: transition %d observations after the previous one (dwell %d)",
						trial, k, k-lastTrans, cfg.Dwell)
				}
				if delta == -1 {
					if lastTrans >= 0 && k-lastTrans < cfg.Window {
						t.Fatalf("trial %d obs %d: promotion %d observations after a transition (window %d)",
							trial, k, k-lastTrans, cfg.Window)
					}
					promotions++
				} else {
					demotions++
				}
				lastTrans = k
			default:
				t.Fatalf("trial %d obs %d: tier jumped %d → %d in one observation", trial, k, prev, tier)
			}
			prev = tier
		}

		g := NewGovernor(cfg, 1, tiers)
		for _, c := range costs {
			g.Observe(0, c)
		}
		if d, p := g.Counters(); int(d) != demotions || int(p) != promotions {
			t.Fatalf("trial %d: counters %d/%d, trajectory shows %d/%d", trial, d, p, demotions, promotions)
		}

		if rerun := trajectory(cfg, tiers, costs); !equalInts(rerun, traj) {
			t.Fatalf("trial %d: rerun diverged\nfirst:  %v\nsecond: %v", trial, traj, rerun)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestGovernorDemotesOnFirstHotEpoch pins the partial-window demotion rule: a
// fresh shard's dwell clock starts satisfied, so the very first over-budget
// epoch demotes — a flash crowd is not granted a full window of blown SLAs.
func TestGovernorDemotesOnFirstHotEpoch(t *testing.T) {
	g := NewGovernor(GovernorConfig{Budget: 1, Window: 16, Dwell: 8}, 1, 3)
	if tier := g.Observe(0, 5); tier != 1 {
		t.Fatalf("tier after first hot epoch = %d, want 1", tier)
	}
	if g.Worst() != 1 {
		t.Fatalf("worst = %d, want 1", g.Worst())
	}
}

// TestGovernorPromotionWaitsFullWindow pins the recovery hysteresis: after a
// demotion, a shard steps back up only once a full window of post-transition
// epochs sits at or below Recover·Budget — never sooner, however quiet.
func TestGovernorPromotionWaitsFullWindow(t *testing.T) {
	cfg := GovernorConfig{Budget: 10, Window: 4, Dwell: 2, Recover: 0.5}
	g := NewGovernor(cfg, 1, 2)
	if tier := g.Observe(0, 100); tier != 1 {
		t.Fatalf("tier after burst = %d, want 1", tier)
	}
	for k := 1; k < cfg.Window; k++ {
		if tier := g.Observe(0, 1); tier != 1 {
			t.Fatalf("observation %d: promoted after %d quiet epochs, want a full window of %d", k, k, cfg.Window)
		}
	}
	if tier := g.Observe(0, 1); tier != 0 {
		t.Fatalf("tier after a full quiet window = %d, want 0", tier)
	}
}

// TestGovernorShardsAreIndependent: one shard's burst must not move its
// siblings' tiers — the governor's state is strictly per shard.
func TestGovernorShardsAreIndependent(t *testing.T) {
	g := NewGovernor(GovernorConfig{Budget: 1, Window: 4, Dwell: 2}, 3, 2)
	for i := 0; i < 10; i++ {
		g.Observe(1, 50)
		g.Observe(0, 0.1)
		g.Observe(2, 0.1)
	}
	if g.TierOf(0) != 0 || g.TierOf(1) != 1 || g.TierOf(2) != 0 {
		t.Fatalf("tiers = %d/%d/%d, want 0/1/0", g.TierOf(0), g.TierOf(1), g.TierOf(2))
	}
}
