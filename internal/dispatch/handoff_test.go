package dispatch

import (
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/workload"
)

// The handoff tests run on a 2×2 grid over [0,4)² with two shards: the
// banded ownership map gives row 0 (y < 2) to shard 0 and row 1 (y ≥ 2) to
// shard 1, so y = 2 is the boundary the halo protocol must bridge.
func handoffConfig(shards int, halo float64) Config {
	return Config{
		Shards:     shards,
		Grid:       geo.NewGrid(geo.Rect{MinX: 0, MinY: 0, MaxX: 4, MaxY: 4}, 2, 2),
		HaloRadius: halo,
		Step:       1,
		Travel:     travel,
		NewPlanner: greedyFactory(),
	}
}

// TestGhostMakesBoundaryTaskVisible is the tentpole's core scenario: a task
// owned by one shard, reachable only by a worker pinned to the neighboring
// shard. With halo replication the worker sees and serves it; with
// replication disabled it expires unseen — the documented pre-halo bug.
func TestGhostMakesBoundaryTaskVisible(t *testing.T) {
	run := func(halo float64) Metrics {
		d := New(handoffConfig(2, halo))
		// Worker in shard 0, 0.2 km south of the task across the boundary.
		d.WorkerOnline(&core.Worker{ID: 1, Loc: geo.Point{X: 1, Y: 1.9}, Reach: 1, On: 0, Off: 4000})
		d.SubmitTask(&core.Task{ID: 10, Loc: geo.Point{X: 1, Y: 2.1}, Pub: 0, Exp: 600, Cell: -1})
		d.Advance(700)
		return d.Snapshot()
	}

	m := run(0) // auto halo = the worker's 1 km reach
	if m.Assigned != 1 || m.Expired != 0 {
		t.Fatalf("halo on: assigned/expired = %d/%d, want 1/0", m.Assigned, m.Expired)
	}
	if m.GhostCopies != 1 || m.GhostHits != 1 {
		t.Fatalf("halo on: ghost copies/hits = %d/%d, want 1/1", m.GhostCopies, m.GhostHits)
	}
	if m.RoutedGhosts != 0 || m.RoutedTasks != 0 {
		t.Fatalf("halo on: routing not drained: ghosts=%d tasks=%d", m.RoutedGhosts, m.RoutedTasks)
	}

	m = run(-1) // replication disabled: boundary-blind
	if m.Assigned != 0 || m.Expired != 1 {
		t.Fatalf("halo off: assigned/expired = %d/%d, want 0/1", m.Assigned, m.Expired)
	}
	if m.GhostCopies != 0 {
		t.Fatalf("halo off: %d ghost copies created", m.GhostCopies)
	}
}

// TestArbitrationPicksEarliestArrival pins the conflict protocol: two shards
// commit the same boundary task in one epoch; the closer worker (earlier
// arrival) wins regardless of which shard owns the task, the loser is
// retracted, and the task is assigned exactly once.
func TestArbitrationPicksEarliestArrival(t *testing.T) {
	d := New(handoffConfig(2, 0))
	// Task owned by shard 1; the shard-0 worker competes through a ghost.
	d.WorkerOnline(&core.Worker{ID: 1, Loc: geo.Point{X: 1, Y: 1.4}, Reach: 1, On: 0, Off: 4000})
	d.WorkerOnline(&core.Worker{ID: 2, Loc: geo.Point{X: 1, Y: 2.5}, Reach: 1, On: 0, Off: 4000})
	d.SubmitTask(&core.Task{ID: 10, Loc: geo.Point{X: 1, Y: 2.1}, Pub: 0, Exp: 600, Cell: -1})
	d.Advance(1)
	m := d.Snapshot()
	if m.Assigned != 1 {
		t.Fatalf("assigned = %d, want exactly 1 (double commit must arbitrate)", m.Assigned)
	}
	if m.CommitConflicts != 1 || m.Retractions != 1 {
		t.Fatalf("conflicts/retractions = %d/%d, want 1/1", m.CommitConflicts, m.Retractions)
	}
	// Worker 2 is 0.4 km away, worker 1 is 0.7 km: worker 2 arrives first.
	if wp, ok := d.PlanOf(2); !ok || wp.Committed != 10 {
		t.Fatalf("winner plan = %+v, want worker 2 committed to task 10", wp)
	}
	if wp, ok := d.PlanOf(1); !ok || wp.Committed != -1 {
		t.Fatalf("loser plan = %+v, want worker 1 idle after retraction", wp)
	}
	// The owner's commit won here, so the win is not a ghost hit.
	if m.GhostHits != 0 {
		t.Fatalf("ghost hits = %d, want 0 (owner shard won)", m.GhostHits)
	}
}

// TestArbitrationGhostWin mirrors the conflict with the geometry flipped:
// the non-owner shard's worker is closer, so the ghost commit must win and
// the owner's copy must be dropped.
func TestArbitrationGhostWin(t *testing.T) {
	d := New(handoffConfig(2, 0))
	d.WorkerOnline(&core.Worker{ID: 1, Loc: geo.Point{X: 1, Y: 1.8}, Reach: 1, On: 0, Off: 4000})
	d.WorkerOnline(&core.Worker{ID: 2, Loc: geo.Point{X: 1, Y: 2.9}, Reach: 1, On: 0, Off: 4000})
	d.SubmitTask(&core.Task{ID: 10, Loc: geo.Point{X: 1, Y: 2.1}, Pub: 0, Exp: 600, Cell: -1})
	d.Advance(1)
	m := d.Snapshot()
	if m.Assigned != 1 || m.CommitConflicts != 1 || m.Retractions != 1 {
		t.Fatalf("assigned/conflicts/retractions = %d/%d/%d, want 1/1/1",
			m.Assigned, m.CommitConflicts, m.Retractions)
	}
	if wp, ok := d.PlanOf(1); !ok || wp.Committed != 10 {
		t.Fatalf("winner plan = %+v, want worker 1 committed via its ghost copy", wp)
	}
	if m.GhostHits != 1 {
		t.Fatalf("ghost hits = %d, want 1 (non-owner shard won)", m.GhostHits)
	}
}

// TestRetractedWorkerResumesPlan: a loser whose plan held a second task must
// take it in the same epoch rather than idling until the next replan.
func TestRetractedWorkerResumesPlan(t *testing.T) {
	d := New(handoffConfig(2, 0))
	d.WorkerOnline(&core.Worker{ID: 1, Loc: geo.Point{X: 1, Y: 1.9}, Reach: 2, On: 0, Off: 9000})
	d.WorkerOnline(&core.Worker{ID: 2, Loc: geo.Point{X: 1, Y: 2.2}, Reach: 2, On: 0, Off: 9000})
	// The contended boundary task, plus a fallback deep in shard 0 that only
	// worker 1 plans (worker 2 is farther from it than worker 1).
	d.SubmitTask(&core.Task{ID: 10, Loc: geo.Point{X: 1, Y: 2.1}, Pub: 0, Exp: 900, Cell: -1})
	d.SubmitTask(&core.Task{ID: 11, Loc: geo.Point{X: 1, Y: 1.0}, Pub: 0, Exp: 900, Cell: -1})
	d.Advance(1)
	m := d.Snapshot()
	if m.Assigned != 2 {
		t.Fatalf("assigned = %d, want 2 (loser resumes remaining plan in-epoch)", m.Assigned)
	}
	if wp, ok := d.PlanOf(1); !ok || wp.Committed != 11 {
		t.Fatalf("retracted worker plan = %+v, want committed to fallback task 11", wp)
	}
}

// TestArbitrationDropsBeforeRetracting pins the two-phase round: all copies
// of every arbitrated task are purged before any loser resumes its plan. A
// loser whose plan holds a replica of a task arbitrated *later* in the same
// round must not commit it — its committed owner copy is in that task's
// group, so a resume-commit would assign the task twice.
func TestArbitrationDropsBeforeRetracting(t *testing.T) {
	d := New(handoffConfig(2, 0))
	// Shard 0: worker 1 mid-way between the boundary tasks, planning both
	// via ghosts. Shard 1: workers 2 and 3, each on top of one task.
	d.WorkerOnline(&core.Worker{ID: 1, Loc: geo.Point{X: 1.8, Y: 1.95}, Reach: 1.5, On: 0, Off: 9000})
	d.WorkerOnline(&core.Worker{ID: 2, Loc: geo.Point{X: 1, Y: 2.05}, Reach: 1, On: 0, Off: 9000})
	d.WorkerOnline(&core.Worker{ID: 3, Loc: geo.Point{X: 2.5, Y: 2.1}, Reach: 1, On: 0, Off: 9000})
	// Ids are chosen so the contended task (5, the one worker 1 plans
	// first) is arbitrated before the task its resume would steal (9).
	d.SubmitTask(&core.Task{ID: 5, Loc: geo.Point{X: 2.5, Y: 2.05}, Pub: 0, Exp: 900, Cell: -1})
	d.SubmitTask(&core.Task{ID: 9, Loc: geo.Point{X: 1, Y: 2.0}, Pub: 0, Exp: 900, Cell: -1})
	d.Advance(1)
	m := d.Snapshot()
	if m.Assigned > 2 {
		t.Fatalf("assigned = %d for 2 tasks: a retraction resume double-committed an arbitrated task", m.Assigned)
	}
	if m.Assigned != 2 {
		t.Fatalf("assigned = %d, want 2", m.Assigned)
	}
	if wp, ok := d.PlanOf(1); !ok || wp.Committed != -1 {
		t.Fatalf("loser plan = %+v, want worker 1 idle (both its plan entries were won elsewhere)", wp)
	}
	if wp, ok := d.PlanOf(2); !ok || wp.Committed != 9 {
		t.Fatalf("worker 2 plan = %+v, want committed to task 9", wp)
	}
	if wp, ok := d.PlanOf(3); !ok || wp.Committed != 5 {
		t.Fatalf("worker 3 plan = %+v, want committed to task 5", wp)
	}
}

// TestAutoHaloWidensForLateLongReachWorker pins reGhost: a task submitted
// while no worker is online is not replicated (auto halo radius 0), but a
// long-reach worker coming online later widens the halo and the already-open
// boundary task must become visible to its shard retroactively.
func TestAutoHaloWidensForLateLongReachWorker(t *testing.T) {
	d := New(handoffConfig(2, 0))
	d.SubmitTask(&core.Task{ID: 10, Loc: geo.Point{X: 1, Y: 2.1}, Pub: 0, Exp: 900, Cell: -1})
	d.Advance(2)
	if m := d.Snapshot(); m.GhostCopies != 0 {
		t.Fatalf("ghost copies before any worker = %d, want 0", m.GhostCopies)
	}
	d.Ingest(Event{Time: 2, Kind: KindWorkerOnline,
		Worker: &core.Worker{ID: 1, Loc: geo.Point{X: 1, Y: 1.5}, Reach: 1, On: 2, Off: 4000}})
	d.Advance(700)
	m := d.Snapshot()
	if m.Assigned != 1 || m.GhostCopies != 1 || m.GhostHits != 1 {
		t.Fatalf("assigned/copies/hits = %d/%d/%d, want 1/1/1 (reGhost must replicate the open task)",
			m.Assigned, m.GhostCopies, m.GhostHits)
	}
}

// TestOffMapTaskStillReplicated: ownership routing clamps off-map points to
// boundary cells, so the halo query must reason from the same snapped
// geometry. A worker/task pair beyond the region's east edge, straddling the
// row boundary's extension, lands in different shards — the ghost must still
// bridge them even though the task's exact disk overlaps no grid cell.
func TestOffMapTaskStillReplicated(t *testing.T) {
	d := New(handoffConfig(2, 0))
	d.WorkerOnline(&core.Worker{ID: 1, Loc: geo.Point{X: 6, Y: 1.9}, Reach: 1, On: 0, Off: 4000})
	d.SubmitTask(&core.Task{ID: 10, Loc: geo.Point{X: 6, Y: 2.1}, Pub: 0, Exp: 600, Cell: -1})
	d.Advance(700)
	m := d.Snapshot()
	if m.Assigned != 1 || m.Expired != 0 {
		t.Fatalf("assigned/expired = %d/%d, want 1/0 (off-map boundary pair must hand off)", m.Assigned, m.Expired)
	}
	if m.GhostCopies == 0 || m.GhostHits != 1 {
		t.Fatalf("ghost copies/hits = %d/%d, want >0/1", m.GhostCopies, m.GhostHits)
	}
}

// TestGhostExpiryCountedOnce: a replicated task that nobody serves expires
// in every shard holding a copy but must count exactly once.
func TestGhostExpiryCountedOnce(t *testing.T) {
	d := New(handoffConfig(2, 1.5))
	d.SubmitTask(&core.Task{ID: 10, Loc: geo.Point{X: 1, Y: 2.1}, Pub: 0, Exp: 10, Cell: -1})
	d.Advance(20)
	m := d.Snapshot()
	if m.GhostCopies != 1 {
		t.Fatalf("ghost copies = %d, want 1 (fixed 1.5 km halo spans the boundary)", m.GhostCopies)
	}
	if m.Assigned != 0 || m.Expired != 1 {
		t.Fatalf("assigned/expired = %d/%d, want 0/1 (replica expiry must not double count)",
			m.Assigned, m.Expired)
	}
	if m.RoutedGhosts != 0 || m.RoutedTasks != 0 {
		t.Fatalf("routing not drained after expiry: ghosts=%d tasks=%d", m.RoutedGhosts, m.RoutedTasks)
	}
}

// TestCancelDropsGhostCopies: withdrawing a replicated task must purge every
// replica before the next planning instant, or a ghost shard could assign a
// cancelled task.
func TestCancelDropsGhostCopies(t *testing.T) {
	d := New(handoffConfig(2, 1.5))
	d.SubmitTask(&core.Task{ID: 10, Loc: geo.Point{X: 1, Y: 2.1}, Pub: 0, Exp: 900, Cell: -1})
	d.Advance(1)
	if m := d.Snapshot(); m.RoutedGhosts != 1 {
		t.Fatalf("routed ghosts = %d, want 1", m.RoutedGhosts)
	}
	d.CancelTask(10)
	// A worker that could have served the replica comes online after the
	// cancel lands in the same epoch batch.
	d.Ingest(Event{Time: d.Now(), Kind: KindWorkerOnline,
		Worker: &core.Worker{ID: 1, Loc: geo.Point{X: 1, Y: 1.9}, Reach: 1, On: 1, Off: 4000}})
	d.Advance(300)
	m := d.Snapshot()
	if m.Cancelled != 1 || m.Assigned != 0 {
		t.Fatalf("cancelled/assigned = %d/%d, want 1/0 (replica of a cancelled task was assignable)",
			m.Cancelled, m.Assigned)
	}
	if m.RoutedGhosts != 0 {
		t.Fatalf("routed ghosts = %d after cancel, want 0", m.RoutedGhosts)
	}
}

// TestHandoffDeterministicAcrossParallelism extends the determinism contract
// to the halo protocol: with replication and arbitration active on a real
// trace, the outcome — ghost and conflict counters included — is
// byte-identical across runs and parallelism levels.
func TestHandoffDeterministicAcrossParallelism(t *testing.T) {
	cfg := workload.Yueche().Scaled(0.1)
	cfg.HistoryDuration = 0
	sc := workload.Generate(cfg)
	run := func(parallelism int) string {
		d := New(Config{
			Shards: 4, Grid: sc.Grid, Step: 2, Now: sc.T0,
			Travel: travel, NewPlanner: searchFactory(), Parallelism: parallelism,
		})
		m := LoadGen{Events: sc.Events(), T1: sc.T1}.Run(d).Metrics
		if m.GhostCopies == 0 {
			t.Fatal("trace produced no ghost replicas; the handoff path is not exercised")
		}
		return digest(m)
	}
	ref := run(1)
	for run2 := 0; run2 < 2; run2++ {
		for _, parallelism := range []int{1, 4, 0} {
			if got := run(parallelism); got != ref {
				t.Fatalf("parallelism %d diverged:\n got %s\nwant %s", parallelism, got, ref)
			}
		}
	}
}
