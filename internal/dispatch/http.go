package dispatch

import (
	"encoding/json"
	"math"
	"net/http"
	"strconv"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/obs"
)

// syntheticIDBase starts server-assigned task ids well above any client-
// chosen range so the two never collide.
const syntheticIDBase = 1 << 30

// Handler is the HTTP/JSON ingestion and query API over a Dispatcher:
//
//	POST /v1/workers            {id, x, y, reach, avail}   worker online
//	POST /v1/workers/offline    {id}                       worker offline
//	POST /v1/workers/heartbeat  {id, x, y}                 position update
//	POST /v1/tasks              {id?, x, y, valid}         submit task
//	POST /v1/tasks/cancel       {id}                       cancel task
//	POST /v1/stream             batched event stream       binary frames or NDJSON (internal/wire)
//	GET  /v1/plan?worker=ID                                current schedule
//	GET  /v1/metrics                                       snapshot (JSON)
//	GET  /v1/trace?n=K                                     epoch trace records
//	GET  /v1/trace.json?n=K                                Chrome trace-event JSON (spans)
//	GET  /v1/tasks/{id}/history                            lifecycle ledger chain
//	GET  /v1/flight                                        flight-recorder dumps
//	GET  /metrics                                          Prometheus text format
//	GET  /healthz                                          liveness
//
// Ingestion endpoints respond 202 Accepted with the logical effect time:
// events take effect at the next planning epoch, not synchronously.
type Handler struct {
	d   *Dispatcher
	mux *http.ServeMux
}

// NewHandler wraps a dispatcher in its HTTP API.
func NewHandler(d *Dispatcher) *Handler {
	h := &Handler{d: d, mux: http.NewServeMux()}
	h.mux.HandleFunc("POST /v1/workers", h.workerOnline)
	h.mux.HandleFunc("POST /v1/workers/offline", h.workerOffline)
	h.mux.HandleFunc("POST /v1/workers/heartbeat", h.heartbeat)
	h.mux.HandleFunc("POST /v1/tasks", h.submitTask)
	h.mux.HandleFunc("POST /v1/tasks/cancel", h.cancelTask)
	h.mux.HandleFunc("POST /v1/stream", h.stream)
	h.mux.HandleFunc("GET /v1/plan", h.plan)
	h.mux.HandleFunc("GET /v1/metrics", h.metrics)
	h.mux.HandleFunc("GET /v1/trace", h.traceRecords)
	h.mux.HandleFunc("GET /v1/trace.json", h.chromeTrace)
	h.mux.HandleFunc("GET /v1/tasks/{id}/history", h.taskHistory)
	h.mux.HandleFunc("GET /v1/flight", h.flight)
	h.mux.HandleFunc("GET /metrics", h.prometheus)
	h.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

type workerReq struct {
	ID    int     `json:"id"`
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
	Reach float64 `json:"reach"`
	// Avail is the availability window length in logical seconds from now.
	Avail float64 `json:"avail"`
}

type taskReq struct {
	ID int     `json:"id"`
	X  float64 `json:"x"`
	Y  float64 `json:"y"`
	// Valid is the validity window e − p in logical seconds.
	Valid float64 `json:"valid"`
}

type idReq struct {
	ID int     `json:"id"`
	X  float64 `json:"x"`
	Y  float64 `json:"y"`
}

type acceptedResp struct {
	ID int `json:"id"`
	// Time is the logical instant the event takes effect (the next epoch).
	Time float64 `json:"time"`
}

func (h *Handler) workerOnline(w http.ResponseWriter, r *http.Request) {
	var req workerReq
	if !decode(w, r, &req) {
		return
	}
	if req.ID <= 0 || req.Reach <= 0 || req.Avail <= 0 {
		httpError(w, http.StatusBadRequest, "id, reach and avail must be positive")
		return
	}
	if !finite(req.X, req.Y, req.Reach, req.Avail) {
		httpError(w, http.StatusBadRequest, "x, y, reach and avail must be finite")
		return
	}
	now := h.d.Now()
	h.d.WorkerOnline(&core.Worker{
		ID: req.ID, Loc: geo.Point{X: req.X, Y: req.Y},
		Reach: req.Reach, On: now, Off: now + req.Avail,
	})
	writeJSON(w, http.StatusAccepted, acceptedResp{ID: req.ID, Time: now})
}

func (h *Handler) workerOffline(w http.ResponseWriter, r *http.Request) {
	var req idReq
	if !decode(w, r, &req) {
		return
	}
	h.d.WorkerOffline(req.ID)
	writeJSON(w, http.StatusAccepted, acceptedResp{ID: req.ID, Time: h.d.Now()})
}

func (h *Handler) heartbeat(w http.ResponseWriter, r *http.Request) {
	var req idReq
	if !decode(w, r, &req) {
		return
	}
	if !finite(req.X, req.Y) {
		httpError(w, http.StatusBadRequest, "x and y must be finite")
		return
	}
	h.d.Heartbeat(req.ID, geo.Point{X: req.X, Y: req.Y})
	writeJSON(w, http.StatusAccepted, acceptedResp{ID: req.ID, Time: h.d.Now()})
}

func (h *Handler) submitTask(w http.ResponseWriter, r *http.Request) {
	var req taskReq
	if !decode(w, r, &req) {
		return
	}
	if req.Valid <= 0 {
		httpError(w, http.StatusBadRequest, "valid must be positive")
		return
	}
	if !finite(req.X, req.Y, req.Valid) {
		httpError(w, http.StatusBadRequest, "x, y and valid must be finite")
		return
	}
	// Negative ids are reserved for forecaster-generated virtual tasks and
	// ids at or above the synthetic base for server-assigned ones; a
	// client-chosen collision with either could double-assign an id.
	if req.ID < 0 || req.ID >= syntheticIDBase {
		httpError(w, http.StatusBadRequest,
			"id must be in [0, 2^30) (0 = server-assigned)")
		return
	}
	id := req.ID
	if id == 0 {
		id = h.d.nextSyntheticID()
	}
	now := h.d.Now()
	h.d.SubmitTask(&core.Task{
		ID: id, Loc: geo.Point{X: req.X, Y: req.Y},
		Pub: now, Exp: now + req.Valid, Cell: -1,
	})
	writeJSON(w, http.StatusAccepted, acceptedResp{ID: id, Time: now})
}

func (h *Handler) cancelTask(w http.ResponseWriter, r *http.Request) {
	var req idReq
	if !decode(w, r, &req) {
		return
	}
	h.d.CancelTask(req.ID)
	writeJSON(w, http.StatusAccepted, acceptedResp{ID: req.ID, Time: h.d.Now()})
}

// stream is the batched ingest endpoint: the request body is a persistent
// event stream — length-prefixed binary frames (internal/wire) or NDJSON
// lines, sniffed from the first byte — consumed until EOF. The response
// summarizes the session: accepted/rejected event counts and the frame
// count. This is the high-throughput face of the ingest API; the per-event
// JSON endpoints above are its degenerate single-event case.
//
//	# binary (a client encodes frames with internal/wire)
//	curl -s --data-binary @events.wire localhost:8080/v1/stream
//	# NDJSON (curl-able by hand)
//	printf '%s\n' '{"kind":"task_submit","id":12,"x":1,"y":2,"pub":0,"exp":60}' |
//	  curl -s --data-binary @- localhost:8080/v1/stream
func (h *Handler) stream(w http.ResponseWriter, r *http.Request) {
	sum, err := h.d.ConsumeStream(r.Body)
	if err != nil {
		status := http.StatusInternalServerError
		if IsProtocolError(err) {
			status = http.StatusBadRequest
		}
		writeJSON(w, status, map[string]any{"error": err.Error(), "summary": sum})
		return
	}
	writeJSON(w, http.StatusAccepted, sum)
}

func (h *Handler) plan(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.URL.Query().Get("worker"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "worker query parameter must be an integer")
		return
	}
	wp, ok := h.d.PlanOf(id)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown or departed worker")
		return
	}
	writeJSON(w, http.StatusOK, wp)
}

func (h *Handler) metrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, h.d.Snapshot())
}

// traceRecords serves the epoch trace ring (empty without Config.TraceDepth):
// ?n=K limits the response to the K most recent epochs.
func (h *Handler) traceRecords(w http.ResponseWriter, r *http.Request) {
	n := 0
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			httpError(w, http.StatusBadRequest, "n query parameter must be a non-negative integer")
			return
		}
		n = v
	}
	tr := h.d.Trace(n)
	if tr == nil {
		tr = []EpochTrace{}
	}
	writeJSON(w, http.StatusOK, tr)
}

// chromeTrace serves the stage-span ring as Chrome trace-event JSON — load
// the response in chrome://tracing or Perfetto. Empty (but valid) without
// ObsConfig.Spans; ?n=K limits it to the K most recent epochs.
func (h *Handler) chromeTrace(w http.ResponseWriter, r *http.Request) {
	n := 0
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			httpError(w, http.StatusBadRequest, "n query parameter must be a non-negative integer")
			return
		}
		n = v
	}
	raw, err := h.d.ChromeTrace(n)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(raw)
}

// taskHistory serves one task's lifecycle ledger chain: every disposal
// transition with its cause, the machine-readable answer to "why was task X
// not served". 404 when the ledger is off, never saw the id, or evicted it.
func (h *Handler) taskHistory(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "task id must be an integer")
		return
	}
	th, ok := h.d.TaskHistory(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no ledger chain for this task (ledger off, id unknown, or chain evicted)")
		return
	}
	writeJSON(w, http.StatusOK, th)
}

// flight serves the retained flight-recorder dumps, oldest first. Empty
// without ObsConfig.FlightDepth.
func (h *Handler) flight(w http.ResponseWriter, _ *http.Request) {
	dumps := h.d.FlightDumps()
	if dumps == nil {
		dumps = []obs.FlightDump{}
	}
	writeJSON(w, http.StatusOK, dumps)
}

// finite rejects NaN and ±Inf inputs before they reach shard routing: a
// non-finite coordinate would poison the grid-cell arithmetic every ownership
// and replication decision is built on.
func finite(vals ...float64) bool {
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

func decode(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		httpError(w, http.StatusBadRequest, "malformed JSON body: "+err.Error())
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
