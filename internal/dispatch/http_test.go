package dispatch

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/stream"
)

func postJSON(t *testing.T, srv *httptest.Server, path string, body string) map[string]any {
	t.Helper()
	resp, err := http.Post(srv.URL+path, "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST %s: status %d", path, resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("POST %s: decode: %v", path, err)
	}
	return out
}

func TestHTTPLifecycle(t *testing.T) {
	d := singleShard(searchFactory())
	srv := httptest.NewServer(NewHandler(d))
	defer srv.Close()

	// Liveness.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v / %v", err, resp.Status)
	}
	resp.Body.Close()

	// Worker online + task submit through the API.
	postJSON(t, srv, "/v1/workers", `{"id":1,"x":0,"y":0,"reach":1,"avail":1000}`)
	taskResp := postJSON(t, srv, "/v1/tasks", `{"x":0.1,"y":0,"valid":200}`)
	taskID := int(taskResp["id"].(float64))
	if taskID < syntheticIDBase {
		t.Fatalf("server-assigned task id %d below synthetic base", taskID)
	}

	// Events take effect at the next epoch; drive the clock as Serve would.
	d.Advance(5)

	// Plan query: the worker must be committed to (or planning toward) the
	// submitted task.
	var wp stream.WorkerPlan
	getJSON(t, srv, "/v1/plan?worker=1", &wp)
	if wp.Worker != 1 {
		t.Fatalf("plan for worker %d, want 1", wp.Worker)
	}
	if wp.Committed != taskID && !contains(wp.Next, taskID) {
		t.Fatalf("task %d absent from plan %+v", taskID, wp)
	}

	// Metrics snapshot.
	var m Metrics
	getJSON(t, srv, "/v1/metrics", &m)
	if m.Assigned != 1 {
		t.Fatalf("assigned = %d, want 1", m.Assigned)
	}
	if m.Ingested != 2 || m.Applied != 2 {
		t.Fatalf("ingested/applied = %d/%d, want 2/2", m.Ingested, m.Applied)
	}
	if m.Epochs == 0 {
		t.Fatal("metrics must report executed epochs")
	}

	// Unknown worker: 404.
	r, err := http.Get(srv.URL + "/v1/plan?worker=99")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown worker: status %d, want 404", r.StatusCode)
	}
}

func TestHTTPValidation(t *testing.T) {
	d := singleShard(searchFactory())
	srv := httptest.NewServer(NewHandler(d))
	defer srv.Close()

	bad := []struct{ path, body string }{
		{"/v1/workers", `{"id":0,"reach":1,"avail":10}`},
		{"/v1/workers", `{"id":1,"reach":-1,"avail":10}`},
		{"/v1/tasks", `{"x":1,"valid":0}`},
		{"/v1/tasks", `not json`},
		{"/v1/workers", `{"unknown_field":true}`},
		// Non-finite coordinates must never reach shard routing: overflowing
		// numbers are rejected at decode time, NaN/Infinity tokens are not
		// valid JSON, and the handlers' finite() guard backstops both.
		{"/v1/workers", `{"id":1,"x":1e999,"y":0,"reach":1,"avail":10}`},
		{"/v1/workers", `{"id":1,"x":0,"y":-1e999,"reach":1,"avail":10}`},
		{"/v1/workers", `{"id":1,"x":NaN,"y":0,"reach":1,"avail":10}`},
		{"/v1/tasks", `{"id":1,"x":1e999,"y":0,"valid":10}`},
		{"/v1/tasks", `{"id":1,"x":0,"y":Infinity,"valid":10}`},
		{"/v1/workers/heartbeat", `{"id":1,"x":1e999,"y":0}`},
		{"/v1/workers/heartbeat", `{"id":1,"x":0,"y":-Infinity}`},
	}
	for _, tc := range bad {
		resp, err := http.Post(srv.URL+tc.path, "application/json", bytes.NewBufferString(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %s %q: status %d, want 400", tc.path, tc.body, resp.StatusCode)
		}
	}
}

func TestHTTPOfflineAndCancel(t *testing.T) {
	d := singleShard(searchFactory())
	srv := httptest.NewServer(NewHandler(d))
	defer srv.Close()

	postJSON(t, srv, "/v1/workers", `{"id":7,"x":2,"y":2,"reach":1,"avail":1000}`)
	taskResp := postJSON(t, srv, "/v1/tasks", `{"id":70,"x":0,"y":0,"valid":500}`)
	if int(taskResp["id"].(float64)) != 70 {
		t.Fatal("client-chosen task id not honored")
	}
	d.Advance(2)
	postJSON(t, srv, "/v1/tasks/cancel", `{"id":70}`)
	postJSON(t, srv, "/v1/workers/heartbeat", `{"id":7,"x":0.1,"y":0}`)
	postJSON(t, srv, "/v1/workers/offline", `{"id":7}`)
	d.Advance(10)

	var m Metrics
	getJSON(t, srv, "/v1/metrics", &m)
	if m.Cancelled != 1 {
		t.Fatalf("cancelled = %d, want 1", m.Cancelled)
	}
	if _, ok := d.PlanOf(7); ok {
		t.Fatal("worker 7 still active after offline")
	}
}

func getJSON(t *testing.T, srv *httptest.Server, path string, into any) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: decode: %v", path, err)
	}
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// ExampleNewHandler demonstrates the wire format of the metrics endpoint.
func ExampleNewHandler() {
	d := New(Config{Step: 1, NewPlanner: greedyFactory()})
	srv := httptest.NewServer(NewHandler(d))
	defer srv.Close()
	resp, _ := http.Get(srv.URL + "/healthz")
	fmt.Println(resp.Status)
	resp.Body.Close()
	// Output: 200 OK
}

// TestHTTPMetricsCounterRoundTrip pins the metrics endpoint's wire names for
// the handoff and incremental-replanning counters: a run that exercises
// ghost replication, commit arbitration, and cache reuse must surface every
// counter under its documented JSON key with the snapshot's exact value.
func TestHTTPMetricsCounterRoundTrip(t *testing.T) {
	d := New(incrementalConfig(false))
	srv := httptest.NewServer(NewHandler(d))
	defer srv.Close()

	// The arbitration geometry of TestIncrementalSurvivesArbitrationRetraction:
	// a contended boundary task plus a quiet region that caches.
	d.SubmitTask(&core.Task{ID: 20, Loc: geo.Point{X: 3.5, Y: 0.5}, Pub: 0, Exp: 3000, Cell: -1})
	d.WorkerOnline(&core.Worker{ID: 1, Loc: geo.Point{X: 1, Y: 1.9}, Reach: 0.8, On: 0, Off: 4000})
	d.WorkerOnline(&core.Worker{ID: 2, Loc: geo.Point{X: 1, Y: 2.2}, Reach: 0.8, On: 0, Off: 4000})
	d.SubmitTask(&core.Task{ID: 10, Loc: geo.Point{X: 1, Y: 2.1}, Pub: 0, Exp: 600, Cell: -1})
	d.Advance(30)

	snap := d.Snapshot()
	if snap.GhostCopies == 0 || snap.CommitConflicts == 0 || snap.Retractions == 0 || snap.IncrementalHits == 0 {
		t.Fatalf("scenario under-exercises the counters: %+v", snap)
	}

	var wire map[string]any
	getJSON(t, srv, "/v1/metrics", &wire)
	for key, want := range map[string]int64{
		"ghost_copies":         snap.GhostCopies,
		"ghost_hits":           snap.GhostHits,
		"routed_ghosts":        int64(snap.RoutedGhosts),
		"commit_conflicts":     snap.CommitConflicts,
		"retractions":          snap.Retractions,
		"incremental_hits":     snap.IncrementalHits,
		"components_replanned": snap.ComponentsReplanned,
	} {
		raw, ok := wire[key]
		if !ok {
			t.Errorf("metrics JSON lacks %q", key)
			continue
		}
		if got := int64(raw.(float64)); got != want {
			t.Errorf("metrics %q = %d, want %d", key, got, want)
		}
	}
}

// TestHTTPPrometheusExposition pins the /metrics scrape surface: the text
// exposition content type, counter/gauge typing, and the overload series —
// shed totals and per-shard tiers — an operator watches during a chaos drill.
func TestHTTPPrometheusExposition(t *testing.T) {
	d := New(Config{
		Step: 1, Travel: travel, NewPlanner: searchFactory(),
		Admission: AdmissionConfig{MaxOpenTasks: 1, DeferSlack: 10000},
	})
	srv := httptest.NewServer(NewHandler(d))
	defer srv.Close()
	d.WorkerOnline(&core.Worker{ID: 1, Loc: geo.Point{X: 0}, Reach: 1, On: 0, Off: 1000})
	// Pool cap 1: the second task's earlier deadline displaces the first out
	// of shard 0, which sheds it under the huge slack bar — so the shed shows
	// up in both the global and the per-shard series.
	d.SubmitTask(&core.Task{ID: 1, Loc: geo.Point{X: 0.1}, Pub: 0, Exp: 900, Cell: -1})
	d.SubmitTask(&core.Task{ID: 2, Loc: geo.Point{X: 0.2}, Pub: 0, Exp: 500, Cell: -1})
	d.Advance(5)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content type %q is not the Prometheus text exposition format", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE datawa_assigned_total counter",
		"datawa_assigned_total 1",
		"datawa_shed_total 1",
		"datawa_deferred_total 0",
		"# TYPE datawa_shard_tier gauge",
		`datawa_shard_tier{shard="0"} 0`,
		`datawa_shard_shed_total{shard="0"} 1`,
		"# HELP datawa_shard_shed_total Tasks terminally shed from this shard's open pool by admission control.",
		"# TYPE datawa_epoch_wall_seconds histogram",
		`datawa_epoch_wall_seconds_bucket{le="+Inf"} 5`,
		"datawa_epoch_wall_seconds_count 5",
		"# TYPE datawa_stage_wall_seconds histogram",
		`datawa_stage_wall_seconds_bucket{stage="step",le="+Inf"} 5`,
		`datawa_stage_wall_seconds_count{stage="arbitration"} 5`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition lacks %q", want)
		}
	}
}

// TestHTTPTraceEndpoint pins the epoch-trace query surface: oldest-first
// consecutive records bounded by the ring depth, ?n truncation to the most
// recent epochs, 400 on a malformed n, and an empty (not null) array when
// tracing is off.
func TestHTTPTraceEndpoint(t *testing.T) {
	d := New(Config{Step: 1, Travel: travel, NewPlanner: searchFactory(), TraceDepth: 8})
	srv := httptest.NewServer(NewHandler(d))
	defer srv.Close()
	d.WorkerOnline(&core.Worker{ID: 1, Loc: geo.Point{X: 0}, Reach: 1, On: 0, Off: 1000})
	d.Advance(20)

	var all []EpochTrace
	getJSON(t, srv, "/v1/trace", &all)
	if len(all) != 8 {
		t.Fatalf("ring depth 8 after 20 epochs returned %d records", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Epoch != all[i-1].Epoch+1 {
			t.Fatalf("trace records out of order: epoch %d follows %d", all[i].Epoch, all[i-1].Epoch)
		}
	}
	var tail []EpochTrace
	getJSON(t, srv, "/v1/trace?n=2", &tail)
	if len(tail) != 2 || tail[1].Epoch != all[len(all)-1].Epoch {
		t.Fatalf("?n=2 returned %d records ending at the wrong epoch: %+v", len(tail), tail)
	}

	for _, q := range []string{"?n=-1", "?n=x"} {
		resp, err := http.Get(srv.URL + "/v1/trace" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET /v1/trace%s: status %d, want 400", q, resp.StatusCode)
		}
	}

	off := singleShard(searchFactory())
	srvOff := httptest.NewServer(NewHandler(off))
	defer srvOff.Close()
	respOff, err := http.Get(srvOff.URL + "/v1/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer respOff.Body.Close()
	raw, err := io.ReadAll(respOff.Body)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(raw)); got != "[]" {
		t.Fatalf("trace-off response = %q, want an empty JSON array", got)
	}
}
