package dispatch

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
)

// incrementalConfig is the handoff geometry on a finer 8×8 grid (0.5 km
// cells over [0,4)²), so quiet regions genuinely partition away from the
// shard boundary instead of merging into two giant cells.
func incrementalConfig(disable bool) Config {
	cfg := handoffConfig(2, 0)
	cfg.Grid = geo.NewGrid(geo.Rect{MinX: 0, MinY: 0, MaxX: 4, MaxY: 4}, 8, 8)
	cfg.DisableIncremental = disable
	return cfg
}

// normalizeMetrics blanks the fields that legitimately differ between an
// incremental and a full-replan run: reuse counters and wall-clock figures.
func normalizeMetrics(m Metrics) string {
	m.IncrementalHits, m.ComponentsReplanned = 0, 0
	m.EpochP50, m.EpochP95, m.EpochP99 = 0, 0, 0
	m.PlanTime = 0
	for i := range m.Shards {
		m.Shards[i].Stats.PlanTime = 0
	}
	return fmt.Sprintf("%+v", m)
}

// TestIncrementalSurvivesArbitrationRetraction is the adversarial pin on the
// cache-invalidation story: a cross-shard commit conflict retracts a loser
// mid-epoch (the resumed plan can commit other tasks and the snapped-back
// worker re-enters the pool), while an unreachable task sits in a quiet
// cached component until a late worker onlines next to it. The incremental
// run must match the full-replan run on every per-epoch snapshot — a
// transiently stale splice would show up immediately, not just in the
// terminal counters.
func TestIncrementalSurvivesArbitrationRetraction(t *testing.T) {
	script := func(disable bool) ([]string, Metrics) {
		d := New(incrementalConfig(disable))
		var snaps []string
		step := func(n int) {
			for i := 0; i < n; i++ {
				d.Tick()
				snaps = append(snaps, normalizeMetrics(d.Snapshot()))
			}
		}
		// A task no worker can reach: its component caches as quiet/empty.
		d.SubmitTask(&core.Task{ID: 20, Loc: geo.Point{X: 3.5, Y: 0.5}, Pub: 0, Exp: 3000, Cell: -1})
		// The boundary conflict: both workers commit task 10 through the halo,
		// arbitration retracts the farther one (worker 1), whose resumed plan
		// falls through to the fallback task 11 deep in its own shard.
		d.WorkerOnline(&core.Worker{ID: 1, Loc: geo.Point{X: 1, Y: 1.9}, Reach: 0.8, On: 0, Off: 4000})
		d.WorkerOnline(&core.Worker{ID: 2, Loc: geo.Point{X: 1, Y: 2.2}, Reach: 0.8, On: 0, Off: 4000})
		d.SubmitTask(&core.Task{ID: 10, Loc: geo.Point{X: 1, Y: 2.1}, Pub: 0, Exp: 600, Cell: -1})
		d.SubmitTask(&core.Task{ID: 11, Loc: geo.Point{X: 1, Y: 1.3}, Pub: 0, Exp: 600, Cell: -1})
		step(4)
		// Wake the quiet component: a worker onlines within reach of task 20.
		// Its admission must invalidate the cached component, or the splice
		// would leave 20 unplanned while full replanning assigns it.
		d.WorkerOnline(&core.Worker{ID: 3, Loc: geo.Point{X: 3.4, Y: 0.6}, Reach: 0.5, On: d.Now(), Off: 4000})
		step(4)
		// Heartbeat-move a worker across the map and cancel an open task:
		// both must land in the dirty set.
		d.Heartbeat(2, geo.Point{X: 2.0, Y: 3.5})
		d.SubmitTask(&core.Task{ID: 30, Loc: geo.Point{X: 0.5, Y: 3.5}, Pub: d.Now(), Exp: d.Now() + 400, Cell: -1})
		step(2)
		d.CancelTask(30)
		// Run long enough for motions to complete and idle workers to cycle
		// through quiet (cache-served) planning instants.
		step(30)
		return snaps, d.Snapshot()
	}

	inc, incFinal := script(false)
	full, fullFinal := script(true)
	if len(inc) != len(full) {
		t.Fatalf("snapshot counts differ: %d vs %d", len(inc), len(full))
	}
	for i := range inc {
		if inc[i] != full[i] {
			t.Fatalf("epoch %d diverged\nincremental: %s\nfull:        %s", i, inc[i], full[i])
		}
	}
	// The scenario must actually exercise what it claims to: an arbitration
	// retraction, cache reuse on the incremental side, and the formerly-quiet
	// task served once its component is invalidated.
	if incFinal.Retractions == 0 {
		t.Fatal("scenario produced no retraction; the adversarial case is not exercised")
	}
	if incFinal.IncrementalHits == 0 {
		t.Fatal("scenario produced no incremental reuse; the cache is not exercised")
	}
	if incFinal.Assigned != 3 || incFinal.Expired != 0 || incFinal.Cancelled != 1 {
		t.Fatalf("assigned/expired/cancelled = %d/%d/%d, want 3/0/1 (tasks 10, 11, 20 served; 30 cancelled)",
			incFinal.Assigned, incFinal.Expired, incFinal.Cancelled)
	}
	if fullFinal.IncrementalHits != 0 {
		t.Fatalf("disabled run reports %d incremental hits", fullFinal.IncrementalHits)
	}
}

// TestIncrementalDisabledForFTA pins the safety gate: fixed-plan semantics
// change the planner pool without pool events (locked plans, reserved
// tasks), so the incremental wrapper must not engage there.
func TestIncrementalDisabledForFTA(t *testing.T) {
	cfg := incrementalConfig(false)
	cfg.Fixed = true
	d := New(cfg)
	d.WorkerOnline(&core.Worker{ID: 1, Loc: geo.Point{X: 1, Y: 1}, Reach: 1, On: 0, Off: 4000})
	d.SubmitTask(&core.Task{ID: 10, Loc: geo.Point{X: 1, Y: 1.2}, Pub: 0, Exp: 600, Cell: -1})
	d.Advance(5)
	m := d.Snapshot()
	if m.Assigned != 1 {
		t.Fatalf("assigned = %d, want 1", m.Assigned)
	}
	if m.IncrementalHits != 0 || m.ComponentsReplanned != 0 {
		t.Fatalf("FTA run reports incremental counters %d/%d, want 0/0",
			m.IncrementalHits, m.ComponentsReplanned)
	}
}
