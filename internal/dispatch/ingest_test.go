package dispatch

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/workload"
)

// replayShape replays the scenario trace with explicit control over the
// ingest-queue shape and transport, returning the final snapshot.
func replayShape(sc *workload.Scenario, parallelism int, single bool, queueSize int, stream bool, batch int) Metrics {
	d := New(Config{
		Shards:      4,
		Grid:        sc.Grid,
		Step:        2,
		Now:         sc.T0,
		Travel:      travel,
		NewPlanner:  searchFactory(),
		Parallelism: parallelism,
		SingleQueue: single,
		QueueSize:   queueSize,
	})
	return LoadGen{Events: sc.Events(), T1: sc.T1, Stream: stream, Batch: batch}.Run(d).Metrics
}

// TestQueueShapeEquivalence is the sharded-queue property test's sequential
// half: for one event stream, the sharded lock-free queue and the legacy
// single channel must produce byte-identical snapshots at every parallelism
// level. Lane routing spreads contention; the (Time, seq) pending order — not
// lane interleaving — decides what the epochs see.
func TestQueueShapeEquivalence(t *testing.T) {
	sc := testScenario(t)
	ref := digest(replayShape(sc, 1, true, 0, false, 0))
	for _, parallelism := range []int{1, 4, 0} {
		sharded := digest(replayShape(sc, parallelism, false, 0, false, 0))
		if sharded != ref {
			t.Fatalf("parallelism %d: sharded queue diverged from channel:\n got %s\nwant %s",
				parallelism, sharded, ref)
		}
	}
}

// TestQueueSpillEquivalence drives both queue shapes through the full-queue
// spill-to-pending branch: a queue sized far below the burst forces every
// producer past the ring/channel into the pending heap, and the outcome must
// still match an amply-sized queue exactly. QueueSize 8 clamps the sharded
// queue to its 64-slot lane minimum, so the 500-event single-cell burst
// overflows the one lane it routes to by ~8x.
func TestQueueSpillEquivalence(t *testing.T) {
	run := func(single bool, queueSize int) Metrics {
		d := New(Config{
			Shards: 2, Grid: geo.NewGrid(geo.Rect{MaxX: 6, MaxY: 6}, 3, 3), Step: 1,
			Travel: travel, NewPlanner: greedyFactory(),
			SingleQueue: single, QueueSize: queueSize,
		})
		d.Ingest(Event{Time: 0, Kind: KindWorkerOnline,
			Worker: &core.Worker{ID: 1, Loc: geo.Point{X: 3}, Reach: 1, On: 0, Off: 1000}})
		const n = 500
		for i := 0; i < n; i++ {
			d.Ingest(Event{Time: 0, Kind: KindTaskSubmit,
				Task: &core.Task{ID: i + 1, Loc: geo.Point{X: 3}, Pub: 0, Exp: 40, Cell: -1}})
		}
		if !d.Quiesce(1000) {
			t.Fatal("dispatcher failed to quiesce")
		}
		return d.Snapshot()
	}
	ref := digest(run(true, 4096))
	for _, tc := range []struct {
		name      string
		single    bool
		queueSize int
	}{
		{"sharded/spill", false, 8},
		{"sharded/ample", false, 4096},
		{"channel/spill", true, 8},
	} {
		if got := digest(run(tc.single, tc.queueSize)); got != ref {
			t.Fatalf("%s diverged:\n got %s\nwant %s", tc.name, got, ref)
		}
	}
}

// TestConcurrentProducersDeterministic is the concurrent half of the queue
// property test: randomized producer interleavings must not leak into the
// outcome. Each event carries a globally unique time, so the pending heap's
// (Time, seq) order is a pure function of the trace regardless of which
// producer's push lands first — and the post-Quiesce snapshot must equal the
// sequential single-channel replay of the same stream, run after run. The
// queue is sized to force concurrent spill-to-pending on top of ring pushes.
func TestConcurrentProducersDeterministic(t *testing.T) {
	sc := testScenario(t)
	base := sc.Events()
	events := make([]workload.Event, len(base))
	copy(events, base)
	for i := range events {
		// Strictly increasing jitter keeps the trace sorted while making
		// every instant unique; 1e-6 is far below the epoch step, so epoch
		// bucketing is unchanged.
		events[i].Time += float64(i) * 1e-6
	}
	run := func(producers int, single bool, queueSize int) Metrics {
		d := New(Config{
			Shards: 4, Grid: sc.Grid, Step: 2, Now: sc.T0,
			Travel: travel, NewPlanner: searchFactory(),
			SingleQueue: single, QueueSize: queueSize,
		})
		if producers <= 1 {
			for _, ev := range events {
				d.Ingest(traceEvent(ev))
			}
		} else {
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for i := p; i < len(events); i += producers {
						d.Ingest(traceEvent(events[i]))
					}
				}(p)
			}
			wg.Wait()
		}
		if !d.Quiesce(10000) {
			t.Fatal("dispatcher failed to quiesce")
		}
		return d.Snapshot()
	}
	ref := digest(run(1, true, 0))
	for run2 := 0; run2 < 2; run2++ {
		for _, producers := range []int{2, 4, 8} {
			got := digest(run(producers, false, 64))
			if got != ref {
				t.Fatalf("run %d, %d producers: sharded queue diverged from sequential channel:\n got %s\nwant %s",
					run2, producers, got, ref)
			}
		}
	}
}

// traceEvent converts a workload trace event to a dispatcher ingest event.
func traceEvent(ev workload.Event) Event {
	switch ev.Kind {
	case workload.WorkerOnline:
		return Event{Time: ev.Time, Kind: KindWorkerOnline, Worker: ev.Worker}
	case workload.TaskSubmit:
		return Event{Time: ev.Time, Kind: KindTaskSubmit, Task: ev.Task}
	}
	panic(fmt.Sprintf("unknown trace event kind %v", ev.Kind))
}

// TestTransportEquivalence pins determinism across transports: the batched
// binary-stream replay (encode → frame → decode → IngestBatch) must produce
// snapshots byte-identical to the per-event path at every parallelism level
// and batch size, including single-event frames.
func TestTransportEquivalence(t *testing.T) {
	sc := testScenario(t)
	ref := digest(replayShape(sc, 1, false, 0, false, 0))
	for _, parallelism := range []int{1, 4, 0} {
		for _, batch := range []int{1, 256} {
			got := digest(replayShape(sc, parallelism, false, 0, true, batch))
			if got != ref {
				t.Fatalf("parallelism %d batch %d: stream transport diverged:\n got %s\nwant %s",
					parallelism, batch, got, ref)
			}
		}
	}
}

// TestLoadGenStreamSustains25k is the raised throughput acceptance bar: the
// binary-stream transport must sustain at least 25k events per second on the
// DiDi-scaled trace, planning included — 25x the per-event floor pinned by
// TestLoadGenSustainsDiDiRate when the ingest path was one HTTP/JSON request
// per event.
func TestLoadGenStreamSustains25k(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput measurement")
	}
	if raceEnabled {
		t.Skip("wall-clock throughput floor is meaningless under the race detector")
	}
	cfg := workload.DiDi().Scaled(0.1)
	cfg.HistoryDuration = 0
	sc := workload.Generate(cfg)
	d := New(Config{
		Shards:     4,
		Grid:       sc.Grid,
		Step:       2,
		Now:        sc.T0,
		Travel:     travel,
		NewPlanner: greedyFactory(),
	})
	res := LoadGen{Events: sc.Events(), T1: sc.T1, Stream: true}.Run(d)
	if res.Events < 500 {
		t.Fatalf("trace too small to be meaningful: %d events", res.Events)
	}
	if res.AchievedRate < 25000 {
		t.Fatalf("achieved %.0f events/sec over %d events (%v wall), want ≥ 25000",
			res.AchievedRate, res.Events, res.Wall)
	}
	if res.Metrics.Assigned == 0 {
		t.Fatal("load run assigned nothing; harness is not exercising planning")
	}
}
