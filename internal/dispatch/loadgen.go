package dispatch

import (
	"time"

	"repro/internal/workload"
)

// LoadGen replays a scenario event trace (workload.Scenario.Events) against
// a dispatcher for closed-loop load testing: events are ingested in trace
// order, epochs run exactly when the logical clock reaches them, and an
// optional rate limit paces ingestion against wall time. With Rate ≤ 0 the
// replay runs as fast as the dispatcher plans — the achieved events/sec then
// measures dispatcher throughput, planning included.
type LoadGen struct {
	// Events is the time-ordered trace to replay.
	Events []workload.Event
	// Rate is the target ingest rate in events per wall second (≤ 0 =
	// unpaced).
	Rate float64
	// T1 is the logical horizon: after the last event the dispatcher is
	// advanced to T1 so in-flight work drains, mirroring the engine's
	// [T0, T1) clock range.
	T1 float64
}

// LoadResult summarizes one replay.
type LoadResult struct {
	// Events is the number of trace events ingested.
	Events int
	// Wall is the total wall-clock duration of the replay.
	Wall time.Duration
	// AchievedRate is Events / Wall in events per second.
	AchievedRate float64
	// Shed and Deferred surface the dispatcher's admission-control
	// counters at the end of the replay. A dispatcher under admission
	// control may shed trace events instead of assigning them; LoadGen
	// counts those outcomes rather than waiting on assignments that can
	// never arrive, so a replay always terminates at the logical horizon.
	Shed     int64
	Deferred int64
	// Metrics is the dispatcher snapshot after the final epoch.
	Metrics Metrics
}

// Run replays the trace. The caller must not Advance or Serve the dispatcher
// concurrently: LoadGen owns the epoch clock for the duration of the replay.
func (g LoadGen) Run(d *Dispatcher) LoadResult {
	start := time.Now()
	var interval time.Duration
	if g.Rate > 0 {
		interval = time.Duration(float64(time.Second) / g.Rate)
	}
	next := start
	for _, ev := range g.Events {
		// Run every epoch strictly before the event's instant, so the event
		// is in the queue when the epoch covering its Time executes.
		for d.Now() < ev.Time {
			d.Tick()
		}
		switch ev.Kind {
		case workload.WorkerOnline:
			d.Ingest(Event{Time: ev.Time, Kind: KindWorkerOnline, Worker: ev.Worker})
		case workload.TaskSubmit:
			d.Ingest(Event{Time: ev.Time, Kind: KindTaskSubmit, Task: ev.Task})
		}
		if interval > 0 {
			next = next.Add(interval)
			if wait := time.Until(next); wait > 0 {
				time.Sleep(wait)
			}
		}
	}
	// The replay ends at the logical horizon unconditionally: progress is
	// driven by the epoch clock, never by awaiting per-event outcomes, so
	// events the dispatcher shed under admission control end the replay as
	// counters, not as a hang.
	d.Advance(g.T1)
	wall := time.Since(start)
	m := d.Snapshot()
	res := LoadResult{
		Events:   len(g.Events),
		Wall:     wall,
		Shed:     m.Shed,
		Deferred: m.Deferred,
		Metrics:  m,
	}
	if wall > 0 {
		res.AchievedRate = float64(res.Events) / wall.Seconds()
	}
	return res
}
