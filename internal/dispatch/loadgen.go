package dispatch

import (
	"fmt"
	"time"

	"repro/internal/wire"
	"repro/internal/workload"
)

// LoadGen replays a scenario event trace (workload.Scenario.Events) against
// a dispatcher for closed-loop load testing: events are ingested in trace
// order, epochs run exactly when the logical clock reaches them, and an
// optional rate limit paces ingestion against wall time. With Rate ≤ 0 the
// replay runs as fast as the dispatcher plans — the achieved events/sec then
// measures dispatcher throughput, planning included.
type LoadGen struct {
	// Events is the time-ordered trace to replay.
	Events []workload.Event
	// Rate is the target ingest rate in events per wall second (≤ 0 =
	// unpaced).
	Rate float64
	// T1 is the logical horizon: after the last event the dispatcher is
	// advanced to T1 so in-flight work drains, mirroring the engine's
	// [T0, T1) clock range.
	T1 float64
	// Stream selects the binary-stream transport: due events are encoded
	// into wire frames (internal/wire) and decoded back through
	// Dispatcher.IngestBatch — the full batched codec path a /v1/stream
	// client exercises, without socket noise. Events reach the dispatcher
	// in identical order at identical planning instants, so assignment
	// state is byte-identical to the per-event transport; only the cost
	// per event changes.
	Stream bool
	// Batch caps events per frame in Stream mode (default 256).
	Batch int
}

// LoadResult summarizes one replay.
type LoadResult struct {
	// Events is the number of trace events ingested.
	Events int
	// Wall is the total wall-clock duration of the replay.
	Wall time.Duration
	// AchievedRate is Events / Wall in events per second.
	AchievedRate float64
	// Shed and Deferred surface the dispatcher's admission-control
	// counters at the end of the replay. A dispatcher under admission
	// control may shed trace events instead of assigning them; LoadGen
	// counts those outcomes rather than waiting on assignments that can
	// never arrive, so a replay always terminates at the logical horizon.
	Shed     int64
	Deferred int64
	// Metrics is the dispatcher snapshot after the final epoch.
	Metrics Metrics
}

// Run replays the trace. The caller must not Advance or Serve the dispatcher
// concurrently: LoadGen owns the epoch clock for the duration of the replay.
func (g LoadGen) Run(d *Dispatcher) LoadResult {
	if g.Stream {
		return g.runStream(d)
	}
	start := time.Now() //datawa:wallclock replay pacing and wall-time report, sanctioned LoadGen use
	var interval time.Duration
	if g.Rate > 0 {
		interval = time.Duration(float64(time.Second) / g.Rate)
	}
	next := start
	for _, ev := range g.Events {
		// Run every epoch strictly before the event's instant, so the event
		// is in the queue when the epoch covering its Time executes.
		for d.Now() < ev.Time {
			d.Tick()
		}
		switch ev.Kind {
		case workload.WorkerOnline:
			d.Ingest(Event{Time: ev.Time, Kind: KindWorkerOnline, Worker: ev.Worker})
		case workload.TaskSubmit:
			d.Ingest(Event{Time: ev.Time, Kind: KindTaskSubmit, Task: ev.Task})
		}
		if interval > 0 {
			next = next.Add(interval)
			if wait := time.Until(next); wait > 0 { //datawa:wallclock replay pacing, sanctioned LoadGen use
				time.Sleep(wait)
			}
		}
	}
	// The replay ends at the logical horizon unconditionally: progress is
	// driven by the epoch clock, never by awaiting per-event outcomes, so
	// events the dispatcher shed under admission control end the replay as
	// counters, not as a hang.
	d.Advance(g.T1)
	wall := time.Since(start) //datawa:wallclock achieved-rate report, sanctioned LoadGen use
	m := d.Snapshot()
	res := LoadResult{
		Events:   len(g.Events),
		Wall:     wall,
		Shed:     m.Shed,
		Deferred: m.Deferred,
		Metrics:  m,
	}
	if wall > 0 {
		res.AchievedRate = float64(res.Events) / wall.Seconds()
	}
	return res
}

// runStream is the binary-stream replay: it walks the trace in due-batches —
// maximal runs of events already ingestible at the current clock — encodes
// each as one wire frame, decodes it into a reused buffer, and batch-ingests
// it. Ticking happens exactly when the per-event loop would tick (before the
// first not-yet-due event), so both transports admit every event at the same
// planning instant.
func (g LoadGen) runStream(d *Dispatcher) LoadResult {
	batchCap := g.Batch
	if batchCap <= 0 {
		batchCap = 256
	}
	var interval time.Duration
	if g.Rate > 0 {
		interval = time.Duration(float64(time.Second) / g.Rate)
	}
	var (
		batch   = make([]wire.Event, 0, batchCap)
		decoded = make([]wire.Event, 0, batchCap)
		frame   []byte
	)
	start := time.Now() //datawa:wallclock replay pacing and wall-time report, sanctioned LoadGen use
	next := start
	for i := 0; i < len(g.Events); {
		for d.Now() < g.Events[i].Time {
			d.Tick()
		}
		now := d.Now()
		batch = batch[:0]
		for i < len(g.Events) && len(batch) < batchCap && g.Events[i].Time <= now {
			batch = append(batch, wireEvent(g.Events[i]))
			i++
		}
		var err error
		if frame, err = wire.AppendFrame(frame[:0], batch); err != nil {
			panic(fmt.Sprintf("loadgen: trace event does not encode: %v", err))
		}
		if decoded, _, err = wire.DecodeFrame(frame, decoded[:0]); err != nil {
			panic(fmt.Sprintf("loadgen: frame does not decode: %v", err))
		}
		if _, rej := d.IngestBatch(decoded); rej > 0 {
			panic(fmt.Sprintf("loadgen: %d trace events rejected by IngestBatch", rej))
		}
		if interval > 0 {
			next = next.Add(time.Duration(len(batch)) * interval)
			if wait := time.Until(next); wait > 0 { //datawa:wallclock replay pacing, sanctioned LoadGen use
				time.Sleep(wait)
			}
		}
	}
	d.Advance(g.T1)
	wall := time.Since(start) //datawa:wallclock achieved-rate report, sanctioned LoadGen use
	m := d.Snapshot()
	res := LoadResult{
		Events: len(g.Events), Wall: wall,
		Shed: m.Shed, Deferred: m.Deferred, Metrics: m,
	}
	if wall > 0 {
		res.AchievedRate = float64(res.Events) / wall.Seconds()
	}
	return res
}

// wireEvent converts one trace event to its wire form.
func wireEvent(ev workload.Event) wire.Event {
	switch ev.Kind {
	case workload.WorkerOnline:
		w := ev.Worker
		return wire.Event{
			Time: ev.Time, Kind: wire.WorkerOnline, ID: int64(w.ID),
			X: w.Loc.X, Y: w.Loc.Y, Reach: w.Reach, On: w.On, Off: w.Off,
		}
	case workload.TaskSubmit:
		s := ev.Task
		return wire.Event{
			Time: ev.Time, Kind: wire.TaskSubmit, ID: int64(s.ID),
			X: s.Loc.X, Y: s.Loc.Y, Pub: s.Pub, Exp: s.Exp,
		}
	}
	panic(fmt.Sprintf("loadgen: unknown trace event kind %v", ev.Kind))
}
