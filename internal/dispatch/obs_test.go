package dispatch

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/obs"
)

// TestTraceRingWraparound is the wrap-around property for the epoch trace
// ring: after M adds into a depth-D ring, last(n) must return the newest
// min(n, min(M, D)) records, oldest first, for every n — including the
// full/partial boundary and n > retained.
func TestTraceRingWraparound(t *testing.T) {
	for _, depth := range []int{1, 2, 3, 7} {
		for adds := 0; adds <= 3*depth; adds++ {
			r := newTraceRing(depth)
			for i := 0; i < adds; i++ {
				r.add(EpochTrace{Epoch: i, Now: float64(i)})
			}
			retained := adds
			if retained > depth {
				retained = depth
			}
			for _, n := range []int{0, 1, depth - 1, depth, depth + 3, -1} {
				got := r.last(n)
				want := retained
				if n > 0 && n < want {
					want = n
				}
				if len(got) != want {
					t.Fatalf("depth=%d adds=%d last(%d): %d records, want %d", depth, adds, n, len(got), want)
				}
				for j, e := range got {
					exp := adds - want + j
					if e.Epoch != exp {
						t.Fatalf("depth=%d adds=%d last(%d)[%d]: epoch %d, want %d (not oldest-first)", depth, adds, n, j, e.Epoch, exp)
					}
				}
			}
		}
	}
}

// promFamily is one metric family seen in a /metrics scrape.
type promFamily struct {
	typ    string
	helps  int
	types  int
	values map[string]float64 // label-set (raw, le stripped for buckets) → last value
}

// parseExposition is a strict-enough parser of the text exposition format
// for the lint test: it records HELP/TYPE per family and every sample line,
// and fails the test on any line it cannot classify.
func parseExposition(t *testing.T, text string) (map[string]*promFamily, []string) {
	t.Helper()
	fams := map[string]*promFamily{}
	fam := func(name string) *promFamily {
		f, ok := fams[name]
		if !ok {
			f = &promFamily{values: map[string]float64{}}
			fams[name] = f
		}
		return f
	}
	var order []string
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, _ := strings.Cut(rest, " ")
			fam(name).helps++
			order = append(order, name)
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, _ := strings.Cut(rest, " ")
			fam(name).types++
			fam(name).typ = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unclassifiable comment line %q", line)
		}
		head, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("sample line %q has no value", line)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("sample line %q: value %q is not a float", line, val)
		}
		name, labels := head, ""
		if i := strings.IndexByte(head, '{'); i >= 0 {
			if !strings.HasSuffix(head, "}") {
				t.Fatalf("sample line %q: unterminated label set", line)
			}
			name, labels = head[:i], head[i+1:len(head)-1]
		}
		f, ok := fams[name]
		if !ok {
			// Histogram children belong to the base family.
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if base, cut := strings.CutSuffix(name, suf); cut && fams[base] != nil && fams[base].typ == "histogram" {
					f, ok = fams[base], true
					name = base
					break
				}
			}
		}
		if !ok {
			t.Fatalf("sample %q has no preceding HELP/TYPE family", line)
		}
		f.values[head[len(name):]+" "] = v // key unused beyond existence for non-histogram checks
		_ = labels
	}
	return fams, order
}

// TestPrometheusExpositionLint is the satellite lint gate over the full
// /metrics scrape: every counter family ends in _total, every family carries
// exactly one HELP and one TYPE, every sample has a family, and histogram
// children agree with each other and with the epoch counter.
func TestPrometheusExpositionLint(t *testing.T) {
	d := New(Config{
		Step: 1, Travel: travel, NewPlanner: searchFactory(),
		Admission: AdmissionConfig{MaxOpenTasks: 1, DeferSlack: 10000},
		Obs:       ObsConfig{Spans: 8, LedgerTasks: 64},
	})
	srv := httptest.NewServer(NewHandler(d))
	defer srv.Close()
	d.WorkerOnline(&core.Worker{ID: 1, Loc: geo.Point{X: 0}, Reach: 1, On: 0, Off: 1000})
	d.SubmitTask(&core.Task{ID: 1, Loc: geo.Point{X: 0.1}, Pub: 0, Exp: 900, Cell: -1})
	d.SubmitTask(&core.Task{ID: 2, Loc: geo.Point{X: 0.2}, Pub: 0, Exp: 500, Cell: -1})
	d.Advance(5)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	fams, _ := parseExposition(t, text)

	var epochsTotal float64
	for name, f := range fams {
		if f.helps != 1 || f.types != 1 {
			t.Errorf("family %s: %d HELP / %d TYPE lines, want exactly 1 of each", name, f.helps, f.types)
		}
		switch f.typ {
		case "counter":
			if !strings.HasSuffix(name, "_total") {
				t.Errorf("counter %s does not end in _total", name)
			}
		case "gauge", "histogram":
		default:
			t.Errorf("family %s has unexpected type %q", name, f.typ)
		}
		if len(f.values) == 0 {
			t.Errorf("family %s has HELP/TYPE but no samples", name)
		}
		if name == "datawa_epochs_total" {
			for _, v := range f.values {
				epochsTotal = v
			}
		}
	}
	if epochsTotal != 5 {
		t.Fatalf("datawa_epochs_total = %g, want 5", epochsTotal)
	}

	// Histogram self-consistency, re-parsed line by line so bucket order
	// (cumulative, ending at le="+Inf") is checked as emitted.
	type histKey struct{ fam, labels string }
	lastBucket := map[histKey]float64{}
	lastLe := map[histKey]string{}
	counts := map[histKey]float64{}
	sums := map[histKey]float64{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		head, val, _ := strings.Cut(line, " ")
		v, _ := strconv.ParseFloat(val, 64)
		name, labels := head, ""
		if i := strings.IndexByte(head, '{'); i >= 0 {
			name, labels = head[:i], head[i+1:len(head)-1]
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			base := strings.TrimSuffix(name, "_bucket")
			if fams[base] == nil || fams[base].typ != "histogram" {
				t.Errorf("%s_bucket sample without a histogram family", base)
				continue
			}
			le := ""
			var rest []string
			for _, l := range strings.Split(labels, ",") {
				if cut, ok := strings.CutPrefix(l, "le="); ok {
					le = strings.Trim(cut, `"`)
				} else if l != "" {
					rest = append(rest, l)
				}
			}
			if le == "" {
				t.Errorf("bucket sample %q lacks an le label", line)
				continue
			}
			k := histKey{base, strings.Join(rest, ",")}
			if v < lastBucket[k] {
				t.Errorf("%s{%s}: bucket le=%q value %g below previous %g (not cumulative)", base, k.labels, le, v, lastBucket[k])
			}
			lastBucket[k], lastLe[k] = v, le
		case strings.HasSuffix(name, "_count") && fams[strings.TrimSuffix(name, "_count")] != nil:
			counts[histKey{strings.TrimSuffix(name, "_count"), labels}] = v
		case strings.HasSuffix(name, "_sum") && fams[strings.TrimSuffix(name, "_sum")] != nil:
			sums[histKey{strings.TrimSuffix(name, "_sum"), labels}] = v
		}
	}
	if len(counts) == 0 {
		t.Fatal("no histogram _count series found")
	}
	for k, c := range counts {
		if lastLe[k] != "+Inf" {
			t.Errorf("%s{%s}: last bucket le=%q, want +Inf", k.fam, k.labels, lastLe[k])
		}
		if lastBucket[k] != c {
			t.Errorf("%s{%s}: le=+Inf bucket %g != _count %g", k.fam, k.labels, lastBucket[k], c)
		}
		if s, ok := sums[k]; !ok || s < 0 {
			t.Errorf("%s{%s}: _sum missing or negative (%g)", k.fam, k.labels, s)
		}
		// Every stage observes once per epoch, and the epoch histogram once
		// per tick, so each _count is locked to the epoch counter.
		if c != epochsTotal {
			t.Errorf("%s{%s}: _count %g != datawa_epochs_total %g", k.fam, k.labels, c, epochsTotal)
		}
	}
	for i, stage := range stageNames {
		k := histKey{"datawa_stage_wall_seconds", fmt.Sprintf("stage=%q", stage)}
		if _, ok := counts[k]; !ok {
			t.Errorf("stage %d (%s) has no _count series", i, stage)
		}
	}
}

// chainStates flattens a ledger chain to its state sequence.
func chainStates(h obs.TaskHistory) []obs.State {
	out := make([]obs.State, len(h.Transitions))
	for i, tr := range h.Transitions {
		out[i] = tr.State
	}
	return out
}

func wantChain(t *testing.T, d *Dispatcher, id int, want ...obs.State) obs.TaskHistory {
	t.Helper()
	h, ok := d.TaskHistory(id)
	if !ok {
		t.Fatalf("task %d: no ledger chain", id)
	}
	got := chainStates(h)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("task %d chain = %v, want %v", id, got, want)
	}
	return h
}

// TestObsLedgerAdmissionChains pins the ledger view of the admission
// scenario the Prometheus test uses: the displaced task's chain names its
// displacer and ends shed, the survivor's ends assigned — and the HTTP
// history endpoint serves both, with 404/400 on unknown/garbage ids.
func TestObsLedgerAdmissionChains(t *testing.T) {
	d := New(Config{
		Step: 1, Travel: travel, NewPlanner: searchFactory(),
		Admission: AdmissionConfig{MaxOpenTasks: 1, DeferSlack: 10000},
		Obs:       ObsConfig{LedgerTasks: 64},
	})
	srv := httptest.NewServer(NewHandler(d))
	defer srv.Close()
	d.WorkerOnline(&core.Worker{ID: 1, Loc: geo.Point{X: 0}, Reach: 1, On: 0, Off: 1000})
	d.SubmitTask(&core.Task{ID: 1, Loc: geo.Point{X: 0.1}, Pub: 0, Exp: 900, Cell: -1})
	d.SubmitTask(&core.Task{ID: 2, Loc: geo.Point{X: 0.2}, Pub: 0, Exp: 500, Cell: -1})
	d.Advance(5)

	h1 := wantChain(t, d, 1, obs.Submitted, obs.Admitted, obs.Displaced, obs.Shed)
	if c := h1.Transitions[2].Cause; c != "displaced by task 2" {
		t.Fatalf("task 1 displacement cause %q", c)
	}
	if term, ok := h1.Terminal(); !ok || term.State != obs.Shed || !strings.Contains(term.Cause, "not enough validity to defer") {
		t.Fatalf("task 1 terminal = %+v, %v", term, ok)
	}
	h2 := wantChain(t, d, 2, obs.Submitted, obs.Admitted, obs.Assigned)
	if term, _ := h2.Terminal(); term.Worker != 1 || term.Shard != 0 {
		t.Fatalf("task 2 assigned by worker %d in shard %d, want worker 1 shard 0", term.Worker, term.Shard)
	}

	issues, evictions := d.LedgerAudit()
	if len(issues) != 0 || evictions != 0 {
		t.Fatalf("ledger audit: issues=%v evictions=%d, want clean", issues, evictions)
	}

	var got obs.TaskHistory
	getJSON(t, srv, "/v1/tasks/1/history", &got)
	if got.Task != 1 || len(got.Transitions) != 4 {
		t.Fatalf("GET /v1/tasks/1/history = %+v", got)
	}
	for path, want := range map[string]int{
		"/v1/tasks/999/history": http.StatusNotFound,
		"/v1/tasks/abc/history": http.StatusBadRequest,
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("GET %s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// TestObsLedgerExpireCancelChains covers the remaining terminal states: a
// machine-internal expiry, a requester withdrawal, and an expired-on-arrival
// submit — plus the conservation cross-check against the snapshot counters.
func TestObsLedgerExpireCancelChains(t *testing.T) {
	d := New(Config{
		Step: 1, Travel: travel, NewPlanner: searchFactory(),
		Obs: ObsConfig{LedgerTasks: 64},
	})
	d.WorkerOnline(&core.Worker{ID: 1, Loc: geo.Point{X: 0}, Reach: 0.5, On: 0, Off: 1000})
	// Unreachable, so it sits open until its deadline passes inside Step.
	d.SubmitTask(&core.Task{ID: 3, Loc: geo.Point{X: 3}, Pub: 0, Exp: 100, Cell: -1})
	// Withdrawn one tick after admission.
	d.SubmitTask(&core.Task{ID: 4, Loc: geo.Point{X: 2}, Pub: 0, Exp: 800, Cell: -1})
	d.CancelTask(4)
	// Dead before the first planning instant.
	d.SubmitTask(&core.Task{ID: 5, Loc: geo.Point{X: 0.1}, Pub: -2, Exp: -1, Cell: -1})
	d.Advance(150)

	e3 := wantChain(t, d, 3, obs.Submitted, obs.Admitted, obs.Expired)
	if term, _ := e3.Terminal(); term.Shard != 0 {
		t.Fatalf("task 3 expired in shard %d, want 0", term.Shard)
	}
	e4 := wantChain(t, d, 4, obs.Submitted, obs.Admitted, obs.Cancelled)
	if term, _ := e4.Terminal(); term.Cause != "withdrawn by requester" {
		t.Fatalf("task 4 cancel cause %q", term.Cause)
	}
	e5 := wantChain(t, d, 5, obs.Submitted, obs.Expired)
	if term, _ := e5.Terminal(); term.Cause != "expired on arrival" {
		t.Fatalf("task 5 expiry cause %q", term.Cause)
	}

	if issues, _ := d.LedgerAudit(); len(issues) != 0 {
		t.Fatalf("ledger audit after drain: %v", issues)
	}
	// Conservation: the ledger's terminal tally must equal the counters.
	m := d.Snapshot()
	if m.Expired != 2 || m.Cancelled != 1 || m.Assigned != 0 || m.Shed != 0 {
		t.Fatalf("snapshot assigned/expired/cancelled/shed = %d/%d/%d/%d, want 0/2/1/0",
			m.Assigned, m.Expired, m.Cancelled, m.Shed)
	}
}

// obsFingerprint marshals a dispatcher's logical observability content —
// spans with wall fields zeroed, plus every retained ledger chain — for
// byte-comparison across runs.
func obsFingerprint(t *testing.T, d *Dispatcher) string {
	t.Helper()
	spans := d.SpanTrace(0)
	logical := make([]obs.EpochSpans, len(spans))
	for i, es := range spans {
		cp := obs.EpochSpans{Epoch: es.Epoch, Now: es.Now, Spans: append([]obs.Span(nil), es.Spans...)}
		for j := range cp.Spans {
			cp.Spans[j].StartNS, cp.Spans[j].DurNS = 0, 0
		}
		logical[i] = cp
	}
	d.mu.Lock()
	chains := d.ob.ledger.Recent(0)
	d.mu.Unlock()
	raw, err := json.MarshalIndent(struct {
		Spans  []obs.EpochSpans  `json:"spans"`
		Chains []obs.TaskHistory `json:"chains"`
	}{logical, chains}, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestObsLogicalDeterminism is the determinism contract extended to the
// observability plane: over a geometry that exercises ghost replication,
// commit conflicts, arbitration retraction, and expiry, the logical span
// content and every ledger chain must be byte-identical at parallelism 1, 4,
// and 0 (auto) and across reruns. Wall-clock fields are zeroed — they are
// the only sanctioned divergence.
func TestObsLogicalDeterminism(t *testing.T) {
	run := func(parallelism int) string {
		cfg := incrementalConfig(false)
		cfg.Parallelism = parallelism
		cfg.Obs = ObsConfig{Spans: 1024, LedgerTasks: 1024}
		d := New(cfg)
		d.SubmitTask(&core.Task{ID: 20, Loc: geo.Point{X: 3.5, Y: 0.5}, Pub: 0, Exp: 300, Cell: -1})
		d.WorkerOnline(&core.Worker{ID: 1, Loc: geo.Point{X: 1, Y: 1.9}, Reach: 0.8, On: 0, Off: 4000})
		d.WorkerOnline(&core.Worker{ID: 2, Loc: geo.Point{X: 1, Y: 2.2}, Reach: 0.8, On: 0, Off: 4000})
		d.SubmitTask(&core.Task{ID: 10, Loc: geo.Point{X: 1, Y: 2.1}, Pub: 0, Exp: 600, Cell: -1})
		d.SubmitTask(&core.Task{ID: 11, Loc: geo.Point{X: 1, Y: 1.3}, Pub: 0, Exp: 600, Cell: -1})
		d.Advance(700)
		m := d.Snapshot()
		if m.GhostCopies == 0 || m.Retractions == 0 {
			t.Fatalf("parallelism %d: scenario lost its conflict (ghosts=%d retractions=%d)", parallelism, m.GhostCopies, m.Retractions)
		}
		return obsFingerprint(t, d)
	}
	base := run(1)
	for _, p := range []int{1, 4, 0} {
		if got := run(p); got != base {
			t.Fatalf("parallelism %d: logical observability content diverged from the parallelism-1 run:\n%s\n----\n%s", p, got, base)
		}
	}
	// The retracted loser's chain must show the arbitration round.
	cfg := incrementalConfig(false)
	cfg.Obs = ObsConfig{LedgerTasks: 64}
	d := New(cfg)
	d.WorkerOnline(&core.Worker{ID: 1, Loc: geo.Point{X: 1, Y: 1.9}, Reach: 0.8, On: 0, Off: 4000})
	d.WorkerOnline(&core.Worker{ID: 2, Loc: geo.Point{X: 1, Y: 2.2}, Reach: 0.8, On: 0, Off: 4000})
	d.SubmitTask(&core.Task{ID: 10, Loc: geo.Point{X: 1, Y: 2.1}, Pub: 0, Exp: 600, Cell: -1})
	d.Advance(700)
	h, ok := d.TaskHistory(10)
	if !ok {
		t.Fatal("task 10: no ledger chain")
	}
	states := chainStates(h)
	// Both workers commit task 10 through the halo; the loser's retraction
	// is ledgered before the winner's assignment, so the chain stays
	// well-formed (one terminal, nothing after it).
	if fmt.Sprint(states) != fmt.Sprint([]obs.State{obs.Submitted, obs.Admitted, obs.GhostReplicated, obs.Retracted, obs.Assigned}) {
		t.Fatalf("boundary task chain = %v", states)
	}
	if term, _ := h.Terminal(); !strings.Contains(term.Cause, "won arbitration") {
		t.Fatalf("conflicted assignment cause %q does not mention arbitration", term.Cause)
	}
}

// TestChromeTraceEndpoint validates /v1/trace.json against the Chrome
// trace-event schema: displayTimeUnit, one thread_name metadata event per
// track, and complete ("X") events carrying ts/dur/pid/tid plus the logical
// epoch in args.
func TestChromeTraceEndpoint(t *testing.T) {
	cfg := handoffConfig(2, 0)
	cfg.Obs = ObsConfig{Spans: 16}
	d := New(cfg)
	srv := httptest.NewServer(NewHandler(d))
	defer srv.Close()
	d.WorkerOnline(&core.Worker{ID: 1, Loc: geo.Point{X: 1, Y: 1.9}, Reach: 1, On: 0, Off: 4000})
	d.SubmitTask(&core.Task{ID: 10, Loc: geo.Point{X: 1, Y: 2.1}, Pub: 0, Exp: 600, Cell: -1})
	d.Advance(5)

	resp, err := http.Get(srv.URL + "/v1/trace.json?n=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "application/json" {
		t.Fatalf("GET /v1/trace.json: status %d, content type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	var trace struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&trace); err != nil {
		t.Fatalf("trace.json is not valid JSON: %v", err)
	}
	if trace.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit %q, want ms", trace.DisplayTimeUnit)
	}
	meta := map[string]bool{}
	complete := 0
	for _, ev := range trace.TraceEvents {
		switch ev["ph"] {
		case "M":
			if ev["name"] != "thread_name" {
				t.Fatalf("metadata event %v is not thread_name", ev)
			}
			meta[ev["args"].(map[string]any)["name"].(string)] = true
		case "X":
			complete++
			for _, key := range []string{"name", "ts", "dur", "pid", "tid", "args"} {
				if _, ok := ev[key]; !ok {
					t.Fatalf("complete event %v lacks %q", ev, key)
				}
			}
			if _, ok := ev["args"].(map[string]any)["epoch"]; !ok {
				t.Fatalf("complete event %v lacks args.epoch", ev)
			}
		default:
			t.Fatalf("unexpected event phase %v", ev["ph"])
		}
	}
	for _, track := range []string{"dispatcher", "shard 0", "shard 1"} {
		if !meta[track] {
			t.Fatalf("no thread_name metadata for track %q (have %v)", track, meta)
		}
	}
	if complete == 0 {
		t.Fatal("trace has no complete events")
	}

	resp, err = http.Get(srv.URL + "/v1/trace.json?n=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("GET /v1/trace.json?n=bogus: status %d, want 400", resp.StatusCode)
	}
}

// TestFlightRecorder arms the recorder over the shedding admission scenario:
// the shed must freeze a dump (reason, recent spans, the shed task's chain),
// write it to FlightDir, respect the cooldown window, and serve over
// GET /v1/flight.
func TestFlightRecorder(t *testing.T) {
	dir := t.TempDir()
	d := New(Config{
		Step: 1, Travel: travel, NewPlanner: searchFactory(),
		Admission: AdmissionConfig{MaxOpenTasks: 1, DeferSlack: 10000},
		Obs:       ObsConfig{FlightDepth: 4, FlightDir: dir},
	})
	srv := httptest.NewServer(NewHandler(d))
	defer srv.Close()
	d.WorkerOnline(&core.Worker{ID: 1, Loc: geo.Point{X: 0}, Reach: 1, On: 0, Off: 1000})
	d.SubmitTask(&core.Task{ID: 1, Loc: geo.Point{X: 0.1}, Pub: 0, Exp: 900, Cell: -1})
	d.SubmitTask(&core.Task{ID: 2, Loc: geo.Point{X: 0.2}, Pub: 0, Exp: 500, Cell: -1})
	d.Advance(2)
	// A second shed inside the cooldown window must NOT capture a second
	// dump: task 6's earlier deadline displaces task 2, which sheds.
	d.SubmitTask(&core.Task{ID: 6, Loc: geo.Point{X: 0.3}, Pub: 2, Exp: 400, Cell: -1})
	d.Advance(4)

	dumps := d.FlightDumps()
	if len(dumps) != 1 {
		t.Fatalf("%d flight dumps, want exactly 1 (cooldown must suppress the second shed)", len(dumps))
	}
	dump := dumps[0]
	if dump.Reason != "shed" {
		t.Fatalf("dump reason %q, want shed", dump.Reason)
	}
	if len(dump.Spans) == 0 {
		t.Fatal("dump froze no spans (FlightDepth should default spans on)")
	}
	found := false
	for _, h := range dump.Tasks {
		if h.Task == 1 {
			if term, ok := h.Terminal(); !ok || term.State != obs.Shed {
				t.Fatalf("dumped chain for task 1 has terminal %+v, want shed", term)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("dump ledger slice lacks the shed task; got %d chains", len(dump.Tasks))
	}

	files, err := filepath.Glob(filepath.Join(dir, "flight-*-shed.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("flight dir has %d shed dumps (%v), want 1", len(files), err)
	}
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	var onDisk obs.FlightDump
	if err := json.Unmarshal(raw, &onDisk); err != nil {
		t.Fatalf("on-disk dump is not valid JSON: %v", err)
	}
	if onDisk.Reason != dump.Reason || onDisk.Epoch != dump.Epoch {
		t.Fatalf("on-disk dump %+v does not match the retained one %+v", onDisk, dump)
	}

	var served []obs.FlightDump
	getJSON(t, srv, "/v1/flight", &served)
	if len(served) != 1 || served[0].Reason != "shed" {
		t.Fatalf("GET /v1/flight = %+v", served)
	}

	// Sanity: the dumped chains are sorted by id (stable artifact layout).
	ids := make([]int, len(dump.Tasks))
	for i, h := range dump.Tasks {
		ids[i] = h.Task
	}
	if !sort.IntsAreSorted(ids) {
		t.Fatalf("dump chains not sorted by task id: %v", ids)
	}
}
