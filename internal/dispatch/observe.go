package dispatch

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/obs"
)

// ObsConfig enables the dispatcher's observability core (internal/obs):
// stage spans, the per-task lifecycle ledger, and the flight recorder. The
// epoch and per-stage wall-time histograms are always on — they cost a
// handful of clock reads per epoch — so the zero value still yields
// histogram-native /metrics; spans, ledger, and flight recording are pay-
// for-what-you-enable.
type ObsConfig struct {
	// Spans retains the last N epochs of stage spans for GET /v1/trace.json
	// (0 = span recording off).
	Spans int
	// LedgerTasks bounds the lifecycle ledger to N task chains for
	// GET /v1/tasks/{id}/history (0 = ledger off). Terminal chains evict
	// first once full.
	LedgerTasks int
	// FlightDepth arms the flight recorder: on an anomaly trigger (governor
	// demotion, shed, over-budget epoch, ledger chain violation) the last
	// FlightDepth epochs of spans plus the ledger chains active in that
	// window freeze into a dump (0 = recorder off). Arming the recorder
	// defaults Spans and LedgerTasks on when they are unset.
	FlightDepth int
	// FlightDir, when non-empty, writes each dump to
	// <FlightDir>/flight-<epoch>-<reason>.json as it is captured.
	FlightDir string
	// FlightMax bounds the retained dump ring (default 8).
	FlightMax int
}

func (c ObsConfig) withDefaults() ObsConfig {
	if c.FlightDepth > 0 {
		if c.Spans <= 0 {
			c.Spans = 4 * c.FlightDepth
		}
		if c.LedgerTasks <= 0 {
			c.LedgerTasks = 8192
		}
	}
	if c.FlightMax <= 0 {
		c.FlightMax = 8
	}
	return c
}

// Stage indices for the per-stage histograms and span names. Every stage is
// observed every epoch — stages that did not run observe a ~zero duration —
// so each stage histogram's _count equals datawa_epochs_total, which the
// exposition-lint test relies on.
const (
	stageDrain = iota
	stageAdmission
	stageReGhost
	stageForecast
	stageStep
	stageArbitration
	numStages
)

var stageNames = [numStages]string{"drain", "admission", "reghost", "forecast", "step", "arbitration"}

// obsState is the dispatcher's observability state, mutated only under the
// epoch lock. The histograms always exist; spans/ledger/flight are nil when
// the corresponding ObsConfig knob is off. base is the wall origin all span
// timestamps are relative to — wall fields are the only non-deterministic
// content anywhere in here.
type obsState struct {
	cfg       ObsConfig
	base      time.Time
	epochHist *obs.Histogram
	stageHist [numStages]*obs.Histogram
	spans     *obs.SpanRing
	ledger    *obs.Ledger
	flight    *obs.FlightRing

	// Per-tick scratch: the logical position stamps ledger records, cur
	// accumulates the epoch's spans, arbitrated collects task ids resolved
	// by this tick's arbitration so their stale machine disposals are
	// skipped, shardSpan holds per-shard Step spans written inside the
	// parallel region (one slot per shard, no sharing).
	epoch      int
	now        float64
	cur        []obs.Span
	arbitrated map[int]bool
	shardSpan  []obs.Span

	// Flight trigger baselines and cooldown.
	flightAfter    int
	lastShed       int64
	lastDemotions  int64
	lastViolations int64
}

func newObsState(cfg ObsConfig, shards int) *obsState {
	o := &obsState{cfg: cfg.withDefaults(), base: time.Now()} //datawa:wallclock span timebase, observability only
	o.epochHist = obs.NewLatencyHistogram()
	for i := range o.stageHist {
		o.stageHist[i] = obs.NewLatencyHistogram()
	}
	if o.cfg.Spans > 0 {
		o.spans = obs.NewSpanRing(o.cfg.Spans)
		o.shardSpan = make([]obs.Span, shards)
	}
	if o.cfg.LedgerTasks > 0 {
		o.ledger = obs.NewLedger(o.cfg.LedgerTasks)
		o.arbitrated = make(map[int]bool)
	}
	if o.cfg.FlightDepth > 0 {
		o.flight = obs.NewFlightRing(o.cfg.FlightMax)
	}
	return o
}

// observe records one stage's wall time and, when asked, its span. Called
// once per stage per tick so stage _count stays locked to the epoch count.
func (o *obsState) observe(stage int, start time.Time, n int, detail string, span bool) {
	dur := time.Since(start) //datawa:wallclock stage histogram sample, observability only
	o.stageHist[stage].Observe(dur.Seconds())
	if span && o.spans != nil {
		o.cur = append(o.cur, obs.Span{
			Name: stageNames[stage], Track: 0, N: n, Detail: detail,
			StartNS: start.Sub(o.base).Nanoseconds(), DurNS: dur.Nanoseconds(),
		})
	}
}

// span appends an ad-hoc span (arbitration rounds, retraction resumes).
func (o *obsState) span(name string, track int, start time.Time, n int, detail string) {
	if o.spans == nil {
		return
	}
	o.cur = append(o.cur, obs.Span{
		Name: name, Track: track, N: n, Detail: detail,
		StartNS: start.Sub(o.base).Nanoseconds(), DurNS: time.Since(start).Nanoseconds(), //datawa:wallclock span duration, observability only
	})
}

// recordTask ledgers one lifecycle transition at the current tick's logical
// position. shard −1 marks dispatcher-level decisions outside any shard.
//
//datawa:locked(mu)
func (d *Dispatcher) recordTask(id int, st obs.State, shard, worker int, cause string) {
	o := d.ob
	if o.ledger == nil {
		return
	}
	o.ledger.Record(id, obs.Transition{
		State: st, Epoch: o.epoch, Now: o.now, Shard: shard, Worker: worker, Cause: cause,
	})
}

// drainDisposalsLocked folds each machine's Step-internal closures
// (assignments, expiries) into the ledger, in shard order. Tasks resolved by
// this tick's arbitration are skipped: arbitration already ledgered the
// winner and the retracted losers, and a loser's machine still carries the
// stale pre-retraction disposal entry.
//
//datawa:locked(mu)
func (d *Dispatcher) drainDisposalsLocked() {
	o := d.ob
	if o.ledger == nil {
		return
	}
	for i, m := range d.shards {
		for _, dp := range m.TakeDisposals() {
			if o.arbitrated[dp.Task] {
				continue
			}
			if dp.Assigned {
				d.recordTask(dp.Task, obs.Assigned, i, dp.Worker, "")
			} else {
				d.recordTask(dp.Task, obs.Expired, i, 0, "")
			}
		}
	}
}

// maybeFlightLocked checks the anomaly triggers after an epoch and captures
// a dump at most once per FlightDepth epochs — a trigger condition that
// persists (sustained shedding, a demotion storm) yields one dump per
// window, not one per epoch.
//
//datawa:locked(mu)
func (d *Dispatcher) maybeFlightLocked(t float64) {
	o := d.ob
	if o.flight == nil {
		return
	}
	shed := d.shedIngest
	for _, m := range d.shards {
		shed += int64(m.Stats().Shed)
	}
	var demotions int64
	if d.gov != nil {
		demotions, _ = d.gov.Counters()
	}
	var violations int64
	if o.ledger != nil {
		violations = o.ledger.Violations()
	}
	overBudget := false
	if d.gov != nil && d.costs != nil {
		for i := range d.shards {
			if d.costs[i] > d.cfg.Governor.Budget {
				overBudget = true
				break
			}
		}
	}

	reason := ""
	switch {
	case violations > o.lastViolations:
		reason = "ledger-violation"
	case demotions > o.lastDemotions:
		reason = "governor-demotion"
	case shed > o.lastShed:
		reason = "shed"
	case overBudget:
		reason = "over-budget-epoch"
	}
	o.lastShed, o.lastDemotions, o.lastViolations = shed, demotions, violations
	if reason == "" || d.epochs < o.flightAfter {
		return
	}
	o.flightAfter = d.epochs + o.cfg.FlightDepth

	dump := obs.FlightDump{Reason: reason, Epoch: d.epochs, Now: t}
	if o.spans != nil {
		dump.Spans = o.spans.Last(o.cfg.FlightDepth)
	}
	if o.ledger != nil {
		dump.Tasks = o.ledger.Recent(d.epochs - o.cfg.FlightDepth + 1)
	}
	o.flight.Add(dump)
	if o.cfg.FlightDir != "" {
		name := filepath.Join(o.cfg.FlightDir, fmt.Sprintf("flight-%d-%s.json", dump.Epoch, dump.Reason))
		if raw, err := json.MarshalIndent(dump, "", "  "); err == nil {
			if err := os.WriteFile(name, raw, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "dispatch: flight dump %s: %v\n", name, err)
			}
		}
	}
}

// SpanTrace returns up to n retained epochs of stage spans, oldest first
// (n ≤ 0 = all). Empty unless ObsConfig.Spans is set.
func (d *Dispatcher) SpanTrace(n int) []obs.EpochSpans {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.ob.spans == nil {
		return nil
	}
	return d.ob.spans.Last(n)
}

// ChromeTrace renders the retained span ring (newest n epochs; n ≤ 0 = all)
// as Chrome trace-event JSON — load it in chrome://tracing or Perfetto. The
// dispatcher's sequential stages render on track 0, each shard's planner
// Step on its own parallel track.
func (d *Dispatcher) ChromeTrace(n int) ([]byte, error) {
	spans := d.SpanTrace(n)
	tracks := make([]string, 1+len(d.shards))
	tracks[0] = "dispatcher"
	for i := range d.shards {
		tracks[1+i] = fmt.Sprintf("shard %d", i)
	}
	return obs.ChromeTrace(spans, tracks)
}

// TaskHistory returns the ledger's transition chain for one task. False when
// the ledger is off, never saw the id, or already evicted it.
func (d *Dispatcher) TaskHistory(id int) (obs.TaskHistory, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.ob.ledger == nil {
		return obs.TaskHistory{}, false
	}
	return d.ob.ledger.History(id)
}

// LedgerAudit scans every retained chain for shape violations (see
// obs.Ledger.Audit). evictions reports how many chains were dropped to stay
// within LedgerTasks — an audit only covers the full population when it is
// zero.
func (d *Dispatcher) LedgerAudit() (issues []obs.AuditIssue, evictions int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.ob.ledger == nil {
		return nil, 0
	}
	return d.ob.ledger.Audit(), d.ob.ledger.Evictions()
}

// LedgerTerminals tallies the retained ledger chains by terminal state; live
// (unterminated) chains count under the empty state. After a full drain the
// tally must reproduce the snapshot's terminal counters exactly — the
// benchsuite conservation gate cross-checks the two and names the tasks
// whose chains disagree.
func (d *Dispatcher) LedgerTerminals() map[obs.State]int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.ob.ledger == nil {
		return nil
	}
	return d.ob.ledger.TerminalCounts()
}

// FlightDumps returns the retained flight-recorder dumps, oldest first.
// Empty unless ObsConfig.FlightDepth is set.
func (d *Dispatcher) FlightDumps() []obs.FlightDump {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.ob.flight == nil {
		return nil
	}
	return d.ob.flight.All()
}

// StageHistogram pairs a stage name with its wall-time histogram snapshot.
type StageHistogram struct {
	Stage string
	Data  obs.HistogramSnapshot
}

// Histograms snapshots the epoch and per-stage wall-time histograms — the
// log-bucketed series behind /metrics' _bucket/_sum/_count exposition.
func (d *Dispatcher) Histograms() (epoch obs.HistogramSnapshot, stages []StageHistogram) {
	d.mu.Lock()
	defer d.mu.Unlock()
	epoch = d.ob.epochHist.Snapshot()
	stages = make([]StageHistogram, numStages)
	for i := range d.ob.stageHist {
		stages[i] = StageHistogram{Stage: stageNames[i], Data: d.ob.stageHist[i].Snapshot()}
	}
	return epoch, stages
}
