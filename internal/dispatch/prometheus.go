package dispatch

import (
	"fmt"
	"net/http"
	"strings"
)

// escapeHelp escapes a HELP string per the text exposition format (version
// 0.0.4): backslashes and line feeds must be escaped or a multi-line help
// text would corrupt the stream.
func escapeHelp(s string) string {
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(s)
}

// prometheus serves the snapshot in the Prometheus text exposition format
// (version 0.0.4) — hand-rolled, since the repo deliberately has no module
// dependencies. Counter/gauge typing follows the snapshot semantics:
// lifetime totals are counters, point-in-time pool sizes and tiers gauges,
// and the epoch/stage wall-time distributions are native histograms with
// log-spaced buckets (real _bucket/_sum/_count series, not quantile gauges).
func (h *Handler) prometheus(w http.ResponseWriter, _ *http.Request) {
	m := h.d.Snapshot()
	epochHist, stageHists := h.d.Histograms()
	var b strings.Builder
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, escapeHelp(help), name, name, v)
	}
	counter := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, escapeHelp(help), name, name, v)
	}
	gauge("datawa_now_seconds", "Next epoch instant on the logical clock.", m.Now)
	counter("datawa_epochs_total", "Planning epochs executed.", float64(m.Epochs))
	counter("datawa_ingested_total", "Events accepted onto the ingest queue.", float64(m.Ingested))
	counter("datawa_applied_total", "Events that changed shard state.", float64(m.Applied))
	counter("datawa_unroutable_total", "Events that had no effect.", float64(m.Unroutable))
	gauge("datawa_queue_depth", "Current ingest backlog (queued + undue).", float64(m.QueueDepth))
	gauge("datawa_routed_workers", "Workers currently active.", float64(m.RoutedWorkers))
	gauge("datawa_routed_tasks", "Tasks currently open.", float64(m.RoutedTasks))
	gauge("datawa_routed_ghosts", "Tasks with at least one live ghost replica.", float64(m.RoutedGhosts))
	counter("datawa_ghost_copies_total", "Ghost replicas created.", float64(m.GhostCopies))
	counter("datawa_ghost_hits_total", "Tasks won by a non-owner shard.", float64(m.GhostHits))
	counter("datawa_commit_conflicts_total", "Tasks committed by more than one shard in an epoch.", float64(m.CommitConflicts))
	counter("datawa_retractions_total", "Losing commits undone by arbitration.", float64(m.Retractions))
	counter("datawa_incremental_hits_total", "Cached quiet components spliced instead of replanned.", float64(m.IncrementalHits))
	counter("datawa_components_replanned_total", "Components replanned by a planner.", float64(m.ComponentsReplanned))
	counter("datawa_assigned_total", "Tasks assigned.", float64(m.Assigned))
	counter("datawa_expired_total", "Tasks expired unserved.", float64(m.Expired))
	counter("datawa_cancelled_total", "Tasks withdrawn by their requester.", float64(m.Cancelled))
	counter("datawa_shed_total", "Tasks terminally dropped by admission control.", float64(m.Shed))
	counter("datawa_deferred_total", "Admission-control deferral events.", float64(m.Deferred))
	counter("datawa_tier_demotions_total", "Governor ladder demotions.", float64(m.TierDemotions))
	counter("datawa_tier_promotions_total", "Governor ladder promotions.", float64(m.TierPromotions))
	gauge("datawa_worst_tier", "Deepest ladder tier any shard reached.", float64(m.WorstTier))
	counter("datawa_plan_calls_total", "Planner invocations.", float64(m.PlanCalls))
	counter("datawa_plan_time_seconds_total", "Wall time spent inside planners.", m.PlanTime.Seconds())
	fmt.Fprintf(&b, "# HELP datawa_epoch_wall_seconds Full epoch wall time (drain through arbitration), log-bucketed.\n")
	fmt.Fprintf(&b, "# TYPE datawa_epoch_wall_seconds histogram\n")
	epochHist.AppendProm(&b, "datawa_epoch_wall_seconds", "")
	fmt.Fprintf(&b, "# HELP datawa_stage_wall_seconds Per-stage epoch wall time, log-bucketed; every stage observes once per epoch.\n")
	fmt.Fprintf(&b, "# TYPE datawa_stage_wall_seconds histogram\n")
	for _, sh := range stageHists {
		sh.Data.AppendProm(&b, "datawa_stage_wall_seconds", fmt.Sprintf("stage=%q", sh.Stage))
	}
	fmt.Fprintf(&b, "# HELP datawa_shard_tier Current degradation-ladder tier per shard (0 = full planner).\n")
	fmt.Fprintf(&b, "# TYPE datawa_shard_tier gauge\n")
	for _, s := range m.Shards {
		fmt.Fprintf(&b, "datawa_shard_tier{shard=\"%d\"} %d\n", s.Shard, s.Tier)
	}
	fmt.Fprintf(&b, "# HELP datawa_shard_workers Active workers per shard.\n")
	fmt.Fprintf(&b, "# TYPE datawa_shard_workers gauge\n")
	for _, s := range m.Shards {
		fmt.Fprintf(&b, "datawa_shard_workers{shard=\"%d\"} %d\n", s.Shard, s.Workers)
	}
	fmt.Fprintf(&b, "# HELP datawa_shard_open_tasks Open tasks per shard.\n")
	fmt.Fprintf(&b, "# TYPE datawa_shard_open_tasks gauge\n")
	for _, s := range m.Shards {
		fmt.Fprintf(&b, "datawa_shard_open_tasks{shard=\"%d\"} %d\n", s.Shard, s.Open)
	}
	fmt.Fprintf(&b, "# HELP datawa_shard_shed_total Tasks terminally shed from this shard's open pool by admission control.\n")
	fmt.Fprintf(&b, "# TYPE datawa_shard_shed_total counter\n")
	for _, s := range m.Shards {
		fmt.Fprintf(&b, "datawa_shard_shed_total{shard=\"%d\"} %d\n", s.Shard, s.Stats.Shed)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(b.String()))
}
