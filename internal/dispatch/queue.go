package dispatch

import (
	"sync/atomic"
)

// stampedEvent is an ingest event with its global sequence number, assigned
// at enqueue time by one atomic counter shared across lanes. The pending
// heap orders drained events by (Time, seq), so the heap — not lane
// interleaving — defines the order events apply in; lane routing is purely a
// contention-spreading decision. For a single producer, enqueue-time
// stamping assigns exactly the arrival order the legacy channel's drain-time
// stamping assigned, which is what keeps replays byte-identical across both
// queue shapes (the property tests pin this).
type stampedEvent struct {
	ev  Event
	seq int64
}

// ingestLane is one bounded MPMC ring (Vyukov-style: a per-slot sequence
// counter arbitrates producers and the consumer without a mutex). Producers
// contend only on this lane's tail CAS; the consumer side (pop) is always
// called under the dispatcher's epoch lock, which serializes consumers and
// publishes head between them.
type ingestLane struct {
	mask  uint64
	slots []laneSlot
	_     [48]byte // keep the hot tail word off the slots' cache lines
	tail  atomic.Uint64
	_     [56]byte
	head  uint64 // consumer cursor; epoch lock serializes access
}

type laneSlot struct {
	seq atomic.Uint64
	ev  stampedEvent
}

func newIngestLane(capacity int) *ingestLane {
	size := 64
	for size < capacity {
		size <<= 1
	}
	l := &ingestLane{mask: uint64(size - 1), slots: make([]laneSlot, size)}
	for i := range l.slots {
		l.slots[i].seq.Store(uint64(i))
	}
	return l
}

// tryPush claims a slot and publishes the event, or reports a full ring.
// Wait-free for the winning producer; a loser retries the CAS. Never blocks:
// the caller handles a full ring by spilling to the pending heap under the
// epoch lock.
//
//datawa:hotpath
func (l *ingestLane) tryPush(se stampedEvent) bool {
	pos := l.tail.Load()
	for {
		s := &l.slots[pos&l.mask]
		diff := int64(s.seq.Load()) - int64(pos)
		switch {
		case diff == 0:
			if l.tail.CompareAndSwap(pos, pos+1) {
				s.ev = se
				s.seq.Store(pos + 1)
				return true
			}
			pos = l.tail.Load()
		case diff < 0:
			// The slot a full ring-turn behind is still unconsumed: full.
			return false
		default:
			// Another producer claimed pos; chase the tail.
			pos = l.tail.Load()
		}
	}
}

// pop takes the oldest published event, or reports an empty (or mid-publish)
// ring. Must be called under the epoch lock.
//
//datawa:hotpath
func (l *ingestLane) pop() (stampedEvent, bool) {
	s := &l.slots[l.head&l.mask]
	if int64(s.seq.Load())-int64(l.head+1) != 0 {
		return stampedEvent{}, false
	}
	se := s.ev
	s.ev = stampedEvent{} // drop the Task/Worker pointers for GC
	s.seq.Store(l.head + l.mask + 1)
	l.head++
	return se, true
}

// depth is the published-but-unconsumed count. Exact under the epoch lock
// (no concurrent consumer); a racing producer can make it stale by one, which
// is no worse than len(chan) was.
//
//datawa:hotpath
func (l *ingestLane) depth() int {
	d := int64(l.tail.Load()) - int64(l.head)
	if d < 0 {
		return 0
	}
	return int(d)
}

// shardedQueue is the ingest queue sharded by grid cell: one lane per shard,
// so producers for different regions never touch the same cache lines, plus
// one overflow lane for events that carry no location (offline, cancel)
// routed by id. Total capacity ≈ QueueSize, split evenly.
type shardedQueue struct {
	lanes []*ingestLane
}

func newShardedQueue(lanes, capacity int) *shardedQueue {
	if lanes < 1 {
		lanes = 1
	}
	per := capacity / lanes
	if per < 64 {
		per = 64
	}
	q := &shardedQueue{lanes: make([]*ingestLane, lanes)}
	for i := range q.lanes {
		q.lanes[i] = newIngestLane(per)
	}
	return q
}

// laneOf routes an event to a lane: located events go to the shard owning
// their cell (the same routing applyLocked will use), id-only events spread
// by id. A pure function of the event, so routing never needs the lock.
//
//datawa:hotpath
func (d *Dispatcher) laneOf(ev Event) *ingestLane {
	q := d.rings
	n := len(q.lanes)
	if n == 1 {
		return q.lanes[0]
	}
	switch ev.Kind {
	case KindWorkerOnline:
		if ev.Worker != nil {
			return q.lanes[d.shardOf(ev.Worker.Loc)]
		}
	case KindTaskSubmit:
		if ev.Task != nil {
			return q.lanes[d.shardOf(ev.Task.Loc)]
		}
	case KindPosition:
		return q.lanes[d.shardOf(ev.Loc)]
	}
	id := ev.ID
	if id < 0 {
		id = -id
	}
	return q.lanes[id%n]
}

//datawa:hotpath
func (q *shardedQueue) depth() int {
	n := 0
	for _, l := range q.lanes {
		n += l.depth()
	}
	return n
}
