//go:build race

package dispatch

// raceEnabled reports whether the race detector is active in this test
// binary; wall-clock throughput floors are meaningless under its 5–20×
// slowdown.
const raceEnabled = true
