package dispatch

import (
	"math"

	"repro/internal/geo"
	"repro/internal/spatial"
)

// shardMap is the explicit cell→shard ownership table of a sharded
// dispatcher. Ownership is banded: cell c belongs to shard c·S/M (M grid
// cells, S shards), so each shard owns one contiguous row-major range of
// cells. Contiguity minimizes the boundary surface between shards — a task's
// reachability disk crosses into at most a few foreign bands — which keeps
// the ghost-replication volume of the halo protocol proportional to the
// boundary length, not to the task count. The map is immutable: routing
// stays a pure function of the event, preserving the dispatcher's
// determinism contract.
type shardMap struct {
	grid   geo.Grid
	shards int
	owner  []int // cell index → owning shard
}

func newShardMap(g geo.Grid, shards int) *shardMap {
	sm := &shardMap{grid: g, shards: shards, owner: make([]int, g.Cells())}
	cells := g.Cells()
	for c := range sm.owner {
		sm.owner[c] = c * shards / cells
	}
	return sm
}

// ownerOf routes a location to the shard owning its grid cell.
func (sm *shardMap) ownerOf(p geo.Point) int {
	return sm.owner[sm.grid.CellOf(p)]
}

// shardsInDisk returns the distinct shards owning at least one grid cell
// overlapped by the closed disk of radius r around p, excluding `exclude`,
// in ascending shard order — the replication targets for a task at p whose
// halo disk crosses shard boundaries.
func (sm *shardMap) shardsInDisk(p geo.Point, r float64, exclude int) []int {
	if r < 0 || math.IsNaN(r) {
		return nil
	}
	// Interior fast path: every cell of the disk's bounding box has an index
	// between the box's two extreme corners, and banded ownership is
	// monotone in cell index — equal owners at the extremes mean one owner
	// for the whole box, so interior tasks (the vast majority) skip the
	// per-cell scan entirely.
	lo := sm.grid.CellOf(geo.Point{X: p.X - r, Y: p.Y - r})
	hi := sm.grid.CellOf(geo.Point{X: p.X + r, Y: p.Y + r})
	if sm.owner[lo] == sm.owner[hi] {
		if s := sm.owner[lo]; s != exclude {
			return []int{s}
		}
		return nil
	}
	var out []int
	seen := -1 // banded ownership is monotone in cell order, so dedup is a scan
	for _, c := range spatial.CellsInDisk(sm.grid, p, r) {
		s := sm.owner[c]
		if s == exclude || s == seen {
			continue
		}
		seen = s
		out = append(out, s)
	}
	return out
}
