package dispatch

import (
	"bufio"
	"errors"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/wire"
)

// StreamSummary accounts one streamed ingest session: how many events were
// accepted onto the queue, how many were rejected by validation, and how
// many frames (binary) or lines (NDJSON) the session carried.
type StreamSummary struct {
	Accepted int64 `json:"accepted"`
	Rejected int64 `json:"rejected"`
	Frames   int64 `json:"frames"`
	// Time is the logical instant of the next epoch when the session ended.
	Time float64 `json:"time"`
}

// IngestBatch validates and enqueues one decoded wire batch, returning how
// many events were accepted and rejected. Workers and tasks are materialized
// into two batch-sized slabs, so admitting N entities costs two allocations
// instead of N — the dispatcher retains pointers into the slabs exactly as
// it would retain individually-boxed entities. Safe for concurrent use, like
// Ingest.
//
// Validation mirrors the HTTP endpoints: worker events need a positive id,
// positive reach, and a non-empty availability window; task submits need an
// id in [0, 2^30) — 0 draws a server-assigned id — and a non-empty validity
// window. An event with time 0 is stamped with the next epoch instant, so
// clients that only relay "now" events never have to track the logical
// clock. Rejected events are counted, never partially applied.
//
//datawa:hotpath
func (d *Dispatcher) IngestBatch(events []wire.Event) (accepted, rejected int) {
	var nw, nt int
	for i := range events {
		switch events[i].Kind {
		case wire.WorkerOnline:
			nw++
		case wire.TaskSubmit:
			nt++
		}
	}
	var workers []core.Worker
	var tasks []core.Task
	if nw > 0 {
		//datawa:alloc one amortized slab per batch; sized exactly, handed to the shards wholesale
		workers = make([]core.Worker, 0, nw)
	}
	if nt > 0 {
		//datawa:alloc one amortized slab per batch; sized exactly, handed to the shards wholesale
		tasks = make([]core.Task, 0, nt)
	}
	now := d.Now()
	for i := range events {
		ev := &events[i]
		t := ev.Time
		if t == 0 {
			t = now
		}
		switch ev.Kind {
		case wire.WorkerOnline:
			if ev.ID <= 0 || int64(int(ev.ID)) != ev.ID || ev.Reach <= 0 || ev.Off <= ev.On {
				rejected++
				continue
			}
			workers = append(workers, core.Worker{
				ID: int(ev.ID), Loc: geo.Point{X: ev.X, Y: ev.Y},
				Reach: ev.Reach, On: ev.On, Off: ev.Off,
			})
			d.Ingest(Event{Time: t, Kind: KindWorkerOnline, Worker: &workers[len(workers)-1]})
		case wire.TaskSubmit:
			if ev.ID < 0 || ev.ID >= syntheticIDBase || ev.Exp <= ev.Pub {
				rejected++
				continue
			}
			id := int(ev.ID)
			if id == 0 {
				id = d.nextSyntheticID()
			}
			tasks = append(tasks, core.Task{
				ID: id, Loc: geo.Point{X: ev.X, Y: ev.Y},
				Pub: ev.Pub, Exp: ev.Exp, Cell: -1,
			})
			d.Ingest(Event{Time: t, Kind: KindTaskSubmit, Task: &tasks[len(tasks)-1]})
		case wire.WorkerOffline:
			if int64(int(ev.ID)) != ev.ID {
				rejected++
				continue
			}
			d.Ingest(Event{Time: t, Kind: KindWorkerOffline, ID: int(ev.ID)})
		case wire.TaskCancel:
			if int64(int(ev.ID)) != ev.ID {
				rejected++
				continue
			}
			d.Ingest(Event{Time: t, Kind: KindTaskCancel, ID: int(ev.ID)})
		case wire.Position:
			if int64(int(ev.ID)) != ev.ID || math.IsNaN(ev.X) || math.IsNaN(ev.Y) {
				rejected++
				continue
			}
			d.Ingest(Event{Time: t, Kind: KindPosition, ID: int(ev.ID), Loc: geo.Point{X: ev.X, Y: ev.Y}})
		default:
			rejected++
			continue
		}
		accepted++
	}
	return accepted, rejected
}

// ConsumeStream ingests a batched event stream from r until EOF: binary wire
// frames or NDJSON lines, sniffed from the first byte. This is the shared
// engine behind POST /v1/stream and the raw-TCP listener — one persistent
// connection carries any number of frames, each decoded into a reused buffer
// and batch-ingested. A protocol violation stops the session and returns the
// error alongside the counts accumulated so far; a clean EOF returns nil.
func (d *Dispatcher) ConsumeStream(r io.Reader) (StreamSummary, error) {
	var sum StreamSummary
	br := bufio.NewReaderSize(r, 32<<10)
	first, err := br.Peek(1)
	if err != nil {
		sum.Time = d.Now()
		if err == io.EOF {
			return sum, nil // empty stream: zero events, no protocol to violate
		}
		return sum, err
	}
	if wire.IsBinary(first[0]) {
		dec := wire.NewDecoder(br)
		for {
			batch, err := dec.Next()
			if err != nil {
				sum.Time = d.Now()
				if err == io.EOF {
					return sum, nil
				}
				return sum, err
			}
			sum.Frames++
			a, rej := d.IngestBatch(batch)
			sum.Accepted += int64(a)
			sum.Rejected += int64(rej)
		}
	}
	// NDJSON fallback: one event per line, batched per line.
	dec := wire.NewNDJSONDecoder(br)
	var one [1]wire.Event
	for {
		ev, err := dec.Next()
		if err != nil {
			sum.Time = d.Now()
			if err == io.EOF {
				return sum, nil
			}
			return sum, err
		}
		sum.Frames++
		one[0] = ev
		a, rej := d.IngestBatch(one[:])
		sum.Accepted += int64(a)
		sum.Rejected += int64(rej)
	}
}

// IsProtocolError reports whether a ConsumeStream error is a wire-protocol
// violation (as opposed to a transport failure): the caller should answer
// 400, not 500, and drop the connection.
func IsProtocolError(err error) bool {
	return errors.Is(err, wire.ErrMagic) || errors.Is(err, wire.ErrVersion) ||
		errors.Is(err, wire.ErrMalformed) || errors.Is(err, wire.ErrTooLarge) ||
		errors.Is(err, io.ErrUnexpectedEOF)
}
