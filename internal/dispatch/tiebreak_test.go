package dispatch

import (
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/stream"
	"repro/internal/workload"
)

// Equal-timestamp tie-breaking audit. Scenario traces order events by
// (time, workers-before-tasks, id) — workload.Scenario.Events — and the
// dispatcher's pending buffer replays them in (time, ingest order). Both must
// agree with the engine's per-step batching (all due workers, then all due
// tasks, each in (time, id) order via core.SortWorkersByOn/SortTasksByPub)
// or coarse-scale traces with colliding timestamps replay differently live
// than offline. These tests pin that agreement byte-for-byte.

// tieScenario packs worker-online and task-submit collisions onto the same
// instants, including ids deliberately out of insertion order, and one
// worker/task pair colliding exactly on an epoch boundary.
func tieScenario() *workload.Scenario {
	mk := func(id int, x, y, pub float64) *core.Task {
		return &core.Task{ID: id, Loc: geo.Point{X: x, Y: y}, Pub: pub, Exp: pub + 40}
	}
	w := func(id int, x, y, on float64) *core.Worker {
		return &core.Worker{ID: id, Loc: geo.Point{X: x, Y: y}, Reach: 1.5, On: on, Off: on + 300}
	}
	sc := &workload.Scenario{
		Config: workload.Config{Name: "ties", Seed: 1},
		Grid:   geo.NewGrid(geo.Rect{MinX: 0, MinY: 0, MaxX: 4, MaxY: 4}, 2, 2),
		// Insertion order is scrambled on purpose: the generators sort by
		// (time, id), and Events() must land on the same order.
		Workers: []*core.Worker{
			w(7, 1, 1, 4), w(3, 3, 3, 4), // two workers at the same instant
			w(9, 2, 2, 8), // worker exactly on an epoch boundary
			w(1, 0.5, 0.5, 0),
		},
		Tasks: []*core.Task{
			mk(12, 1.1, 1.1, 4), mk(5, 3.1, 3.1, 4), // tasks colliding with the t=4 workers
			mk(20, 2.1, 2.1, 8), // task tied with worker 9 on the boundary
			mk(2, 0.6, 0.6, 2),
		},
		T0: 0, T1: 20,
	}
	core.SortWorkersByOn(sc.Workers)
	core.SortTasksByPub(sc.Tasks)
	return sc
}

// TestEventsTieBreakWorkersBeforeTasks pins the trace-export order on
// colliding timestamps: workers precede tasks, ids ascend within a kind.
func TestEventsTieBreakWorkersBeforeTasks(t *testing.T) {
	evs := tieScenario().Events()
	type key struct {
		time float64
		kind workload.EventKind
		id   int
	}
	want := []key{
		{0, workload.WorkerOnline, 1},
		{2, workload.TaskSubmit, 2},
		{4, workload.WorkerOnline, 3},
		{4, workload.WorkerOnline, 7},
		{4, workload.TaskSubmit, 5},
		{4, workload.TaskSubmit, 12},
		{8, workload.WorkerOnline, 9},
		{8, workload.TaskSubmit, 20},
	}
	if len(evs) != len(want) {
		t.Fatalf("%d events, want %d", len(evs), len(want))
	}
	for i, ev := range evs {
		id := 0
		if ev.Kind == workload.WorkerOnline {
			id = ev.Worker.ID
		} else {
			id = ev.Task.ID
		}
		if ev.Time != want[i].time || ev.Kind != want[i].kind || id != want[i].id {
			t.Fatalf("event %d = (%v, %v, id %d), want (%v, %v, id %d)",
				i, ev.Time, ev.Kind, id, want[i].time, want[i].kind, want[i].id)
		}
	}
}

// TestTiedTimestampReplayMatchesEngine replays the collision trace through
// the dispatcher — including a one-slot ingest queue that forces the
// spill-to-pending path — and requires the engine's exact outcome at every
// configuration. This is what keeps suite runs byte-deterministic when
// coarse scales collide worker-on and task-submit instants.
func TestTiedTimestampReplayMatchesEngine(t *testing.T) {
	sc := tieScenario()
	const step = 4 // coarse epochs: every collision shares a planning instant
	ref := stream.Run(
		stream.Input{Workers: sc.Workers, Tasks: sc.Tasks, T0: sc.T0, T1: sc.T1},
		stream.Config{Planner: searchFactory()(0), Step: step, Travel: travel},
	)
	for _, cfg := range []struct {
		name      string
		queueSize int
		shards    int
		parallel  int
	}{
		{"ample queue", 0, 1, 1},
		{"one-slot queue spills", 1, 1, 1},
		{"sharded parallel", 1, 2, 4},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			d := New(Config{
				Shards: cfg.shards, Grid: sc.Grid, Step: step, Now: sc.T0,
				Travel: travel, NewPlanner: searchFactory(),
				Parallelism: cfg.parallel, QueueSize: cfg.queueSize,
			})
			m := (LoadGen{Events: sc.Events(), T1: sc.T1}).Run(d).Metrics
			if cfg.shards == 1 {
				if m.Assigned != ref.Assigned || m.Expired != ref.Expired {
					t.Fatalf("assigned/expired = %d/%d, engine = %d/%d",
						m.Assigned, m.Expired, ref.Assigned, ref.Expired)
				}
			}
			// At any shard count, replaying twice must agree exactly.
			d2 := New(Config{
				Shards: cfg.shards, Grid: sc.Grid, Step: step, Now: sc.T0,
				Travel: travel, NewPlanner: searchFactory(),
				Parallelism: 1, QueueSize: 0,
			})
			m2 := (LoadGen{Events: sc.Events(), T1: sc.T1}).Run(d2).Metrics
			if m.Assigned != m2.Assigned || m.Expired != m2.Expired || m.Applied != m2.Applied {
				t.Fatalf("replay diverges across queue/parallelism settings: %d/%d/%d vs %d/%d/%d",
					m.Assigned, m.Expired, m.Applied, m2.Assigned, m2.Expired, m2.Applied)
			}
		})
	}
}
