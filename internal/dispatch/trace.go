package dispatch

// ShardTrace is one shard's slice of an epoch trace record.
type ShardTrace struct {
	// Tier is the shard's degradation-ladder position after this epoch's
	// governor decision (0 = full planner); TierName is the active
	// planner's name. Zero/empty without a governor.
	Tier     int    `json:"tier"`
	TierName string `json:"tier_name,omitempty"`
	// Workers and Open are the shard's pool sizes at the planning instant,
	// before the Step ran.
	Workers int `json:"workers"`
	Open    int `json:"open_tasks"`
	// Cost is the epoch cost the governor scored (CostFunc units; wall
	// seconds by default), WallNS the shard's measured Step wall time.
	Cost   float64 `json:"cost"`
	WallNS int64   `json:"wall_ns"`
}

// EpochTrace is one planning epoch's record in the trace ring — the
// operability view of what each epoch cost and what tier each shard ran at,
// exposed raw over GET /v1/trace.
type EpochTrace struct {
	Epoch  int          `json:"epoch"`
	Now    float64      `json:"now"`
	WallNS int64        `json:"wall_ns"`
	Shards []ShardTrace `json:"shards"`
}

// traceRing keeps the last N epoch traces.
type traceRing struct {
	buf  []EpochTrace
	next int
	full bool
}

func newTraceRing(n int) *traceRing { return &traceRing{buf: make([]EpochTrace, n)} }

func (r *traceRing) add(e EpochTrace) {
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// last returns up to n retained traces, oldest first (n ≤ 0 = all).
func (r *traceRing) last(n int) []EpochTrace {
	var out []EpochTrace
	if r.full {
		out = append(out, r.buf[r.next:]...)
	}
	out = append(out, r.buf[:r.next]...)
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// Trace returns up to n recent epoch trace records, oldest first (n ≤ 0 =
// the whole retained window). Empty unless Config.TraceDepth is set.
func (d *Dispatcher) Trace(n int) []EpochTrace {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.trace == nil {
		return nil
	}
	return d.trace.last(n)
}
