package experiments

import (
	"fmt"

	"repro/internal/assign"
	"repro/internal/stream"
	"repro/internal/workload"
)

// The ablation experiments quantify the design decisions called out in
// DESIGN.md §4: the learned dynamic adjacency, the TVF versus exact search,
// the RTC tree versus flat component search, and the sequence-length cap.

func init() {
	register(Experiment{
		ID:    "ablation-adjacency",
		Title: "DDGNN dynamic adjacency vs identity propagation",
		Run:   runAdjacencyAblation,
	})
	register(Experiment{
		ID:    "ablation-tvf",
		Title: "Exact DFSearch vs DFSearch_TVF: quality and search effort",
		Run:   runTVFAblation,
	})
	register(Experiment{
		ID:    "ablation-flat",
		Title: "RTC tree search vs flat component search",
		Run:   runFlatAblation,
	})
	register(Experiment{
		ID:    "ablation-seqlen",
		Title: "Effect of the maximal sequence length cap",
		Run:   runSeqLenAblation,
	})
}

func runAdjacencyAblation(s Scale) []*Table {
	s = s.withDefaults()
	t := &Table{
		ID:     "ablation-adjacency",
		Title:  "Average precision with and without the Demand Dependency Learning module",
		Header: []string{"dataset", "model", "AP"},
	}
	for _, base := range []workload.Config{workload.Yueche(), workload.DiDi()} {
		sc := workload.Generate(scaledConfig(base, s))
		for _, name := range []string{"DDGNN", "DDGNN-static"} {
			res, _ := trainEval(name, sc, DeltaTValues[0], s, base.Seed)
			t.Add(base.Name, name, fmtF(res.AP))
		}
	}
	return []*Table{t}
}

func runTVFAblation(s Scale) []*Table {
	s = s.withDefaults()
	t := &Table{
		ID:     "ablation-tvf",
		Title:  "Backtracking exact search vs value-function search",
		Header: []string{"dataset", "solver", "assigned", "cpu_per_instant", "nodes_last_plan"},
	}
	for _, base := range []workload.Config{workload.Yueche()} {
		sc := workload.Generate(scaledConfig(base, s))
		in := stream.Input{Workers: sc.Workers, Tasks: sc.Tasks, T0: sc.T0, T1: sc.T1}
		valueFn := trainTVF(sc, nil, s)

		exact := &assign.Search{Opts: assignOptions(s)}
		resExact := stream.Run(in, stream.Config{Planner: exact, Step: s.Step, Travel: travelModel})
		t.Add(base.Name, "DFSearch", fmt.Sprintf("%d", resExact.Assigned),
			fmtDuration(resExact.AvgPlanTime), fmt.Sprintf("%d", exact.NodesLastPlan))

		fast := &assign.Search{Opts: assignOptions(s), Model: valueFn}
		resFast := stream.Run(in, stream.Config{Planner: fast, Step: s.Step, Travel: travelModel})
		t.Add(base.Name, "DFSearch_TVF", fmt.Sprintf("%d", resFast.Assigned),
			fmtDuration(resFast.AvgPlanTime), fmt.Sprintf("%d", fast.NodesLastPlan))
	}
	return []*Table{t}
}

func runFlatAblation(s Scale) []*Table {
	s = s.withDefaults()
	t := &Table{
		ID:     "ablation-flat",
		Title:  "Worker dependency separation: tree vs flat",
		Header: []string{"dataset", "mode", "assigned", "cpu_per_instant"},
	}
	sc := workload.Generate(scaledConfig(workload.Yueche(), s))
	in := stream.Input{Workers: sc.Workers, Tasks: sc.Tasks, T0: sc.T0, T1: sc.T1}

	tree := &assign.Search{Opts: assignOptions(s)}
	resTree := stream.Run(in, stream.Config{Planner: tree, Step: s.Step, Travel: travelModel})
	t.Add("Yueche", "rtc-tree", fmt.Sprintf("%d", resTree.Assigned), fmtDuration(resTree.AvgPlanTime))

	flatOpts := assignOptions(s)
	flatOpts.Flat = true
	flat := &assign.Search{Opts: flatOpts}
	resFlat := stream.Run(in, stream.Config{Planner: flat, Step: s.Step, Travel: travelModel})
	t.Add("Yueche", "flat", fmt.Sprintf("%d", resFlat.Assigned), fmtDuration(resFlat.AvgPlanTime))
	return []*Table{t}
}

func runSeqLenAblation(s Scale) []*Table {
	s = s.withDefaults()
	t := &Table{
		ID:     "ablation-seqlen",
		Title:  "Maximal valid sequence length cap",
		Header: []string{"dataset", "max_seq_len", "assigned", "cpu_per_instant"},
	}
	sc := workload.Generate(scaledConfig(workload.Yueche(), s))
	in := stream.Input{Workers: sc.Workers, Tasks: sc.Tasks, T0: sc.T0, T1: sc.T1}
	for _, l := range []int{1, 2, 3} {
		opts := assignOptions(s)
		opts.WDS.MaxSeqLen = l
		res := stream.Run(in, stream.Config{Planner: &assign.Search{Opts: opts}, Step: s.Step, Travel: travelModel})
		t.Add("Yueche", fmt.Sprintf("%d", l), fmt.Sprintf("%d", res.Assigned), fmtDuration(res.AvgPlanTime))
	}
	return []*Table{t}
}

func init() {
	register(Experiment{
		ID:    "ablation-breaks",
		Title: "Dynamic worker availability windows (unplanned breaks)",
		Run:   runBreaksAblation,
	})
}

// runBreaksAblation exercises the paper's title feature: worker availability
// windows that change dynamically (breaks/shifts). Fixed plans should suffer
// most when windows fragment, since a departing worker strands its locked
// sequence; adaptive methods re-plan around the gap.
func runBreaksAblation(s Scale) []*Table {
	s = s.withDefaults()
	t := &Table{
		ID:     "ablation-breaks",
		Title:  "Effect of availability-window fragmentation",
		Header: []string{"dataset", "break_prob", "method", "assigned", "cpu_per_instant"},
	}
	for _, prob := range []float64{0, 0.5} {
		cfg := scaledConfig(workload.Yueche(), s)
		cfg.BreakProb = prob
		cfg.BreakLength = cfg.WorkerAvail * 0.25
		sc := workload.Generate(cfg)
		for _, r := range RunMethods(sc, s) {
			t.Add("Yueche", fmt.Sprintf("%.1f", prob), r.Method,
				fmt.Sprintf("%d", r.Assigned), fmtDuration(r.AvgCPU))
		}
	}
	return []*Table{t}
}
