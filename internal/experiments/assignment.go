package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/assign"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/predict"
	"repro/internal/stream"
	"repro/internal/tvf"
	"repro/internal/wds"
	"repro/internal/workload"
)

// MethodNames are the five task assignment methods of Section V-B.2, in the
// paper's plot order.
var MethodNames = []string{"Greedy", "FTA", "DTA", "DTA+TP", "DATA-WA"}

// scaledConfig scales the workload for the chosen fidelity but lets demand
// history shrink at most 8× slower than the run window (capped at the full
// hour): prediction quality is training-data-bound, and a 1:1 shrink would
// leave the graph models with a handful of windows.
func scaledConfig(base workload.Config, s Scale) workload.Config {
	c := base.Scaled(s.Factor)
	boosted := base.HistoryDuration * math.Min(1, s.Factor*8)
	if boosted > c.HistoryDuration {
		c.HistoryDuration = boosted
	}
	return c
}

// travelModel is shared by every method so comparisons are fair. 5 m/s is
// the effective urban speed including stops and signals; it reproduces the
// paper's scarcity regime (roughly a dozen served tasks per worker-hour)
// where sequencing quality separates the methods.
var travelModel = geo.NewTravelModel(0.005)

func assignOptions(s Scale) assign.Options {
	return assign.Options{
		WDS:         wds.Options{Travel: travelModel},
		MaxNodes:    s.MaxNodes,
		Parallelism: s.Parallelism,
	}
}

// MethodResult is one line of Figs. 7–11: a method's assigned-task count
// and average per-instant CPU time on one scenario.
type MethodResult struct {
	Method   string
	Assigned int
	AvgCPU   time.Duration
	// Repositions counts moves toward predicted demand (prediction methods
	// only).
	Repositions int
}

// trainDemandModel fits a DDGNN on the scenario's history hour, the demand
// model shared by DTA+TP and DATA-WA.
func trainDemandModel(sc *workload.Scenario, deltaT float64, s Scale) predict.Predictor {
	cfg := sc.SeriesConfig(SeriesK, deltaT)
	series := predict.BuildSeries(cfg, sc.History, 0)
	// Horizon 2: the stream needs demand one full interval ahead so
	// workers can travel there before it materializes.
	windows := series.WindowsAhead(s.Window, s.Stride, 2)
	train, _ := predict.SplitWindows(windows, 1.0) // all history trains
	model := newPredictor("DDGNN", sc.Grid.Cells(), s, sc.Config.Seed)
	if err := model.Fit(train); err != nil {
		panic(fmt.Sprintf("experiments: demand model training failed: %v", err))
	}
	return model
}

// materializeThreshold is the probability above which predicted demand
// becomes a virtual task in the experiment harness. The paper uses 0.85 on
// models trained on real Chengdu traces; on the noisier synthetic series
// our models are under-confident (maximum predicted probability ≈ 0.77), so
// the harness materializes at 0.5, where empirical precision is ≈ 0.4.
// EXPERIMENTS.md records this substitution; the library default exported as
// predict.DefaultThreshold remains the paper's 0.85.
const materializeThreshold = 0.5

// forecasterFor wraps a trained model for stream use. History tasks are
// prepended so the series window is complete from t=0.
func forecasterFor(sc *workload.Scenario, model predict.Predictor, deltaT float64, s Scale) stream.Forecaster {
	cfg := sc.SeriesConfig(SeriesK, deltaT)
	f := predict.NewForecaster(model, cfg, s.Window, materializeThreshold, sc.Config.TaskValid)
	f.Horizon = 2
	return &historyForecaster{inner: f, history: sc.History}
}

// historyForecaster prepends the training-history tasks to the published
// stream so early-run windows are complete.
type historyForecaster struct {
	inner   *predict.Forecaster
	history []*core.Task
}

func (h *historyForecaster) Virtuals(published []*core.Task, now float64) []*core.Task {
	all := make([]*core.Task, 0, len(h.history)+len(published))
	all = append(all, h.history...)
	all = append(all, published...)
	return h.inner.Virtuals(all, now)
}

func (h *historyForecaster) Span() float64 { return h.inner.Span() }

// trainTVF gathers DFSearch training data (Algorithm 1) by streaming a
// prefix of the scenario with the exact search in collection mode, so the
// recorded (state, action, opt) triples come from the same distribution of
// planning states DFSearch_TVF will face — including virtual (predicted)
// tasks when a forecaster is supplied — then fits the task value function
// by the Q-learning regression of Eq. 12.
func trainTVF(sc *workload.Scenario, forecast stream.Forecaster, s Scale) *tvf.Model {
	collector := &assign.Search{Opts: assignOptions(s), Collect: true}
	prefix := sc.T0 + (sc.T1-sc.T0)*0.5
	stream.Run(
		stream.Input{Workers: sc.Workers, Tasks: sc.Tasks, T0: sc.T0, T1: prefix},
		stream.Config{Planner: collector, Step: s.Step, Travel: travelModel, Forecast: forecast},
	)
	model := tvf.NewModel(24, sc.Config.Seed)
	model.Train(collector.Samples, tvf.TrainConfig{Epochs: s.TVFEpochs * 2, Seed: sc.Config.Seed})
	return model
}

// runWithForecaster runs DTA+TP with an arbitrary trained demand model;
// used by the prediction figures to report panel (b).
func runWithForecaster(sc *workload.Scenario, model predict.Predictor, deltaT float64, s Scale) int {
	in := stream.Input{Workers: sc.Workers, Tasks: sc.Tasks, T0: sc.T0, T1: sc.T1}
	cfg := stream.Config{
		Planner:  &assign.Search{Opts: assignOptions(s)},
		Forecast: forecasterFor(sc, model, deltaT, s),
		Step:     s.Step,
		Travel:   travelModel,
	}
	return stream.Run(in, cfg).Assigned
}

// RunMethods executes all five assignment methods on one scenario and
// returns their results in MethodNames order. The DDGNN demand model and
// the TVF are trained once and shared where applicable.
func RunMethods(sc *workload.Scenario, s Scale) []MethodResult {
	s = s.withDefaults()
	in := stream.Input{Workers: sc.Workers, Tasks: sc.Tasks, T0: sc.T0, T1: sc.T1}
	opts := assignOptions(s)

	demand := trainDemandModel(sc, DeltaTValues[0], s)
	valueFn := trainTVF(sc, forecasterFor(sc, demand, DeltaTValues[0], s), s)

	configs := []struct {
		name string
		cfg  stream.Config
	}{
		{"Greedy", stream.Config{Planner: &assign.Greedy{Opts: opts}}},
		{"FTA", stream.Config{Planner: &assign.Search{Opts: opts}, Fixed: true}},
		{"DTA", stream.Config{Planner: &assign.Search{Opts: opts}}},
		{"DTA+TP", stream.Config{
			Planner:  &assign.Search{Opts: opts},
			Forecast: forecasterFor(sc, demand, DeltaTValues[0], s),
		}},
		{"DATA-WA", stream.Config{
			Planner:  &assign.Search{Opts: opts, Model: valueFn},
			Forecast: forecasterFor(sc, demand, DeltaTValues[0], s),
		}},
	}
	out := make([]MethodResult, 0, len(configs))
	for _, c := range configs {
		c.cfg.Step = s.Step
		c.cfg.Travel = travelModel
		res := stream.Run(in, c.cfg)
		out = append(out, MethodResult{
			Method: c.name, Assigned: res.Assigned,
			AvgCPU: res.AvgPlanTime, Repositions: res.Repositions,
		})
	}
	return out
}

// sweepSpec describes one of the Fig. 7–11 parameter sweeps.
type sweepSpec struct {
	id, title, param string
	// values per dataset name; Table III values.
	values map[string][]float64
	apply  func(workload.Config, float64, Scale) workload.Config
	// format renders the swept value for the table.
	format func(float64) string
}

func runSweep(spec sweepSpec, s Scale) []*Table {
	s = s.withDefaults()
	var tables []*Table
	for _, base := range []workload.Config{workload.Yueche(), workload.DiDi()} {
		t := &Table{
			ID:     spec.id,
			Title:  fmt.Sprintf("%s (%s)", spec.title, base.Name),
			Header: []string{spec.param, "method", "assigned", "cpu_per_instant"},
		}
		for _, v := range s.sweep(spec.values[base.Name]) {
			cfg := spec.apply(scaledConfig(base, s), v, s)
			sc := workload.Generate(cfg)
			for _, r := range RunMethods(sc, s) {
				t.Add(spec.format(v), r.Method, fmt.Sprintf("%d", r.Assigned), fmtDuration(r.AvgCPU))
			}
		}
		tables = append(tables, t)
	}
	return tables
}

func init() {
	sweeps := []sweepSpec{
		{
			id:    "fig7",
			title: "Task assignment: effect of |S|",
			param: "tasks",
			values: map[string][]float64{
				"Yueche": {7000, 8000, 9000, 10000, 11000},
				"DiDi":   {5000, 6000, 7000, 8000, 9000},
			},
			apply: func(c workload.Config, v float64, s Scale) workload.Config {
				c.NumTasks = max(1, int(v*s.Factor))
				return c
			},
			format: func(v float64) string { return fmt.Sprintf("%.0f", v) },
		},
		{
			id:    "fig8",
			title: "Task assignment: effect of |W|",
			param: "workers",
			values: map[string][]float64{
				"Yueche": {200, 300, 400, 500, 600},
				"DiDi":   {300, 400, 500, 600, 700},
			},
			apply: func(c workload.Config, v float64, s Scale) workload.Config {
				c.NumWorkers = max(1, int(v*s.Factor))
				return c
			},
			format: func(v float64) string { return fmt.Sprintf("%.0f", v) },
		},
		{
			id:    "fig9",
			title: "Task assignment: effect of reachable distance d",
			param: "reach_km",
			values: map[string][]float64{
				"Yueche": {0.05, 0.1, 0.5, 1.0, 5.0},
				"DiDi":   {0.05, 0.1, 0.5, 1.0, 5.0},
			},
			apply: func(c workload.Config, v float64, s Scale) workload.Config {
				c.WorkerReach = v
				return c
			},
			format: func(v float64) string { return fmt.Sprintf("%.2f", v) },
		},
		{
			id:    "fig10",
			title: "Task assignment: effect of available time off-on",
			param: "avail_h",
			values: map[string][]float64{
				"Yueche": {0.25, 0.5, 0.75, 1.0, 1.25},
				"DiDi":   {0.25, 0.5, 0.75, 1.0, 1.25},
			},
			apply: func(c workload.Config, v float64, s Scale) workload.Config {
				c.WorkerAvail = v * 3600 * s.Factor
				return c
			},
			format: func(v float64) string { return fmt.Sprintf("%.2f", v) },
		},
		{
			id:    "fig11",
			title: "Task assignment: effect of valid time e-p",
			param: "valid_s",
			values: map[string][]float64{
				"Yueche": {10, 20, 30, 40, 50},
				"DiDi":   {10, 20, 30, 40, 50},
			},
			apply: func(c workload.Config, v float64, s Scale) workload.Config {
				c.TaskValid = v
				return c
			},
			format: func(v float64) string { return fmt.Sprintf("%.0f", v) },
		},
	}
	for _, spec := range sweeps {
		spec := spec
		register(Experiment{
			ID:    spec.id,
			Title: spec.title,
			Run:   func(s Scale) []*Table { return runSweep(spec, s) },
		})
	}
}
