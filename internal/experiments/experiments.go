// Package experiments regenerates every table and figure of the DATA-WA
// paper's evaluation (Section V) on the synthetic Yueche- and DiDi-like
// workloads. Each experiment is registered under the id used in DESIGN.md
// (table2, fig5 … fig11, ablation-*) and produces a Table whose rows mirror
// the series the paper plots.
//
// Absolute wall-clock numbers depend on the host; the paper-versus-measured
// comparison in EXPERIMENTS.md is about shapes: who wins, monotonicity, and
// crossovers. The Scale parameter trades fidelity for runtime so the whole
// suite also runs inside `go test -bench`.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Scale controls experiment fidelity. All experiments accept any Scale; the
// three presets below are the ones used by tests (Quick), the CLI default
// (Standard), and full paper-scale runs (Full).
type Scale struct {
	// Factor scales workload cardinalities and durations (0 < f ≤ 1).
	Factor float64
	// Step is the simulator step in seconds.
	Step float64
	// Epochs trains the demand predictors.
	Epochs int
	// Window is the history length (vectors) fed to predictors.
	Window int
	// Stride subsamples training windows.
	Stride int
	// TVFEpochs trains the task value function.
	TVFEpochs int
	// TVFInstants is the number of planning instants sampled for TVF data.
	TVFInstants int
	// MaxNodes caps exact search effort per planning call.
	MaxNodes int
	// SweepPoints limits how many values of each swept parameter run
	// (0 = all five, matching the paper).
	SweepPoints int
	// Parallelism bounds the planner's per-instant fan-out across RTC
	// components (0 = one goroutine per CPU, 1 = serial). Assignment
	// results are identical at every setting; only CPU time moves.
	Parallelism int
}

// Quick is the test/bench preset: every experiment finishes in seconds.
var Quick = Scale{
	Factor: 0.04, Step: 2, Epochs: 4, Window: 6, Stride: 1,
	TVFEpochs: 10, TVFInstants: 4, MaxNodes: 3000, SweepPoints: 2,
}

// Standard is the CLI default: minutes per figure, clear separation.
var Standard = Scale{
	Factor: 0.15, Step: 2, Epochs: 12, Window: 8, Stride: 1,
	TVFEpochs: 25, TVFInstants: 8, MaxNodes: 8000, SweepPoints: 0,
}

// Full approximates paper scale; expect hours for the full suite.
var Full = Scale{
	Factor: 1, Step: 1, Epochs: 25, Window: 10, Stride: 1,
	TVFEpochs: 40, TVFInstants: 12, MaxNodes: 20000, SweepPoints: 0,
}

func (s Scale) withDefaults() Scale {
	if s.Factor <= 0 {
		s.Factor = Quick.Factor
	}
	if s.Step <= 0 {
		s.Step = 2
	}
	if s.Epochs <= 0 {
		s.Epochs = 4
	}
	if s.Window <= 0 {
		s.Window = 6
	}
	if s.Stride <= 0 {
		s.Stride = 1
	}
	if s.TVFEpochs <= 0 {
		s.TVFEpochs = 10
	}
	if s.TVFInstants <= 0 {
		s.TVFInstants = 4
	}
	if s.MaxNodes <= 0 {
		s.MaxNodes = 3000
	}
	return s
}

// sweep trims a parameter-value list to the configured number of points,
// keeping the first and last so ranges stay representative.
func (s Scale) sweep(values []float64) []float64 {
	if s.SweepPoints <= 0 || s.SweepPoints >= len(values) {
		return values
	}
	if s.SweepPoints == 1 {
		return values[:1]
	}
	out := []float64{values[0]}
	for i := 1; i < s.SweepPoints-1; i++ {
		out = append(out, values[i*len(values)/s.SweepPoints])
	}
	return append(out, values[len(values)-1])
}

// Table is a printable experiment result. The JSON tags are the wire names
// used by datawa-bench's -json trajectory output.
type Table struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// Add appends one formatted row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders an aligned text table.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Experiment is one registered reproduction target.
type Experiment struct {
	ID    string
	Title string
	Run   func(s Scale) []*Table
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every registered experiment sorted by id.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

func fmtF(v float64) string { return fmt.Sprintf("%.3f", v) }
