package experiments

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

// tiny returns the fastest possible scale for integration tests.
func tiny() Scale {
	s := Quick
	s.SweepPoints = 1
	return s
}

func TestRegistryComplete(t *testing.T) {
	// Every table/figure of the paper's evaluation plus the four design
	// ablations must be registered.
	want := []string{
		"table2", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
		"ablation-adjacency", "ablation-tvf", "ablation-flat", "ablation-seqlen",
		"ablation-breaks",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
	// All() is sorted.
	ids := All()
	for i := 1; i < len(ids); i++ {
		if ids[i-1].ID >= ids[i].ID {
			t.Error("All() not sorted by id")
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID of unknown id should fail")
	}
}

func TestTable2Experiment(t *testing.T) {
	e, _ := ByID("table2")
	tables := e.Run(tiny())
	if len(tables) != 1 {
		t.Fatalf("table2 produced %d tables", len(tables))
	}
	tab := tables[0]
	if len(tab.Rows) != 2 {
		t.Fatalf("table2 has %d rows, want 2 datasets", len(tab.Rows))
	}
	if tab.Rows[0][0] != "Yueche" || tab.Rows[1][0] != "DiDi" {
		t.Errorf("dataset names: %v, %v", tab.Rows[0][0], tab.Rows[1][0])
	}
	// Render paths.
	if !strings.Contains(tab.String(), "Yueche") {
		t.Error("String() missing data")
	}
	if !strings.Contains(tab.CSV(), "dataset,workers") {
		t.Error("CSV() missing header")
	}
}

func TestAssignmentSweepShapes(t *testing.T) {
	e, _ := ByID("fig9")
	tables := e.Run(tiny())
	if len(tables) != 2 {
		t.Fatalf("fig9 produced %d tables, want one per dataset", len(tables))
	}
	for _, tab := range tables {
		// One sweep point × five methods.
		if len(tab.Rows) != len(MethodNames) {
			t.Fatalf("%s: %d rows", tab.Title, len(tab.Rows))
		}
		for i, row := range tab.Rows {
			if row[1] != MethodNames[i] {
				t.Errorf("row %d method = %s, want %s", i, row[1], MethodNames[i])
			}
		}
	}
}

func TestPredictionFigureShapes(t *testing.T) {
	e, _ := ByID("fig5")
	tables := e.Run(tiny())
	if len(tables) != 1 {
		t.Fatalf("fig5 produced %d tables", len(tables))
	}
	tab := tables[0]
	// One sweep point × three models.
	if len(tab.Rows) != len(PredictorNames) {
		t.Fatalf("fig5 rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[2] == "" || row[2] == "NaN" {
			t.Errorf("AP cell empty: %v", row)
		}
	}
}

func TestRunMethodsOrderAndSanity(t *testing.T) {
	s := tiny()
	sc := workload.Generate(scaledConfig(workload.Yueche(), s))
	results := RunMethods(sc, s)
	if len(results) != 5 {
		t.Fatalf("RunMethods returned %d results", len(results))
	}
	for i, r := range results {
		if r.Method != MethodNames[i] {
			t.Errorf("result %d is %s, want %s", i, r.Method, MethodNames[i])
		}
		if r.Assigned < 0 || r.Assigned > len(sc.Tasks) {
			t.Errorf("%s assigned %d of %d tasks", r.Method, r.Assigned, len(sc.Tasks))
		}
	}
	// Greedy must be the cheapest planner (it does no tree search).
	for _, r := range results[1:] {
		if results[0].AvgCPU > r.AvgCPU {
			t.Logf("note: Greedy CPU %v above %s CPU %v (tiny scale noise)", results[0].AvgCPU, r.Method, r.AvgCPU)
		}
	}
}

func TestSweepTrimming(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	s := Scale{SweepPoints: 2}
	got := s.sweep(vals)
	if len(got) != 2 || got[0] != 1 || got[1] != 5 {
		t.Errorf("sweep(2) = %v", got)
	}
	s.SweepPoints = 1
	if got := s.sweep(vals); len(got) != 1 || got[0] != 1 {
		t.Errorf("sweep(1) = %v", got)
	}
	s.SweepPoints = 0
	if got := s.sweep(vals); len(got) != 5 {
		t.Errorf("sweep(0) = %v", got)
	}
	s.SweepPoints = 9
	if got := s.sweep(vals); len(got) != 5 {
		t.Errorf("sweep(9) = %v", got)
	}
}

func TestScaledConfigBoostsHistory(t *testing.T) {
	s := Scale{Factor: 0.05}
	base := workload.Yueche()
	c := scaledConfig(base, s)
	if c.HistoryDuration <= base.HistoryDuration*0.05+1 {
		t.Errorf("history %v not boosted", c.HistoryDuration)
	}
	if c.HistoryDuration > base.HistoryDuration {
		t.Errorf("history %v exceeds full duration", c.HistoryDuration)
	}
}
