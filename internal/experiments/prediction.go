package experiments

import (
	"fmt"

	"repro/internal/predict"
	"repro/internal/workload"
)

// DeltaTValues is the ΔT sweep of Table III (seconds); the underline in the
// paper marks 5 as the default.
var DeltaTValues = []float64{5, 6, 7, 8, 9}

// SeriesK is the per-vector interval count k (paper Fig. 3 uses k = 3).
const SeriesK = 3

// newPredictor builds one of the three evaluated models with a uniform
// budget, keyed by the names used in Section V-B.1.
func newPredictor(name string, cells int, s Scale, seed int64) predict.Predictor {
	train := predict.TrainConfig{Epochs: s.Epochs, LR: 0.02, WeightDecay: 1e-3, Seed: seed}
	switch name {
	case "LSTM":
		return predict.NewLSTMPredictor(SeriesK, 16, train)
	case "Graph-WaveNet":
		return predict.NewGraphWaveNet(cells, SeriesK, 16, 8, train)
	case "DDGNN":
		return predict.NewDDGNN(predict.DDGNNConfig{K: SeriesK, Hidden: 16, Embed: 8, Train: train})
	case "DDGNN-static":
		return predict.NewStaticAdjacencyDDGNN(predict.DDGNNConfig{K: SeriesK, Hidden: 16, Embed: 8, Train: train})
	default:
		panic("experiments: unknown predictor " + name)
	}
}

// PredictorNames are the three methods of Figs. 5 and 6, in plot order.
var PredictorNames = []string{"LSTM", "Graph-WaveNet", "DDGNN"}

// trainEval trains one model on the scenario's history series at the given
// ΔT and returns its evaluation plus the trained model for stream reuse.
func trainEval(name string, sc *workload.Scenario, deltaT float64, s Scale, seed int64) (predict.EvalResult, predict.Predictor) {
	cfg := sc.SeriesConfig(SeriesK, deltaT)
	series := predict.BuildSeries(cfg, sc.History, 0)
	windows := series.Windows(s.Window, s.Stride)
	train, test := predict.SplitWindows(windows, 0.8)
	model := newPredictor(name, sc.Grid.Cells(), s, seed)
	res, err := predict.Evaluate(model, train, test)
	if err != nil {
		panic(fmt.Sprintf("experiments: %s evaluation failed: %v", name, err))
	}
	return res, model
}

// runPredictionFigure produces the four panels of Fig. 5 (Yueche) or
// Fig. 6 (DiDi): AP, #assigned with each predictor feeding DTA+TP, training
// time, and testing time, for every ΔT.
func runPredictionFigure(id string, base workload.Config, s Scale) []*Table {
	s = s.withDefaults()
	sc := workload.Generate(scaledConfig(base, s))

	quality := &Table{
		ID:     id,
		Title:  fmt.Sprintf("Task demand prediction on %s (panels a–d)", base.Name),
		Header: []string{"deltaT", "model", "AP", "assigned", "train_time", "test_time"},
	}
	for _, deltaT := range s.sweep(DeltaTValues) {
		for _, name := range PredictorNames {
			res, model := trainEval(name, sc, deltaT, s, base.Seed)
			assigned := runWithForecaster(sc, model, deltaT, s)
			quality.Add(
				fmt.Sprintf("%.0f", deltaT), name, fmtF(res.AP),
				fmt.Sprintf("%d", assigned),
				fmtDuration(res.TrainTime), fmtDuration(res.TestTime),
			)
		}
	}
	return []*Table{quality}
}

func init() {
	register(Experiment{
		ID:    "fig5",
		Title: "Performance of Task Demand Prediction: Effect of deltaT on Yueche",
		Run: func(s Scale) []*Table {
			return runPredictionFigure("fig5", workload.Yueche(), s)
		},
	})
	register(Experiment{
		ID:    "fig6",
		Title: "Performance of Task Demand Prediction: Effect of deltaT on DiDi",
		Run: func(s Scale) []*Table {
			return runPredictionFigure("fig6", workload.DiDi(), s)
		},
	})
	register(Experiment{
		ID:    "table2",
		Title: "Real datasets (synthetic stand-ins)",
		Run: func(s Scale) []*Table {
			t := &Table{
				ID:     "table2",
				Title:  "Dataset cardinalities (Table II)",
				Header: []string{"dataset", "workers", "tasks", "history_tasks", "window_s", "region_km"},
			}
			for _, cfg := range []workload.Config{workload.Yueche(), workload.DiDi()} {
				scn := workload.Generate(cfg.Scaled(s.withDefaults().Factor))
				t.Add(cfg.Name,
					fmt.Sprintf("%d", len(scn.Workers)),
					fmt.Sprintf("%d", len(scn.Tasks)),
					fmt.Sprintf("%d", len(scn.History)),
					fmt.Sprintf("%.0f", scn.T1-scn.T0),
					fmt.Sprintf("%.0fx%.0f", cfg.Region.Width(), cfg.Region.Height()),
				)
			}
			return []*Table{t}
		},
	})
}
