// Package geo provides the spatial substrate for the DATA-WA framework:
// planar points, Euclidean distances, a constant-speed travel model, and a
// uniform grid partition of the study area used by the task demand predictor.
//
// Units follow the paper: distances are kilometers, times are seconds.
package geo

import (
	"fmt"
	"math"
)

// Point is a location in the plane, in kilometers.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between a and b in kilometers.
func Dist(a, b Point) float64 {
	dx := a.X - b.X
	dy := a.Y - b.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Lerp returns the point a + t*(b-a). t is clamped to [0,1].
func Lerp(a, b Point, t float64) Point {
	if t <= 0 {
		return a
	}
	if t >= 1 {
		return b
	}
	return Point{X: a.X + t*(b.X-a.X), Y: a.Y + t*(b.Y-a.Y)}
}

// TravelModel converts distances to travel times. The paper does not fix a
// road model, so workers move in straight lines at constant Speed
// (kilometers per second). The zero value is unusable; use NewTravelModel.
type TravelModel struct {
	// Speed is the worker speed in km/s. DefaultSpeed corresponds to
	// 10 m/s (36 km/h), a typical urban driving speed.
	Speed float64
}

// DefaultSpeed is 10 m/s expressed in km/s.
const DefaultSpeed = 0.01

// NewTravelModel returns a travel model with the given speed in km/s.
// Non-positive speeds fall back to DefaultSpeed.
func NewTravelModel(speed float64) TravelModel {
	if speed <= 0 {
		speed = DefaultSpeed
	}
	return TravelModel{Speed: speed}
}

// Time returns the travel time c(a,b) in seconds.
func (m TravelModel) Time(a, b Point) float64 {
	return Dist(a, b) / m.Speed
}

// TimeForDist returns the travel time for a raw distance in kilometers.
func (m TravelModel) TimeForDist(d float64) float64 {
	return d / m.Speed
}

// Rect is an axis-aligned rectangle with Min ≤ Max on both axes.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Contains reports whether p lies inside r (inclusive of the lower edges,
// exclusive of the upper edges, so grid cells tile the region disjointly).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X < r.MaxX && p.Y >= r.MinY && p.Y < r.MaxY
}

// Center returns the midpoint of r.
func (r Rect) Center() Point {
	return Point{X: (r.MinX + r.MaxX) / 2, Y: (r.MinY + r.MaxY) / 2}
}

// Clamp returns the point of r closest to p.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.MinX), math.Nextafter(r.MaxX, r.MinX)),
		Y: math.Min(math.Max(p.Y, r.MinY), math.Nextafter(r.MaxY, r.MinY)),
	}
}

// Grid partitions a rectangular study area into Rows × Cols disjoint uniform
// cells, as in Section III of the paper ("partitioning the study area into
// disjoint and uniform grids"). Cells are indexed row-major in [0, Cells()).
type Grid struct {
	Region Rect
	Rows   int
	Cols   int
}

// NewGrid returns a grid over region with the given dimensions.
// It panics if rows or cols is not positive or the region is degenerate,
// since a malformed grid is a programming error, not a runtime condition.
func NewGrid(region Rect, rows, cols int) Grid {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("geo: invalid grid dimensions %dx%d", rows, cols))
	}
	if region.Width() <= 0 || region.Height() <= 0 {
		panic(fmt.Sprintf("geo: degenerate grid region %+v", region))
	}
	return Grid{Region: region, Rows: rows, Cols: cols}
}

// Cells returns the number of grid cells M.
func (g Grid) Cells() int { return g.Rows * g.Cols }

// CellOf returns the index of the cell containing p. Points outside the
// region are clamped to the nearest boundary cell, so every point maps to a
// valid cell; this mirrors how city traces snap off-map GPS fixes. The
// clamp happens in the float domain: a coordinate beyond int range — or NaN,
// which fails every ordered comparison — resolves to a boundary cell instead
// of feeding an implementation-defined float→int conversion.
func (g Grid) CellOf(p Point) int {
	cw := g.Region.Width() / float64(g.Cols)
	ch := g.Region.Height() / float64(g.Rows)
	clamp := func(v float64, n int) int {
		if !(v > 0) { // also catches NaN
			return 0
		}
		if v >= float64(n) {
			return n - 1
		}
		return int(v)
	}
	col := clamp((p.X-g.Region.MinX)/cw, g.Cols)
	row := clamp((p.Y-g.Region.MinY)/ch, g.Rows)
	return row*g.Cols + col
}

// CellRect returns the rectangle covered by cell i.
func (g Grid) CellRect(i int) Rect {
	row, col := i/g.Cols, i%g.Cols
	cw := g.Region.Width() / float64(g.Cols)
	ch := g.Region.Height() / float64(g.Rows)
	return Rect{
		MinX: g.Region.MinX + float64(col)*cw,
		MinY: g.Region.MinY + float64(row)*ch,
		MaxX: g.Region.MinX + float64(col+1)*cw,
		MaxY: g.Region.MinY + float64(row+1)*ch,
	}
}

// Center returns the center point of cell i.
func (g Grid) Center(i int) Point { return g.CellRect(i).Center() }

// Neighbors returns the 4-connected neighbor cell indices of cell i.
func (g Grid) Neighbors(i int) []int {
	row, col := i/g.Cols, i%g.Cols
	out := make([]int, 0, 4)
	if row > 0 {
		out = append(out, (row-1)*g.Cols+col)
	}
	if row < g.Rows-1 {
		out = append(out, (row+1)*g.Cols+col)
	}
	if col > 0 {
		out = append(out, row*g.Cols+col-1)
	}
	if col < g.Cols-1 {
		out = append(out, row*g.Cols+col+1)
	}
	return out
}
