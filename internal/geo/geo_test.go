package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	cases := []struct {
		a, b Point
		want float64
	}{
		{Point{0, 0}, Point{0, 0}, 0},
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{-1, -1}, Point{2, 3}, 5},
		{Point{1.5, 1.2}, Point{1.5, 1.2}, 0},
	}
	for _, c := range cases {
		if got := Dist(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Dist(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDistSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := Point{ax, ay}, Point{bx, by}
		return Dist(a, b) == Dist(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		// Keep coordinates bounded so float error stays tiny.
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1000)
		}
		a := Point{clamp(ax), clamp(ay)}
		b := Point{clamp(bx), clamp(by)}
		c := Point{clamp(cx), clamp(cy)}
		return Dist(a, c) <= Dist(a, b)+Dist(b, c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLerp(t *testing.T) {
	a, b := Point{0, 0}, Point{10, 20}
	if got := Lerp(a, b, 0); got != a {
		t.Errorf("Lerp t=0 = %v, want %v", got, a)
	}
	if got := Lerp(a, b, 1); got != b {
		t.Errorf("Lerp t=1 = %v, want %v", got, b)
	}
	if got := Lerp(a, b, 0.5); got != (Point{5, 10}) {
		t.Errorf("Lerp t=0.5 = %v", got)
	}
	if got := Lerp(a, b, -3); got != a {
		t.Errorf("Lerp clamps below: got %v", got)
	}
	if got := Lerp(a, b, 7); got != b {
		t.Errorf("Lerp clamps above: got %v", got)
	}
}

func TestTravelModel(t *testing.T) {
	m := NewTravelModel(0.01) // 10 m/s
	got := m.Time(Point{0, 0}, Point{0, 1})
	if math.Abs(got-100) > 1e-9 {
		t.Errorf("1 km at 10 m/s = %v s, want 100", got)
	}
	if d := m.TimeForDist(0.5); math.Abs(d-50) > 1e-9 {
		t.Errorf("TimeForDist(0.5) = %v, want 50", d)
	}
}

func TestNewTravelModelDefaults(t *testing.T) {
	for _, s := range []float64{0, -1} {
		m := NewTravelModel(s)
		if m.Speed != DefaultSpeed {
			t.Errorf("NewTravelModel(%v).Speed = %v, want default", s, m.Speed)
		}
	}
}

func TestRect(t *testing.T) {
	r := Rect{0, 0, 10, 4}
	if r.Width() != 10 || r.Height() != 4 {
		t.Fatalf("dims = %v x %v", r.Width(), r.Height())
	}
	if !r.Contains(Point{0, 0}) {
		t.Error("lower edge should be contained")
	}
	if r.Contains(Point{10, 2}) {
		t.Error("upper edge should be excluded")
	}
	if c := r.Center(); c != (Point{5, 2}) {
		t.Errorf("Center = %v", c)
	}
}

func TestRectClamp(t *testing.T) {
	r := Rect{0, 0, 10, 4}
	p := r.Clamp(Point{-5, 100})
	if !r.Contains(p) {
		t.Errorf("Clamp result %v not contained in %v", p, r)
	}
	inside := Point{3, 3}
	if got := r.Clamp(inside); got != inside {
		t.Errorf("Clamp of inside point moved it: %v", got)
	}
}

func TestGridRoundTrip(t *testing.T) {
	g := NewGrid(Rect{0, 0, 8, 6}, 3, 4)
	if g.Cells() != 12 {
		t.Fatalf("Cells = %d", g.Cells())
	}
	for i := 0; i < g.Cells(); i++ {
		c := g.Center(i)
		if got := g.CellOf(c); got != i {
			t.Errorf("CellOf(Center(%d)) = %d", i, got)
		}
		if !g.CellRect(i).Contains(c) {
			t.Errorf("cell %d does not contain its own center", i)
		}
	}
}

func TestGridRoundTripProperty(t *testing.T) {
	g := NewGrid(Rect{-2, -3, 5, 9}, 7, 5)
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
			return true
		}
		p := Point{math.Mod(x, 20), math.Mod(y, 20)}
		i := g.CellOf(p)
		if i < 0 || i >= g.Cells() {
			return false
		}
		// If the point is inside the region, its cell rect must contain it.
		if g.Region.Contains(p) {
			return g.CellRect(i).Contains(p)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGridCellsTileRegion(t *testing.T) {
	g := NewGrid(Rect{0, 0, 4, 4}, 4, 4)
	// Every sampled point in the region belongs to exactly one cell rect.
	for x := 0.05; x < 4; x += 0.31 {
		for y := 0.05; y < 4; y += 0.29 {
			p := Point{x, y}
			count := 0
			for i := 0; i < g.Cells(); i++ {
				if g.CellRect(i).Contains(p) {
					count++
				}
			}
			if count != 1 {
				t.Fatalf("point %v contained in %d cells", p, count)
			}
		}
	}
}

func TestGridClampsOutside(t *testing.T) {
	g := NewGrid(Rect{0, 0, 4, 4}, 2, 2)
	cases := []struct {
		p    Point
		want int
	}{
		{Point{-1, -1}, 0},
		{Point{100, -1}, 1},
		{Point{-1, 100}, 2},
		{Point{100, 100}, 3},
		// Magnitudes beyond int range and non-finite coordinates must clamp
		// in the float domain, never feed an implementation-defined
		// float→int conversion.
		{Point{1e308, -1e308}, 1},
		{Point{math.Inf(-1), math.Inf(1)}, 2},
		{Point{math.NaN(), math.NaN()}, 0},
	}
	for _, c := range cases {
		if got := g.CellOf(c.p); got != c.want {
			t.Errorf("CellOf(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestGridNeighbors(t *testing.T) {
	g := NewGrid(Rect{0, 0, 3, 3}, 3, 3)
	// Corner cell 0 has exactly 2 neighbors.
	if n := g.Neighbors(0); len(n) != 2 {
		t.Errorf("corner neighbors = %v", n)
	}
	// Center cell 4 has 4 neighbors.
	if n := g.Neighbors(4); len(n) != 4 {
		t.Errorf("center neighbors = %v", n)
	}
	// Neighborhood is symmetric.
	for i := 0; i < g.Cells(); i++ {
		for _, j := range g.Neighbors(i) {
			found := false
			for _, k := range g.Neighbors(j) {
				if k == i {
					found = true
				}
			}
			if !found {
				t.Errorf("asymmetric neighbors: %d->%d", i, j)
			}
		}
	}
}

func TestNewGridPanics(t *testing.T) {
	cases := []func(){
		func() { NewGrid(Rect{0, 0, 1, 1}, 0, 3) },
		func() { NewGrid(Rect{0, 0, 1, 1}, 3, 0) },
		func() { NewGrid(Rect{0, 0, 0, 1}, 3, 3) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}
