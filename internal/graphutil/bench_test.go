package graphutil

import (
	"math/rand"
	"testing"
)

func benchGraph(n int, p float64) *Graph {
	r := rand.New(rand.NewSource(11))
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// BenchmarkFillIn measures chordal completion via the elimination game on a
// component-sized dependency graph.
func BenchmarkFillIn(b *testing.B) {
	g := benchGraph(40, 0.15)
	vs := make([]int, 40)
	for i := range vs {
		vs[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.FillIn(vs)
	}
}

// BenchmarkMaximalCliques measures clique extraction from the chordal
// completion.
func BenchmarkMaximalCliques(b *testing.B) {
	g := benchGraph(40, 0.15)
	vs := make([]int, 40)
	for i := range vs {
		vs[i] = i
	}
	h, peo := g.FillIn(vs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaximalCliquesChordal(h, peo)
	}
}

// BenchmarkComponents measures connected-component extraction.
func BenchmarkComponents(b *testing.B) {
	g := benchGraph(200, 0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Components(nil)
	}
}
