// Package graphutil provides the undirected-graph algorithms behind Worker
// Dependency Separation (Section IV-A): connected components, Maximum
// Cardinality Search (Tarjan & Yannakakis 1984), chordal completion via the
// elimination game, maximal cliques of chordal graphs, and a chordality
// test. Vertices are dense ints in [0, N).
package graphutil

import (
	"fmt"
	"sort"
)

// Graph is a simple undirected graph with a fixed vertex count.
type Graph struct {
	n   int
	adj []map[int]struct{}
}

// New returns an empty graph on n vertices. Adjacency sets are allocated
// lazily on first edge insertion, so a graph over many vertices with edges
// confined to a small subset (the per-component chordal completions of the
// RTC construction) costs memory proportional to its edges, not to n.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graphutil: negative vertex count %d", n))
	}
	return &Graph{n: n, adj: make([]map[int]struct{}, n)}
}

// N returns the vertex count.
func (g *Graph) N() int { return g.n }

// Reset reinitializes g to an empty graph on n vertices, reusing the
// adjacency storage of earlier generations — the zero-steady-state-allocation
// path for callers that rebuild a graph every planning instant. The zero
// Graph value is valid input.
func (g *Graph) Reset(n int) {
	if n < 0 {
		panic(fmt.Sprintf("graphutil: negative vertex count %d", n))
	}
	g.n = n
	if cap(g.adj) < n {
		g.adj = make([]map[int]struct{}, n)
		return
	}
	// Clearing after the reslice also covers maps re-exposed by growing back
	// within capacity, which may hold edges from an older, larger graph.
	g.adj = g.adj[:n]
	for _, a := range g.adj {
		clear(a)
	}
}

// EachNeighbor calls f for every neighbor of v, in unspecified order. It is
// the allocation-free alternative to Neighbors for callers that sort or
// aggregate on their own.
func (g *Graph) EachNeighbor(v int, f func(u int)) {
	g.check(v)
	for u := range g.adj[v] {
		f(u)
	}
}

// AddEdge inserts the undirected edge {u, v}; self-loops are ignored.
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		return
	}
	g.check(u)
	g.check(v)
	if g.adj[u] == nil {
		g.adj[u] = make(map[int]struct{})
	}
	if g.adj[v] == nil {
		g.adj[v] = make(map[int]struct{})
	}
	g.adj[u][v] = struct{}{}
	g.adj[v][u] = struct{}{}
}

func (g *Graph) check(v int) {
	if v < 0 || v >= g.n {
		panic(fmt.Sprintf("graphutil: vertex %d out of range [0,%d)", v, g.n))
	}
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	_, ok := g.adj[u][v]
	return ok
}

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int) int {
	g.check(v)
	return len(g.adj[v])
}

// Edges returns the number of undirected edges.
func (g *Graph) Edges() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// Neighbors returns the sorted neighbor list of v.
func (g *Graph) Neighbors(v int) []int {
	g.check(v)
	out := make([]int, 0, len(g.adj[v]))
	for u := range g.adj[v] {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	out := New(g.n)
	for v, a := range g.adj {
		for u := range a {
			if u > v {
				out.AddEdge(v, u)
			}
		}
	}
	return out
}

// Components returns the connected components over the vertices for which
// include(v) is true (all vertices when include is nil). Each component is
// sorted ascending and components are ordered by their smallest vertex.
func (g *Graph) Components(include func(int) bool) [][]int {
	in := func(v int) bool { return include == nil || include(v) }
	seen := make([]bool, g.n)
	var comps [][]int
	for s := 0; s < g.n; s++ {
		if seen[s] || !in(s) {
			continue
		}
		var comp []int
		queue := []int{s}
		seen[s] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			comp = append(comp, v)
			for u := range g.adj[v] {
				if !seen[u] && in(u) {
					seen[u] = true
					queue = append(queue, u)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	return comps
}

// ComponentsOf returns the connected components of the subgraph induced by
// vertices, further restricted to those for which include(v) is true when
// include is non-nil. The output format and ordering match Components —
// each component ascending, components ordered by smallest vertex — but the
// cost is proportional to the subset and its edges, never to the full
// vertex range. (The RTC construction in internal/wds needs this query so
// often that it inlines a CSR-specialized equivalent with reused scratch;
// this method is the general-purpose form of the same contract.)
func (g *Graph) ComponentsOf(vertices []int, include func(int) bool) [][]int {
	// Dense scratch beats maps here: the BFS probes in/seen once per edge,
	// and the clique-selection loop of the RTC construction calls this many
	// times per component.
	in := make([]bool, g.n)
	seen := make([]bool, g.n)
	seeds := make([]int, 0, len(vertices))
	for _, v := range vertices {
		g.check(v)
		if include == nil || include(v) {
			in[v] = true
			seeds = append(seeds, v)
		}
	}
	sort.Ints(seeds)
	var comps [][]int
	for _, s := range seeds {
		if seen[s] {
			continue
		}
		var comp []int
		queue := []int{s}
		seen[s] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			comp = append(comp, v)
			for u := range g.adj[v] {
				if in[u] && !seen[u] {
					seen[u] = true
					queue = append(queue, u)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	// Seeds ascend, so components already come out ordered by smallest
	// vertex, matching Components.
	return comps
}

// MCS runs Maximum Cardinality Search over the given vertex subset and
// returns the visit order (first visited first). Ties break toward the
// smallest vertex id, so the result is deterministic. The *reverse* of the
// visit order is a perfect elimination ordering when the induced subgraph
// is chordal.
func (g *Graph) MCS(vertices []int) []int {
	in := make(map[int]bool, len(vertices))
	for _, v := range vertices {
		g.check(v)
		in[v] = true
	}
	weight := make(map[int]int, len(vertices))
	visited := make(map[int]bool, len(vertices))
	order := make([]int, 0, len(vertices))
	// Deterministic: scan ascending ids. The sorted id list is loop
	// invariant, so it is built once, not per selection round.
	sorted := make([]int, 0, len(in))
	for v := range in {
		sorted = append(sorted, v)
	}
	sort.Ints(sorted)
	for len(order) < len(in) {
		best, bestW := -1, -1
		for _, v := range sorted {
			if visited[v] {
				continue
			}
			if weight[v] > bestW {
				best, bestW = v, weight[v]
			}
		}
		visited[best] = true
		order = append(order, best)
		for u := range g.adj[best] {
			if in[u] && !visited[u] {
				weight[u]++
			}
		}
	}
	return order
}

// FillIn runs the elimination game on the subgraph induced by vertices,
// using the reverse MCS visit order as the elimination order. It returns
// the chordal completion H (on the same vertex ids, containing only edges
// among the subset plus fill edges) and the perfect elimination ordering of
// H (first eliminated first).
func (g *Graph) FillIn(vertices []int) (*Graph, []int) {
	order := g.MCS(vertices)
	// Eliminate in reverse visit order.
	peo := make([]int, len(order))
	for i, v := range order {
		peo[len(order)-1-i] = v
	}
	pos := make(map[int]int, len(peo))
	for i, v := range peo {
		pos[v] = i
	}
	h := New(g.n)
	in := make(map[int]bool, len(vertices))
	for _, v := range vertices {
		in[v] = true
	}
	for v, a := range g.adj {
		if !in[v] {
			continue
		}
		for u := range a {
			if in[u] && u > v {
				h.AddEdge(v, u)
			}
		}
	}
	for _, v := range peo {
		// Later neighbors of v (not yet eliminated) must form a clique.
		later := make([]int, 0, len(h.adj[v]))
		for u := range h.adj[v] {
			if pos[u] > pos[v] {
				later = append(later, u)
			}
		}
		for i := 0; i < len(later); i++ {
			for j := i + 1; j < len(later); j++ {
				h.AddEdge(later[i], later[j])
			}
		}
	}
	return h, peo
}

// MaximalCliquesChordal returns the maximal cliques of a chordal graph h
// restricted to the vertices of the given perfect elimination ordering.
// Each candidate clique is {v} ∪ {later neighbors of v}; non-maximal
// candidates are filtered out. Cliques are sorted internally and ordered by
// their smallest vertex for determinism.
func MaximalCliquesChordal(h *Graph, peo []int) [][]int {
	pos := make(map[int]int, len(peo))
	for i, v := range peo {
		pos[v] = i
	}
	var cands [][]int
	for _, v := range peo {
		c := []int{v}
		for u := range h.adj[v] {
			if p, ok := pos[u]; ok && p > pos[v] {
				c = append(c, u)
			}
		}
		sort.Ints(c)
		cands = append(cands, c)
	}
	// Filter cliques contained in another candidate.
	var out [][]int
	for i, c := range cands {
		maximal := true
		for j, d := range cands {
			if i == j || len(c) > len(d) {
				continue
			}
			if len(c) == len(d) && i < j {
				continue // keep the first of duplicates
			}
			if subset(c, d) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// subset reports whether sorted slice a ⊆ sorted slice b.
func subset(a, b []int) bool {
	i := 0
	for _, x := range a {
		for i < len(b) && b[i] < x {
			i++
		}
		if i >= len(b) || b[i] != x {
			return false
		}
		i++
	}
	return true
}

// IsClique reports whether the given vertices are pairwise adjacent in g.
func (g *Graph) IsClique(vs []int) bool {
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			if !g.HasEdge(vs[i], vs[j]) {
				return false
			}
		}
	}
	return true
}

// IsChordal reports whether the subgraph induced by vertices is chordal, by
// checking the perfect-elimination property of the reverse MCS order.
func (g *Graph) IsChordal(vertices []int) bool {
	order := g.MCS(vertices)
	in := make(map[int]bool, len(vertices))
	for _, v := range vertices {
		in[v] = true
	}
	pos := make(map[int]int, len(order))
	for i, v := range order {
		pos[v] = i
	}
	// Reverse visit order is the elimination order; equivalently, for each
	// v, its already-visited neighbors at visit time must... the standard
	// check: for elimination order σ = reverse(order), later neighbors of
	// each vertex must form a clique.
	for _, v := range order {
		var earlier []int // visited before v ⇒ eliminated after v
		for u := range g.adj[v] {
			if in[u] && pos[u] < pos[v] {
				earlier = append(earlier, u)
			}
		}
		// v's earlier-visited neighbors: the one visited last, say w, must
		// be adjacent to all others (the classic MCS chordality test).
		if len(earlier) <= 1 {
			continue
		}
		w := earlier[0]
		for _, u := range earlier[1:] {
			if pos[u] > pos[w] {
				w = u
			}
		}
		for _, u := range earlier {
			if u != w && !g.HasEdge(u, w) {
				return false
			}
		}
	}
	return true
}
