package graphutil

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func allVertices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// randomGraph builds a deterministic Erdős–Rényi graph.
func randomGraph(n int, p float64, seed int64) *Graph {
	r := rand.New(rand.NewSource(seed))
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

func TestBasicOps(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(1, 1) // self loop ignored
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge should be symmetric")
	}
	if g.HasEdge(0, 2) {
		t.Error("absent edge reported")
	}
	if g.HasEdge(1, 1) {
		t.Error("self loop should be ignored")
	}
	if g.Degree(1) != 2 {
		t.Errorf("Degree(1) = %d", g.Degree(1))
	}
	if g.Edges() != 2 {
		t.Errorf("Edges = %d", g.Edges())
	}
	want := []int{0, 2}
	got := g.Neighbors(1)
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Neighbors(1) = %v", got)
	}
}

func TestClone(t *testing.T) {
	g := randomGraph(6, 0.5, 1)
	c := g.Clone()
	c.AddEdge(0, 5)
	g2 := randomGraph(6, 0.5, 1)
	if g.Edges() != g2.Edges() {
		t.Error("Clone mutated the original")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	g := New(2)
	for i, f := range []func(){
		func() { g.AddEdge(0, 2) },
		func() { g.HasEdge(-1, 0) },
		func() { g.Degree(5) },
		func() { New(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestComponents(t *testing.T) {
	g := New(7)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	// 5, 6 isolated
	comps := g.Components(nil)
	if len(comps) != 4 {
		t.Fatalf("components = %v", comps)
	}
	if len(comps[0]) != 3 || comps[0][0] != 0 {
		t.Errorf("first component = %v", comps[0])
	}
	// Excluding vertex 1 splits the first component.
	comps = g.Components(func(v int) bool { return v != 1 })
	if len(comps) != 5 {
		t.Fatalf("components excluding 1 = %v", comps)
	}
}

func TestComponentsPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(12, 0.2, seed)
		comps := g.Components(nil)
		seen := make(map[int]int)
		for _, c := range comps {
			for _, v := range c {
				seen[v]++
			}
		}
		if len(seen) != 12 {
			return false
		}
		for _, cnt := range seen {
			if cnt != 1 {
				return false
			}
		}
		// No edges between different components.
		compOf := make(map[int]int)
		for i, c := range comps {
			for _, v := range c {
				compOf[v] = i
			}
		}
		for v := 0; v < 12; v++ {
			for _, u := range g.Neighbors(v) {
				if compOf[u] != compOf[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMCSVisitsAll(t *testing.T) {
	g := randomGraph(10, 0.3, 3)
	order := g.MCS(allVertices(10))
	if len(order) != 10 {
		t.Fatalf("MCS visited %d vertices", len(order))
	}
	seen := make(map[int]bool)
	for _, v := range order {
		if seen[v] {
			t.Fatal("MCS visited a vertex twice")
		}
		seen[v] = true
	}
}

func TestMCSDeterministic(t *testing.T) {
	g := randomGraph(15, 0.3, 4)
	a := g.MCS(allVertices(15))
	b := g.MCS(allVertices(15))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("MCS order not deterministic")
		}
	}
}

func TestMCSSubset(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	order := g.MCS([]int{2, 3, 4})
	if len(order) != 3 {
		t.Fatalf("subset MCS = %v", order)
	}
	for _, v := range order {
		if v != 2 && v != 3 && v != 4 {
			t.Fatalf("MCS left the subset: %v", order)
		}
	}
}

func TestIsChordalKnownGraphs(t *testing.T) {
	// Triangle: chordal.
	tri := New(3)
	tri.AddEdge(0, 1)
	tri.AddEdge(1, 2)
	tri.AddEdge(0, 2)
	if !tri.IsChordal(allVertices(3)) {
		t.Error("triangle should be chordal")
	}
	// C4: not chordal.
	c4 := New(4)
	c4.AddEdge(0, 1)
	c4.AddEdge(1, 2)
	c4.AddEdge(2, 3)
	c4.AddEdge(3, 0)
	if c4.IsChordal(allVertices(4)) {
		t.Error("4-cycle should not be chordal")
	}
	// C4 plus a chord: chordal.
	c4.AddEdge(0, 2)
	if !c4.IsChordal(allVertices(4)) {
		t.Error("4-cycle with chord should be chordal")
	}
	// Tree: chordal.
	tree := New(5)
	tree.AddEdge(0, 1)
	tree.AddEdge(0, 2)
	tree.AddEdge(2, 3)
	tree.AddEdge(2, 4)
	if !tree.IsChordal(allVertices(5)) {
		t.Error("tree should be chordal")
	}
	// Empty graph: chordal.
	if !New(4).IsChordal(allVertices(4)) {
		t.Error("empty graph should be chordal")
	}
}

func TestFillInProducesChordal(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(10, 0.25, seed)
		h, peo := g.FillIn(allVertices(10))
		if len(peo) != 10 {
			return false
		}
		// Fill-in is a supergraph of g.
		for v := 0; v < 10; v++ {
			for _, u := range g.Neighbors(v) {
				if !h.HasEdge(v, u) {
					return false
				}
			}
		}
		return h.IsChordal(allVertices(10))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFillInChordalInputUnchanged(t *testing.T) {
	// A chordal input needs no fill edges.
	tri := New(4)
	tri.AddEdge(0, 1)
	tri.AddEdge(1, 2)
	tri.AddEdge(0, 2)
	tri.AddEdge(2, 3)
	h, _ := tri.FillIn(allVertices(4))
	if h.Edges() != tri.Edges() {
		t.Errorf("chordal graph gained fill edges: %d -> %d", tri.Edges(), h.Edges())
	}
}

func TestFillInC4AddsOneChord(t *testing.T) {
	c4 := New(4)
	c4.AddEdge(0, 1)
	c4.AddEdge(1, 2)
	c4.AddEdge(2, 3)
	c4.AddEdge(3, 0)
	h, _ := c4.FillIn(allVertices(4))
	if h.Edges() != 5 {
		t.Errorf("C4 fill-in has %d edges, want 5", h.Edges())
	}
	if !h.IsChordal(allVertices(4)) {
		t.Error("filled C4 should be chordal")
	}
}

func TestFillInSubsetOnly(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(4, 5)
	h, peo := g.FillIn([]int{0, 1, 2})
	if len(peo) != 3 {
		t.Fatalf("peo = %v", peo)
	}
	if h.HasEdge(4, 5) {
		t.Error("fill-in must only contain subset edges")
	}
}

func TestMaximalCliquesChordalTriangle(t *testing.T) {
	tri := New(4)
	tri.AddEdge(0, 1)
	tri.AddEdge(1, 2)
	tri.AddEdge(0, 2)
	tri.AddEdge(2, 3)
	h, peo := tri.FillIn(allVertices(4))
	cliques := MaximalCliquesChordal(h, peo)
	if len(cliques) != 2 {
		t.Fatalf("cliques = %v", cliques)
	}
	// Expect {0,1,2} and {2,3}.
	found3 := false
	found2 := false
	for _, c := range cliques {
		if len(c) == 3 && c[0] == 0 && c[1] == 1 && c[2] == 2 {
			found3 = true
		}
		if len(c) == 2 && c[0] == 2 && c[1] == 3 {
			found2 = true
		}
	}
	if !found3 || !found2 {
		t.Errorf("cliques = %v", cliques)
	}
}

func TestMaximalCliquesProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(9, 0.3, seed)
		h, peo := g.FillIn(allVertices(9))
		cliques := MaximalCliquesChordal(h, peo)
		// Every clique is a clique of h.
		for _, c := range cliques {
			if !h.IsClique(c) {
				return false
			}
		}
		// Cliques cover all vertices.
		covered := make(map[int]bool)
		for _, c := range cliques {
			for _, v := range c {
				covered[v] = true
			}
		}
		if len(covered) != 9 {
			return false
		}
		// No clique is a subset of another.
		for i, a := range cliques {
			for j, b := range cliques {
				if i != j && subset(a, b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestIsClique(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	if !g.IsClique([]int{0, 1, 2}) {
		t.Error("triangle is a clique")
	}
	if g.IsClique([]int{0, 1, 3}) {
		t.Error("non-adjacent vertices are not a clique")
	}
	if !g.IsClique([]int{2}) || !g.IsClique(nil) {
		t.Error("singletons and the empty set are cliques")
	}
}

func TestSubset(t *testing.T) {
	cases := []struct {
		a, b []int
		want bool
	}{
		{nil, []int{1, 2}, true},
		{[]int{1}, []int{1, 2}, true},
		{[]int{1, 2}, []int{1, 2}, true},
		{[]int{1, 3}, []int{1, 2}, false},
		{[]int{1, 2, 3}, []int{1, 2}, false},
		{[]int{5}, nil, false},
	}
	for _, c := range cases {
		if got := subset(c.a, c.b); got != c.want {
			t.Errorf("subset(%v,%v) = %v", c.a, c.b, got)
		}
	}
}

func TestCliquesSortedDeterministic(t *testing.T) {
	g := randomGraph(8, 0.4, 7)
	h, peo := g.FillIn(allVertices(8))
	a := MaximalCliquesChordal(h, peo)
	b := MaximalCliquesChordal(h, peo)
	if len(a) != len(b) {
		t.Fatal("nondeterministic clique count")
	}
	for i := range a {
		if !sort.IntsAreSorted(a[i]) {
			t.Error("clique not sorted")
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("nondeterministic cliques")
			}
		}
	}
}

func TestComponentsOfMatchesComponents(t *testing.T) {
	g := New(10)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	g.AddEdge(5, 6)
	g.AddEdge(6, 7)
	g.AddEdge(7, 5)

	all := make([]int, 10)
	for i := range all {
		all[i] = i
	}
	filter := func(v int) bool { return v != 1 && v != 6 }
	want := g.Components(filter)
	got := g.ComponentsOf(all, filter)
	if len(got) != len(want) {
		t.Fatalf("ComponentsOf found %d components, Components found %d", len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("component %d size differs: %v vs %v", i, got[i], want[i])
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("component %d: %v vs %v", i, got[i], want[i])
			}
		}
	}
	// Restricted to a subset: vertices outside are invisible.
	sub := g.ComponentsOf([]int{0, 1, 5, 7}, nil)
	if len(sub) != 2 {
		t.Fatalf("subset components = %v, want {0,1} and {5,7}", sub)
	}
	if sub[0][0] != 0 || sub[0][1] != 1 || sub[1][0] != 5 || sub[1][1] != 7 {
		t.Fatalf("subset components = %v", sub)
	}
	if comps := g.ComponentsOf(nil, nil); len(comps) != 0 {
		t.Fatalf("empty subset gave %v", comps)
	}
}

func TestLazyAdjacency(t *testing.T) {
	// A graph whose edges touch few vertices must still answer queries for
	// the untouched ones.
	g := New(1000)
	g.AddEdge(2, 3)
	if g.Degree(999) != 0 || g.HasEdge(0, 1) {
		t.Fatal("untouched vertices must look isolated")
	}
	if len(g.Neighbors(500)) != 0 {
		t.Fatal("untouched vertex has neighbors")
	}
	if !g.HasEdge(2, 3) || g.Edges() != 1 {
		t.Fatal("edge lost")
	}
	c := g.Clone()
	if !c.HasEdge(2, 3) || c.Edges() != 1 {
		t.Fatal("clone lost the edge")
	}
}
