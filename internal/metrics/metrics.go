// Package metrics implements the evaluation metrics of Section V-B.1:
// precision, recall, and Average Precision computed by sweeping the decision
// threshold over [0,1] in steps of 0.01 and integrating the area under the
// precision–recall curve, exactly as the paper describes.
package metrics

import "sort"

// PR is one precision/recall point at a given threshold.
type PR struct {
	Threshold  float64
	Precision  float64
	Recall     float64
	TP, FP, FN int
}

// PrecisionRecall returns the precision and recall of binary predictions
// (score ≥ threshold ⇒ positive) against binary labels.
// Precision of zero predicted positives is defined as 1 (the conventional
// limit at the top of the PR curve).
func PrecisionRecall(scores []float64, labels []bool, threshold float64) PR {
	var tp, fp, fn int
	for i, s := range scores {
		pred := s >= threshold
		switch {
		case pred && labels[i]:
			tp++
		case pred && !labels[i]:
			fp++
		case !pred && labels[i]:
			fn++
		}
	}
	pr := PR{Threshold: threshold, TP: tp, FP: fp, FN: fn}
	if tp+fp == 0 {
		pr.Precision = 1
	} else {
		pr.Precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn == 0 {
		pr.Recall = 1 // no positives: every threshold recalls all of them
	} else {
		pr.Recall = float64(tp) / float64(tp+fn)
	}
	return pr
}

// Curve returns the PR curve sampled at thresholds 0, 0.01, …, 1.00
// (101 points), matching the paper's evaluation protocol.
func Curve(scores []float64, labels []bool) []PR {
	if len(scores) != len(labels) {
		panic("metrics: scores and labels length mismatch")
	}
	out := make([]PR, 0, 101)
	for i := 0; i <= 100; i++ {
		out = append(out, PrecisionRecall(scores, labels, float64(i)/100))
	}
	return out
}

// AveragePrecision integrates the area under the precision–recall curve
// produced by Curve, using the trapezoid rule over recall. The result is in
// [0, 1]; it returns 0 when there are no examples.
func AveragePrecision(scores []float64, labels []bool) float64 {
	if len(scores) == 0 {
		return 0
	}
	curve := Curve(scores, labels)
	// Order points by increasing recall for integration. Thresholds
	// increasing means recall non-increasing, so reverse suffices, but sort
	// defensively to tolerate ties.
	sort.Slice(curve, func(i, j int) bool { return curve[i].Recall < curve[j].Recall })
	ap := 0.0
	for i := 1; i < len(curve); i++ {
		dr := curve[i].Recall - curve[i-1].Recall
		ap += dr * (curve[i].Precision + curve[i-1].Precision) / 2
	}
	// Add the initial rectangle from recall 0 to the first point.
	ap += curve[0].Recall * curve[0].Precision
	if ap < 0 {
		ap = 0
	}
	if ap > 1 {
		ap = 1
	}
	return ap
}

// F1 returns the harmonic mean of precision and recall, 0 when both are 0.
func F1(p, r float64) float64 {
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy returns the fraction of thresholded predictions matching labels.
func Accuracy(scores []float64, labels []bool, threshold float64) float64 {
	if len(scores) == 0 {
		return 0
	}
	correct := 0
	for i, s := range scores {
		if (s >= threshold) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(scores))
}
