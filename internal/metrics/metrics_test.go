package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPrecisionRecallBasics(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.3, 0.1}
	labels := []bool{true, false, true, false}
	pr := PrecisionRecall(scores, labels, 0.5)
	// Predicted positive: 0.9 (TP), 0.8 (FP). Missed: 0.3 (FN).
	if pr.TP != 1 || pr.FP != 1 || pr.FN != 1 {
		t.Fatalf("TP/FP/FN = %d/%d/%d", pr.TP, pr.FP, pr.FN)
	}
	if pr.Precision != 0.5 {
		t.Errorf("precision = %v", pr.Precision)
	}
	if pr.Recall != 0.5 {
		t.Errorf("recall = %v", pr.Recall)
	}
}

func TestPrecisionNoPredictions(t *testing.T) {
	pr := PrecisionRecall([]float64{0.1, 0.2}, []bool{true, true}, 0.9)
	if pr.Precision != 1 {
		t.Errorf("precision with no predicted positives should be 1, got %v", pr.Precision)
	}
	if pr.Recall != 0 {
		t.Errorf("recall should be 0, got %v", pr.Recall)
	}
}

func TestRecallNoPositives(t *testing.T) {
	pr := PrecisionRecall([]float64{0.99}, []bool{false}, 0.5)
	if pr.Recall != 1 {
		t.Errorf("recall with no actual positives should be 1, got %v", pr.Recall)
	}
}

func TestCurveShape(t *testing.T) {
	scores := []float64{0.2, 0.6, 0.8}
	labels := []bool{false, true, true}
	c := Curve(scores, labels)
	if len(c) != 101 {
		t.Fatalf("curve has %d points, want 101", len(c))
	}
	if c[0].Threshold != 0 || c[100].Threshold != 1 {
		t.Error("thresholds should span [0,1]")
	}
	// Recall is non-increasing as threshold rises.
	for i := 1; i < len(c); i++ {
		if c[i].Recall > c[i-1].Recall+1e-12 {
			t.Fatalf("recall increased with threshold at %d", i)
		}
	}
}

func TestCurvePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	Curve([]float64{1}, []bool{true, false})
}

func TestAveragePrecisionPerfect(t *testing.T) {
	// Perfectly separated scores: AP should be ~1.
	scores := []float64{0.95, 0.9, 0.1, 0.05}
	labels := []bool{true, true, false, false}
	ap := AveragePrecision(scores, labels)
	if ap < 0.99 {
		t.Errorf("perfect classifier AP = %v, want ~1", ap)
	}
}

func TestAveragePrecisionInverted(t *testing.T) {
	// Anti-correlated scores should give low AP.
	scores := []float64{0.05, 0.1, 0.9, 0.95}
	labels := []bool{true, true, false, false}
	ap := AveragePrecision(scores, labels)
	if ap > 0.7 {
		t.Errorf("inverted classifier AP = %v, want low", ap)
	}
}

func TestAveragePrecisionRandomBaseline(t *testing.T) {
	// For random scores, AP approaches the positive prevalence.
	r := rand.New(rand.NewSource(1))
	n := 5000
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := 0; i < n; i++ {
		scores[i] = r.Float64()
		labels[i] = r.Float64() < 0.3
	}
	ap := AveragePrecision(scores, labels)
	if math.Abs(ap-0.3) > 0.08 {
		t.Errorf("random-scores AP = %v, want ≈ prevalence 0.3", ap)
	}
}

func TestAveragePrecisionEmpty(t *testing.T) {
	if got := AveragePrecision(nil, nil); got != 0 {
		t.Errorf("AP of empty = %v", got)
	}
}

func TestAveragePrecisionBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		scores := make([]float64, n)
		labels := make([]bool, n)
		for i := range scores {
			scores[i] = r.Float64()
			labels[i] = r.Intn(2) == 0
		}
		ap := AveragePrecision(scores, labels)
		return ap >= 0 && ap <= 1 && !math.IsNaN(ap)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAveragePrecisionMonotoneInQuality(t *testing.T) {
	// A sharper classifier should not score below a noisier one (on
	// average). Use matched label sets with different noise levels.
	r := rand.New(rand.NewSource(9))
	n := 2000
	labels := make([]bool, n)
	for i := range labels {
		labels[i] = r.Float64() < 0.4
	}
	mkScores := func(noise float64) []float64 {
		s := make([]float64, n)
		for i := range s {
			base := 0.2
			if labels[i] {
				base = 0.8
			}
			s[i] = base + noise*(r.Float64()-0.5)
		}
		return s
	}
	clean := AveragePrecision(mkScores(0.2), labels)
	noisy := AveragePrecision(mkScores(1.6), labels)
	if clean <= noisy {
		t.Errorf("clean AP %v should beat noisy AP %v", clean, noisy)
	}
}

func TestF1(t *testing.T) {
	if F1(0, 0) != 0 {
		t.Error("F1(0,0) should be 0")
	}
	if got := F1(1, 1); got != 1 {
		t.Errorf("F1(1,1) = %v", got)
	}
	if got := F1(0.5, 1); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("F1(0.5,1) = %v", got)
	}
}

func TestAccuracy(t *testing.T) {
	scores := []float64{0.9, 0.2, 0.7, 0.1}
	labels := []bool{true, false, false, true}
	if got := Accuracy(scores, labels, 0.5); got != 0.5 {
		t.Errorf("accuracy = %v", got)
	}
	if Accuracy(nil, nil, 0.5) != 0 {
		t.Error("accuracy of empty should be 0")
	}
}
