// Package nn is a small reverse-mode automatic differentiation engine and a
// set of neural-network building blocks (linear layers, gated dilated causal
// convolutions, an LSTM cell, Adam) sufficient to train the three task-demand
// predictors of the DATA-WA paper — LSTM, Graph-WaveNet and DDGNN — in pure
// Go on a CPU.
//
// Values are matrices (internal/tensor). Each operation returns a new *Node
// recording its inputs and a backward closure; Backward(root) topologically
// sorts the graph and accumulates gradients into every node that requires
// them. All computation is deterministic given seeded parameters.
package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Node is one vertex of the computation graph.
type Node struct {
	// Val holds the forward value.
	Val *tensor.Matrix
	// Grad holds ∂loss/∂Val after Backward; nil until first accumulation.
	Grad *tensor.Matrix

	prev         []*Node
	back         func()
	requiresGrad bool
}

// Leaf wraps a constant matrix that does not require gradients.
func Leaf(m *tensor.Matrix) *Node { return &Node{Val: m} }

// Variable wraps a matrix that accumulates gradients (a trainable parameter).
func Variable(m *tensor.Matrix) *Node { return &Node{Val: m, requiresGrad: true} }

// RequiresGrad reports whether this node is a trainable leaf.
func (n *Node) RequiresGrad() bool { return n.requiresGrad }

// grad returns the gradient buffer, allocating it on first use.
func (n *Node) grad() *tensor.Matrix {
	if n.Grad == nil {
		n.Grad = tensor.New(n.Val.Rows, n.Val.Cols)
	}
	return n.Grad
}

// needsBackward reports whether gradients must flow into n.
func (n *Node) needsBackward() bool { return n.requiresGrad || n.back != nil }

// Backward runs reverse-mode differentiation from root, which must be a
// 1×1 scalar (a loss). It seeds ∂root/∂root = 1 and propagates.
func Backward(root *Node) {
	if root.Val.Rows != 1 || root.Val.Cols != 1 {
		panic(fmt.Sprintf("nn: Backward root must be scalar, got %dx%d", root.Val.Rows, root.Val.Cols))
	}
	// Topological order via iterative post-order DFS.
	var topo []*Node
	visited := make(map[*Node]bool)
	type frame struct {
		n *Node
		i int
	}
	stack := []frame{{root, 0}}
	visited[root] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.i < len(f.n.prev) {
			child := f.n.prev[f.i]
			f.i++
			if !visited[child] {
				visited[child] = true
				stack = append(stack, frame{child, 0})
			}
			continue
		}
		topo = append(topo, f.n)
		stack = stack[:len(stack)-1]
	}
	root.grad().Data[0] = 1
	for i := len(topo) - 1; i >= 0; i-- {
		if topo[i].back != nil && topo[i].Grad != nil {
			topo[i].back()
		}
	}
}

// ---------------------------------------------------------------------------
// Primitive operations
// ---------------------------------------------------------------------------

// MatMul returns a·b.
func MatMul(a, b *Node) *Node {
	out := &Node{Val: tensor.MatMul(a.Val, b.Val), prev: []*Node{a, b}}
	out.back = func() {
		if a.needsBackward() {
			tensor.MatMulAccum(a.grad(), out.Grad, tensor.Transpose(b.Val))
		}
		if b.needsBackward() {
			tensor.MatMulAccum(b.grad(), tensor.Transpose(a.Val), out.Grad)
		}
	}
	return out
}

// Transpose returns aᵀ.
func Transpose(a *Node) *Node {
	out := &Node{Val: tensor.Transpose(a.Val), prev: []*Node{a}}
	out.back = func() {
		if a.needsBackward() {
			tensor.AddInPlace(a.grad(), tensor.Transpose(out.Grad))
		}
	}
	return out
}

// Add returns a + b (same shape).
func Add(a, b *Node) *Node {
	out := &Node{Val: tensor.Add(a.Val, b.Val), prev: []*Node{a, b}}
	out.back = func() {
		if a.needsBackward() {
			tensor.AddInPlace(a.grad(), out.Grad)
		}
		if b.needsBackward() {
			tensor.AddInPlace(b.grad(), out.Grad)
		}
	}
	return out
}

// Sub returns a − b.
func Sub(a, b *Node) *Node {
	out := &Node{Val: tensor.Sub(a.Val, b.Val), prev: []*Node{a, b}}
	out.back = func() {
		if a.needsBackward() {
			tensor.AddInPlace(a.grad(), out.Grad)
		}
		if b.needsBackward() {
			tensor.AddInPlace(b.grad(), tensor.Scale(out.Grad, -1))
		}
	}
	return out
}

// Mul returns the element-wise product a ⊙ b.
func Mul(a, b *Node) *Node {
	out := &Node{Val: tensor.Hadamard(a.Val, b.Val), prev: []*Node{a, b}}
	out.back = func() {
		if a.needsBackward() {
			tensor.AddInPlace(a.grad(), tensor.Hadamard(out.Grad, b.Val))
		}
		if b.needsBackward() {
			tensor.AddInPlace(b.grad(), tensor.Hadamard(out.Grad, a.Val))
		}
	}
	return out
}

// Scale returns k·a for a constant k.
func Scale(a *Node, k float64) *Node {
	out := &Node{Val: tensor.Scale(a.Val, k), prev: []*Node{a}}
	out.back = func() {
		if a.needsBackward() {
			tensor.AddInPlace(a.grad(), tensor.Scale(out.Grad, k))
		}
	}
	return out
}

// AddConst returns a + k element-wise for a constant k.
func AddConst(a *Node, k float64) *Node {
	out := &Node{Val: tensor.Apply(a.Val, func(v float64) float64 { return v + k }), prev: []*Node{a}}
	out.back = func() {
		if a.needsBackward() {
			tensor.AddInPlace(a.grad(), out.Grad)
		}
	}
	return out
}

// AddBias returns a + bias, broadcasting the 1×Cols bias over rows.
func AddBias(a, bias *Node) *Node {
	out := &Node{Val: tensor.AddRowVector(a.Val, bias.Val), prev: []*Node{a, bias}}
	out.back = func() {
		if a.needsBackward() {
			tensor.AddInPlace(a.grad(), out.Grad)
		}
		if bias.needsBackward() {
			g := bias.grad()
			for i := 0; i < out.Grad.Rows; i++ {
				for j := 0; j < out.Grad.Cols; j++ {
					g.Data[j] += out.Grad.At(i, j)
				}
			}
		}
	}
	return out
}

// Tanh returns tanh(a) element-wise.
func Tanh(a *Node) *Node {
	val := tensor.Apply(a.Val, math.Tanh)
	out := &Node{Val: val, prev: []*Node{a}}
	out.back = func() {
		if a.needsBackward() {
			g := a.grad()
			for i := range g.Data {
				t := val.Data[i]
				g.Data[i] += out.Grad.Data[i] * (1 - t*t)
			}
		}
	}
	return out
}

// Sigmoid returns σ(a) element-wise.
func Sigmoid(a *Node) *Node {
	val := tensor.Apply(a.Val, func(v float64) float64 { return 1 / (1 + math.Exp(-v)) })
	out := &Node{Val: val, prev: []*Node{a}}
	out.back = func() {
		if a.needsBackward() {
			g := a.grad()
			for i := range g.Data {
				s := val.Data[i]
				g.Data[i] += out.Grad.Data[i] * s * (1 - s)
			}
		}
	}
	return out
}

// ReLU returns max(a, 0) element-wise.
func ReLU(a *Node) *Node {
	val := tensor.Apply(a.Val, func(v float64) float64 {
		if v > 0 {
			return v
		}
		return 0
	})
	out := &Node{Val: val, prev: []*Node{a}}
	out.back = func() {
		if a.needsBackward() {
			g := a.grad()
			for i := range g.Data {
				if a.Val.Data[i] > 0 {
					g.Data[i] += out.Grad.Data[i]
				}
			}
		}
	}
	return out
}

// PowElem returns a^p element-wise. Inputs must be positive where p is
// fractional; callers guarantee this (used for degree^{-1/2}).
func PowElem(a *Node, p float64) *Node {
	val := tensor.Apply(a.Val, func(v float64) float64 { return math.Pow(v, p) })
	out := &Node{Val: val, prev: []*Node{a}}
	out.back = func() {
		if a.needsBackward() {
			g := a.grad()
			for i := range g.Data {
				g.Data[i] += out.Grad.Data[i] * p * math.Pow(a.Val.Data[i], p-1)
			}
		}
	}
	return out
}

// RowSum returns the n×1 vector of row sums of the n×m input.
func RowSum(a *Node) *Node {
	val := tensor.New(a.Val.Rows, 1)
	for i := 0; i < a.Val.Rows; i++ {
		s := 0.0
		for j := 0; j < a.Val.Cols; j++ {
			s += a.Val.At(i, j)
		}
		val.Data[i] = s
	}
	out := &Node{Val: val, prev: []*Node{a}}
	out.back = func() {
		if a.needsBackward() {
			g := a.grad()
			for i := 0; i < a.Val.Rows; i++ {
				gi := out.Grad.Data[i]
				for j := 0; j < a.Val.Cols; j++ {
					g.Data[i*a.Val.Cols+j] += gi
				}
			}
		}
	}
	return out
}

// ScaleRows multiplies row i of the n×m matrix a by v_i (v is n×1):
// out_ij = a_ij · v_i.
func ScaleRows(a, v *Node) *Node {
	if v.Val.Cols != 1 || v.Val.Rows != a.Val.Rows {
		panic("nn: ScaleRows wants v of shape n x 1 matching a's rows")
	}
	val := tensor.New(a.Val.Rows, a.Val.Cols)
	for i := 0; i < a.Val.Rows; i++ {
		vi := v.Val.Data[i]
		for j := 0; j < a.Val.Cols; j++ {
			val.Data[i*a.Val.Cols+j] = a.Val.At(i, j) * vi
		}
	}
	out := &Node{Val: val, prev: []*Node{a, v}}
	out.back = func() {
		if a.needsBackward() {
			g := a.grad()
			for i := 0; i < a.Val.Rows; i++ {
				vi := v.Val.Data[i]
				for j := 0; j < a.Val.Cols; j++ {
					g.Data[i*a.Val.Cols+j] += out.Grad.At(i, j) * vi
				}
			}
		}
		if v.needsBackward() {
			g := v.grad()
			for i := 0; i < a.Val.Rows; i++ {
				s := 0.0
				for j := 0; j < a.Val.Cols; j++ {
					s += out.Grad.At(i, j) * a.Val.At(i, j)
				}
				g.Data[i] += s
			}
		}
	}
	return out
}

// ScaleCols multiplies column j of the n×m matrix a by v_j (v is 1×m):
// out_ij = a_ij · v_j.
func ScaleCols(a, v *Node) *Node {
	if v.Val.Rows != 1 || v.Val.Cols != a.Val.Cols {
		panic("nn: ScaleCols wants v of shape 1 x m matching a's cols")
	}
	val := tensor.New(a.Val.Rows, a.Val.Cols)
	for i := 0; i < a.Val.Rows; i++ {
		for j := 0; j < a.Val.Cols; j++ {
			val.Data[i*a.Val.Cols+j] = a.Val.At(i, j) * v.Val.Data[j]
		}
	}
	out := &Node{Val: val, prev: []*Node{a, v}}
	out.back = func() {
		if a.needsBackward() {
			g := a.grad()
			for i := 0; i < a.Val.Rows; i++ {
				for j := 0; j < a.Val.Cols; j++ {
					g.Data[i*a.Val.Cols+j] += out.Grad.At(i, j) * v.Val.Data[j]
				}
			}
		}
		if v.needsBackward() {
			g := v.grad()
			for j := 0; j < a.Val.Cols; j++ {
				s := 0.0
				for i := 0; i < a.Val.Rows; i++ {
					s += out.Grad.At(i, j) * a.Val.At(i, j)
				}
				g.Data[j] += s
			}
		}
	}
	return out
}

// SoftmaxRows returns the row-wise softmax of a.
func SoftmaxRows(a *Node) *Node {
	val := tensor.SoftmaxRows(a.Val)
	out := &Node{Val: val, prev: []*Node{a}}
	out.back = func() {
		if !a.needsBackward() {
			return
		}
		g := a.grad()
		for i := 0; i < val.Rows; i++ {
			dot := 0.0
			for j := 0; j < val.Cols; j++ {
				dot += out.Grad.At(i, j) * val.At(i, j)
			}
			for j := 0; j < val.Cols; j++ {
				s := val.At(i, j)
				g.Data[i*val.Cols+j] += s * (out.Grad.At(i, j) - dot)
			}
		}
	}
	return out
}

// MeanAll returns the scalar mean of all elements of a.
func MeanAll(a *Node) *Node {
	val := tensor.New(1, 1)
	val.Data[0] = tensor.Mean(a.Val)
	out := &Node{Val: val, prev: []*Node{a}}
	out.back = func() {
		if a.needsBackward() {
			g := a.grad()
			k := out.Grad.Data[0] / float64(len(a.Val.Data))
			for i := range g.Data {
				g.Data[i] += k
			}
		}
	}
	return out
}

// MSE returns the scalar mean squared error between pred and target.
// target gradients are not propagated.
func MSE(pred *Node, target *tensor.Matrix) *Node {
	diff := Sub(pred, Leaf(target))
	return MeanAll(Mul(diff, diff))
}

// BCE returns the scalar binary cross-entropy between probabilities pred
// (in (0,1); values are clamped to [eps, 1-eps]) and binary target.
func BCE(pred *Node, target *tensor.Matrix) *Node {
	const eps = 1e-7
	val := tensor.New(1, 1)
	n := float64(len(pred.Val.Data))
	clamped := make([]float64, len(pred.Val.Data))
	loss := 0.0
	for i, p := range pred.Val.Data {
		if p < eps {
			p = eps
		} else if p > 1-eps {
			p = 1 - eps
		}
		clamped[i] = p
		y := target.Data[i]
		loss += -(y*math.Log(p) + (1-y)*math.Log(1-p))
	}
	val.Data[0] = loss / n
	out := &Node{Val: val, prev: []*Node{pred}}
	out.back = func() {
		if !pred.needsBackward() {
			return
		}
		g := pred.grad()
		k := out.Grad.Data[0] / n
		for i := range g.Data {
			p := clamped[i]
			y := target.Data[i]
			g.Data[i] += k * (p - y) / (p * (1 - p))
		}
	}
	return out
}

// ConcatCols concatenates a (n×p) and b (n×q) into an n×(p+q) matrix.
func ConcatCols(a, b *Node) *Node {
	if a.Val.Rows != b.Val.Rows {
		panic("nn: ConcatCols row mismatch")
	}
	n, p, q := a.Val.Rows, a.Val.Cols, b.Val.Cols
	val := tensor.New(n, p+q)
	for i := 0; i < n; i++ {
		copy(val.Data[i*(p+q):i*(p+q)+p], a.Val.Data[i*p:(i+1)*p])
		copy(val.Data[i*(p+q)+p:(i+1)*(p+q)], b.Val.Data[i*q:(i+1)*q])
	}
	out := &Node{Val: val, prev: []*Node{a, b}}
	out.back = func() {
		if a.needsBackward() {
			g := a.grad()
			for i := 0; i < n; i++ {
				for j := 0; j < p; j++ {
					g.Data[i*p+j] += out.Grad.Data[i*(p+q)+j]
				}
			}
		}
		if b.needsBackward() {
			g := b.grad()
			for i := 0; i < n; i++ {
				for j := 0; j < q; j++ {
					g.Data[i*q+j] += out.Grad.Data[i*(p+q)+p+j]
				}
			}
		}
	}
	return out
}
