package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// numGrad numerically differentiates loss() with respect to every element of
// the given parameters and compares against the autodiff gradients.
func checkGrads(t *testing.T, params []*Node, loss func() *Node, tol float64) {
	t.Helper()
	// Autodiff pass.
	for _, p := range params {
		if p.Grad != nil {
			p.Grad.Zero()
		}
	}
	Backward(loss())
	const eps = 1e-5
	for pi, p := range params {
		for i := range p.Val.Data {
			orig := p.Val.Data[i]
			p.Val.Data[i] = orig + eps
			up := loss().Val.Data[0]
			p.Val.Data[i] = orig - eps
			down := loss().Val.Data[0]
			p.Val.Data[i] = orig
			want := (up - down) / (2 * eps)
			got := 0.0
			if p.Grad != nil {
				got = p.Grad.Data[i]
			}
			if math.Abs(got-want) > tol*(1+math.Abs(want)) {
				t.Errorf("param %d elem %d: autodiff %g vs numeric %g", pi, i, got, want)
			}
		}
	}
}

func TestGradMatMulAddBias(t *testing.T) {
	p := NewParams(1)
	w := p.Xavier(3, 2)
	b := p.Zeros(1, 2)
	x := Leaf(tensor.Randn(4, 3, 1, rand.New(rand.NewSource(2))))
	target := tensor.Randn(4, 2, 1, rand.New(rand.NewSource(3)))
	loss := func() *Node { return MSE(AddBias(MatMul(x, w), b), target) }
	checkGrads(t, p.All(), loss, 1e-6)
}

func TestGradActivations(t *testing.T) {
	for name, act := range map[string]func(*Node) *Node{
		"tanh":    Tanh,
		"sigmoid": Sigmoid,
		"relu":    ReLU,
	} {
		p := NewParams(7)
		w := p.Matrix(3, 3, 0.8)
		x := Leaf(tensor.Randn(2, 3, 1, rand.New(rand.NewSource(5))))
		target := tensor.Randn(2, 3, 1, rand.New(rand.NewSource(6)))
		loss := func() *Node { return MSE(act(MatMul(x, w)), target) }
		t.Run(name, func(t *testing.T) { checkGrads(t, p.All(), loss, 1e-5) })
	}
}

func TestGradMulSubScaleAddConst(t *testing.T) {
	p := NewParams(11)
	a := p.Matrix(2, 3, 1)
	b := p.Matrix(2, 3, 1)
	target := tensor.Randn(2, 3, 1, rand.New(rand.NewSource(8)))
	loss := func() *Node {
		return MSE(AddConst(Scale(Sub(Mul(a, b), a), 1.5), 0.3), target)
	}
	checkGrads(t, p.All(), loss, 1e-6)
}

func TestGradTranspose(t *testing.T) {
	p := NewParams(13)
	a := p.Matrix(2, 4, 1)
	target := tensor.Randn(4, 2, 1, rand.New(rand.NewSource(9)))
	loss := func() *Node { return MSE(Transpose(a), target) }
	checkGrads(t, p.All(), loss, 1e-6)
}

func TestGradSoftmaxRows(t *testing.T) {
	p := NewParams(17)
	a := p.Matrix(3, 4, 1)
	target := tensor.Randn(3, 4, 0.2, rand.New(rand.NewSource(10)))
	loss := func() *Node { return MSE(SoftmaxRows(a), target) }
	checkGrads(t, p.All(), loss, 1e-5)
}

func TestGradRowSumScaleRowsScaleCols(t *testing.T) {
	p := NewParams(19)
	a := p.Matrix(3, 4, 1)
	v := p.Matrix(3, 1, 1)
	u := p.Matrix(1, 4, 1)
	target := tensor.Randn(3, 4, 1, rand.New(rand.NewSource(11)))
	loss := func() *Node {
		s := ScaleRows(a, v)
		s = ScaleCols(s, u)
		rs := RowSum(s) // 3x1
		return MSE(ScaleRows(s, rs), target)
	}
	checkGrads(t, p.All(), loss, 1e-5)
}

func TestGradPowElem(t *testing.T) {
	p := NewParams(23)
	a := p.Matrix(2, 3, 0.1)
	// Shift to keep values strictly positive for fractional powers.
	target := tensor.Randn(2, 3, 1, rand.New(rand.NewSource(12)))
	loss := func() *Node { return MSE(PowElem(AddConst(a, 2), -0.5), target) }
	checkGrads(t, p.All(), loss, 1e-5)
}

func TestGradConcatCols(t *testing.T) {
	p := NewParams(29)
	a := p.Matrix(2, 2, 1)
	b := p.Matrix(2, 3, 1)
	target := tensor.Randn(2, 5, 1, rand.New(rand.NewSource(13)))
	loss := func() *Node { return MSE(ConcatCols(a, b), target) }
	checkGrads(t, p.All(), loss, 1e-6)
}

func TestGradBCE(t *testing.T) {
	p := NewParams(31)
	w := p.Matrix(3, 2, 0.5)
	x := Leaf(tensor.Randn(4, 3, 1, rand.New(rand.NewSource(14))))
	target := tensor.New(4, 2)
	for i := range target.Data {
		if i%3 == 0 {
			target.Data[i] = 1
		}
	}
	loss := func() *Node { return BCE(Sigmoid(MatMul(x, w)), target) }
	checkGrads(t, p.All(), loss, 1e-5)
}

func TestGradNormalizeAdjacencyAPPNP(t *testing.T) {
	p := NewParams(37)
	logits := p.Matrix(3, 3, 0.5)
	z := p.Matrix(3, 2, 0.5)
	target := tensor.Randn(3, 2, 1, rand.New(rand.NewSource(15)))
	loss := func() *Node {
		a := SoftmaxRows(Tanh(logits))
		norm := NormalizeAdjacency(a)
		return MSE(APPNP(z, norm, 0.2, 3), target)
	}
	checkGrads(t, p.All(), loss, 1e-4)
}

func TestGradLSTMCell(t *testing.T) {
	p := NewParams(41)
	cell := NewLSTMCell(p, 2, 3)
	xs := []*tensor.Matrix{
		tensor.Randn(2, 2, 1, rand.New(rand.NewSource(16))),
		tensor.Randn(2, 2, 1, rand.New(rand.NewSource(17))),
	}
	target := tensor.Randn(2, 3, 1, rand.New(rand.NewSource(18)))
	loss := func() *Node {
		h, c := cell.InitState(2)
		for _, x := range xs {
			h, c = cell.Step(Leaf(x), h, c)
		}
		return MSE(h, target)
	}
	checkGrads(t, p.All(), loss, 1e-4)
}

func TestGradGatedCausalConv(t *testing.T) {
	p := NewParams(43)
	conv := NewGatedCausalConv(p, 2, 2, 3, 2)
	var xs []*Node
	for i := 0; i < 6; i++ {
		xs = append(xs, Leaf(tensor.Randn(3, 2, 1, rand.New(rand.NewSource(int64(20+i))))))
	}
	target := tensor.Randn(3, 2, 1, rand.New(rand.NewSource(30)))
	loss := func() *Node {
		out := conv.Forward(xs)
		return MSE(out[len(out)-1], target)
	}
	checkGrads(t, p.All(), loss, 1e-5)
}

func TestGradReusedNode(t *testing.T) {
	// A node used twice must accumulate both gradient paths.
	p := NewParams(47)
	a := p.Matrix(2, 2, 1)
	target := tensor.Randn(2, 2, 1, rand.New(rand.NewSource(31)))
	loss := func() *Node { return MSE(Add(a, a), target) }
	checkGrads(t, p.All(), loss, 1e-6)
}

func TestBackwardPanicsOnNonScalar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Backward of non-scalar should panic")
		}
	}()
	Backward(Leaf(tensor.New(2, 2)))
}

func TestAdamReducesLoss(t *testing.T) {
	// Fit y = xW* with Adam; loss must drop by orders of magnitude.
	r := rand.New(rand.NewSource(51))
	wStar := tensor.Randn(3, 2, 1, r)
	x := tensor.Randn(20, 3, 1, r)
	y := tensor.MatMul(x, wStar)

	p := NewParams(52)
	w := p.Xavier(3, 2)
	opt := NewAdam(0.05)
	first, last := 0.0, 0.0
	for epoch := 0; epoch < 300; epoch++ {
		p.ZeroGrads()
		loss := MSE(MatMul(Leaf(x), w), y)
		if epoch == 0 {
			first = loss.Val.Data[0]
		}
		last = loss.Val.Data[0]
		Backward(loss)
		opt.Step(p.All())
	}
	if last > first/100 {
		t.Errorf("Adam failed to fit: first=%g last=%g", first, last)
	}
}

func TestSGDReducesLoss(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	x := tensor.Randn(10, 2, 1, r)
	y := tensor.MatMul(x, tensor.FromSlice(2, 1, []float64{1, -2}))
	p := NewParams(54)
	w := p.Xavier(2, 1)
	opt := SGD{LR: 0.05}
	var first, last float64
	for epoch := 0; epoch < 200; epoch++ {
		p.ZeroGrads()
		loss := MSE(MatMul(Leaf(x), w), y)
		if epoch == 0 {
			first = loss.Val.Data[0]
		}
		last = loss.Val.Data[0]
		Backward(loss)
		opt.Step(p.All())
	}
	if last > first/10 {
		t.Errorf("SGD failed to fit: first=%g last=%g", first, last)
	}
}

func TestClipGrads(t *testing.T) {
	p := NewParams(55)
	a := p.Matrix(1, 2, 1)
	a.Grad = tensor.FromSlice(1, 2, []float64{3, 4}) // norm 5
	norm := ClipGrads(p.All(), 1)
	if math.Abs(norm-5) > 1e-12 {
		t.Errorf("pre-clip norm = %v", norm)
	}
	got := math.Hypot(a.Grad.Data[0], a.Grad.Data[1])
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("post-clip norm = %v", got)
	}
	// Under the cap: untouched.
	a.Grad = tensor.FromSlice(1, 2, []float64{0.3, 0.4})
	ClipGrads(p.All(), 1)
	if a.Grad.Data[0] != 0.3 {
		t.Error("grads under cap must not change")
	}
}

func TestParamsBookkeeping(t *testing.T) {
	p := NewParams(56)
	p.Matrix(2, 3, 1)
	p.Zeros(1, 3)
	if p.Count() != 9 {
		t.Errorf("Count = %d", p.Count())
	}
	if len(p.All()) != 2 {
		t.Errorf("All = %d", len(p.All()))
	}
	for _, n := range p.All() {
		n.grad().Data[0] = 5
	}
	p.ZeroGrads()
	for _, n := range p.All() {
		if n.Grad.Data[0] != 0 {
			t.Error("ZeroGrads left residue")
		}
	}
}

func TestLinearShapes(t *testing.T) {
	p := NewParams(57)
	l := NewLinear(p, 4, 3)
	x := Leaf(tensor.New(5, 4))
	y := l.Forward(x)
	if y.Val.Rows != 5 || y.Val.Cols != 3 {
		t.Errorf("Linear output %dx%d", y.Val.Rows, y.Val.Cols)
	}
}

func TestCausalConvCausality(t *testing.T) {
	// Output at step t must not depend on inputs after t.
	p := NewParams(58)
	conv := NewCausalConv(p, 1, 1, 3, 1)
	mk := func(vals ...float64) []*Node {
		var xs []*Node
		for _, v := range vals {
			xs = append(xs, Leaf(tensor.FromSlice(1, 1, []float64{v})))
		}
		return xs
	}
	a := conv.Forward(mk(1, 2, 3, 4))
	b := conv.Forward(mk(1, 2, 3, 99))
	for tstep := 0; tstep < 3; tstep++ {
		if a[tstep].Val.Data[0] != b[tstep].Val.Data[0] {
			t.Errorf("step %d depends on a future input", tstep)
		}
	}
}

func TestCausalConvDilationReceptiveField(t *testing.T) {
	p := NewParams(59)
	conv := NewCausalConv(p, 1, 1, 3, 2) // taps at t, t-2, t-4
	// Make taps identity-ish: set weights to 1 for visibility.
	for _, tap := range conv.Taps {
		tap.Val.Data[0] = 1
	}
	var xs []*Node
	for i := 0; i < 5; i++ {
		v := 0.0
		if i == 0 {
			v = 1
		}
		xs = append(xs, Leaf(tensor.FromSlice(1, 1, []float64{v})))
	}
	out := conv.Forward(xs)
	// Impulse at t=0 must appear at t=0, 2, 4 only.
	for tstep, o := range out {
		want := 0.0
		if tstep == 0 || tstep == 2 || tstep == 4 {
			want = 1
		}
		if math.Abs(o.Val.Data[0]-want) > 1e-12 {
			t.Errorf("step %d = %v, want %v", tstep, o.Val.Data[0], want)
		}
	}
}

func TestAPPNPRestartDominates(t *testing.T) {
	// With alpha=1, APPNP returns ReLU(z0) regardless of the adjacency.
	z0 := Leaf(tensor.FromSlice(2, 1, []float64{1, -1}))
	adj := Leaf(tensor.Eye(2))
	out := APPNP(z0, adj, 1, 5)
	if out.Val.Data[0] != 1 || out.Val.Data[1] != 0 {
		t.Errorf("APPNP alpha=1 = %v", out.Val.Data)
	}
}

func TestNormalizeAdjacencyMatchesTensor(t *testing.T) {
	r := rand.New(rand.NewSource(60))
	raw := tensor.Apply(tensor.Randn(4, 4, 1, r), math.Abs)
	got := NormalizeAdjacency(Leaf(raw)).Val
	want := tensor.NormalizeAdjacency(raw)
	for i := range got.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-9 {
			t.Fatalf("differentiable normalization diverges from tensor version at %d: %g vs %g", i, got.Data[i], want.Data[i])
		}
	}
}
