package nn

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// BenchmarkForwardBackward measures one training step of a small MLP, the
// inner loop of every model in this repository.
func BenchmarkForwardBackward(b *testing.B) {
	p := NewParams(1)
	l1 := NewLinear(p, 36, 16)
	l2 := NewLinear(p, 16, 3)
	x := Leaf(tensor.Randn(36, 36, 1, rand.New(rand.NewSource(2))))
	y := tensor.Randn(36, 3, 1, rand.New(rand.NewSource(3)))
	opt := NewAdam(0.01)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ZeroGrads()
		loss := MSE(l2.Forward(Tanh(l1.Forward(x))), y)
		Backward(loss)
		opt.Step(p.All())
	}
}

// BenchmarkLSTMStep measures one cell step over a 36-row batch.
func BenchmarkLSTMStep(b *testing.B) {
	p := NewParams(4)
	cell := NewLSTMCell(p, 3, 16)
	x := Leaf(tensor.Randn(36, 3, 1, rand.New(rand.NewSource(5))))
	h, c := cell.InitState(36)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cell.Step(x, h, c)
	}
}

// BenchmarkGatedCausalConv measures the temporal block of Eq. 7 over an
// 8-step window.
func BenchmarkGatedCausalConv(b *testing.B) {
	p := NewParams(6)
	conv := NewGatedCausalConv(p, 16, 16, 3, 2)
	var xs []*Node
	for i := 0; i < 8; i++ {
		xs = append(xs, Leaf(tensor.Randn(36, 16, 1, rand.New(rand.NewSource(int64(i))))))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Forward(xs)
	}
}

// BenchmarkAPPNP measures the propagation layer of Eqs. 8-9.
func BenchmarkAPPNP(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	z := Leaf(tensor.Randn(36, 16, 1, r))
	adj := Leaf(tensor.SoftmaxRows(tensor.Randn(36, 36, 1, r)))
	norm := NormalizeAdjacency(adj)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		APPNP(z, norm, 0.2, 3)
	}
}
