package nn

import (
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Params owns the trainable parameters of a model and the RNG used to
// initialize them, so whole-model training is reproducible from one seed.
type Params struct {
	nodes []*Node
	rng   *rand.Rand
}

// NewParams returns an empty parameter set seeded deterministically.
func NewParams(seed int64) *Params {
	return &Params{rng: rand.New(rand.NewSource(seed))}
}

// Matrix allocates a rows×cols parameter initialized N(0, std²) and
// registers it for optimization.
func (p *Params) Matrix(rows, cols int, std float64) *Node {
	n := Variable(tensor.Randn(rows, cols, std, p.rng))
	p.nodes = append(p.nodes, n)
	return n
}

// Xavier allocates a rows×cols parameter with Xavier/Glorot initialization.
func (p *Params) Xavier(rows, cols int) *Node {
	return p.Matrix(rows, cols, math.Sqrt(2.0/float64(rows+cols)))
}

// Zeros allocates a zero-initialized parameter (typical for biases).
func (p *Params) Zeros(rows, cols int) *Node {
	n := Variable(tensor.New(rows, cols))
	p.nodes = append(p.nodes, n)
	return n
}

// All returns every registered parameter.
func (p *Params) All() []*Node { return p.nodes }

// Count returns the total number of scalar parameters.
func (p *Params) Count() int {
	n := 0
	for _, node := range p.nodes {
		n += len(node.Val.Data)
	}
	return n
}

// ZeroGrads clears accumulated gradients before a new backward pass.
func (p *Params) ZeroGrads() {
	for _, n := range p.nodes {
		if n.Grad != nil {
			n.Grad.Zero()
		}
	}
}

// ClipGrads rescales all gradients so their global L2 norm is at most max.
// It returns the pre-clip norm.
func ClipGrads(params []*Node, max float64) float64 {
	total := 0.0
	for _, n := range params {
		if n.Grad == nil {
			continue
		}
		for _, g := range n.Grad.Data {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm > max && norm > 0 {
		k := max / norm
		for _, n := range params {
			if n.Grad == nil {
				continue
			}
			for i := range n.Grad.Data {
				n.Grad.Data[i] *= k
			}
		}
	}
	return norm
}

// Adam is the Adam optimizer (Kingma & Ba) over a fixed parameter list,
// with optional decoupled weight decay (AdamW).
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	// WeightDecay, when positive, shrinks parameters by LR·WeightDecay·θ
	// per step, decoupled from the adaptive update.
	WeightDecay float64

	t int
	m map[*Node][]float64
	v map[*Node][]float64
}

// NewAdam returns an Adam optimizer with standard defaults and the given
// learning rate.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Node][]float64), v: make(map[*Node][]float64),
	}
}

// Step applies one Adam update to every parameter with a gradient.
func (o *Adam) Step(params []*Node) {
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, n := range params {
		if n.Grad == nil {
			continue
		}
		m, ok := o.m[n]
		if !ok {
			m = make([]float64, len(n.Val.Data))
			o.m[n] = m
			o.v[n] = make([]float64, len(n.Val.Data))
		}
		v := o.v[n]
		for i, g := range n.Grad.Data {
			m[i] = o.Beta1*m[i] + (1-o.Beta1)*g
			v[i] = o.Beta2*v[i] + (1-o.Beta2)*g*g
			mhat := m[i] / bc1
			vhat := v[i] / bc2
			n.Val.Data[i] -= o.LR * mhat / (math.Sqrt(vhat) + o.Eps)
			if o.WeightDecay > 0 {
				n.Val.Data[i] -= o.LR * o.WeightDecay * n.Val.Data[i]
			}
		}
	}
}

// SGD is plain stochastic gradient descent, used by the TVF trainer.
type SGD struct{ LR float64 }

// Step applies one SGD update.
func (o SGD) Step(params []*Node) {
	for _, n := range params {
		if n.Grad == nil {
			continue
		}
		for i, g := range n.Grad.Data {
			n.Val.Data[i] -= o.LR * g
		}
	}
}

// Linear is a fully connected layer y = xW + b.
type Linear struct {
	W, B *Node
}

// NewLinear allocates a Linear layer with Xavier weights and zero bias.
func NewLinear(p *Params, in, out int) *Linear {
	return &Linear{W: p.Xavier(in, out), B: p.Zeros(1, out)}
}

// Forward applies the layer to a batch (rows = examples).
func (l *Linear) Forward(x *Node) *Node {
	return AddBias(MatMul(x, l.W), l.B)
}

// CausalConv is one tap-K dilated causal convolution along the time axis.
// The time axis is represented as a Go slice of nodes, each an M×In matrix
// (M = grid cells). Output at step t combines inputs at t, t−d, …,
// t−(K−1)·d per Eq. 3 of the paper; missing steps are zero padding.
type CausalConv struct {
	Taps     []*Node // K weight matrices, each In×Out
	B        *Node   // 1×Out bias
	Dilation int
}

// NewCausalConv allocates a causal convolution with K taps (the paper fixes
// the filter dimension K to 3) and the given dilation factor.
func NewCausalConv(p *Params, in, out, k, dilation int) *CausalConv {
	c := &CausalConv{Dilation: dilation, B: p.Zeros(1, out)}
	for i := 0; i < k; i++ {
		c.Taps = append(c.Taps, p.Xavier(in, out))
	}
	return c
}

// Forward maps a sequence of M×In inputs to a sequence of M×Out outputs of
// the same length.
func (c *CausalConv) Forward(xs []*Node) []*Node {
	out := make([]*Node, len(xs))
	for t := range xs {
		var acc *Node
		for i, w := range c.Taps {
			src := t - i*c.Dilation
			if src < 0 {
				continue // zero padding
			}
			term := MatMul(xs[src], w)
			if acc == nil {
				acc = term
			} else {
				acc = Add(acc, term)
			}
		}
		if acc == nil {
			// All taps out of range (cannot happen for i=0, but keep safe).
			acc = MatMul(xs[t], c.Taps[0])
		}
		out[t] = AddBias(acc, c.B)
	}
	return out
}

// GatedCausalConv is the gated temporal block of Eq. 7:
// Z = tanh(Θ₁*X + b₁) ⊙ σ(Θ₂*X + b₂).
type GatedCausalConv struct {
	Filter, Gate *CausalConv
}

// NewGatedCausalConv allocates the two parallel convolutions of the gate.
func NewGatedCausalConv(p *Params, in, out, k, dilation int) *GatedCausalConv {
	return &GatedCausalConv{
		Filter: NewCausalConv(p, in, out, k, dilation),
		Gate:   NewCausalConv(p, in, out, k, dilation),
	}
}

// Forward applies the gated convolution to the sequence.
func (g *GatedCausalConv) Forward(xs []*Node) []*Node {
	f := g.Filter.Forward(xs)
	s := g.Gate.Forward(xs)
	out := make([]*Node, len(xs))
	for t := range xs {
		out[t] = Mul(Tanh(f[t]), Sigmoid(s[t]))
	}
	return out
}

// NormalizeAdjacency builds Â = D^{-1/2}(A+I)D^{-1/2} differentiably, where
// D_ii = 1 + Σ_j A_ij (Eqs. 8–9). A must be square with non-negative
// entries (e.g. a row-softmax output).
func NormalizeAdjacency(a *Node) *Node {
	n := a.Val.Rows
	withSelf := Add(a, Leaf(tensor.Eye(n)))
	deg := AddConst(RowSum(a), 1) // n×1, D_ii = 1 + Σ_j A_ij
	dinv := PowElem(deg, -0.5)    // n×1
	half := ScaleRows(withSelf, dinv)
	return ScaleCols(half, Transpose(dinv))
}

// APPNP runs the Approximate Personalized Propagation of Neural Predictions
// layer (Eqs. 8–9): Z^{h+1} = αZ⁰ + (1−α)ÂZ^h for H power-iteration steps,
// with a final ReLU. normAdj must already be normalized.
func APPNP(z0, normAdj *Node, alpha float64, steps int) *Node {
	z := z0
	for h := 0; h < steps; h++ {
		z = Add(Scale(z0, alpha), Scale(MatMul(normAdj, z), 1-alpha))
	}
	return ReLU(z)
}

// LSTMCell is a standard LSTM cell with combined input/hidden weights,
// used by the LSTM prediction baseline (Section V-B.1 method i).
type LSTMCell struct {
	Hidden int
	// One Linear per gate over [x ; h].
	Wi, Wf, Wo, Wg *Linear
}

// NewLSTMCell allocates an LSTM cell for the given input and hidden sizes.
func NewLSTMCell(p *Params, in, hidden int) *LSTMCell {
	return &LSTMCell{
		Hidden: hidden,
		Wi:     NewLinear(p, in+hidden, hidden),
		Wf:     NewLinear(p, in+hidden, hidden),
		Wo:     NewLinear(p, in+hidden, hidden),
		Wg:     NewLinear(p, in+hidden, hidden),
	}
}

// InitState returns zero h and c states for a batch of the given size.
func (l *LSTMCell) InitState(batch int) (h, c *Node) {
	return Leaf(tensor.New(batch, l.Hidden)), Leaf(tensor.New(batch, l.Hidden))
}

// Step consumes one time step x (batch×in) and returns the new (h, c).
func (l *LSTMCell) Step(x, h, c *Node) (*Node, *Node) {
	xh := ConcatCols(x, h)
	i := Sigmoid(l.Wi.Forward(xh))
	f := Sigmoid(l.Wf.Forward(xh))
	o := Sigmoid(l.Wo.Forward(xh))
	g := Tanh(l.Wg.Forward(xh))
	cNew := Add(Mul(f, c), Mul(i, g))
	hNew := Mul(o, Tanh(cNew))
	return hNew, cNew
}
