package obs

import "encoding/json"

// chromeEvent is one Chrome trace-event record. Only the subset the trace
// viewer needs: "M" metadata events name the tracks, "X" complete events
// carry the spans (ts/dur in microseconds; nesting on a track is inferred
// from containment).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// ChromeTrace renders epoch span sets as Chrome trace-event JSON — the
// format chrome://tracing and Perfetto load directly. tracks names the span
// Track indices ("dispatcher", "shard 0", …); per-shard planner Steps land
// on their own tracks and render as parallel lanes. Logical coordinates
// (epoch, now, n, detail) ride along in each event's args.
func ChromeTrace(epochs []EpochSpans, tracks []string) ([]byte, error) {
	events := make([]chromeEvent, 0, len(tracks)+len(epochs)*8)
	for i, name := range tracks {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: i,
			Args: map[string]any{"name": name},
		})
	}
	for _, e := range epochs {
		for _, s := range e.Spans {
			args := map[string]any{"epoch": e.Epoch, "now": e.Now}
			if s.N != 0 {
				args["n"] = s.N
			}
			if s.Detail != "" {
				args["detail"] = s.Detail
			}
			events = append(events, chromeEvent{
				Name: s.Name, Ph: "X",
				TS:  float64(s.StartNS) / 1e3,
				Dur: float64(s.DurNS) / 1e3,
				PID: 1, TID: s.Track,
				Args: args,
			})
		}
	}
	return json.Marshal(chromeTrace{DisplayTimeUnit: "ms", TraceEvents: events})
}
