package obs

// FlightDump is one flight-recorder capture: the anomaly that triggered it
// plus the last window of stage spans and every ledger chain active in that
// window — the evidence a post-mortem needs, frozen at the moment the
// anomaly was observed instead of reconstructed after the fact.
type FlightDump struct {
	// Reason names the trigger: "governor-demotion", "shed",
	// "over-budget-epoch" or "ledger-violation".
	Reason string `json:"reason"`
	// Epoch and Now locate the trigger on the logical clock.
	Epoch int     `json:"epoch"`
	Now   float64 `json:"now"`
	// Spans holds the trailing window of epoch span sets, oldest first;
	// Tasks the ledger chains with activity inside that window.
	Spans []EpochSpans  `json:"spans"`
	Tasks []TaskHistory `json:"tasks"`
}

// FlightRing keeps the most recent flight dumps.
type FlightRing struct {
	buf  []FlightDump
	next int
	full bool
}

// NewFlightRing builds a ring retaining n dumps (n ≥ 1).
func NewFlightRing(n int) *FlightRing {
	if n < 1 {
		n = 1
	}
	return &FlightRing{buf: make([]FlightDump, n)}
}

// Add appends a dump, evicting the oldest once full.
func (r *FlightRing) Add(d FlightDump) {
	r.buf[r.next] = d
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// All returns the retained dumps, oldest first.
func (r *FlightRing) All() []FlightDump {
	var out []FlightDump
	if r.full {
		out = append(out, r.buf[r.next:]...)
	}
	return append(out, r.buf[:r.next]...)
}
