package obs

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a log-bucketed latency histogram in the Prometheus shape:
// fixed upper bounds, cumulative export, a sum and a count. Buckets are
// log-spaced so one histogram covers microsecond planner steps and
// multi-second overload epochs with bounded relative error; exact quantiles
// stay with the dispatcher's latency ring — the histogram is the wire format,
// not the SLA arbiter.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf is implicit
	counts []uint64  // len(bounds)+1; last is the overflow bucket
	sum    float64
	count  uint64
}

// NewLogHistogram builds a histogram with perDecade log-spaced bucket bounds
// per factor of 10, spanning [lo, hi] (both > 0, hi > lo).
func NewLogHistogram(lo, hi float64, perDecade int) *Histogram {
	if !(lo > 0) || !(hi > lo) || perDecade < 1 {
		panic("obs: NewLogHistogram needs 0 < lo < hi and perDecade >= 1")
	}
	var bounds []float64
	for i := 0; ; i++ {
		b := lo * math.Pow(10, float64(i)/float64(perDecade))
		if b > hi*1.0000001 {
			break
		}
		bounds = append(bounds, b)
	}
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// NewLatencyHistogram is the dispatcher's stock shape: 1µs to 100s, five
// buckets per decade (relative error under ~60% within a bucket, 41 buckets).
func NewLatencyHistogram() *Histogram { return NewLogHistogram(1e-6, 100, 5) }

// Observe records one sample (negative samples clamp to zero).
func (h *Histogram) Observe(v float64) {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.count++
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts the per-bucket (not
	// cumulative) sample counts, one longer than Bounds — the last entry is
	// the +Inf overflow bucket.
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.count,
	}
}

// AppendProm writes the snapshot as Prometheus text-exposition series —
// cumulative `name_bucket{...,le="..."}` lines ending at le="+Inf", then
// name_sum and name_count. labels is either empty or a rendered label list
// without braces (`stage="drain"`); the caller writes HELP/TYPE once per
// metric family, since one family can carry several label sets.
func (s HistogramSnapshot) AppendProm(b *strings.Builder, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i, bound := range s.Bounds {
		cum += s.Counts[i]
		fmt.Fprintf(b, "%s_bucket{%s%sle=\"%g\"} %d\n", name, labels, sep, bound, cum)
	}
	if len(s.Counts) > 0 {
		cum += s.Counts[len(s.Counts)-1]
	}
	fmt.Fprintf(b, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	if labels == "" {
		fmt.Fprintf(b, "%s_sum %g\n%s_count %d\n", name, s.Sum, name, s.Count)
	} else {
		fmt.Fprintf(b, "%s_sum{%s} %g\n%s_count{%s} %d\n", name, labels, s.Sum, name, labels, s.Count)
	}
}
