package obs

import (
	"fmt"
	"sort"
)

// State is one lifecycle state in a task's disposal chain.
type State string

// The lifecycle states. Every chain starts at Submitted; Assigned, Expired,
// Cancelled and Shed are terminal — exactly one of them ends a well-formed
// chain, and their counts sum to the conservation identity
// (assigned + expired + cancelled + shed == submitted). The rest are
// intermediate: Deferred and Displaced are admission-control detours back to
// the pending queue, GhostReplicated marks a cross-shard replica, Retracted a
// commit undone by arbitration (the task stays open and replans).
const (
	Submitted       State = "submitted"
	Admitted        State = "admitted"
	Deferred        State = "deferred"
	Displaced       State = "displaced"
	GhostReplicated State = "ghost-replicated"
	Retracted       State = "retracted"
	Assigned        State = "assigned"
	Expired         State = "expired"
	Cancelled       State = "cancelled"
	Shed            State = "shed"
)

// Terminal reports whether the state ends a task's chain.
func (s State) Terminal() bool {
	switch s {
	case Assigned, Expired, Cancelled, Shed:
		return true
	}
	return false
}

// Transition is one ledger entry: a task entered State during epoch Epoch at
// logical instant Now. Shard is the shard the transition happened in (-1 for
// dispatcher-level decisions that touch no shard, e.g. an ingest-path shed),
// Worker the committing worker for assignments and retractions, and Cause a
// short human-readable reason ("displaced by task 7", "submit-cap", …). All
// fields are logical — a pure function of the event stream.
type Transition struct {
	State  State   `json:"state"`
	Epoch  int     `json:"epoch"`
	Now    float64 `json:"now"`
	Shard  int     `json:"shard"`
	Worker int     `json:"worker,omitempty"`
	Cause  string  `json:"cause,omitempty"`
}

// TaskHistory is one task's complete transition chain, oldest first.
type TaskHistory struct {
	Task        int          `json:"task"`
	Transitions []Transition `json:"transitions"`
}

// Terminal returns the chain's terminal transition, or false when the task
// is still live.
func (h TaskHistory) Terminal() (Transition, bool) {
	for _, tr := range h.Transitions {
		if tr.State.Terminal() {
			return tr, true
		}
	}
	return Transition{}, false
}

// AuditIssue is one chain-shape violation found by Ledger.Audit.
type AuditIssue struct {
	Task    int    `json:"task"`
	Problem string `json:"problem"`
}

// Ledger records every task's lifecycle transitions, bounded to cap tasks.
// When full it evicts the oldest task that already reached a terminal state
// — a closed case whose evidence has been available the longest — and only
// falls back to evicting the oldest live chain when every retained task is
// still open. Violations of the chain shape (first transition not Submitted,
// any transition after a terminal one) are counted as they are recorded, so
// a conservation-gate failure can point at the exact task even after the
// offending chain is evicted.
type Ledger struct {
	cap        int
	recs       map[int]*TaskHistory
	term       map[int]State
	order      []int // insertion order; may hold already-evicted ids, skipped lazily
	termQ      []int // terminal order; same laziness
	evictions  int64
	violations int64
	samples    []string // first few violation descriptions
}

// NewLedger builds a ledger retaining at most cap task chains (cap ≥ 1).
func NewLedger(cap int) *Ledger {
	if cap < 1 {
		cap = 1
	}
	return &Ledger{
		cap:  cap,
		recs: make(map[int]*TaskHistory, cap),
		term: make(map[int]State, cap),
	}
}

// Record appends one transition to the task's chain, opening the chain when
// the task is new and evicting an old chain if the ledger is at capacity.
func (l *Ledger) Record(task int, tr Transition) {
	h, ok := l.recs[task]
	if !ok {
		if tr.State != Submitted {
			l.violate("task %d: chain starts at %q, not %q", task, tr.State, Submitted)
		}
		if len(l.recs) >= l.cap {
			l.evict()
		}
		h = &TaskHistory{Task: task}
		l.recs[task] = h
		l.order = append(l.order, task)
		l.compact()
	} else if prev, done := l.term[task]; done {
		l.violate("task %d: %q recorded after terminal %q", task, tr.State, prev)
	}
	h.Transitions = append(h.Transitions, tr)
	if tr.State.Terminal() {
		if _, done := l.term[task]; !done {
			l.term[task] = tr.State
			l.termQ = append(l.termQ, task)
		}
	}
}

// evict removes one chain: the oldest terminal one when any exists, the
// oldest chain otherwise.
func (l *Ledger) evict() {
	for len(l.termQ) > 0 {
		id := l.termQ[0]
		l.termQ = l.termQ[1:]
		if _, ok := l.recs[id]; ok {
			delete(l.recs, id)
			delete(l.term, id)
			l.evictions++
			return
		}
	}
	for len(l.order) > 0 {
		id := l.order[0]
		l.order = l.order[1:]
		if _, ok := l.recs[id]; ok {
			delete(l.recs, id)
			delete(l.term, id)
			l.evictions++
			return
		}
	}
}

// compact drops already-evicted ids from the order queues once they dominate,
// so the queues stay O(cap) even though eviction skips entries lazily.
func (l *Ledger) compact() {
	if len(l.order) > 2*l.cap {
		kept := l.order[:0]
		for _, id := range l.order {
			if _, ok := l.recs[id]; ok {
				kept = append(kept, id)
			}
		}
		l.order = kept
	}
	if len(l.termQ) > 2*l.cap {
		kept := l.termQ[:0]
		for _, id := range l.termQ {
			if _, ok := l.recs[id]; ok {
				kept = append(kept, id)
			}
		}
		l.termQ = kept
	}
}

func (l *Ledger) violate(format string, args ...any) {
	l.violations++
	if len(l.samples) < 8 {
		l.samples = append(l.samples, fmt.Sprintf(format, args...))
	}
}

// History returns a copy of one task's chain, or false when the ledger never
// saw the task (or already evicted it).
func (l *Ledger) History(task int) (TaskHistory, bool) {
	h, ok := l.recs[task]
	if !ok {
		return TaskHistory{}, false
	}
	return TaskHistory{Task: h.Task, Transitions: append([]Transition(nil), h.Transitions...)}, true
}

// Recent returns copies of every retained chain whose last transition is at
// or after sinceEpoch, sorted by task id.
func (l *Ledger) Recent(sinceEpoch int) []TaskHistory {
	var out []TaskHistory
	for id, h := range l.recs {
		if n := len(h.Transitions); n > 0 && h.Transitions[n-1].Epoch >= sinceEpoch {
			out = append(out, TaskHistory{Task: id, Transitions: append([]Transition(nil), h.Transitions...)})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Task < out[j].Task })
	return out
}

// Audit scans every retained chain for shape violations: a chain must start
// at Submitted, contain exactly one terminal transition, and nothing after
// it. Live (no-terminal) chains are reported too — after a full drain every
// task must be terminal, so a live chain there is a leaked task. Results are
// sorted by task id.
func (l *Ledger) Audit() []AuditIssue {
	var out []AuditIssue
	for id, h := range l.recs {
		out = append(out, auditChain(id, h.Transitions)...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Task != out[j].Task {
			return out[i].Task < out[j].Task
		}
		return out[i].Problem < out[j].Problem
	})
	return out
}

func auditChain(id int, chain []Transition) []AuditIssue {
	var out []AuditIssue
	if len(chain) == 0 {
		return append(out, AuditIssue{Task: id, Problem: "empty chain"})
	}
	if chain[0].State != Submitted {
		out = append(out, AuditIssue{Task: id, Problem: fmt.Sprintf("chain starts at %q", chain[0].State)})
	}
	terminals := 0
	for i, tr := range chain {
		if terminals > 0 {
			out = append(out, AuditIssue{Task: id, Problem: fmt.Sprintf("%q after terminal state", tr.State)})
			break
		}
		if tr.State.Terminal() {
			terminals++
		}
		_ = i
	}
	if terminals == 0 {
		out = append(out, AuditIssue{Task: id, Problem: "no terminal state"})
	}
	return out
}

// TerminalCounts tallies retained chains by terminal state; live chains
// count under "" (the empty state).
func (l *Ledger) TerminalCounts() map[State]int {
	out := make(map[State]int)
	for id := range l.recs {
		out[l.term[id]]++
	}
	return out
}

// Len is the number of retained chains; Evictions how many were dropped to
// stay within capacity (audits over the full population need Evictions()==0);
// Violations how many chain-shape violations recording detected, with
// ViolationSamples describing the first few.
func (l *Ledger) Len() int          { return len(l.recs) }
func (l *Ledger) Evictions() int64  { return l.evictions }
func (l *Ledger) Violations() int64 { return l.violations }
func (l *Ledger) ViolationSamples() []string {
	return append([]string(nil), l.samples...)
}
