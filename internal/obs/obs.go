// Package obs is the dispatcher's zero-dependency observability core: stage
// spans with a bounded ring and Chrome trace-event export, a per-task
// lifecycle ledger that accounts every disposal transition, log-bucketed
// latency histograms in the Prometheus exposition shape, and the flight
// recorder that freezes spans + ledger slices around an anomaly.
//
// Every type here separates logical content (epoch numbers, logical clock
// instants, transition causes) from wall-clock measurements (span start and
// duration, histogram samples). Logical content is a pure function of the
// event stream — byte-identical across reruns and parallelism levels, which
// the dispatcher tests pin — while wall fields vary run to run and are
// excluded from equality checks.
package obs

// Span is one instrumented region of a planning epoch. Name and Track
// position it ("step" on track 3 is shard 2's planner Step; track 0 is the
// dispatcher's own sequential work), N counts the units the region processed
// (events drained, tasks arbitrated, …), and Detail carries stage-specific
// logical annotations. StartNS/DurNS are wall-clock: nanoseconds since the
// owning ring's origin and the region's measured duration. Only those two
// fields are non-deterministic.
type Span struct {
	Name   string `json:"name"`
	Track  int    `json:"track"`
	N      int    `json:"n,omitempty"`
	Detail string `json:"detail,omitempty"`
	// StartNS is the wall-clock start, nanoseconds since the recorder's
	// origin instant; DurNS the wall duration. Excluded from determinism
	// comparisons.
	StartNS int64 `json:"start_ns"`
	DurNS   int64 `json:"dur_ns"`
}

// EpochSpans is one epoch's span set: the logical position (Epoch, Now) plus
// every stage span recorded while that epoch ran, in recording order.
type EpochSpans struct {
	Epoch int     `json:"epoch"`
	Now   float64 `json:"now"`
	Spans []Span  `json:"spans"`
}

// SpanRing keeps the last N epochs' span sets.
type SpanRing struct {
	buf  []EpochSpans
	next int
	full bool
}

// NewSpanRing builds a ring retaining n epochs (n ≥ 1).
func NewSpanRing(n int) *SpanRing {
	if n < 1 {
		n = 1
	}
	return &SpanRing{buf: make([]EpochSpans, n)}
}

// Add appends one epoch's spans, evicting the oldest once full.
func (r *SpanRing) Add(e EpochSpans) {
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// Last returns up to n retained epoch span sets, oldest first (n ≤ 0 = all).
func (r *SpanRing) Last(n int) []EpochSpans {
	var out []EpochSpans
	if r.full {
		out = append(out, r.buf[r.next:]...)
	}
	out = append(out, r.buf[:r.next]...)
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}
