package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// TestSpanRingWraparound is the wrap-around property: after M > depth adds,
// Last(n) returns exactly the newest min(n, depth) records, oldest first.
func TestSpanRingWraparound(t *testing.T) {
	for _, depth := range []int{1, 2, 3, 7, 16} {
		for _, adds := range []int{0, 1, depth - 1, depth, depth + 1, 2*depth + 3} {
			if adds < 0 {
				continue
			}
			r := NewSpanRing(depth)
			for i := 0; i < adds; i++ {
				r.Add(EpochSpans{Epoch: i})
			}
			for _, n := range []int{0, 1, depth - 1, depth, depth + 5} {
				if n < 0 {
					continue
				}
				got := r.Last(n)
				retained := adds
				if retained > depth {
					retained = depth
				}
				want := retained
				if n > 0 && n < want {
					want = n
				}
				if len(got) != want {
					t.Fatalf("depth=%d adds=%d Last(%d): got %d records, want %d", depth, adds, n, len(got), want)
				}
				for j, e := range got {
					if wantEpoch := adds - len(got) + j; e.Epoch != wantEpoch {
						t.Fatalf("depth=%d adds=%d Last(%d)[%d]: epoch %d, want %d", depth, adds, n, j, e.Epoch, wantEpoch)
					}
				}
			}
		}
	}
}

func TestLedgerChainAndHistory(t *testing.T) {
	l := NewLedger(16)
	l.Record(7, Transition{State: Submitted, Epoch: 0, Now: 0})
	l.Record(7, Transition{State: Admitted, Epoch: 0, Now: 0, Shard: 1})
	l.Record(7, Transition{State: GhostReplicated, Epoch: 0, Now: 0, Shard: 2})
	l.Record(7, Transition{State: Assigned, Epoch: 3, Now: 3, Shard: 2, Worker: 9, Cause: "ghost hit"})

	h, ok := l.History(7)
	if !ok || len(h.Transitions) != 4 {
		t.Fatalf("History(7) = %+v, %v; want 4 transitions", h, ok)
	}
	term, ok := h.Terminal()
	if !ok || term.State != Assigned || term.Worker != 9 {
		t.Fatalf("Terminal() = %+v, %v; want assigned by worker 9", term, ok)
	}
	if _, ok := l.History(8); ok {
		t.Fatal("History(8) should be unknown")
	}
	if issues := l.Audit(); len(issues) != 0 {
		t.Fatalf("Audit() on a well-formed chain = %v", issues)
	}
	if got := l.TerminalCounts()[Assigned]; got != 1 {
		t.Fatalf("TerminalCounts()[assigned] = %d, want 1", got)
	}
}

func TestLedgerViolations(t *testing.T) {
	l := NewLedger(16)
	// Chain starting past Submitted.
	l.Record(1, Transition{State: Admitted})
	if l.Violations() != 1 {
		t.Fatalf("Violations() = %d after bad chain start, want 1", l.Violations())
	}
	// Transition after a terminal state.
	l.Record(2, Transition{State: Submitted})
	l.Record(2, Transition{State: Shed, Cause: "displaced"})
	l.Record(2, Transition{State: Admitted})
	if l.Violations() != 2 {
		t.Fatalf("Violations() = %d after post-terminal transition, want 2", l.Violations())
	}
	if s := l.ViolationSamples(); len(s) != 2 || !strings.Contains(s[1], "task 2") {
		t.Fatalf("ViolationSamples() = %q", s)
	}
	// Audit flags the open chain, the bad start, and the post-terminal entry.
	issues := l.Audit()
	if len(issues) != 3 {
		t.Fatalf("Audit() = %v, want 3 issues", issues)
	}
}

func TestLedgerAuditFlagsOpenChains(t *testing.T) {
	l := NewLedger(4)
	l.Record(5, Transition{State: Submitted})
	l.Record(5, Transition{State: Admitted})
	issues := l.Audit()
	if len(issues) != 1 || issues[0].Task != 5 || issues[0].Problem != "no terminal state" {
		t.Fatalf("Audit() = %v, want task 5 flagged as non-terminal", issues)
	}
}

// TestLedgerEvictionPrefersTerminal: at capacity the ledger drops closed
// cases before live ones, and keeps working after far more tasks than cap.
func TestLedgerEvictionPrefersTerminal(t *testing.T) {
	l := NewLedger(3)
	l.Record(1, Transition{State: Submitted})
	l.Record(1, Transition{State: Assigned})
	l.Record(2, Transition{State: Submitted}) // stays live
	l.Record(3, Transition{State: Submitted})
	l.Record(3, Transition{State: Expired})
	// Fourth task: ledger is full, task 1 (oldest terminal) must go.
	l.Record(4, Transition{State: Submitted})
	if _, ok := l.History(1); ok {
		t.Fatal("task 1 should have been evicted (oldest terminal)")
	}
	if _, ok := l.History(2); !ok {
		t.Fatal("live task 2 should have survived eviction")
	}
	if l.Evictions() != 1 {
		t.Fatalf("Evictions() = %d, want 1", l.Evictions())
	}
	// Flood well past capacity: size stays bounded, live chains evict last.
	for i := 10; i < 200; i++ {
		l.Record(i, Transition{State: Submitted})
		l.Record(i, Transition{State: Assigned})
	}
	if l.Len() != 3 {
		t.Fatalf("Len() = %d after flood, want cap 3", l.Len())
	}
}

func TestLedgerRecent(t *testing.T) {
	l := NewLedger(16)
	l.Record(1, Transition{State: Submitted, Epoch: 0})
	l.Record(1, Transition{State: Assigned, Epoch: 2})
	l.Record(2, Transition{State: Submitted, Epoch: 5})
	l.Record(3, Transition{State: Submitted, Epoch: 9})
	got := l.Recent(5)
	if len(got) != 2 || got[0].Task != 2 || got[1].Task != 3 {
		t.Fatalf("Recent(5) = %+v, want tasks 2 and 3", got)
	}
}

func TestHistogramBucketsAndExposition(t *testing.T) {
	h := NewLogHistogram(0.001, 1, 3) // bounds 0.001 .. 1, 3/decade
	h.Observe(0.0005)                 // first bucket
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(50) // overflow
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("Count = %d, want 4", s.Count)
	}
	if want := 0.0005 + 0.5 + 0.5 + 50; s.Sum != want {
		t.Fatalf("Sum = %g, want %g", s.Sum, want)
	}
	if len(s.Counts) != len(s.Bounds)+1 {
		t.Fatalf("Counts len %d, Bounds len %d", len(s.Counts), len(s.Bounds))
	}
	if s.Counts[len(s.Counts)-1] != 1 {
		t.Fatalf("overflow bucket = %d, want 1", s.Counts[len(s.Counts)-1])
	}
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	if total != s.Count {
		t.Fatalf("bucket counts sum %d != Count %d", total, s.Count)
	}

	var b strings.Builder
	s.AppendProm(&b, "x_seconds", `stage="drain"`)
	out := b.String()
	if !strings.Contains(out, `x_seconds_bucket{stage="drain",le="+Inf"} 4`) {
		t.Fatalf("missing +Inf bucket:\n%s", out)
	}
	if !strings.Contains(out, `x_seconds_count{stage="drain"} 4`) {
		t.Fatalf("missing count series:\n%s", out)
	}
	// Cumulative monotonicity across the rendered buckets.
	last := int64(-1)
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "x_seconds_bucket") {
			continue
		}
		var v int64
		if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &v); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if v < last {
			t.Fatalf("cumulative counts decreased:\n%s", out)
		}
		last = v
	}

	var b2 strings.Builder
	s.AppendProm(&b2, "y_seconds", "")
	if !strings.Contains(b2.String(), `y_seconds_bucket{le="+Inf"} 4`) {
		t.Fatalf("unlabelled exposition malformed:\n%s", b2.String())
	}
}

func TestChromeTraceShape(t *testing.T) {
	epochs := []EpochSpans{{
		Epoch: 3, Now: 3.0,
		Spans: []Span{
			{Name: "drain", Track: 0, N: 2, StartNS: 1000, DurNS: 500},
			{Name: "step", Track: 1, Detail: "workers=4", StartNS: 1600, DurNS: 900},
		},
	}}
	raw, err := ChromeTrace(epochs, []string{"dispatcher", "shard 0"})
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("ChromeTrace output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != 4 { // 2 metadata + 2 spans
		t.Fatalf("got %d events, want 4", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		if ph != "M" && ph != "X" {
			t.Fatalf("unexpected phase %q in %v", ph, ev)
		}
		for _, k := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := ev[k]; !ok {
				t.Fatalf("event missing %q: %v", k, ev)
			}
		}
		if ph == "X" {
			if _, ok := ev["ts"].(float64); !ok {
				t.Fatalf("X event missing numeric ts: %v", ev)
			}
			args, _ := ev["args"].(map[string]any)
			if _, ok := args["epoch"]; !ok {
				t.Fatalf("X event args missing epoch: %v", ev)
			}
		}
	}
}

func TestFlightRing(t *testing.T) {
	r := NewFlightRing(2)
	r.Add(FlightDump{Reason: "a", Epoch: 1})
	r.Add(FlightDump{Reason: "b", Epoch: 2})
	r.Add(FlightDump{Reason: "c", Epoch: 3})
	got := r.All()
	if len(got) != 2 || got[0].Reason != "b" || got[1].Reason != "c" {
		t.Fatalf("All() = %+v, want dumps b then c", got)
	}
}
