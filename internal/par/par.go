// Package par provides the small bounded-parallelism primitive shared by the
// planning pipeline: run n independent index-addressed jobs on a fixed pool
// of goroutines. Callers write results into per-index slots, so output order
// never depends on scheduling and a serial run (workers ≤ 1) is the exact
// reference semantics of every parallel run.
//
// Two layers of the pipeline fan out through it, and both advertise the same
// contract — results byte-identical at every parallelism level, only CPU
// time changes:
//
//   - assign.Search fans one planning instant across RTC components
//     (per-tree search with order-independent merging);
//   - dispatch fans one epoch across region shards, splitting the caller's
//     parallelism budget between the shard fan-out and each shard planner's
//     internal fan-out so the cores are not oversubscribed Shards-fold.
//
// That contract is what lets the benchmark suite (internal/benchsuite)
// compare assignment rates across machines with different core counts: the
// knob moves wall-clock and the CPU-per-instant metric, never the plan. Every
// caller resolves its setting through Workers — 0 means one goroutine per
// CPU, values below 1 mean serial, and the job count caps the answer.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a parallelism setting: 0 means one worker per available
// CPU (runtime.GOMAXPROCS), anything below 1 means serial, and positive
// values are taken as-is. n caps the answer — there is never a reason to
// start more goroutines than jobs.
func Workers(parallelism, n int) int {
	p := parallelism
	if p == 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p < 1 {
		p = 1
	}
	if p > n {
		p = n
	}
	return p
}

// Do runs fn(0) … fn(n-1), fanning out across Workers(parallelism, n)
// goroutines, and returns when all calls have finished. Jobs are handed out
// by an atomic counter, so long jobs do not serialize behind a static
// partition. With an effective worker count of 1 the calls happen inline on
// the caller's goroutine in index order — the deterministic reference path.
//
// fn must confine its writes to state owned by index i; Do adds no locking.
func Do(n, parallelism int, fn func(i int)) {
	DoWorker(n, parallelism, func(_, i int) { fn(i) })
}

// DoWorker is Do with the executing goroutine's index threaded through: fn
// receives (g, i) where g identifies the worker goroutine running job i, in
// [0, Workers(parallelism, n)). Callers use g to give each goroutine private
// scratch buffers without locking — job results must still land in state
// owned by index i, so outputs stay order-independent; only reusable scratch
// may be keyed by g. The serial path always passes g = 0.
func DoWorker(n, parallelism int, fn func(g, i int)) {
	if n <= 0 {
		return
	}
	workers := Workers(parallelism, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for g := 0; g < workers; g++ {
		go func(g int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(g, i)
			}
		}(g)
	}
	wg.Wait()
}
