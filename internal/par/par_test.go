package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	cases := []struct {
		parallelism, n, want int
	}{
		{1, 10, 1},
		{-3, 10, 1},
		{4, 10, 4},
		{4, 2, 2},
		{0, 1, 1},
	}
	for _, c := range cases {
		if got := Workers(c.parallelism, c.n); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.parallelism, c.n, got, c.want)
		}
	}
	if got := Workers(0, 1000); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0, 1000) = %d, want GOMAXPROCS", got)
	}
}

func TestDoRunsEveryIndexOnce(t *testing.T) {
	for _, p := range []int{1, 2, 8, 0} {
		const n = 500
		counts := make([]int32, n)
		Do(n, p, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("parallelism %d: index %d ran %d times", p, i, c)
			}
		}
	}
	Do(0, 4, func(int) { t.Fatal("fn called for n = 0") })
	Do(-5, 4, func(int) { t.Fatal("fn called for n < 0") })
}

func TestDoSerialIsInOrder(t *testing.T) {
	var order []int
	Do(6, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order %v not ascending", order)
		}
	}
}
