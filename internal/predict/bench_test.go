package predict

import (
	"testing"

	"repro/internal/core"
)

// BenchmarkDDGNNTrainEpoch measures one epoch of DDGNN training on a
// realistic window count (the dominant cost of the prediction component).
func BenchmarkDDGNNTrainEpoch(b *testing.B) {
	vectors := syntheticSeries(36, 3, 40, 21)
	ws := windowsFrom(vectors, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewDDGNN(DDGNNConfig{K: 3, Hidden: 16, Embed: 8, Train: TrainConfig{Epochs: 1, Seed: 21}})
		if err := m.Fit(ws); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDDGNNPredict measures one inference pass — the paper's testing
// time metric (Figs. 5d/6d).
func BenchmarkDDGNNPredict(b *testing.B) {
	vectors := syntheticSeries(36, 3, 12, 22)
	ws := windowsFrom(vectors, 8)
	m := NewDDGNN(DDGNNConfig{K: 3, Hidden: 16, Embed: 8, Train: TrainConfig{Epochs: 1, Seed: 22}})
	if err := m.Fit(ws[:2]); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(ws[len(ws)-1].Inputs)
	}
}

// BenchmarkBuildSeries measures series discretization over a city-hour of
// tasks.
func BenchmarkBuildSeries(b *testing.B) {
	cfg := testConfig()
	var tasks []*core.Task
	for i := 0; i < 5000; i++ {
		tasks = append(tasks, taskAt(i, 0.5, 0.5, float64(i)*0.7))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildSeries(cfg, tasks, 3500)
	}
}
