package predict

import (
	"repro/internal/nn"
	"repro/internal/tensor"
)

// DDGNN is the paper's Dynamic Dependency-based Graph Neural Network
// (Section III-B/III-C, Fig. 4):
//
//  1. The Demand Dependency Learning module derives two node embeddings
//     from the *current* historical window, M₁ = F_θ₁(C_t) and
//     M₂ = F_θ₂(C_t) (Eqs. 4–5), and the dynamic time-based adjacency
//     𝒜_t = SoftMax(tanh(M₁M₂ᵀ + M₂M₁ᵀ)) (Eq. 6). Unlike Graph-WaveNet's
//     static embedding product, 𝒜_t is recomputed from data at every
//     prediction instant, tracking time-varying demand dependencies.
//  2. Gated dilated causal convolutions Z = tanh(Θ₁C+b₁) ⊙ σ(Θ₂C+b₂)
//     (Eq. 7) capture per-cell temporal trends, with a residual connection
//     as in Fig. 4.
//  3. APPNP propagation Z^{h+1} = αZ⁰ + (1−α)𝒜̂_tZ^h (Eqs. 8–9) mixes each
//     node's features with its demand-dependent neighbors, where
//     𝒜̂_t = D̂^{-1/2}(𝒜_t+I)D̂^{-1/2}.
//  4. Two 1×1 convolutions with ReLU produce the K per-interval occurrence
//     probabilities via a final sigmoid.
type DDGNN struct {
	params *nn.Params
	lift   *nn.Linear
	temp1  *nn.GatedCausalConv
	temp2  *nn.GatedCausalConv
	resid  *nn.Node   // F×F residual projection
	f1, f2 *nn.Linear // the two embedding networks F_θ1, F_θ2
	hidden *nn.Linear
	out    *nn.Linear
	alpha  float64
	hops   int
	cfg    TrainConfig
}

// DDGNNConfig collects the model hyperparameters. Zero values take
// paper-guided defaults.
type DDGNNConfig struct {
	// K is the per-vector feature dimension (intervals per vector).
	K int
	// Hidden is the temporal feature width F.
	Hidden int
	// Embed is the node embedding width of the dependency module.
	Embed int
	// Alpha is the APPNP restart probability (default 0.2).
	Alpha float64
	// Hops is the number of APPNP power-iteration steps H (default 3).
	Hops  int
	Train TrainConfig
}

// NewDDGNN allocates a DDGNN for the given configuration.
func NewDDGNN(c DDGNNConfig) *DDGNN {
	if c.Hidden <= 0 {
		c.Hidden = 16
	}
	if c.Embed <= 0 {
		c.Embed = 8
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.2
	}
	if c.Hops <= 0 {
		c.Hops = 3
	}
	p := nn.NewParams(c.Train.Seed + 303)
	return &DDGNN{
		params: p,
		lift:   nn.NewLinear(p, c.K, c.Hidden),
		temp1:  nn.NewGatedCausalConv(p, c.Hidden, c.Hidden, 3, 1),
		temp2:  nn.NewGatedCausalConv(p, c.Hidden, c.Hidden, 3, 2),
		resid:  p.Xavier(c.Hidden, c.Hidden),
		f1:     nn.NewLinear(p, c.K, c.Embed),
		f2:     nn.NewLinear(p, c.K, c.Embed),
		hidden: nn.NewLinear(p, c.Hidden, c.Hidden),
		out:    nn.NewLinear(p, c.Hidden, c.K),
		alpha:  c.Alpha,
		hops:   c.Hops,
		cfg:    c.Train,
	}
}

// Name implements Predictor.
func (m *DDGNN) Name() string { return "DDGNN" }

// dependencyMatrix builds the dynamic adjacency 𝒜_t from the window's task
// data. C_t is summarized as the mean occurrence per cell over the window,
// keeping the module O(M·K) per instant.
func (m *DDGNN) dependencyMatrix(inputs []*tensor.Matrix) *nn.Node {
	ct := tensor.New(inputs[0].Rows, inputs[0].Cols)
	for _, x := range inputs {
		tensor.AddInPlace(ct, x)
	}
	ct = tensor.Scale(ct, 1/float64(len(inputs)))
	m1 := m.f1.Forward(nn.Leaf(ct)) // Eq. 4
	m2 := m.f2.Forward(nn.Leaf(ct)) // Eq. 5
	sym := nn.Add(nn.MatMul(m1, nn.Transpose(m2)), nn.MatMul(m2, nn.Transpose(m1)))
	return nn.SoftmaxRows(nn.Tanh(sym)) // Eq. 6
}

func (m *DDGNN) forward(inputs []*tensor.Matrix) *nn.Node {
	xs := make([]*nn.Node, len(inputs))
	for i, x := range inputs {
		xs[i] = m.lift.Forward(nn.Leaf(x))
	}
	skip := xs[len(xs)-1]
	xs = m.temp1.Forward(xs)
	xs = m.temp2.Forward(xs)
	// Residual connection (Fig. 4's "+" merging conv output with input).
	z := nn.Add(xs[len(xs)-1], nn.MatMul(skip, m.resid))

	adj := nn.NormalizeAdjacency(m.dependencyMatrix(inputs))
	z = nn.APPNP(z, adj, m.alpha, m.hops) // Eqs. 8–9, ends in ReLU
	h := nn.ReLU(m.hidden.Forward(z))
	return nn.Sigmoid(m.out.Forward(h))
}

// Fit implements Predictor.
func (m *DDGNN) Fit(train []Window) error {
	return fitModel(m.params, m.cfg, func(w Window) *nn.Node { return m.forward(w.Inputs) }, train)
}

// Predict implements Predictor.
func (m *DDGNN) Predict(inputs []*tensor.Matrix) *tensor.Matrix {
	return m.forward(inputs).Val
}

// Adjacency exposes the current dynamic dependency matrix 𝒜_t for a window,
// for inspection and the ablation study.
func (m *DDGNN) Adjacency(inputs []*tensor.Matrix) *tensor.Matrix {
	return m.dependencyMatrix(inputs).Val
}

// ParamCount returns the number of trainable scalars, for diagnostics.
func (m *DDGNN) ParamCount() int { return m.params.Count() }

// StaticAdjacencyDDGNN is the ablation variant used by
// BenchmarkAblationStaticAdjacency: identical to DDGNN but propagating over
// the identity adjacency (no learned dependencies). It quantifies how much
// of DDGNN's accuracy comes from the Demand Dependency Learning module.
type StaticAdjacencyDDGNN struct {
	*DDGNN
}

// NewStaticAdjacencyDDGNN wraps a DDGNN with identity propagation.
func NewStaticAdjacencyDDGNN(c DDGNNConfig) *StaticAdjacencyDDGNN {
	return &StaticAdjacencyDDGNN{DDGNN: NewDDGNN(c)}
}

// Name implements Predictor.
func (m *StaticAdjacencyDDGNN) Name() string { return "DDGNN-static" }

func (m *StaticAdjacencyDDGNN) forward(inputs []*tensor.Matrix) *nn.Node {
	xs := make([]*nn.Node, len(inputs))
	for i, x := range inputs {
		xs[i] = m.lift.Forward(nn.Leaf(x))
	}
	skip := xs[len(xs)-1]
	xs = m.temp1.Forward(xs)
	xs = m.temp2.Forward(xs)
	z := nn.Add(xs[len(xs)-1], nn.MatMul(skip, m.resid))
	adj := nn.Leaf(tensor.Eye(inputs[0].Rows))
	z = nn.APPNP(z, adj, m.alpha, m.hops)
	h := nn.ReLU(m.hidden.Forward(z))
	return nn.Sigmoid(m.out.Forward(h))
}

// Fit implements Predictor.
func (m *StaticAdjacencyDDGNN) Fit(train []Window) error {
	return fitModel(m.params, m.cfg, func(w Window) *nn.Node { return m.forward(w.Inputs) }, train)
}

// Predict implements Predictor.
func (m *StaticAdjacencyDDGNN) Predict(inputs []*tensor.Matrix) *tensor.Matrix {
	return m.forward(inputs).Val
}
