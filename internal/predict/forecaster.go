package predict

import (
	"repro/internal/core"
	"repro/internal/tensor"
)

// Forecaster turns a trained Predictor into a stream-time source of virtual
// tasks: at each prediction instant it rebuilds the task multivariate time
// series from the tasks published so far, predicts the next vector, and
// materializes cells×intervals whose probability clears the threshold.
type Forecaster struct {
	Model Predictor
	Cfg   SeriesConfig
	// History is the window length (in vectors) fed to the model.
	History int
	// Threshold is the materialization threshold (paper: 0.85).
	Threshold float64
	// ValidTime is the validity e−p given to virtual tasks, matching the
	// scenario's task validity so planners treat them like real demand.
	ValidTime float64
	// Horizon is the forecasting distance in vectors (default 1: the next
	// vector). Set 2 to predict one full interval ahead, giving workers
	// travel lead time; the model must be trained at the same horizon.
	Horizon int

	nextID int
}

// NewForecaster wraps a trained model. idStart must be negative so virtual
// ids never collide with real task ids.
func NewForecaster(model Predictor, cfg SeriesConfig, history int, threshold, validTime float64) *Forecaster {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	return &Forecaster{
		Model:     model,
		Cfg:       cfg,
		History:   history,
		Threshold: threshold,
		ValidTime: validTime,
		nextID:    -1,
	}
}

// Virtuals predicts the demand vector that begins at or after now and
// returns the corresponding virtual tasks. published must contain every
// real task published before now (later tasks are ignored). It returns nil
// until enough history has accumulated.
func (f *Forecaster) Virtuals(published []*core.Task, now float64) []*core.Task {
	probs, intervalStart, ok := f.forecast(published, now)
	if !ok {
		return nil
	}
	out := VirtualTasks(probs, f.Cfg, intervalStart, f.Threshold, f.ValidTime, f.nextID)
	f.nextID -= len(out)
	return out
}

// forecast runs the model once: it returns the predicted probability matrix
// and the wall-clock start of the interval it describes, or ok=false until
// enough history has accumulated. Virtuals and the scenario sampler share it
// so a sampled forecast never predicts twice.
func (f *Forecaster) forecast(published []*core.Task, now float64) (probs *tensor.Matrix, intervalStart float64, ok bool) {
	s := BuildSeries(f.Cfg, published, now)
	if s.P() < f.History {
		return nil, 0, false
	}
	window := s.Vectors[s.P()-f.History:]
	probs = f.Model.Predict(window)
	horizon := f.Horizon
	if horizon <= 0 {
		horizon = 1
	}
	intervalStart = f.Cfg.T0 + float64(s.P()+horizon-1)*f.Cfg.VectorSpan()
	return probs, intervalStart, true
}

// Span returns the prediction cadence: one vector span kΔT.
func (f *Forecaster) Span() float64 { return f.Cfg.VectorSpan() }

// HistorySpan returns how far back published tasks still influence a
// prediction: the History-vector window plus one vector span of slack for
// the flooring of partial vectors. Long-running callers may discard older
// tasks — BuildSeries zeroes their vectors, but Predict never reads past the
// window, so the forecast is unchanged.
func (f *Forecaster) HistorySpan() float64 {
	return float64(f.History+1) * f.Cfg.VectorSpan()
}
