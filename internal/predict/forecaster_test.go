package predict

import (
	"testing"

	"repro/internal/core"
	"repro/internal/tensor"
)

// constModel always predicts the same probability everywhere.
type constModel struct{ p float64 }

func (c *constModel) Name() string         { return "const" }
func (c *constModel) Fit(_ []Window) error { return nil }
func (c *constModel) Predict(in []*tensor.Matrix) *tensor.Matrix {
	out := tensor.New(in[0].Rows, in[0].Cols)
	for i := range out.Data {
		out.Data[i] = c.p
	}
	return out
}

func forecasterFixture(p float64) (*Forecaster, []*core.Task) {
	cfg := testConfig() // 2x2 grid, K=3, deltaT=5 => span 15
	var tasks []*core.Task
	for i := 0; i < 20; i++ {
		tasks = append(tasks, taskAt(i, 0.5, 0.5, float64(i*10)))
	}
	f := NewForecaster(&constModel{p: p}, cfg, 3, 0.85, 40)
	return f, tasks
}

func TestForecasterNeedsHistory(t *testing.T) {
	f, tasks := forecasterFixture(0.99)
	// At t=30 only 2 complete vectors exist (< History 3): no predictions.
	if got := f.Virtuals(tasks, 30); got != nil {
		t.Errorf("expected nil before enough history, got %d tasks", len(got))
	}
}

func TestForecasterEmitsAheadOfNow(t *testing.T) {
	f, tasks := forecasterFixture(0.99)
	now := 100.0
	vts := f.Virtuals(tasks, now)
	if len(vts) == 0 {
		t.Fatal("confident model should emit virtual tasks")
	}
	// Horizon 1 (default): the predicted vector starts at the end of the
	// last complete vector, i.e. within one span of now.
	span := f.Cfg.VectorSpan()
	for _, v := range vts {
		if !v.Virtual || v.ID >= 0 {
			t.Fatal("virtual tasks must be marked and negatively numbered")
		}
		if v.Pub < now-span || v.Pub > now+span {
			t.Errorf("pub %v outside the next interval around now=%v", v.Pub, now)
		}
		if v.Exp-v.Pub != 40 {
			t.Errorf("validity = %v, want 40", v.Exp-v.Pub)
		}
	}
}

func TestForecasterHorizonShiftsInterval(t *testing.T) {
	f1, tasks := forecasterFixture(0.99)
	f2, _ := forecasterFixture(0.99)
	f2.Horizon = 2
	now := 100.0
	a := f1.Virtuals(tasks, now)
	b := f2.Virtuals(tasks, now)
	if len(a) == 0 || len(b) == 0 {
		t.Fatal("both horizons should emit")
	}
	span := f1.Cfg.VectorSpan()
	if b[0].Pub-a[0].Pub != span {
		t.Errorf("horizon 2 should shift predictions one span: %v vs %v", a[0].Pub, b[0].Pub)
	}
}

func TestForecasterSilentWhenUnconfident(t *testing.T) {
	f, tasks := forecasterFixture(0.2) // below the 0.85 threshold
	if got := f.Virtuals(tasks, 100); len(got) != 0 {
		t.Errorf("unconfident model emitted %d tasks", len(got))
	}
}

func TestForecasterIDsNeverRepeat(t *testing.T) {
	f, tasks := forecasterFixture(0.99)
	seen := map[int]bool{}
	for _, now := range []float64{60, 80, 100, 120} {
		for _, v := range f.Virtuals(tasks, now) {
			if seen[v.ID] {
				t.Fatalf("virtual id %d reused", v.ID)
			}
			seen[v.ID] = true
		}
	}
}

func TestForecasterSpan(t *testing.T) {
	f, _ := forecasterFixture(0.5)
	if f.Span() != 15 {
		t.Errorf("Span = %v, want k*deltaT = 15", f.Span())
	}
}

func TestForecasterDefaultThreshold(t *testing.T) {
	cfg := testConfig()
	f := NewForecaster(&constModel{p: 0.9}, cfg, 3, 0, 40)
	if f.Threshold != DefaultThreshold {
		t.Errorf("threshold = %v, want default %v", f.Threshold, DefaultThreshold)
	}
}

func TestWindowsAhead(t *testing.T) {
	cfg := testConfig()
	var tasks []*core.Task
	for i := 0; i < 20; i++ {
		tasks = append(tasks, taskAt(i, 0.5, 0.5, float64(i*15)))
	}
	s := BuildSeries(cfg, tasks, 300) // 20 vectors
	h1 := s.WindowsAhead(4, 1, 1)
	h2 := s.WindowsAhead(4, 1, 2)
	if len(h2) != len(h1)-1 {
		t.Errorf("horizon 2 should lose one window: %d vs %d", len(h2), len(h1))
	}
	for _, w := range h2 {
		if s.Vectors[w.Index] != w.Target {
			t.Fatal("index/target mismatch")
		}
		// Target is two steps after the last input.
		lastInput := w.Inputs[len(w.Inputs)-1]
		found := -1
		for p, v := range s.Vectors {
			if v == lastInput {
				found = p
			}
		}
		if w.Index != found+2 {
			t.Fatalf("target at %d, last input at %d", w.Index, found)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("horizon 0 should panic")
		}
	}()
	s.WindowsAhead(4, 1, 0)
}
