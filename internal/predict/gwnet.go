package predict

import (
	"repro/internal/nn"
	"repro/internal/tensor"
)

// GraphWaveNet is baseline (ii) of Section V-B.1: a spatial-temporal graph
// convolutional network integrating diffusion graph convolutions with 1-D
// dilated convolutions (Wu et al., IJCAI 2019). Its defining traits kept
// here:
//
//   - a *static* self-adaptive adjacency Ã = SoftMax(ReLU(E₁E₂ᵀ)) learned
//     from free node embeddings (it cannot change between prediction
//     instants — the gap DDGNN closes);
//   - gated 1-D dilated causal convolutions for temporal trends;
//   - forward and backward diffusion steps ÃZW₁ + ÃᵀZW₂ + ZW₀.
type GraphWaveNet struct {
	params *nn.Params
	cells  int
	lift   *nn.Linear
	temp1  *nn.GatedCausalConv
	temp2  *nn.GatedCausalConv
	e1, e2 *nn.Node // node embeddings for the self-adaptive adjacency
	wFwd   *nn.Node
	wBwd   *nn.Node
	wSelf  *nn.Node
	hidden *nn.Linear
	out    *nn.Linear
	cfg    TrainConfig
}

// NewGraphWaveNet allocates the baseline for m grid cells with feature
// dimension k, hidden width f, and embedding size e.
func NewGraphWaveNet(m, k, f, e int, cfg TrainConfig) *GraphWaveNet {
	p := nn.NewParams(cfg.Seed + 202)
	return &GraphWaveNet{
		params: p,
		cells:  m,
		lift:   nn.NewLinear(p, k, f),
		temp1:  nn.NewGatedCausalConv(p, f, f, 3, 1),
		temp2:  nn.NewGatedCausalConv(p, f, f, 3, 2),
		// Embeddings start at unit scale so the initial softmax adjacency
		// is peaky; a near-uniform adjacency over-smooths every cell's
		// features and stalls learning.
		e1:     p.Matrix(m, e, 1.0),
		e2:     p.Matrix(m, e, 1.0),
		wFwd:   p.Xavier(f, f),
		wBwd:   p.Xavier(f, f),
		wSelf:  p.Xavier(f, f),
		hidden: nn.NewLinear(p, f, f),
		out:    nn.NewLinear(p, f, k),
		cfg:    cfg,
	}
}

// Name implements Predictor.
func (m *GraphWaveNet) Name() string { return "Graph-WaveNet" }

// adaptiveAdjacency returns the learned static adjacency Ã.
func (m *GraphWaveNet) adaptiveAdjacency() *nn.Node {
	return nn.SoftmaxRows(nn.ReLU(nn.MatMul(m.e1, nn.Transpose(m.e2))))
}

func (m *GraphWaveNet) forward(inputs []*tensor.Matrix) *nn.Node {
	xs := make([]*nn.Node, len(inputs))
	for i, x := range inputs {
		xs[i] = m.lift.Forward(nn.Leaf(x))
	}
	xs = m.temp1.Forward(xs)
	xs = m.temp2.Forward(xs)
	z := xs[len(xs)-1] // last-step features, M×F

	adj := m.adaptiveAdjacency()
	diffused := nn.Add(
		nn.Add(nn.MatMul(adj, nn.MatMul(z, m.wFwd)), nn.MatMul(nn.Transpose(adj), nn.MatMul(z, m.wBwd))),
		nn.MatMul(z, m.wSelf),
	)
	h := nn.ReLU(m.hidden.Forward(nn.ReLU(diffused)))
	return nn.Sigmoid(m.out.Forward(h))
}

// Fit implements Predictor.
func (m *GraphWaveNet) Fit(train []Window) error {
	return fitModel(m.params, m.cfg, func(w Window) *nn.Node { return m.forward(w.Inputs) }, train)
}

// Predict implements Predictor.
func (m *GraphWaveNet) Predict(inputs []*tensor.Matrix) *tensor.Matrix {
	return m.forward(inputs).Val
}

// ParamCount returns the number of trainable scalars, for diagnostics.
func (m *GraphWaveNet) ParamCount() int { return m.params.Count() }
