package predict

import (
	"repro/internal/nn"
	"repro/internal/tensor"
)

// LSTMPredictor is baseline (i) of Section V-B.1: a Long Short-Term Memory
// model with a fully connected output layer and a sigmoid activation.
// Weights are shared across cells; each grid cell is one row of the batch,
// so the model sees no cross-cell information — exactly the limitation the
// paper exploits to motivate graph-based predictors.
type LSTMPredictor struct {
	params *nn.Params
	cell   *nn.LSTMCell
	out    *nn.Linear
	cfg    TrainConfig
}

// NewLSTMPredictor allocates the baseline with the given feature dimension K
// and hidden width.
func NewLSTMPredictor(k, hidden int, cfg TrainConfig) *LSTMPredictor {
	p := nn.NewParams(cfg.Seed + 101)
	return &LSTMPredictor{
		params: p,
		cell:   nn.NewLSTMCell(p, k, hidden),
		out:    nn.NewLinear(p, hidden, k),
		cfg:    cfg,
	}
}

// Name implements Predictor.
func (m *LSTMPredictor) Name() string { return "LSTM" }

func (m *LSTMPredictor) forward(inputs []*tensor.Matrix) *nn.Node {
	batch := inputs[0].Rows
	h, c := m.cell.InitState(batch)
	for _, x := range inputs {
		h, c = m.cell.Step(nn.Leaf(x), h, c)
	}
	return nn.Sigmoid(m.out.Forward(h))
}

// Fit implements Predictor.
func (m *LSTMPredictor) Fit(train []Window) error {
	return fitModel(m.params, m.cfg, func(w Window) *nn.Node { return m.forward(w.Inputs) }, train)
}

// Predict implements Predictor.
func (m *LSTMPredictor) Predict(inputs []*tensor.Matrix) *tensor.Matrix {
	return m.forward(inputs).Val
}

// ParamCount returns the number of trainable scalars, for diagnostics.
func (m *LSTMPredictor) ParamCount() int { return m.params.Count() }
