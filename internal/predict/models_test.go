package predict

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// syntheticSeries builds a series over m cells with a deterministic
// cross-cell dependency: activity in cell 0 at vector p forces activity in
// cell 1 at vector p+1. Cell 0 itself follows a period-3 pattern, and the
// remaining cells carry seeded noise.
func syntheticSeries(m, k, vectors int, seed int64) []*tensor.Matrix {
	r := rand.New(rand.NewSource(seed))
	out := make([]*tensor.Matrix, vectors)
	for p := 0; p < vectors; p++ {
		out[p] = tensor.New(m, k)
	}
	for p := 0; p < vectors; p++ {
		if p%3 == 0 {
			for j := 0; j < k; j++ {
				out[p].Set(0, j, 1)
			}
			if p+1 < vectors {
				for j := 0; j < k; j++ {
					out[p+1].Set(1, j, 1)
				}
			}
		}
		for c := 2; c < m; c++ {
			for j := 0; j < k; j++ {
				if r.Float64() < 0.15 {
					out[p].Set(c, j, 1)
				}
			}
		}
	}
	return out
}

func windowsFrom(vectors []*tensor.Matrix, history int) []Window {
	var ws []Window
	for end := history; end < len(vectors); end++ {
		ws = append(ws, Window{Inputs: vectors[end-history : end], Target: vectors[end], Index: end})
	}
	return ws
}

func trainTestAP(t *testing.T, p Predictor, train, test []Window) float64 {
	t.Helper()
	res, err := Evaluate(p, train, test)
	if err != nil {
		t.Fatalf("%s: %v", p.Name(), err)
	}
	if math.IsNaN(res.AP) || res.AP < 0 || res.AP > 1 {
		t.Fatalf("%s: AP out of range: %v", p.Name(), res.AP)
	}
	if res.TrainTime <= 0 {
		t.Errorf("%s: train time not measured", p.Name())
	}
	return res.AP
}

func TestLSTMPredictorLearnsPeriodicPattern(t *testing.T) {
	vectors := syntheticSeries(4, 2, 60, 1)
	ws := windowsFrom(vectors, 6)
	train, test := SplitWindows(ws, 0.8)
	m := NewLSTMPredictor(2, 12, TrainConfig{Epochs: 25, LR: 0.02, Seed: 1})
	ap := trainTestAP(t, m, train, test)
	// Cell 0's period-3 pattern is visible to the LSTM, so it must beat
	// the ~0.3 random prevalence baseline comfortably.
	if ap < 0.5 {
		t.Errorf("LSTM AP = %v, want ≥ 0.5 on a learnable pattern", ap)
	}
	if m.ParamCount() == 0 {
		t.Error("LSTM has no parameters")
	}
}

func TestGraphWaveNetLearns(t *testing.T) {
	vectors := syntheticSeries(4, 2, 60, 2)
	ws := windowsFrom(vectors, 6)
	train, test := SplitWindows(ws, 0.8)
	m := NewGraphWaveNet(4, 2, 10, 4, TrainConfig{Epochs: 25, LR: 0.02, Seed: 2})
	ap := trainTestAP(t, m, train, test)
	if ap < 0.5 {
		t.Errorf("Graph-WaveNet AP = %v, want ≥ 0.5", ap)
	}
	if m.ParamCount() == 0 {
		t.Error("Graph-WaveNet has no parameters")
	}
}

func TestDDGNNLearnsCrossCellDependency(t *testing.T) {
	vectors := syntheticSeries(4, 2, 60, 3)
	ws := windowsFrom(vectors, 6)
	train, test := SplitWindows(ws, 0.8)
	m := NewDDGNN(DDGNNConfig{K: 2, Hidden: 12, Embed: 6, Train: TrainConfig{Epochs: 25, LR: 0.02, Seed: 3}})
	ap := trainTestAP(t, m, train, test)
	if ap < 0.55 {
		t.Errorf("DDGNN AP = %v, want ≥ 0.55 with cross-cell signal", ap)
	}
	if m.ParamCount() == 0 {
		t.Error("DDGNN has no parameters")
	}
}

func TestDDGNNAdjacencyIsRowStochastic(t *testing.T) {
	m := NewDDGNN(DDGNNConfig{K: 2, Train: TrainConfig{Seed: 4}})
	inputs := syntheticSeries(5, 2, 6, 4)
	adj := m.Adjacency(inputs)
	if adj.Rows != 5 || adj.Cols != 5 {
		t.Fatalf("adjacency shape %dx%d", adj.Rows, adj.Cols)
	}
	for i := 0; i < adj.Rows; i++ {
		sum := 0.0
		for j := 0; j < adj.Cols; j++ {
			v := adj.At(i, j)
			if v < 0 || v > 1 {
				t.Fatalf("adjacency entry out of range: %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("adjacency row %d sums to %v", i, sum)
		}
	}
}

func TestDDGNNAdjacencyIsDynamic(t *testing.T) {
	// Different windows must produce different dependency matrices — the
	// property that distinguishes DDGNN from Graph-WaveNet.
	m := NewDDGNN(DDGNNConfig{K: 2, Train: TrainConfig{Seed: 5}})
	a := syntheticSeries(4, 2, 6, 6)
	b := syntheticSeries(4, 2, 6, 7)
	// Perturb b to guarantee a different summary.
	b[0].Set(3, 1, 1)
	b[2].Set(2, 0, 1)
	adjA := m.Adjacency(a)
	adjB := m.Adjacency(b)
	diff := 0.0
	for i := range adjA.Data {
		diff += math.Abs(adjA.Data[i] - adjB.Data[i])
	}
	if diff < 1e-9 {
		t.Error("adjacency did not change across windows; dependency module is static")
	}
}

func TestPredictionsAreProbabilities(t *testing.T) {
	vectors := syntheticSeries(4, 2, 20, 8)
	ws := windowsFrom(vectors, 6)
	models := []Predictor{
		NewLSTMPredictor(2, 8, TrainConfig{Epochs: 2, Seed: 8}),
		NewGraphWaveNet(4, 2, 8, 4, TrainConfig{Epochs: 2, Seed: 8}),
		NewDDGNN(DDGNNConfig{K: 2, Hidden: 8, Embed: 4, Train: TrainConfig{Epochs: 2, Seed: 8}}),
		NewStaticAdjacencyDDGNN(DDGNNConfig{K: 2, Hidden: 8, Embed: 4, Train: TrainConfig{Epochs: 2, Seed: 8}}),
	}
	for _, m := range models {
		if err := m.Fit(ws[:5]); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		out := m.Predict(ws[6].Inputs)
		if out.Rows != 4 || out.Cols != 2 {
			t.Fatalf("%s: output shape %dx%d", m.Name(), out.Rows, out.Cols)
		}
		for _, v := range out.Data {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("%s: prediction %v not a probability", m.Name(), v)
			}
		}
	}
}

func TestPredictorsDeterministic(t *testing.T) {
	vectors := syntheticSeries(4, 2, 30, 9)
	ws := windowsFrom(vectors, 6)
	train, _ := SplitWindows(ws, 0.8)
	run := func() *tensor.Matrix {
		m := NewDDGNN(DDGNNConfig{K: 2, Hidden: 8, Embed: 4, Train: TrainConfig{Epochs: 3, Seed: 10}})
		if err := m.Fit(train); err != nil {
			t.Fatal(err)
		}
		return m.Predict(ws[len(ws)-1].Inputs)
	}
	a, b := run(), run()
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same seed must give identical predictions")
		}
	}
}

func TestEvaluateMeasuresPerWindowTestTime(t *testing.T) {
	vectors := syntheticSeries(3, 2, 30, 11)
	ws := windowsFrom(vectors, 5)
	train, test := SplitWindows(ws, 0.7)
	m := NewLSTMPredictor(2, 6, TrainConfig{Epochs: 1, Seed: 11})
	res, err := Evaluate(m, train, test)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != len(test)*3*2 {
		t.Errorf("scores = %d, want %d", len(res.Scores), len(test)*3*2)
	}
	if len(res.Scores) != len(res.Labels) {
		t.Error("scores/labels length mismatch")
	}
	if res.Model != "LSTM" {
		t.Errorf("model name = %q", res.Model)
	}
}

func TestTrainConfigDefaults(t *testing.T) {
	c := TrainConfig{}.withDefaults()
	if c.Epochs <= 0 || c.LR <= 0 || c.ClipNorm <= 0 {
		t.Errorf("defaults not applied: %+v", c)
	}
	// Explicit values survive.
	c = TrainConfig{Epochs: 7, LR: 0.5, ClipNorm: 2}.withDefaults()
	if c.Epochs != 7 || c.LR != 0.5 || c.ClipNorm != 2 {
		t.Errorf("explicit values clobbered: %+v", c)
	}
}
