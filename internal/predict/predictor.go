package predict

import (
	"math/rand"
	"time"

	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Predictor is a trainable one-step-ahead task demand model. Fit trains on
// the given windows; Predict maps a history window (a slice of M×K binary
// matrices) to an M×K matrix of occurrence probabilities for the next
// vector.
type Predictor interface {
	Name() string
	Fit(train []Window) error
	Predict(inputs []*tensor.Matrix) *tensor.Matrix
}

// TrainConfig bundles the optimization hyperparameters shared by the three
// models. Zero values are replaced by defaults.
type TrainConfig struct {
	Epochs   int
	LR       float64
	ClipNorm float64
	// WeightDecay is the decoupled L2 shrinkage passed to Adam.
	WeightDecay float64
	Seed        int64
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Epochs <= 0 {
		c.Epochs = 20
	}
	if c.LR <= 0 {
		c.LR = 0.01
	}
	if c.ClipNorm <= 0 {
		c.ClipNorm = 5
	}
	return c
}

// fitModel runs the shared training loop: one pass over the windows per
// epoch in a deterministically shuffled order, BCE loss, gradient clipping,
// Adam.
func fitModel(params *nn.Params, cfg TrainConfig, forward func(Window) *nn.Node, train []Window) error {
	cfg = cfg.withDefaults()
	opt := nn.NewAdam(cfg.LR)
	opt.WeightDecay = cfg.WeightDecay
	rng := rand.New(rand.NewSource(cfg.Seed + 909))
	order := make([]int, len(train))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, idx := range order {
			w := train[idx]
			params.ZeroGrads()
			pred := forward(w)
			loss := nn.BCE(pred, w.Target)
			nn.Backward(loss)
			nn.ClipGrads(params.All(), cfg.ClipNorm)
			opt.Step(params.All())
		}
	}
	return nil
}

// Evaluate trains p on the train windows and scores it on the test windows,
// measuring wall-clock training and inference (testing) time, and computing
// Average Precision per the paper's protocol.
func Evaluate(p Predictor, train, test []Window) (EvalResult, error) {
	res := EvalResult{Model: p.Name()}
	start := time.Now()
	if err := p.Fit(train); err != nil {
		return res, err
	}
	res.TrainTime = time.Since(start)

	start = time.Now()
	for _, w := range test {
		probs := p.Predict(w.Inputs)
		for i, v := range probs.Data {
			res.Scores = append(res.Scores, v)
			res.Labels = append(res.Labels, w.Target.Data[i] > 0.5)
		}
	}
	res.TestTime = time.Since(start)
	if len(test) > 0 {
		res.TestTime /= time.Duration(len(test))
	}
	res.AP = metrics.AveragePrecision(res.Scores, res.Labels)
	return res, nil
}
