package predict

import (
	"math"
	"math/rand"

	"repro/internal/core"
)

// sampledIDBase is where sampled-only virtual-task ids start, counting down.
// Point-forecast virtuals take small negative ids from the wrapped
// forecaster's counter; starting the sampled counter this far below keeps the
// two ranges disjoint for any realistic run length, so a task's id alone
// still identifies which materialization path produced it.
const sampledIDBase = -(1 << 40)

// DefaultSamples is the number of demand scenarios a sampled forecast draws
// when the caller does not choose: the point forecast plus four Bernoulli
// draws. Tuned on the bursty archetypes at 5x density, where K=5 is the
// smallest sample set whose live assignment rate beats the point-forecast
// planner on both event-spike and rush-hour (docs/PLANNERS.md) — fewer
// draws under-represent sub-threshold demand mass there, while larger K
// pays linearly in planning cost for no further rate gain.
const DefaultSamples = 5

// ScenarioSampler turns a point forecaster into a scenario-sampling demand
// source: at each forecast instant it draws K demand futures from the
// model's predictive distribution and returns the union of their virtual
// tasks, tagging each task with the set of scenarios that contain it
// (core.Task.SampleBits).
//
// Scenario 0 is always the thresholded point forecast — exactly the task set
// (and ids) the wrapped Forecaster would return — so K=1 degenerates to
// point-forecast planning byte for byte. Scenarios 1..K-1 are independent
// Bernoulli draws per (cell, interval) at the model's predicted probability:
// a pair the point forecast discards at p=0.6 still appears in roughly 60% of
// scenarios, which is precisely the demand mass point forecasts mislead on.
//
// Tasks present in every scenario keep SampleBits == 0 (the "all scenarios"
// encoding shared with real tasks), so planners unaware of sampling — and
// the SSP planner's fast path — see a plain point forecast. Sampled-only
// tasks carry the scenario bitmask and ids descending from sampledIDBase.
//
// Each draw uses rand.New(rand.NewSource(seed)) with a seed derived from
// (Seed, scenario index, forecast instant), so the sample set is a pure
// function of configuration and history: byte-identical across runs,
// machines, and every parallelism level. Virtuals must be called with a
// non-decreasing clock (it is: both the stream machine and the dispatcher
// forecast at cadence under their epoch serialization).
type ScenarioSampler struct {
	F *Forecaster
	// Samples is the number of scenarios K drawn per forecast instant
	// (default DefaultSamples; 1 = the point forecast alone).
	Samples int
	// Seed anchors the per-(scenario, instant) sampling streams.
	Seed int64

	nextSampledID int
}

// NewScenarioSampler wraps a point forecaster. samples ≤ 0 selects
// DefaultSamples.
func NewScenarioSampler(f *Forecaster, samples int, seed int64) *ScenarioSampler {
	if samples <= 0 {
		samples = DefaultSamples
	}
	return &ScenarioSampler{F: f, Samples: samples, Seed: seed, nextSampledID: sampledIDBase}
}

// Virtuals implements stream.Forecaster: the union of K sampled demand
// futures, scenario-tagged via SampleBits.
func (sc *ScenarioSampler) Virtuals(published []*core.Task, now float64) []*core.Task {
	probs, intervalStart, ok := sc.F.forecast(published, now)
	if !ok {
		return nil
	}
	// Scenario 0: the point forecast, on the wrapped forecaster's id counter
	// so the K=1 output is indistinguishable from an unsampled forecaster.
	out := VirtualTasks(probs, sc.F.Cfg, intervalStart, sc.F.Threshold, sc.F.ValidTime, sc.F.nextID)
	sc.F.nextID -= len(out)
	k := sc.Samples
	if k <= 0 {
		k = DefaultSamples
	}
	if k > 64 {
		k = 64 // SampleBits is a uint64 bitmask
	}
	if k == 1 {
		return out
	}

	// Draw scenarios 1..K-1. drawn[(cell, interval)] accumulates the mask of
	// sampling scenarios that materialized the pair; membership of scenario 0
	// is decided by the threshold, exactly as above.
	cols := probs.Cols
	drawn := make(map[int]uint64)
	for s := 1; s < k; s++ {
		rng := rand.New(rand.NewSource(sampleSeed(sc.Seed, s, intervalStart)))
		// Cell-major over the dense matrix: one Float64 per (cell, interval)
		// in a fixed order, so the stream consumed is independent of which
		// pairs fire.
		for cell := 0; cell < probs.Rows; cell++ {
			for j := 0; j < cols; j++ {
				if rng.Float64() < probs.At(cell, j) {
					drawn[cell*cols+j] |= 1 << s
				}
			}
		}
	}

	// Fold the draws into the union. Pairs the point forecast materialized
	// stay on their scenario-0 task: if every sampling scenario also drew the
	// pair the mask would be all-ones — semantically "all scenarios", which
	// SampleBits == 0 already encodes, so the task is left untagged and the
	// degenerate no-disagreement forecast stays byte-identical to the point
	// forecast. Otherwise the task carries bit 0 plus the drawing scenarios.
	all := uint64(1)<<k - 1
	for _, v := range out {
		key := v.Cell*cols + vIndex(v, intervalStart, sc.F.Cfg.DeltaT)
		mask := 1 | drawn[key]
		delete(drawn, key)
		if mask != all {
			v.SampleBits = mask
		}
	}
	// Sampled-only pairs become fresh tasks in deterministic (cell, interval)
	// order on the sampled id counter.
	for cell := 0; cell < probs.Rows; cell++ {
		for j := 0; j < cols; j++ {
			mask, hit := drawn[cell*cols+j]
			if !hit {
				continue
			}
			pub := intervalStart + float64(j)*sc.F.Cfg.DeltaT
			out = append(out, &core.Task{
				ID:         sc.nextSampledID,
				Loc:        sc.F.Cfg.Grid.Center(cell),
				Pub:        pub,
				Exp:        pub + sc.F.ValidTime,
				Virtual:    true,
				Cell:       cell,
				SampleBits: mask,
			})
			sc.nextSampledID--
		}
	}
	return out
}

// vIndex recovers a point-forecast task's interval index from its
// publication time (the inverse of VirtualTasks' pub computation).
func vIndex(v *core.Task, intervalStart, deltaT float64) int {
	return int((v.Pub-intervalStart)/deltaT + 0.5)
}

// sampleSeed derives the per-(scenario, instant) stream seed with a
// splitmix64 finalizer, so adjacent scenarios and instants land on
// uncorrelated streams.
func sampleSeed(seed int64, scenario int, intervalStart float64) int64 {
	x := uint64(seed) ^ uint64(scenario)*0x9e3779b97f4a7c15 ^ math.Float64bits(intervalStart)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

// Span implements stream.Forecaster.
func (sc *ScenarioSampler) Span() float64 { return sc.F.Span() }

// HistorySpan implements stream.HistoryBounded: sampling reads the same
// model window the point forecast does.
func (sc *ScenarioSampler) HistorySpan() float64 { return sc.F.HistorySpan() }
