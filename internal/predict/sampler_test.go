package predict

import (
	"testing"

	"repro/internal/core"
	"repro/internal/tensor"
)

// mixedModel predicts a distinct probability per cell so the sample set mixes
// certain, likely, and unlikely demand: cell 0 clears the 0.85 threshold
// (point forecast fires), cells 1–2 sit mid-range (sampling territory), and
// cell 3 is near-impossible.
type mixedModel struct{}

func (mixedModel) Name() string         { return "mixed" }
func (mixedModel) Fit(_ []Window) error { return nil }
func (mixedModel) Predict(in []*tensor.Matrix) *tensor.Matrix {
	out := tensor.New(in[0].Rows, in[0].Cols)
	probs := []float64{0.99, 0.6, 0.4, 0.01}
	for cell := 0; cell < out.Rows; cell++ {
		for j := 0; j < out.Cols; j++ {
			out.Set(cell, j, probs[cell%len(probs)])
		}
	}
	return out
}

func samplerFixture(model Predictor, samples int, seed int64) (*ScenarioSampler, []*core.Task) {
	cfg := testConfig()
	var tasks []*core.Task
	for i := 0; i < 20; i++ {
		tasks = append(tasks, taskAt(i, 0.5, 0.5, float64(i*10)))
	}
	f := NewForecaster(model, cfg, 3, 0.85, 40)
	return NewScenarioSampler(f, samples, seed), tasks
}

// sameVirtuals asserts two virtual-task slices are byte-identical in the
// fields planning reads.
func sameVirtuals(t *testing.T, a, b []*core.Task) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("task counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.ID != y.ID || x.Loc != y.Loc || x.Pub != y.Pub || x.Exp != y.Exp ||
			x.Cell != y.Cell || x.Virtual != y.Virtual || x.SampleBits != y.SampleBits {
			t.Fatalf("task %d differs: %+v vs %+v", i, *x, *y)
		}
	}
}

func TestSamplerDeterministicAcrossRuns(t *testing.T) {
	s1, tasks := samplerFixture(mixedModel{}, 4, 7)
	s2, _ := samplerFixture(mixedModel{}, 4, 7)
	emitted := 0
	for _, now := range []float64{60, 80, 100, 120} {
		a := s1.Virtuals(tasks, now)
		b := s2.Virtuals(tasks, now)
		sameVirtuals(t, a, b)
		emitted += len(a)
	}
	if emitted == 0 {
		t.Fatal("fixture emitted nothing; the determinism check was vacuous")
	}
}

func TestSamplerSeedChangesDraws(t *testing.T) {
	s1, tasks := samplerFixture(mixedModel{}, 8, 1)
	s2, _ := samplerFixture(mixedModel{}, 8, 2)
	a := s1.Virtuals(tasks, 100)
	b := s2.Virtuals(tasks, 100)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i].SampleBits != b[i].SampleBits || a[i].Cell != b[i].Cell {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds drew identical scenario sets")
	}
}

func TestSamplerK1MatchesPointForecast(t *testing.T) {
	s, tasks := samplerFixture(mixedModel{}, 1, 7)
	cfg := testConfig()
	ref := NewForecaster(mixedModel{}, cfg, 3, 0.85, 40)
	for _, now := range []float64{60, 80, 100, 120} {
		got := s.Virtuals(tasks, now)
		want := ref.Virtuals(tasks, now)
		sameVirtuals(t, got, want)
		for _, v := range got {
			if v.SampleBits != 0 {
				t.Fatalf("K=1 task %d carries scenario bits %b", v.ID, v.SampleBits)
			}
		}
	}
}

func TestSamplerBitsAndIDRanges(t *testing.T) {
	const k = 8
	s, tasks := samplerFixture(mixedModel{}, k, 7)
	all := uint64(1)<<k - 1
	sampledOnly, point := 0, 0
	for _, v := range s.Virtuals(tasks, 100) {
		if !v.Virtual || v.ID >= 0 {
			t.Fatalf("task %d: not a virtual", v.ID)
		}
		if v.SampleBits>>k != 0 {
			t.Fatalf("task %d: bits %b beyond K=%d", v.ID, v.SampleBits, k)
		}
		if v.SampleBits == all {
			t.Fatalf("task %d: all-ones mask should be encoded as 0", v.ID)
		}
		if v.SampleBits != 0 && v.SampleBits&1 == 0 {
			// Sampled-only: must live on the sampled id counter.
			sampledOnly++
			if v.ID > sampledIDBase {
				t.Fatalf("sampled-only task id %d above sampledIDBase", v.ID)
			}
		} else {
			// Point-forecast task (bit 0 set, or untagged = all scenarios):
			// must keep the wrapped forecaster's small negative ids.
			point++
			if v.ID <= sampledIDBase {
				t.Fatalf("point-forecast task id %d in the sampled range", v.ID)
			}
		}
	}
	// The mixed model's mid-probability cells are below the threshold, so
	// their demand can only appear via sampling; the 0.99 cell always clears
	// the threshold. Both populations must be present for the test to bite.
	if sampledOnly == 0 || point == 0 {
		t.Fatalf("degenerate sample set: %d sampled-only, %d point tasks", sampledOnly, point)
	}
}

func TestSamplerSubThresholdDemandAppears(t *testing.T) {
	// A 0.6-probability forecast is invisible to the point forecaster
	// (threshold 0.85) but should materialize in most of 16 sampled futures.
	s, tasks := samplerFixture(&constModel{p: 0.6}, 16, 7)
	ref := NewForecaster(&constModel{p: 0.6}, testConfig(), 3, 0.85, 40)
	if got := ref.Virtuals(tasks, 100); len(got) != 0 {
		t.Fatalf("point forecast emitted %d tasks below threshold", len(got))
	}
	vts := s.Virtuals(tasks, 100)
	if len(vts) == 0 {
		t.Fatal("sampler missed sub-threshold demand entirely")
	}
	for _, v := range vts {
		if v.SampleBits == 0 || v.SampleBits&1 != 0 {
			t.Fatalf("task %d claims scenario 0 membership below the threshold", v.ID)
		}
	}
}
