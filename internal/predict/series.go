// Package predict implements the task demand prediction component of
// DATA-WA (Section III): the task multivariate time series over grid cells,
// the Demand Dependency Learning module, the Dynamic Dependency-based Graph
// Neural Network (DDGNN), and the two baselines the paper evaluates against
// (LSTM and Graph-WaveNet). It also converts predicted demand into virtual
// tasks consumed by the assignment component.
package predict

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/tensor"
)

// SeriesConfig describes how raw tasks are discretized into the task
// multivariate time series of Section III-A.
type SeriesConfig struct {
	// Grid partitions the study area into M cells.
	Grid geo.Grid
	// K is the number of ΔT intervals covered by each vector c (k > 1).
	K int
	// DeltaT is the elementary time interval ΔT in seconds.
	DeltaT float64
	// T0 is the series origin t₀.
	T0 float64
}

// VectorSpan returns kΔT, the time covered by one series vector.
func (c SeriesConfig) VectorSpan() float64 { return float64(c.K) * c.DeltaT }

// Series is a task multivariate time series for all M grid cells.
// Vectors[p] is an M×K binary matrix whose row i is the vector
// c_i^{t₀+p·kΔT} of Eq. 2: element (i, j) is 1 iff some task is published in
// cell i during [t₀+p·kΔT+jΔT, t₀+p·kΔT+(j+1)ΔT).
type Series struct {
	Config  SeriesConfig
	Vectors []*tensor.Matrix
}

// P returns the number of record vectors in the series.
func (s *Series) P() int { return len(s.Vectors) }

// BuildSeries discretizes tasks published in [cfg.T0, until) into a series.
// Tasks outside the window or the grid region (clamped cells still count)
// are binned by publication time per Eq. 2.
func BuildSeries(cfg SeriesConfig, tasks []*core.Task, until float64) *Series {
	if cfg.K <= 1 {
		panic(fmt.Sprintf("predict: K must exceed 1 (paper: k > 1), got %d", cfg.K))
	}
	if cfg.DeltaT <= 0 {
		panic("predict: DeltaT must be positive")
	}
	span := cfg.VectorSpan()
	p := int((until - cfg.T0) / span)
	if p < 0 {
		p = 0
	}
	s := &Series{Config: cfg}
	m := cfg.Grid.Cells()
	for i := 0; i < p; i++ {
		s.Vectors = append(s.Vectors, tensor.New(m, cfg.K))
	}
	if p == 0 {
		return s
	}
	for _, task := range tasks {
		if task.Pub < cfg.T0 || task.Pub >= cfg.T0+float64(p)*span {
			continue
		}
		rel := task.Pub - cfg.T0
		vec := int(rel / span)
		dim := int((rel - float64(vec)*span) / cfg.DeltaT)
		if dim >= cfg.K { // guard against float edge cases
			dim = cfg.K - 1
		}
		cell := cfg.Grid.CellOf(task.Loc)
		s.Vectors[vec].Set(cell, dim, 1)
	}
	return s
}

// Window is one training example: Inputs are the P consecutive history
// vectors; Target is the vector that immediately follows.
type Window struct {
	Inputs []*tensor.Matrix
	Target *tensor.Matrix
	// Index is the position of Target within the source series.
	Index int
}

// Windows slices the series into sliding windows of the given history
// length with the given stride (≥1). Every window predicts one step ahead.
func (s *Series) Windows(history, stride int) []Window {
	return s.WindowsAhead(history, stride, 1)
}

// WindowsAhead is Windows with a forecasting horizon: the target is the
// vector `horizon` steps after the window (horizon 1 = the immediate next
// vector). Streaming deployments predict at horizon 2 so workers have one
// full interval of travel lead time before the demand materializes.
func (s *Series) WindowsAhead(history, stride, horizon int) []Window {
	if history <= 0 || stride <= 0 || horizon <= 0 {
		panic("predict: history, stride and horizon must be positive")
	}
	var out []Window
	for end := history; end+horizon-1 < s.P(); end += stride {
		out = append(out, Window{
			Inputs: s.Vectors[end-history : end],
			Target: s.Vectors[end+horizon-1],
			Index:  end + horizon - 1,
		})
	}
	return out
}

// SplitWindows splits windows into train and test sets with the given train
// fraction, preserving temporal order (earlier windows train, later test),
// which avoids leakage. The paper uses an 80/20 split.
func SplitWindows(ws []Window, trainFrac float64) (train, test []Window) {
	n := int(float64(len(ws)) * trainFrac)
	if n < 0 {
		n = 0
	}
	if n > len(ws) {
		n = len(ws)
	}
	return ws[:n], ws[n:]
}

// EvalResult summarizes a predictor's quality and cost on one series,
// the four panels of Figs. 5 and 6.
type EvalResult struct {
	Model     string
	AP        float64
	TrainTime time.Duration
	TestTime  time.Duration
	// Scores and Labels are the flattened per-(cell,interval) predictions
	// over the test windows, kept for further analysis.
	Scores []float64
	Labels []bool
}
