package predict

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/tensor"
)

func testConfig() SeriesConfig {
	return SeriesConfig{
		Grid:   geo.NewGrid(geo.Rect{MinX: 0, MinY: 0, MaxX: 2, MaxY: 2}, 2, 2),
		K:      3,
		DeltaT: 5,
		T0:     0,
	}
}

func taskAt(id int, x, y, pub float64) *core.Task {
	return &core.Task{ID: id, Loc: geo.Point{X: x, Y: y}, Pub: pub, Exp: pub + 100, Cell: -1}
}

func TestBuildSeriesFig3Example(t *testing.T) {
	// Reproduce the paper's Fig. 3: k=3, tasks in the first two ΔT
	// intervals but not the third ⇒ c = <1,1,0> for that cell.
	cfg := testConfig()
	tasks := []*core.Task{
		taskAt(1, 0.5, 0.5, 1),  // cell 0, interval 0
		taskAt(2, 0.5, 0.5, 7),  // cell 0, interval 1
		taskAt(3, 0.5, 0.5, 16), // next vector, interval 0
		taskAt(4, 1.5, 0.5, 26), // cell 1, second vector interval 2
	}
	s := BuildSeries(cfg, tasks, 30)
	if s.P() != 2 {
		t.Fatalf("P = %d, want 2", s.P())
	}
	v0 := s.Vectors[0]
	if v0.At(0, 0) != 1 || v0.At(0, 1) != 1 || v0.At(0, 2) != 0 {
		t.Errorf("cell0 vector0 = %v, want <1,1,0>", v0.Row(0).Data)
	}
	v1 := s.Vectors[1]
	if v1.At(0, 0) != 1 || v1.At(0, 1) != 0 || v1.At(0, 2) != 0 {
		t.Errorf("cell0 vector1 = %v, want <1,0,0>", v1.Row(0).Data)
	}
	if v1.At(1, 2) != 1 {
		t.Errorf("cell1 vector1 = %v, want task in interval 2", v1.Row(1).Data)
	}
}

func TestBuildSeriesIgnoresOutOfRangeTimes(t *testing.T) {
	cfg := testConfig()
	tasks := []*core.Task{
		taskAt(1, 0.5, 0.5, -3), // before T0
		taskAt(2, 0.5, 0.5, 31), // after the last full vector
	}
	s := BuildSeries(cfg, tasks, 30)
	for _, v := range s.Vectors {
		if tensor.Sum(v) != 0 {
			t.Fatal("out-of-range tasks must not appear")
		}
	}
}

func TestBuildSeriesBoundaryBinning(t *testing.T) {
	cfg := testConfig()
	// A task exactly at an interval boundary belongs to the later interval
	// (Eq. 2 uses a half-open interval).
	s := BuildSeries(cfg, []*core.Task{taskAt(1, 0.5, 0.5, 5)}, 15)
	if s.Vectors[0].At(0, 0) != 0 || s.Vectors[0].At(0, 1) != 1 {
		t.Errorf("boundary task misbinned: %v", s.Vectors[0].Row(0).Data)
	}
}

func TestBuildSeriesEmptyAndValidation(t *testing.T) {
	cfg := testConfig()
	s := BuildSeries(cfg, nil, 10)
	if s.P() != 0 {
		t.Errorf("10s window with 15s span should have 0 vectors, got %d", s.P())
	}
	for _, bad := range []func(){
		func() { BuildSeries(SeriesConfig{Grid: cfg.Grid, K: 1, DeltaT: 5}, nil, 10) },
		func() { BuildSeries(SeriesConfig{Grid: cfg.Grid, K: 3, DeltaT: 0}, nil, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for invalid config")
				}
			}()
			bad()
		}()
	}
}

func TestBuildSeriesBinaryProperty(t *testing.T) {
	cfg := testConfig()
	f := func(pubs []float64) bool {
		var tasks []*core.Task
		for i, p := range pubs {
			if math.IsNaN(p) || math.IsInf(p, 0) {
				continue
			}
			tasks = append(tasks, taskAt(i, 0.5, 0.5, math.Mod(math.Abs(p), 60)))
		}
		s := BuildSeries(cfg, tasks, 60)
		for _, v := range s.Vectors {
			for _, x := range v.Data {
				if x != 0 && x != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWindows(t *testing.T) {
	cfg := testConfig()
	var tasks []*core.Task
	for i := 0; i < 20; i++ {
		tasks = append(tasks, taskAt(i, 0.5, 0.5, float64(i*15)))
	}
	s := BuildSeries(cfg, tasks, 300) // 20 vectors
	ws := s.Windows(4, 1)
	if len(ws) != 16 {
		t.Fatalf("got %d windows, want 16", len(ws))
	}
	for _, w := range ws {
		if len(w.Inputs) != 4 {
			t.Fatalf("window history = %d", len(w.Inputs))
		}
		// Target is the vector right after the inputs.
		if s.Vectors[w.Index] != w.Target {
			t.Fatal("target mismatch")
		}
	}
	// Stride 2 halves the count.
	if got := len(s.Windows(4, 2)); got != 8 {
		t.Errorf("stride-2 windows = %d, want 8", got)
	}
}

func TestSplitWindows(t *testing.T) {
	ws := make([]Window, 10)
	train, test := SplitWindows(ws, 0.8)
	if len(train) != 8 || len(test) != 2 {
		t.Errorf("split = %d/%d", len(train), len(test))
	}
	train, test = SplitWindows(ws, 0)
	if len(train) != 0 || len(test) != 10 {
		t.Errorf("zero split = %d/%d", len(train), len(test))
	}
	train, test = SplitWindows(ws, 2)
	if len(train) != 10 || len(test) != 0 {
		t.Errorf("overflow split = %d/%d", len(train), len(test))
	}
}

func TestVirtualTasks(t *testing.T) {
	cfg := testConfig()
	probs := tensor.New(4, 3)
	probs.Set(0, 1, 0.9)  // above threshold
	probs.Set(2, 0, 0.86) // above
	probs.Set(3, 2, 0.5)  // below
	vts := VirtualTasks(probs, cfg, 100, 0.85, 40, -1)
	if len(vts) != 2 {
		t.Fatalf("got %d virtual tasks, want 2", len(vts))
	}
	first := vts[0]
	if !first.Virtual {
		t.Error("task must be marked virtual")
	}
	if first.ID >= 0 {
		t.Error("virtual ids must stay negative")
	}
	if first.Pub != 105 { // interval 1 of vector starting at 100
		t.Errorf("pub = %v, want 105", first.Pub)
	}
	if first.Exp != 145 {
		t.Errorf("exp = %v, want 145", first.Exp)
	}
	if cfg.Grid.CellOf(first.Loc) != 0 {
		t.Errorf("virtual task in wrong cell: %v", first.Loc)
	}
	// IDs are distinct.
	if vts[0].ID == vts[1].ID {
		t.Error("virtual ids must be distinct")
	}
	// Default threshold kicks in for threshold <= 0.
	if got := VirtualTasks(probs, cfg, 100, 0, 40, -1); len(got) != 2 {
		t.Errorf("default threshold: got %d", len(got))
	}
}

func TestOraclePredictor(t *testing.T) {
	mk := func(bits ...int) *tensor.Matrix {
		m := tensor.New(2, 2)
		for _, b := range bits {
			m.Data[b] = 1
		}
		return m
	}
	w1 := Window{Inputs: []*tensor.Matrix{mk(0), mk(1)}, Target: mk(2)}
	w2 := Window{Inputs: []*tensor.Matrix{mk(3), mk(0, 1)}, Target: mk(0, 3)}
	o := NewOraclePredictor()
	if err := o.Fit([]Window{w1, w2}); err != nil {
		t.Fatal(err)
	}
	for _, w := range []Window{w1, w2} {
		got := o.Predict(w.Inputs)
		for i := range got.Data {
			if got.Data[i] != w.Target.Data[i] {
				t.Fatal("oracle must replay truth")
			}
		}
	}
	// Unknown window → zeros.
	unknown := []*tensor.Matrix{mk(2), mk(2)}
	if tensor.Sum(o.Predict(unknown)) != 0 {
		t.Error("oracle on unknown window should be silent")
	}
}
