package predict

import (
	"repro/internal/core"
	"repro/internal/tensor"
)

// DefaultThreshold is the occurrence-probability threshold above which a
// predicted task is materialized; the paper uses 0.85 in its experiments.
const DefaultThreshold = 0.85

// VirtualTasks converts a predicted probability matrix (M×K, from
// Predictor.Predict) into virtual tasks for the assignment component, per
// the end of Section III-C: if c_i[j] exceeds the threshold, a task is
// predicted in cell i during the j-th ΔT interval following intervalStart.
//
// The virtual task is placed at the cell center, published at the start of
// its interval, and expires validTime seconds later. IDs are allocated
// downward from idStart so they never collide with real (non-negative)
// task ids; callers pass a negative idStart.
func VirtualTasks(probs *tensor.Matrix, cfg SeriesConfig, intervalStart, threshold, validTime float64, idStart int) []*core.Task {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	var out []*core.Task
	id := idStart
	for cell := 0; cell < probs.Rows; cell++ {
		for j := 0; j < probs.Cols; j++ {
			if probs.At(cell, j) < threshold {
				continue
			}
			pub := intervalStart + float64(j)*cfg.DeltaT
			out = append(out, &core.Task{
				ID:      id,
				Loc:     cfg.Grid.Center(cell),
				Pub:     pub,
				Exp:     pub + validTime,
				Virtual: true,
				Cell:    cell,
			})
			id--
		}
	}
	return out
}

// OraclePredictor is a testing/ablation predictor that replays the true next
// vector (probability 1 where a task occurs). It upper-bounds what any
// learned model can contribute to assignment quality.
type OraclePredictor struct {
	// lookup maps a window's target index to the true next vector; filled
	// by Fit from the training series and extended on Predict misses.
	truth map[string]*tensor.Matrix
}

// NewOraclePredictor returns an empty oracle.
func NewOraclePredictor() *OraclePredictor {
	return &OraclePredictor{truth: make(map[string]*tensor.Matrix)}
}

// Name implements Predictor.
func (o *OraclePredictor) Name() string { return "Oracle" }

// Fit memorizes window→target pairs keyed by the window contents.
func (o *OraclePredictor) Fit(train []Window) error {
	for _, w := range train {
		o.truth[windowKey(w.Inputs)] = w.Target
	}
	return nil
}

// Predict returns the memorized target for a known window and an all-zero
// matrix otherwise.
func (o *OraclePredictor) Predict(inputs []*tensor.Matrix) *tensor.Matrix {
	if m, ok := o.truth[windowKey(inputs)]; ok {
		return m.Clone()
	}
	return tensor.New(inputs[0].Rows, inputs[0].Cols)
}

func windowKey(inputs []*tensor.Matrix) string {
	b := make([]byte, 0, 64)
	for _, m := range inputs {
		for _, v := range m.Data {
			if v > 0.5 {
				b = append(b, 1)
			} else {
				b = append(b, 0)
			}
		}
	}
	return string(b)
}
