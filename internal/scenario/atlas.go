package scenario

import (
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/workload"
)

// The atlas. Base cardinalities are laptop-sized (a 1x suite cell runs in
// seconds); the Scale knob takes every archetype to 5x/20x density for load
// runs. Seeds are fixed per archetype so traces are reproducible across
// commits; docs/SCENARIOS.md documents each regime in depth.
func init() {
	Register(Archetype{
		Name:    "yueche",
		Summary: "Yueche analogue (Table II): drifting hotspots, two-rush intensity",
		Stress:  "the paper's baseline regime; sanity anchor for every method",
		Base:    workload.Yueche().Scaled(0.05),
	})
	Register(Archetype{
		Name:    "didi",
		Summary: "DiDi analogue (Table II): denser evening-window Chengdu trace",
		Stress:  "baseline regime at a higher task-to-worker ratio",
		Base:    workload.DiDi().Scaled(0.05),
	})
	Register(Archetype{
		Name:    "rush-hour",
		Summary: "sharp bimodal commuter peaks with corridor dependencies",
		Stress:  "bursty replanning load and lagged cross-region demand learning",
		Base: workload.Config{
			Name: "rush-hour", Seed: 11,
			Region:   geo.Rect{MinX: 0, MinY: 0, MaxX: 4, MaxY: 4},
			GridRows: 6, GridCols: 6,
			NumWorkers: 120, NumTasks: 850,
			Duration: 1200, HistoryDuration: 600,
			TaskValid: 40, WorkerReach: 1, WorkerAvail: 500,
			Hotspots: 6, HotspotStd: 0.18, Background: 0.06,
			DependencyPairs: 6, DependencyLag: 30, DependencyProb: 0.9,
			RegimePeriod: 600,
			// Two sharp commuter peaks at 22% and 78% of the window over a
			// low off-peak floor.
			Peaks: []workload.IntensityPeak{
				{Center: 0.22, Width: 0.07, Amp: 3},
				{Center: 0.78, Width: 0.07, Amp: 3},
			},
			IntensityFloor: 0.2,
		},
	})
	Register(Archetype{
		Name:    "event-spike",
		Summary: "stadium flash crowd: one extreme peak, post-event dispersal",
		Stress:  "queue backlog absorption and short-horizon demand prediction",
		Base: workload.Config{
			Name: "event-spike", Seed: 12,
			Region:   geo.Rect{MinX: 0, MinY: 0, MaxX: 4, MaxY: 4},
			GridRows: 6, GridCols: 6,
			NumWorkers: 110, NumTasks: 750,
			Duration: 1200, HistoryDuration: 600,
			TaskValid: 45, WorkerReach: 1, WorkerAvail: 600,
			// Two tight hotspots — the stadium gates — and dispersal
			// dependencies that carry demand outward after the final whistle.
			Hotspots: 2, HotspotStd: 0.1, Background: 0.08,
			DependencyPairs: 6, DependencyLag: 60, DependencyProb: 0.9,
			RegimePeriod: 0,
			Peaks: []workload.IntensityPeak{
				{Center: 0.55, Width: 0.035, Amp: 7},
			},
			IntensityFloor: 0.08,
		},
	})
	Register(Archetype{
		Name:    "sparse-suburb",
		Summary: "low density, long reachable distances, wide availability windows",
		Stress:  "spatial-index sparsity and long-haul travel-time feasibility",
		Base: workload.Config{
			Name: "sparse-suburb", Seed: 13,
			Region:   geo.Rect{MinX: 0, MinY: 0, MaxX: 12, MaxY: 12},
			GridRows: 6, GridCols: 6,
			NumWorkers: 50, NumTasks: 280,
			Duration: 1500, HistoryDuration: 600,
			TaskValid: 150, WorkerReach: 3.5, WorkerAvail: 1200,
			Hotspots: 3, HotspotStd: 0.9, Background: 0.4,
			DependencyPairs: 1, DependencyLag: 45, DependencyProb: 0.7,
			RegimePeriod: 600,
		},
	})
	Register(Archetype{
		Name:    "courier-grid",
		Summary: "food-delivery grid: many short tasks, short windows, worker churn",
		Stress:  "per-epoch admission/expiry turnover and routing-map retirement",
		Base: workload.Config{
			Name: "courier-grid", Seed: 14,
			Region:   geo.Rect{MinX: 0, MinY: 0, MaxX: 3, MaxY: 3},
			GridRows: 6, GridCols: 6,
			NumWorkers: 170, NumTasks: 1400,
			Duration: 900, HistoryDuration: 450,
			// Short validity, short shifts, frequent breaks: the population
			// the dispatcher sees churns continuously.
			TaskValid: 25, WorkerReach: 0.5, WorkerAvail: 150,
			Hotspots: 8, HotspotStd: 0.12, Background: 0.12,
			DependencyPairs: 3, DependencyLag: 20, DependencyProb: 0.8,
			RegimePeriod: 300,
			BreakProb:    0.35, BreakLength: 45,
		},
	})
	Register(Archetype{
		Name:    "multi-city",
		Summary: "two disjoint hotspot clusters separated by an empty corridor",
		Stress:  "dispatch sharding: cross-shard routing stays cold, shards balance",
		Base: workload.Config{
			Name: "multi-city", Seed: 15,
			Region:   geo.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 4},
			GridRows: 4, GridCols: 10,
			NumWorkers: 140, NumTasks: 900,
			Duration: 1200, HistoryDuration: 600,
			TaskValid: 40, WorkerReach: 1, WorkerAvail: 600,
			Hotspots: 6, HotspotStd: 0.2, Background: 0.04,
			DependencyPairs: 4, DependencyLag: 30, DependencyProb: 0.85,
			RegimePeriod: 400,
			// Three hotspots per city; the 2 km corridor between the zones
			// stays empty, so a grid-sharded dispatcher sees two nearly
			// independent sub-populations.
			HotspotZones: []geo.Rect{
				zone(0, 0, 4, 4),
				zone(6, 0, 10, 4),
			},
		},
	})

	// --- Chaos archetypes (Overload != nil) ---------------------------------
	// Workloads built to saturate the dispatcher, each carrying the admission
	// and governor settings it is meant to run under. The benchmark suite
	// maps the profile onto the live path and gates task conservation and
	// tier recovery; the offline/live fidelity gate skips these cells.

	Register(Archetype{
		Name:    "flash-flood",
		Summary: "50x flash crowd: event-spike escalated far beyond the epoch budget",
		Stress:  "admission shedding, governor demotion under burst, hysteretic recovery",
		Base: workload.Config{
			Name: "flash-flood", Seed: 16,
			Region:   geo.Rect{MinX: 0, MinY: 0, MaxX: 4, MaxY: 4},
			GridRows: 6, GridCols: 6,
			NumWorkers: 110, NumTasks: 1000,
			Duration: 1200, HistoryDuration: 600,
			TaskValid: 30, WorkerReach: 1, WorkerAvail: 600,
			Hotspots: 2, HotspotStd: 0.1, Background: 0.1,
			DependencyPairs: 4, DependencyLag: 30, DependencyProb: 0.85,
			RegimePeriod: 0,
			// One needle peak 50x over the floor: (0.05+2.45)/0.05 = 50.
			// Roughly 70% of the trace lands inside ±3 widths of the peak.
			Peaks: []workload.IntensityPeak{
				{Center: 0.55, Width: 0.02, Amp: 2.45},
			},
			IntensityFloor: 0.05,
		},
		Overload: &OverloadProfile{
			// The burst drives the uncapped pool past 200 open tasks
			// (off-burst steady state sits near 30), so the cap binds only
			// during the flood and the flood must shed: with two thirds of
			// the 30 s validity as the defer threshold, overflow that cannot
			// be admitted quickly is dropped rather than churned through the
			// requeue loop until it expires inside the pool.
			MaxOpenTasks: 120,
			DeferSlack:   20,
			BudgetUnits:  2500,
			Window:       8,
			Dwell:        4,
		},
		Check: checkBurstFraction(0.55, 0.02, 0.6),
	})
	Register(Archetype{
		Name:    "stalled-shard",
		Summary: "all demand pinned to one shard band; the rest of the region idles",
		Stress:  "per-shard governor isolation: one shard demotes, its siblings stay at full tier",
		Base: workload.Config{
			Name: "stalled-shard", Seed: 17,
			Region:   geo.Rect{MinX: 0, MinY: 0, MaxX: 4, MaxY: 4},
			GridRows: 6, GridCols: 6,
			NumWorkers: 100, NumTasks: 2000,
			Duration: 1200, HistoryDuration: 600,
			TaskValid: 25, WorkerReach: 1, WorkerAvail: 600,
			Hotspots: 3, HotspotStd: 0.12, Background: 0.05,
			DependencyPairs: 0, DependencyLag: 30, DependencyProb: 0,
			RegimePeriod: 0,
			Peaks: []workload.IntensityPeak{
				{Center: 0.35, Width: 0.1, Amp: 1.2},
				{Center: 0.7, Width: 0.1, Amp: 1.2},
			},
			IntensityFloor: 0.25,
			// Every hotspot sits in the top row band, so a row-major banded
			// shard map concentrates nearly the whole load on one shard.
			HotspotZones: []geo.Rect{zone(0, 3.4, 4, 4)},
		},
		Overload: &OverloadProfile{
			// The hot band's arrival rate outruns the workers reachable from
			// it, so its open pool backs up against the cap while the idle
			// bands never come near it: the same profile binds on one shard
			// and is invisible on its siblings.
			MaxOpenTasks: 24,
			BudgetUnits:  400,
			Window:       8,
			Dwell:        4,
		},
		Check: checkZoneFraction(zone(0, 3, 4, 4), 0.75),
	})
	Register(Archetype{
		Name:    "clock-skew",
		Summary: "producer clock skew: arrival stamps drift up to ±20 s off the true deadline",
		Stress:  "deadline-aware shed/defer decisions on disordered, shortened validity windows",
		Base: workload.Config{
			Name: "clock-skew", Seed: 18,
			Region:   geo.Rect{MinX: 0, MinY: 0, MaxX: 4, MaxY: 4},
			GridRows: 6, GridCols: 6,
			NumWorkers: 100, NumTasks: 700,
			Duration: 1200, HistoryDuration: 600,
			TaskValid: 45, WorkerReach: 1, WorkerAvail: 600,
			Hotspots: 4, HotspotStd: 0.18, Background: 0.1,
			DependencyPairs: 2, DependencyLag: 25, DependencyProb: 0.8,
			RegimePeriod: 600,
			Peaks: []workload.IntensityPeak{
				{Center: 0.5, Width: 0.1, Amp: 2},
			},
			IntensityFloor: 0.3,
			SkewProb:       0.5, SkewMax: 20,
		},
		Overload: &OverloadProfile{
			// Both ingest faces bind here: the submit cap sits under the
			// rush's per-epoch arrival burst (deferring the overflow) and the
			// pool cap under the rush's open peak (displacing by deadline —
			// which skewed stamps make genuinely disordered).
			MaxOpenTasks:       32,
			MaxSubmitsPerEpoch: 6,
			BudgetUnits:        800,
			Window:             8,
			Dwell:              4,
		},
		Check: checkSkewApplied(0.2),
	})
}

// checkBurstFraction asserts that at least minFrac of the trace's tasks were
// published within ±3 widths of the configured peak — the property that makes
// a flash-crowd archetype a flash crowd at every density.
func checkBurstFraction(center, width, minFrac float64) func(*workload.Scenario, float64) error {
	return func(sc *workload.Scenario, _ float64) error {
		lo := (center - 3*width) * sc.Config.Duration
		hi := (center + 3*width) * sc.Config.Duration
		in := 0
		for _, s := range sc.Tasks {
			if s.Pub >= lo && s.Pub <= hi {
				in++
			}
		}
		if frac := float64(in) / float64(len(sc.Tasks)); frac < minFrac {
			return fmt.Errorf("burst fraction %.2f below %.2f (want the flood inside [%.0f, %.0f] s)", frac, minFrac, lo, hi)
		}
		return nil
	}
}

// checkZoneFraction asserts that at least minFrac of the trace's tasks lie
// inside the given rectangle — the stalled-shard guarantee that one shard
// band really owns the load.
func checkZoneFraction(z geo.Rect, minFrac float64) func(*workload.Scenario, float64) error {
	return func(sc *workload.Scenario, _ float64) error {
		in := 0
		for _, s := range sc.Tasks {
			if z.Contains(s.Loc) {
				in++
			}
		}
		if frac := float64(in) / float64(len(sc.Tasks)); frac < minFrac {
			return fmt.Errorf("zone fraction %.2f below %.2f (demand escaped the stalled band %v)", frac, minFrac, z)
		}
		return nil
	}
}

// checkSkewApplied asserts that at least minFrac of the trace's tasks carry a
// skewed validity window (|validity − TaskValid| > 1 s) and none is negative.
func checkSkewApplied(minFrac float64) func(*workload.Scenario, float64) error {
	return func(sc *workload.Scenario, _ float64) error {
		skewed := 0
		for _, s := range sc.Tasks {
			v := s.Exp - s.Pub
			if v <= 0 {
				return fmt.Errorf("task %d has non-positive validity %.2f s", s.ID, v)
			}
			if math.Abs(v-sc.Config.TaskValid) > 1 {
				skewed++
			}
		}
		if frac := float64(skewed) / float64(len(sc.Tasks)); frac < minFrac {
			return fmt.Errorf("skewed fraction %.2f below %.2f", frac, minFrac)
		}
		return nil
	}
}
