package scenario

import (
	"repro/internal/geo"
	"repro/internal/workload"
)

// The atlas. Base cardinalities are laptop-sized (a 1x suite cell runs in
// seconds); the Scale knob takes every archetype to 5x/20x density for load
// runs. Seeds are fixed per archetype so traces are reproducible across
// commits; docs/SCENARIOS.md documents each regime in depth.
func init() {
	Register(Archetype{
		Name:    "yueche",
		Summary: "Yueche analogue (Table II): drifting hotspots, two-rush intensity",
		Stress:  "the paper's baseline regime; sanity anchor for every method",
		Base:    workload.Yueche().Scaled(0.05),
	})
	Register(Archetype{
		Name:    "didi",
		Summary: "DiDi analogue (Table II): denser evening-window Chengdu trace",
		Stress:  "baseline regime at a higher task-to-worker ratio",
		Base:    workload.DiDi().Scaled(0.05),
	})
	Register(Archetype{
		Name:    "rush-hour",
		Summary: "sharp bimodal commuter peaks with corridor dependencies",
		Stress:  "bursty replanning load and lagged cross-region demand learning",
		Base: workload.Config{
			Name: "rush-hour", Seed: 11,
			Region:   geo.Rect{MinX: 0, MinY: 0, MaxX: 4, MaxY: 4},
			GridRows: 6, GridCols: 6,
			NumWorkers: 120, NumTasks: 850,
			Duration: 1200, HistoryDuration: 600,
			TaskValid: 40, WorkerReach: 1, WorkerAvail: 500,
			Hotspots: 6, HotspotStd: 0.18, Background: 0.06,
			DependencyPairs: 6, DependencyLag: 30, DependencyProb: 0.9,
			RegimePeriod: 600,
			// Two sharp commuter peaks at 22% and 78% of the window over a
			// low off-peak floor.
			Peaks: []workload.IntensityPeak{
				{Center: 0.22, Width: 0.07, Amp: 3},
				{Center: 0.78, Width: 0.07, Amp: 3},
			},
			IntensityFloor: 0.2,
		},
	})
	Register(Archetype{
		Name:    "event-spike",
		Summary: "stadium flash crowd: one extreme peak, post-event dispersal",
		Stress:  "queue backlog absorption and short-horizon demand prediction",
		Base: workload.Config{
			Name: "event-spike", Seed: 12,
			Region:   geo.Rect{MinX: 0, MinY: 0, MaxX: 4, MaxY: 4},
			GridRows: 6, GridCols: 6,
			NumWorkers: 110, NumTasks: 750,
			Duration: 1200, HistoryDuration: 600,
			TaskValid: 45, WorkerReach: 1, WorkerAvail: 600,
			// Two tight hotspots — the stadium gates — and dispersal
			// dependencies that carry demand outward after the final whistle.
			Hotspots: 2, HotspotStd: 0.1, Background: 0.08,
			DependencyPairs: 6, DependencyLag: 60, DependencyProb: 0.9,
			RegimePeriod: 0,
			Peaks: []workload.IntensityPeak{
				{Center: 0.55, Width: 0.035, Amp: 7},
			},
			IntensityFloor: 0.08,
		},
	})
	Register(Archetype{
		Name:    "sparse-suburb",
		Summary: "low density, long reachable distances, wide availability windows",
		Stress:  "spatial-index sparsity and long-haul travel-time feasibility",
		Base: workload.Config{
			Name: "sparse-suburb", Seed: 13,
			Region:   geo.Rect{MinX: 0, MinY: 0, MaxX: 12, MaxY: 12},
			GridRows: 6, GridCols: 6,
			NumWorkers: 50, NumTasks: 280,
			Duration: 1500, HistoryDuration: 600,
			TaskValid: 150, WorkerReach: 3.5, WorkerAvail: 1200,
			Hotspots: 3, HotspotStd: 0.9, Background: 0.4,
			DependencyPairs: 1, DependencyLag: 45, DependencyProb: 0.7,
			RegimePeriod: 600,
		},
	})
	Register(Archetype{
		Name:    "courier-grid",
		Summary: "food-delivery grid: many short tasks, short windows, worker churn",
		Stress:  "per-epoch admission/expiry turnover and routing-map retirement",
		Base: workload.Config{
			Name: "courier-grid", Seed: 14,
			Region:   geo.Rect{MinX: 0, MinY: 0, MaxX: 3, MaxY: 3},
			GridRows: 6, GridCols: 6,
			NumWorkers: 170, NumTasks: 1400,
			Duration: 900, HistoryDuration: 450,
			// Short validity, short shifts, frequent breaks: the population
			// the dispatcher sees churns continuously.
			TaskValid: 25, WorkerReach: 0.5, WorkerAvail: 150,
			Hotspots: 8, HotspotStd: 0.12, Background: 0.12,
			DependencyPairs: 3, DependencyLag: 20, DependencyProb: 0.8,
			RegimePeriod: 300,
			BreakProb:    0.35, BreakLength: 45,
		},
	})
	Register(Archetype{
		Name:    "multi-city",
		Summary: "two disjoint hotspot clusters separated by an empty corridor",
		Stress:  "dispatch sharding: cross-shard routing stays cold, shards balance",
		Base: workload.Config{
			Name: "multi-city", Seed: 15,
			Region:   geo.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 4},
			GridRows: 4, GridCols: 10,
			NumWorkers: 140, NumTasks: 900,
			Duration: 1200, HistoryDuration: 600,
			TaskValid: 40, WorkerReach: 1, WorkerAvail: 600,
			Hotspots: 6, HotspotStd: 0.2, Background: 0.04,
			DependencyPairs: 4, DependencyLag: 30, DependencyProb: 0.85,
			RegimePeriod: 400,
			// Three hotspots per city; the 2 km corridor between the zones
			// stays empty, so a grid-sharded dispatcher sees two nearly
			// independent sub-populations.
			HotspotZones: []geo.Rect{
				zone(0, 0, 4, 4),
				zone(6, 0, 10, 4),
			},
		},
	})
}
