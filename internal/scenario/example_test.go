package scenario_test

import (
	"fmt"

	"repro/internal/scenario"
)

// ExampleRegistry walks the atlas: every registered archetype, its one-line
// regime summary, and its 1x cardinalities.
func ExampleRegistry() {
	for _, a := range scenario.Registry() {
		c := a.Scale(1)
		fmt.Printf("%-13s %4d workers %5d tasks  %s\n", a.Name, c.NumWorkers, c.NumTasks, a.Summary)
	}
	// Output:
	// clock-skew     100 workers   700 tasks  producer clock skew: arrival stamps drift up to ±20 s off the true deadline
	// courier-grid   170 workers  1400 tasks  food-delivery grid: many short tasks, short windows, worker churn
	// didi            38 workers   443 tasks  DiDi analogue (Table II): denser evening-window Chengdu trace
	// event-spike    110 workers   750 tasks  stadium flash crowd: one extreme peak, post-event dispersal
	// flash-flood    110 workers  1000 tasks  50x flash crowd: event-spike escalated far beyond the epoch budget
	// multi-city     140 workers   900 tasks  two disjoint hotspot clusters separated by an empty corridor
	// rush-hour      120 workers   850 tasks  sharp bimodal commuter peaks with corridor dependencies
	// sparse-suburb   50 workers   280 tasks  low density, long reachable distances, wide availability windows
	// stalled-shard  100 workers  2000 tasks  all demand pinned to one shard band; the rest of the region idles
	// yueche          31 workers   552 tasks  Yueche analogue (Table II): drifting hotspots, two-rush intensity
}
