// Package scenario is the workload atlas: a registry of named, documented
// scenario archetypes built on workload.Config. The paper's evaluation lives
// on two Chengdu traces (Yueche, DiDi); the atlas keeps those as registered
// analogues and adds demand regimes they cannot express — commuter rush
// hours, stadium flash crowds, sparse suburbs, courier grids, twin cities —
// so every subsystem of the pipeline has a workload designed to stress it.
//
// Each archetype couples a base workload.Config with a Scale knob: Scale(f)
// multiplies worker and task counts while leaving the clock, the region and
// every Table III parameter untouched, so the same regime runs at 1x, 5x or
// 20x density. Generation is deterministic given the config seed, which the
// benchmark suite (internal/benchsuite, cmd/datawa-bench -suite) relies on
// for cross-commit comparability.
//
// docs/SCENARIOS.md documents every archetype's real-world regime, its knob
// settings, and the pipeline behavior it is designed to stress.
package scenario

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geo"
	"repro/internal/workload"
)

// Archetype is one named entry of the atlas.
type Archetype struct {
	// Name is the registry key, kebab-case (e.g. "rush-hour").
	Name string
	// Summary is a one-line description for listings.
	Summary string
	// Stress names the pipeline behavior the archetype is designed to
	// exercise (prose; docs/SCENARIOS.md elaborates).
	Stress string
	// Base is the 1x configuration. Base.Name and Base.Seed must be set.
	Base workload.Config
	// Overload, when non-nil, marks a chaos archetype: a workload designed
	// to saturate the dispatcher, carrying the admission-control and
	// governor settings it is meant to run under. The benchmark suite maps
	// the profile onto the live dispatcher (with the deterministic
	// work-unit cost function) and gates task conservation and tier
	// recovery on the run; the offline/live fidelity gate skips these
	// cells, since shedding makes the two paths diverge by design.
	Overload *OverloadProfile
	// Check, when non-nil, adds archetype-specific invariants to Validate —
	// e.g. that a flash-flood trace really concentrates most of its tasks
	// inside the burst window.
	Check func(sc *workload.Scenario, f float64) error
}

// OverloadProfile is the plain-data admission and governor configuration a
// chaos archetype runs under (internal/dispatch wires it into its own config
// types; keeping this package free of that dependency).
type OverloadProfile struct {
	// MaxOpenTasks caps the dispatcher's open pool; MaxSubmitsPerEpoch
	// caps per-epoch admissions; DeferSlack is the defer-versus-shed
	// deadline threshold in seconds (0 = the dispatcher default).
	MaxOpenTasks       int
	MaxSubmitsPerEpoch int
	DeferSlack         float64
	// BudgetUnits is the governor's per-shard epoch budget in
	// deterministic work units — workers × open tasks at the planning
	// instant — so tier transitions replay byte-identically on every host.
	BudgetUnits float64
	// Window and Dwell override the governor's hysteresis parameters
	// (0 = dispatcher defaults).
	Window, Dwell int
}

// Scale returns the archetype's configuration at density multiplier f > 0:
// worker and task counts scale by f, everything else — durations, region,
// validity windows, hotspot structure — stays fixed, so f directly scales
// the arrival rate the pipeline must sustain. Fractional f (laptop-scale
// smoke runs) and f > 1 (load runs) are both valid.
func (a Archetype) Scale(f float64) workload.Config {
	if f <= 0 || math.IsNaN(f) || math.IsInf(f, 0) {
		panic(fmt.Sprintf("scenario: scale factor %v out of (0,∞)", f))
	}
	c := a.Base
	c.NumWorkers = max(1, int(float64(c.NumWorkers)*f))
	c.NumTasks = max(1, int(float64(c.NumTasks)*f))
	return c
}

// Generate materializes the archetype's trace at density f.
func (a Archetype) Generate(f float64) *workload.Scenario {
	return workload.Generate(a.Scale(f))
}

// Validate checks the invariants Scale must preserve on a trace generated at
// density f: the hotspot count, hotspot containment in the configured zones,
// worker availability-window lengths inside the break-split bounds, and
// worker/task cardinalities tracking f. The atlas tests run it for every
// registered archetype at several densities.
func (a Archetype) Validate(sc *workload.Scenario, f float64) error {
	c := a.Scale(f)
	if len(sc.HotspotCells) != c.Hotspots {
		return fmt.Errorf("%s: %d hotspot cells, want %d", a.Name, len(sc.HotspotCells), c.Hotspots)
	}
	for i, cell := range sc.HotspotCells {
		if len(c.HotspotZones) == 0 {
			break
		}
		zone := c.HotspotZones[i%len(c.HotspotZones)]
		center := sc.Grid.Center(cell)
		slackX := sc.Grid.CellRect(cell).Width() / 2
		slackY := sc.Grid.CellRect(cell).Height() / 2
		if center.X < zone.MinX-slackX || center.X > zone.MaxX+slackX ||
			center.Y < zone.MinY-slackY || center.Y > zone.MaxY+slackY {
			return fmt.Errorf("%s: hotspot %d cell center %v escapes zone %v", a.Name, i, center, zone)
		}
	}
	if len(sc.Tasks) != c.NumTasks {
		return fmt.Errorf("%s: %d tasks, want %d", a.Name, len(sc.Tasks), c.NumTasks)
	}
	// Break splits turn one worker into two availability segments, so the
	// segment count sits in [NumWorkers, 2·NumWorkers].
	if len(sc.Workers) < c.NumWorkers || len(sc.Workers) > 2*c.NumWorkers {
		return fmt.Errorf("%s: %d worker segments for %d workers", a.Name, len(sc.Workers), c.NumWorkers)
	}
	// Window-length distribution bounds: an unsplit window is exactly
	// WorkerAvail; a break splits it at an interior fraction in
	// [0.25, 0.75], so every segment spans at least a quarter of it.
	lo, hi := 0.25*c.WorkerAvail, c.WorkerAvail*(1+1e-9)
	for _, w := range sc.Workers {
		if win := w.Window(); win < lo-1e-9 || win > hi {
			return fmt.Errorf("%s: worker %d window %.1f s outside [%.1f, %.1f]", a.Name, w.ID, win, lo, c.WorkerAvail)
		}
		if !c.Region.Contains(w.Loc) {
			return fmt.Errorf("%s: worker %d location %v outside region", a.Name, w.ID, w.Loc)
		}
	}
	// Clock skew moves the Pub stamp but never the deadline, so the
	// effective validity stays within ±SkewMax of the configured window.
	validTol := 1e-9
	if c.SkewProb > 0 {
		validTol += c.SkewMax
	}
	for _, s := range sc.Tasks {
		if !c.Region.Contains(s.Loc) {
			return fmt.Errorf("%s: task %d location %v outside region", a.Name, s.ID, s.Loc)
		}
		if math.Abs((s.Exp-s.Pub)-c.TaskValid) > validTol {
			return fmt.Errorf("%s: task %d validity %.2f s, want %.2f ± %.2f", a.Name, s.ID, s.Exp-s.Pub, c.TaskValid, validTol)
		}
	}
	if a.Check != nil {
		if err := a.Check(sc, f); err != nil {
			return fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	return nil
}

var registry = map[string]Archetype{}

// Register adds an archetype to the atlas. It panics on an empty name, a
// duplicate name, or a base config without a seed — all programming errors
// in the registration block, not runtime conditions.
func Register(a Archetype) {
	if a.Name == "" {
		panic("scenario: archetype name must be non-empty")
	}
	if _, dup := registry[a.Name]; dup {
		panic(fmt.Sprintf("scenario: duplicate archetype %q", a.Name))
	}
	if a.Base.Seed == 0 {
		panic(fmt.Sprintf("scenario: archetype %q needs a deterministic seed", a.Name))
	}
	registry[a.Name] = a
}

// Get returns the archetype registered under name.
func Get(name string) (Archetype, bool) {
	a, ok := registry[name]
	return a, ok
}

// Names returns every registered archetype name, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	//datawa:unordered names are sorted before return
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Registry returns every registered archetype, sorted by name.
func Registry() []Archetype {
	out := make([]Archetype, 0, len(registry))
	for _, name := range Names() {
		out = append(out, registry[name])
	}
	return out
}

// zone is shorthand for a hotspot placement rectangle.
func zone(minX, minY, maxX, maxY float64) geo.Rect {
	return geo.Rect{MinX: minX, MinY: minY, MaxX: maxX, MaxY: maxY}
}
