package scenario

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/assign"
	"repro/internal/dispatch"
	"repro/internal/geo"
	"repro/internal/wds"
	"repro/internal/workload"
)

func TestRegistryCoversRequiredArchetypes(t *testing.T) {
	required := []string{
		"yueche", "didi",
		"rush-hour", "event-spike", "sparse-suburb", "courier-grid", "multi-city",
	}
	for _, name := range required {
		if _, ok := Get(name); !ok {
			t.Errorf("atlas is missing archetype %q", name)
		}
	}
	if len(Registry()) < len(required) {
		t.Errorf("atlas has %d archetypes, want at least %d", len(Registry()), len(required))
	}
}

func TestGetUnknown(t *testing.T) {
	if _, ok := Get("no-such-regime"); ok {
		t.Fatal("Get returned an unregistered archetype")
	}
}

// traceBytes encodes a scenario's full event trace so runs can be compared
// byte for byte.
func traceBytes(sc *workload.Scenario) string {
	var b strings.Builder
	for _, ev := range sc.Events() {
		switch ev.Kind {
		case workload.WorkerOnline:
			w := ev.Worker
			fmt.Fprintf(&b, "w %d %v %v %v %v %v\n", w.ID, w.Loc.X, w.Loc.Y, w.Reach, w.On, w.Off)
		case workload.TaskSubmit:
			s := ev.Task
			fmt.Fprintf(&b, "t %d %v %v %v %v %d\n", s.ID, s.Loc.X, s.Loc.Y, s.Pub, s.Exp, s.Cell)
		}
	}
	for _, s := range sc.History {
		fmt.Fprintf(&b, "h %d %v %v %v\n", s.ID, s.Loc.X, s.Loc.Y, s.Pub)
	}
	return b.String()
}

// TestArchetypeTracesByteDeterministic pins the suite's reproducibility
// contract: a fixed seed generates byte-identical traces on every run, for
// every registered archetype.
func TestArchetypeTracesByteDeterministic(t *testing.T) {
	for _, a := range Registry() {
		t.Run(a.Name, func(t *testing.T) {
			first := traceBytes(a.Generate(1))
			second := traceBytes(a.Generate(1))
			if first != second {
				t.Fatal("trace differs across identical generations")
			}
		})
	}
}

// TestArchetypeReplayParallelismInvariant replays each archetype's trace
// through a sharded dispatcher at several parallelism levels and requires
// identical assignment outcomes — the property that lets suite runs compare
// across machines with different core counts.
func TestArchetypeReplayParallelismInvariant(t *testing.T) {
	travel := geo.NewTravelModel(0.005)
	factory := func(int) assign.Planner {
		return &assign.Greedy{Opts: assign.Options{WDS: wds.Options{Travel: travel}}}
	}
	for _, a := range Registry() {
		t.Run(a.Name, func(t *testing.T) {
			sc := a.Generate(0.25)
			var ref dispatch.Metrics
			for i, parallelism := range []int{1, 4} {
				d := dispatch.New(dispatch.Config{
					Shards: 2, Grid: sc.Grid, Step: 2, Now: sc.T0,
					Travel: travel, NewPlanner: factory, Parallelism: parallelism,
				})
				g := dispatch.LoadGen{Events: sc.Events(), T1: sc.T1}
				m := g.Run(d).Metrics
				if i == 0 {
					ref = m
					continue
				}
				if m.Assigned != ref.Assigned || m.Expired != ref.Expired ||
					m.Applied != ref.Applied || m.PlanCalls != ref.PlanCalls {
					t.Fatalf("parallelism %d diverges: assigned/expired/applied/plans = %d/%d/%d/%d, want %d/%d/%d/%d",
						parallelism, m.Assigned, m.Expired, m.Applied, m.PlanCalls,
						ref.Assigned, ref.Expired, ref.Applied, ref.PlanCalls)
				}
			}
		})
	}
}

// TestScalePreservesInvariants checks that density scaling leaves the
// archetype's structure alone: hotspot count, zone containment, window-length
// bounds, and cardinalities tracking the factor.
func TestScalePreservesInvariants(t *testing.T) {
	for _, a := range Registry() {
		for _, f := range []float64{0.5, 1, 3} {
			t.Run(fmt.Sprintf("%s/%gx", a.Name, f), func(t *testing.T) {
				sc := a.Generate(f)
				if err := a.Validate(sc, f); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestScaleLeavesClockAndRegionFixed(t *testing.T) {
	for _, a := range Registry() {
		c1, c5 := a.Scale(1), a.Scale(5)
		if c1.Duration != c5.Duration || c1.HistoryDuration != c5.HistoryDuration {
			t.Errorf("%s: Scale must not stretch the clock", a.Name)
		}
		if c1.Region != c5.Region || c1.Hotspots != c5.Hotspots {
			t.Errorf("%s: Scale must not move the region or hotspot structure", a.Name)
		}
		if c5.NumWorkers != max(1, int(float64(c1.NumWorkers)*5)) || c5.NumTasks != max(1, int(float64(c1.NumTasks)*5)) {
			t.Errorf("%s: Scale(5) cardinalities %d/%d do not track the factor", a.Name, c5.NumWorkers, c5.NumTasks)
		}
	}
}

func TestScalePanicsOnBadFactor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Scale(0) must panic")
		}
	}()
	a, _ := Get("yueche")
	a.Scale(0)
}
