// Package spatial provides a uniform grid index over task locations, the
// data structure behind the O(|W|·k) reachability queries of the planning
// pipeline. A planning instant builds one Index over the open task pool and
// answers every worker's "which tasks lie within my reachable distance d?"
// by scanning only the grid cells the query disc overlaps, instead of the
// whole pool (Section IV-A.1 of the DATA-WA paper describes the constraint
// being evaluated; the index changes its cost, not its answer).
//
// The cell size is normally derived from the largest worker reach radius at
// the instant: with cell ≥ d, a radius-d query touches at most 3×3 cells.
// Cells are stored sparsely (a map keyed by cell coordinates), so a tiny
// reach radius inside a huge study area costs memory proportional to the
// number of occupied cells, never to the area.
//
// Queries are exact and deterministic: Within returns precisely the tasks
// with Euclidean distance ≤ r from the query point, in the order the tasks
// were given to NewIndex, regardless of cell geometry. The brute-force scan
// and the index are therefore interchangeable everywhere — the invariant the
// package tests pin down against a linear-scan oracle.
//
// Cost model: building an Index is O(|S|) map inserts; one radius-d query
// scans the cells the disc overlaps plus an exact distance check per
// candidate. The win over brute force grows with task count and demand
// concentration — the courier-grid archetype (hundreds of tasks packed into
// a 3 km square) is the regime the index exists for, while sparse-suburb
// (tens of tasks spread over 144 km²) leaves so few candidates per query
// that the linear scan is competitive. The scenario atlas
// (internal/scenario, docs/SCENARIOS.md) names both regimes so the benchmark
// suite exercises the index at its best and worst.
package spatial

import (
	"math"
	"slices"

	"repro/internal/core"
	"repro/internal/geo"
)

// CellsInDisk returns the indices of the cells of g whose rectangle
// intersects the closed disk of radius r around p, in ascending (row-major)
// cell order. It is the boundary-disk query behind cross-shard task handoff
// (internal/dispatch): the cells a reachability disk overlaps determine
// which shards must see a replica of the task at its center. A negative or
// NaN r returns nil; +Inf returns every cell; r == 0 returns the cell
// containing an in-region p. The test is exact rectangle–disk intersection,
// so a point outside the region reaches only the cells its disk truly
// overlaps (unlike Grid.CellOf, which clamps).
func CellsInDisk(g geo.Grid, p geo.Point, r float64) []int {
	return AppendCellsInDisk(nil, g, p, r)
}

// AppendCellsInDisk is CellsInDisk appending into dst, so per-worker loops
// (the incremental planner's partition, dirty-disk marking) can reuse one
// buffer across calls instead of allocating a fresh slice per disk query.
func AppendCellsInDisk(dst []int, g geo.Grid, p geo.Point, r float64) []int {
	if r < 0 || math.IsNaN(r) || math.IsInf(r, 1) {
		if math.IsInf(r, 1) {
			for i := 0; i < g.Cells(); i++ {
				dst = append(dst, i)
			}
		}
		return dst
	}
	c0 := g.CellOf(geo.Point{X: p.X - r, Y: p.Y - r})
	c1 := g.CellOf(geo.Point{X: p.X + r, Y: p.Y + r})
	row0, col0 := c0/g.Cols, c0%g.Cols
	row1, col1 := c1/g.Cols, c1%g.Cols
	for row := row0; row <= row1; row++ {
		for col := col0; col <= col1; col++ {
			i := row*g.Cols + col
			rect := g.CellRect(i)
			// Distance from p to the nearest point of the cell rectangle;
			// the disk intersects the cell iff it is ≤ r. The upper edges are
			// exclusive (cells tile disjointly), but the closed-rect distance
			// is what makes a disk tangent to a boundary see both sides —
			// exactly the conservative behavior replication wants.
			dx := math.Max(0, math.Max(rect.MinX-p.X, p.X-rect.MaxX))
			dy := math.Max(0, math.Max(rect.MinY-p.Y, p.Y-rect.MaxY))
			if dx*dx+dy*dy <= r*r {
				dst = append(dst, i)
			}
		}
	}
	return dst
}

// Index is a uniform grid over a fixed set of tasks. Between Reset calls it
// is immutable and safe for concurrent queries from multiple goroutines.
type Index struct {
	tasks []*core.Task
	cell  float64
	// origin anchors cell (0,0); using the data's own min corner keeps cell
	// coordinates small and well-conditioned.
	originX, originY float64
	// buckets maps packed cell coordinates to a start<<32|end range into
	// order; order holds task indices grouped by cell, ascending within each
	// group. The range encoding (instead of a slice per bucket) is what lets
	// Reset rebuild the index every planning instant without allocating.
	buckets map[uint64]uint64
	order   []int32
	// flat is the no-grid fallback used when the cell size is unusable
	// (no tasks, or a non-positive/non-finite cell): every query scans all
	// tasks, preserving exactness.
	flat bool
}

// CellSizeForReach derives the index cell size from the largest worker reach
// radius at a planning instant. Using the maximum keeps every worker's query
// disc within a 3×3 cell neighborhood; smaller per-worker radii simply scan
// fewer cells.
func CellSizeForReach(workers []*core.Worker) float64 {
	maxReach := 0.0
	for _, w := range workers {
		if w.Reach > maxReach {
			maxReach = w.Reach
		}
	}
	return maxReach
}

// NewIndex builds a grid index over tasks with the given cell size in
// kilometers. A non-positive or non-finite cell size yields a valid index
// that answers queries by scanning all tasks (the degenerate single-bucket
// grid), so callers never need to special-case zero-reach instants. The
// tasks slice is retained but not mutated.
func NewIndex(tasks []*core.Task, cellSize float64) *Index {
	ix := &Index{}
	ix.Reset(tasks, cellSize)
	return ix
}

// Reset rebuilds the index in place over a new task set and cell size,
// reusing the bucket map and index storage of previous generations. It is
// the steady-state path for planners that index the open pool once per
// instant; queries from other goroutines must not overlap a Reset.
func (ix *Index) Reset(tasks []*core.Task, cellSize float64) {
	ix.tasks = tasks
	ix.cell = cellSize
	ix.flat = false
	if len(tasks) == 0 || cellSize <= 0 || math.IsInf(cellSize, 1) || math.IsNaN(cellSize) {
		ix.flat = true
		return
	}
	ix.originX, ix.originY = tasks[0].Loc.X, tasks[0].Loc.Y
	for _, t := range tasks {
		ix.originX = math.Min(ix.originX, t.Loc.X)
		ix.originY = math.Min(ix.originY, t.Loc.Y)
	}
	if ix.buckets == nil {
		ix.buckets = make(map[uint64]uint64, len(tasks))
	} else {
		clear(ix.buckets)
	}
	// Counting sort into the order array: per-bucket counts, then cursors
	// (start<<32|next), then an ascending fill — which leaves every value as
	// start<<32|end and every group in ascending task order.
	for _, t := range tasks {
		key := ix.key(ix.cellCoord(t.Loc.X, ix.originX), ix.cellCoord(t.Loc.Y, ix.originY))
		ix.buckets[key]++
	}
	var total uint64
	for key, count := range ix.buckets {
		ix.buckets[key] = total<<32 | total
		total += count
	}
	ix.order = slices.Grow(ix.order[:0], len(tasks))[:len(tasks)]
	for i, t := range tasks {
		key := ix.key(ix.cellCoord(t.Loc.X, ix.originX), ix.cellCoord(t.Loc.Y, ix.originY))
		v := ix.buckets[key]
		ix.order[uint32(v)] = int32(i)
		ix.buckets[key] = v + 1
	}
}

// Len returns the number of indexed tasks.
func (ix *Index) Len() int { return len(ix.tasks) }

// CellSize returns the cell edge length the index was built with (0 when the
// index runs in its degenerate full-scan mode).
func (ix *Index) CellSize() float64 {
	if ix.flat {
		return 0
	}
	return ix.cell
}

// Tasks returns the indexed task slice in construction order.
func (ix *Index) Tasks() []*core.Task { return ix.tasks }

func (ix *Index) cellCoord(v, origin float64) int32 {
	return int32(math.Floor((v - origin) / ix.cell))
}

func (ix *Index) key(cx, cy int32) uint64 {
	return uint64(uint32(cx))<<32 | uint64(uint32(cy))
}

// Within returns the tasks at Euclidean distance ≤ r from p, in the order
// they were passed to NewIndex. r < 0 returns nil; r == 0 returns tasks
// exactly at p.
func (ix *Index) Within(p geo.Point, r float64) []*core.Task {
	return ix.AppendWithin(nil, p, r)
}

// AppendWithin appends the tasks within distance r of p to dst and returns
// the extended slice, letting per-worker query loops reuse one buffer.
func (ix *Index) AppendWithin(dst []*core.Task, p geo.Point, r float64) []*core.Task {
	if r < 0 || math.IsNaN(r) {
		return dst
	}
	// A query disc spanning more cells than there are tasks is cheaper to
	// answer by scanning the tasks; this also covers r = +Inf and discs so
	// large the cell coordinates would overflow int32, so the span check
	// happens in float64 before any integer conversion.
	spanX := math.Floor((p.X+r-ix.originX)/ix.cell) - math.Floor((p.X-r-ix.originX)/ix.cell) + 1
	spanY := math.Floor((p.Y+r-ix.originY)/ix.cell) - math.Floor((p.Y-r-ix.originY)/ix.cell) + 1
	if ix.flat || !(spanX*spanY <= float64(len(ix.tasks))) {
		for _, t := range ix.tasks {
			if geo.Dist(p, t.Loc) <= r {
				dst = append(dst, t)
			}
		}
		return dst
	}
	cx0 := ix.cellCoord(p.X-r, ix.originX)
	cx1 := ix.cellCoord(p.X+r, ix.originX)
	cy0 := ix.cellCoord(p.Y-r, ix.originY)
	cy1 := ix.cellCoord(p.Y+r, ix.originY)

	// Collect candidate indices cell by cell, then restore construction
	// order so the result is identical to the brute-force scan's. The stack
	// buffer covers typical per-query candidate counts, so the steady-state
	// planning loop performs no heap allocation here.
	var hitsBuf [64]int32
	hits := hitsBuf[:0]
	for cx := cx0; cx <= cx1; cx++ {
		for cy := cy0; cy <= cy1; cy++ {
			v, ok := ix.buckets[ix.key(cx, cy)]
			if !ok {
				continue
			}
			for _, i := range ix.order[v>>32 : uint32(v)] {
				if geo.Dist(p, ix.tasks[i].Loc) <= r {
					hits = append(hits, i)
				}
			}
		}
	}
	slices.Sort(hits)
	for _, i := range hits {
		dst = append(dst, ix.tasks[i])
	}
	return dst
}
