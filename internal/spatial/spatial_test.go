package spatial

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
)

func randomTasks(r *rand.Rand, n int, span float64) []*core.Task {
	out := make([]*core.Task, n)
	for i := range out {
		out[i] = &core.Task{
			ID:  i + 1,
			Loc: geo.Point{X: r.Float64() * span, Y: r.Float64() * span},
			Pub: 0, Exp: 1e5, Cell: -1,
		}
	}
	return out
}

// bruteWithin is the linear-scan oracle the index must agree with exactly.
func bruteWithin(tasks []*core.Task, p geo.Point, r float64) []*core.Task {
	if r < 0 || math.IsNaN(r) {
		return nil
	}
	var out []*core.Task
	for _, t := range tasks {
		if geo.Dist(p, t.Loc) <= r {
			out = append(out, t)
		}
	}
	return out
}

func sameTasks(t *testing.T, got, want []*core.Task) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d tasks, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("position %d: got task %d, want task %d", i, got[i].ID, want[i].ID)
		}
	}
}

func TestWithinMatchesBruteForceOracle(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	for trial := 0; trial < 60; trial++ {
		n := 1 + r.Intn(200)
		span := 0.5 + r.Float64()*8
		tasks := randomTasks(r, n, span)
		// Cell sizes from much smaller than the radius to much larger.
		cell := math.Pow(10, -1+2*r.Float64()) * span / 10
		ix := NewIndex(tasks, cell)
		for q := 0; q < 20; q++ {
			p := geo.Point{X: r.Float64()*span*1.4 - span*0.2, Y: r.Float64()*span*1.4 - span*0.2}
			radius := r.Float64() * span / 2
			sameTasks(t, ix.Within(p, radius), bruteWithin(tasks, p, radius))
		}
	}
}

func TestWithinBoundaryCells(t *testing.T) {
	// Points sitting exactly on cell edges and corners, queried at radii
	// that put them exactly on the disc boundary: distance == r must be
	// included, just as the brute-force filter includes it.
	var tasks []*core.Task
	id := 1
	for x := 0.0; x <= 4.0; x++ {
		for y := 0.0; y <= 4.0; y++ {
			tasks = append(tasks, &core.Task{ID: id, Loc: geo.Point{X: x, Y: y}, Exp: 1e5, Cell: -1})
			id++
		}
	}
	ix := NewIndex(tasks, 1.0) // cells exactly aligned with the lattice
	center := geo.Point{X: 2, Y: 2}
	for _, radius := range []float64{0, 1, math.Sqrt2, 2, 2.5, 10} {
		sameTasks(t, ix.Within(center, radius), bruteWithin(tasks, center, radius))
	}
	// Query point on a cell corner.
	corner := geo.Point{X: 1, Y: 1}
	for _, radius := range []float64{0, 0.999999, 1, 1.000001} {
		sameTasks(t, ix.Within(corner, radius), bruteWithin(tasks, corner, radius))
	}
}

func TestWithinZeroRadius(t *testing.T) {
	tasks := []*core.Task{
		{ID: 1, Loc: geo.Point{X: 1, Y: 1}, Exp: 1e5, Cell: -1},
		{ID: 2, Loc: geo.Point{X: 1, Y: 1}, Exp: 1e5, Cell: -1},
		{ID: 3, Loc: geo.Point{X: 1.0000001, Y: 1}, Exp: 1e5, Cell: -1},
	}
	ix := NewIndex(tasks, 0.5)
	got := ix.Within(geo.Point{X: 1, Y: 1}, 0)
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
		t.Fatalf("zero-radius query returned %d tasks, want the 2 colocated ones", len(got))
	}
	if got := ix.Within(geo.Point{X: 2, Y: 2}, -1); got != nil {
		t.Fatal("negative radius must return nil")
	}
}

func TestDegenerateCellSizes(t *testing.T) {
	r := rand.New(rand.NewSource(103))
	tasks := randomTasks(r, 50, 3)
	p := geo.Point{X: 1.5, Y: 1.5}
	for _, cell := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		ix := NewIndex(tasks, cell)
		if ix.CellSize() != 0 {
			t.Errorf("cell %v: CellSize = %v, want 0 (degenerate mode)", cell, ix.CellSize())
		}
		sameTasks(t, ix.Within(p, 1), bruteWithin(tasks, p, 1))
	}
	// Empty index answers every query with nothing.
	empty := NewIndex(nil, 1)
	if got := empty.Within(p, 100); len(got) != 0 {
		t.Fatalf("empty index returned %d tasks", len(got))
	}
	if empty.Len() != 0 {
		t.Fatal("empty index Len != 0")
	}
}

func TestHugeRadiusFallsBackToScan(t *testing.T) {
	// A disc spanning vastly more cells than there are tasks takes the
	// full-scan branch; the answer must not change.
	r := rand.New(rand.NewSource(107))
	tasks := randomTasks(r, 30, 100)
	ix := NewIndex(tasks, 0.01) // tiny cells, huge sparse extent
	p := geo.Point{X: 50, Y: 50}
	sameTasks(t, ix.Within(p, 500), bruteWithin(tasks, p, 500))
	sameTasks(t, ix.Within(p, 20), bruteWithin(tasks, p, 20))
}

func TestCellSizeForReach(t *testing.T) {
	ws := []*core.Worker{
		{ID: 1, Reach: 0.3}, {ID: 2, Reach: 1.7}, {ID: 3, Reach: 0.9},
	}
	if got := CellSizeForReach(ws); got != 1.7 {
		t.Fatalf("CellSizeForReach = %v, want 1.7", got)
	}
	if got := CellSizeForReach(nil); got != 0 {
		t.Fatalf("CellSizeForReach(nil) = %v, want 0", got)
	}
}

func TestAppendWithinReusesBuffer(t *testing.T) {
	r := rand.New(rand.NewSource(109))
	tasks := randomTasks(r, 80, 2)
	ix := NewIndex(tasks, 0.5)
	buf := make([]*core.Task, 0, 80)
	a := ix.AppendWithin(buf[:0], geo.Point{X: 1, Y: 1}, 0.7)
	sameTasks(t, a, bruteWithin(tasks, geo.Point{X: 1, Y: 1}, 0.7))
	b := ix.AppendWithin(buf[:0], geo.Point{X: 0.2, Y: 0.3}, 0.4)
	sameTasks(t, b, bruteWithin(tasks, geo.Point{X: 0.2, Y: 0.3}, 0.4))
}

func TestExtremeRadiiAndFarQueries(t *testing.T) {
	r := rand.New(rand.NewSource(113))
	tasks := randomTasks(r, 40, 2)
	ix := NewIndex(tasks, 0.001) // tiny cells: huge radii span astronomic cell counts
	p := geo.Point{X: 1, Y: 1}
	// Radii that would overflow int32 cell coordinates must fall back to the
	// scan and stay exact; +Inf returns everything.
	for _, radius := range []float64{1e7, 1e12, math.Inf(1)} {
		sameTasks(t, ix.Within(p, radius), bruteWithin(tasks, p, radius))
	}
	if got := ix.Within(p, math.Inf(1)); len(got) != len(tasks) {
		t.Fatalf("infinite radius returned %d of %d tasks", len(got), len(tasks))
	}
	// A query point astronomically far from the data returns nothing.
	far := geo.Point{X: 1e12, Y: -1e12}
	sameTasks(t, ix.Within(far, 0.5), bruteWithin(tasks, far, 0.5))
}

// bruteCellsInDisk is the linear-scan oracle: every cell whose rectangle's
// nearest point lies within r of p.
func bruteCellsInDisk(g geo.Grid, p geo.Point, r float64) []int {
	var out []int
	for i := 0; i < g.Cells(); i++ {
		rect := g.CellRect(i)
		dx := math.Max(0, math.Max(rect.MinX-p.X, p.X-rect.MaxX))
		dy := math.Max(0, math.Max(rect.MinY-p.Y, p.Y-rect.MaxY))
		if dx*dx+dy*dy <= r*r {
			out = append(out, i)
		}
	}
	return out
}

func TestCellsInDiskMatchesOracle(t *testing.T) {
	g := geo.NewGrid(geo.Rect{MinX: -2, MinY: 1, MaxX: 10, MaxY: 7}, 4, 6)
	r := rand.New(rand.NewSource(71))
	for trial := 0; trial < 500; trial++ {
		p := geo.Point{X: -4 + 16*r.Float64(), Y: -1 + 10*r.Float64()}
		radius := 3 * r.Float64()
		got := CellsInDisk(g, p, radius)
		want := bruteCellsInDisk(g, p, radius)
		if len(got) != len(want) {
			t.Fatalf("p=%+v r=%v: got %v want %v", p, radius, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("p=%+v r=%v: got %v want %v (order must be ascending)", p, radius, got, want)
			}
		}
	}
}

func TestCellsInDiskEdgeCases(t *testing.T) {
	g := geo.NewGrid(geo.Rect{MinX: 0, MinY: 0, MaxX: 4, MaxY: 4}, 2, 2)
	if got := CellsInDisk(g, geo.Point{X: 1, Y: 1}, -1); got != nil {
		t.Fatalf("negative radius returned %v", got)
	}
	if got := CellsInDisk(g, geo.Point{X: 1, Y: 1}, math.NaN()); got != nil {
		t.Fatalf("NaN radius returned %v", got)
	}
	if got := CellsInDisk(g, geo.Point{X: 1, Y: 1}, math.Inf(1)); len(got) != g.Cells() {
		t.Fatalf("infinite radius returned %v, want every cell", got)
	}
	// Zero radius: exactly the containing cell for an in-region point; a
	// point outside the region overlaps nothing (no CellOf-style clamping).
	if got := CellsInDisk(g, geo.Point{X: 1, Y: 1}, 0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("zero radius returned %v, want [0]", got)
	}
	if got := CellsInDisk(g, geo.Point{X: -99, Y: 99}, 0); got != nil {
		t.Fatalf("off-map zero radius returned %v, want nothing", got)
	}
	// A disk tangent to the shared boundary sees both sides.
	if got := CellsInDisk(g, geo.Point{X: 1, Y: 1.5}, 0.5); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("tangent disk returned %v, want [0 2]", got)
	}
}
