package stream

import (
	"testing"

	"repro/internal/assign"
	"repro/internal/wds"
	"repro/internal/workload"
)

// BenchmarkStreamRun measures a complete streaming simulation (DTA policy)
// at a small scale: the end-to-end cost of Algorithm 3.
func BenchmarkStreamRun(b *testing.B) {
	sc := workload.Generate(workload.Yueche().Scaled(0.03))
	in := Input{Workers: sc.Workers, Tasks: sc.Tasks, T0: sc.T0, T1: sc.T1}
	cfg := Config{
		Planner: &assign.Search{Opts: assign.Options{WDS: wds.Options{Travel: travel}}},
		Step:    2,
		Travel:  travel,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(in, cfg)
	}
}
