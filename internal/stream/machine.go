package stream

import (
	"fmt"
	"math"
	"slices"
	"time"

	"repro/internal/assign"
	"repro/internal/core"
	"repro/internal/geo"
)

// MachineConfig configures one assignment state machine. It is the part of
// Config that is meaningful without a scenario clock range: the replay engine
// (Engine) and the live dispatcher (internal/dispatch) both drive a Machine,
// the engine from presorted worker/task streams, the dispatcher from a
// concurrent event queue.
type MachineConfig struct {
	// Planner computes assignments at each planning instant.
	Planner assign.Planner
	// Fixed selects FTA semantics (see Config.Fixed).
	Fixed bool
	// Forecast, when non-nil, injects virtual tasks at its own cadence.
	Forecast Forecaster
	// Travel must match the planner's travel model.
	Travel geo.TravelModel
	// TrackRemovals makes the machine record the ids of departing workers
	// and closing tasks (assigned, expired, or cancelled) for collection via
	// TakeDepartedWorkers/TakeClosedTasks — how the dispatcher keeps its
	// routing maps from growing forever. Off for replay engines, which never
	// drain the lists.
	TrackRemovals bool
	// TrackCommits makes the machine log every real-task commitment for
	// collection via TakeCommits — the raw material of the sharded
	// dispatcher's cross-shard commit arbitration. Off for replay engines,
	// which have no competing machines.
	TrackCommits bool
	// TrackDisposals makes the machine log every Step-internal closure of an
	// owned task — assignments and expiries, the two dispositions that happen
	// inside Step rather than through a dispatcher-called method — for
	// collection via TakeDisposals. This feeds the dispatcher's per-task
	// lifecycle ledger; ghost replicas are never logged (their lifecycle is
	// accounted by the owning shard). Off by default.
	TrackDisposals bool
	// DirtyGrid, when non-degenerate, makes the machine track the set of
	// grid cells touched by pool changes between planning instants — task
	// arrivals, expiries, cancels, ghost routing and drops, commits, worker
	// admissions/departures/heartbeat moves, completed motions, commit
	// retractions, and virtual-task refreshes. Worker-side changes mark the
	// worker's whole reachability disk (the cells its position change can
	// affect); task-side changes mark the task's cell. The dirty set is
	// handed to a planner implementing assign.DirtyPlanner
	// (assign.Incremental) at each planning instant and cleared afterwards,
	// enabling incremental replanning; with a plain Planner, or under FTA
	// semantics (Fixed), the field is ignored and no tracking cost is paid.
	DirtyGrid geo.Grid
}

func (c MachineConfig) withDefaults() MachineConfig {
	if c.Travel.Speed <= 0 {
		c.Travel = geo.NewTravelModel(0)
	}
	return c
}

// Stats aggregates a machine's lifetime counters. The JSON tags are the wire
// names used by the dispatch service's metrics endpoint.
type Stats struct {
	// Assigned counts real tasks committed to a worker (the paper's headline
	// metric; commitment revalidates the spatio-temporal constraints, so
	// every assignment is also completed).
	Assigned int `json:"assigned"`
	// Expired counts real tasks that left the system unserved.
	Expired int `json:"expired"`
	// Cancelled counts tasks withdrawn by CancelTask before assignment.
	Cancelled int `json:"cancelled"`
	// Shed counts open tasks evicted by admission control (ShedTask) under
	// overload — terminal, like Expired and Cancelled, so conservation stays
	// provable: assigned + expired + cancelled + shed accounts every
	// admitted task.
	Shed int `json:"shed"`
	// Repositions counts moves toward virtual (predicted) tasks.
	Repositions int `json:"repositions"`
	// PlanCalls is the number of planning instants that invoked the planner.
	PlanCalls int `json:"plan_calls"`
	// PlanTime is the total wall time spent inside the planner.
	PlanTime time.Duration `json:"plan_time_ns"`
}

// workerState tracks one worker's runtime.
type workerState struct {
	w *core.Worker
	// Motion segment; when moving, the worker travels origin→dest during
	// [departT, arriveT].
	origin, dest     geo.Point
	departT, arriveT float64
	moving           bool
	// committed is the real task being executed (motion not interruptible);
	// nil while idle or repositioning toward predicted demand.
	committed *core.Task
	// plan is the remaining planned sequence beyond the committed task.
	plan core.Sequence
	// fixed marks an FTA worker that has received its one plan.
	fixed bool
	// entered marks that the worker has reached a planning instant while
	// available. A worker admitted with a future On is dirty-marked at
	// admission, but that mark is consumed by intervening instants; the
	// first available instant must re-mark its disk or a cached quiet
	// component could shadow the tasks it just became able to take.
	entered bool
}

// pos returns the worker's position at time t.
func (ws *workerState) pos(t float64) geo.Point {
	if !ws.moving {
		return ws.w.Loc
	}
	if ws.arriveT <= ws.departT {
		return ws.dest
	}
	return geo.Lerp(ws.origin, ws.dest, (t-ws.departT)/(ws.arriveT-ws.departT))
}

// Machine is the commit/expiry state machine of the Adaptive Algorithm
// (Section IV-C): active workers with motion segments and plans, the open
// task pool, FTA reservations, and the forecast cadence. Callers feed it
// arrival/departure events (AddWorker, AddTask, RemoveWorker, CancelTask,
// UpdateWorkerPos) and advance it with Step, which runs one planning instant.
//
// A Machine is single-goroutine, like the Engine built on it; concurrent
// drivers must serialize access themselves. The datawa-lint guarded analyzer
// enforces the consequence: fields move only through methods.
//
//datawa:serialized
type Machine struct {
	cfg MachineConfig

	active    []*workerState
	byWorker  map[int]*workerState
	open      map[int]*core.Task // published, unexpired, unassigned real tasks
	openOrder []*core.Task
	reserved  map[int]bool // task ids locked into fixed (FTA) plans
	ghost     map[int]bool // open tasks owned by another shard (read-only replicas)
	published []*core.Task // all real tasks published so far (history feed)
	virtuals  []*core.Task

	lastForecast float64
	stats        Stats
	// Removal logs, populated only when cfg.TrackRemovals is set.
	departed []int
	closed   []int
	// Commit log, populated only when cfg.TrackCommits is set.
	commits []Commit
	// Disposal log, populated only when cfg.TrackDisposals is set.
	disposals []Disposal
	// Dirty-cell tracking (MachineConfig.DirtyGrid): dp is the planner's
	// incremental interface when active, dirty the cells touched since the
	// last planner invocation. The set is cleared only after a planner call —
	// planning instants with no plannable worker leave it accumulating.
	dp    assign.DirtyPlanner
	dirty map[int]struct{}

	// Per-Step scratch, reused so a steady-state Step allocates only what it
	// publishes (plans, commit logs). The machine is single-goroutine, so one
	// set of buffers suffices.
	cellScratch []int
	planScratch []*workerState
	wsScratch   []*core.Worker
	poolScratch []*core.Task
	assignedMap map[int]core.Sequence
}

// Commit records one real-task commitment made during a Step, for cross-
// shard arbitration: which worker took which task, and when it will arrive.
type Commit struct {
	Task   int
	Worker int
	// Arrive is the worker's arrival instant at the task — the deterministic
	// quality signal arbitration prefers (earlier arrival wins).
	Arrive float64
}

// Disposal records one Step-internal closure of an owned task: an assignment
// (Assigned true, Worker the committing worker) or an expiry (Assigned false,
// Worker −1). Cancels and sheds are not disposals — they arrive through
// dispatcher-called methods, which the dispatcher ledgers directly.
type Disposal struct {
	Task     int
	Worker   int
	Assigned bool
}

// TakeDisposals returns and clears the owned-task closures logged since the
// last call. Empty unless MachineConfig.TrackDisposals is set. A disposal
// for a commitment later undone by RetractCommit stays in the log; drivers
// that retract (the sharded dispatcher's arbitration) know the losers and
// skip their stale entries.
func (m *Machine) TakeDisposals() []Disposal {
	out := m.disposals
	m.disposals = nil
	return out
}

// NewMachine returns an empty machine.
//
//datawa:locked(Machine) the constructor owns the fresh value
func NewMachine(cfg MachineConfig) *Machine {
	m := &Machine{
		cfg:          cfg.withDefaults(),
		byWorker:     make(map[int]*workerState),
		open:         make(map[int]*core.Task),
		reserved:     make(map[int]bool),
		ghost:        make(map[int]bool),
		lastForecast: math.Inf(-1),
	}
	// Dirty tracking requires a grid, an incremental-capable planner, and
	// adaptive semantics: FTA's locked plans and reserved-task pool filtering
	// change membership without pool events, so incremental reuse would be
	// unsound there — the wrapper is simply bypassed.
	if m.cfg.DirtyGrid.Cells() > 0 && !m.cfg.Fixed {
		if dp, ok := m.cfg.Planner.(assign.DirtyPlanner); ok {
			m.dp = dp
			m.dirty = make(map[int]struct{})
		}
	}
	return m
}

// markCell records a task-side pool change: the cell of the task's (clamped)
// location joins the dirty set.
func (m *Machine) markCell(p geo.Point) {
	if m.dp != nil {
		m.dirty[m.cfg.DirtyGrid.CellOf(p)] = struct{}{}
	}
}

// markDisk records a worker-side change: every cell the worker's
// reachability disk can influence joins the dirty set, so any cached
// component whose tasks the worker could newly reach (or stop shadowing) is
// invalidated. The geometry matches assign.WorkerCells — the partition and
// the invalidation must see identical cell sets.
func (m *Machine) markDisk(p geo.Point, reach float64) {
	if m.dp == nil {
		return
	}
	m.cellScratch = assign.AppendWorkerCells(m.cellScratch[:0], m.cfg.DirtyGrid, p, reach)
	for _, c := range m.cellScratch {
		m.dirty[c] = struct{}{}
	}
}

// AddWorker admits a worker at time now (Algorithm 3 lines 3–5). The worker
// is copied, so position updates stay internal. A worker whose availability
// window is already over — or whose id is already active — is ignored; the
// return value reports admission.
func (m *Machine) AddWorker(w *core.Worker, now float64) bool {
	if w == nil || w.Off <= now {
		return false
	}
	if _, dup := m.byWorker[w.ID]; dup {
		return false
	}
	cp := *w
	ws := &workerState{w: &cp}
	m.active = append(m.active, ws)
	m.byWorker[cp.ID] = ws
	m.markDisk(cp.Loc, cp.Reach)
	return true
}

// AddTask publishes a real task at time now (lines 6–9). A task that is
// already expired counts toward Stats.Expired and is not admitted; a task
// whose id is already open is rejected outright — two live tasks sharing an
// id would let a plan assign the id twice, which the planner-consistency
// check treats as fatal. The return value reports admission to the open
// pool.
func (m *Machine) AddTask(s *core.Task, now float64) bool {
	if s == nil {
		return false
	}
	if _, dup := m.open[s.ID]; dup {
		return false
	}
	// The published history only feeds the forecaster; without one,
	// retaining it would grow a long-running machine without bound.
	if m.cfg.Forecast != nil {
		m.published = append(m.published, s)
	}
	if s.Exp <= now {
		m.stats.Expired++
		return false
	}
	m.open[s.ID] = s
	m.openOrder = append(m.openOrder, s)
	m.markCell(s.Loc)
	return true
}

// AddGhost publishes a read-only replica of a task owned by another shard's
// machine — the cross-shard handoff path of the sharded dispatcher. Ghosts
// plan and commit exactly like owned tasks (a won commit is a real
// assignment, counted here), but their lifecycle is accounted elsewhere: an
// expired-on-arrival or later-expiring ghost never increments Stats.Expired
// and never enters the closed-task log, so aggregating shard stats counts
// each task once. The return value reports admission to the open pool.
func (m *Machine) AddGhost(s *core.Task, now float64) bool {
	if s == nil || s.Exp <= now {
		return false
	}
	if _, dup := m.open[s.ID]; dup {
		return false
	}
	m.open[s.ID] = s
	m.openOrder = append(m.openOrder, s)
	m.ghost[s.ID] = true
	m.markCell(s.Loc)
	return true
}

// DropTask silently removes an open task (owned or ghost): no stats, no
// closed-task log entry. It is the arbitration/cancel cleanup hook — once a
// replicated task is committed or withdrawn anywhere, every other copy must
// leave its pool before the next planning instant, or two shards could
// assign the same task. It reports whether a task left the open pool.
func (m *Machine) DropTask(id int) bool {
	s, ok := m.open[id]
	if !ok {
		return false
	}
	delete(m.open, s.ID)
	delete(m.reserved, s.ID)
	delete(m.ghost, s.ID)
	m.markCell(s.Loc)
	return true
}

// TakeCommits returns and clears the commitments made since the last call.
// Empty unless MachineConfig.TrackCommits is set.
func (m *Machine) TakeCommits() []Commit {
	out := m.commits
	m.commits = nil
	return out
}

// RetractCommit undoes a commitment the worker made this Step — the losing
// side of cross-shard arbitration, invoked before the clock advances past
// the planning instant now. The worker snaps back to its pre-commit
// position, the assignment is uncounted, and the worker immediately resumes
// executing the remainder of its plan (which may produce further commits for
// the next arbitration round). The task itself stays out of the open pool:
// it was won by another shard. It reports whether the commitment existed.
func (m *Machine) RetractCommit(workerID, taskID int, now float64) bool {
	ws, ok := m.byWorker[workerID]
	if !ok || ws.committed == nil || ws.committed.ID != taskID {
		return false
	}
	ws.moving = false
	ws.w.Loc = ws.origin
	ws.committed = nil
	m.stats.Assigned--
	// The restored worker re-enters the planning pool at its pre-commit
	// position: its whole reachability disk must be invalidated, or a cached
	// quiet component it can now reach into would be spliced stale. Any
	// commits the resumed plan produces mark their own cells below.
	m.markDisk(ws.w.Loc, ws.w.Reach)
	m.executeWorker(ws, now)
	return true
}

// RemoveWorker ends a worker's availability window at time now — the
// dispatcher's worker-offline event. An idle or repositioning worker leaves
// immediately (exactly what the next Step's eviction would do, so the same
// id can come back online within the same planning epoch); a worker
// executing a committed task finishes it first, with the engine's departure
// semantics. Any reserved (FTA) tasks return to the pool.
func (m *Machine) RemoveWorker(id int, now float64) bool {
	ws, ok := m.byWorker[id]
	if !ok {
		return false
	}
	if now < ws.w.Off {
		ws.w.Off = now
	}
	if ws.committed == nil {
		m.releasePlan(ws)
		delete(m.byWorker, id)
		for i, cur := range m.active {
			if cur == ws {
				m.active = append(m.active[:i], m.active[i+1:]...)
				break
			}
		}
		m.noteDeparture(id)
		m.markDisk(ws.w.Loc, ws.w.Reach)
	}
	return true
}

// CancelTask withdraws an open task before assignment. Cancelling a task a
// worker has already committed to is a no-op (the commitment already counted
// as assigned). It reports whether a task left the open pool.
func (m *Machine) CancelTask(id int) bool {
	s, ok := m.open[id]
	if !ok {
		return false
	}
	delete(m.open, s.ID)
	delete(m.reserved, s.ID)
	m.markCell(s.Loc)
	if m.ghost[s.ID] {
		// Replica of another shard's task: the owner accounts the cancel.
		delete(m.ghost, s.ID)
		return true
	}
	m.stats.Cancelled++
	m.noteClosure(s.ID)
	return true
}

// ShedTask evicts an open task under admission control — the dispatcher's
// overload path. It mirrors CancelTask (reserved FTA pins release, dirty
// cell marked, ghost replicas uncounted) but accounts the closure as Shed:
// the system, not the requester, withdrew the task. Shedding a task a worker
// has already committed to is a no-op — the commitment already counted as
// assigned. It reports whether a task left the open pool.
func (m *Machine) ShedTask(id int) bool {
	s, ok := m.open[id]
	if !ok {
		return false
	}
	delete(m.open, s.ID)
	delete(m.reserved, s.ID)
	m.markCell(s.Loc)
	if m.ghost[s.ID] {
		// Replica of another shard's task: the owner accounts the shed.
		delete(m.ghost, s.ID)
		return true
	}
	m.stats.Shed++
	m.noteClosure(s.ID)
	return true
}

// UpdateWorkerPos moves an idle worker to a reported position — the
// dispatcher's heartbeat event. It reports whether the worker is known;
// position reports for moving workers are accepted but ignored, since their
// position is owned by the motion segment.
func (m *Machine) UpdateWorkerPos(id int, loc geo.Point) bool {
	ws, ok := m.byWorker[id]
	if !ok {
		return false
	}
	if !ws.moving && (ws.w.Loc != loc) {
		m.markDisk(ws.w.Loc, ws.w.Reach)
		ws.w.Loc = loc
		m.markDisk(loc, ws.w.Reach)
	}
	return true
}

// TakeDepartedWorkers returns and clears the ids of workers that left since
// the last call. Empty unless MachineConfig.TrackRemovals is set.
func (m *Machine) TakeDepartedWorkers() []int {
	out := m.departed
	m.departed = nil
	return out
}

// TakeClosedTasks returns and clears the ids of tasks that left the open
// pool (assigned, expired, or cancelled) since the last call. Empty unless
// MachineConfig.TrackRemovals is set.
func (m *Machine) TakeClosedTasks() []int {
	out := m.closed
	m.closed = nil
	return out
}

func (m *Machine) noteDeparture(id int) {
	if m.cfg.TrackRemovals {
		m.departed = append(m.departed, id)
	}
}

func (m *Machine) noteClosure(id int) {
	if m.cfg.TrackRemovals {
		m.closed = append(m.closed, id)
	}
}

// Step advances the machine to time now: it completes due motion segments,
// evicts expired tasks and departed workers, refreshes the forecast, runs
// one planning instant, and commits the head of each idle worker's plan.
// Arrival events for this instant must be applied before the call.
func (m *Machine) Step(now float64) {
	m.completeMotions(now)
	m.evict(now)
	m.forecast(now)
	m.plan(now)
	m.execute(now)
}

// Stats returns the lifetime counters.
func (m *Machine) Stats() Stats { return m.stats }

// Workers returns the number of active workers.
func (m *Machine) Workers() int { return len(m.active) }

// HasWorker reports whether a worker with this id is currently active.
func (m *Machine) HasWorker(id int) bool {
	_, ok := m.byWorker[id]
	return ok
}

// HasOpenTask reports whether a task with this id is currently open.
func (m *Machine) HasOpenTask(id int) bool {
	_, ok := m.open[id]
	return ok
}

// OpenTask returns the open task with this id, if any. The caller must
// treat the task as read-only: owned copies may be shared with other shards
// as ghosts.
func (m *Machine) OpenTask(id int) (*core.Task, bool) {
	s, ok := m.open[id]
	return s, ok
}

// OpenTasks returns the number of open (published, unexpired, unassigned)
// real tasks.
func (m *Machine) OpenTasks() int { return len(m.open) }

// WorkerPlan describes one worker's current schedule for plan queries.
type WorkerPlan struct {
	Worker int `json:"worker"`
	// Committed is the id of the real task the worker is travelling to, or
	// -1 when idle or repositioning.
	Committed int `json:"committed"`
	// Moving reports an in-flight motion segment (committed or reposition).
	Moving bool `json:"moving"`
	// Next holds the ids of the remaining planned tasks beyond the committed
	// one; virtual tasks carry their (negative or synthetic) planner ids.
	Next []int `json:"next"`
}

// PlanOf returns the current schedule of an active worker.
func (m *Machine) PlanOf(id int) (WorkerPlan, bool) {
	ws, ok := m.byWorker[id]
	if !ok {
		return WorkerPlan{}, false
	}
	wp := WorkerPlan{Worker: id, Committed: -1, Moving: ws.moving}
	if ws.committed != nil {
		wp.Committed = ws.committed.ID
	}
	for _, s := range ws.plan {
		wp.Next = append(wp.Next, s.ID)
	}
	return wp, true
}

// completeMotions finishes any motion segment that ends by time t.
func (m *Machine) completeMotions(t float64) {
	for _, ws := range m.active {
		if ws.moving && ws.arriveT <= t {
			ws.moving = false
			ws.w.Loc = ws.dest
			if ws.committed != nil {
				// The committed task is performed on arrival; it was
				// counted as assigned at commitment.
				ws.committed = nil
			}
			// The worker re-enters the planning pool here.
			m.markDisk(ws.w.Loc, ws.w.Reach)
		}
	}
}

// evict drops expired open tasks and departed workers (line 15). Membership
// of openOrder is checked by pointer identity, not id: after a cancel (or
// cross-shard drop) an id can be reused within the same epoch batch, and an
// id-only check would resurrect the closed entry alongside the new task.
func (m *Machine) evict(t float64) {
	// All three filters compact in place (write index trails read index) and
	// clear the tail so dropped pointers do not outlive their entries.
	keptTasks := m.openOrder[:0]
	for _, s := range m.openOrder {
		if m.open[s.ID] != s {
			continue
		}
		if s.Exp <= t {
			delete(m.open, s.ID)
			delete(m.reserved, s.ID)
			m.markCell(s.Loc)
			// A ghost's lifecycle is accounted by its owning shard.
			if m.ghost[s.ID] {
				delete(m.ghost, s.ID)
				continue
			}
			m.stats.Expired++
			m.noteClosure(s.ID)
			if m.cfg.TrackDisposals {
				m.disposals = append(m.disposals, Disposal{Task: s.ID, Worker: -1})
			}
			continue
		}
		keptTasks = append(keptTasks, s)
	}
	clear(m.openOrder[len(keptTasks):])
	m.openOrder = keptTasks

	kept := m.active[:0]
	for _, ws := range m.active {
		// Workers finishing a committed task stay until arrival (validity
		// guaranteed completion before off); all others leave at off.
		if ws.w.Off <= t && ws.committed == nil {
			m.releasePlan(ws)
			delete(m.byWorker, ws.w.ID)
			m.noteDeparture(ws.w.ID)
			m.markDisk(ws.w.Loc, ws.w.Reach)
			continue
		}
		kept = append(kept, ws)
	}
	clear(m.active[len(kept):])
	m.active = kept

	// The machine owns m.virtuals (replaceVirtuals documents the handoff),
	// so expiring entries compact in place too.
	keptVirtual := m.virtuals[:0]
	for _, v := range m.virtuals {
		if v.Exp > t {
			keptVirtual = append(keptVirtual, v)
		} else {
			m.markCell(v.Loc)
		}
	}
	clear(m.virtuals[len(keptVirtual):])
	m.virtuals = keptVirtual
}

// releasePlan returns a departing fixed worker's unexecuted reserved tasks
// to the pool.
func (m *Machine) releasePlan(ws *workerState) {
	for _, s := range ws.plan {
		if !s.Virtual {
			delete(m.reserved, s.ID)
		}
	}
	ws.plan = nil
}

// HistoryBounded is optionally implemented by forecasters that read only a
// bounded span of published history. Long-running drivers (the Machine
// itself, the dispatcher) prune older tasks before each forecast so the
// history feed does not grow with uptime.
type HistoryBounded interface {
	// HistorySpan returns the history horizon in seconds: tasks published
	// before now − HistorySpan() no longer influence predictions.
	HistorySpan() float64
}

// PruneHistory discards tasks published before cutoff, preserving order.
func PruneHistory(tasks []*core.Task, cutoff float64) []*core.Task {
	kept := tasks[:0]
	for _, s := range tasks {
		if s.Pub >= cutoff {
			kept = append(kept, s)
		}
	}
	return kept
}

// forecast refreshes virtual tasks at the predictor's cadence.
func (m *Machine) forecast(t float64) {
	if m.cfg.Forecast == nil {
		return
	}
	if t-m.lastForecast < m.cfg.Forecast.Span() {
		return
	}
	m.lastForecast = t
	if hb, ok := m.cfg.Forecast.(HistoryBounded); ok {
		m.published = PruneHistory(m.published, t-hb.HistorySpan())
	}
	m.replaceVirtuals(m.cfg.Forecast.Virtuals(m.published, t))
}

// SetVirtuals replaces the machine's virtual-task set — used by drivers that
// forecast globally (the sharded dispatcher) instead of per machine. Expired
// entries are evicted on the next Step, exactly like machine-local virtuals.
func (m *Machine) SetVirtuals(v []*core.Task) {
	m.replaceVirtuals(v)
}

// replaceVirtuals swaps the virtual-task set, dirtying the cells of both the
// outgoing and incoming virtuals: either side can change a cached
// component's planning pool. The machine takes ownership of v — expiry
// eviction compacts it in place — so callers must hand over a slice they will
// not read again (every Forecaster builds a fresh one per call).
func (m *Machine) replaceVirtuals(v []*core.Task) {
	for _, old := range m.virtuals {
		m.markCell(old.Loc)
	}
	for _, nv := range v {
		m.markCell(nv.Loc)
	}
	m.virtuals = v
}

// plan runs one planning instant (Algorithm 4 via the configured planner).
func (m *Machine) plan(t float64) {
	planners := m.planScratch[:0]
	for _, ws := range m.active {
		if ws.committed != nil {
			continue // executing a real task: not interruptible
		}
		if m.cfg.Fixed && ws.fixed && len(ws.plan) > 0 {
			continue // FTA: plan locked
		}
		if !ws.w.Available(t) {
			continue
		}
		if !ws.entered {
			ws.entered = true
			m.markDisk(ws.w.Loc, ws.w.Reach)
		}
		planners = append(planners, ws)
	}
	m.planScratch = planners
	if len(planners) == 0 {
		return
	}
	slices.SortFunc(planners, func(a, b *workerState) int { return a.w.ID - b.w.ID })

	// Refresh worker locations to their positions now; repositioning
	// workers are interrupted at their current point — a position change the
	// dirty set must see before the planner runs.
	workers := m.wsScratch[:0]
	for _, ws := range planners {
		ws.w.Loc = ws.pos(t)
		if ws.moving && ws.committed == nil {
			ws.moving = false
			m.markDisk(ws.w.Loc, ws.w.Reach)
		}
		workers = append(workers, ws.w)
	}
	m.wsScratch = workers

	// Planning pool: open unreserved real tasks plus current virtuals. The
	// identity check (not just id membership) keeps a stale openOrder entry
	// for a closed-and-reused id out of the pool.
	pool := m.poolScratch[:0]
	for _, s := range m.openOrder {
		if m.open[s.ID] == s && !m.reserved[s.ID] {
			pool = append(pool, s)
		}
	}
	pool = append(pool, m.virtuals...)
	m.poolScratch = pool

	start := time.Now() //datawa:wallclock planner wall-time stats, observability only
	var plan core.Plan
	if m.dp != nil {
		plan = m.dp.PlanDirty(workers, pool, t, m.dirty)
		clear(m.dirty)
	} else {
		plan = m.cfg.Planner.Plan(workers, pool, t)
	}
	m.stats.PlanTime += time.Since(start) //datawa:wallclock planner wall-time stats, observability only
	m.stats.PlanCalls++

	if dup, ok := plan.Consistent(); !ok {
		panic(fmt.Sprintf("stream: planner %s assigned task %d twice", m.cfg.Planner.Name(), dup))
	}

	// Adaptive semantics: every replannable worker's sequence is replaced
	// by the new plan (or cleared). Fixed semantics: assigned workers lock.
	if m.assignedMap == nil {
		m.assignedMap = make(map[int]core.Sequence, len(plan))
	} else {
		clear(m.assignedMap)
	}
	assigned := m.assignedMap
	for _, a := range plan {
		assigned[a.Worker.ID] = a.Seq
	}
	for _, ws := range planners {
		seq, ok := assigned[ws.w.ID]
		if !ok {
			ws.plan = nil
			continue
		}
		ws.plan = seq
		if m.cfg.Fixed {
			ws.fixed = true
			for _, s := range seq {
				if !s.Virtual {
					m.reserved[s.ID] = true
				}
			}
		}
	}
}

// execute starts the first task of each idle worker's planned sequence
// (Algorithm 3 lines 10–14).
func (m *Machine) execute(t float64) {
	for _, ws := range m.active {
		m.executeWorker(ws, t)
	}
}

// executeWorker runs one worker's plan head until it is moving or the plan
// runs dry. It is also the resume path after a commit retraction.
func (m *Machine) executeWorker(ws *workerState, t float64) {
	if ws.moving || !ws.w.Available(t) {
		return
	}
	for len(ws.plan) > 0 && !ws.moving {
		head := ws.plan[0]
		ws.plan = ws.plan[1:]
		if head.Virtual {
			// Reposition toward predicted demand; interruptible.
			if head.Exp <= t {
				continue
			}
			if geo.Dist(ws.w.Loc, head.Loc) < 1e-9 {
				// Already positioned at the predicted demand: hold
				// here and let the next planned task (if any) start.
				continue
			}
			m.startMotion(ws, t, head.Loc, nil)
			m.stats.Repositions++
			continue
		}
		// Revalidate the head against the live clock before committing. The
		// identity check also rejects a plan entry whose id was closed and
		// reused by a different task within the same epoch.
		if m.open[head.ID] != head {
			continue
		}
		arrive := t + m.cfg.Travel.Time(ws.w.Loc, head.Loc)
		if arrive >= head.Exp || arrive >= ws.w.Off {
			continue // no longer satisfiable; try the next planned task
		}
		delete(m.open, head.ID)
		delete(m.reserved, head.ID)
		m.markCell(head.Loc)
		m.stats.Assigned++
		if m.ghost[head.ID] {
			delete(m.ghost, head.ID)
		} else {
			m.noteClosure(head.ID)
			if m.cfg.TrackDisposals {
				m.disposals = append(m.disposals, Disposal{Task: head.ID, Worker: ws.w.ID, Assigned: true})
			}
		}
		if m.cfg.TrackCommits {
			m.commits = append(m.commits, Commit{Task: head.ID, Worker: ws.w.ID, Arrive: arrive})
		}
		m.startMotion(ws, t, head.Loc, head)
	}
}

func (m *Machine) startMotion(ws *workerState, t float64, dest geo.Point, committed *core.Task) {
	ws.origin = ws.w.Loc
	ws.dest = dest
	ws.departT = t
	ws.arriveT = t + m.cfg.Travel.Time(ws.origin, dest)
	ws.moving = true
	ws.committed = committed
}
