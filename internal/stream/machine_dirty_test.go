package stream

import (
	"sort"
	"testing"

	"repro/internal/assign"
	"repro/internal/core"
	"repro/internal/geo"
)

// dirtyRecorder is a DirtyPlanner stub that records the dirty set handed to
// each PlanDirty call while delegating planning to a real planner.
type dirtyRecorder struct {
	inner assign.Planner
	calls [][]int // sorted cell sets, one per PlanDirty invocation
}

func (r *dirtyRecorder) Name() string { return "dirtyRecorder" }

func (r *dirtyRecorder) Plan(w []*core.Worker, s []*core.Task, now float64) core.Plan {
	return r.inner.Plan(w, s, now)
}

func (r *dirtyRecorder) PlanDirty(w []*core.Worker, s []*core.Task, now float64, dirty map[int]struct{}) core.Plan {
	cells := make([]int, 0, len(dirty))
	for c := range dirty {
		cells = append(cells, c)
	}
	sort.Ints(cells)
	r.calls = append(r.calls, cells)
	return r.inner.Plan(w, s, now)
}

// dirtyGrid is 4×4 over [0,4)²: 1 km cells, row-major indices.
var dirtyGrid = geo.NewGrid(geo.Rect{MinX: 0, MinY: 0, MaxX: 4, MaxY: 4}, 4, 4)

func dirtyMachine() (*Machine, *dirtyRecorder) {
	rec := &dirtyRecorder{inner: searchPlanner()}
	m := NewMachine(MachineConfig{Planner: rec, Travel: travel, DirtyGrid: dirtyGrid})
	return m, rec
}

func contains(cells []int, c int) bool {
	for _, x := range cells {
		if x == c {
			return true
		}
	}
	return false
}

// TestMachineDirtyMarksEvents walks the event kinds through a tracked
// machine and checks the cells each one dirties: task arrivals mark the
// task's cell, worker-side changes mark the whole reachability disk, and the
// set is cleared after each planner invocation but accumulates across
// planner-less instants.
func TestMachineDirtyMarksEvents(t *testing.T) {
	m, rec := dirtyMachine()

	// Task at (3.5, 3.5) → cell 15. No workers yet: the planner is not
	// invoked, the mark must survive until one is.
	m.AddTask(task(1, 3.5, 3.5, 0, 1000), 0)
	m.Step(0)
	if len(rec.calls) != 0 {
		t.Fatalf("planner invoked with no plannable worker: %v", rec.calls)
	}

	// Worker at (0.5, 0.5) reach 0.4: disk stays within cell 0.
	m.AddWorker(worker(1, 0.5, 0.5, 0.4, 0, 1000), 1)
	m.Step(1)
	if len(rec.calls) != 1 {
		t.Fatalf("planner calls = %d, want 1", len(rec.calls))
	}
	if got := rec.calls[0]; !contains(got, 15) || !contains(got, 0) {
		t.Fatalf("first dirty set %v must hold the task cell 15 and the worker cell 0", got)
	}

	// Nothing happened since: the next instant's dirty set is empty.
	m.Step(2)
	if got := rec.calls[1]; len(got) != 0 {
		t.Fatalf("quiet instant dirty set = %v, want empty", got)
	}

	// A heartbeat move marks both the old and the new disk.
	m.UpdateWorkerPos(1, geo.Point{X: 2.5, Y: 0.5})
	m.Step(3)
	if got := rec.calls[2]; !contains(got, 0) || !contains(got, 2) {
		t.Fatalf("heartbeat dirty set %v must hold old cell 0 and new cell 2", got)
	}

	// A cancel marks the task's cell.
	m.CancelTask(1)
	m.Step(4)
	if got := rec.calls[3]; !contains(got, 15) || contains(got, 0) {
		t.Fatalf("cancel dirty set = %v, want task cell 15 only", got)
	}

	// Worker departure marks its disk.
	m.RemoveWorker(1, 5)
	m.AddWorker(worker(2, 1.5, 3.5, 0.4, 5, 1000), 5)
	m.Step(5)
	if got := rec.calls[4]; !contains(got, 2) || !contains(got, 13) {
		t.Fatalf("dirty set %v must hold departed worker's cell 2 and new worker's cell 13", got)
	}
}

// TestMachineDirtyMarksCommitAndArrival pins the motion lifecycle: a commit
// dirties the task's cell at commit time, and the worker's arrival dirties
// its disk at the destination when it re-enters the planning pool.
func TestMachineDirtyMarksCommitAndArrival(t *testing.T) {
	m, rec := dirtyMachine()
	m.AddWorker(worker(1, 0.5, 0.5, 1, 0, 10000), 0)
	m.AddTask(task(1, 1.5, 0.5, 0, 5000), 0)
	m.Step(0) // plan + commit: travel 1 km at 0.01 km/s = 100 s
	if len(rec.calls) != 1 {
		t.Fatalf("planner calls = %d, want 1", len(rec.calls))
	}
	// The commit happened after the planner ran: its mark belongs to the
	// next invocation. The worker is moving until t=100, so the next
	// planner call only happens once it arrives and re-enters the pool.
	m.Step(50)
	m.Step(100)
	if len(rec.calls) != 2 {
		t.Fatalf("planner calls = %d, want 2 (moving worker plans only on arrival)", len(rec.calls))
	}
	got := rec.calls[1]
	if !contains(got, 1) {
		t.Fatalf("dirty set %v must hold the committed task's cell 1 (commit + arrival disk)", got)
	}
	if !contains(got, 0) {
		t.Fatalf("dirty set %v must hold cell 0: the arrival disk spans the cell boundary", got)
	}
}

// TestMachineDirtyMarksRetraction pins the arbitration hook: retracting a
// commit dirties the restored worker's whole reachability disk — the cells a
// stale cached component could wrongly shadow from it.
func TestMachineDirtyMarksRetraction(t *testing.T) {
	rec := &dirtyRecorder{inner: searchPlanner()}
	m := NewMachine(MachineConfig{
		Planner: rec, Travel: travel, DirtyGrid: dirtyGrid, TrackCommits: true,
	})
	m.AddWorker(worker(1, 1.5, 1.5, 1, 0, 10000), 0)
	m.AddTask(task(1, 1.5, 2.4, 0, 5000), 0)
	m.Step(0)
	commits := m.TakeCommits()
	if len(commits) != 1 {
		t.Fatalf("commits = %+v, want one", commits)
	}
	if !m.RetractCommit(1, 1, 0) {
		t.Fatal("retraction refused")
	}
	m.Step(1)
	if len(rec.calls) != 2 {
		t.Fatalf("planner calls = %d, want 2 (retracted worker is plannable again)", len(rec.calls))
	}
	// Worker restored to (1.5, 1.5) with reach 1: the disk spans cells
	// around cell 5 — all four neighbors included.
	got := rec.calls[1]
	for _, c := range []int{1, 4, 5, 6, 9} {
		if !contains(got, c) {
			t.Fatalf("post-retraction dirty set %v must cover the restored disk cell %d", got, c)
		}
	}
}

// TestMachineDirtyRequiresGridAndAdaptive pins the gates: no grid or FTA
// semantics must leave the dirty path (and its planner interface) unused.
func TestMachineDirtyRequiresGridAndAdaptive(t *testing.T) {
	rec := &dirtyRecorder{inner: searchPlanner()}
	m := NewMachine(MachineConfig{Planner: rec, Travel: travel}) // no grid
	m.AddWorker(worker(1, 0.5, 0.5, 1, 0, 1000), 0)
	m.AddTask(task(1, 0.6, 0.5, 0, 500), 0)
	m.Step(0)
	if len(rec.calls) != 0 {
		t.Fatal("PlanDirty invoked without a DirtyGrid")
	}

	rec = &dirtyRecorder{inner: searchPlanner()}
	m = NewMachine(MachineConfig{Planner: rec, Travel: travel, DirtyGrid: dirtyGrid, Fixed: true})
	m.AddWorker(worker(1, 0.5, 0.5, 1, 0, 1000), 0)
	m.AddTask(task(1, 0.6, 0.5, 0, 500), 0)
	m.Step(0)
	if len(rec.calls) != 0 {
		t.Fatal("PlanDirty invoked under FTA semantics")
	}
}

// TestMachineDirtyMarksFutureOnWorker pins the late-availability case: a
// worker admitted with a future On is dirty-marked at admission, but
// intervening planning instants consume that mark — its first *available*
// instant must re-dirty the reach disk, or a cached quiet component could
// shadow the tasks the worker just became able to take.
func TestMachineDirtyMarksFutureOnWorker(t *testing.T) {
	m, rec := dirtyMachine()
	// An always-available worker elsewhere keeps the planner running (and
	// the dirty set draining) every instant.
	m.AddWorker(worker(1, 0.5, 0.5, 0.3, 0, 1000), 0)
	// Worker 2 near cell 15 comes online at t=0 but is only available from
	// t=5 (future On).
	late := worker(2, 3.5, 3.5, 0.4, 5, 1000)
	m.AddWorker(late, 0)
	for i := 0; i < 5; i++ {
		m.Step(float64(i))
	}
	// By t=4 the admission mark has long been consumed.
	if got := rec.calls[4]; len(got) != 0 {
		t.Fatalf("pre-availability dirty set = %v, want empty", got)
	}
	m.Step(5)
	if got := rec.calls[5]; !contains(got, 15) {
		t.Fatalf("first-available dirty set = %v, must re-mark the late worker's cell 15", got)
	}
}
