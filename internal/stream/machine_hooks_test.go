package stream

import (
	"testing"
)

// trackedMachine returns a machine with the dispatcher-facing hooks on:
// removal, commit, and ghost tracking.
func trackedMachine() *Machine {
	return NewMachine(MachineConfig{
		Planner: searchPlanner(), Travel: travel,
		TrackRemovals: true, TrackCommits: true,
	})
}

// TestMachineGhostLifecycle: a ghost plans and commits like an owned task,
// but its expiry is silent — no Expired count, no closed-task log entry.
func TestMachineGhostLifecycle(t *testing.T) {
	// Expiring ghost: silent.
	m := trackedMachine()
	if !m.AddGhost(task(1, 0.1, 0, 0, 10), 0) {
		t.Fatal("fresh ghost rejected")
	}
	if m.AddGhost(task(1, 0.2, 0, 0, 10), 0) {
		t.Fatal("duplicate ghost id admitted")
	}
	if m.AddGhost(task(2, 0.1, 0, 0, 5), 6) {
		t.Fatal("expired-on-arrival ghost admitted")
	}
	m.Step(20)
	if st := m.Stats(); st.Expired != 0 {
		t.Fatalf("ghost expiry counted: %+v", st)
	}
	if closed := m.TakeClosedTasks(); len(closed) != 0 {
		t.Fatalf("ghost expiry logged closures %v", closed)
	}

	// Committed ghost: a real assignment, counted here, logged as a commit
	// but not as a closure (the owner shard accounts the task's lifecycle).
	m = trackedMachine()
	m.AddWorker(worker(1, 0, 0, 1, 0, 1000), 0)
	m.AddGhost(task(1, 0.1, 0, 0, 500), 0)
	m.Step(0)
	if st := m.Stats(); st.Assigned != 1 {
		t.Fatalf("ghost commit not counted: %+v", st)
	}
	commits := m.TakeCommits()
	if len(commits) != 1 || commits[0].Task != 1 || commits[0].Worker != 1 || commits[0].Arrive != 10 {
		t.Fatalf("commit log = %+v, want task 1 by worker 1 arriving at 10", commits)
	}
	if closed := m.TakeClosedTasks(); len(closed) != 0 {
		t.Fatalf("ghost commit logged closures %v", closed)
	}
}

// TestMachineRetractCommit: retraction undoes the commitment — position,
// motion, and stats — and the worker resumes the remainder of its plan in
// the same instant.
func TestMachineRetractCommit(t *testing.T) {
	m := trackedMachine()
	m.AddWorker(worker(1, 0, 0, 1, 0, 1000), 0)
	m.AddTask(task(1, 0.1, 0, 0, 500), 0)
	m.AddTask(task(2, 0.3, 0, 0, 500), 0)
	m.Step(0)
	commits := m.TakeCommits()
	if len(commits) != 1 || commits[0].Task != 1 {
		t.Fatalf("commit log = %+v, want the near task 1", commits)
	}
	if !m.RetractCommit(1, 1, 0) {
		t.Fatal("retraction of a live commit failed")
	}
	if m.RetractCommit(1, 1, 0) {
		t.Fatal("double retraction succeeded")
	}
	// The retracted worker must have resumed its plan and taken task 2 from
	// its original position (arrival 30 = 0.3 km at 10 m/s).
	commits = m.TakeCommits()
	if len(commits) != 1 || commits[0].Task != 2 || commits[0].Arrive != 30 {
		t.Fatalf("resume commit = %+v, want task 2 arriving at 30", commits)
	}
	if st := m.Stats(); st.Assigned != 1 {
		t.Fatalf("assigned = %d after retract+resume, want 1", st.Assigned)
	}
	if wp, ok := m.PlanOf(1); !ok || wp.Committed != 2 {
		t.Fatalf("plan = %+v, want committed to task 2", wp)
	}
}

// TestMachineDropTask: a dropped task leaves the pool silently and a plan
// entry referencing it is skipped at execution.
func TestMachineDropTask(t *testing.T) {
	m := trackedMachine()
	m.AddTask(task(1, 0.1, 0, 0, 500), 0)
	if !m.DropTask(1) || m.DropTask(1) {
		t.Fatal("DropTask must succeed once and only once")
	}
	if st := m.Stats(); st.Expired != 0 || st.Cancelled != 0 || st.Assigned != 0 {
		t.Fatalf("drop mutated stats: %+v", st)
	}
	if closed := m.TakeClosedTasks(); len(closed) != 0 {
		t.Fatalf("drop logged closures %v", closed)
	}
	if m.OpenTasks() != 0 {
		t.Fatalf("open tasks = %d after drop", m.OpenTasks())
	}
}

// TestMachineIDReuseWithinBatch pins the stale-pointer fix: cancelling a
// task and reusing its id before the next Step must leave exactly one live
// copy in the planning pool. Before the identity check two pointers with one
// id could both enter the pool, and a planner assigning both would trip the
// fatal plan-consistency panic.
func TestMachineIDReuseWithinBatch(t *testing.T) {
	m := trackedMachine()
	// Two workers, each nearest to one of the two same-id task locations:
	// with both stale and fresh pointers in the pool the planner would
	// assign "task 1" twice and Step would panic.
	m.AddWorker(worker(1, 0, 0, 1, 0, 1000), 0)
	m.AddWorker(worker(2, 3, 0, 1, 0, 1000), 0)
	m.AddTask(task(1, 0.1, 0, 0, 500), 0)
	m.CancelTask(1)
	m.AddTask(task(1, 3.1, 0, 0, 500), 0)
	m.Step(0) // must not panic
	if st := m.Stats(); st.Assigned != 1 || st.Cancelled != 1 {
		t.Fatalf("assigned/cancelled = %d/%d, want 1/1 (only the fresh copy is live)",
			st.Assigned, st.Cancelled)
	}
	// The fresh copy at x=3.1 belongs to worker 2; worker 1 must stay idle.
	if wp, ok := m.PlanOf(2); !ok || wp.Committed != 1 {
		t.Fatalf("worker 2 plan = %+v, want committed to the fresh task", wp)
	}
	if wp, ok := m.PlanOf(1); !ok || wp.Committed != -1 || wp.Moving {
		t.Fatalf("worker 1 plan = %+v, want idle (stale pointer must not be assignable)", wp)
	}
}
