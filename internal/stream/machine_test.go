package stream

import (
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
)

// machineWith returns an empty machine running the exact search planner.
func machineWith(fixed bool) *Machine {
	return NewMachine(MachineConfig{Planner: searchPlanner(), Fixed: fixed, Travel: travel})
}

func TestMachineWorkerDepartsMidMotionCommitted(t *testing.T) {
	// The worker commits to a task and its window ends mid-travel: it must
	// stay active until arrival (validity guaranteed completion before off
	// at commit time), and the assignment stands.
	m := machineWith(false)
	m.AddWorker(worker(1, 0, 0, 1, 0, 100), 0)
	m.AddTask(task(1, 0.5, 0, 0, 90), 0)
	m.Step(0) // commit: travel 50 s, arrive 50 < min(90, 100)
	if st := m.Stats(); st.Assigned != 1 {
		t.Fatalf("assigned = %d, want 1", st.Assigned)
	}
	// Shrink the window below the current clock while the worker is moving.
	m.RemoveWorker(1, 10)
	m.Step(20)
	if wp, ok := m.PlanOf(1); !ok || wp.Committed != 1 || !wp.Moving {
		t.Fatalf("committed worker evicted mid-motion: %+v ok=%v", wp, ok)
	}
	// On arrival the motion completes; the worker departs at the next step.
	m.Step(50)
	m.Step(51)
	if _, ok := m.PlanOf(1); ok {
		t.Fatal("worker should depart after completing its committed task")
	}
	if st := m.Stats(); st.Assigned != 1 || st.Expired != 0 {
		t.Fatalf("stats after departure: %+v", st)
	}
}

func TestMachineWorkerDepartsMidReposition(t *testing.T) {
	// A worker repositioning toward predicted demand is interruptible: when
	// its window ends mid-motion it leaves immediately, and the virtual
	// target is never counted.
	v := task(-1, 0.8, 0, 0, 500)
	v.Virtual = true
	m := NewMachine(MachineConfig{
		Planner:  searchPlanner(),
		Travel:   travel,
		Forecast: &stubForecaster{tasks: []*core.Task{v}, span: 1000},
	})
	m.AddWorker(worker(1, 0, 0, 1, 0, 100), 0)
	m.Step(0)
	if st := m.Stats(); st.Repositions != 1 {
		t.Fatalf("repositions = %d, want 1", st.Repositions)
	}
	m.RemoveWorker(1, 10)
	m.Step(10)
	if _, ok := m.PlanOf(1); ok {
		t.Fatal("repositioning worker must depart at off, not at arrival")
	}
	if st := m.Stats(); st.Assigned != 0 {
		t.Fatalf("assigned = %d, want 0 (virtual only)", st.Assigned)
	}
}

func TestMachineTaskExpiringAtCommitInstant(t *testing.T) {
	// Arrival exactly at the expiration instant: Definition 4 requires
	// reaching the task strictly before e, so the commit must be refused
	// and the task expires.
	m := machineWith(false)
	m.AddWorker(worker(1, 0, 0, 1, 0, 1000), 0)
	// 0.5 km at 10 m/s = 50 s travel: planning at t=0 arrives exactly at 50.
	m.AddTask(task(1, 0.5, 0, 0, 50), 0)
	m.Step(0)
	if st := m.Stats(); st.Assigned != 0 {
		t.Fatalf("assigned = %d, want 0 (arrival == expiration)", st.Assigned)
	}
	m.Step(50)
	if st := m.Stats(); st.Expired != 1 {
		t.Fatalf("expired = %d, want 1", st.Expired)
	}
}

func TestMachineTaskExpiringAtStepInstant(t *testing.T) {
	// A task whose expiration coincides with the step instant is evicted
	// before planning: Exp <= t means gone.
	m := machineWith(false)
	m.AddWorker(worker(1, 0.4, 0, 1, 0, 1000), 0)
	m.AddTask(task(1, 0.5, 0, 0, 10), 0)
	m.Step(10) // first planning instant is exactly the expiration
	st := m.Stats()
	if st.Assigned != 0 || st.Expired != 1 {
		t.Fatalf("assigned/expired = %d/%d, want 0/1", st.Assigned, st.Expired)
	}
}

func TestMachineZeroDurationAvailabilityWindow(t *testing.T) {
	// on == off: the window [on, off) is empty, so the worker must never be
	// admitted — the degenerate case of a dynamic window collapsing.
	m := machineWith(false)
	if m.AddWorker(worker(1, 0, 0, 1, 5, 5), 5) {
		t.Fatal("zero-duration window admitted")
	}
	if m.Workers() != 0 {
		t.Fatalf("active workers = %d, want 0", m.Workers())
	}
	// Same through the engine: the worker is skipped at its own on instant.
	in := Input{
		Workers: []*core.Worker{worker(1, 0, 0, 1, 5, 5)},
		Tasks:   []*core.Task{task(1, 0.1, 0, 0, 400)},
		T0:      0, T1: 500,
	}
	res := Run(in, cfgWith(searchPlanner()))
	if res.Assigned != 0 || res.Expired != 1 {
		t.Fatalf("engine assigned/expired = %d/%d, want 0/1", res.Assigned, res.Expired)
	}
}

func TestMachineExpiredOnArrivalCounts(t *testing.T) {
	// A task published already past its expiration (late delivery of a
	// stale event) counts as expired exactly once.
	m := machineWith(false)
	if m.AddTask(task(1, 0.5, 0, 0, 10), 20) {
		t.Fatal("stale task admitted to the open pool")
	}
	m.Step(20)
	m.Step(21)
	if st := m.Stats(); st.Expired != 1 {
		t.Fatalf("expired = %d, want exactly 1", st.Expired)
	}
}

func TestMachineCancelReservedFixedTask(t *testing.T) {
	// FTA locks plans and reserves their tasks; cancelling a reserved task
	// must release the reservation and suppress the assignment.
	m := machineWith(true)
	m.AddWorker(worker(1, 0, 0, 2, 0, 10000), 0)
	m.AddTask(task(1, 0.5, 0, 0, 9000), 0)
	m.AddTask(task(2, 0.9, 0, 0, 9000), 0)
	m.Step(0) // fixed plan (1, 2); task 1 committed, task 2 reserved
	if st := m.Stats(); st.Assigned != 1 {
		t.Fatalf("assigned = %d, want 1", st.Assigned)
	}
	if !m.CancelTask(2) {
		t.Fatal("reserved task should be cancellable")
	}
	m.Step(50) // arrival at task 1; next head (task 2) is gone
	m.Step(90)
	st := m.Stats()
	if st.Assigned != 1 || st.Cancelled != 1 {
		t.Fatalf("assigned/cancelled = %d/%d, want 1/1", st.Assigned, st.Cancelled)
	}
}

func TestMachineUpdatePosIgnoredWhileMoving(t *testing.T) {
	m := machineWith(false)
	m.AddWorker(worker(1, 0, 0, 1, 0, 1000), 0)
	m.AddTask(task(1, 0.5, 0, 0, 400), 0)
	m.Step(0)
	// A position report during motion acknowledges the worker but must not
	// teleport it: the committed task still completes on schedule.
	if !m.UpdateWorkerPos(1, geo.Point{X: 3, Y: 3}) {
		t.Fatal("known moving worker reported as unknown")
	}
	m.Step(50) // arrival on the original schedule
	if wp, _ := m.PlanOf(1); wp.Moving {
		t.Fatal("motion should have completed at the original arrival time")
	}
	if !m.UpdateWorkerPos(1, geo.Point{X: 0.2, Y: 0}) {
		t.Fatal("position update refused for an idle worker")
	}
}

func TestMachineDuplicateAdmissionsRejected(t *testing.T) {
	m := machineWith(false)
	if !m.AddWorker(worker(1, 0, 0, 1, 0, 1000), 0) {
		t.Fatal("first admission refused")
	}
	if m.AddWorker(worker(1, 2, 2, 1, 0, 9000), 0) {
		t.Fatal("duplicate live worker id admitted")
	}
	if !m.AddTask(task(1, 0.5, 0, 0, 400), 0) {
		t.Fatal("first task refused")
	}
	if m.AddTask(task(1, 0.9, 0, 0, 400), 0) {
		t.Fatal("duplicate open task id admitted")
	}
	if st := m.Stats(); st.Expired != 0 {
		t.Fatalf("duplicate submit counted as expired: %+v", st)
	}
}

func TestMachineRemovalTracking(t *testing.T) {
	m := NewMachine(MachineConfig{
		Planner: searchPlanner(), Travel: travel, TrackRemovals: true,
	})
	m.AddWorker(worker(1, 0, 0, 1, 0, 100), 0)
	m.AddTask(task(1, 0.5, 0, 0, 400), 0)
	m.Step(0) // commits task 1
	if got := m.TakeClosedTasks(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("closed tasks = %v, want [1]", got)
	}
	// An offline for the idle-again worker departs immediately.
	m.Step(50)
	m.RemoveWorker(1, 60)
	if got := m.TakeDepartedWorkers(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("departed workers = %v, want [1]", got)
	}
	if m.HasWorker(1) {
		t.Fatal("removed idle worker still active")
	}
	// The same id can come back before the next Step.
	if !m.AddWorker(worker(1, 0, 0, 1, 60, 500), 60) {
		t.Fatal("re-admission after immediate removal refused")
	}
}
