// Package stream implements the Adaptive Algorithm of Section IV-C
// (Algorithm 3): an event-driven spatial-crowdsourcing simulator that feeds
// the continuous stream of arriving workers and tasks to a Planner, executes
// the head of each idle worker's planned sequence, and evicts expired tasks
// and departed workers. It is the test bed on which all five assignment
// methods of Section V-B.2 (Greedy, FTA, DTA, DTA+TP, DATA-WA) are compared.
//
// The package has two layers. Machine is the commit/expiry state machine
// itself — active workers, motion segments, the open pool, FTA reservations —
// driven by explicit arrival/departure events plus Step calls; the live
// dispatcher (internal/dispatch) runs one Machine per shard. Engine is the
// closed-trace replay driver built on Machine: it advances a scenario clock
// in fixed steps, batching the arrival events inside each step into one
// planning instant; the paper's "CPU time" metric (average cost of
// performing task assignment at each time instance) is reported as
// Result.AvgPlanTime.
//
// Engine state is single-goroutine; an Engine must not be shared across
// goroutines. Planners may fan their planning instant out across an internal
// worker pool (see assign.Options.Parallelism) — that concurrency is
// confined to the Plan call and deterministic, so the engine's semantics are
// unchanged; Config.Parallelism threads the knob through to planners that
// support it.
package stream

import (
	"time"

	"repro/internal/assign"
	"repro/internal/core"
	"repro/internal/geo"
)

// Forecaster supplies virtual (predicted) tasks at planning instants.
// predict.Forecaster satisfies this interface.
type Forecaster interface {
	// Virtuals returns predicted tasks given every real task published
	// before now.
	Virtuals(published []*core.Task, now float64) []*core.Task
	// Span returns the prediction cadence in seconds.
	Span() float64
}

// Config selects the assignment policy for a run.
type Config struct {
	// Planner computes assignments at each planning instant.
	Planner assign.Planner
	// Fixed selects FTA semantics: once a worker holds a plan it is never
	// adjusted, and its tasks are reserved. When false the plan of every
	// uncommitted worker is recomputed each step (DTA semantics).
	Fixed bool
	// Forecast, when non-nil, injects virtual tasks (DTA+TP / DATA-WA).
	Forecast Forecaster
	// Step is the simulation step in seconds (default 1).
	Step float64
	// Travel must match the planner's travel model.
	Travel geo.TravelModel
	// Parallelism, when non-zero, is forwarded to planners implementing
	// SetParallelism (assign.Search): the number of goroutines a planning
	// instant may fan out across. Plans are identical at every setting;
	// only the paper's CPU-time metric changes. NewEngine writes the value
	// into the (caller-owned) planner, so a planner shared between engines
	// with different settings keeps the last one applied — give each
	// engine its own planner when that matters.
	Parallelism int
}

// parallelConfigurable is satisfied by planners whose planning instant can
// fan out across RTC components (assign.Search).
type parallelConfigurable interface{ SetParallelism(int) }

func (c Config) withDefaults() Config {
	if c.Step <= 0 {
		c.Step = 1
	}
	if c.Travel.Speed <= 0 {
		c.Travel = geo.NewTravelModel(0)
	}
	return c
}

// Input is one scenario: the full worker and task streams and the clock
// range to simulate.
type Input struct {
	Workers []*core.Worker
	Tasks   []*core.Task
	T0, T1  float64
}

// Result aggregates a run.
type Result struct {
	// Assigned is the paper's headline metric: the number of real tasks
	// assigned (every assignment here is also completed, since commitment
	// revalidates the spatio-temporal constraints).
	Assigned int
	// Expired counts real tasks that left the system unserved.
	Expired int
	// PlanCalls is the number of planning instants executed.
	PlanCalls int
	// PlanTime is the total time spent inside the planner.
	PlanTime time.Duration
	// AvgPlanTime is PlanTime/PlanCalls — the paper's CPU-time metric.
	AvgPlanTime time.Duration
	// Repositions counts moves toward virtual tasks.
	Repositions int
}

// Engine runs one scenario by replaying its presorted worker/task streams
// through a Machine. Create with NewEngine and call Run once.
type Engine struct {
	cfg Config
	in  Input
	m   *Machine

	nextWorker, nextTask int
}

// NewEngine prepares a run; the input slices are not mutated (workers are
// copied so position updates stay internal).
func NewEngine(in Input, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	if cfg.Parallelism != 0 {
		if p, ok := cfg.Planner.(parallelConfigurable); ok {
			p.SetParallelism(cfg.Parallelism)
		}
	}
	workers := append([]*core.Worker(nil), in.Workers...)
	core.SortWorkersByOn(workers)
	tasks := append([]*core.Task(nil), in.Tasks...)
	core.SortTasksByPub(tasks)
	return &Engine{
		cfg: cfg,
		in:  Input{Workers: workers, Tasks: tasks, T0: in.T0, T1: in.T1},
		m: NewMachine(MachineConfig{
			Planner:  cfg.Planner,
			Fixed:    cfg.Fixed,
			Forecast: cfg.Forecast,
			Travel:   cfg.Travel,
		}),
	}
}

// Run executes the adaptive algorithm over the whole scenario clock and
// returns the aggregate result.
func (e *Engine) Run() Result {
	for t := e.in.T0; t < e.in.T1; t += e.cfg.Step {
		e.stepOnce(t)
	}
	st := e.m.Stats()
	res := Result{
		Assigned:    st.Assigned,
		Expired:     st.Expired,
		PlanCalls:   st.PlanCalls,
		PlanTime:    st.PlanTime,
		Repositions: st.Repositions,
	}
	if st.PlanCalls > 0 {
		res.AvgPlanTime = st.PlanTime / time.Duration(st.PlanCalls)
	}
	return res
}

// stepOnce batches the arrivals due at t into the machine (Algorithm 3
// lines 3–9) and advances it one planning instant.
func (e *Engine) stepOnce(t float64) {
	for e.nextWorker < len(e.in.Workers) && e.in.Workers[e.nextWorker].On <= t {
		e.m.AddWorker(e.in.Workers[e.nextWorker], t)
		e.nextWorker++
	}
	for e.nextTask < len(e.in.Tasks) && e.in.Tasks[e.nextTask].Pub <= t {
		e.m.AddTask(e.in.Tasks[e.nextTask], t)
		e.nextTask++
	}
	e.m.Step(t)
}

// Run is a convenience wrapper: build an engine and run it.
func Run(in Input, cfg Config) Result {
	return NewEngine(in, cfg).Run()
}
