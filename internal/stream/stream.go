// Package stream implements the Adaptive Algorithm of Section IV-C
// (Algorithm 3): an event-driven spatial-crowdsourcing simulator that feeds
// the continuous stream of arriving workers and tasks to a Planner, executes
// the head of each idle worker's planned sequence, and evicts expired tasks
// and departed workers. It is the test bed on which all five assignment
// methods of Section V-B.2 (Greedy, FTA, DTA, DTA+TP, DATA-WA) are compared.
//
// The engine advances a scenario clock in fixed steps, batching the arrival
// events inside each step into one planning instant; the paper's "CPU time"
// metric (average cost of performing task assignment at each time instance)
// is reported as Result.AvgPlanTime.
//
// Engine state is single-goroutine; an Engine must not be shared across
// goroutines. Planners may fan their planning instant out across an internal
// worker pool (see assign.Options.Parallelism) — that concurrency is
// confined to the Plan call and deterministic, so the engine's semantics are
// unchanged; Config.Parallelism threads the knob through to planners that
// support it.
package stream

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/assign"
	"repro/internal/core"
	"repro/internal/geo"
)

// Forecaster supplies virtual (predicted) tasks at planning instants.
// predict.Forecaster satisfies this interface.
type Forecaster interface {
	// Virtuals returns predicted tasks given every real task published
	// before now.
	Virtuals(published []*core.Task, now float64) []*core.Task
	// Span returns the prediction cadence in seconds.
	Span() float64
}

// Config selects the assignment policy for a run.
type Config struct {
	// Planner computes assignments at each planning instant.
	Planner assign.Planner
	// Fixed selects FTA semantics: once a worker holds a plan it is never
	// adjusted, and its tasks are reserved. When false the plan of every
	// uncommitted worker is recomputed each step (DTA semantics).
	Fixed bool
	// Forecast, when non-nil, injects virtual tasks (DTA+TP / DATA-WA).
	Forecast Forecaster
	// Step is the simulation step in seconds (default 1).
	Step float64
	// Travel must match the planner's travel model.
	Travel geo.TravelModel
	// Parallelism, when non-zero, is forwarded to planners implementing
	// SetParallelism (assign.Search): the number of goroutines a planning
	// instant may fan out across. Plans are identical at every setting;
	// only the paper's CPU-time metric changes. NewEngine writes the value
	// into the (caller-owned) planner, so a planner shared between engines
	// with different settings keeps the last one applied — give each
	// engine its own planner when that matters.
	Parallelism int
}

// parallelConfigurable is satisfied by planners whose planning instant can
// fan out across RTC components (assign.Search).
type parallelConfigurable interface{ SetParallelism(int) }

func (c Config) withDefaults() Config {
	if c.Step <= 0 {
		c.Step = 1
	}
	if c.Travel.Speed <= 0 {
		c.Travel = geo.NewTravelModel(0)
	}
	return c
}

// Input is one scenario: the full worker and task streams and the clock
// range to simulate.
type Input struct {
	Workers []*core.Worker
	Tasks   []*core.Task
	T0, T1  float64
}

// Result aggregates a run.
type Result struct {
	// Assigned is the paper's headline metric: the number of real tasks
	// assigned (every assignment here is also completed, since commitment
	// revalidates the spatio-temporal constraints).
	Assigned int
	// Expired counts real tasks that left the system unserved.
	Expired int
	// PlanCalls is the number of planning instants executed.
	PlanCalls int
	// PlanTime is the total time spent inside the planner.
	PlanTime time.Duration
	// AvgPlanTime is PlanTime/PlanCalls — the paper's CPU-time metric.
	AvgPlanTime time.Duration
	// Repositions counts moves toward virtual tasks.
	Repositions int
}

// workerState tracks one worker's runtime.
type workerState struct {
	w *core.Worker
	// Motion segment; when moving, the worker travels origin→dest during
	// [departT, arriveT].
	origin, dest     geo.Point
	departT, arriveT float64
	moving           bool
	// committed is the real task being executed (motion not interruptible);
	// nil while idle or repositioning toward predicted demand.
	committed *core.Task
	// plan is the remaining planned sequence beyond the committed task.
	plan core.Sequence
	// fixed marks an FTA worker that has received its one plan.
	fixed bool
}

// pos returns the worker's position at time t.
func (ws *workerState) pos(t float64) geo.Point {
	if !ws.moving {
		return ws.w.Loc
	}
	if ws.arriveT <= ws.departT {
		return ws.dest
	}
	return geo.Lerp(ws.origin, ws.dest, (t-ws.departT)/(ws.arriveT-ws.departT))
}

// Engine runs one scenario. Create with NewEngine and call Run once.
type Engine struct {
	cfg Config
	in  Input

	active    []*workerState
	open      map[int]*core.Task // published, unexpired, unassigned real tasks
	openOrder []*core.Task
	reserved  map[int]bool // task ids locked into fixed (FTA) plans
	published []*core.Task // all real tasks published so far (history feed)
	virtuals  []*core.Task

	nextWorker, nextTask int
	lastForecast         float64
	res                  Result
}

// NewEngine prepares a run; the input slices are not mutated (workers are
// copied so position updates stay internal).
func NewEngine(in Input, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	if cfg.Parallelism != 0 {
		if p, ok := cfg.Planner.(parallelConfigurable); ok {
			p.SetParallelism(cfg.Parallelism)
		}
	}
	workers := make([]*core.Worker, len(in.Workers))
	for i, w := range in.Workers {
		cp := *w
		workers[i] = &cp
	}
	core.SortWorkersByOn(workers)
	tasks := append([]*core.Task(nil), in.Tasks...)
	core.SortTasksByPub(tasks)
	return &Engine{
		cfg:          cfg,
		in:           Input{Workers: workers, Tasks: tasks, T0: in.T0, T1: in.T1},
		open:         make(map[int]*core.Task),
		reserved:     make(map[int]bool),
		lastForecast: in.T0 - 1e9,
	}
}

// Run executes the adaptive algorithm over the whole scenario clock and
// returns the aggregate result.
func (e *Engine) Run() Result {
	for t := e.in.T0; t < e.in.T1; t += e.cfg.Step {
		e.stepOnce(t)
	}
	if e.res.PlanCalls > 0 {
		e.res.AvgPlanTime = e.res.PlanTime / time.Duration(e.res.PlanCalls)
	}
	return e.res
}

func (e *Engine) stepOnce(t float64) {
	e.admitArrivals(t)
	e.completeMotions(t)
	e.evict(t)
	e.forecast(t)
	e.plan(t)
	e.execute(t)
}

// admitArrivals folds workers and tasks whose on/publication time has come
// into the active state (Algorithm 3 lines 3–9, batched).
func (e *Engine) admitArrivals(t float64) {
	for e.nextWorker < len(e.in.Workers) && e.in.Workers[e.nextWorker].On <= t {
		w := e.in.Workers[e.nextWorker]
		e.nextWorker++
		if w.Off <= t {
			continue // window already over
		}
		e.active = append(e.active, &workerState{w: w})
	}
	for e.nextTask < len(e.in.Tasks) && e.in.Tasks[e.nextTask].Pub <= t {
		s := e.in.Tasks[e.nextTask]
		e.nextTask++
		e.published = append(e.published, s)
		if s.Exp <= t {
			e.res.Expired++
			continue
		}
		e.open[s.ID] = s
		e.openOrder = append(e.openOrder, s)
	}
}

// completeMotions finishes any motion segment that ends by time t.
func (e *Engine) completeMotions(t float64) {
	for _, ws := range e.active {
		if ws.moving && ws.arriveT <= t {
			ws.moving = false
			ws.w.Loc = ws.dest
			if ws.committed != nil {
				// The committed task is performed on arrival; it was
				// counted as assigned at commitment.
				ws.committed = nil
			}
		}
	}
}

// evict drops expired open tasks and departed workers (line 15).
func (e *Engine) evict(t float64) {
	var keptTasks []*core.Task
	for _, s := range e.openOrder {
		if _, ok := e.open[s.ID]; !ok {
			continue
		}
		if s.Exp <= t {
			delete(e.open, s.ID)
			delete(e.reserved, s.ID)
			e.res.Expired++
			continue
		}
		keptTasks = append(keptTasks, s)
	}
	e.openOrder = keptTasks

	var kept []*workerState
	for _, ws := range e.active {
		// Workers finishing a committed task stay until arrival (validity
		// guaranteed completion before off); all others leave at off.
		if ws.w.Off <= t && ws.committed == nil {
			e.releasePlan(ws)
			continue
		}
		kept = append(kept, ws)
	}
	e.active = kept

	var keptVirtual []*core.Task
	for _, v := range e.virtuals {
		if v.Exp > t {
			keptVirtual = append(keptVirtual, v)
		}
	}
	e.virtuals = keptVirtual
}

// releasePlan returns a departing fixed worker's unexecuted reserved tasks
// to the pool.
func (e *Engine) releasePlan(ws *workerState) {
	for _, s := range ws.plan {
		if !s.Virtual {
			delete(e.reserved, s.ID)
		}
	}
	ws.plan = nil
}

// forecast refreshes virtual tasks at the predictor's cadence.
func (e *Engine) forecast(t float64) {
	if e.cfg.Forecast == nil {
		return
	}
	if t-e.lastForecast < e.cfg.Forecast.Span() {
		return
	}
	e.lastForecast = t
	e.virtuals = e.cfg.Forecast.Virtuals(e.published, t)
}

// plan runs one planning instant (Algorithm 4 via the configured planner).
func (e *Engine) plan(t float64) {
	var planners []*workerState
	for _, ws := range e.active {
		if ws.committed != nil {
			continue // executing a real task: not interruptible
		}
		if e.cfg.Fixed && ws.fixed && len(ws.plan) > 0 {
			continue // FTA: plan locked
		}
		if !ws.w.Available(t) {
			continue
		}
		planners = append(planners, ws)
	}
	if len(planners) == 0 {
		return
	}
	sort.Slice(planners, func(i, j int) bool { return planners[i].w.ID < planners[j].w.ID })

	// Refresh worker locations to their positions now; repositioning
	// workers are interrupted at their current point.
	byID := make(map[int]*workerState, len(planners))
	workers := make([]*core.Worker, len(planners))
	for i, ws := range planners {
		ws.w.Loc = ws.pos(t)
		if ws.moving && ws.committed == nil {
			ws.moving = false
		}
		workers[i] = ws.w
		byID[ws.w.ID] = ws
	}

	// Planning pool: open unreserved real tasks plus current virtuals.
	var pool []*core.Task
	for _, s := range e.openOrder {
		if _, ok := e.open[s.ID]; ok && !e.reserved[s.ID] {
			pool = append(pool, s)
		}
	}
	pool = append(pool, e.virtuals...)

	start := time.Now()
	plan := e.cfg.Planner.Plan(workers, pool, t)
	e.res.PlanTime += time.Since(start)
	e.res.PlanCalls++

	if dup, ok := plan.Consistent(); !ok {
		panic(fmt.Sprintf("stream: planner %s assigned task %d twice", e.cfg.Planner.Name(), dup))
	}

	// Adaptive semantics: every replannable worker's sequence is replaced
	// by the new plan (or cleared). Fixed semantics: assigned workers lock.
	assigned := make(map[int]core.Sequence, len(plan))
	for _, a := range plan {
		assigned[a.Worker.ID] = a.Seq
	}
	for _, ws := range planners {
		seq, ok := assigned[ws.w.ID]
		if !ok {
			ws.plan = nil
			continue
		}
		ws.plan = seq
		if e.cfg.Fixed {
			ws.fixed = true
			for _, s := range seq {
				if !s.Virtual {
					e.reserved[s.ID] = true
				}
			}
		}
	}
}

// execute starts the first task of each idle worker's planned sequence
// (Algorithm 3 lines 10–14).
func (e *Engine) execute(t float64) {
	for _, ws := range e.active {
		if ws.moving || !ws.w.Available(t) {
			continue
		}
		for len(ws.plan) > 0 && !ws.moving {
			head := ws.plan[0]
			ws.plan = ws.plan[1:]
			if head.Virtual {
				// Reposition toward predicted demand; interruptible.
				if head.Exp <= t {
					continue
				}
				if geo.Dist(ws.w.Loc, head.Loc) < 1e-9 {
					// Already positioned at the predicted demand: hold
					// here and let the next planned task (if any) start.
					continue
				}
				e.startMotion(ws, t, head.Loc, nil)
				e.res.Repositions++
				continue
			}
			// Revalidate the head against the live clock before committing.
			if _, stillOpen := e.open[head.ID]; !stillOpen {
				continue
			}
			arrive := t + e.cfg.Travel.Time(ws.w.Loc, head.Loc)
			if arrive >= head.Exp || arrive >= ws.w.Off {
				continue // no longer satisfiable; try the next planned task
			}
			delete(e.open, head.ID)
			delete(e.reserved, head.ID)
			e.res.Assigned++
			e.startMotion(ws, t, head.Loc, head)
		}
	}
}

func (e *Engine) startMotion(ws *workerState, t float64, dest geo.Point, committed *core.Task) {
	ws.origin = ws.w.Loc
	ws.dest = dest
	ws.departT = t
	ws.arriveT = t + e.cfg.Travel.Time(ws.origin, dest)
	ws.moving = true
	ws.committed = committed
}

// Run is a convenience wrapper: build an engine and run it.
func Run(in Input, cfg Config) Result {
	return NewEngine(in, cfg).Run()
}
