package stream

import (
	"testing"

	"repro/internal/assign"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/wds"
)

var travel = geo.NewTravelModel(0.01) // 10 m/s

func cfgWith(p assign.Planner) Config {
	return Config{Planner: p, Travel: travel}
}

func searchPlanner() *assign.Search {
	return &assign.Search{Opts: assign.Options{WDS: wds.Options{Travel: travel}}}
}

func task(id int, x, y, pub, exp float64) *core.Task {
	return &core.Task{ID: id, Loc: geo.Point{X: x, Y: y}, Pub: pub, Exp: exp, Cell: -1}
}

func worker(id int, x, y, reach, on, off float64) *core.Worker {
	return &core.Worker{ID: id, Loc: geo.Point{X: x, Y: y}, Reach: reach, On: on, Off: off}
}

func TestSingleWorkerServesSingleTask(t *testing.T) {
	in := Input{
		Workers: []*core.Worker{worker(1, 0, 0, 1, 0, 1000)},
		Tasks:   []*core.Task{task(1, 0.5, 0, 0, 200)},
		T0:      0, T1: 300,
	}
	res := Run(in, cfgWith(searchPlanner()))
	if res.Assigned != 1 {
		t.Errorf("assigned = %d, want 1", res.Assigned)
	}
	if res.Expired != 0 {
		t.Errorf("expired = %d, want 0", res.Expired)
	}
	if res.PlanCalls == 0 || res.AvgPlanTime <= 0 {
		t.Error("planning time must be measured")
	}
}

func TestUnreachableTaskExpires(t *testing.T) {
	// 2 km away with a 1 km reach: never assignable.
	in := Input{
		Workers: []*core.Worker{worker(1, 0, 0, 1, 0, 1000)},
		Tasks:   []*core.Task{task(1, 2, 0, 0, 100)},
		T0:      0, T1: 200,
	}
	res := Run(in, cfgWith(searchPlanner()))
	if res.Assigned != 0 {
		t.Errorf("assigned = %d, want 0", res.Assigned)
	}
	if res.Expired != 1 {
		t.Errorf("expired = %d, want 1", res.Expired)
	}
}

func TestWorkerOffTimeRespected(t *testing.T) {
	// Task published after the worker departs.
	in := Input{
		Workers: []*core.Worker{worker(1, 0, 0, 1, 0, 50)},
		Tasks:   []*core.Task{task(1, 0.1, 0, 60, 200)},
		T0:      0, T1: 300,
	}
	res := Run(in, cfgWith(searchPlanner()))
	if res.Assigned != 0 {
		t.Errorf("assigned = %d, want 0 (worker gone)", res.Assigned)
	}
}

func TestWorkerServesSequenceInOrder(t *testing.T) {
	// Three tasks in a line, all long-lived: one worker serves all three.
	in := Input{
		Workers: []*core.Worker{worker(1, 0, 0, 2, 0, 5000)},
		Tasks: []*core.Task{
			task(1, 0.3, 0, 0, 5000),
			task(2, 0.6, 0, 0, 5000),
			task(3, 0.9, 0, 0, 5000),
		},
		T0: 0, T1: 1000,
	}
	res := Run(in, cfgWith(searchPlanner()))
	if res.Assigned != 3 {
		t.Errorf("assigned = %d, want 3", res.Assigned)
	}
}

func TestGreedyPlannerRunsInStream(t *testing.T) {
	g := &assign.Greedy{Opts: assign.Options{WDS: wds.Options{Travel: travel}}}
	in := Input{
		Workers: []*core.Worker{worker(1, 0, 0, 1, 0, 1000), worker(2, 1, 0, 1, 0, 1000)},
		Tasks: []*core.Task{
			task(1, 0.2, 0, 0, 500),
			task(2, 0.8, 0, 0, 500),
		},
		T0: 0, T1: 600,
	}
	res := Run(in, cfgWith(g))
	if res.Assigned != 2 {
		t.Errorf("assigned = %d, want 2", res.Assigned)
	}
}

func TestDTAReplansTailFTADoesNot(t *testing.T) {
	// Worker plans (A, D) at t=0. While executing A, tasks B and C appear
	// next to A. DTA replans after finishing A and serves B, C, D; FTA is
	// locked on (A, D) and loses B and C.
	mk := func() Input {
		return Input{
			Workers: []*core.Worker{worker(1, 0, 0, 5, 0, 1e5)},
			Tasks: []*core.Task{
				task(1, 1, 0, 0, 1e5),    // A: 100 s away
				task(4, 2, 0, 0, 1e5),    // D: far
				task(2, 1.1, 0, 50, 250), // B: appears mid-travel
				task(3, 1.2, 0, 50, 250), // C
			},
			T0: 0, T1: 500,
		}
	}
	dta := Run(mk(), cfgWith(searchPlanner()))
	ftaCfg := cfgWith(searchPlanner())
	ftaCfg.Fixed = true
	fta := Run(mk(), ftaCfg)

	if dta.Assigned != 4 {
		t.Errorf("DTA assigned = %d, want 4", dta.Assigned)
	}
	if fta.Assigned != 2 {
		t.Errorf("FTA assigned = %d, want 2", fta.Assigned)
	}
}

// stubForecaster predicts a fixed set of tasks from a given time onward.
type stubForecaster struct {
	tasks []*core.Task
	span  float64
}

func (s *stubForecaster) Virtuals(_ []*core.Task, now float64) []*core.Task {
	var out []*core.Task
	for _, v := range s.tasks {
		if v.Exp > now {
			out = append(out, v)
		}
	}
	return out
}

func (s *stubForecaster) Span() float64 { return s.span }

func TestPredictionEnablesRepositioning(t *testing.T) {
	// A short-lived task appears at t=100 at (0.9, 0). From the origin the
	// worker needs 90 s — too slow once it is published (expires at 130).
	// With a forecaster announcing the location in advance, the worker
	// repositions early and serves it.
	mk := func() Input {
		return Input{
			Workers: []*core.Worker{worker(1, 0, 0, 1, 0, 1000)},
			Tasks:   []*core.Task{task(1, 0.9, 0, 100, 130)},
			T0:      0, T1: 300,
		}
	}
	// Without prediction: unreachable in time.
	plain := Run(mk(), cfgWith(searchPlanner()))
	if plain.Assigned != 0 {
		t.Fatalf("without prediction assigned = %d, want 0", plain.Assigned)
	}

	v := task(-1, 0.9, 0, 100, 130)
	v.Virtual = true
	cfg := cfgWith(searchPlanner())
	cfg.Forecast = &stubForecaster{tasks: []*core.Task{v}, span: 30}
	predicted := Run(mk(), cfg)
	if predicted.Assigned != 1 {
		t.Errorf("with prediction assigned = %d, want 1", predicted.Assigned)
	}
	if predicted.Repositions == 0 {
		t.Error("expected at least one reposition")
	}
}

func TestVirtualTasksNeverCounted(t *testing.T) {
	// Only virtual demand, no real tasks: assigned must stay 0.
	v := task(-1, 0.5, 0, 0, 500)
	v.Virtual = true
	cfg := cfgWith(searchPlanner())
	cfg.Forecast = &stubForecaster{tasks: []*core.Task{v}, span: 50}
	in := Input{
		Workers: []*core.Worker{worker(1, 0, 0, 1, 0, 1000)},
		T0:      0, T1: 300,
	}
	res := Run(in, cfg)
	if res.Assigned != 0 {
		t.Errorf("assigned = %d, want 0 (virtual only)", res.Assigned)
	}
}

func TestEngineDoesNotMutateInputs(t *testing.T) {
	w := worker(1, 0, 0, 1, 0, 1000)
	in := Input{
		Workers: []*core.Worker{w},
		Tasks:   []*core.Task{task(1, 0.5, 0, 0, 500)},
		T0:      0, T1: 600,
	}
	Run(in, cfgWith(searchPlanner()))
	if w.Loc.X != 0 || w.Loc.Y != 0 {
		t.Error("input worker mutated")
	}
}

func TestRunDeterministic(t *testing.T) {
	mk := func() Input {
		var ws []*core.Worker
		var ts []*core.Task
		for i := 0; i < 5; i++ {
			ws = append(ws, worker(i+1, float64(i)*0.3, 0, 1, float64(i*10), 800))
		}
		for i := 0; i < 12; i++ {
			ts = append(ts, task(i+1, float64(i%4)*0.3, 0.2, float64(i*20), float64(i*20)+120))
		}
		return Input{Workers: ws, Tasks: ts, T0: 0, T1: 500}
	}
	a := Run(mk(), cfgWith(searchPlanner()))
	b := Run(mk(), cfgWith(searchPlanner()))
	if a.Assigned != b.Assigned || a.Expired != b.Expired {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestAssignedPlusExpiredCoversTasks(t *testing.T) {
	// Conservation: every real task either gets assigned or expires
	// (within the horizon, with horizon > all expirations).
	var ws []*core.Worker
	var ts []*core.Task
	for i := 0; i < 4; i++ {
		ws = append(ws, worker(i+1, float64(i)*0.5, 0, 1, 0, 900))
	}
	for i := 0; i < 10; i++ {
		ts = append(ts, task(i+1, float64(i%5)*0.25, 0.1, float64(i*15), float64(i*15)+100))
	}
	in := Input{Workers: ws, Tasks: ts, T0: 0, T1: 600}
	res := Run(in, cfgWith(searchPlanner()))
	if res.Assigned+res.Expired != len(ts) {
		t.Errorf("assigned %d + expired %d != %d tasks", res.Assigned, res.Expired, len(ts))
	}
}

func TestStepConfig(t *testing.T) {
	in := Input{
		Workers: []*core.Worker{worker(1, 0, 0, 1, 0, 500)},
		Tasks:   []*core.Task{task(1, 0.2, 0, 0, 300)},
		T0:      0, T1: 400,
	}
	cfg := cfgWith(searchPlanner())
	cfg.Step = 5
	res := Run(in, cfg)
	if res.Assigned != 1 {
		t.Errorf("assigned = %d with coarse step", res.Assigned)
	}
	// Larger steps mean fewer planning calls.
	cfg2 := cfgWith(searchPlanner())
	cfg2.Step = 1
	res2 := Run(in, cfg2)
	if res.PlanCalls >= res2.PlanCalls {
		t.Errorf("coarse step should plan less: %d vs %d", res.PlanCalls, res2.PlanCalls)
	}
}

func TestLateArrivingWorkerServes(t *testing.T) {
	in := Input{
		Workers: []*core.Worker{worker(1, 0, 0, 1, 100, 1000)},
		Tasks:   []*core.Task{task(1, 0.1, 0, 0, 400)},
		T0:      0, T1: 500,
	}
	res := Run(in, cfgWith(searchPlanner()))
	if res.Assigned != 1 {
		t.Errorf("assigned = %d, want 1 (worker arrives at 100)", res.Assigned)
	}
}

func TestConfigParallelismReachesPlanner(t *testing.T) {
	s := &assign.Search{}
	in := Input{T0: 0, T1: 1}
	NewEngine(in, Config{Planner: s, Parallelism: 3})
	if s.Opts.Parallelism != 3 {
		t.Fatalf("Parallelism = %d, want 3 (threaded through SetParallelism)", s.Opts.Parallelism)
	}
	// Zero leaves the planner's own setting alone.
	s2 := &assign.Search{}
	s2.Opts.Parallelism = 1
	NewEngine(in, Config{Planner: s2})
	if s2.Opts.Parallelism != 1 {
		t.Fatalf("Parallelism = %d, want untouched 1", s2.Opts.Parallelism)
	}
}
