package tensor

import (
	"math/rand"
	"testing"
)

func BenchmarkMatMul64(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := Randn(64, 64, 1, r)
	y := Randn(64, 64, 1, r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkMatMulAccum64(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := Randn(64, 64, 1, r)
	y := Randn(64, 64, 1, r)
	out := New(64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulAccum(out, x, y)
	}
}

func BenchmarkSoftmaxRows(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := Randn(64, 64, 1, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SoftmaxRows(x)
	}
}

func BenchmarkNormalizeAdjacency(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := Apply(Randn(36, 36, 1, r), func(v float64) float64 {
		if v < 0 {
			return -v
		}
		return v
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NormalizeAdjacency(x)
	}
}
