// Package tensor provides the dense matrix kernel underlying the neural
// networks in this repository. It is deliberately small: row-major float64
// matrices with the handful of operations the prediction models need.
// Everything is deterministic given a seeded *rand.Rand.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zero matrix of the given shape.
// It panics on non-positive dimensions: shapes are static program structure.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (length rows*cols, row-major) in a matrix, copying it.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice got %d values for %dx%d", len(data), rows, cols))
	}
	m := New(rows, cols)
	copy(m.Data, data)
	return m
}

// Randn fills a new rows×cols matrix with N(0, std²) samples from r.
func Randn(rows, cols int, std float64, r *rand.Rand) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64() * std
	}
	return m
}

// Eye returns the n×n identity matrix.
func Eye(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	return FromSlice(m.Rows, m.Cols, m.Data)
}

// Zero sets every element of m to zero, in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// SameShape reports whether a and b have identical dimensions.
func SameShape(a, b *Matrix) bool { return a.Rows == b.Rows && a.Cols == b.Cols }

func mustSameShape(op string, a, b *Matrix) {
	if !SameShape(a, b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// MatMul returns a·b.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*b.Cols : (i+1)*b.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulAccum computes out += a·b in place; out must be a.Rows × b.Cols.
func MatMulAccum(out, a, b *Matrix) {
	if a.Cols != b.Rows || out.Rows != a.Rows || out.Cols != b.Cols {
		panic("tensor: MatMulAccum shape mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*b.Cols : (i+1)*b.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// Transpose returns aᵀ.
func Transpose(a *Matrix) *Matrix {
	out := New(a.Cols, a.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			out.Data[j*a.Rows+i] = a.Data[i*a.Cols+j]
		}
	}
	return out
}

// Add returns a + b.
func Add(a, b *Matrix) *Matrix {
	mustSameShape("add", a, b)
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// AddInPlace computes a += b.
func AddInPlace(a, b *Matrix) {
	mustSameShape("add", a, b)
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
}

// Sub returns a − b.
func Sub(a, b *Matrix) *Matrix {
	mustSameShape("sub", a, b)
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// Hadamard returns the element-wise product a ⊙ b.
func Hadamard(a, b *Matrix) *Matrix {
	mustSameShape("hadamard", a, b)
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out
}

// Scale returns k·a.
func Scale(a *Matrix, k float64) *Matrix {
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = k * a.Data[i]
	}
	return out
}

// AddRowVector returns a + 1·vᵀ, broadcasting the 1×Cols row vector v over
// every row of a (bias addition).
func AddRowVector(a, v *Matrix) *Matrix {
	if v.Rows != 1 || v.Cols != a.Cols {
		panic(fmt.Sprintf("tensor: AddRowVector wants 1x%d, got %dx%d", a.Cols, v.Rows, v.Cols))
	}
	out := New(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			out.Data[i*a.Cols+j] = a.Data[i*a.Cols+j] + v.Data[j]
		}
	}
	return out
}

// Apply returns f applied element-wise to a.
func Apply(a *Matrix, f func(float64) float64) *Matrix {
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = f(v)
	}
	return out
}

// SoftmaxRows returns the row-wise softmax of a, numerically stabilized.
func SoftmaxRows(a *Matrix) *Matrix {
	out := New(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*a.Cols : (i+1)*a.Cols]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		sum := 0.0
		for j, v := range row {
			e := math.Exp(v - maxv)
			orow[j] = e
			sum += e
		}
		for j := range orow {
			orow[j] /= sum
		}
	}
	return out
}

// Sum returns the sum of all elements of a.
func Sum(a *Matrix) float64 {
	s := 0.0
	for _, v := range a.Data {
		s += v
	}
	return s
}

// Mean returns the mean of all elements of a.
func Mean(a *Matrix) float64 { return Sum(a) / float64(len(a.Data)) }

// MaxAbs returns the largest absolute element of a.
func MaxAbs(a *Matrix) float64 {
	m := 0.0
	for _, v := range a.Data {
		if av := math.Abs(v); av > m {
			m = av
		}
	}
	return m
}

// Row returns a view-free copy of row i as a 1×Cols matrix.
func (m *Matrix) Row(i int) *Matrix {
	out := New(1, m.Cols)
	copy(out.Data, m.Data[i*m.Cols:(i+1)*m.Cols])
	return out
}

// SetRow copies the 1×Cols matrix v into row i of m.
func (m *Matrix) SetRow(i int, v *Matrix) {
	if v.Rows != 1 || v.Cols != m.Cols {
		panic("tensor: SetRow shape mismatch")
	}
	copy(m.Data[i*m.Cols:(i+1)*m.Cols], v.Data)
}

// NormalizeAdjacency returns D^{-1/2}(A+I)D^{-1/2}, the symmetric degree
// normalization used by APPNP (Eqs. 8–9 of the paper), where
// D_ii = 1 + Σ_j A_ij.
func NormalizeAdjacency(a *Matrix) *Matrix {
	if a.Rows != a.Cols {
		panic("tensor: NormalizeAdjacency wants a square matrix")
	}
	n := a.Rows
	deg := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 1.0 // the +I self loop
		for j := 0; j < n; j++ {
			s += a.At(i, j)
		}
		deg[i] = 1 / math.Sqrt(s)
	}
	out := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := a.At(i, j)
			if i == j {
				v++
			}
			out.Set(i, j, deg[i]*v*deg[j])
		}
	}
	return out
}
