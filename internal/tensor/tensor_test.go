package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approxEq(a, b *Matrix, tol float64) bool {
	if !SameShape(a, b) {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Errorf("At = %v", m.At(1, 2))
	}
	if m.At(0, 0) != 0 {
		t.Error("fresh matrix should be zero")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 0 {
		t.Error("Clone must not alias")
	}
	m.Zero()
	if m.At(1, 2) != 0 {
		t.Error("Zero should clear")
	}
}

func TestFromSlice(t *testing.T) {
	src := []float64{1, 2, 3, 4}
	m := FromSlice(2, 2, src)
	src[0] = 99
	if m.At(0, 0) != 1 {
		t.Error("FromSlice must copy")
	}
	defer func() {
		if recover() == nil {
			t.Error("FromSlice with wrong length should panic")
		}
	}()
	FromSlice(2, 2, []float64{1})
}

func TestMatMul(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := MatMul(a, b)
	want := FromSlice(2, 2, []float64{58, 64, 139, 154})
	if !approxEq(got, want, 1e-12) {
		t.Errorf("MatMul = %v, want %v", got.Data, want.Data)
	}
}

func TestMatMulIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	a := Randn(4, 4, 1, r)
	if !approxEq(MatMul(a, Eye(4)), a, 1e-12) {
		t.Error("A·I != A")
	}
	if !approxEq(MatMul(Eye(4), a), a, 1e-12) {
		t.Error("I·A != A")
	}
}

func TestMatMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := Randn(3, 4, 1, r), Randn(4, 2, 1, r), Randn(2, 5, 1, r)
		left := MatMul(MatMul(a, b), c)
		right := MatMul(a, MatMul(b, c))
		return approxEq(left, right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMatMulAccum(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 0, 0, 1})
	b := FromSlice(2, 2, []float64{1, 2, 3, 4})
	out := b.Clone()
	MatMulAccum(out, a, b) // out = b + I·b = 2b
	if !approxEq(out, Scale(b, 2), 1e-12) {
		t.Errorf("MatMulAccum = %v", out.Data)
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := Randn(3, 5, 1, r)
		return approxEq(Transpose(Transpose(a)), a, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTransposeMatMulIdentity(t *testing.T) {
	// (AB)ᵀ = BᵀAᵀ
	r := rand.New(rand.NewSource(3))
	a, b := Randn(3, 4, 1, r), Randn(4, 2, 1, r)
	if !approxEq(Transpose(MatMul(a, b)), MatMul(Transpose(b), Transpose(a)), 1e-9) {
		t.Error("(AB)^T != B^T A^T")
	}
}

func TestAddSubScaleHadamard(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{5, 6, 7, 8})
	if !approxEq(Add(a, b), FromSlice(2, 2, []float64{6, 8, 10, 12}), 0) {
		t.Error("Add wrong")
	}
	if !approxEq(Sub(b, a), FromSlice(2, 2, []float64{4, 4, 4, 4}), 0) {
		t.Error("Sub wrong")
	}
	if !approxEq(Scale(a, 2), FromSlice(2, 2, []float64{2, 4, 6, 8}), 0) {
		t.Error("Scale wrong")
	}
	if !approxEq(Hadamard(a, b), FromSlice(2, 2, []float64{5, 12, 21, 32}), 0) {
		t.Error("Hadamard wrong")
	}
	c := a.Clone()
	AddInPlace(c, b)
	if !approxEq(c, Add(a, b), 0) {
		t.Error("AddInPlace wrong")
	}
}

func TestAddRowVector(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	v := FromSlice(1, 3, []float64{10, 20, 30})
	got := AddRowVector(a, v)
	want := FromSlice(2, 3, []float64{11, 22, 33, 14, 25, 36})
	if !approxEq(got, want, 0) {
		t.Errorf("AddRowVector = %v", got.Data)
	}
}

func TestApply(t *testing.T) {
	a := FromSlice(1, 3, []float64{-1, 0, 2})
	got := Apply(a, func(v float64) float64 { return v * v })
	if !approxEq(got, FromSlice(1, 3, []float64{1, 0, 4}), 0) {
		t.Errorf("Apply = %v", got.Data)
	}
}

func TestSoftmaxRows(t *testing.T) {
	a := FromSlice(2, 3, []float64{0, 0, 0, 1, 2, 3})
	s := SoftmaxRows(a)
	// Row 0: uniform.
	for j := 0; j < 3; j++ {
		if math.Abs(s.At(0, j)-1.0/3) > 1e-12 {
			t.Errorf("uniform softmax wrong: %v", s.At(0, j))
		}
	}
	// Rows sum to one, values increasing with logits.
	sum := s.At(1, 0) + s.At(1, 1) + s.At(1, 2)
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("row sum = %v", sum)
	}
	if !(s.At(1, 0) < s.At(1, 1) && s.At(1, 1) < s.At(1, 2)) {
		t.Error("softmax not monotone in logits")
	}
}

func TestSoftmaxRowsStability(t *testing.T) {
	a := FromSlice(1, 2, []float64{1000, 1001})
	s := SoftmaxRows(a)
	if math.IsNaN(s.At(0, 0)) || math.IsNaN(s.At(0, 1)) {
		t.Fatal("softmax overflowed")
	}
	if math.Abs(s.At(0, 0)+s.At(0, 1)-1) > 1e-12 {
		t.Error("softmax of large logits does not sum to 1")
	}
}

func TestSoftmaxRowsSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := Randn(4, 6, 3, r)
		s := SoftmaxRows(a)
		for i := 0; i < s.Rows; i++ {
			sum := 0.0
			for j := 0; j < s.Cols; j++ {
				v := s.At(i, j)
				if v < 0 || v > 1 {
					return false
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSumMeanMaxAbs(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, -5, 2, 2})
	if Sum(a) != 0 {
		t.Errorf("Sum = %v", Sum(a))
	}
	if Mean(a) != 0 {
		t.Errorf("Mean = %v", Mean(a))
	}
	if MaxAbs(a) != 5 {
		t.Errorf("MaxAbs = %v", MaxAbs(a))
	}
}

func TestRowSetRow(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	r := a.Row(1)
	if !approxEq(r, FromSlice(1, 3, []float64{4, 5, 6}), 0) {
		t.Errorf("Row = %v", r.Data)
	}
	r.Set(0, 0, 99)
	if a.At(1, 0) != 4 {
		t.Error("Row must copy, not alias")
	}
	a.SetRow(0, FromSlice(1, 3, []float64{7, 8, 9}))
	if a.At(0, 2) != 9 {
		t.Error("SetRow failed")
	}
}

func TestNormalizeAdjacency(t *testing.T) {
	// Zero adjacency: Â = D^{-1/2} I D^{-1/2} = I (degrees are all 1).
	a := New(3, 3)
	got := NormalizeAdjacency(a)
	if !approxEq(got, Eye(3), 1e-12) {
		t.Errorf("normalize(0) = %v", got.Data)
	}
	// Symmetric input stays symmetric, and rows of a row-stochastic-ish
	// matrix stay bounded.
	b := FromSlice(2, 2, []float64{0, 1, 1, 0})
	nb := NormalizeAdjacency(b)
	if math.Abs(nb.At(0, 1)-nb.At(1, 0)) > 1e-12 {
		t.Error("normalized symmetric matrix should be symmetric")
	}
	if nb.At(0, 0) <= 0 || nb.At(0, 0) > 1 {
		t.Errorf("diagonal out of range: %v", nb.At(0, 0))
	}
}

func TestShapePanics(t *testing.T) {
	a, b := New(2, 2), New(3, 3)
	cases := []func(){
		func() { New(0, 1) },
		func() { MatMul(a, b) },
		func() { Add(a, b) },
		func() { Sub(a, b) },
		func() { Hadamard(a, b) },
		func() { AddRowVector(a, New(2, 2)) },
		func() { NormalizeAdjacency(New(2, 3)) },
		func() { a.SetRow(0, New(1, 3)) },
		func() { MatMulAccum(New(2, 2), a, b) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestRandnDeterministic(t *testing.T) {
	a := Randn(3, 3, 1, rand.New(rand.NewSource(42)))
	b := Randn(3, 3, 1, rand.New(rand.NewSource(42)))
	if !approxEq(a, b, 0) {
		t.Error("Randn with the same seed must be deterministic")
	}
}
