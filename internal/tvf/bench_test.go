package tvf

import (
	"testing"
)

// BenchmarkFeaturize measures state-action featurization, executed once per
// candidate sequence inside DFSearch_TVF.
func BenchmarkFeaturize(b *testing.B) {
	st := simpleState()
	a := Action{Worker: st.Workers[0], Seq: simpleState().Tasks[:2]}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Featurize(st, a, tm)
	}
}

// BenchmarkPredictBatch measures scoring 32 candidates in one pass, the
// per-worker cost of Algorithm 2.
func BenchmarkPredictBatch(b *testing.B) {
	m := NewModel(16, 1)
	st := simpleState()
	feats := make([][FeatureDim]float64, 32)
	for i := range feats {
		feats[i] = Featurize(st, Action{Worker: st.Workers[0], Seq: st.Tasks[:1+i%2]}, tm)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictBatch(feats)
	}
}
