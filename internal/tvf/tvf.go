// Package tvf implements the Task Value Function of Section IV-B: a learned
// state-action value TVF(s_t, a_t; θ) trained by Q-learning-style regression
// (Eq. 12) on (state, action, opt) samples gathered by the exact DFSearch
// (Algorithm 1). At assignment time, DFSearch_TVF (Algorithm 2) picks the
// sequence maximizing the predicted value, eliminating backtracking.
//
// The state is the set of remaining workers and tasks; the action is a
// (worker, sequence) pair. Both are summarized by a fixed-length feature
// vector; the value model is a small two-layer perceptron.
package tvf

import (
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// FeatureDim is the length of the feature vector produced by Featurize.
const FeatureDim = 12

// State is the RL state s_t: the remaining available workers and unassigned
// tasks at a search node (the paper's (W_N + W_C, S)).
type State struct {
	Workers []*core.Worker
	Tasks   []*core.Task
	Now     float64
}

// Action is the RL action a_t: assigning sequence Seq to Worker.
type Action struct {
	Worker *core.Worker
	Seq    core.Sequence
}

// Sample is one training triple (s_t, a_t, opt) emitted by DFSearch.
type Sample struct {
	Features [FeatureDim]float64
	// Opt is the best cumulative number of assigned tasks achievable from
	// this state after taking the action (the regression target V).
	Opt float64
}

// Featurize summarizes a state-action pair. Features are scaled to keep
// magnitudes near [0, 1] so one learning rate fits all dimensions:
//
//	0  bias
//	1  |q| — immediate reward of the action
//	2  remaining worker count (÷16)
//	3  remaining task count (÷32)
//	4  sequence completion slack within the worker's window
//	5  total travel time of the sequence (÷600 s)
//	6  tasks still reachable from the sequence's end location (÷16)
//	7  contention: other workers that can reach a task of q (÷16)
//	8  mean expiry slack of q's tasks (÷300 s)
//	9  fraction of q that is virtual (predicted demand)
//	10 task density within 0.5 km of the end location (÷16)
//	11 remaining availability of the worker after q (÷3600 s)
func Featurize(st State, a Action, tm geo.TravelModel) [FeatureDim]float64 {
	var f [FeatureDim]float64
	f[0] = 1
	f[1] = float64(len(a.Seq))
	f[2] = float64(len(st.Workers)) / 16
	f[3] = float64(len(st.Tasks)) / 32

	w := a.Worker
	end := w.Loc
	completion := st.Now
	travel := 0.0
	expSlack := 0.0
	virtual := 0
	loc, t := w.Loc, st.Now
	for _, s := range a.Seq {
		leg := tm.Time(loc, s.Loc)
		travel += leg
		t += leg
		if t < s.Pub {
			t = s.Pub
		}
		expSlack += s.Exp - t
		if s.Virtual {
			virtual++
		}
		loc = s.Loc
	}
	completion = t
	end = loc

	if win := w.Off - st.Now; win > 0 {
		f[4] = (w.Off - completion) / win
	}
	f[5] = travel / 600

	reachable, near := 0, 0
	for _, s := range st.Tasks {
		d := geo.Dist(end, s.Loc)
		if d <= w.Reach && s.Exp > completion+tm.TimeForDist(d) {
			reachable++
		}
		if d <= 0.5 {
			near++
		}
	}
	f[6] = float64(reachable) / 16

	contention := 0
	for _, other := range st.Workers {
		if other.ID == w.ID {
			continue
		}
		for _, s := range a.Seq {
			if geo.Dist(other.Loc, s.Loc) <= other.Reach {
				contention++
				break
			}
		}
	}
	f[7] = float64(contention) / 16

	if n := len(a.Seq); n > 0 {
		f[8] = expSlack / float64(n) / 300
		f[9] = float64(virtual) / float64(n)
	}
	f[10] = float64(near) / 16
	f[11] = math.Max(0, w.Off-completion) / 3600
	return f
}

// Model is the TVF approximator: a two-layer MLP with tanh hidden units and
// a linear scalar output.
type Model struct {
	params *nn.Params
	l1, l2 *nn.Linear
}

// NewModel allocates a TVF model with the given hidden width.
func NewModel(hidden int, seed int64) *Model {
	if hidden <= 0 {
		hidden = 16
	}
	p := nn.NewParams(seed + 404)
	return &Model{
		params: p,
		l1:     nn.NewLinear(p, FeatureDim, hidden),
		l2:     nn.NewLinear(p, hidden, 1),
	}
}

func (m *Model) forward(x *nn.Node) *nn.Node {
	return m.l2.Forward(nn.Tanh(m.l1.Forward(x)))
}

// Predict returns TVF(s_t, a_t; θ) for one featurized pair.
func (m *Model) Predict(features [FeatureDim]float64) float64 {
	x := tensor.FromSlice(1, FeatureDim, features[:])
	return m.forward(nn.Leaf(x)).Val.Data[0]
}

// PredictBatch scores many feature vectors in one forward pass.
func (m *Model) PredictBatch(features [][FeatureDim]float64) []float64 {
	if len(features) == 0 {
		return nil
	}
	x := tensor.New(len(features), FeatureDim)
	for i, f := range features {
		copy(x.Data[i*FeatureDim:(i+1)*FeatureDim], f[:])
	}
	out := m.forward(nn.Leaf(x)).Val
	res := make([]float64, len(features))
	copy(res, out.Data)
	return res
}

// Value is a convenience wrapper: featurize then predict.
func (m *Model) Value(st State, a Action, tm geo.TravelModel) float64 {
	return m.Predict(Featurize(st, a, tm))
}

// TrainConfig controls TVF fitting.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Seed      int64
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Epochs <= 0 {
		c.Epochs = 40
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.LR <= 0 {
		c.LR = 0.01
	}
	return c
}

// Train fits the model to the samples by minimizing the squared loss of
// Eq. 12 over mini-batches drawn uniformly at random from U (the stored
// experience), exactly the paper's update rule. It returns the final
// epoch's mean loss.
func (m *Model) Train(samples []Sample, cfg TrainConfig) float64 {
	if len(samples) == 0 {
		return 0
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 505))
	opt := nn.NewAdam(cfg.LR)
	lastLoss := 0.0
	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		epochLoss, batches := 0.0, 0
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			batch := idx[start:end]
			x := tensor.New(len(batch), FeatureDim)
			y := tensor.New(len(batch), 1)
			for bi, si := range batch {
				copy(x.Data[bi*FeatureDim:(bi+1)*FeatureDim], samples[si].Features[:])
				y.Data[bi] = samples[si].Opt
			}
			m.params.ZeroGrads()
			loss := nn.MSE(m.forward(nn.Leaf(x)), y)
			nn.Backward(loss)
			nn.ClipGrads(m.params.All(), 5)
			opt.Step(m.params.All())
			epochLoss += loss.Val.Data[0]
			batches++
		}
		lastLoss = epochLoss / float64(batches)
	}
	return lastLoss
}

// ParamCount returns the number of trainable scalars.
func (m *Model) ParamCount() int { return m.params.Count() }
