package tvf

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
)

var tm = geo.NewTravelModel(0.01)

func task(id int, x, y, pub, exp float64) *core.Task {
	return &core.Task{ID: id, Loc: geo.Point{X: x, Y: y}, Pub: pub, Exp: exp, Cell: -1}
}

func worker(id int, x, y, reach, on, off float64) *core.Worker {
	return &core.Worker{ID: id, Loc: geo.Point{X: x, Y: y}, Reach: reach, On: on, Off: off}
}

func simpleState() State {
	return State{
		Workers: []*core.Worker{worker(1, 0, 0, 1, 0, 1000), worker(2, 0.2, 0, 1, 0, 1000)},
		Tasks:   []*core.Task{task(1, 0.1, 0, 0, 500), task(2, 0.3, 0, 0, 500), task(3, 5, 5, 0, 500)},
		Now:     0,
	}
}

func TestFeaturizeShapeAndBias(t *testing.T) {
	st := simpleState()
	a := Action{Worker: st.Workers[0], Seq: core.Sequence{st.Tasks[0]}}
	f := Featurize(st, a, tm)
	if f[0] != 1 {
		t.Error("bias feature must be 1")
	}
	if f[1] != 1 {
		t.Errorf("|q| feature = %v", f[1])
	}
	for i, v := range f {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("feature %d is %v", i, v)
		}
	}
}

func TestFeaturizeEmptySequence(t *testing.T) {
	st := simpleState()
	a := Action{Worker: st.Workers[0], Seq: nil}
	f := Featurize(st, a, tm)
	if f[1] != 0 {
		t.Error("|q| of empty action should be 0")
	}
	if f[4] != 1 {
		t.Errorf("empty action keeps full slack, got %v", f[4])
	}
	if f[9] != 0 {
		t.Error("virtual fraction of empty action should be 0")
	}
}

func TestFeaturizeLongerSequenceLargerReward(t *testing.T) {
	st := simpleState()
	one := Featurize(st, Action{st.Workers[0], core.Sequence{st.Tasks[0]}}, tm)
	two := Featurize(st, Action{st.Workers[0], core.Sequence{st.Tasks[0], st.Tasks[1]}}, tm)
	if two[1] <= one[1] {
		t.Error("length feature must grow with |q|")
	}
	if two[5] <= one[5] {
		t.Error("travel feature must grow with longer routes")
	}
}

func TestFeaturizeVirtualFraction(t *testing.T) {
	st := simpleState()
	v := task(9, 0.15, 0, 0, 500)
	v.Virtual = true
	f := Featurize(st, Action{st.Workers[0], core.Sequence{st.Tasks[0], v}}, tm)
	if f[9] != 0.5 {
		t.Errorf("virtual fraction = %v, want 0.5", f[9])
	}
}

func TestFeaturizeContention(t *testing.T) {
	st := simpleState()
	// Task 1 at 0.1 is reachable by both workers: contention = 1 (the
	// other worker).
	f := Featurize(st, Action{st.Workers[0], core.Sequence{st.Tasks[0]}}, tm)
	if f[7] != 1.0/16 {
		t.Errorf("contention = %v, want 1/16", f[7])
	}
	// A far-away task only its own worker can reach → zero contention.
	far := Action{st.Workers[0], core.Sequence{st.Tasks[2]}}
	if g := Featurize(st, far, tm); g[7] != 0 {
		t.Errorf("far contention = %v", g[7])
	}
}

func TestFeaturizeWaitsForPublication(t *testing.T) {
	st := simpleState()
	future := task(9, 0.1, 300, 0, 500)
	future.Pub = 300
	f := Featurize(st, Action{st.Workers[0], core.Sequence{future}}, tm)
	// Completion is >= 300, so remaining availability is at most 700.
	if f[11] > 700.0/3600+1e-9 {
		t.Errorf("remaining availability = %v, should respect waiting", f[11])
	}
}

func TestModelPredictDeterministic(t *testing.T) {
	st := simpleState()
	a := Action{st.Workers[0], core.Sequence{st.Tasks[0]}}
	m1 := NewModel(8, 7)
	m2 := NewModel(8, 7)
	if m1.Value(st, a, tm) != m2.Value(st, a, tm) {
		t.Error("same seed must give identical models")
	}
}

func TestPredictBatchMatchesSingle(t *testing.T) {
	m := NewModel(8, 3)
	st := simpleState()
	feats := [][FeatureDim]float64{
		Featurize(st, Action{st.Workers[0], core.Sequence{st.Tasks[0]}}, tm),
		Featurize(st, Action{st.Workers[1], core.Sequence{st.Tasks[1]}}, tm),
	}
	batch := m.PredictBatch(feats)
	for i, f := range feats {
		if math.Abs(batch[i]-m.Predict(f)) > 1e-12 {
			t.Errorf("batch[%d] = %v, single = %v", i, batch[i], m.Predict(f))
		}
	}
	if m.PredictBatch(nil) != nil {
		t.Error("empty batch should return nil")
	}
}

func TestTrainFitsValueFunction(t *testing.T) {
	// Synthetic ground truth: opt = 3·|q| + reachable-after. The model
	// must learn to rank longer sequences higher.
	r := rand.New(rand.NewSource(21))
	var samples []Sample
	for i := 0; i < 400; i++ {
		var f [FeatureDim]float64
		f[0] = 1
		f[1] = float64(r.Intn(4))
		f[6] = r.Float64()
		f[3] = r.Float64()
		samples = append(samples, Sample{Features: f, Opt: 3*f[1] + 2*f[6]})
	}
	m := NewModel(16, 22)
	loss := m.Train(samples, TrainConfig{Epochs: 60, LR: 0.02, Seed: 22})
	if loss > 0.3 {
		t.Errorf("final training loss = %v, want < 0.3", loss)
	}
	// Ranking check.
	var short, long [FeatureDim]float64
	short[0], short[1], short[6] = 1, 1, 0.5
	long[0], long[1], long[6] = 1, 3, 0.5
	if m.Predict(long) <= m.Predict(short) {
		t.Error("trained TVF must rank longer sequences above shorter ones")
	}
}

func TestTrainEmptySamples(t *testing.T) {
	m := NewModel(8, 23)
	if loss := m.Train(nil, TrainConfig{}); loss != 0 {
		t.Errorf("training on no samples should be a no-op, loss=%v", loss)
	}
}

func TestTrainDeterministic(t *testing.T) {
	var samples []Sample
	for i := 0; i < 50; i++ {
		var f [FeatureDim]float64
		f[0], f[1] = 1, float64(i%4)
		samples = append(samples, Sample{Features: f, Opt: f[1]})
	}
	run := func() float64 {
		m := NewModel(8, 29)
		m.Train(samples, TrainConfig{Epochs: 10, Seed: 29})
		var probe [FeatureDim]float64
		probe[0], probe[1] = 1, 2
		return m.Predict(probe)
	}
	if run() != run() {
		t.Error("training must be deterministic for a fixed seed")
	}
}

func TestModelParamCount(t *testing.T) {
	m := NewModel(16, 31)
	want := (FeatureDim*16 + 16) + (16 + 1)
	if m.ParamCount() != want {
		t.Errorf("ParamCount = %d, want %d", m.ParamCount(), want)
	}
	// Hidden default kicks in.
	if NewModel(0, 31).ParamCount() == 0 {
		t.Error("default hidden width missing")
	}
}

func TestTrainConfigDefaults(t *testing.T) {
	c := TrainConfig{}.withDefaults()
	if c.Epochs <= 0 || c.BatchSize <= 0 || c.LR <= 0 {
		t.Errorf("defaults missing: %+v", c)
	}
}
