package wds

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
)

func benchInstance(nWorkers, nTasks int) ([]*core.Worker, []*core.Task) {
	r := rand.New(rand.NewSource(9))
	var ws []*core.Worker
	for i := 0; i < nWorkers; i++ {
		ws = append(ws, &core.Worker{
			ID: i + 1, Loc: geo.Point{X: r.Float64() * 4, Y: r.Float64() * 4},
			Reach: 1, On: 0, Off: 1e5,
		})
	}
	var ts []*core.Task
	for i := 0; i < nTasks; i++ {
		ts = append(ts, &core.Task{
			ID: i + 1, Loc: geo.Point{X: r.Float64() * 4, Y: r.Float64() * 4},
			Pub: 0, Exp: 500, Cell: -1,
		})
	}
	return ws, ts
}

// BenchmarkSeparate measures the full WDS pipeline (reachable sets, maximal
// valid sequences, dependency graph, MCS partition, RTC trees) at a typical
// planning-instant size.
func BenchmarkSeparate(b *testing.B) {
	ws, ts := benchInstance(40, 80)
	o := Options{Travel: geo.NewTravelModel(0.005)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Separate(ws, ts, 0, o)
	}
}

// BenchmarkMaximalValidSequences measures Q_w generation for one worker with
// a full reachable set.
func BenchmarkMaximalValidSequences(b *testing.B) {
	ws, ts := benchInstance(1, 40)
	o := Options{Travel: geo.NewTravelModel(0.005)}.WithDefaults()
	rs := ReachableTasks(ws[0], ts, 0, o)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaximalValidSequences(ws[0], rs, 0, o)
	}
}

// BenchmarkReachableTasks measures constraint filtering over a task pool.
func BenchmarkReachableTasks(b *testing.B) {
	ws, ts := benchInstance(1, 200)
	o := Options{Travel: geo.NewTravelModel(0.005)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReachableTasks(ws[0], ts, 0, o)
	}
}
