package wds

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/spatial"
)

func benchInstance(nWorkers, nTasks int) ([]*core.Worker, []*core.Task) {
	r := rand.New(rand.NewSource(9))
	var ws []*core.Worker
	for i := 0; i < nWorkers; i++ {
		ws = append(ws, &core.Worker{
			ID: i + 1, Loc: geo.Point{X: r.Float64() * 4, Y: r.Float64() * 4},
			Reach: 1, On: 0, Off: 1e5,
		})
	}
	var ts []*core.Task
	for i := 0; i < nTasks; i++ {
		ts = append(ts, &core.Task{
			ID: i + 1, Loc: geo.Point{X: r.Float64() * 4, Y: r.Float64() * 4},
			Pub: 0, Exp: 500, Cell: -1,
		})
	}
	return ws, ts
}

// BenchmarkSeparate measures the full WDS pipeline (reachable sets, maximal
// valid sequences, dependency graph, MCS partition, RTC trees) at a typical
// planning-instant size.
func BenchmarkSeparate(b *testing.B) {
	ws, ts := benchInstance(40, 80)
	o := Options{Travel: geo.NewTravelModel(0.005)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Separate(ws, ts, 0, o)
	}
}

// BenchmarkMaximalValidSequences measures Q_w generation for one worker with
// a full reachable set.
func BenchmarkMaximalValidSequences(b *testing.B) {
	ws, ts := benchInstance(1, 40)
	o := Options{Travel: geo.NewTravelModel(0.005)}.WithDefaults()
	rs := ReachableTasks(ws[0], ts, 0, o)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaximalValidSequences(ws[0], rs, 0, o)
	}
}

// BenchmarkReachableTasks measures constraint filtering over a task pool.
func BenchmarkReachableTasks(b *testing.B) {
	ws, ts := benchInstance(1, 200)
	o := Options{Travel: geo.NewTravelModel(0.005)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReachableTasks(ws[0], ts, 0, o)
	}
}

// scaledInstance builds a scattered population at constant spatial density
// (≈13 tasks per km², ≈10 tasks per reach disc), so per-worker local work
// stays fixed while the pool grows — the regime where the grid index turns
// per-instant reachability from O(|W|·|T|) into O(|W|·k).
func scaledInstance(nWorkers, nTasks int) ([]*core.Worker, []*core.Task) {
	r := rand.New(rand.NewSource(11))
	span := math.Sqrt(float64(nTasks) / 13.0)
	var ws []*core.Worker
	for i := 0; i < nWorkers; i++ {
		ws = append(ws, &core.Worker{
			ID: i + 1, Loc: geo.Point{X: r.Float64() * span, Y: r.Float64() * span},
			Reach: 0.5, On: 0, Off: 1e5,
		})
	}
	var ts []*core.Task
	for i := 0; i < nTasks; i++ {
		ts = append(ts, &core.Task{
			ID: i + 1, Loc: geo.Point{X: r.Float64() * span, Y: r.Float64() * span},
			Pub: 0, Exp: 1e5, Cell: -1,
		})
	}
	return ws, ts
}

// BenchmarkSeparateScale compares the spatial-grid reachability path against
// the brute-force scan across planning-instant sizes (total entities =
// workers + tasks at a 1:4 ratio). The indexed and brute paths produce
// identical Separations; only cost differs.
func BenchmarkSeparateScale(b *testing.B) {
	scales := []struct {
		name             string
		nWorkers, nTasks int
	}{
		{"1k", 200, 800},
		{"5k", 1000, 4000},
		{"20k", 4000, 16000},
	}
	o := Options{Travel: geo.NewTravelModel(0.005), Parallelism: 1, MaxSeqLen: 2}
	for _, sc := range scales {
		ws, ts := scaledInstance(sc.nWorkers, sc.nTasks)
		b.Run(sc.name+"/indexed", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Separate(ws, ts, 0, o)
			}
		})
		b.Run(sc.name+"/brute", func(b *testing.B) {
			bo := o
			bo.BruteForce = true
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Separate(ws, ts, 0, bo)
			}
		})
	}
}

// BenchmarkReachableScale isolates per-instant reachability — every worker's
// RS_w over the full pool — which the grid index turns from O(|W|·|T|) into
// O(|W|·k). The indexed timing includes building the index, as Separate
// rebuilds it each planning instant.
func BenchmarkReachableScale(b *testing.B) {
	scales := []struct {
		name             string
		nWorkers, nTasks int
	}{
		{"1k", 200, 800},
		{"5k", 1000, 4000},
		{"20k", 4000, 16000},
	}
	o := Options{Travel: geo.NewTravelModel(0.005)}.WithDefaults()
	for _, sc := range scales {
		ws, ts := scaledInstance(sc.nWorkers, sc.nTasks)
		b.Run(sc.name+"/indexed", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ix := spatial.NewIndex(ts, spatial.CellSizeForReach(ws))
				for _, w := range ws {
					ReachableTasksIndexed(w, ix, 0, o)
				}
			}
		})
		b.Run(sc.name+"/brute", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, w := range ws {
					ReachableTasks(w, ts, 0, o)
				}
			}
		})
	}
}
