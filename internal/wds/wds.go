// Package wds implements Worker Dependency Separation (Section IV-A of the
// DATA-WA paper): finding each worker's reachable tasks, generating maximal
// valid task sequences (Eq. 10), constructing the Worker Dependency Graph,
// partitioning it into maximal cliques with Maximum Cardinality Search, and
// organizing the cliques into a Recursive Tree Construction (RTC) tree whose
// sibling subtrees are independent — the property that lets the assignment
// search solve each subtree separately.
package wds

import (
	"sort"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/graphutil"
	"repro/internal/par"
	"repro/internal/spatial"
)

// Options bounds the search effort. Zero values take defaults chosen so a
// planning instant on city-scale data stays interactive on one core.
type Options struct {
	// Travel converts distance to time.
	Travel geo.TravelModel
	// MaxSeqLen caps the length of generated task sequences (default 3).
	MaxSeqLen int
	// MaxReachable caps the reachable set per worker to the nearest tasks
	// (default 8); the dependency graph and the sequence generator both
	// operate on the capped sets.
	MaxReachable int
	// MaxSequences caps |Q_w| per worker after dedup (default 128).
	MaxSequences int
	// Parallelism bounds the goroutines used for the per-worker
	// reachable-set and sequence-generation loop inside Separate: 0 uses
	// one goroutine per CPU, 1 (or any negative value) runs serially.
	// Results are identical at every setting.
	Parallelism int
	// BruteForce disables the spatial grid index inside Separate, scanning
	// the full task pool per worker instead. Kept for ablation and for the
	// indexed-versus-brute-force benchmarks; answers are identical either
	// way.
	BruteForce bool
}

// WithDefaults returns o with zero fields replaced by defaults.
func (o Options) WithDefaults() Options {
	if o.Travel.Speed <= 0 {
		o.Travel = geo.NewTravelModel(0)
	}
	if o.MaxSeqLen <= 0 {
		o.MaxSeqLen = 3
	}
	if o.MaxReachable <= 0 {
		o.MaxReachable = 8
	}
	if o.MaxSequences <= 0 {
		o.MaxSequences = 128
	}
	return o
}

// ReachableTasks returns RS_w, the subset of tasks worker w can serve within
// its availability window starting at time now (Section IV-A.1):
//
//	(i)   c(w.l, s.l) ≤ s.e − t_now  — reachable before expiration,
//	(ii)  c(w.l, s.l) ≤ T_w          — completable within the window,
//	(iii) td(w.l, s.l) ≤ w.d         — within reachable distance.
//
// The result is sorted by distance (ties by id) and capped at
// o.MaxReachable entries.
//
// This variant scans the given slice; Separate and ReachableTasksIndexed
// answer the same query through a spatial grid index, scanning only the
// tasks near w, with identical results.
func ReachableTasks(w *core.Worker, tasks []*core.Task, now float64, o Options) []*core.Task {
	return reachableFrom(w, tasks, now, o.WithDefaults())
}

// ReachableTasksIndexed returns RS_w exactly as ReachableTasks does, but
// gathers candidates from the grid index instead of scanning every task:
// only tasks within w.Reach of w.Loc are examined, so the per-worker cost is
// O(k) in the local task count rather than O(|T|).
func ReachableTasksIndexed(w *core.Worker, ix *spatial.Index, now float64, o Options) []*core.Task {
	o = o.WithDefaults()
	if !w.Available(now) {
		return nil
	}
	// Condition (iii) bounds every reachable task to the disc of radius
	// w.Reach; conditions (i)/(ii) only filter further.
	return reachableFrom(w, ix.Within(w.Loc, w.Reach), now, o)
}

// reachableFrom applies the Section IV-A.1 constraints to a candidate pool.
// Candidates must be a superset of the disc of radius w.Reach around w.Loc
// intersected with the pool the caller reasons about; the exact filter here
// makes the brute-force and indexed paths interchangeable.
func reachableFrom(w *core.Worker, cands []*core.Task, now float64, o Options) []*core.Task {
	if !w.Available(now) {
		return nil
	}
	window := w.Off - now
	type cand struct {
		t *core.Task
		d float64
	}
	var keep []cand
	for _, s := range cands {
		if s.Exp <= now {
			continue
		}
		d := geo.Dist(w.Loc, s.Loc)
		travel := o.Travel.TimeForDist(d)
		if travel > s.Exp-now {
			continue // (i)
		}
		if travel > window {
			continue // (ii)
		}
		if d > w.Reach {
			continue // (iii)
		}
		keep = append(keep, cand{s, d})
	}
	sort.Slice(keep, func(i, j int) bool {
		if keep[i].d != keep[j].d {
			return keep[i].d < keep[j].d
		}
		return keep[i].t.ID < keep[j].t.ID
	})
	if len(keep) > o.MaxReachable {
		keep = keep[:o.MaxReachable]
	}
	out := make([]*core.Task, len(keep))
	for i, c := range keep {
		out[i] = c.t
	}
	return out
}

// MaximalValidSequences computes Q_w: for every subset of the reachable set
// RS_w (up to o.MaxSeqLen tasks) that admits a valid ordering, the ordering
// with minimal completion time (Eq. 10). Sequences are returned longest
// first, then by completion time, then lexicographically by ids, and the
// list is capped at o.MaxSequences.
//
// The search extends sequences task by task and prunes as soon as an
// extension violates Definition 4, which is sound because validity is
// prefix-closed.
func MaximalValidSequences(w *core.Worker, rs []*core.Task, now float64, o Options) []core.Sequence {
	o = o.WithDefaults()
	type best struct {
		seq        core.Sequence
		completion float64
	}
	bests := make(map[string]best)

	var cur core.Sequence
	used := make([]bool, len(rs))

	var extend func(loc geo.Point, t float64)
	extend = func(loc geo.Point, t float64) {
		if len(cur) > 0 {
			key := cur.SetKey()
			if b, ok := bests[key]; !ok || t < b.completion {
				bests[key] = best{seq: cur.Clone(), completion: t}
			}
		}
		if len(cur) >= o.MaxSeqLen {
			return
		}
		for i, s := range rs {
			if used[i] {
				continue
			}
			arrive := t + o.Travel.Time(loc, s.Loc)
			if arrive < s.Pub {
				arrive = s.Pub
			}
			if arrive >= s.Exp || arrive >= w.Off {
				continue
			}
			if geo.Dist(w.Loc, s.Loc) > w.Reach {
				continue
			}
			used[i] = true
			cur = append(cur, s)
			extend(s.Loc, arrive)
			cur = cur[:len(cur)-1]
			used[i] = false
		}
	}
	extend(w.Loc, now)

	out := make([]core.Sequence, 0, len(bests))
	completions := make(map[string]float64, len(bests))
	for key, b := range bests {
		out = append(out, b.seq)
		completions[key] = b.completion
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		ci, cj := completions[out[i].SetKey()], completions[out[j].SetKey()]
		if ci != cj {
			return ci < cj
		}
		return lessIDs(out[i], out[j])
	})
	if len(out) > o.MaxSequences {
		out = out[:o.MaxSequences]
	}
	return out
}

func lessIDs(a, b core.Sequence) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i].ID != b[i].ID {
			return a[i].ID < b[i].ID
		}
	}
	return len(a) < len(b)
}

// Separation is the full Worker Dependency Separation state for one
// planning instant: per-worker reachable sets and candidate sequences, the
// dependency graph, and the RTC forest (one tree per connected component).
type Separation struct {
	Workers   []*core.Worker
	Reachable map[int][]*core.Task    // worker id → RS_w
	Sequences map[int][]core.Sequence // worker id → Q_w
	Graph     *graphutil.Graph        // vertices index Workers
	Forest    []*TreeNode
}

// TreeNode is one node of the RTC tree. Workers holds the clique X′
// installed at this node; Children are the trees of the components obtained
// by removing X′. Workers in sibling subtrees are independent.
type TreeNode struct {
	Workers  []*core.Worker
	Children []*TreeNode
}

// AllWorkers returns every worker in the subtree rooted at n, in
// deterministic (pre-order, id-sorted within nodes) order.
func (n *TreeNode) AllWorkers() []*core.Worker {
	if n == nil {
		return nil
	}
	out := append([]*core.Worker(nil), n.Workers...)
	for _, c := range n.Children {
		out = append(out, c.AllWorkers()...)
	}
	return out
}

// Size returns the number of workers in the subtree.
func (n *TreeNode) Size() int { return len(n.AllWorkers()) }

// Depth returns the height of the subtree (a single node has depth 1).
func (n *TreeNode) Depth() int {
	if n == nil {
		return 0
	}
	d := 0
	for _, c := range n.Children {
		if cd := c.Depth(); cd > d {
			d = cd
		}
	}
	return d + 1
}

// Separate runs the complete WDS pipeline for the given workers and tasks
// at time now: reachable sets, maximal valid sequences, worker dependency
// graph (workers are dependent iff they share a reachable task, Section
// IV-A.2), MCS clique partition and RTC tree construction (IV-A.3/IV-A.4).
//
// Reachability is answered through a spatial grid index over the task pool
// (cell size derived from the largest worker reach; see internal/spatial)
// unless o.BruteForce is set, and the per-worker reachable-set and sequence
// loop fans out across o.Parallelism goroutines. Both switches change only
// the cost of the call — the Separation is identical at every setting.
func Separate(workers []*core.Worker, tasks []*core.Task, now float64, o Options) *Separation {
	o = o.WithDefaults()
	sep := &Separation{
		Workers:   workers,
		Reachable: make(map[int][]*core.Task, len(workers)),
		Sequences: make(map[int][]core.Sequence, len(workers)),
	}
	var ix *spatial.Index
	if !o.BruteForce {
		ix = spatial.NewIndex(tasks, spatial.CellSizeForReach(workers))
	}
	// Each worker's RS_w and Q_w depend only on that worker and the shared
	// read-only pool, so the loop is embarrassingly parallel; results land
	// in per-index slots and the maps are filled afterwards.
	rs := make([][]*core.Task, len(workers))
	qs := make([][]core.Sequence, len(workers))
	par.Do(len(workers), o.Parallelism, func(i int) {
		w := workers[i]
		if ix != nil {
			rs[i] = ReachableTasksIndexed(w, ix, now, o)
		} else {
			rs[i] = reachableFrom(w, tasks, now, o)
		}
		qs[i] = MaximalValidSequences(w, rs[i], now, o)
	})
	for i, w := range workers {
		sep.Reachable[w.ID] = rs[i]
		sep.Sequences[w.ID] = qs[i]
	}

	// Dependency graph: invert the reachable relation task → workers, then
	// connect workers sharing any task. This is O(Σ|RS| + edges) instead of
	// the paper's O(|W|²·|RS|) pairwise scan.
	sep.Graph = graphutil.New(len(workers))
	byTask := make(map[int][]int)
	for idx, w := range workers {
		for _, s := range sep.Reachable[w.ID] {
			byTask[s.ID] = append(byTask[s.ID], idx)
		}
	}
	for _, ws := range byTask {
		for i := 0; i < len(ws); i++ {
			for j := i + 1; j < len(ws); j++ {
				sep.Graph.AddEdge(ws[i], ws[j])
			}
		}
	}

	builder := newTreeBuilder(sep.Graph)
	for _, comp := range sep.Graph.Components(nil) {
		sep.Forest = append(sep.Forest, builder.build(comp, workers))
	}
	return sep
}

// treeBuilder carries the RTC construction state for one dependency graph: a
// CSR copy of the adjacency (sorted neighbor slices beat per-edge map
// iteration in the clique-probing BFS) and dense scratch reused across every
// node of every tree, so probing a clique costs O(component + edges) with no
// allocations beyond the result.
type treeBuilder struct {
	g       *graphutil.Graph
	offs    []int32
	nbrs    []int32
	inComp  []bool
	removed []bool
	seen    []bool
	queue   []int32
}

func newTreeBuilder(g *graphutil.Graph) *treeBuilder {
	n := g.N()
	b := &treeBuilder{
		g:       g,
		offs:    make([]int32, n+1),
		inComp:  make([]bool, n),
		removed: make([]bool, n),
		seen:    make([]bool, n),
	}
	for v := 0; v < n; v++ {
		b.offs[v+1] = b.offs[v] + int32(g.Degree(v))
	}
	b.nbrs = make([]int32, b.offs[n])
	for v := 0; v < n; v++ {
		for i, u := range g.Neighbors(v) {
			b.nbrs[b.offs[v]+int32(i)] = int32(u)
		}
	}
	return b
}

// build applies the RTC algorithm (Section IV-A.4) to one connected
// component: partition into maximal cliques via MCS on the chordal
// completion, install the clique whose removal yields the most components
// as the root, and recurse on each remaining component.
func (b *treeBuilder) build(comp []int, workers []*core.Worker) *TreeNode {
	if len(comp) == 0 {
		return nil
	}
	chordal, peo := b.g.FillIn(comp)
	cliques := graphutil.MaximalCliquesChordal(chordal, peo)

	for _, v := range comp {
		b.inComp[v] = true
	}

	// Choose X′ maximizing the number of remaining components; ties prefer
	// the larger clique (smaller residual work), then lexicographic order.
	// Probing a clique only needs the residual component COUNT; the full
	// component lists are materialized once, for the winner.
	bestIdx, bestComps := -1, -1
	for ci, clique := range cliques {
		for _, v := range clique {
			b.removed[v] = true
		}
		count, _ := b.residual(comp, false)
		for _, v := range clique {
			b.removed[v] = false
		}
		better := false
		switch {
		case count > bestComps:
			better = true
		case count == bestComps && bestIdx >= 0 && len(clique) > len(cliques[bestIdx]):
			better = true
		}
		if bestIdx < 0 || better {
			bestIdx, bestComps = ci, count
		}
	}
	for _, v := range cliques[bestIdx] {
		b.removed[v] = true
	}
	_, bestResidual := b.residual(comp, true)
	for _, v := range cliques[bestIdx] {
		b.removed[v] = false
	}

	// Release the component flags before recursing: children mark their own
	// (smaller) membership sets in the same scratch.
	for _, v := range comp {
		b.inComp[v] = false
	}

	node := &TreeNode{}
	for _, v := range cliques[bestIdx] {
		node.Workers = append(node.Workers, workers[v])
	}
	sort.Slice(node.Workers, func(i, j int) bool { return node.Workers[i].ID < node.Workers[j].ID })
	for _, sub := range bestResidual {
		if child := b.build(sub, workers); child != nil {
			node.Children = append(node.Children, child)
		}
	}
	return node
}

// residual runs the BFS over comp minus the currently removed vertices and
// returns the component count; with collect set it also materializes the
// components — each ascending, ordered by smallest vertex, the format
// graphutil.Components produces (comp is sorted, so seeding the BFS in comp
// order yields that ordering directly). The clique-selection loop probes
// with collect=false and materializes only the winner, so both uses share
// one traversal body and cannot drift apart.
func (b *treeBuilder) residual(comp []int, collect bool) (int, [][]int) {
	count := 0
	var comps [][]int
	var touched []int32
	for _, s := range comp {
		if b.seen[s] || b.removed[s] {
			continue
		}
		count++
		var cc []int
		// Pop via a head index: reslicing the front away would permanently
		// erode the scratch buffer's capacity and defeat its reuse.
		b.queue = append(b.queue[:0], int32(s))
		b.seen[s] = true
		touched = append(touched, int32(s))
		for head := 0; head < len(b.queue); head++ {
			v := b.queue[head]
			if collect {
				cc = append(cc, int(v))
			}
			for _, u := range b.nbrs[b.offs[v]:b.offs[v+1]] {
				if b.inComp[u] && !b.removed[u] && !b.seen[u] {
					b.seen[u] = true
					touched = append(touched, u)
					b.queue = append(b.queue, u)
				}
			}
		}
		if collect {
			sort.Ints(cc)
			comps = append(comps, cc)
		}
	}
	for _, v := range touched {
		b.seen[v] = false
	}
	return count, comps
}
