// Package wds implements Worker Dependency Separation (Section IV-A of the
// DATA-WA paper): finding each worker's reachable tasks, generating maximal
// valid task sequences (Eq. 10), constructing the Worker Dependency Graph,
// partitioning it into maximal cliques with Maximum Cardinality Search, and
// organizing the cliques into a Recursive Tree Construction (RTC) tree whose
// sibling subtrees are independent — the property that lets the assignment
// search solve each subtree separately.
package wds

import (
	"slices"
	"sort"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/graphutil"
	"repro/internal/par"
	"repro/internal/spatial"
)

// Options bounds the search effort. Zero values take defaults chosen so a
// planning instant on city-scale data stays interactive on one core.
type Options struct {
	// Travel converts distance to time.
	Travel geo.TravelModel
	// MaxSeqLen caps the length of generated task sequences (default 3).
	MaxSeqLen int
	// MaxReachable caps the reachable set per worker to the nearest tasks
	// (default 8); the dependency graph and the sequence generator both
	// operate on the capped sets.
	MaxReachable int
	// MaxSequences caps |Q_w| per worker after dedup (default 128).
	MaxSequences int
	// Parallelism bounds the goroutines used for the per-worker
	// reachable-set and sequence-generation loop inside Separate: 0 uses
	// one goroutine per CPU, 1 (or any negative value) runs serially.
	// Results are identical at every setting.
	Parallelism int
	// BruteForce disables the spatial grid index inside Separate, scanning
	// the full task pool per worker instead. Kept for ablation and for the
	// indexed-versus-brute-force benchmarks; answers are identical either
	// way.
	BruteForce bool
}

// WithDefaults returns o with zero fields replaced by defaults.
func (o Options) WithDefaults() Options {
	if o.Travel.Speed <= 0 {
		o.Travel = geo.NewTravelModel(0)
	}
	if o.MaxSeqLen <= 0 {
		o.MaxSeqLen = 3
	}
	if o.MaxReachable <= 0 {
		o.MaxReachable = 8
	}
	if o.MaxSequences <= 0 {
		o.MaxSequences = 128
	}
	return o
}

// ReachableTasks returns RS_w, the subset of tasks worker w can serve within
// its availability window starting at time now (Section IV-A.1):
//
//	(i)   c(w.l, s.l) ≤ s.e − t_now  — reachable before expiration,
//	(ii)  c(w.l, s.l) ≤ T_w          — completable within the window,
//	(iii) td(w.l, s.l) ≤ w.d         — within reachable distance.
//
// The result is sorted by distance (ties by id) and capped at
// o.MaxReachable entries.
//
// This variant scans the given slice; Separate and ReachableTasksIndexed
// answer the same query through a spatial grid index, scanning only the
// tasks near w, with identical results.
func ReachableTasks(w *core.Worker, tasks []*core.Task, now float64, o Options) []*core.Task {
	var sc Scratch
	return sc.reachableFrom(w, tasks, now, o.WithDefaults())
}

// ReachableTasksIndexed returns RS_w exactly as ReachableTasks does, but
// gathers candidates from the grid index instead of scanning every task:
// only tasks within w.Reach of w.Loc are examined, so the per-worker cost is
// O(k) in the local task count rather than O(|T|).
func ReachableTasksIndexed(w *core.Worker, ix *spatial.Index, now float64, o Options) []*core.Task {
	var sc Scratch
	return sc.ReachableTasksIndexed(w, ix, now, o)
}

// Scratch holds the reusable intermediate buffers of the per-worker
// reachable-set and sequence computations, so steady-state planning loops
// (a planner calling these once per worker per instant) allocate only their
// results, never their scratch. A Scratch serves one goroutine at a time;
// Separate keeps one per worker goroutine, planners one per instance. The
// zero value is ready to use.
type Scratch struct {
	cands   []*core.Task // spatial-index query results
	keep    []cand       // reachableFrom's filtered candidates
	used    []bool       // sequence-extension membership flags
	cur     core.Sequence
	entries []seqEntry       // per task-set best orderings (bitmask path)
	bests   map[uint64]int32 // task-set bitmask → index into entries
}

// cand pairs a reachable task with its distance for the sort in
// reachableFrom.
type cand struct {
	t *core.Task
	d float64
}

// seqEntry is one deduped task set with its best (minimal-completion)
// ordering.
type seqEntry struct {
	seq        core.Sequence
	completion float64
}

// ReachableTasks is the scratch-reusing form of the package function.
func (sc *Scratch) ReachableTasks(w *core.Worker, tasks []*core.Task, now float64, o Options) []*core.Task {
	return sc.reachableFrom(w, tasks, now, o.WithDefaults())
}

// ReachableTasksIndexed is the scratch-reusing form of the package function.
func (sc *Scratch) ReachableTasksIndexed(w *core.Worker, ix *spatial.Index, now float64, o Options) []*core.Task {
	o = o.WithDefaults()
	if !w.Available(now) {
		return nil
	}
	// Condition (iii) bounds every reachable task to the disc of radius
	// w.Reach; conditions (i)/(ii) only filter further.
	sc.cands = ix.AppendWithin(sc.cands[:0], w.Loc, w.Reach)
	out := sc.reachableFrom(w, sc.cands, now, o)
	clear(sc.cands) // release task pointers held by the scratch buffer
	return out
}

// reachableFrom applies the Section IV-A.1 constraints to a candidate pool.
// Candidates must be a superset of the disc of radius w.Reach around w.Loc
// intersected with the pool the caller reasons about; the exact filter here
// makes the brute-force and indexed paths interchangeable.
func (sc *Scratch) reachableFrom(w *core.Worker, cands []*core.Task, now float64, o Options) []*core.Task {
	if !w.Available(now) {
		return nil
	}
	window := w.Off - now
	keep := sc.keep[:0]
	for _, s := range cands {
		if s.Exp <= now {
			continue
		}
		d := geo.Dist(w.Loc, s.Loc)
		travel := o.Travel.TimeForDist(d)
		if travel > s.Exp-now {
			continue // (i)
		}
		if travel > window {
			continue // (ii)
		}
		if d > w.Reach {
			continue // (iii)
		}
		keep = append(keep, cand{s, d})
	}
	slices.SortFunc(keep, func(a, b cand) int {
		switch {
		case a.d < b.d:
			return -1
		case a.d > b.d:
			return 1
		case a.t.ID < b.t.ID:
			return -1
		case a.t.ID > b.t.ID:
			return 1
		}
		return 0
	})
	if len(keep) > o.MaxReachable {
		keep = keep[:o.MaxReachable]
	}
	out := make([]*core.Task, len(keep))
	for i, c := range keep {
		out[i] = c.t
	}
	sc.keep = keep[:0]
	clear(keep[:cap(keep)]) // release task pointers held by the scratch buffer
	return out
}

// MaximalValidSequences computes Q_w: for every subset of the reachable set
// RS_w (up to o.MaxSeqLen tasks) that admits a valid ordering, the ordering
// with minimal completion time (Eq. 10). Sequences are returned longest
// first, then by completion time, then lexicographically by ids, and the
// list is capped at o.MaxSequences.
//
// The search extends sequences task by task and prunes as soon as an
// extension violates Definition 4, which is sound because validity is
// prefix-closed.
func MaximalValidSequences(w *core.Worker, rs []*core.Task, now float64, o Options) []core.Sequence {
	var sc Scratch
	return sc.MaximalValidSequences(w, rs, now, o)
}

// MaximalValidSequences is the scratch-reusing form of the package function:
// every intermediate structure — the per-set dedup table, the extension
// stack, the usage flags — lives in the Scratch, so a planner's steady-state
// per-worker loop allocates only the returned sequences. An empty reachable
// set (the common case on sparse workloads) returns nil without touching the
// scratch at all.
func (sc *Scratch) MaximalValidSequences(w *core.Worker, rs []*core.Task, now float64, o Options) []core.Sequence {
	if len(rs) == 0 {
		return nil
	}
	o = o.WithDefaults()
	if len(rs) > 64 {
		return maximalValidSequencesByKey(w, rs, now, o)
	}
	// Task sets over at most 64 reachable tasks dedup by bitmask over rs
	// indices — rs holds distinct tasks, so equal masks ⟺ equal id sets,
	// exactly the SetKey equivalence without the string allocations.
	if sc.bests == nil {
		sc.bests = make(map[uint64]int32, 64)
	} else {
		clear(sc.bests)
	}
	entries := sc.entries[:0]
	if cap(sc.used) < len(rs) {
		sc.used = make([]bool, len(rs))
	}
	used := sc.used[:len(rs)]
	clear(used)
	cur := sc.cur[:0]

	var extend func(loc geo.Point, t float64, mask uint64)
	extend = func(loc geo.Point, t float64, mask uint64) {
		if len(cur) > 0 {
			if i, ok := sc.bests[mask]; !ok {
				sc.bests[mask] = int32(len(entries))
				entries = append(entries, seqEntry{seq: cur.Clone(), completion: t})
			} else if t < entries[i].completion {
				entries[i] = seqEntry{seq: cur.Clone(), completion: t}
			}
		}
		if len(cur) >= o.MaxSeqLen {
			return
		}
		for i, s := range rs {
			if used[i] {
				continue
			}
			arrive := t + o.Travel.Time(loc, s.Loc)
			if arrive < s.Pub {
				arrive = s.Pub
			}
			if arrive >= s.Exp || arrive >= w.Off {
				continue
			}
			if geo.Dist(w.Loc, s.Loc) > w.Reach {
				continue
			}
			used[i] = true
			cur = append(cur, s)
			extend(s.Loc, arrive, mask|1<<uint(i))
			cur = cur[:len(cur)-1]
			used[i] = false
		}
	}
	extend(w.Loc, now, 0)
	sc.cur = cur[:0]

	slices.SortFunc(entries, func(a, b seqEntry) int {
		if len(a.seq) != len(b.seq) {
			return len(b.seq) - len(a.seq)
		}
		switch {
		case a.completion < b.completion:
			return -1
		case a.completion > b.completion:
			return 1
		case lessIDs(a.seq, b.seq):
			return -1
		case lessIDs(b.seq, a.seq):
			return 1
		}
		return 0
	})
	n := len(entries)
	if n > o.MaxSequences {
		n = o.MaxSequences
	}
	out := make([]core.Sequence, n)
	for i := range out {
		out[i] = entries[i].seq
	}
	sc.entries = entries[:0]
	clear(entries[:cap(entries)]) // release the sequences held by the scratch
	return out
}

// maximalValidSequencesByKey is the SetKey-deduped fallback for reachable
// sets too large for a 64-bit index mask (only possible with MaxReachable
// raised past 64).
func maximalValidSequencesByKey(w *core.Worker, rs []*core.Task, now float64, o Options) []core.Sequence {
	type best struct {
		seq        core.Sequence
		completion float64
	}
	bests := make(map[string]best)

	var cur core.Sequence
	used := make([]bool, len(rs))

	var extend func(loc geo.Point, t float64)
	extend = func(loc geo.Point, t float64) {
		if len(cur) > 0 {
			key := cur.SetKey()
			if b, ok := bests[key]; !ok || t < b.completion {
				bests[key] = best{seq: cur.Clone(), completion: t}
			}
		}
		if len(cur) >= o.MaxSeqLen {
			return
		}
		for i, s := range rs {
			if used[i] {
				continue
			}
			arrive := t + o.Travel.Time(loc, s.Loc)
			if arrive < s.Pub {
				arrive = s.Pub
			}
			if arrive >= s.Exp || arrive >= w.Off {
				continue
			}
			if geo.Dist(w.Loc, s.Loc) > w.Reach {
				continue
			}
			used[i] = true
			cur = append(cur, s)
			extend(s.Loc, arrive)
			cur = cur[:len(cur)-1]
			used[i] = false
		}
	}
	extend(w.Loc, now)

	out := make([]core.Sequence, 0, len(bests))
	completions := make(map[string]float64, len(bests))
	//datawa:unordered out is totally ordered by the sort.Slice below (length, completion, then lessIDs)
	for key, b := range bests {
		out = append(out, b.seq)
		completions[key] = b.completion
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		ci, cj := completions[out[i].SetKey()], completions[out[j].SetKey()]
		if ci != cj {
			return ci < cj
		}
		return lessIDs(out[i], out[j])
	})
	if len(out) > o.MaxSequences {
		out = out[:o.MaxSequences]
	}
	return out
}

func lessIDs(a, b core.Sequence) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i].ID != b[i].ID {
			return a[i].ID < b[i].ID
		}
	}
	return len(a) < len(b)
}

// Separation is the full Worker Dependency Separation state for one
// planning instant: per-worker reachable sets and candidate sequences, the
// dependency graph, and the RTC forest (one tree per connected component).
type Separation struct {
	Workers   []*core.Worker
	Reachable map[int][]*core.Task    // worker id → RS_w
	Sequences map[int][]core.Sequence // worker id → Q_w
	Graph     *graphutil.Graph        // vertices index Workers
	Forest    []*TreeNode
}

// TreeNode is one node of the RTC tree. Workers holds the clique X′
// installed at this node; Children are the trees of the components obtained
// by removing X′. Workers in sibling subtrees are independent.
type TreeNode struct {
	Workers  []*core.Worker
	Children []*TreeNode
}

// AllWorkers returns every worker in the subtree rooted at n, in
// deterministic (pre-order, id-sorted within nodes) order.
func (n *TreeNode) AllWorkers() []*core.Worker {
	if n == nil {
		return nil
	}
	out := append([]*core.Worker(nil), n.Workers...)
	for _, c := range n.Children {
		out = append(out, c.AllWorkers()...)
	}
	return out
}

// EachWorker visits every worker in the subtree in AllWorkers order without
// materializing the slice — the allocation-free walk used by per-tree setup
// loops that run once per planning instant.
func (n *TreeNode) EachWorker(f func(*core.Worker)) {
	if n == nil {
		return
	}
	for _, w := range n.Workers {
		f(w)
	}
	for _, c := range n.Children {
		c.EachWorker(f)
	}
}

// Size returns the number of workers in the subtree.
func (n *TreeNode) Size() int { return len(n.AllWorkers()) }

// Depth returns the height of the subtree (a single node has depth 1).
func (n *TreeNode) Depth() int {
	if n == nil {
		return 0
	}
	d := 0
	for _, c := range n.Children {
		if cd := c.Depth(); cd > d {
			d = cd
		}
	}
	return d + 1
}

// Separate runs the complete WDS pipeline for the given workers and tasks
// at time now: reachable sets, maximal valid sequences, worker dependency
// graph (workers are dependent iff they share a reachable task, Section
// IV-A.2), MCS clique partition and RTC tree construction (IV-A.3/IV-A.4).
//
// Reachability is answered through a spatial grid index over the task pool
// (cell size derived from the largest worker reach; see internal/spatial)
// unless o.BruteForce is set, and the per-worker reachable-set and sequence
// loop fans out across o.Parallelism goroutines. Both switches change only
// the cost of the call — the Separation is identical at every setting.
func Separate(workers []*core.Worker, tasks []*core.Task, now float64, o Options) *Separation {
	var sp Separator
	return sp.Separate(workers, tasks, now, o)
}

// Separator runs the WDS pipeline with every intermediate structure — the
// per-goroutine scratch, the spatial index, the dependency graph, the RTC
// builder, and the Separation's own maps — reused across calls, so a planner
// invoking it once per instant allocates only the per-worker results. The
// returned Separation is owned by the Separator and valid until the next
// Separate call; callers that retain it across instants must use the package
// function instead. The zero value is ready to use.
type Separator struct {
	scr   []Scratch
	rs    [][]*core.Task
	qs    [][]core.Sequence
	pairs []taskWorker
	ix    spatial.Index
	g     graphutil.Graph
	b     treeBuilder
	sep   Separation
}

// taskWorker is one (task, worker-index) incidence of the reachable relation.
type taskWorker struct {
	task int
	w    int32
}

// Separate is the scratch-reusing form of the package function; see the
// Separator doc for the ownership contract of the result.
func (sp *Separator) Separate(workers []*core.Worker, tasks []*core.Task, now float64, o Options) *Separation {
	o = o.WithDefaults()
	sep := &sp.sep
	sep.Workers = workers
	if sep.Reachable == nil {
		sep.Reachable = make(map[int][]*core.Task, len(workers))
		sep.Sequences = make(map[int][]core.Sequence, len(workers))
	} else {
		clear(sep.Reachable)
		clear(sep.Sequences)
	}
	clear(sep.Forest)
	sep.Forest = sep.Forest[:0]

	var ix *spatial.Index
	if !o.BruteForce {
		sp.ix.Reset(tasks, spatial.CellSizeForReach(workers))
		ix = &sp.ix
	}
	// Each worker's RS_w and Q_w depend only on that worker and the shared
	// read-only pool, so the loop is embarrassingly parallel; results land
	// in per-index slots and the maps are filled afterwards.
	rs := slices.Grow(sp.rs[:0], len(workers))[:len(workers)]
	qs := slices.Grow(sp.qs[:0], len(workers))[:len(workers)]
	sp.rs, sp.qs = rs, qs
	for len(sp.scr) < par.Workers(o.Parallelism, len(workers)) {
		sp.scr = append(sp.scr, Scratch{})
	}
	par.DoWorker(len(workers), o.Parallelism, func(g, i int) {
		sc := &sp.scr[g]
		w := workers[i]
		if ix != nil {
			rs[i] = sc.ReachableTasksIndexed(w, ix, now, o)
		} else {
			rs[i] = sc.reachableFrom(w, tasks, now, o)
		}
		qs[i] = sc.MaximalValidSequences(w, rs[i], now, o)
	})
	for i, w := range workers {
		sep.Reachable[w.ID] = rs[i]
		sep.Sequences[w.ID] = qs[i]
	}

	// Dependency graph: invert the reachable relation task → workers by
	// sorting the incidence pairs (grouping replaces the former map of
	// per-task worker lists), then connect workers sharing any task. This is
	// O(Σ|RS| log Σ|RS| + edges) instead of the paper's O(|W|²·|RS|)
	// pairwise scan.
	sp.g.Reset(len(workers))
	sep.Graph = &sp.g
	pairs := sp.pairs[:0]
	for idx, w := range workers {
		for _, s := range sep.Reachable[w.ID] {
			pairs = append(pairs, taskWorker{task: s.ID, w: int32(idx)})
		}
	}
	sp.pairs = pairs
	slices.SortFunc(pairs, func(a, b taskWorker) int {
		if a.task != b.task {
			if a.task < b.task {
				return -1
			}
			return 1
		}
		return int(a.w) - int(b.w)
	})
	for i := 0; i < len(pairs); {
		j := i + 1
		for j < len(pairs) && pairs[j].task == pairs[i].task {
			j++
		}
		for a := i; a < j; a++ {
			for b := a + 1; b < j; b++ {
				sep.Graph.AddEdge(int(pairs[a].w), int(pairs[b].w))
			}
		}
		i = j
	}

	sp.b.init(sep.Graph)
	flat, offs := sp.b.components()
	for i := 0; i+1 < len(offs); i++ {
		sep.Forest = append(sep.Forest, sp.b.build(flat[offs[i]:offs[i+1]], workers))
	}
	return sep
}

// treeBuilder carries the RTC construction state for one dependency graph: a
// CSR copy of the adjacency (sorted neighbor slices beat per-edge map
// iteration in the clique-probing BFS) and dense scratch reused across every
// node of every tree, so probing a clique costs O(component + edges) with no
// allocations beyond the result.
type treeBuilder struct {
	g       *graphutil.Graph
	offs    []int32
	nbrs    []int32
	inComp  []bool
	removed []bool
	seen    []bool
	queue   []int32
	touched []int32
	// Arenas for the construction's results: tree nodes and the node.Workers
	// backing. Both live until the next init call (the Separation's
	// lifetime), so steady-state tree building allocates only on growth.
	// Each node's Workers span is completed before any other node starts
	// (cliques are installed before recursing), which keeps the spans
	// contiguous; grown-over backings stay alive through the tree's own
	// pointers.
	nodes    []TreeNode
	warena   []*core.Worker
	compFlat []int
	compOffs []int32
}

// init (re)binds the builder to a graph, rebuilding the CSR adjacency and
// resetting the arenas; dense scratch is reused across generations (the
// traversal invariants leave it all-false).
func (b *treeBuilder) init(g *graphutil.Graph) {
	n := g.N()
	b.g = g
	if cap(b.inComp) < n {
		b.inComp = make([]bool, n)
		b.removed = make([]bool, n)
		b.seen = make([]bool, n)
	} else {
		b.inComp = b.inComp[:n]
		b.removed = b.removed[:n]
		b.seen = b.seen[:n]
	}
	b.offs = append(b.offs[:0], 0)
	b.nbrs = b.nbrs[:0]
	add := func(u int) { b.nbrs = append(b.nbrs, int32(u)) }
	for v := 0; v < n; v++ {
		start := len(b.nbrs)
		g.EachNeighbor(v, add)
		slices.Sort(b.nbrs[start:])
		b.offs = append(b.offs, int32(len(b.nbrs)))
	}
	clear(b.nodes)
	b.nodes = b.nodes[:0]
	clear(b.warena)
	b.warena = b.warena[:0]
}

// newNode allocates a tree node from the arena. Arena growth may move the
// backing array; nodes handed out earlier remain valid (kept alive by the
// tree's pointers), they just no longer share storage with newer ones.
func (b *treeBuilder) newNode() *TreeNode {
	b.nodes = append(b.nodes, TreeNode{})
	return &b.nodes[len(b.nodes)-1]
}

// components returns the connected components of the bound graph in
// graphutil.Components' format — each ascending, ordered by smallest vertex —
// materialized into builder-owned flat storage: component i is
// flat[offs[i]:offs[i+1]]. The storage is valid until the next init call and
// is not touched by build (nested residual components allocate their own).
func (b *treeBuilder) components() (flat []int, offs []int32) {
	b.compFlat = b.compFlat[:0]
	b.compOffs = append(b.compOffs[:0], 0)
	n := b.g.N()
	for s := 0; s < n; s++ {
		if b.seen[s] {
			continue
		}
		start := len(b.compFlat)
		b.queue = append(b.queue[:0], int32(s))
		b.seen[s] = true
		for head := 0; head < len(b.queue); head++ {
			v := b.queue[head]
			b.compFlat = append(b.compFlat, int(v))
			for _, u := range b.nbrs[b.offs[v]:b.offs[v+1]] {
				if !b.seen[u] {
					b.seen[u] = true
					b.queue = append(b.queue, u)
				}
			}
		}
		slices.Sort(b.compFlat[start:])
		b.compOffs = append(b.compOffs, int32(len(b.compFlat)))
	}
	// Every vertex was visited; release the seen flags for build's probes.
	for _, v := range b.compFlat {
		b.seen[v] = false
	}
	return b.compFlat, b.compOffs
}

// build applies the RTC algorithm (Section IV-A.4) to one connected
// component: partition into maximal cliques via MCS on the chordal
// completion, install the clique whose removal yields the most components
// as the root, and recurse on each remaining component.
func (b *treeBuilder) build(comp []int, workers []*core.Worker) *TreeNode {
	if len(comp) == 0 {
		return nil
	}
	// A 1- or 2-vertex connected component has exactly one maximal clique —
	// the component itself — whose removal leaves nothing, so the tree is a
	// single node. These dominate sparse instants; building them directly
	// skips the chordal fill-in and clique machinery entirely.
	if len(comp) == 1 {
		node := b.newNode()
		node.Workers = b.installWorkers(workers[comp[0]])
		return node
	}
	if len(comp) == 2 {
		u, v := workers[comp[0]], workers[comp[1]]
		if v.ID < u.ID {
			u, v = v, u
		}
		node := b.newNode()
		node.Workers = b.installWorkers(u, v)
		return node
	}
	chordal, peo := b.g.FillIn(comp)
	cliques := graphutil.MaximalCliquesChordal(chordal, peo)

	for _, v := range comp {
		b.inComp[v] = true
	}

	// Choose X′ maximizing the number of remaining components; ties prefer
	// the larger clique (smaller residual work), then lexicographic order.
	// Probing a clique only needs the residual component COUNT; the full
	// component lists are materialized once, for the winner.
	bestIdx, bestComps := -1, -1
	for ci, clique := range cliques {
		for _, v := range clique {
			b.removed[v] = true
		}
		count, _ := b.residual(comp, false)
		for _, v := range clique {
			b.removed[v] = false
		}
		better := false
		switch {
		case count > bestComps:
			better = true
		case count == bestComps && bestIdx >= 0 && len(clique) > len(cliques[bestIdx]):
			better = true
		}
		if bestIdx < 0 || better {
			bestIdx, bestComps = ci, count
		}
	}
	for _, v := range cliques[bestIdx] {
		b.removed[v] = true
	}
	_, bestResidual := b.residual(comp, true)
	for _, v := range cliques[bestIdx] {
		b.removed[v] = false
	}

	// Release the component flags before recursing: children mark their own
	// (smaller) membership sets in the same scratch.
	for _, v := range comp {
		b.inComp[v] = false
	}

	node := b.newNode()
	start := len(b.warena)
	for _, v := range cliques[bestIdx] {
		b.warena = append(b.warena, workers[v])
	}
	node.Workers = b.warena[start:len(b.warena):len(b.warena)]
	slices.SortFunc(node.Workers, func(a, b *core.Worker) int { return a.ID - b.ID })
	for _, sub := range bestResidual {
		if child := b.build(sub, workers); child != nil {
			node.Children = append(node.Children, child)
		}
	}
	return node
}

// installWorkers appends ws to the worker arena and returns the span as a
// capacity-capped slice (nothing can append through it into the arena).
func (b *treeBuilder) installWorkers(ws ...*core.Worker) []*core.Worker {
	start := len(b.warena)
	b.warena = append(b.warena, ws...)
	return b.warena[start:len(b.warena):len(b.warena)]
}

// residual runs the BFS over comp minus the currently removed vertices and
// returns the component count; with collect set it also materializes the
// components — each ascending, ordered by smallest vertex, the format
// graphutil.Components produces (comp is sorted, so seeding the BFS in comp
// order yields that ordering directly). The clique-selection loop probes
// with collect=false and materializes only the winner, so both uses share
// one traversal body and cannot drift apart.
func (b *treeBuilder) residual(comp []int, collect bool) (int, [][]int) {
	count := 0
	var comps [][]int
	touched := b.touched[:0]
	for _, s := range comp {
		if b.seen[s] || b.removed[s] {
			continue
		}
		count++
		var cc []int
		// Pop via a head index: reslicing the front away would permanently
		// erode the scratch buffer's capacity and defeat its reuse.
		b.queue = append(b.queue[:0], int32(s))
		b.seen[s] = true
		touched = append(touched, int32(s))
		for head := 0; head < len(b.queue); head++ {
			v := b.queue[head]
			if collect {
				cc = append(cc, int(v))
			}
			for _, u := range b.nbrs[b.offs[v]:b.offs[v+1]] {
				if b.inComp[u] && !b.removed[u] && !b.seen[u] {
					b.seen[u] = true
					touched = append(touched, u)
					b.queue = append(b.queue, u)
				}
			}
		}
		if collect {
			sort.Ints(cc)
			comps = append(comps, cc)
		}
	}
	for _, v := range touched {
		b.seen[v] = false
	}
	b.touched = touched[:0]
	return count, comps
}
