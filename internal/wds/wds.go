// Package wds implements Worker Dependency Separation (Section IV-A of the
// DATA-WA paper): finding each worker's reachable tasks, generating maximal
// valid task sequences (Eq. 10), constructing the Worker Dependency Graph,
// partitioning it into maximal cliques with Maximum Cardinality Search, and
// organizing the cliques into a Recursive Tree Construction (RTC) tree whose
// sibling subtrees are independent — the property that lets the assignment
// search solve each subtree separately.
package wds

import (
	"sort"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/graphutil"
)

// Options bounds the search effort. Zero values take defaults chosen so a
// planning instant on city-scale data stays interactive on one core.
type Options struct {
	// Travel converts distance to time.
	Travel geo.TravelModel
	// MaxSeqLen caps the length of generated task sequences (default 3).
	MaxSeqLen int
	// MaxReachable caps the reachable set per worker to the nearest tasks
	// (default 8); the dependency graph still uses the uncapped sets.
	MaxReachable int
	// MaxSequences caps |Q_w| per worker after dedup (default 128).
	MaxSequences int
}

// WithDefaults returns o with zero fields replaced by defaults.
func (o Options) WithDefaults() Options {
	if o.Travel.Speed <= 0 {
		o.Travel = geo.NewTravelModel(0)
	}
	if o.MaxSeqLen <= 0 {
		o.MaxSeqLen = 3
	}
	if o.MaxReachable <= 0 {
		o.MaxReachable = 8
	}
	if o.MaxSequences <= 0 {
		o.MaxSequences = 128
	}
	return o
}

// ReachableTasks returns RS_w, the subset of tasks worker w can serve within
// its availability window starting at time now (Section IV-A.1):
//
//	(i)   c(w.l, s.l) ≤ s.e − t_now  — reachable before expiration,
//	(ii)  c(w.l, s.l) ≤ T_w          — completable within the window,
//	(iii) td(w.l, s.l) ≤ w.d         — within reachable distance.
//
// The result is sorted by distance (ties by id) and capped at
// o.MaxReachable entries.
func ReachableTasks(w *core.Worker, tasks []*core.Task, now float64, o Options) []*core.Task {
	o = o.WithDefaults()
	if !w.Available(now) {
		return nil
	}
	window := w.Off - now
	type cand struct {
		t *core.Task
		d float64
	}
	var cands []cand
	for _, s := range tasks {
		if s.Exp <= now {
			continue
		}
		d := geo.Dist(w.Loc, s.Loc)
		travel := o.Travel.TimeForDist(d)
		if travel > s.Exp-now {
			continue // (i)
		}
		if travel > window {
			continue // (ii)
		}
		if d > w.Reach {
			continue // (iii)
		}
		cands = append(cands, cand{s, d})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d != cands[j].d {
			return cands[i].d < cands[j].d
		}
		return cands[i].t.ID < cands[j].t.ID
	})
	if len(cands) > o.MaxReachable {
		cands = cands[:o.MaxReachable]
	}
	out := make([]*core.Task, len(cands))
	for i, c := range cands {
		out[i] = c.t
	}
	return out
}

// MaximalValidSequences computes Q_w: for every subset of the reachable set
// RS_w (up to o.MaxSeqLen tasks) that admits a valid ordering, the ordering
// with minimal completion time (Eq. 10). Sequences are returned longest
// first, then by completion time, then lexicographically by ids, and the
// list is capped at o.MaxSequences.
//
// The search extends sequences task by task and prunes as soon as an
// extension violates Definition 4, which is sound because validity is
// prefix-closed.
func MaximalValidSequences(w *core.Worker, rs []*core.Task, now float64, o Options) []core.Sequence {
	o = o.WithDefaults()
	type best struct {
		seq        core.Sequence
		completion float64
	}
	bests := make(map[string]best)

	var cur core.Sequence
	used := make([]bool, len(rs))

	var extend func(loc geo.Point, t float64)
	extend = func(loc geo.Point, t float64) {
		if len(cur) > 0 {
			key := cur.SetKey()
			if b, ok := bests[key]; !ok || t < b.completion {
				bests[key] = best{seq: cur.Clone(), completion: t}
			}
		}
		if len(cur) >= o.MaxSeqLen {
			return
		}
		for i, s := range rs {
			if used[i] {
				continue
			}
			arrive := t + o.Travel.Time(loc, s.Loc)
			if arrive < s.Pub {
				arrive = s.Pub
			}
			if arrive >= s.Exp || arrive >= w.Off {
				continue
			}
			if geo.Dist(w.Loc, s.Loc) > w.Reach {
				continue
			}
			used[i] = true
			cur = append(cur, s)
			extend(s.Loc, arrive)
			cur = cur[:len(cur)-1]
			used[i] = false
		}
	}
	extend(w.Loc, now)

	out := make([]core.Sequence, 0, len(bests))
	completions := make(map[string]float64, len(bests))
	for key, b := range bests {
		out = append(out, b.seq)
		completions[key] = b.completion
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		ci, cj := completions[out[i].SetKey()], completions[out[j].SetKey()]
		if ci != cj {
			return ci < cj
		}
		return lessIDs(out[i], out[j])
	})
	if len(out) > o.MaxSequences {
		out = out[:o.MaxSequences]
	}
	return out
}

func lessIDs(a, b core.Sequence) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i].ID != b[i].ID {
			return a[i].ID < b[i].ID
		}
	}
	return len(a) < len(b)
}

// Separation is the full Worker Dependency Separation state for one
// planning instant: per-worker reachable sets and candidate sequences, the
// dependency graph, and the RTC forest (one tree per connected component).
type Separation struct {
	Workers   []*core.Worker
	Reachable map[int][]*core.Task    // worker id → RS_w
	Sequences map[int][]core.Sequence // worker id → Q_w
	Graph     *graphutil.Graph        // vertices index Workers
	Forest    []*TreeNode
}

// TreeNode is one node of the RTC tree. Workers holds the clique X′
// installed at this node; Children are the trees of the components obtained
// by removing X′. Workers in sibling subtrees are independent.
type TreeNode struct {
	Workers  []*core.Worker
	Children []*TreeNode
}

// AllWorkers returns every worker in the subtree rooted at n, in
// deterministic (pre-order, id-sorted within nodes) order.
func (n *TreeNode) AllWorkers() []*core.Worker {
	if n == nil {
		return nil
	}
	out := append([]*core.Worker(nil), n.Workers...)
	for _, c := range n.Children {
		out = append(out, c.AllWorkers()...)
	}
	return out
}

// Size returns the number of workers in the subtree.
func (n *TreeNode) Size() int { return len(n.AllWorkers()) }

// Depth returns the height of the subtree (a single node has depth 1).
func (n *TreeNode) Depth() int {
	if n == nil {
		return 0
	}
	d := 0
	for _, c := range n.Children {
		if cd := c.Depth(); cd > d {
			d = cd
		}
	}
	return d + 1
}

// Separate runs the complete WDS pipeline for the given workers and tasks
// at time now: reachable sets, maximal valid sequences, worker dependency
// graph (workers are dependent iff they share a reachable task, Section
// IV-A.2), MCS clique partition and RTC tree construction (IV-A.3/IV-A.4).
func Separate(workers []*core.Worker, tasks []*core.Task, now float64, o Options) *Separation {
	o = o.WithDefaults()
	sep := &Separation{
		Workers:   workers,
		Reachable: make(map[int][]*core.Task, len(workers)),
		Sequences: make(map[int][]core.Sequence, len(workers)),
	}
	for _, w := range workers {
		rs := ReachableTasks(w, tasks, now, o)
		sep.Reachable[w.ID] = rs
		sep.Sequences[w.ID] = MaximalValidSequences(w, rs, now, o)
	}

	// Dependency graph: invert the reachable relation task → workers, then
	// connect workers sharing any task. This is O(Σ|RS| + edges) instead of
	// the paper's O(|W|²·|RS|) pairwise scan.
	sep.Graph = graphutil.New(len(workers))
	byTask := make(map[int][]int)
	for idx, w := range workers {
		for _, s := range sep.Reachable[w.ID] {
			byTask[s.ID] = append(byTask[s.ID], idx)
		}
	}
	for _, ws := range byTask {
		for i := 0; i < len(ws); i++ {
			for j := i + 1; j < len(ws); j++ {
				sep.Graph.AddEdge(ws[i], ws[j])
			}
		}
	}

	for _, comp := range sep.Graph.Components(nil) {
		sep.Forest = append(sep.Forest, buildTree(sep.Graph, comp, workers))
	}
	return sep
}

// buildTree applies the RTC algorithm (Section IV-A.4) to one connected
// component: partition into maximal cliques via MCS on the chordal
// completion, install the clique whose removal yields the most components
// as the root, and recurse on each remaining component.
func buildTree(g *graphutil.Graph, comp []int, workers []*core.Worker) *TreeNode {
	if len(comp) == 0 {
		return nil
	}
	chordal, peo := g.FillIn(comp)
	cliques := graphutil.MaximalCliquesChordal(chordal, peo)

	inComp := make(map[int]bool, len(comp))
	for _, v := range comp {
		inComp[v] = true
	}

	// Choose X′ maximizing the number of remaining components; ties prefer
	// the larger clique (smaller residual work), then lexicographic order.
	bestIdx, bestComps := -1, -1
	var bestResidual [][]int
	for ci, clique := range cliques {
		removed := make(map[int]bool, len(clique))
		for _, v := range clique {
			removed[v] = true
		}
		residual := g.Components(func(v int) bool { return inComp[v] && !removed[v] })
		better := false
		switch {
		case len(residual) > bestComps:
			better = true
		case len(residual) == bestComps && bestIdx >= 0 && len(clique) > len(cliques[bestIdx]):
			better = true
		}
		if bestIdx < 0 || better {
			bestIdx, bestComps, bestResidual = ci, len(residual), residual
		}
	}

	node := &TreeNode{}
	for _, v := range cliques[bestIdx] {
		node.Workers = append(node.Workers, workers[v])
	}
	sort.Slice(node.Workers, func(i, j int) bool { return node.Workers[i].ID < node.Workers[j].ID })
	for _, sub := range bestResidual {
		if child := buildTree(g, sub, workers); child != nil {
			node.Children = append(node.Children, child)
		}
	}
	return node
}
