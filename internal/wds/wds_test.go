package wds

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/spatial"
)

var opts = Options{Travel: geo.NewTravelModel(0.01)} // 10 m/s

func task(id int, x, y, pub, exp float64) *core.Task {
	return &core.Task{ID: id, Loc: geo.Point{X: x, Y: y}, Pub: pub, Exp: exp, Cell: -1}
}

func worker(id int, x, y, reach, on, off float64) *core.Worker {
	return &core.Worker{ID: id, Loc: geo.Point{X: x, Y: y}, Reach: reach, On: on, Off: off}
}

func TestReachableTasksConstraints(t *testing.T) {
	w := worker(1, 0, 0, 1.0, 0, 500)
	tasks := []*core.Task{
		task(1, 0.5, 0, 0, 1000),  // fine: 50 s travel
		task(2, 0.5, 0, 0, 40),    // violates (i): needs 50 s, expires in 40
		task(3, 0, 0.9, 0, 1000),  // fine: 90 s travel, within reach 1.0
		task(4, 2.0, 0, 0, 1000),  // violates (iii): 2 km > 1 km reach
		task(5, 0.5, 0.5, 0, -10), // already expired
	}
	rs := ReachableTasks(w, tasks, 0, opts)
	if len(rs) != 2 {
		t.Fatalf("reachable = %d tasks, want 2", len(rs))
	}
	if rs[0].ID != 1 || rs[1].ID != 3 {
		t.Errorf("reachable ids = %d,%d (sorted by distance)", rs[0].ID, rs[1].ID)
	}
}

func TestReachableTasksWindowConstraint(t *testing.T) {
	// Worker goes offline in 60 s: a task 1 km away (100 s) violates (ii).
	w := worker(1, 0, 0, 5, 0, 60)
	tasks := []*core.Task{task(1, 1, 0, 0, 1e9)}
	if rs := ReachableTasks(w, tasks, 0, opts); len(rs) != 0 {
		t.Errorf("task beyond availability window should be unreachable, got %d", len(rs))
	}
	// Same worker with a later off time reaches it.
	w.Off = 200
	if rs := ReachableTasks(w, tasks, 0, opts); len(rs) != 1 {
		t.Errorf("task within window should be reachable")
	}
}

func TestReachableTasksUnavailableWorker(t *testing.T) {
	w := worker(1, 0, 0, 1, 100, 200)
	tasks := []*core.Task{task(1, 0.1, 0, 0, 1e9)}
	if rs := ReachableTasks(w, tasks, 0, opts); rs != nil {
		t.Error("worker before its on time should reach nothing")
	}
	if rs := ReachableTasks(w, tasks, 250, opts); rs != nil {
		t.Error("worker after its off time should reach nothing")
	}
}

func TestReachableTasksCap(t *testing.T) {
	w := worker(1, 0, 0, 5, 0, 1e9)
	var tasks []*core.Task
	for i := 0; i < 20; i++ {
		tasks = append(tasks, task(i, float64(i+1)*0.01, 0, 0, 1e9))
	}
	o := opts
	o.MaxReachable = 5
	rs := ReachableTasks(w, tasks, 0, o)
	if len(rs) != 5 {
		t.Fatalf("capped reachable = %d", len(rs))
	}
	// The nearest five.
	for i, s := range rs {
		if s.ID != i {
			t.Errorf("cap should keep nearest: got id %d at %d", s.ID, i)
		}
	}
}

func TestMaximalValidSequencesMinCompletion(t *testing.T) {
	// Tasks at x=1 and x=2: visiting 1 then 2 takes 200 s; 2 then 1 takes
	// 300 s. Eq. 10 keeps the 200 s ordering for the {1,2} set.
	w := worker(1, 0, 0, 5, 0, 1e9)
	rs := []*core.Task{task(1, 1, 0, 0, 1e9), task(2, 2, 0, 0, 1e9)}
	qs := MaximalValidSequences(w, rs, 0, opts)
	// Expect: the pair (longest first), then both singletons.
	if len(qs) != 3 {
		t.Fatalf("|Q_w| = %d, want 3", len(qs))
	}
	if len(qs[0]) != 2 || qs[0][0].ID != 1 || qs[0][1].ID != 2 {
		t.Errorf("best pair order = %v", qs[0].IDs())
	}
	got := core.CompletionTime(w.Loc, 0, qs[0], opts.Travel)
	if math.Abs(got-200) > 1e-9 {
		t.Errorf("pair completion = %v, want 200", got)
	}
}

func TestMaximalValidSequencesRespectsExpiry(t *testing.T) {
	// Task 2 expires early, so it must be visited first even though task 1
	// is nearer; the (1,2) ordering is invalid: 90 s to task 1 plus ~134 s
	// across exceeds task 2's 200 s deadline.
	w := worker(1, 0, 0, 5, 0, 1e9)
	rs := []*core.Task{task(1, 0.9, 0, 0, 1e9), task(2, 0, 1, 0, 200)}
	qs := MaximalValidSequences(w, rs, 0, opts)
	for _, q := range qs {
		if len(q) == 2 {
			if q[0].ID != 2 {
				t.Errorf("pair must visit the expiring task first: %v", q.IDs())
			}
			return
		}
	}
	t.Error("expected a valid pair (2,1)")
}

func TestMaximalValidSequencesAllValid(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		w := worker(1, r.Float64(), r.Float64(), 0.5+r.Float64(), 0, 100+r.Float64()*500)
		var rs []*core.Task
		for i := 0; i < 5; i++ {
			rs = append(rs, task(i, r.Float64()*2, r.Float64()*2, 0, 50+r.Float64()*500))
		}
		rs = ReachableTasks(w, rs, 0, opts)
		for _, q := range MaximalValidSequences(w, rs, 0, opts) {
			if !core.ValidSequence(w, 0, q, opts.Travel) {
				t.Fatalf("generated invalid sequence %v", q.IDs())
			}
		}
	}
}

func TestMaximalValidSequencesDedupMatchesBruteForce(t *testing.T) {
	// For every returned set, no permutation of the same set completes
	// earlier (Eq. 10), verified by brute force.
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		w := worker(1, r.Float64(), r.Float64(), 2, 0, 1e9)
		var rs []*core.Task
		for i := 0; i < 4; i++ {
			rs = append(rs, task(i, r.Float64(), r.Float64(), 0, 100+r.Float64()*1000))
		}
		qs := MaximalValidSequences(w, rs, 0, opts)
		seen := make(map[string]bool)
		for _, q := range qs {
			key := q.SetKey()
			if seen[key] {
				t.Fatal("duplicate set in Q_w")
			}
			seen[key] = true
			best := core.CompletionTime(w.Loc, 0, q, opts.Travel)
			permute(q, func(p core.Sequence) {
				if core.ValidSequence(w, 0, p, opts.Travel) {
					if c := core.CompletionTime(w.Loc, 0, p, opts.Travel); c < best-1e-9 {
						t.Fatalf("found better ordering %v (%.1f < %.1f)", p.IDs(), c, best)
					}
				}
			})
		}
	}
}

func permute(q core.Sequence, visit func(core.Sequence)) {
	var rec func(k int)
	rec = func(k int) {
		if k == len(q) {
			visit(q)
			return
		}
		for i := k; i < len(q); i++ {
			q[k], q[i] = q[i], q[k]
			rec(k + 1)
			q[k], q[i] = q[i], q[k]
		}
	}
	rec(0)
}

func TestMaximalValidSequencesLengthCap(t *testing.T) {
	w := worker(1, 0, 0, 5, 0, 1e9)
	var rs []*core.Task
	for i := 0; i < 6; i++ {
		rs = append(rs, task(i, 0.1*float64(i+1), 0, 0, 1e9))
	}
	o := opts
	o.MaxSeqLen = 2
	for _, q := range MaximalValidSequences(w, rs, 0, o) {
		if len(q) > 2 {
			t.Fatalf("sequence of length %d exceeds cap", len(q))
		}
	}
	o.MaxSequences = 4
	if got := len(MaximalValidSequences(w, rs, 0, o)); got != 4 {
		t.Errorf("MaxSequences cap: got %d", got)
	}
}

func TestSeparateIndependentClusters(t *testing.T) {
	// Two pairs of workers around two distant hotspots sharing tasks only
	// within each pair → two components, each one tree.
	workers := []*core.Worker{
		worker(0, 0, 0, 1, 0, 1e5),
		worker(1, 0.1, 0, 1, 0, 1e5),
		worker(2, 10, 10, 1, 0, 1e5),
		worker(3, 10.1, 10, 1, 0, 1e5),
	}
	tasks := []*core.Task{
		task(1, 0.05, 0, 0, 1e5),
		task(2, 10.05, 10, 0, 1e5),
	}
	sep := Separate(workers, tasks, 0, opts)
	if len(sep.Forest) != 2 {
		t.Fatalf("forest size = %d, want 2", len(sep.Forest))
	}
	if !sep.Graph.HasEdge(0, 1) || !sep.Graph.HasEdge(2, 3) {
		t.Error("workers sharing a task must be dependent")
	}
	if sep.Graph.HasEdge(0, 2) || sep.Graph.HasEdge(1, 3) {
		t.Error("workers in different hotspots must be independent")
	}
}

func TestSeparateTreeCoversAllWorkersOnce(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		var workers []*core.Worker
		for i := 0; i < 12; i++ {
			workers = append(workers, worker(i, r.Float64()*3, r.Float64()*3, 0.8, 0, 1e5))
		}
		var tasks []*core.Task
		for i := 0; i < 25; i++ {
			tasks = append(tasks, task(i, r.Float64()*3, r.Float64()*3, 0, 1e5))
		}
		sep := Separate(workers, tasks, 0, opts)
		seen := make(map[int]int)
		for _, root := range sep.Forest {
			for _, w := range root.AllWorkers() {
				seen[w.ID]++
			}
		}
		if len(seen) != len(workers) {
			t.Fatalf("tree covers %d of %d workers", len(seen), len(workers))
		}
		for id, n := range seen {
			if n != 1 {
				t.Fatalf("worker %d appears %d times", id, n)
			}
		}
	}
}

func TestSeparateSiblingIndependence(t *testing.T) {
	// Property ii of the RTC tree: no dependency edge crosses sibling
	// subtrees.
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		var workers []*core.Worker
		for i := 0; i < 14; i++ {
			workers = append(workers, worker(i, r.Float64()*4, r.Float64()*4, 0.7, 0, 1e5))
		}
		var tasks []*core.Task
		for i := 0; i < 30; i++ {
			tasks = append(tasks, task(i, r.Float64()*4, r.Float64()*4, 0, 1e5))
		}
		sep := Separate(workers, tasks, 0, opts)
		idx := make(map[int]int) // worker id → graph vertex
		for i, w := range workers {
			idx[w.ID] = i
		}
		var check func(n *TreeNode)
		check = func(n *TreeNode) {
			for i := 0; i < len(n.Children); i++ {
				for j := i + 1; j < len(n.Children); j++ {
					for _, a := range n.Children[i].AllWorkers() {
						for _, b := range n.Children[j].AllWorkers() {
							if sep.Graph.HasEdge(idx[a.ID], idx[b.ID]) {
								t.Fatalf("edge between sibling subtrees: %d-%d", a.ID, b.ID)
							}
						}
					}
				}
			}
			for _, c := range n.Children {
				check(c)
			}
		}
		for _, root := range sep.Forest {
			check(root)
		}
	}
}

func TestSeparateDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	var workers []*core.Worker
	for i := 0; i < 10; i++ {
		workers = append(workers, worker(i, r.Float64()*2, r.Float64()*2, 1, 0, 1e5))
	}
	var tasks []*core.Task
	for i := 0; i < 20; i++ {
		tasks = append(tasks, task(i, r.Float64()*2, r.Float64()*2, 0, 1e5))
	}
	flatten := func(sep *Separation) []int {
		var out []int
		var rec func(n *TreeNode)
		rec = func(n *TreeNode) {
			for _, w := range n.Workers {
				out = append(out, w.ID)
			}
			out = append(out, -1)
			for _, c := range n.Children {
				rec(c)
			}
		}
		for _, root := range sep.Forest {
			rec(root)
		}
		return out
	}
	a := flatten(Separate(workers, tasks, 0, opts))
	b := flatten(Separate(workers, tasks, 0, opts))
	if len(a) != len(b) {
		t.Fatal("nondeterministic separation")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic tree structure")
		}
	}
}

func TestTreeNodeHelpers(t *testing.T) {
	leaf := &TreeNode{Workers: []*core.Worker{worker(3, 0, 0, 1, 0, 1)}}
	root := &TreeNode{
		Workers:  []*core.Worker{worker(1, 0, 0, 1, 0, 1), worker(2, 0, 0, 1, 0, 1)},
		Children: []*TreeNode{leaf},
	}
	if root.Size() != 3 {
		t.Errorf("Size = %d", root.Size())
	}
	if root.Depth() != 2 {
		t.Errorf("Depth = %d", root.Depth())
	}
	var nilNode *TreeNode
	if nilNode.Depth() != 0 || nilNode.AllWorkers() != nil {
		t.Error("nil node helpers")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.WithDefaults()
	if o.MaxSeqLen <= 0 || o.MaxReachable <= 0 || o.MaxSequences <= 0 || o.Travel.Speed <= 0 {
		t.Errorf("defaults missing: %+v", o)
	}
	o2 := Options{MaxSeqLen: 9}.WithDefaults()
	if o2.MaxSeqLen != 9 {
		t.Error("explicit value clobbered")
	}
}

// randomInstance builds a reproducible scattered worker/task population.
func randomInstance(seed int64, nWorkers, nTasks int, span float64) ([]*core.Worker, []*core.Task) {
	r := rand.New(rand.NewSource(seed))
	var ws []*core.Worker
	for i := 0; i < nWorkers; i++ {
		ws = append(ws, worker(i+1, r.Float64()*span, r.Float64()*span,
			0.2+r.Float64()*0.8, 0, 200+r.Float64()*800))
	}
	var ts []*core.Task
	for i := 0; i < nTasks; i++ {
		ts = append(ts, task(i+1, r.Float64()*span, r.Float64()*span, 0, 100+r.Float64()*900))
	}
	return ws, ts
}

// sameSeparation asserts two separations agree on reachable sets, sequences,
// and forest structure.
func sameSeparation(t *testing.T, a, b *Separation) {
	t.Helper()
	for _, w := range a.Workers {
		ra, rb := a.Reachable[w.ID], b.Reachable[w.ID]
		if len(ra) != len(rb) {
			t.Fatalf("worker %d: reachable %d vs %d", w.ID, len(ra), len(rb))
		}
		for i := range ra {
			if ra[i].ID != rb[i].ID {
				t.Fatalf("worker %d: reachable[%d] = %d vs %d", w.ID, i, ra[i].ID, rb[i].ID)
			}
		}
		qa, qb := a.Sequences[w.ID], b.Sequences[w.ID]
		if len(qa) != len(qb) {
			t.Fatalf("worker %d: |Q| %d vs %d", w.ID, len(qa), len(qb))
		}
		for i := range qa {
			ia, ib := qa[i].IDs(), qb[i].IDs()
			if len(ia) != len(ib) {
				t.Fatalf("worker %d: Q[%d] length differs", w.ID, i)
			}
			for j := range ia {
				if ia[j] != ib[j] {
					t.Fatalf("worker %d: Q[%d][%d] = %d vs %d", w.ID, i, j, ia[j], ib[j])
				}
			}
		}
	}
	if len(a.Forest) != len(b.Forest) {
		t.Fatalf("forest size %d vs %d", len(a.Forest), len(b.Forest))
	}
	var flatten func(n *TreeNode) []int
	flatten = func(n *TreeNode) []int {
		var ids []int
		for _, w := range n.Workers {
			ids = append(ids, w.ID)
		}
		ids = append(ids, -1) // structure marker
		for _, c := range n.Children {
			ids = append(ids, flatten(c)...)
		}
		return ids
	}
	for i := range a.Forest {
		fa, fb := flatten(a.Forest[i]), flatten(b.Forest[i])
		if len(fa) != len(fb) {
			t.Fatalf("tree %d shape differs", i)
		}
		for j := range fa {
			if fa[j] != fb[j] {
				t.Fatalf("tree %d node %d: %d vs %d", i, j, fa[j], fb[j])
			}
		}
	}
}

func TestSeparateIndexedMatchesBruteForce(t *testing.T) {
	for _, seed := range []int64{7, 19, 51} {
		ws, ts := randomInstance(seed, 60, 300, 5)
		indexed := Separate(ws, ts, 0, opts)
		brute := func() Options { o := opts; o.BruteForce = true; return o }()
		sameSeparation(t, indexed, Separate(ws, ts, 0, brute))
	}
}

func TestSeparateParallelMatchesSerial(t *testing.T) {
	ws, ts := randomInstance(77, 80, 400, 6)
	serial := func() Options { o := opts; o.Parallelism = 1; return o }()
	for _, p := range []int{2, 4, 0} {
		par := func() Options { o := opts; o.Parallelism = p; return o }()
		sameSeparation(t, Separate(ws, ts, 0, serial), Separate(ws, ts, 0, par))
	}
}

func TestReachableTasksIndexedMatches(t *testing.T) {
	ws, ts := randomInstance(91, 30, 250, 4)
	ix := spatial.NewIndex(ts, spatial.CellSizeForReach(ws))
	for _, w := range ws {
		a := ReachableTasks(w, ts, 0, opts)
		b := ReachableTasksIndexed(w, ix, 0, opts)
		if len(a) != len(b) {
			t.Fatalf("worker %d: %d vs %d reachable", w.ID, len(a), len(b))
		}
		for i := range a {
			if a[i].ID != b[i].ID {
				t.Fatalf("worker %d: reachable[%d] = %d vs %d", w.ID, i, a[i].ID, b[i].ID)
			}
		}
	}
	// Zero-reach worker: only colocated tasks, via both paths.
	zw := worker(999, ts[0].Loc.X, ts[0].Loc.Y, 0, 0, 1e5)
	a := ReachableTasks(zw, ts, 0, opts)
	b := ReachableTasksIndexed(zw, ix, 0, opts)
	if len(a) != len(b) {
		t.Fatalf("zero-reach worker: %d vs %d", len(a), len(b))
	}
}
