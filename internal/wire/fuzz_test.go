package wire

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// FuzzWireDecode feeds arbitrary bytes to the frame decoder. The invariants:
// never panic, never report consuming more bytes than were offered, and on
// success re-encode to a frame that decodes to the same batch (decode is a
// left inverse of encode on its image). Truncated, oversized, and version-
// skewed inputs must come back as errors, not crashes.
func FuzzWireDecode(f *testing.F) {
	valid, _ := AppendFrame(nil, []Event{
		{Time: 1, Kind: WorkerOnline, ID: 4, X: 1, Y: 2, Reach: 2, On: 1, Off: 500},
		{Time: 1, Kind: TaskSubmit, ID: 9, X: 3, Y: 1, Pub: 1, Exp: 90},
	})
	f.Add(valid)
	f.Add(valid[:len(valid)-4])                                             // truncated payload
	f.Add(append([]byte{}, valid[:3]...))                                   // truncated header
	f.Add([]byte{magic0, magic1, 2, 0})                                     // version skew
	f.Add([]byte{magic0, magic1, Version, 0, 0xff, 0xff, 0xff, 0xff, 0x7f}) // huge declared length
	empty, _ := AppendFrame(nil, nil)
	f.Add(empty)
	f.Add(append(append([]byte{}, valid...), valid...)) // back-to-back frames

	f.Fuzz(func(t *testing.T, data []byte) {
		events, n, err := DecodeFrame(data, nil)
		if err != nil {
			if n != 0 {
				t.Fatalf("error %v but n=%d", err, n)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// Whatever decoded must survive a round trip: re-encode and decode
		// back to the identical batch.
		frame, err := AppendFrame(nil, events)
		if err != nil {
			t.Fatalf("re-encode of decoded batch failed: %v", err)
		}
		again, _, err := DecodeFrame(frame, nil)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(events) {
			t.Fatalf("re-decode: %d events, want %d", len(again), len(events))
		}
		for i := range events {
			if events[i] != again[i] {
				t.Fatalf("event %d changed across re-encode: %+v vs %+v", i, events[i], again[i])
			}
		}
	})
}

// FuzzWireRoundTrip builds a batch from fuzzed primitive fields, encodes it,
// and requires decode to reproduce it exactly — both through DecodeFrame and
// through the streaming Decoder under worst-case 1-byte reads. Non-finite
// floats must be rejected at encode time, never silently mangled.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add(uint8(0), int64(1), 0.0, 1.0, 2.0, 2.0, 0.0, 500.0, uint8(3))
	f.Add(uint8(2), int64(-9), 5.5, -1.0, 4.0, 0.0, 5.5, 100.0, uint8(1))
	f.Add(uint8(4), int64(1<<40), 1e9, -1e9, 0.0, 0.0, 0.0, 0.0, uint8(7))
	f.Add(uint8(200), int64(0), math.Inf(1), 0.0, 0.0, 0.0, 0.0, 0.0, uint8(1))

	f.Fuzz(func(t *testing.T, kind uint8, id int64, tm, a, b, c, d, e float64, nCopies uint8) {
		ev := Event{
			Time: tm, Kind: Kind(kind), ID: id,
			X: a, Y: b, Reach: c, On: d, Off: e, Pub: d, Exp: e,
		}
		// Zero the fields the codec does not carry for this kind, so the
		// equality check below compares only what the wire promises.
		switch ev.Kind {
		case WorkerOnline:
			ev.Pub, ev.Exp = 0, 0
		case TaskSubmit:
			ev.Reach, ev.On, ev.Off = 0, 0, 0
		case Position:
			ev.Reach, ev.On, ev.Off, ev.Pub, ev.Exp = 0, 0, 0, 0, 0
		case WorkerOffline, TaskCancel:
			ev.X, ev.Y, ev.Reach, ev.On, ev.Off, ev.Pub, ev.Exp = 0, 0, 0, 0, 0, 0, 0
		}
		batch := make([]Event, int(nCopies%32)+1)
		for i := range batch {
			batch[i] = ev
			batch[i].ID = id + int64(i)
		}
		frame, err := AppendFrame(nil, batch)
		if err != nil {
			// Encode must reject exactly the batches the decoder would:
			// unknown kinds and non-finite floats.
			if ev.Kind < numKinds && eventFinite(&ev) {
				t.Fatalf("encode rejected a valid batch: %v", err)
			}
			return
		}
		got, n, err := DecodeFrame(frame, nil)
		if err != nil {
			t.Fatalf("decode of encoded frame: %v", err)
		}
		if n != len(frame) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(frame))
		}
		if len(got) != len(batch) {
			t.Fatalf("decoded %d events, want %d", len(got), len(batch))
		}
		for i := range batch {
			if got[i] != batch[i] {
				t.Fatalf("event %d: got %+v want %+v", i, got[i], batch[i])
			}
		}
		// The streaming decoder must agree even when the frame arrives one
		// byte at a time.
		dec := NewDecoder(iotaReader{r: bytes.NewReader(frame)})
		streamed, err := dec.Next()
		if err != nil {
			t.Fatalf("stream decode: %v", err)
		}
		for i := range batch {
			if streamed[i] != batch[i] {
				t.Fatalf("stream event %d: got %+v want %+v", i, streamed[i], batch[i])
			}
		}
	})
}

// FuzzNDJSON parses arbitrary single lines: never panic, and anything
// accepted must re-marshal and re-parse to the same event.
func FuzzNDJSON(f *testing.F) {
	for _, ev := range []Event{
		{Time: 1, Kind: WorkerOnline, ID: 4, X: 1, Y: 2, Reach: 2, On: 1, Off: 500},
		{Time: 1, Kind: TaskSubmit, ID: 9, X: 3, Y: 1, Pub: 1, Exp: 90},
		{Time: 2, Kind: TaskCancel, ID: 9},
	} {
		line, _ := MarshalNDJSON(ev)
		f.Add(line)
	}
	f.Add([]byte(`{"kind":"position","id":1,"x":1e308,"y":-1e308}`))
	f.Add([]byte(`{"kind":"worker_online","reach":"Infinity"}`))

	f.Fuzz(func(t *testing.T, line []byte) {
		ev, err := UnmarshalNDJSON(line)
		if err != nil {
			return
		}
		out, err := MarshalNDJSON(ev)
		if err != nil {
			t.Fatalf("re-marshal of accepted event %+v: %v", ev, err)
		}
		again, err := UnmarshalNDJSON(out)
		if err != nil || again != ev {
			t.Fatalf("NDJSON round trip: %+v -> %+v (err %v)", ev, again, err)
		}
	})
}

// uvarint3 sanity: the fixed-width length prefix must decode as a standard
// uvarint for every representable payload size.
func TestPutUvarint3(t *testing.T) {
	for _, v := range []uint64{0, 1, 127, 128, 16383, 16384, MaxFrameBytes, 1<<21 - 1} {
		var b [3]byte
		putUvarint3(b[:], v)
		got, n := binary.Uvarint(b[:])
		if got != v || n != 3 {
			t.Fatalf("putUvarint3(%d): decoded %d (n=%d)", v, got, n)
		}
	}
}
