package wire

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// Encoder writes frames to an underlying stream, reusing one scratch buffer
// so steady-state encoding allocates nothing per batch.
type Encoder struct {
	w   io.Writer
	buf []byte
}

// NewEncoder returns an Encoder writing frames to w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{w: w} }

// Encode frames one batch and writes it.
func (e *Encoder) Encode(events []Event) error {
	buf, err := AppendFrame(e.buf[:0], events)
	if err != nil {
		return err
	}
	e.buf = buf
	_, err = e.w.Write(buf)
	return err
}

// Decoder reads frames from an underlying stream. The frame buffer and the
// event slice are both reused across batches, so a long-lived connection
// decodes with zero per-event heap allocations once they reach high water.
type Decoder struct {
	r      io.Reader
	buf    []byte // unparsed bytes: buf[pos:fill]
	pos    int
	fill   int
	events []Event
}

// NewDecoder returns a Decoder reading frames from r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: r, buf: make([]byte, 0, 4096)}
}

// Next reads and decodes one frame, returning its batch. The returned slice
// is owned by the decoder and valid until the next call. io.EOF means a clean
// end of stream on a frame boundary; io.ErrUnexpectedEOF a stream cut mid-
// frame; any wire error is a hard protocol violation and the connection
// should be dropped.
func (d *Decoder) Next() ([]Event, error) {
	for {
		if d.pos < d.fill {
			events, n, err := DecodeFrame(d.buf[d.pos:d.fill], d.events[:0])
			if err == nil {
				d.pos += n
				d.events = events
				return events, nil
			}
			if err != ErrShort {
				return nil, err
			}
		}
		if err := d.fillMore(); err != nil {
			if err == io.EOF && d.pos < d.fill {
				return nil, io.ErrUnexpectedEOF
			}
			return nil, err
		}
	}
}

// fillMore reads more bytes, compacting the consumed prefix first and growing
// the buffer only when a frame is larger than the current capacity (bounded
// by the decode-side MaxFrameBytes check, so a hostile peer cannot force an
// unbounded grow).
func (d *Decoder) fillMore() error {
	if d.pos > 0 {
		d.fill = copy(d.buf[:cap(d.buf)], d.buf[d.pos:d.fill])
		d.pos = 0
		d.buf = d.buf[:d.fill]
	}
	if d.fill == cap(d.buf) {
		grown := make([]byte, d.fill, 2*cap(d.buf)+1024)
		copy(grown, d.buf[:d.fill])
		d.buf = grown
	}
	n, err := d.r.Read(d.buf[d.fill:cap(d.buf)])
	d.fill += n
	d.buf = d.buf[:d.fill]
	if n > 0 {
		return nil
	}
	if err == nil {
		err = io.ErrNoProgress
	}
	return err
}

// jsonEvent is the NDJSON shape: one object per line, kind-tagged with the
// Kind.String names. Every field is emitted (no omitempty) so a line is
// self-describing and round-trips exactly.
type jsonEvent struct {
	Kind  string  `json:"kind"`
	Time  float64 `json:"time"`
	ID    int64   `json:"id"`
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
	Reach float64 `json:"reach"`
	On    float64 `json:"on"`
	Off   float64 `json:"off"`
	Pub   float64 `json:"pub"`
	Exp   float64 `json:"exp"`
}

// kindFromString is String's inverse for NDJSON parsing.
func kindFromString(s string) (Kind, bool) {
	switch s {
	case "worker_online":
		return WorkerOnline, true
	case "worker_offline":
		return WorkerOffline, true
	case "task_submit":
		return TaskSubmit, true
	case "task_cancel":
		return TaskCancel, true
	case "position":
		return Position, true
	}
	return 0, false
}

// MarshalNDJSON renders one event as a JSON line (newline included).
func MarshalNDJSON(ev Event) ([]byte, error) {
	if ev.Kind >= numKinds {
		return nil, fmt.Errorf("%w: unknown kind %d", ErrMalformed, ev.Kind)
	}
	if !eventFinite(&ev) {
		return nil, fmt.Errorf("%w: non-finite float in %s event", ErrMalformed, ev.Kind)
	}
	raw, err := json.Marshal(jsonEvent{
		Kind: ev.Kind.String(), Time: ev.Time, ID: ev.ID,
		X: ev.X, Y: ev.Y, Reach: ev.Reach, On: ev.On, Off: ev.Off,
		Pub: ev.Pub, Exp: ev.Exp,
	})
	if err != nil {
		return nil, err
	}
	return append(raw, '\n'), nil
}

// UnmarshalNDJSON parses one JSON line into an event, applying the same
// validity rules as the binary decoder.
func UnmarshalNDJSON(line []byte) (Event, error) {
	var je jsonEvent
	if err := json.Unmarshal(line, &je); err != nil {
		return Event{}, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	kind, ok := kindFromString(je.Kind)
	if !ok {
		return Event{}, fmt.Errorf("%w: unknown kind %q", ErrMalformed, je.Kind)
	}
	ev := Event{
		Time: je.Time, Kind: kind, ID: je.ID,
		X: je.X, Y: je.Y, Reach: je.Reach, On: je.On, Off: je.Off,
		Pub: je.Pub, Exp: je.Exp,
	}
	if !eventFinite(&ev) {
		return Event{}, fmt.Errorf("%w: non-finite float in %s event", ErrMalformed, kind)
	}
	return ev, nil
}

// NDJSONDecoder reads newline-delimited JSON events — the curl-able fallback
// transport. Blank lines are skipped so `curl --data-binary @file` traces
// with trailing newlines just work.
type NDJSONDecoder struct {
	sc *bufio.Scanner
}

// NewNDJSONDecoder returns a decoder over r. Lines are bounded by
// MaxFrameBytes, matching the binary transport's frame bound.
func NewNDJSONDecoder(r io.Reader) *NDJSONDecoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), MaxFrameBytes)
	return &NDJSONDecoder{sc: sc}
}

// Next returns the next event, or io.EOF at end of stream.
func (d *NDJSONDecoder) Next() (Event, error) {
	for d.sc.Scan() {
		line := bytes.TrimSpace(d.sc.Bytes())
		if len(line) == 0 {
			continue
		}
		return UnmarshalNDJSON(line)
	}
	if err := d.sc.Err(); err != nil {
		return Event{}, err
	}
	return Event{}, io.EOF
}

// IsBinary sniffs whether a stream opening with b speaks the binary framing
// (as opposed to NDJSON, which must start with '{' or whitespace). One magic
// byte is enough: no JSON document starts with 0xDA.
func IsBinary(b byte) bool { return b == magic0 }
