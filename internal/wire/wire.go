// Package wire is the batched ingest wire protocol: length-prefixed binary
// frames carrying event batches, plus an NDJSON fallback for curl-ability.
//
// A frame is
//
//	magic   2 bytes  0xDA 0x7A
//	version 1 byte   (currently 1)
//	flags   1 byte   (reserved, must be 0)
//	length  uvarint  payload size in bytes (≤ MaxFrameBytes)
//	payload:
//	  count uvarint  events in the batch (≤ MaxBatchEvents)
//	  count × event:
//	    kind  1 byte
//	    time  8 bytes  float64 little-endian
//	    id    zigzag varint
//	    kind-specific float64 fields, little-endian:
//	      WorkerOnline  x y reach on off
//	      TaskSubmit    x y pub exp
//	      Position      x y
//	      WorkerOffline / TaskCancel  (none)
//
// The codec is strict in both directions: encoding rejects unknown kinds and
// non-finite floats, decoding rejects bad magic, version skew, nonzero
// reserved flags, oversized frames, truncated payloads, trailing payload
// bytes, unknown kinds, and non-finite floats. Decoding never panics and
// never reads past the declared frame length, whatever the input — the fuzz
// harnesses in this package pin that down. Decode appends into a caller-owned
// slice, so steady-state decoding performs zero per-event heap allocations.
//
// The package is a leaf: it depends only on the standard library, so any
// client (or another language's codegen) can speak the protocol without
// importing the engine.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Frame geometry.
const (
	magic0 = 0xDA
	magic1 = 0x7A
	// Version is the current protocol version, echoed in every frame header.
	Version = 1
	// headerSize is magic + version + flags; the payload-length uvarint
	// follows.
	headerSize = 4
	// MaxFrameBytes bounds one frame's payload: large enough for tens of
	// thousands of events per frame, small enough that a hostile length
	// prefix cannot make a decoder buffer gigabytes.
	MaxFrameBytes = 1 << 20
	// MaxBatchEvents bounds the declared event count of one frame.
	MaxBatchEvents = 1 << 16
	// minEventSize is the smallest possible encoded event (kind + time +
	// 1-byte id): the count-vs-payload plausibility check uses it so a tiny
	// payload cannot declare a huge count and force a giant buffer grow.
	minEventSize = 1 + 8 + 1
)

// Kind tags one wire event. Values are the protocol's on-wire bytes and must
// never be renumbered.
type Kind uint8

const (
	// WorkerOnline admits a worker: id, x, y, reach, on, off.
	WorkerOnline Kind = iota
	// WorkerOffline ends a worker's availability window: id.
	WorkerOffline
	// TaskSubmit publishes a task: id, x, y, pub, exp.
	TaskSubmit
	// TaskCancel withdraws an open task: id.
	TaskCancel
	// Position reports an idle worker's position: id, x, y.
	Position

	numKinds
)

// String returns the kind's NDJSON name.
func (k Kind) String() string {
	switch k {
	case WorkerOnline:
		return "worker_online"
	case WorkerOffline:
		return "worker_offline"
	case TaskSubmit:
		return "task_submit"
	case TaskCancel:
		return "task_cancel"
	case Position:
		return "position"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one decoded wire event — a flat struct covering every kind, so a
// batch decodes into one reusable []Event with no per-event pointers. Which
// fields are meaningful depends on Kind (see the package comment); the
// codec leaves the rest zero.
type Event struct {
	Time float64
	Kind Kind
	ID   int64
	X, Y float64
	// Reach, On, Off are WorkerOnline's reachability radius and availability
	// window.
	Reach   float64
	On, Off float64
	// Pub, Exp are TaskSubmit's publication and expiration instants.
	Pub, Exp float64
}

// Decode errors. ErrShort is the retriable one — the buffer holds a frame
// prefix and more bytes may complete it; everything else is a hard reject.
var (
	// ErrShort reports an incomplete frame: not corrupt, just not all here.
	ErrShort = errors.New("wire: incomplete frame")
	// ErrMagic reports a frame that does not start with the protocol magic.
	ErrMagic = errors.New("wire: bad magic")
	// ErrVersion reports a frame from an unknown protocol version.
	ErrVersion = errors.New("wire: unsupported version")
	// ErrTooLarge reports a frame whose declared payload exceeds
	// MaxFrameBytes or whose declared count exceeds MaxBatchEvents.
	ErrTooLarge = errors.New("wire: frame too large")
	// ErrMalformed reports a structurally invalid payload: truncated fields,
	// trailing bytes, unknown kinds, nonzero reserved flags, or non-finite
	// floats.
	ErrMalformed = errors.New("wire: malformed frame")
)

// AppendFrame encodes one batch as a frame appended to dst, growing it as
// needed, and returns the extended slice. It rejects batches the decoder
// would reject — too many events, unknown kinds, non-finite floats — so an
// encoded frame always round-trips.
//
//datawa:hotpath
func AppendFrame(dst []byte, events []Event) ([]byte, error) {
	if len(events) > MaxBatchEvents {
		return dst, fmt.Errorf("%w: %d events > %d", ErrTooLarge, len(events), MaxBatchEvents)
	}
	start := len(dst)
	dst = append(dst, magic0, magic1, Version, 0)
	// Reserve the worst-case payload-length uvarint now, encode the payload
	// after it, then fix the length up in place: one pass, no second buffer.
	lenAt := len(dst)
	dst = append(dst, 0, 0, 0)
	payloadAt := len(dst)
	dst = binary.AppendUvarint(dst, uint64(len(events)))
	var err error
	for i := range events {
		if dst, err = appendEvent(dst, &events[i]); err != nil {
			return dst[:start], err
		}
	}
	payload := len(dst) - payloadAt
	if payload > MaxFrameBytes {
		return dst[:start], fmt.Errorf("%w: payload %d bytes > %d", ErrTooLarge, payload, MaxFrameBytes)
	}
	// Re-encode the payload length into the reserved bytes, padded to the
	// reserved width with uvarint continuation so the frame stays canonical
	// in length. 3 bytes of uvarint cover MaxFrameBytes (2^21-1 ≥ 2^20).
	putUvarint3(dst[lenAt:payloadAt], uint64(payload))
	return dst, nil
}

// putUvarint3 writes v as a fixed-width 3-byte uvarint (continuation bits set
// on the first two bytes). Valid for v < 1<<21; decoders see a standard
// uvarint.
//
//datawa:hotpath
func putUvarint3(b []byte, v uint64) {
	b[0] = byte(v&0x7f) | 0x80
	b[1] = byte((v>>7)&0x7f) | 0x80
	b[2] = byte(v >> 14)
}

//datawa:hotpath
func appendEvent(dst []byte, ev *Event) ([]byte, error) {
	if ev.Kind >= numKinds {
		return dst, fmt.Errorf("%w: unknown kind %d", ErrMalformed, ev.Kind)
	}
	dst = append(dst, byte(ev.Kind))
	dst = appendF64(dst, ev.Time)
	dst = binary.AppendVarint(dst, ev.ID)
	switch ev.Kind {
	case WorkerOnline:
		dst = appendF64(dst, ev.X)
		dst = appendF64(dst, ev.Y)
		dst = appendF64(dst, ev.Reach)
		dst = appendF64(dst, ev.On)
		dst = appendF64(dst, ev.Off)
	case TaskSubmit:
		dst = appendF64(dst, ev.X)
		dst = appendF64(dst, ev.Y)
		dst = appendF64(dst, ev.Pub)
		dst = appendF64(dst, ev.Exp)
	case Position:
		dst = appendF64(dst, ev.X)
		dst = appendF64(dst, ev.Y)
	}
	if !eventFinite(ev) {
		return dst, fmt.Errorf("%w: non-finite float in %s event %d", ErrMalformed, ev.Kind, ev.ID)
	}
	return dst, nil
}

//datawa:hotpath
func appendF64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

// eventFinite checks every float the event's kind puts on the wire.
//
//datawa:hotpath
func eventFinite(ev *Event) bool {
	if !finite(ev.Time) {
		return false
	}
	switch ev.Kind {
	case WorkerOnline:
		return finite(ev.X) && finite(ev.Y) && finite(ev.Reach) && finite(ev.On) && finite(ev.Off)
	case TaskSubmit:
		return finite(ev.X) && finite(ev.Y) && finite(ev.Pub) && finite(ev.Exp)
	case Position:
		return finite(ev.X) && finite(ev.Y)
	}
	return true
}

//datawa:hotpath
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// DecodeFrame decodes the frame at the head of buf, appending its events to
// into (pass into[:0] to reuse a buffer across frames) and returning the
// extended slice plus the number of bytes the frame consumed. On ErrShort the
// buffer holds only a prefix of a frame — read more bytes and retry; any
// other error is a hard reject and n is 0. The decoder never reads past
// len(buf) and never allocates per event once into has capacity.
//
//datawa:hotpath
func DecodeFrame(buf []byte, into []Event) (events []Event, n int, err error) {
	if len(buf) < headerSize {
		return into, 0, ErrShort
	}
	if buf[0] != magic0 || buf[1] != magic1 {
		return into, 0, ErrMagic
	}
	if buf[2] != Version {
		return into, 0, fmt.Errorf("%w: got %d, want %d", ErrVersion, buf[2], Version)
	}
	if buf[3] != 0 {
		return into, 0, fmt.Errorf("%w: reserved flags byte is %#x", ErrMalformed, buf[3])
	}
	size, sn := binary.Uvarint(buf[headerSize:])
	if sn == 0 {
		return into, 0, ErrShort
	}
	if sn < 0 || size > MaxFrameBytes {
		return into, 0, fmt.Errorf("%w: declared payload %d bytes", ErrTooLarge, size)
	}
	payloadAt := headerSize + sn
	if uint64(len(buf)-payloadAt) < size {
		return into, 0, ErrShort
	}
	payload := buf[payloadAt : payloadAt+int(size)]
	events, err = decodePayload(payload, into)
	if err != nil {
		return into, 0, err
	}
	return events, payloadAt + int(size), nil
}

// decodePayload decodes a complete frame payload. Inside a complete payload
// every truncation is corruption, so all errors here are hard rejects.
//
//datawa:hotpath
func decodePayload(p []byte, into []Event) ([]Event, error) {
	count, n := binary.Uvarint(p)
	if n <= 0 {
		return into, fmt.Errorf("%w: bad event count", ErrMalformed)
	}
	if count > MaxBatchEvents {
		return into, fmt.Errorf("%w: %d events > %d", ErrTooLarge, count, MaxBatchEvents)
	}
	if count*minEventSize > uint64(len(p)-n) {
		return into, fmt.Errorf("%w: %d events cannot fit %d payload bytes", ErrMalformed, count, len(p)-n)
	}
	p = p[n:]
	for i := uint64(0); i < count; i++ {
		var ev Event
		var err error
		if p, err = decodeEvent(p, &ev); err != nil {
			return into, err
		}
		into = append(into, ev)
	}
	if len(p) != 0 {
		return into, fmt.Errorf("%w: %d trailing payload bytes", ErrMalformed, len(p))
	}
	return into, nil
}

//datawa:hotpath
func decodeEvent(p []byte, ev *Event) ([]byte, error) {
	if len(p) < 1 {
		return p, fmt.Errorf("%w: truncated event", ErrMalformed)
	}
	ev.Kind = Kind(p[0])
	if ev.Kind >= numKinds {
		return p, fmt.Errorf("%w: unknown kind %d", ErrMalformed, p[0])
	}
	p = p[1:]
	var err error
	if ev.Time, p, err = takeF64(p); err != nil {
		return p, err
	}
	id, n := binary.Varint(p)
	if n <= 0 {
		return p, fmt.Errorf("%w: bad event id", ErrMalformed)
	}
	ev.ID = id
	p = p[n:]
	switch ev.Kind {
	case WorkerOnline:
		for _, f := range [...]*float64{&ev.X, &ev.Y, &ev.Reach, &ev.On, &ev.Off} {
			if *f, p, err = takeF64(p); err != nil {
				return p, err
			}
		}
	case TaskSubmit:
		for _, f := range [...]*float64{&ev.X, &ev.Y, &ev.Pub, &ev.Exp} {
			if *f, p, err = takeF64(p); err != nil {
				return p, err
			}
		}
	case Position:
		for _, f := range [...]*float64{&ev.X, &ev.Y} {
			if *f, p, err = takeF64(p); err != nil {
				return p, err
			}
		}
	}
	if !eventFinite(ev) {
		return p, fmt.Errorf("%w: non-finite float in %s event", ErrMalformed, ev.Kind)
	}
	return p, nil
}

//datawa:hotpath
func takeF64(p []byte) (float64, []byte, error) {
	if len(p) < 8 {
		return 0, p, fmt.Errorf("%w: truncated float", ErrMalformed)
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(p)), p[8:], nil
}
